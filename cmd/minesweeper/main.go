// Command minesweeper verifies router configurations: it loads a
// directory of config files, builds the symbolic control-plane model and
// checks the requested property over all packets and all environments,
// printing either "verified" or a concrete counterexample (environment,
// packet and forwarding state).
//
// Usage:
//
//	minesweeper -configs DIR -check reachability -src R1 -subnet 10.0.0.0/24
//	minesweeper -configs DIR -check mgmt-reachability
//	minesweeper -configs DIR -check blackholes [-max-failures 1]
//	minesweeper -configs DIR -check multipath-consistency
//	minesweeper -configs DIR -check loops
//	minesweeper -configs DIR -check bounded-length -src R1 -subnet P -hops 4
//	minesweeper -configs DIR -check isolation -src R1 -subnet P
//	minesweeper -configs DIR -check waypoint -src R1 -via FW1 -subnet P
//	minesweeper -configs DIR -check equivalence -pair routerA,routerB
//	minesweeper -configs DIR -check no-leak -maxlen 24
//	minesweeper -configs DIR -check fault-invariance [-max-failures 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/network"
	"repro/internal/properties"
	"repro/internal/smt"
)

func main() {
	var (
		configDir   = flag.String("configs", "", "directory of router configuration files")
		check       = flag.String("check", "", "property to verify (see package comment)")
		src         = flag.String("src", "", "source router")
		via         = flag.String("via", "", "waypoint router")
		subnet      = flag.String("subnet", "", "destination subnet (CIDR)")
		pair        = flag.String("pair", "", "router pair a,b for equivalence")
		hops        = flag.Int("hops", 4, "hop bound for bounded-length")
		maxLen      = flag.Int("maxlen", 24, "maximum exported prefix length for no-leak")
		maxFailures = flag.Int("max-failures", 0, "environments may fail up to this many links")
		verbose     = flag.Bool("v", false, "print model statistics and forwarding state")
		replay      = flag.Bool("replay", false, "replay counterexamples in the concrete simulator")
	)
	flag.Parse()
	if *configDir == "" || *check == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configDir, *check, *src, *via, *subnet, *pair, *hops, *maxLen, *maxFailures, *verbose, *replay); err != nil {
		fmt.Fprintln(os.Stderr, "minesweeper:", err)
		os.Exit(1)
	}
}

func run(dir, check, src, via, subnet, pair string, hops, maxLen, maxFailures int, verbose, replay bool) error {
	routers, err := loadConfigs(dir)
	if err != nil {
		return err
	}
	g, err := harness.BuildGraph(routers)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d routers, %d links, %d external peers (%d config lines)\n",
		len(g.Topo.Nodes), len(g.Topo.Links), len(g.Topo.Externals), config.TotalLines(routers))

	// Pair-based checks have their own flow.
	switch check {
	case "equivalence":
		parts := strings.Split(pair, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-pair a,b required")
		}
		res, err := core.CheckLocalEquivalence(g, parts[0], parts[1], core.DefaultOptions())
		if err != nil {
			return err
		}
		if res.Equivalent {
			fmt.Printf("%s and %s are behaviourally equivalent\n", parts[0], parts[1])
		} else {
			fmt.Printf("NOT equivalent: %s\n", res.Difference)
		}
		return nil
	case "fault-invariance":
		k := maxFailures
		if k == 0 {
			k = 1
		}
		pr, prop, err := core.FaultInvariance(g, core.DefaultOptions(), k)
		if err != nil {
			return err
		}
		res, err := pr.Check(prop)
		if err != nil {
			return err
		}
		report("fault-invariance", res, nil, verbose)
		return nil
	}

	m, err := core.Encode(g, core.DefaultOptions())
	if err != nil {
		return err
	}
	var sub network.Prefix
	if subnet != "" {
		sub, err = network.ParsePrefix(subnet)
		if err != nil {
			return err
		}
	}
	needSubnet := func() error {
		if subnet == "" {
			return fmt.Errorf("-subnet required for %s", check)
		}
		return nil
	}
	needSrc := func() error {
		if src == "" || g.Topo.Node(src) == nil {
			return fmt.Errorf("-src must name a router for %s", check)
		}
		return nil
	}

	var p *smt.Term
	switch check {
	case "reachability":
		if err := needSrc(); err != nil {
			return err
		}
		if err := needSubnet(); err != nil {
			return err
		}
		p = properties.Reachable(m, src, sub)
	case "isolation":
		if err := needSrc(); err != nil {
			return err
		}
		if err := needSubnet(); err != nil {
			return err
		}
		p = properties.Isolated(m, src, sub)
	case "mgmt-reachability":
		p = properties.ManagementReachable(m)
	case "blackholes":
		p = properties.NoBlackholes(m)
	case "multipath-consistency":
		p = properties.MultipathConsistent(m)
	case "loops":
		p = properties.NoForwardingLoops(m, nil)
	case "bounded-length":
		if err := needSrc(); err != nil {
			return err
		}
		if err := needSubnet(); err != nil {
			return err
		}
		p = properties.BoundedLength(m, src, sub, hops)
	case "waypoint":
		if err := needSrc(); err != nil {
			return err
		}
		if err := needSubnet(); err != nil {
			return err
		}
		if via == "" || g.Topo.Node(via) == nil {
			return fmt.Errorf("-via must name a router")
		}
		p = properties.Waypointed(m, src, via, sub)
	case "no-leak":
		p = properties.NoLeak(m, nil, maxLen)
	default:
		return fmt.Errorf("unknown check %q", check)
	}

	assumptions := []*smt.Term{}
	if maxFailures > 0 {
		assumptions = append(assumptions, m.AtMostFailures(maxFailures))
	} else {
		assumptions = append(assumptions, m.NoFailures())
	}
	res, err := m.Check(p, assumptions...)
	if err != nil {
		return err
	}
	report(check, res, m, verbose)
	if replay && res.Counterexample != nil {
		diffs, err := m.ReplayAgrees(res.Counterexample)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		if len(diffs) == 0 {
			fmt.Println("replay: the concrete simulator reproduces the counterexample state")
		} else {
			fmt.Println("replay: simulator reached a different stable state (multi-stable network?):")
			for _, d := range diffs {
				fmt.Println("  " + d)
			}
		}
	}
	return nil
}

func report(check string, res *core.Result, m *core.Model, verbose bool) {
	fmt.Println(properties.Describe(check, res))
	if verbose && res.Counterexample != nil && m != nil {
		fmt.Println("forwarding state:")
		for _, line := range m.DecodeForwarding(m.Main, res.Counterexample.Assignment) {
			fmt.Println("  " + line)
		}
	}
	if verbose {
		fmt.Printf("solver: %d conflicts, %d decisions, %d propagations\n",
			res.Stats.Conflicts, res.Stats.Decisions, res.Stats.Propagations)
	}
}

func loadConfigs(dir string) ([]*config.Router, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".cfg") || strings.HasSuffix(e.Name(), ".conf") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .cfg/.conf files in %s", dir)
	}
	var routers []*config.Router
	for _, name := range names {
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		r, err := config.Parse(string(text))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		routers = append(routers, r)
	}
	return routers, nil
}
