// Command minesweeper verifies router configurations: it loads a
// directory of config files, builds the symbolic control-plane model and
// checks the requested property over all packets and all environments,
// printing either "verified" or a concrete counterexample (environment,
// packet and forwarding state).
//
// Usage:
//
//	minesweeper -configs DIR -check reachability -src R1 -subnet 10.0.0.0/24
//	minesweeper -configs DIR -check mgmt-reachability
//	minesweeper -configs DIR -check blackholes [-max-failures 1]
//	minesweeper -configs DIR -check multipath-consistency
//	minesweeper -configs DIR -check loops
//	minesweeper -configs DIR -check bounded-length -src R1 -subnet P -hops 4
//	minesweeper -configs DIR -check isolation -src R1 -subnet P
//	minesweeper -configs DIR -check waypoint -src R1 -via FW1 -subnet P
//	minesweeper -configs DIR -check equivalence -pair routerA,routerB
//	minesweeper -configs DIR -check no-leak -maxlen 24
//	minesweeper -configs DIR -check fault-invariance [-max-failures 1]
//
// Observability:
//
//	-v                  also prints the phase span tree to stderr
//	-json               prints the verdict as one JSON object on stdout
//	-trace-json FILE    writes the span tree + metrics as JSON
//	-trace-chrome FILE  writes the span tree as Chrome trace_event JSON,
//	                    browsable in Perfetto (ui.perfetto.dev) or
//	                    chrome://tracing
//	-prom FILE          writes the metrics in Prometheus text format
//	-progress N         prints solver progress to stderr every N conflicts
//	-cost               prints the hierarchical cost ledger — work units
//	                    (decisions+propagations+conflicts), clause-db and
//	                    proof bytes, wall/CPU time — attributed per phase
//	                    (compile, blast, solve, certify, …); with -json the
//	                    same tree rides along as the "cost" member
//
// Certification:
//
//	-certify          records a DRAT proof trace in the SAT core and replays
//	                  it through the independent checker before reporting any
//	                  "verified" verdict; the proof size and check time are
//	                  printed (and included in the -json object)
//
// Blame:
//
//	-blame            reports the configuration origins the verdict depends
//	                  on. For a verified property these are the origins of
//	                  the constraints in the UNSAT proof's core: the config
//	                  stanzas that together rule out every violation. For a
//	                  falsified property they are the origins of the
//	                  constraints fixing the counterexample's forwarding
//	                  decisions. Implies proof logging (-certify's machinery)
//	                  on verified verdicts.
//
// Tiers:
//
//	-tiers graph,sat  (default) tries the sound graph fast path before
//	                  building the SAT model: goals the conservative
//	                  over-/under-approximations can answer definitively
//	                  skip encoding and solving entirely, everything else
//	                  falls through to the solver unchanged. -tiers none
//	                  (or sat) disables the fast path. The verdict reports
//	                  which tier answered ("tier" in -json output).
//
// Modular:
//
//	-modular          cuts multi-component networks at eBGP interfaces and
//	                  verifies components in parallel against interface
//	                  contracts, composing a blamed verdict without ever
//	                  building the whole-network model. Anything outside
//	                  the soundness envelope is residue that falls back to
//	                  the monolithic pipeline; the verdict reports "mode"
//	                  (modular / monolithic / fallback) and the residue.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/modular"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/obs/cost"
	"repro/internal/properties"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/psolve"
	"repro/internal/sat"
	"repro/internal/smt"
	"repro/internal/tiered"
)

// cliOpts carries the parsed command line through run.
type cliOpts struct {
	dir, check, src, via, subnet, pair string
	hops, maxLen, maxFailures          int
	verbose, replay, jsonOut, certify  bool
	blame, modular, costOut            bool
	traceJSON, traceChrome, promOut    string
	passes                             string
	tiers                              string
	parallel                           string
	parallelWorkers                    int
	progressEvery                      int64
}

func main() {
	var o cliOpts
	flag.StringVar(&o.dir, "configs", "", "directory of router configuration files")
	flag.StringVar(&o.check, "check", "", "property to verify (see package comment)")
	flag.StringVar(&o.src, "src", "", "source router")
	flag.StringVar(&o.via, "via", "", "waypoint router")
	flag.StringVar(&o.subnet, "subnet", "", "destination subnet (CIDR)")
	flag.StringVar(&o.pair, "pair", "", "router pair a,b for equivalence")
	flag.IntVar(&o.hops, "hops", 4, "hop bound for bounded-length")
	flag.IntVar(&o.maxLen, "maxlen", 24, "maximum exported prefix length for no-leak")
	flag.IntVar(&o.maxFailures, "max-failures", 0, "environments may fail up to this many links")
	flag.BoolVar(&o.verbose, "v", false, "print model statistics, forwarding state and the span tree")
	flag.BoolVar(&o.replay, "replay", false, "replay counterexamples in the concrete simulator")
	flag.BoolVar(&o.jsonOut, "json", false, "print the verdict as a single JSON object")
	flag.BoolVar(&o.costOut, "cost", false, "print the hierarchical cost ledger (work units, clause-db/proof bytes, wall/CPU time) after the verdict; with -json, adds a \"cost\" tree to the object")
	flag.StringVar(&o.traceJSON, "trace-json", "", "write the span tree and metrics as JSON to this file")
	flag.StringVar(&o.traceChrome, "trace-chrome", "", "write the span tree as Chrome trace_event JSON to this file (open in Perfetto or chrome://tracing)")
	flag.StringVar(&o.promOut, "prom", "", "write the metrics in Prometheus text format to this file")
	flag.StringVar(&o.passes, "passes", "", "optimization passes: comma list of hoist,slice,fold,cse,propagate,coi, or all/none (default: all)")
	flag.StringVar(&o.tiers, "tiers", "", "verification tiers: graph,sat (default; sound graph fast path, residue to the solver), or sat/none to disable the fast path")
	flag.BoolVar(&o.certify, "certify", false, "record a DRAT proof trace and check verified verdicts with the independent checker")
	flag.BoolVar(&o.blame, "blame", false, "report the configuration origins the verdict depends on (UNSAT core origins, or the counterexample's forwarding origins)")
	flag.BoolVar(&o.modular, "modular", false, "verify multi-component networks by assume/guarantee composition (cut at eBGP interfaces, parallel per-component checks; residue falls back to the monolithic pipeline)")
	flag.StringVar(&o.parallel, "parallel", "off", "parallel solve strategy: off, portfolio (race configured solver clones), cubes (split on environment variables), or auto")
	flag.IntVar(&o.parallelWorkers, "parallel-workers", 0, "solver-level parallelism (0: one per CPU); 1 reproduces the sequential search exactly")
	flag.Int64Var(&o.progressEvery, "progress", 0, "print solver progress to stderr every N conflicts")
	flag.Parse()
	if o.dir == "" || o.check == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "minesweeper:", err)
		os.Exit(1)
	}
}

func run(o cliOpts) error {
	tr := obs.New("verify")

	sp := tr.Root().Start("parse")
	routers, err := loadConfigs(o.dir)
	if err != nil {
		return err
	}
	sp.SetInt("routers", int64(len(routers)))
	sp.SetInt("lines", int64(config.TotalLines(routers)))
	sp.End()

	sp = tr.Root().Start("graph")
	g, err := harness.BuildGraph(routers)
	if err != nil {
		return err
	}
	sp.SetInt("nodes", int64(len(g.Topo.Nodes)))
	sp.SetInt("links", int64(len(g.Topo.Links)))
	sp.SetInt("externals", int64(len(g.Topo.Externals)))
	sp.End()
	tr.SampleMem()

	if !o.jsonOut {
		fmt.Printf("loaded %d routers, %d links, %d external peers (%d config lines)\n",
			len(g.Topo.Nodes), len(g.Topo.Links), len(g.Topo.Externals), config.TotalLines(routers))
	}

	opts := core.DefaultOptions()
	opts.Passes = o.passes
	if err := core.ValidatePasses(o.passes); err != nil {
		return err
	}
	if err := tiered.ValidateTiers(o.tiers); err != nil {
		return err
	}
	opts.Tiers = o.tiers
	if !psolve.ValidMode(o.parallel) {
		return fmt.Errorf("unknown -parallel mode %q (want off, portfolio, cubes or auto)", o.parallel)
	}
	opts.Parallel = o.parallel
	opts.ParallelWorkers = o.parallelWorkers
	opts.Certify = o.certify
	opts.Blame = o.blame
	opts.Span = tr.Root()
	progress := func(p sat.Progress) {
		fmt.Fprintf(os.Stderr, "progress: conflicts=%d decisions=%d propagations=%d learned=%d restarts=%d\n",
			p.Conflicts, p.Decisions, p.Propagations, p.Learned, p.Restarts)
	}

	// Pair-based checks have their own flow.
	switch o.check {
	case "equivalence":
		parts := strings.Split(o.pair, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-pair a,b required")
		}
		start := time.Now()
		res, err := core.CheckLocalEquivalence(g, parts[0], parts[1], opts)
		if err != nil {
			return err
		}
		if o.jsonOut {
			if err := emitJSON(jsonReport{
				Check:      o.check,
				Verified:   res.Equivalent,
				ElapsedMs:  durMs(time.Since(start)),
				Difference: res.Difference,
			}); err != nil {
				return err
			}
			return finish(tr, o)
		}
		if res.Equivalent {
			fmt.Printf("%s and %s are behaviourally equivalent\n", parts[0], parts[1])
		} else {
			fmt.Printf("NOT equivalent: %s\n", res.Difference)
		}
		return finish(tr, o)
	case "fault-invariance":
		k := o.maxFailures
		if k == 0 {
			k = 1
		}
		pr, prop, err := core.FaultInvariance(g, opts, k)
		if err != nil {
			return err
		}
		if o.progressEvery > 0 {
			pr.A.ProgressEvery = o.progressEvery
			pr.A.OnProgress = progress
		}
		res, err := pr.Check(prop)
		if err != nil {
			return err
		}
		core.RecordSolverMetrics(tr, res)
		if o.jsonOut {
			return emitJSONResult(o, res, pr.A, tr, modResult{})
		}
		report(o.check, res, nil, o.verbose, modResult{})
		printCost(o, costTree(res, modResult{}))
		return finish(tr, o)
	}

	// Graph fast path: goals the tier can answer definitively never build
	// the SAT model at all; residue falls through to the solver below.
	var fastElapsed time.Duration
	var fastTried bool
	if tiered.Enabled(o.tiers) {
		if goal, ok := tierGoal(o); ok {
			fastTried = true
			sp = tr.Root().Start("fastpath")
			a := tiered.NewAnalysis(g)
			start := time.Now()
			out := a.Decide(goal)
			fastElapsed = time.Since(start)
			sp.SetStr("reason", out.Reason)
			sp.End()
			if out.Decided {
				res := tiered.Synthesize(out, fastElapsed, o.blame)
				if o.jsonOut {
					return emitJSONResult(o, res, nil, tr, modResult{})
				}
				report(o.check, res, nil, o.verbose, modResult{})
				printCost(o, costTree(res, modResult{}))
				return finish(tr, o)
			}
		}
	}

	// Modular assume/guarantee path: compose per-component verdicts when
	// the network and goal are inside the soundness envelope; any residue
	// falls through to the monolithic encode below with the residue
	// reported on the verdict.
	var modRes modResult
	if o.modular {
		res, err := tryModular(o, g, opts, tr, &modRes)
		if err != nil {
			return err
		}
		if res != nil {
			if o.jsonOut {
				return emitJSONResult(o, res, nil, tr, modRes)
			}
			report(o.check, res, nil, o.verbose, modRes)
			printCost(o, costTree(res, modRes))
			return finish(tr, o)
		}
	}

	m, err := core.Encode(g, opts)
	if err != nil {
		return err
	}
	if o.progressEvery > 0 {
		m.ProgressEvery = o.progressEvery
		m.OnProgress = progress
	}
	var sub network.Prefix
	if o.subnet != "" {
		sub, err = network.ParsePrefix(o.subnet)
		if err != nil {
			return err
		}
	}
	needSubnet := func() error {
		if o.subnet == "" {
			return fmt.Errorf("-subnet required for %s", o.check)
		}
		return nil
	}
	needSrc := func() error {
		if o.src == "" || g.Topo.Node(o.src) == nil {
			return fmt.Errorf("-src must name a router for %s", o.check)
		}
		return nil
	}

	var p *smt.Term
	switch o.check {
	case "reachability":
		if err := needSrc(); err != nil {
			return err
		}
		if err := needSubnet(); err != nil {
			return err
		}
		p = properties.Reachable(m, o.src, sub)
	case "isolation":
		if err := needSrc(); err != nil {
			return err
		}
		if err := needSubnet(); err != nil {
			return err
		}
		p = properties.Isolated(m, o.src, sub)
	case "mgmt-reachability":
		p = properties.ManagementReachable(m)
	case "blackholes":
		p = properties.NoBlackholes(m)
	case "multipath-consistency":
		p = properties.MultipathConsistent(m)
	case "loops":
		p = properties.NoForwardingLoops(m, nil)
	case "bounded-length":
		if err := needSrc(); err != nil {
			return err
		}
		if err := needSubnet(); err != nil {
			return err
		}
		p = properties.BoundedLength(m, o.src, sub, o.hops)
	case "waypoint":
		if err := needSrc(); err != nil {
			return err
		}
		if err := needSubnet(); err != nil {
			return err
		}
		if o.via == "" || g.Topo.Node(o.via) == nil {
			return fmt.Errorf("-via must name a router")
		}
		p = properties.Waypointed(m, o.src, o.via, sub)
	case "no-leak":
		p = properties.NoLeak(m, nil, o.maxLen)
	default:
		return fmt.Errorf("unknown check %q", o.check)
	}

	assumptions := []*smt.Term{}
	if o.maxFailures > 0 {
		assumptions = append(assumptions, m.AtMostFailures(o.maxFailures))
	} else {
		assumptions = append(assumptions, m.NoFailures())
	}
	res, err := m.Check(p, assumptions...)
	if err != nil {
		return err
	}
	if fastTried {
		res.Tier = tiered.TierSAT
		res.FastPathElapsed = fastElapsed
	}
	core.RecordSolverMetrics(tr, res)
	if o.jsonOut {
		return emitJSONResult(o, res, m, tr, modRes)
	}
	report(o.check, res, m, o.verbose, modRes)
	printCost(o, costTree(res, modRes))
	if o.replay && res.Counterexample != nil {
		diffs, err := m.ReplayAgrees(res.Counterexample)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		if len(diffs) == 0 {
			fmt.Println("replay: the concrete simulator reproduces the counterexample state")
		} else {
			fmt.Println("replay: simulator reached a different stable state (multi-stable network?):")
			for _, d := range diffs {
				fmt.Println("  " + d)
			}
		}
	}
	return finish(tr, o)
}

// modResult carries the modular outcome into the final report: how the
// verdict was produced and, for fallbacks, the residue that forced the
// monolithic pipeline.
type modResult struct {
	mode     string
	residue  []string
	violated string
	report   *modular.Report
}

// tryModular attempts the assume/guarantee composition. A non-nil result
// is the composed verdict and the caller reports it without ever
// building the monolithic model; nil means fall through (out.mode and
// out.residue record why).
func tryModular(o cliOpts, g *protograph.Graph, opts core.Options, tr *obs.Trace, out *modResult) (*core.Result, error) {
	goal, ok := tierGoal(o)
	if !ok {
		out.mode = modular.ModeMonolithic
		return nil, nil
	}
	cut := modular.Partition(g)
	if !cut.MultiComponent() {
		out.mode = modular.ModeMonolithic
		return nil, nil
	}
	mopts := modular.Options{Core: opts, Workers: runtime.NumCPU()}
	// Component checks run concurrently and the span tree is
	// single-writer: the modular span below prices the whole run.
	mopts.Core.Span = nil
	plan := modular.NewPlan(g, cut, goal)
	sp := tr.Root().Start("modular")
	sp.SetInt("components", int64(len(plan.Comps)))
	rep, err := modular.Run(context.Background(), g, plan, mopts)
	sp.End()
	if err != nil {
		return nil, err
	}
	if len(rep.Residue) > 0 {
		out.mode = modular.ModeFallback
		out.residue = rep.Residue
		out.violated = rep.Violated
		return nil, nil
	}
	out.mode = modular.ModeModular
	out.report = rep
	return rep.Result, nil
}

// tierGoal translates the CLI flags into the graph tier's goal
// vocabulary. ok=false — missing or unparsable parameters, or a check the
// tier does not model — sends the query straight to the SAT path, whose
// own validation reports the proper usage error.
func tierGoal(o cliOpts) (tiered.Goal, bool) {
	g := tiered.Goal{
		Check:       o.check,
		Src:         o.src,
		Via:         o.via,
		Hops:        o.hops,
		MaxLen:      o.maxLen,
		MaxFailures: o.maxFailures,
	}
	switch o.check {
	case "reachability", "isolation", "bounded-length":
		if o.src == "" || o.subnet == "" {
			return tiered.Goal{}, false
		}
	case "waypoint":
		if o.src == "" || o.via == "" || o.subnet == "" {
			return tiered.Goal{}, false
		}
	case "mgmt-reachability", "blackholes", "multipath-consistency", "loops", "no-leak":
	default:
		return tiered.Goal{}, false
	}
	if o.subnet != "" {
		sub, err := network.ParsePrefix(o.subnet)
		if err != nil {
			return tiered.Goal{}, false
		}
		g.Subnet = sub
		g.HasSubnet = true
	}
	return g, true
}

// finish closes the root span and writes the requested exports.
func finish(tr *obs.Trace, o cliOpts) error {
	tr.Root().End()
	tr.SampleMem()
	if o.verbose {
		tr.WriteTree(os.Stderr)
	}
	if o.traceJSON != "" {
		f, err := os.Create(o.traceJSON)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.traceChrome != "" {
		f, err := os.Create(o.traceChrome)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.promOut != "" {
		f, err := os.Create(o.promOut)
		if err != nil {
			return err
		}
		tr.WritePrometheus(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the -json verdict object: everything the text output
// says, as one machine-readable value on stdout.
type jsonReport struct {
	Check    string `json:"check"`
	Verified bool   `json:"verified"`
	// Tier names the verification tier that answered: "graph" for the
	// fast path, "sat" for solver fall-through, absent with -tiers none.
	Tier       string  `json:"tier,omitempty"`
	FastPathMs float64 `json:"fastpath_ms,omitempty"`
	// Mode (with -modular) names how the verdict was produced: "modular"
	// (composed from component checks), "monolithic" (single component or
	// out-of-vocabulary goal) or "fallback" (modular residue, listed).
	Mode             string   `json:"mode,omitempty"`
	Components       int      `json:"components,omitempty"`
	ComponentClasses int      `json:"component_classes,omitempty"`
	AliasHits        int      `json:"alias_hits,omitempty"`
	ComponentChecks  int      `json:"component_checks,omitempty"`
	PeakTerms        int      `json:"peak_terms,omitempty"`
	ModularResidue   []string `json:"modular_residue,omitempty"`
	ViolatedContract string   `json:"violated_contract,omitempty"`

	ElapsedMs      float64    `json:"elapsed_ms"`
	EncodeMs       float64    `json:"encode_ms,omitempty"`
	SimplifyMs     float64    `json:"simplify_ms,omitempty"`
	SolveMs        float64    `json:"solve_ms,omitempty"`
	CertifyMs      float64    `json:"certify_ms,omitempty"`
	SATVars        int        `json:"sat_vars,omitempty"`
	SATClauses     int        `json:"sat_clauses,omitempty"`
	Blame          []string   `json:"blame,omitempty"`
	Solver         *jsonStats `json:"solver,omitempty"`
	Proof          *jsonProof `json:"proof,omitempty"`
	Counterexample *jsonCex   `json:"counterexample,omitempty"`
	Difference     string     `json:"difference,omitempty"`
	// Cost is the hierarchical resource ledger (-cost): per-phase work
	// units, clause-db/proof bytes and wall/CPU time, each node's work
	// equal to its self work plus its children's.
	Cost *cost.Node `json:"cost,omitempty"`
}

// jsonProof reports the checked DRAT certificate behind a verified
// verdict (-certify only).
type jsonProof struct {
	Checked   bool    `json:"checked"`
	Steps     int     `json:"steps"`
	Inputs    int     `json:"inputs"`
	Lemmas    int     `json:"lemmas"`
	Deletions int     `json:"deletions"`
	CheckMs   float64 `json:"check_ms"`
}

type jsonStats struct {
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Learned      int64 `json:"learned"`
	Restarts     int64 `json:"restarts"`
}

type jsonPacket struct {
	DstIP    string `json:"dst_ip"`
	SrcIP    string `json:"src_ip"`
	Protocol int    `json:"protocol"`
	SrcPort  int    `json:"src_port"`
	DstPort  int    `json:"dst_port"`
}

type jsonAnn struct {
	Peer        string   `json:"peer"`
	Prefix      string   `json:"prefix"`
	PathLen     int      `json:"path_len"`
	MED         int      `json:"med"`
	Communities []string `json:"communities,omitempty"`
}

type jsonCex struct {
	Packet        jsonPacket `json:"packet"`
	Announcements []jsonAnn  `json:"announcements"`
	FailedLinks   []string   `json:"failed_links"`
	Forwarding    []string   `json:"forwarding,omitempty"`
	ReplayAgrees  *bool      `json:"replay_agrees,omitempty"`
	ReplayDiffs   []string   `json:"replay_diffs,omitempty"`
}

// costTree picks the ledger to report: the modular composition's
// per-class tree when there is one (it keeps the component detail the
// composed result folds away), otherwise the result's own ledger.
func costTree(res *core.Result, mod modResult) *cost.Node {
	if r := mod.report; r != nil && r.Cost != nil {
		return r.Cost
	}
	if res != nil {
		return res.Cost
	}
	return nil
}

// printCost writes the indented cost table after the text verdict
// (-cost without -json).
func printCost(o cliOpts, n *cost.Node) {
	if !o.costOut || n == nil {
		return
	}
	fmt.Println("cost:")
	n.WriteTree(os.Stdout)
}

func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// emitJSONResult renders a solver-backed result as the -json object.
func emitJSONResult(o cliOpts, res *core.Result, m *core.Model, tr *obs.Trace, mod modResult) error {
	rep := jsonReport{
		Check:      o.check,
		Verified:   res.Verified,
		Tier:       res.Tier,
		FastPathMs: durMs(res.FastPathElapsed),
		ElapsedMs:  durMs(res.Elapsed),
		EncodeMs:   durMs(res.EncodeElapsed),
		SimplifyMs: durMs(res.SimplifyElapsed),
		SolveMs:    durMs(res.SolveElapsed),
		CertifyMs:  durMs(res.CertifyElapsed),
		Blame:      provenance.Strings(res.Blame),
		SATVars:    res.SATVars,
		SATClauses: res.SATClauses,
		Solver: &jsonStats{
			Conflicts:    res.Stats.Conflicts,
			Decisions:    res.Stats.Decisions,
			Propagations: res.Stats.Propagations,
			Learned:      res.Stats.Learned,
			Restarts:     res.Stats.Restarts,
		},
	}
	if res.Tier == tiered.TierGraph {
		// The solver never ran: drop the all-zero CDCL stats block.
		rep.Solver = nil
	}
	if mod.mode != "" {
		rep.Mode = mod.mode
		rep.ModularResidue = mod.residue
		rep.ViolatedContract = mod.violated
		if r := mod.report; r != nil {
			rep.Components = r.Components
			rep.ComponentClasses = r.Classes
			rep.AliasHits = r.AliasHits
			rep.ComponentChecks = r.Checks
			rep.PeakTerms = r.PeakTerms
			// The composed verdict never ran one whole-network solve; the
			// per-phase and CDCL numbers would misattribute component work.
			rep.Solver = nil
		}
	}
	if o.costOut {
		rep.Cost = costTree(res, mod)
	}
	if cert := res.Certificate; cert != nil {
		rep.Proof = &jsonProof{
			Checked: cert.Checked, Steps: cert.Steps,
			Inputs: cert.Inputs, Lemmas: cert.Lemmas, Deletions: cert.Deletions,
			CheckMs: durMs(cert.CheckElapsed),
		}
	}
	if cex := res.Counterexample; cex != nil {
		jc := &jsonCex{
			Packet: jsonPacket{
				DstIP:    cex.Packet.DstIP.String(),
				SrcIP:    cex.Packet.SrcIP.String(),
				Protocol: cex.Packet.Protocol,
				SrcPort:  cex.Packet.SrcPort,
				DstPort:  cex.Packet.DstPort,
			},
			Announcements: []jsonAnn{},
			FailedLinks:   []string{},
		}
		peers := make([]string, 0, len(cex.Env.Anns))
		for p := range cex.Env.Anns {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			a := cex.Env.Anns[p]
			jc.Announcements = append(jc.Announcements, jsonAnn{
				Peer: p, Prefix: a.Prefix.String(),
				PathLen: a.PathLen, MED: a.MED, Communities: a.Communities,
			})
		}
		for id := range cex.Env.FailedLinks {
			jc.FailedLinks = append(jc.FailedLinks, id)
		}
		sort.Strings(jc.FailedLinks)
		if m != nil {
			jc.Forwarding = m.DecodeForwarding(m.Main, cex.Assignment)
		}
		if o.replay && m != nil && o.check != "fault-invariance" {
			diffs, err := m.ReplayAgrees(cex)
			if err != nil {
				return fmt.Errorf("replay: %w", err)
			}
			agrees := len(diffs) == 0
			jc.ReplayAgrees = &agrees
			jc.ReplayDiffs = diffs
		}
		rep.Counterexample = jc
	}
	if err := emitJSON(rep); err != nil {
		return err
	}
	return finish(tr, o)
}

func emitJSON(rep jsonReport) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func report(check string, res *core.Result, m *core.Model, verbose bool, mod modResult) {
	fmt.Println(properties.Describe(check, res))
	switch res.Tier {
	case tiered.TierGraph:
		fmt.Printf("tier: graph fast path (%.2fms, no SAT model built)\n", durMs(res.FastPathElapsed))
	case tiered.TierSAT:
		fmt.Printf("tier: sat (fast-path residue after %.2fms)\n", durMs(res.FastPathElapsed))
	}
	switch mod.mode {
	case modular.ModeModular:
		r := mod.report
		fmt.Printf("mode: modular (%d components in %d classes, %d alias hits, %d checks, peak %d terms, %.1fms; no whole-network model built)\n",
			r.Components, r.Classes, r.AliasHits, r.Checks, r.PeakTerms, durMs(r.Elapsed))
	case modular.ModeFallback:
		fmt.Printf("mode: fallback to monolithic (modular residue: %s)\n", strings.Join(mod.residue, ", "))
		if mod.violated != "" {
			fmt.Printf("violated contract: %s\n", mod.violated)
		}
	case modular.ModeMonolithic:
		fmt.Println("mode: monolithic (single component or goal outside the modular vocabulary)")
	}
	if cert := res.Certificate; cert != nil {
		fmt.Printf("proof: checked (%d steps, %d lemmas, %d deletions, %.1fms check)\n",
			cert.Steps, cert.Lemmas, cert.Deletions, durMs(cert.CheckElapsed))
	}
	if len(res.Blame) > 0 {
		if res.Verified {
			fmt.Printf("blame: the verdict rests on %d configuration origins\n", len(res.Blame))
		} else {
			fmt.Printf("blame: the counterexample's forwarding is fixed by %d configuration origins\n", len(res.Blame))
		}
		for _, o := range res.Blame {
			fmt.Println("  " + o.String())
		}
	}
	if verbose && res.Counterexample != nil && m != nil {
		fmt.Println("forwarding state:")
		for _, line := range m.DecodeForwarding(m.Main, res.Counterexample.Assignment) {
			fmt.Println("  " + line)
		}
	}
	if verbose {
		fmt.Printf("phases: encode %.1fms, simplify %.1fms, solve %.1fms\n",
			durMs(res.EncodeElapsed), durMs(res.SimplifyElapsed), durMs(res.SolveElapsed))
		fmt.Printf("solver: %d conflicts, %d decisions, %d propagations\n",
			res.Stats.Conflicts, res.Stats.Decisions, res.Stats.Propagations)
	}
}

func loadConfigs(dir string) ([]*config.Router, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".cfg") || strings.HasSuffix(e.Name(), ".conf") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .cfg/.conf files in %s", dir)
	}
	var routers []*config.Router
	for _, name := range names {
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		r, err := config.Parse(string(text))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		routers = append(routers, r)
	}
	return routers, nil
}
