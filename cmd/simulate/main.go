// Command simulate runs the concrete control-plane simulator (the
// Batfish-style per-environment oracle) on a directory of configurations:
// given one destination and one environment, it prints every router's
// installed route and walks a packet through the data plane.
//
// Usage:
//
//	simulate -configs DIR -dst 10.0.0.1 -from R1 \
//	    [-announce "N1=8.8.8.0/24@2"]... [-fail R1,R2]... [-fail-ext R2,N1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/network"
	"repro/internal/simulator"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		configDir = flag.String("configs", "", "directory of router configuration files")
		dstFlag   = flag.String("dst", "", "destination IP")
		from      = flag.String("from", "", "source router for the forwarding walk")
		announces multiFlag
		fails     multiFlag
		failExts  multiFlag
	)
	flag.Var(&announces, "announce", "external announcement PEER=PREFIX@PATHLEN (repeatable)")
	flag.Var(&fails, "fail", "failed internal link A,B (repeatable)")
	flag.Var(&failExts, "fail-ext", "failed external link ROUTER,PEER (repeatable)")
	flag.Parse()
	if *configDir == "" || *dstFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configDir, *dstFlag, *from, announces, fails, failExts); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(dir, dstFlag, from string, announces, fails, failExts []string) error {
	routers, err := loadConfigs(dir)
	if err != nil {
		return err
	}
	g, err := harness.BuildGraph(routers)
	if err != nil {
		return err
	}
	dst, err := network.ParseIP(dstFlag)
	if err != nil {
		return err
	}
	env := simulator.NewEnvironment()
	for _, a := range announces {
		peer, rest, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("bad -announce %q (want PEER=PREFIX@PATHLEN)", a)
		}
		prefixStr, lenStr, _ := strings.Cut(rest, "@")
		p, err := network.ParsePrefix(prefixStr)
		if err != nil {
			return err
		}
		pathLen := 1
		if lenStr != "" {
			pathLen, err = strconv.Atoi(lenStr)
			if err != nil {
				return fmt.Errorf("bad path length in %q", a)
			}
		}
		env.Announce(peer, simulator.Announcement{Prefix: p, PathLen: pathLen})
	}
	for _, f := range fails {
		a, b, ok := strings.Cut(f, ",")
		if !ok {
			return fmt.Errorf("bad -fail %q (want A,B)", f)
		}
		env.Fail(a, b)
	}
	for _, f := range failExts {
		r, p, ok := strings.Cut(f, ",")
		if !ok {
			return fmt.Errorf("bad -fail-ext %q (want ROUTER,PEER)", f)
		}
		env.FailExternal(r, p)
	}

	sim := simulator.New(g)
	res, err := sim.Run(dst, env)
	if err != nil {
		return err
	}
	fmt.Printf("destination %v, environment: %v\n\nFIB entries:\n", dst, env)
	names := make([]string, 0, len(res.States))
	for n := range res.States {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println("  " + simulator.FIBEntry(res, n))
	}
	exts := make([]string, 0, len(res.ExportsToExt))
	for n := range res.ExportsToExt {
		exts = append(exts, n)
	}
	sort.Strings(exts)
	for _, n := range exts {
		if rec := res.ExportsToExt[n]; rec.Valid {
			fmt.Printf("  export to %s: %v\n", n, rec)
		}
	}
	if from != "" {
		w := sim.Walk(res, from, config.Packet{DstIP: dst, Protocol: 6, DstPort: 80})
		fmt.Printf("\nwalk from %s: %v\n", from, w)
		for _, p := range w.Paths {
			fmt.Println("  " + strings.Join(p, " -> "))
		}
	}
	return nil
}

func loadConfigs(dir string) ([]*config.Router, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && (strings.HasSuffix(e.Name(), ".cfg") || strings.HasSuffix(e.Name(), ".conf")) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .cfg/.conf files in %s", dir)
	}
	var routers []*config.Router
	for _, name := range names {
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		r, err := config.Parse(string(text))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		routers = append(routers, r)
	}
	return routers, nil
}
