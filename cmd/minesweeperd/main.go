// Command minesweeperd serves network verification over HTTP. Each POST
// /v1/verify carries router configurations plus one property spec; the
// daemon encodes every distinct network once, keeps an incremental solver
// session per network so repeated queries skip re-blasting the shared
// constraint system, and answers identical queries from a
// content-addressed verdict cache.
//
// Endpoints:
//
//	POST /v1/verify             verification job → verdict (counterexample, phase timings)
//	GET  /v1/jobs               recent jobs, newest first
//	GET  /v1/jobs/{id}          one job record
//	GET  /v1/jobs/{id}/profile  the job's hot-constraint origin profile
//	                            (with -profile-origins; ?format=collapsed
//	                            for flamegraph collapsed-stack text)
//	GET  /v1/jobs/{id}/events   live telemetry stream (Server-Sent Events):
//	                            the job's flight recorder replayed from the
//	                            buffer, then followed live; reconnect with
//	                            Last-Event-ID (or ?after=N) to resume
//	GET  /v1/jobs/{id}/timeline the buffered flight-recorder events as JSON
//	                            (available for finished, timed-out and
//	                            cancelled jobs alike)
//	GET  /v1/jobs/{id}/trace    the job's span tree as Chrome trace_event
//	                            JSON — load it in Perfetto or chrome://tracing
//	GET  /metrics               Prometheus text exposition (same exporter as minesweeper -prom)
//	GET  /healthz               liveness
//
// With -blame every verdict carries the configuration origins it depends
// on (the UNSAT core's origins for verified properties, the forwarding
// decisions' origins for counterexamples). With -debug-addr the daemon
// serves net/http/pprof on a second, private listener:
//
//	minesweeperd -listen :8080 -debug-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// Logs are structured (log/slog, text format): one line per request with
// a unique request id, plus lifecycle events.
//
// Example:
//
//	minesweeperd -listen :8080 -workers 4 -blame &
//	curl -s localhost:8080/v1/verify -d '{
//	  "configs": {"r1.cfg": "hostname R1\n..."},
//	  "check": "reachability", "src": "R1", "subnet": "10.3.3.0/24"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/psolve"
	"repro/internal/service"
	"repro/internal/tiered"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "address to serve HTTP on")
		debugAddr = flag.String("debug-addr", "", "address to serve net/http/pprof on (empty: disabled); keep it private")
		workers   = flag.Int("workers", 2, "concurrent verification workers")
		queue     = flag.Int("queue", 64, "maximum queued jobs before 429s")
		timeout   = flag.Duration("timeout", 120*time.Second, "default per-job deadline")
		passes    = flag.String("passes", "", "optimization passes: comma list of hoist,slice,fold,cse,propagate,coi, or all/none (default: all)")
		tiers     = flag.String("tiers", "", "verification tiers: graph,sat (default; sound graph fast path, residue to the solver), or sat/none to disable the fast path")
		parallel  = flag.String("parallel", "off", "parallel solve strategy: off, portfolio (race configured solver clones), cubes (split on environment variables), or auto")
		parWk     = flag.Int("parallel-workers", 0, "solver-level parallelism per check (0: one per CPU); shares the verification worker pool")
		mod       = flag.Bool("modular", false, "verify multi-component networks by assume/guarantee composition (cut at eBGP interfaces, per-component checks on the worker pool; residue falls back to the monolithic pipeline)")
		certify   = flag.Bool("certify", false, "record DRAT proof traces and check verified verdicts with the independent checker")
		blame     = flag.Bool("blame", false, "report the configuration origins each verdict depends on (implies proof logging)")
		profOrig  = flag.Bool("profile-origins", false, "keep per-origin solver counters and serve each job's hot-constraint profile")
		maxJobs   = flag.Int("max-jobs", 1024, "finished jobs retained before FIFO eviction (bounds memory with their flight recorders)")
		eventBuf  = flag.Int("event-buffer", 0, "per-job flight-recorder capacity in events (0: default 1024)")
		progress  = flag.Int64("progress-every", 1000, "emit a solver.progress event every N conflicts (<0: disabled)")
		workBud   = flag.Int64("work-budget", 0, "per-job solver work-unit budget (decisions+propagations+conflicts; 0: unlimited); over-budget jobs finish with a budget_exceeded verdict")
		memBud    = flag.Int64("mem-budget", 0, "live-heap byte ceiling while a job's solver runs (0: unlimited); breaching jobs are cancelled with a budget_exceeded verdict instead of OOMing the daemon")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()
	if err := core.ValidatePasses(*passes); err != nil {
		fmt.Fprintln(os.Stderr, "minesweeperd:", err)
		os.Exit(2)
	}
	if err := tiered.ValidateTiers(*tiers); err != nil {
		fmt.Fprintln(os.Stderr, "minesweeperd:", err)
		os.Exit(2)
	}
	if !psolve.ValidMode(*parallel) {
		fmt.Fprintf(os.Stderr, "minesweeperd: unknown -parallel mode %q (want off, portfolio, cubes or auto)\n", *parallel)
		os.Exit(2)
	}
	level := new(slog.LevelVar)
	if err := parseLogLevel(level, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "minesweeperd:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	opts := service.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		Timeout:         *timeout,
		Passes:          *passes,
		Tiers:           *tiers,
		Parallel:        *parallel,
		ParallelWorkers: *parWk,
		Modular:         *mod,
		Certify:         *certify,
		Blame:           *blame,
		ProfileOrigins:  *profOrig,
		MaxJobs:         *maxJobs,
		EventBuffer:     *eventBuf,
		ProgressEvery:   *progress,
		WorkBudget:      *workBud,
		MemBudgetBytes:  *memBud,
	}
	if err := run(logger, *listen, *debugAddr, opts); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

func run(logger *slog.Logger, listen, debugAddr string, opts service.Options) error {
	opts.Trace = obs.New("minesweeperd")
	opts.Logger = logger
	engine := service.NewEngine(opts)
	defer engine.Close()

	srv := &http.Server{
		Addr:              listen,
		Handler:           NewLoggingHandler(logger, service.NewHandler(engine)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", listen, "workers", opts.Workers,
		"timeout", opts.Timeout, "tiers", tiersLabel(opts.Tiers),
		"certify", opts.Certify, "blame", opts.Blame,
		"profile_origins", opts.ProfileOrigins, "max_jobs", opts.MaxJobs,
		"progress_every", opts.ProgressEvery,
		"work_budget", opts.WorkBudget, "mem_budget", opts.MemBudgetBytes)

	if debugAddr != "" {
		dbg := &http.Server{
			Addr:              debugAddr,
			Handler:           newDebugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		defer dbg.Close()
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", debugAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", debugAddr, "path", "/debug/pprof/")
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// parseLogLevel sets the handler's LevelVar from the -log-level flag. A
// LevelVar (rather than a fixed level) keeps the door open for runtime
// adjustment; today only startup sets it.
func parseLogLevel(v *slog.LevelVar, s string) error {
	switch s {
	case "debug":
		v.Set(slog.LevelDebug)
	case "info":
		v.Set(slog.LevelInfo)
	case "warn":
		v.Set(slog.LevelWarn)
	case "error":
		v.Set(slog.LevelError)
	default:
		return fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", s)
	}
	return nil
}

// tiersLabel names the effective tier configuration for the startup log
// line (the empty flag value means the default, graph,sat).
func tiersLabel(s string) string {
	if tiered.Enabled(s) {
		return "graph,sat"
	}
	return "sat"
}

// newDebugMux serves net/http/pprof on an explicit mux (rather than the
// default one) so the debug listener exposes exactly the profiling
// endpoints and nothing another package may have registered globally.
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// reqSeq numbers requests for the per-request log id.
var reqSeq atomic.Int64

// NewLoggingHandler wraps a handler with one structured access-log line
// per request, tagged with a unique request id that is also echoed in
// the X-Request-ID response header so clients can quote it. Handlers
// enrich their own line through service.AddLogExtra — the verify
// endpoint adds the verdict and its encode/simplify/solve phase split,
// the telemetry endpoints the job id they served — so one grep over the
// access log reconstructs what each request cost and answered.
func NewLoggingHandler(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := fmt.Sprintf("req-%06d", reqSeq.Add(1))
		w.Header().Set("X-Request-ID", id)
		ctx, extras := service.WithLogExtras(r.Context())
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(ctx))
		args := []any{"id", id, "method", r.Method, "path", r.URL.Path,
			"status", rec.status,
			"ms", float64(time.Since(start).Microseconds()) / 1000}
		args = append(args, extras.Pairs()...)
		logger.Info("request", args...)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the logging middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
