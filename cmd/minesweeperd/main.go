// Command minesweeperd serves network verification over HTTP. Each POST
// /v1/verify carries router configurations plus one property spec; the
// daemon encodes every distinct network once, keeps an incremental solver
// session per network so repeated queries skip re-blasting the shared
// constraint system, and answers identical queries from a
// content-addressed verdict cache.
//
// Endpoints:
//
//	POST /v1/verify    verification job → verdict (counterexample, phase timings)
//	GET  /v1/jobs      recent jobs, newest first
//	GET  /v1/jobs/{id} one job record
//	GET  /metrics      Prometheus text exposition (same exporter as minesweeper -prom)
//	GET  /healthz      liveness
//
// Example:
//
//	minesweeperd -listen :8080 -workers 4 &
//	curl -s localhost:8080/v1/verify -d '{
//	  "configs": {"r1.cfg": "hostname R1\n..."},
//	  "check": "reachability", "src": "R1", "subnet": "10.3.3.0/24"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "address to serve HTTP on")
		workers = flag.Int("workers", 2, "concurrent verification workers")
		queue   = flag.Int("queue", 64, "maximum queued jobs before 429s")
		timeout = flag.Duration("timeout", 120*time.Second, "default per-job deadline")
		passes  = flag.String("passes", "", "optimization passes: comma list of hoist,slice,fold,cse,propagate,coi, or all/none (default: all)")
		certify = flag.Bool("certify", false, "record DRAT proof traces and check verified verdicts with the independent checker")
	)
	flag.Parse()
	if err := core.ValidatePasses(*passes); err != nil {
		fmt.Fprintln(os.Stderr, "minesweeperd:", err)
		os.Exit(2)
	}
	if err := run(*listen, *workers, *queue, *timeout, *passes, *certify); err != nil {
		fmt.Fprintln(os.Stderr, "minesweeperd:", err)
		os.Exit(1)
	}
}

func run(listen string, workers, queue int, timeout time.Duration, passes string, certify bool) error {
	engine := service.NewEngine(service.Options{
		Workers:    workers,
		QueueDepth: queue,
		Timeout:    timeout,
		Passes:     passes,
		Certify:    certify,
		Trace:      obs.New("minesweeperd"),
	})
	defer engine.Close()

	srv := &http.Server{
		Addr:              listen,
		Handler:           NewLoggingHandler(service.NewHandler(engine)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("minesweeperd listening on %s (%d workers, %s job timeout)", listen, workers, timeout)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("minesweeperd shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// NewLoggingHandler wraps a handler with one access-log line per request.
func NewLoggingHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		log.Printf("%s %s %d %.1fms", r.Method, r.URL.Path, rec.status,
			float64(time.Since(start).Microseconds())/1000)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
