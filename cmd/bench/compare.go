package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// compareRow is the verdict on one (pods, property) row present in both
// artifacts.
type compareRow struct {
	Pods     int
	Property string
	OldMs    float64
	NewMs    float64
	// DeltaPct is the relative change in percent (+ slower, - faster).
	DeltaPct float64
	// Regressed is true when the row slowed beyond both the relative
	// tolerance and the absolute floor, its verdict flipped, or a
	// deterministic work column grew past the work tolerance.
	Regressed bool
	// Flipped is true when verified changed between artifacts — a
	// correctness alarm, reported as a regression regardless of timing.
	Flipped bool
	// WorkColumn names the deterministic work column (conflicts,
	// decisions, propagations, clause_db_bytes) whose growth tripped the
	// work gate; WorkDeltaPct is its relative growth in percent. Work
	// columns are machine-independent at a fixed seed, so they catch
	// algorithmic regressions the noisy timing gate has to tolerate.
	WorkColumn    string
	WorkDeltaPct  float64
	WorkRegressed bool
}

// workColumns extracts the deterministic counters the work gate
// compares. Columns at zero in the old artifact (pre-cost baselines, or
// graph-tier rows that never ran the solver) are not gated.
func workColumns(r fig8JSON) [](struct {
	Name string
	V    int64
}) {
	return [](struct {
		Name string
		V    int64
	}){
		{"conflicts", r.Conflicts},
		{"decisions", r.Decisions},
		{"propagations", r.Propagations},
		{"clause_db_bytes", r.ClauseDBBytes},
	}
}

// compareArtifacts diffs two BENCH_fig8.json artifacts row by row over
// their shared (pods, property) keys. A row regresses when
//
//	newMs > oldMs·(1+tolerance)  AND  newMs − oldMs > minMs
//
// — the relative gate catches real slowdowns, the absolute floor keeps
// sub-millisecond noise on fast rows from tripping it. A flipped
// verified bit is always a regression: the gate guards the answers as
// well as the clock. The aggregate (summed ms over shared rows) is held
// to the same relative tolerance.
//
// Independently, the deterministic work columns (conflicts, decisions,
// propagations, clause_db_bytes) are held to workTol — typically far
// tighter than the timing tolerance, since at a fixed seed they don't
// move with machine load. Any column growing past workTol regresses the
// row even when its wall time stayed flat.
func compareArtifacts(oldRows, newRows []fig8JSON, tolerance, minMs, workTol float64) (rows []compareRow, aggRegressed bool, oldTotal, newTotal float64) {
	type key struct {
		pods int
		prop string
	}
	oldBy := make(map[key]fig8JSON, len(oldRows))
	for _, r := range oldRows {
		oldBy[key{r.Pods, r.Property}] = r
	}
	for _, n := range newRows {
		o, ok := oldBy[key{n.Pods, n.Property}]
		if !ok {
			continue
		}
		row := compareRow{
			Pods: n.Pods, Property: n.Property,
			OldMs: o.Ms, NewMs: n.Ms,
			Flipped: o.Verified != n.Verified,
		}
		if o.Ms > 0 {
			row.DeltaPct = 100 * (n.Ms/o.Ms - 1)
		}
		oldWork, newWork := workColumns(o), workColumns(n)
		for i, ow := range oldWork {
			if ow.V <= 0 {
				continue
			}
			delta := 100 * (float64(newWork[i].V)/float64(ow.V) - 1)
			if row.WorkColumn == "" || delta > row.WorkDeltaPct {
				row.WorkDeltaPct = delta
				row.WorkColumn = ow.Name
			}
			if delta > 100*workTol {
				row.WorkRegressed = true
			}
		}
		slower := n.Ms > o.Ms*(1+tolerance) && n.Ms-o.Ms > minMs
		row.Regressed = slower || row.Flipped || row.WorkRegressed
		oldTotal += o.Ms
		newTotal += n.Ms
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Pods != rows[j].Pods {
			return rows[i].Pods < rows[j].Pods
		}
		return rows[i].Property < rows[j].Property
	})
	aggRegressed = newTotal > oldTotal*(1+tolerance) && newTotal-oldTotal > minMs
	return rows, aggRegressed, oldTotal, newTotal
}

func loadFig8(path string) ([]fig8JSON, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []fig8JSON
	if err := json.NewDecoder(f).Decode(&rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// runCompare is the perf-regression gate: it diffs two fig8 JSON
// artifacts, prints the per-row and aggregate deltas to w, and returns
// the number of regressed rows (counting the aggregate as one more when
// it trips on its own). Timing rows are held to tolerance/minMs, the
// deterministic work columns to the (much tighter) workTol.
func runCompare(w io.Writer, oldPath, newPath string, tolerance, minMs, workTol float64) (int, error) {
	oldRows, err := loadFig8(oldPath)
	if err != nil {
		return 0, err
	}
	newRows, err := loadFig8(newPath)
	if err != nil {
		return 0, err
	}
	rows, aggRegressed, oldTotal, newTotal := compareArtifacts(oldRows, newRows, tolerance, minMs, workTol)
	if len(rows) == 0 {
		return 0, fmt.Errorf("no shared (pods, property) rows between %s and %s", oldPath, newPath)
	}
	fmt.Fprintf(w, "# bench compare: %s -> %s (tolerance %.0f%%, floor %.1fms, work tolerance %.1f%%)\n",
		oldPath, newPath, tolerance*100, minMs, workTol*100)
	fmt.Fprintln(w, "pods\tproperty\told_ms\tnew_ms\tdelta_pct\twork_delta\tstatus")
	regressed := 0
	for _, r := range rows {
		status := "ok"
		switch {
		case r.Flipped:
			status = "VERDICT-FLIPPED"
		case r.WorkRegressed:
			status = fmt.Sprintf("WORK-REGRESSED(%s)", r.WorkColumn)
		case r.Regressed:
			status = "REGRESSED"
		case r.DeltaPct < -10:
			status = "faster"
		}
		if r.Regressed {
			regressed++
		}
		workCol := "-"
		if r.WorkColumn != "" {
			workCol = fmt.Sprintf("%+.1f%%(%s)", r.WorkDeltaPct, r.WorkColumn)
		}
		fmt.Fprintf(w, "%d\t%s\t%.1f\t%.1f\t%+.1f%%\t%s\t%s\n",
			r.Pods, r.Property, r.OldMs, r.NewMs, r.DeltaPct, workCol, status)
	}
	aggDelta := 0.0
	if oldTotal > 0 {
		aggDelta = 100 * (newTotal/oldTotal - 1)
	}
	aggStatus := "ok"
	if aggRegressed {
		aggStatus = "REGRESSED"
		regressed++
	}
	fmt.Fprintf(w, "# aggregate: %.1fms -> %.1fms (%+.1f%%) %s\n",
		oldTotal, newTotal, aggDelta, aggStatus)
	if regressed > 0 {
		fmt.Fprintf(w, "# %d regression(s) beyond tolerance\n", regressed)
	}
	return regressed, nil
}
