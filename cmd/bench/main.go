// Command bench regenerates the paper's evaluation tables and figures
// (§8): the four-property violation counts over an operational population
// (§8.1), the per-network verification-time series of Figure 7, the
// data-center property sweep of Figure 8, and the §8.3 optimization
// ablation. Output is tab-separated rows, one series per block, matching
// the rows/series the paper reports.
//
// Usage:
//
//	bench -experiment violations [-count 152] [-seed 1]
//	bench -experiment fig7       [-count 152] [-seed 1]
//	bench -experiment fig8       [-pods 2,4,6] [-props all] [-json-out BENCH_fig8.json] [-certify]
//	bench -experiment fig8       -profile-origins [-profile-out BENCH_origins.folded]
//	bench -experiment fig8       -tiers graph,sat   (answer rows through the graph fast path)
//	bench -experiment tiered     [-pods 2,4] [-json-out BENCH_tiered.json]
//	bench -experiment modular    [-pods 2,4,16,32] [-mono-max 4] [-workers N] [-json-out BENCH_modular.json]
//	bench -experiment ablation   [-pods 4]
//	bench -experiment service    [-pods 2] [-json-out BENCH_service.json]
//	bench -experiment parallel   [-pods 4] [-workers N] [-certify] [-json-out BENCH_parallel.json]
//	bench -experiment fuzz       [-iters 2] [-seed 1]
//	bench -compare [-tolerance 0.25] [-min-ms 5] [-work-tolerance 0.02] old.json new.json
//
// -compare is the perf-regression gate: it diffs two fig8 JSON artifacts
// row by row over their shared (pods, property) keys and exits nonzero
// when any row — or the aggregate — slowed beyond the relative tolerance
// and the absolute -min-ms floor, or when a verified bit flipped. The
// deterministic work columns (conflicts, decisions, propagations,
// clause_db_bytes) are gated independently by -work-tolerance: at a
// fixed seed they are machine-independent, so a few percent of growth is
// an algorithmic regression even when the (noisy) wall-clock gate stays
// green. CI runs it against the committed BENCH_fig8.json baseline.
//
// The service experiment measures the batch engine's amortization: the
// same ≥10-property suite on one fabric, verified once with a fresh
// solver per property and once over a single incremental session.
//
// The modular experiment runs the assume/guarantee pipeline
// (internal/modular) on every Figure 8 property per fabric size: cut at
// the eBGP interfaces, verify one representative per isomorphism class
// of components, compose the blamed verdicts. Fabrics with pods <=
// -mono-max are also answered monolithically and the verdicts must
// agree (a disagreement exits nonzero); larger fabrics — where the
// monolithic encoding is infeasible — report the modular side alone.
//
// The tiered experiment answers every Figure 8 row twice — once on the
// sound graph fast path (internal/tiered), once on the SAT pipeline —
// reports the fast path's hit rate and per-row speedup, and exits
// nonzero if any definitive graph verdict disagrees with the solver.
// Plain fig8 runs stay untiered unless -tiers graph,sat is passed, so
// the committed BENCH_fig8.json baseline keeps measuring the solver.
//
// With -certify, fig8 records a DRAT proof trace per query and replays it
// through the independent checker; the proof_steps/proof_lemmas/
// proof_check_ms columns report the certificate size and overhead.
//
// The fuzz experiment is a deterministic smoke run of the differential
// fuzzing subsystem (internal/fuzz): every scenario family is generated
// -iters times and pushed through all oracles — simulator differential,
// pass-pipeline/renaming/execution-path metamorphic parity, and DRAT
// certification of every UNSAT verdict.
//
// With -profile-origins, fig8 answers every query twice — once plain,
// once with solver origin attribution — reports the attribution overhead
// on solve time per row (origin_overhead_pct in the JSON artifact), and
// writes the merged per-origin hot-constraint profile as a
// flamegraph-compatible collapsed-stack file (-profile-out).
//
// Observability: -trace-json FILE dumps the span tree of a fig8/ablation
// run as JSON, and -progress N prints solver progress to stderr every N
// conflicts. -cpuprofile/-memprofile write runtime/pprof profiles of the
// bench process itself.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/modular"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/sat"
	"repro/internal/tiered"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "violations | fig7 | fig8 | ablation")
		count      = flag.Int("count", 152, "population size for violations/fig7")
		seed       = flag.Int64("seed", 1, "population base seed")
		podsFlag   = flag.String("pods", "2,4,6", "comma-separated pod counts for fig8/ablation")
		propsFlag  = flag.String("props", "all", "comma-separated figure-8 properties, or 'all'")
		jsonOut    = flag.String("json-out", "BENCH_fig8.json", "fig8 JSON artifact path ('' to skip)")
		traceJSON  = flag.String("trace-json", "", "write the fig8/ablation span tree as JSON to this file")
		progress   = flag.String("progress", "", "print solver progress to stderr every N conflicts")
		passesFlag = flag.String("passes", "", "optimization passes: comma list of hoist,slice,fold,cse,propagate,coi, or all/none (default: all; ablation pins its own)")
		tiersFlag  = flag.String("tiers", "", "fig8: verification tiers (graph,sat enables the fast path; default: untiered, measuring the solver)")
		certify    = flag.Bool("certify", false, "fig8: record DRAT proofs and check verified verdicts, adding the proof columns")
		monoMax    = flag.Int("mono-max", 4, "modular: largest pod count also verified monolithically for the reference comparison")
		workers    = flag.Int("workers", runtime.NumCPU(), "modular/parallel: solver-level parallelism")
		iters      = flag.Int("iters", 2, "fuzz: iterations per scenario family")
		profOrig   = flag.Bool("profile-origins", false, "fig8: run every query twice to measure origin-attribution overhead and collect the per-origin hot-constraint profile")
		profOut    = flag.String("profile-out", "BENCH_origins.folded", "collapsed-stack output path for -profile-origins ('' to skip)")
		cpuProf    = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a runtime/pprof heap profile at exit to this file")
		compare    = flag.Bool("compare", false, "compare two fig8 JSON artifacts (old new) and exit nonzero on a perf regression")
		tolerance  = flag.Float64("tolerance", 0.25, "compare: relative slowdown tolerated per row and on the aggregate (0.25 = 25%)")
		minMs      = flag.Float64("min-ms", 5, "compare: absolute slowdown floor in ms below which a row never regresses")
		workTol    = flag.Float64("work-tolerance", 0.02, "compare: relative growth tolerated on the deterministic work columns (conflicts, decisions, propagations, clause_db_bytes); they don't move with machine load, so the gate is tight")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: bench -compare [-tolerance F] [-min-ms F] old.json new.json")
			os.Exit(2)
		}
		n, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *tolerance, *minMs, *workTol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(2)
		}
		if n > 0 {
			os.Exit(1)
		}
		return
	}
	if err := core.ValidatePasses(*passesFlag); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	if err := tiered.ValidateTiers(*tiersFlag); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
			}
		}()
	}

	var tr *obs.Trace
	if *traceJSON != "" {
		tr = obs.New("bench:" + *experiment)
	}
	every := int64(0)
	if *progress != "" {
		n, err := strconv.ParseInt(*progress, 10, 64)
		if err != nil || n <= 0 {
			fmt.Fprintln(os.Stderr, "bench: -progress wants a positive integer")
			os.Exit(2)
		}
		every = n
	}

	var err error
	switch *experiment {
	case "violations":
		err = runViolations(*count, *seed)
	case "fig7":
		err = runFig7(*count, *seed)
	case "fig8":
		err = runFig8(parseInts(*podsFlag), parseProps(*propsFlag), *jsonOut, tr, every, *passesFlag, *tiersFlag, *certify, *profOrig, *profOut)
	case "tiered":
		out := *jsonOut
		if out == "BENCH_fig8.json" {
			out = "BENCH_tiered.json"
		}
		err = runTiered(parseInts(*podsFlag), parseProps(*propsFlag), out, *passesFlag)
	case "modular":
		out := *jsonOut
		if out == "BENCH_fig8.json" {
			out = "BENCH_modular.json"
		}
		err = runModular(parseInts(*podsFlag), parseProps(*propsFlag), out, *passesFlag, *monoMax, *workers)
	case "ablation":
		ks := parseInts(*podsFlag)
		if len(ks) == 0 {
			ks = []int{4}
		}
		err = runAblation(ks[0], tr, every)
	case "service":
		out := *jsonOut
		if out == "BENCH_fig8.json" {
			out = "BENCH_service.json"
		}
		ks := parseInts(*podsFlag)
		if len(ks) == 0 {
			ks = []int{2}
		}
		err = runService(ks, out, tr, every, *passesFlag)
	case "parallel":
		out := *jsonOut
		if out == "BENCH_fig8.json" {
			out = "BENCH_parallel.json"
		}
		err = runParallel(parseInts(*podsFlag), parseProps(*propsFlag), out, *passesFlag, *workers, *certify)
	case "fuzz":
		err = runFuzz(*iters, *seed)
	default:
		fmt.Fprintln(os.Stderr, "usage: bench -experiment violations|fig7|fig8|tiered|modular|ablation|service|parallel|fuzz")
		os.Exit(2)
	}
	if err == nil && tr != nil {
		tr.Root().End()
		tr.SampleMem()
		err = writeTrace(tr, *traceJSON)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func writeTrace(tr *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// progressPrinter returns a hook that writes one stderr line per sample.
func progressPrinter(label string) func(sat.Progress) {
	return func(p sat.Progress) {
		fmt.Fprintf(os.Stderr, "progress %s: conflicts=%d decisions=%d propagations=%d learned=%d restarts=%d\n",
			label, p.Conflicts, p.Decisions, p.Propagations, p.Learned, p.Restarts)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err == nil {
			out = append(out, n)
		}
	}
	return out
}

func parseProps(s string) []string {
	if s == "all" {
		return harness.AllFig8Props()
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runViolations reproduces the §8.1 violation counts.
func runViolations(count int, seed int64) error {
	pop, err := netgen.Population(count, seed, netgen.DefaultParams())
	if err != nil {
		return err
	}
	sum, err := harness.RunSection81(pop, harness.AllSection81Props())
	if err != nil {
		return err
	}
	fmt.Printf("# §8.1 violations over %d networks (paper: 67, 29, 24, 0 of 152)\n", sum.Total)
	fmt.Println("property\tviolations")
	for _, prop := range harness.AllSection81Props() {
		fmt.Printf("%s\t%d\n", prop, sum.Violations[prop])
	}
	fmt.Printf("total\t%d\n", sum.Violations[harness.PropMgmtReach]+
		sum.Violations[harness.PropLocalEquiv]+
		sum.Violations[harness.PropBlackholes]+
		sum.Violations[harness.PropFaultInvar])
	return nil
}

// runFig7 reproduces the four timing panels of Figure 7: verification time
// per network, sorted by total lines of configuration. The encode_ms and
// solve_ms columns total the phase split across the four properties.
func runFig7(count int, seed int64) error {
	pop, err := netgen.Population(count, seed, netgen.DefaultParams())
	if err != nil {
		return err
	}
	sum, err := harness.RunSection81(pop, harness.AllSection81Props())
	if err != nil {
		return err
	}
	sort.Slice(sum.PerNet, func(i, j int) bool { return sum.PerNet[i].Lines < sum.PerNet[j].Lines })
	fmt.Println("# Figure 7: per-network verification time (ms), sorted by config lines")
	fmt.Println("network\trouters\tlines\tmgmt_ms\tequiv_ms\tblackhole_ms\tfaultinv_ms\tencode_ms\tsolve_ms")
	for _, nc := range sum.PerNet {
		var enc, solve float64
		for _, prop := range harness.AllSection81Props() {
			pr := nc.Results[prop]
			enc += float64(pr.Encode.Microseconds()) / 1000
			solve += float64(pr.Solve.Microseconds()) / 1000
		}
		fmt.Printf("%s\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			nc.Name, nc.Routers, nc.Lines,
			ms(nc, harness.PropMgmtReach), ms(nc, harness.PropLocalEquiv),
			ms(nc, harness.PropBlackholes), ms(nc, harness.PropFaultInvar),
			enc, solve)
	}
	fmt.Printf("# violations: mgmt=%d equiv=%d blackholes=%d fault-invariance=%d of %d\n",
		sum.Violations[harness.PropMgmtReach], sum.Violations[harness.PropLocalEquiv],
		sum.Violations[harness.PropBlackholes], sum.Violations[harness.PropFaultInvar], sum.Total)
	return nil
}

func ms(nc *harness.NetCheck, prop string) float64 {
	return float64(nc.Results[prop].Elapsed.Microseconds()) / 1000
}

// fig8JSON is one row of the BENCH_fig8.json artifact: the machine-
// diffable form of the Figure 8 table, so performance can be compared
// across revisions without parsing the text output.
type fig8JSON struct {
	Pods       int     `json:"pods"`
	Routers    int     `json:"routers"`
	Property   string  `json:"property"`
	Ms         float64 `json:"ms"`
	EncodeMs   float64 `json:"encode_ms"`
	SimplifyMs float64 `json:"simplify_ms"`
	SolveMs    float64 `json:"solve_ms"`
	Verified   bool    `json:"verified"`
	SATVars    int     `json:"sat_vars"`
	SATClauses int     `json:"sat_clauses"`
	Conflicts  int64   `json:"conflicts"`
	// Deterministic work columns: the adopted search's counters plus the
	// ledger's clause-db/proof byte estimates. Unlike the ms columns these
	// are machine-independent at a fixed seed (sequential search), so
	// -compare gates them with -work-tolerance, far tighter than the
	// timing tolerance.
	Decisions     int64   `json:"decisions,omitempty"`
	Propagations  int64   `json:"propagations,omitempty"`
	ClauseDBBytes int64   `json:"clause_db_bytes,omitempty"`
	ProofBytes    int64   `json:"proof_bytes,omitempty"`
	ProofSteps    int     `json:"proof_steps,omitempty"`
	ProofLemmas   int     `json:"proof_lemmas,omitempty"`
	ProofCheckMs  float64 `json:"proof_check_ms,omitempty"`
	// With -profile-origins: the solve time of the origin-tracked rerun
	// and its overhead relative to the plain solve, in percent.
	TrackedSolveMs    float64 `json:"tracked_solve_ms,omitempty"`
	OriginOverheadPct float64 `json:"origin_overhead_pct,omitempty"`
	// Tier names which verification tier answered the row: "sat" (the
	// solver — always the case without -tiers) or "graph" (the sound
	// fast path decided it and no SAT model was built). FastPathMs is
	// the graph attempt's cost, present only on tiered runs.
	Tier       string  `json:"tier,omitempty"`
	FastPathMs float64 `json:"fastpath_ms,omitempty"`
}

// runFig8 reproduces Figure 8: verification time per property per fabric
// size.
func runFig8(pods []int, props []string, jsonOut string, tr *obs.Trace, every int64, passes, tiers string, certify, profOrig bool, profOut string) error {
	fmt.Println("# Figure 8: verification time (ms) per property and fabric size")
	fmt.Println("pods\trouters\tproperty\ttier\tms\tencode_ms\tsimplify_ms\tsolve_ms\tfastpath_ms\tverified\tsat_vars\tsat_clauses\tconflicts\tdecisions\tpropagations\tdb_bytes\tproof_bytes\tproof_steps\tproof_lemmas\tproof_check_ms")
	var art []fig8JSON
	var profiles []*provenance.Profile
	var baseSolve, trackedSolve time.Duration
	for _, k := range pods {
		f, err := harness.BuildFabric(k)
		if err != nil {
			return err
		}
		f.Passes = passes
		f.Tiers = tiers
		f.Certify = certify
		var podSp *obs.Span
		if tr != nil {
			podSp = tr.Root().Start(fmt.Sprintf("pods:%d", k))
			f.Obs = podSp
		}
		if every > 0 {
			f.ProgressEvery = every
			f.OnProgress = progressPrinter(fmt.Sprintf("pods=%d", k))
		}
		for _, prop := range props {
			row, err := harness.RunFig8Property(f, prop)
			if err != nil {
				return err
			}
			toMs := func(d interface{ Microseconds() int64 }) float64 {
				return float64(d.Microseconds()) / 1000
			}
			// Untiered runs never consult the fast path, but the solver
			// still answered the row — name the tier explicitly so the
			// artifact is self-describing either way.
			tier := row.Tier
			if tier == "" {
				tier = tiered.TierSAT
			}
			fmt.Printf("%d\t%d\t%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%v\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\n",
				row.Pods, row.Routers, row.Property, tier,
				toMs(row.Elapsed), toMs(row.Encode), toMs(row.Simplify), toMs(row.Solve),
				toMs(row.FastPath),
				row.Verified, row.SATVars, row.SATClauses, row.Conflicts,
				row.Decisions, row.Propagations, row.ClauseDBBytes, row.ProofBytes,
				row.ProofSteps, row.ProofLemmas, toMs(row.ProofCheck))
			jrow := fig8JSON{
				Pods: row.Pods, Routers: row.Routers, Property: row.Property,
				Ms: toMs(row.Elapsed), EncodeMs: toMs(row.Encode),
				SimplifyMs: toMs(row.Simplify), SolveMs: toMs(row.Solve),
				Verified: row.Verified, SATVars: row.SATVars,
				SATClauses: row.SATClauses, Conflicts: row.Conflicts,
				Decisions: row.Decisions, Propagations: row.Propagations,
				ClauseDBBytes: row.ClauseDBBytes, ProofBytes: row.ProofBytes,
				ProofSteps: row.ProofSteps, ProofLemmas: row.ProofLemmas,
				ProofCheckMs: toMs(row.ProofCheck),
				Tier:         tier, FastPathMs: toMs(row.FastPath),
			}
			if profOrig && prop != harness.Fig8LocalConsist {
				// Rerun with attribution on: the delta on solve time is the
				// cost of origin tracking; the profile is the payoff.
				f.ProfileOrigins = true
				trow, err := harness.RunFig8Property(f, prop)
				f.ProfileOrigins = false
				if err != nil {
					return err
				}
				profiles = append(profiles, trow.Profile)
				baseSolve += row.Solve
				trackedSolve += trow.Solve
				jrow.TrackedSolveMs = toMs(trow.Solve)
				if row.Solve > 0 {
					jrow.OriginOverheadPct = 100 * (float64(trow.Solve)/float64(row.Solve) - 1)
				}
				if tr != nil && trow.Profile != nil {
					for _, r := range trow.Profile.Rows {
						tr.Observe("origin.conflicts", float64(r.Conflicts))
						tr.Observe("origin.propagations", float64(r.Propagations))
					}
				}
			}
			art = append(art, jrow)
		}
		podSp.End()
	}
	if profOrig {
		overall := 0.0
		if baseSolve > 0 {
			overall = 100 * (float64(trackedSolve)/float64(baseSolve) - 1)
		}
		fmt.Printf("# origin tracking overhead: %.1f%% on aggregate solve time (%.1fms plain, %.1fms tracked)\n",
			overall, float64(baseSolve.Microseconds())/1000, float64(trackedSolve.Microseconds())/1000)
		if profOut != "" {
			merged := provenance.MergeProfiles(profiles...)
			pf, err := os.Create(profOut)
			if err != nil {
				return err
			}
			if err := merged.WriteCollapsed(pf); err != nil {
				pf.Close()
				return err
			}
			if err := pf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "bench: wrote %s (%d origins)\n", profOut, len(merged.Rows))
		}
	}
	if jsonOut == "" {
		return nil
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d rows)\n", jsonOut, len(art))
	return nil
}

// tieredJSON is one row of the BENCH_tiered.json artifact: the graph
// fast path and the SAT pipeline answering the same Figure 8 query.
type tieredJSON struct {
	Pods     int    `json:"pods"`
	Routers  int    `json:"routers"`
	Property string `json:"property"`
	// Tier is "graph" when the fast path decided the row, "sat" when it
	// returned residue and the solver answered.
	Tier     string  `json:"tier"`
	Reason   string  `json:"reason,omitempty"`
	GraphMs  float64 `json:"graph_ms"`
	SatMs    float64 `json:"sat_ms"`
	Speedup  float64 `json:"speedup,omitempty"`
	Verified bool    `json:"verified"`
	Agree    bool    `json:"agree"`
}

// runTiered answers every Figure 8 row twice — once on the sound graph
// fast path, once on the untiered SAT pipeline — and reports hit rate,
// per-row speedup, and verdict agreement. Any definitive graph verdict
// that disagrees with the solver is a soundness bug: the sweep fails.
func runTiered(pods []int, props []string, jsonOut, passes string) error {
	fmt.Println("# tiered sweep: graph fast path vs SAT pipeline per Figure 8 row")
	fmt.Println("pods\trouters\tproperty\ttier\treason\tgraph_ms\tsat_ms\tspeedup\tverified\tagree")
	var art []tieredJSON
	hits, covered := 0, 0
	var graphTotal, satTotal float64
	for _, k := range pods {
		f, err := harness.BuildFabric(k)
		if err != nil {
			return err
		}
		f.Passes = passes
		// f.Tiers stays empty: RunFig8Property below measures the pure
		// SAT pipeline, the fast path is timed separately here.
		for _, prop := range props {
			goal, ok := harness.Fig8Goal(f, prop)
			if !ok {
				// No graph-tier translation for this property class
				// (local-consistency); skip rather than report a row
				// the fast path never sees.
				continue
			}
			start := time.Now()
			out := f.Analysis().Decide(goal)
			graphMs := float64(time.Since(start).Microseconds()) / 1000
			satRow, err := harness.RunFig8Property(f, prop)
			if err != nil {
				return err
			}
			satMs := float64(satRow.Elapsed.Microseconds()) / 1000
			jrow := tieredJSON{
				Pods: satRow.Pods, Routers: satRow.Routers, Property: prop,
				Tier: tiered.TierSAT, Reason: out.Reason,
				GraphMs: graphMs, SatMs: satMs,
				Verified: satRow.Verified, Agree: true,
			}
			covered++
			if out.Decided {
				hits++
				jrow.Tier = tiered.TierGraph
				jrow.Agree = out.Verified == satRow.Verified
				if graphMs > 0 {
					jrow.Speedup = satMs / graphMs
				}
				graphTotal += graphMs
				satTotal += satMs
			}
			fmt.Printf("%d\t%d\t%s\t%s\t%s\t%.2f\t%.1f\t%.1f\t%v\t%v\n",
				jrow.Pods, jrow.Routers, jrow.Property, jrow.Tier, jrow.Reason,
				jrow.GraphMs, jrow.SatMs, jrow.Speedup, jrow.Verified, jrow.Agree)
			if !jrow.Agree {
				return fmt.Errorf("tier disagreement on pods=%d %s: graph says verified=%v, sat says verified=%v",
					k, prop, out.Verified, satRow.Verified)
			}
			art = append(art, jrow)
		}
	}
	if covered > 0 {
		fmt.Printf("# fast-path hit rate: %d/%d rows (%.0f%%)\n",
			hits, covered, 100*float64(hits)/float64(covered))
	}
	if hits > 0 && graphTotal > 0 {
		fmt.Printf("# aggregate speedup on hit rows: %.0fx (%.2fms graph vs %.1fms sat)\n",
			satTotal/graphTotal, graphTotal, satTotal)
	}
	if jsonOut == "" {
		return nil
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d rows)\n", jsonOut, len(art))
	return nil
}

// modularJSON is one row of the BENCH_modular.json artifact: the
// assume/guarantee pipeline on one Figure 8 property, with the
// monolithic reference columns filled only when pods <= -mono-max.
type modularJSON struct {
	Pods     int    `json:"pods"`
	Routers  int    `json:"routers"`
	Property string `json:"property"`
	// Mode is "modular" when the composed verdict stands; anything else
	// ("fallback" with the residue that forced it) means the row was
	// answered monolithically and the comparison is void.
	Mode       string  `json:"mode"`
	Residue    string  `json:"residue,omitempty"`
	Verified   bool    `json:"verified"`
	ModularMs  float64 `json:"modular_ms"`
	Components int     `json:"components"`
	Classes    int     `json:"classes"`
	AliasHits  int     `json:"alias_hits"`
	Checks     int     `json:"checks"`
	// PeakTerms / SATVars are per-component peaks — the modular answer
	// to the monolithic model-size question.
	PeakTerms int `json:"peak_terms"`
	SATVars   int `json:"sat_vars"`
	Blame     int `json:"blame"`
	// Units / ClauseDBBytes total the per-class cost ledger: the
	// deterministic work the composition actually paid (one
	// representative check per isomorphism class, amortized over
	// aliases).
	Units         int64 `json:"work_units,omitempty"`
	ClauseDBBytes int64 `json:"clause_db_bytes,omitempty"`
	// Monolithic reference (mono_ran=false beyond -mono-max, where the
	// whole-network encoding is off the table).
	MonoRan     bool    `json:"mono_ran"`
	MonoMs      float64 `json:"mono_ms,omitempty"`
	MonoSATVars int     `json:"mono_sat_vars,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	Agree       bool    `json:"agree,omitempty"`
}

// runModular reproduces the modular-verification scaling comparison:
// each Figure 8 property per fabric size through the assume/guarantee
// pipeline, against the monolithic encoding wherever the latter is
// still feasible (pods <= monoMax). Verdict parity on the shared rows
// is enforced — any disagreement is a soundness bug and exits nonzero.
func runModular(pods []int, props []string, jsonOut, passes string, monoMax, workers int) error {
	toMs := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	fmt.Println("# modular assume/guarantee vs monolithic per Figure 8 row")
	fmt.Println("pods\trouters\tproperty\tmode\tmodular_ms\tcomps\tclasses\talias\tchecks\tpeak_terms\tsat_vars\tblame\tunits\tdb_bytes\tmono_ms\tspeedup\tverified\tagree")
	opts := modular.Options{Workers: workers, Core: core.DefaultOptions()}
	opts.Core.Blame = true
	if passes != "" {
		opts.Core.Passes = passes
	}
	var art []modularJSON
	ctx := context.Background()
	for _, k := range pods {
		f, err := harness.BuildFabric(k)
		if err != nil {
			return err
		}
		// Beyond -mono-max the whole-network encoding is off the table, so
		// a surprise residue must surface as an undecided row rather than
		// quietly starting an infeasible monolithic solve.
		kOpts := opts
		kOpts.NoFallback = k > monoMax
		for _, prop := range props {
			goal, ok := harness.Fig8ModularGoal(f, prop)
			if !ok {
				// local-consistency is a pairwise-equivalence sweep, not a
				// goal the modular (or tiered) vocabulary models.
				continue
			}
			start := time.Now()
			v, err := modular.Verify(ctx, f.G, goal, kOpts)
			if err != nil {
				return fmt.Errorf("modular pods=%d %s: %w", k, prop, err)
			}
			row := modularJSON{
				Pods: k, Routers: len(f.FT.Routers), Property: prop,
				Mode: v.Mode, Residue: strings.Join(v.Residue, ","),
				ModularMs: toMs(time.Since(start)),
			}
			if v.Result == nil {
				// Residue under NoFallback: the row is undecided, not a
				// verdict — label it so downstream tooling can't read
				// verified=false as a falsification.
				row.Mode = "fallback-skipped"
			} else {
				row.Verified = v.Result.Verified
				row.SATVars = v.Result.SATVars
				row.Blame = len(v.Result.Blame)
			}
			if v.Report != nil {
				row.Components = v.Report.Components
				row.Classes = v.Report.Classes
				row.AliasHits = v.Report.AliasHits
				row.Checks = v.Report.Checks
				row.PeakTerms = v.Report.PeakTerms
				if v.Report.Cost != nil {
					t := v.Report.Cost.Total()
					row.Units = t.Units()
					row.ClauseDBBytes = t.ClauseDBBytes
				}
			}
			monoCol, speedCol, agreeCol := "-", "-", "-"
			if k <= monoMax {
				start = time.Now()
				mono, err := modular.CheckMonolithic(ctx, f.G, goal, opts.Core)
				if err != nil {
					return fmt.Errorf("monolithic pods=%d %s: %w", k, prop, err)
				}
				row.MonoRan = true
				row.MonoMs = toMs(time.Since(start))
				row.MonoSATVars = mono.SATVars
				row.Agree = mono.Verified == row.Verified
				if row.ModularMs > 0 {
					row.Speedup = row.MonoMs / row.ModularMs
				}
				monoCol = fmt.Sprintf("%.1f", row.MonoMs)
				speedCol = fmt.Sprintf("%.1fx", row.Speedup)
				agreeCol = fmt.Sprintf("%v", row.Agree)
			}
			fmt.Printf("%d\t%d\t%s\t%s\t%.1f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\t%v\t%s\n",
				row.Pods, row.Routers, row.Property, row.Mode, row.ModularMs,
				row.Components, row.Classes, row.AliasHits, row.Checks,
				row.PeakTerms, row.SATVars, row.Blame, row.Units,
				row.ClauseDBBytes, monoCol, speedCol,
				row.Verified, agreeCol)
			if row.MonoRan && !row.Agree {
				return fmt.Errorf("modular disagreement on pods=%d %s: modular says verified=%v (mode %s), monolithic disagrees",
					k, prop, row.Verified, row.Mode)
			}
			art = append(art, row)
		}
	}
	var modTotal, monoTotal float64
	shared := 0
	for _, r := range art {
		if r.MonoRan {
			shared++
			modTotal += r.ModularMs
			monoTotal += r.MonoMs
		}
	}
	if shared > 0 && modTotal > 0 {
		fmt.Printf("# shared rows (pods<=%d): %d, aggregate speedup %.1fx (%.1fms modular vs %.1fms monolithic)\n",
			monoMax, shared, monoTotal/modTotal, modTotal, monoTotal)
	}
	if jsonOut == "" {
		return nil
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d rows)\n", jsonOut, len(art))
	return nil
}

// serviceCheckJSON is one property's timings in one mode of the service
// experiment.
type serviceCheckJSON struct {
	Property   string  `json:"property"`
	Ms         float64 `json:"ms"`
	EncodeMs   float64 `json:"encode_ms"`
	SimplifyMs float64 `json:"simplify_ms"`
	SolveMs    float64 `json:"solve_ms"`
	Verified   bool    `json:"verified"`
	Conflicts  int64   `json:"conflicts"`
}

// serviceJSON is one mode row of the BENCH_service.json artifact.
type serviceJSON struct {
	Pods            int                `json:"pods"`
	Routers         int                `json:"routers"`
	Properties      int                `json:"properties"`
	Mode            string             `json:"mode"`
	TotalMs         float64            `json:"total_ms"`
	EncodeModelMs   float64            `json:"encode_model_ms"`
	SetupBlastMs    float64            `json:"setup_blast_ms"`
	SetupSimplifyMs float64            `json:"setup_simplify_ms"`
	QueryMs         float64            `json:"query_ms"`
	SharedBlasts    int                `json:"shared_blasts"`
	Compiles        int                `json:"compiles"`
	SpeedupVsFresh  float64            `json:"speedup_vs_fresh,omitempty"`
	Checks          []serviceCheckJSON `json:"checks"`
}

// runService compares fresh-solver batch verification against one
// incremental session per fabric and writes the BENCH_service.json
// artifact.
func runService(pods []int, jsonOut string, tr *obs.Trace, every int64, passes string) error {
	toMs := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	fmt.Println("# service batch: fresh solver per property vs one incremental session")
	fmt.Println("pods\trouters\tmode\tprops\ttotal_ms\tquery_ms\tshared_blasts\tcompiles\tspeedup")
	var art []serviceJSON
	for _, k := range pods {
		f, err := harness.BuildFabric(k)
		if err != nil {
			return err
		}
		f.Passes = passes
		if tr != nil {
			f.Obs = tr.Root().Start(fmt.Sprintf("pods:%d", k))
		}
		if every > 0 {
			f.ProgressEvery = every
			f.OnProgress = progressPrinter(fmt.Sprintf("pods=%d", k))
		}
		res, err := harness.RunBatch(f)
		if err != nil {
			return err
		}
		f.Obs.End()
		for _, bm := range []*harness.BatchMode{&res.Fresh, &res.Session} {
			speed := ""
			row := serviceJSON{
				Pods: res.Pods, Routers: res.Routers, Properties: res.Properties,
				Mode:            bm.Mode,
				TotalMs:         toMs(bm.Total),
				EncodeModelMs:   toMs(bm.EncodeModel),
				SetupBlastMs:    toMs(bm.SetupBlast),
				SetupSimplifyMs: toMs(bm.SetupSimplify),
				QueryMs:         toMs(bm.QueryTotal()),
				SharedBlasts:    bm.SharedBlasts,
				Compiles:        bm.Compiles,
			}
			if bm.Mode == "session" {
				row.SpeedupVsFresh = res.Speedup
				speed = fmt.Sprintf("%.1fx", res.Speedup)
			}
			for _, c := range bm.Checks {
				row.Checks = append(row.Checks, serviceCheckJSON{
					Property: c.Property, Ms: toMs(c.Elapsed),
					EncodeMs: toMs(c.Encode), SimplifyMs: toMs(c.Simplify),
					SolveMs: toMs(c.Solve), Verified: c.Verified,
					Conflicts: c.Conflicts,
				})
			}
			art = append(art, row)
			fmt.Printf("%d\t%d\t%s\t%d\t%.1f\t%.1f\t%d\t%d\t%s\n",
				res.Pods, res.Routers, bm.Mode, res.Properties,
				row.TotalMs, row.QueryMs, bm.SharedBlasts, bm.Compiles, speed)
		}
	}
	if jsonOut == "" {
		return nil
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d rows)\n", jsonOut, len(art))
	return nil
}

// runFuzz is the deterministic smoke run of the fuzzing subsystem: every
// scenario family from internal/fuzz is generated -iters times and pushed
// through all oracles (simulator differential where sim-safe, metamorphic
// parity, DRAT certification of every UNSAT verdict). Any disagreement
// aborts the run with the reproducing seed bytes.
func runFuzz(iters int, seed int64) error {
	fmt.Printf("# fuzz smoke: %d iteration(s) over %d scenario families (seed %d)\n",
		iters, fuzz.Families(), seed)
	fmt.Println("family\tscenario\tsimsafe\toracles_ms")
	total := 0
	for it := 0; it < iters; it++ {
		for fam := 0; fam < fuzz.Families(); fam++ {
			data := []byte{byte(fam), byte(seed), byte(seed >> 8), byte(it)}
			s, rng, err := fuzz.FromSeed(data)
			if err != nil {
				return fmt.Errorf("fuzz family %d iter %d: %w", fam, it, err)
			}
			start := time.Now()
			if err := s.CheckAll(rng, 2); err != nil {
				return fmt.Errorf("fuzz %s (seed % x): %w", s.Name, data, err)
			}
			fmt.Printf("%d\t%s\t%v\t%.1f\n", fam, s.Name, s.SimSafe,
				float64(time.Since(start).Microseconds())/1000)
			total++
		}
	}
	fmt.Printf("# %d scenarios checked, all oracles agree\n", total)
	return nil
}

// runAblation reproduces the §8.3 optimization-effectiveness measurement.
func runAblation(k int, tr *obs.Trace, every int64) error {
	f, err := harness.BuildFabric(k)
	if err != nil {
		return err
	}
	if tr != nil {
		f.Obs = tr.Root()
	}
	if every > 0 {
		f.ProgressEvery = every
		f.OnProgress = progressPrinter(fmt.Sprintf("pods=%d", k))
	}
	fmt.Printf("# §8.3 ablation: single-source reachability on a %d-pod fabric (%d routers)\n",
		k, len(f.FT.Routers))
	fmt.Println("config\tencode_ms\tcheck_ms\tcnf_ms\tsimplify_ms\tsolve_ms\trecord_vars\tsat_vars\tsat_clauses\tconflicts\tspeedup")
	var baseline float64
	for _, cfg := range harness.AblationConfigs() {
		row, err := harness.RunAblation(f, cfg.Name, cfg.Opts)
		if err != nil {
			return err
		}
		checkMs := float64(row.Check.Microseconds()) / 1000
		if cfg.Name == "none" {
			baseline = checkMs
		}
		speed := baseline / checkMs
		fmt.Printf("%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\t%d\t%.1fx\n",
			cfg.Name, float64(row.Encode.Microseconds())/1000, checkMs,
			float64(row.CNF.Microseconds())/1000,
			float64(row.Simplify.Microseconds())/1000,
			float64(row.Solve.Microseconds())/1000,
			row.RecordVars, row.SATVars, row.SATClauses, row.Conflicts, speed)
	}
	return nil
}
