// Command bench regenerates the paper's evaluation tables and figures
// (§8): the four-property violation counts over an operational population
// (§8.1), the per-network verification-time series of Figure 7, the
// data-center property sweep of Figure 8, and the §8.3 optimization
// ablation. Output is tab-separated rows, one series per block, matching
// the rows/series the paper reports.
//
// Usage:
//
//	bench -experiment violations [-count 152] [-seed 1]
//	bench -experiment fig7       [-count 152] [-seed 1]
//	bench -experiment fig8       [-pods 2,4,6] [-props all]
//	bench -experiment ablation   [-pods 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/netgen"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "violations | fig7 | fig8 | ablation")
		count      = flag.Int("count", 152, "population size for violations/fig7")
		seed       = flag.Int64("seed", 1, "population base seed")
		podsFlag   = flag.String("pods", "2,4,6", "comma-separated pod counts for fig8/ablation")
		propsFlag  = flag.String("props", "all", "comma-separated figure-8 properties, or 'all'")
	)
	flag.Parse()
	var err error
	switch *experiment {
	case "violations":
		err = runViolations(*count, *seed)
	case "fig7":
		err = runFig7(*count, *seed)
	case "fig8":
		err = runFig8(parseInts(*podsFlag), parseProps(*propsFlag))
	case "ablation":
		ks := parseInts(*podsFlag)
		if len(ks) == 0 {
			ks = []int{4}
		}
		err = runAblation(ks[0])
	default:
		fmt.Fprintln(os.Stderr, "usage: bench -experiment violations|fig7|fig8|ablation")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err == nil {
			out = append(out, n)
		}
	}
	return out
}

func parseProps(s string) []string {
	if s == "all" {
		return harness.AllFig8Props()
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runViolations reproduces the §8.1 violation counts.
func runViolations(count int, seed int64) error {
	pop, err := netgen.Population(count, seed, netgen.DefaultParams())
	if err != nil {
		return err
	}
	sum, err := harness.RunSection81(pop, harness.AllSection81Props())
	if err != nil {
		return err
	}
	fmt.Printf("# §8.1 violations over %d networks (paper: 67, 29, 24, 0 of 152)\n", sum.Total)
	fmt.Println("property\tviolations")
	for _, prop := range harness.AllSection81Props() {
		fmt.Printf("%s\t%d\n", prop, sum.Violations[prop])
	}
	fmt.Printf("total\t%d\n", sum.Violations[harness.PropMgmtReach]+
		sum.Violations[harness.PropLocalEquiv]+
		sum.Violations[harness.PropBlackholes]+
		sum.Violations[harness.PropFaultInvar])
	return nil
}

// runFig7 reproduces the four timing panels of Figure 7: verification time
// per network, sorted by total lines of configuration.
func runFig7(count int, seed int64) error {
	pop, err := netgen.Population(count, seed, netgen.DefaultParams())
	if err != nil {
		return err
	}
	sum, err := harness.RunSection81(pop, harness.AllSection81Props())
	if err != nil {
		return err
	}
	sort.Slice(sum.PerNet, func(i, j int) bool { return sum.PerNet[i].Lines < sum.PerNet[j].Lines })
	fmt.Println("# Figure 7: per-network verification time (ms), sorted by config lines")
	fmt.Println("network\trouters\tlines\tmgmt_ms\tequiv_ms\tblackhole_ms\tfaultinv_ms")
	for _, nc := range sum.PerNet {
		fmt.Printf("%s\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			nc.Name, nc.Routers, nc.Lines,
			ms(nc, harness.PropMgmtReach), ms(nc, harness.PropLocalEquiv),
			ms(nc, harness.PropBlackholes), ms(nc, harness.PropFaultInvar))
	}
	fmt.Printf("# violations: mgmt=%d equiv=%d blackholes=%d fault-invariance=%d of %d\n",
		sum.Violations[harness.PropMgmtReach], sum.Violations[harness.PropLocalEquiv],
		sum.Violations[harness.PropBlackholes], sum.Violations[harness.PropFaultInvar], sum.Total)
	return nil
}

func ms(nc *harness.NetCheck, prop string) float64 {
	return float64(nc.Results[prop].Elapsed.Microseconds()) / 1000
}

// runFig8 reproduces Figure 8: verification time per property per fabric
// size.
func runFig8(pods []int, props []string) error {
	fmt.Println("# Figure 8: verification time (ms) per property and fabric size")
	fmt.Println("pods\trouters\tproperty\tms\tverified\tsat_vars\tsat_clauses")
	for _, k := range pods {
		f, err := harness.BuildFabric(k)
		if err != nil {
			return err
		}
		for _, prop := range props {
			row, err := harness.RunFig8Property(f, prop)
			if err != nil {
				return err
			}
			fmt.Printf("%d\t%d\t%s\t%.1f\t%v\t%d\t%d\n",
				row.Pods, row.Routers, row.Property,
				float64(row.Elapsed.Microseconds())/1000, row.Verified,
				row.SATVars, row.SATClauses)
		}
	}
	return nil
}

// runAblation reproduces the §8.3 optimization-effectiveness measurement.
func runAblation(k int) error {
	f, err := harness.BuildFabric(k)
	if err != nil {
		return err
	}
	fmt.Printf("# §8.3 ablation: single-source reachability on a %d-pod fabric (%d routers)\n",
		k, len(f.FT.Routers))
	fmt.Println("config\tencode_ms\tcheck_ms\trecord_vars\tsat_vars\tsat_clauses\tspeedup")
	var baseline float64
	for _, cfg := range harness.AblationConfigs() {
		row, err := harness.RunAblation(f, cfg.Name, cfg.Opts)
		if err != nil {
			return err
		}
		checkMs := float64(row.Check.Microseconds()) / 1000
		if cfg.Name == "none" {
			baseline = checkMs
		}
		speed := baseline / checkMs
		fmt.Printf("%s\t%.1f\t%.1f\t%d\t%d\t%d\t%.1fx\n",
			cfg.Name, float64(row.Encode.Microseconds())/1000, checkMs,
			row.RecordVars, row.SATVars, row.SATClauses, speed)
	}
	return nil
}
