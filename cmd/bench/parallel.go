package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/psolve"
)

// parallelJSON is one row of the BENCH_parallel.json artifact: the same
// Figure 8 query answered under each parallel solve strategy, so the
// speedup (and the certified-proof overhead) can be compared across
// revisions.
type parallelJSON struct {
	Pods      int     `json:"pods"`
	Routers   int     `json:"routers"`
	Property  string  `json:"property"`
	Mode      string  `json:"mode"`
	Workers   int     `json:"workers"`
	Ms        float64 `json:"ms"`
	SolveMs   float64 `json:"solve_ms"`
	Verified  bool    `json:"verified"`
	Conflicts int64   `json:"conflicts"`
	// Units is the adopted search's work (decisions+propagations+
	// conflicts); SpentUnits totals every task in the cost ledger, so
	// SpentUnits−Units is the work the losing racers/cubes burned.
	Units        int64   `json:"work_units,omitempty"`
	SpentUnits   int64   `json:"spent_units,omitempty"`
	ProofSteps   int     `json:"proof_steps,omitempty"`
	ProofCheckMs float64 `json:"proof_check_ms,omitempty"`
	// CertifyOverhead is proof-check time over solve time; the parallel
	// DRAT checker is held to < 0.5 on aggregate by the CI perf gate.
	CertifyOverhead float64 `json:"certify_overhead,omitempty"`
}

// runParallel measures the parallel solve engine: every (non-structural)
// Figure 8 row is answered sequentially, by a portfolio race, and by
// cube-and-conquer, with identical verdicts required. The summary lines
// give the aggregate solve-time speedup per strategy and — with -certify
// — the aggregate proof-check overhead relative to solve time.
func runParallel(pods []int, props []string, jsonOut, passes string, workers int, certify bool) error {
	modes := []string{psolve.ModeOff, psolve.ModePortfolio, psolve.ModeCubes}
	fmt.Printf("# parallel solve: Figure 8 rows per strategy (workers=%d)\n", workers)
	fmt.Println("pods\trouters\tproperty\tmode\tms\tsolve_ms\tverified\tconflicts\tunits\tspent_units\tproof_steps\tproof_check_ms")
	var art []parallelJSON
	totalSolve := map[string]time.Duration{}
	totalCheck := map[string]time.Duration{}
	verdicts := map[string]bool{}
	for _, k := range pods {
		f, err := harness.BuildFabric(k)
		if err != nil {
			return err
		}
		f.Passes = passes
		f.Certify = certify
		f.ParallelWorkers = workers
		for _, prop := range props {
			if prop == harness.Fig8LocalConsist {
				continue // structural: no CDCL search to parallelize
			}
			for _, mode := range modes {
				if mode == psolve.ModeOff {
					f.Parallel = ""
				} else {
					f.Parallel = mode
				}
				row, err := harness.RunFig8Property(f, prop)
				if err != nil {
					return fmt.Errorf("pods=%d prop=%s mode=%s: %w", k, prop, mode, err)
				}
				key := fmt.Sprintf("%d/%s", k, prop)
				if mode == psolve.ModeOff {
					verdicts[key] = row.Verified
				} else if row.Verified != verdicts[key] {
					return fmt.Errorf("pods=%d prop=%s: mode %s answered verified=%v, sequential answered %v",
						k, prop, mode, row.Verified, verdicts[key])
				}
				toMs := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
				units := row.Decisions + row.Propagations + row.Conflicts
				fmt.Printf("%d\t%d\t%s\t%s\t%.1f\t%.1f\t%v\t%d\t%d\t%d\t%d\t%.1f\n",
					row.Pods, row.Routers, row.Property, mode,
					toMs(row.Elapsed), toMs(row.Solve), row.Verified, row.Conflicts,
					units, row.SpentUnits,
					row.ProofSteps, toMs(row.ProofCheck))
				jr := parallelJSON{
					Pods: row.Pods, Routers: row.Routers, Property: row.Property,
					Mode: mode, Workers: workers,
					Ms: toMs(row.Elapsed), SolveMs: toMs(row.Solve),
					Verified: row.Verified, Conflicts: row.Conflicts,
					Units: units, SpentUnits: row.SpentUnits,
					ProofSteps: row.ProofSteps, ProofCheckMs: toMs(row.ProofCheck),
				}
				if row.Solve > 0 && row.ProofCheck > 0 {
					jr.CertifyOverhead = float64(row.ProofCheck) / float64(row.Solve)
				}
				art = append(art, jr)
				totalSolve[mode] += row.Solve
				totalCheck[mode] += row.ProofCheck
			}
		}
	}
	for _, mode := range modes[1:] {
		if totalSolve[mode] > 0 {
			fmt.Printf("# aggregate solve speedup %s: %.2fx (%.1fms -> %.1fms, workers=%d)\n",
				mode, float64(totalSolve[psolve.ModeOff])/float64(totalSolve[mode]),
				float64(totalSolve[psolve.ModeOff].Microseconds())/1000,
				float64(totalSolve[mode].Microseconds())/1000, workers)
		}
	}
	if certify {
		for _, mode := range modes {
			if totalSolve[mode] > 0 {
				fmt.Printf("# certify overhead %s: %.2fx solve (%.1fms check / %.1fms solve)\n",
					mode, float64(totalCheck[mode])/float64(totalSolve[mode]),
					float64(totalCheck[mode].Microseconds())/1000,
					float64(totalSolve[mode].Microseconds())/1000)
			}
		}
	}
	if jsonOut == "" {
		return nil
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d rows)\n", jsonOut, len(art))
	return nil
}
