package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name string, rows []fig8JSON) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baselineRows() []fig8JSON {
	return []fig8JSON{
		{Pods: 2, Property: "reachability", Ms: 100, Verified: true},
		{Pods: 2, Property: "no-loops", Ms: 40, Verified: true},
		{Pods: 4, Property: "reachability", Ms: 400, Verified: true},
	}
}

// TestCompareIdentical: identical artifacts produce zero regressions.
func TestCompareIdentical(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", baselineRows())
	niu := writeArtifact(t, dir, "new.json", baselineRows())
	var out strings.Builder
	n, err := runCompare(&out, old, niu, 0.25, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("identical artifacts regressed %d rows:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "aggregate") {
		t.Fatalf("missing aggregate line:\n%s", out.String())
	}
}

// TestCompareInjectedSlowdown: one row slowed well past tolerance and
// floor trips the gate, and the row is named in the report.
func TestCompareInjectedSlowdown(t *testing.T) {
	slow := baselineRows()
	slow[2].Ms = 900 // 400 → 900: +125%
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", baselineRows())
	niu := writeArtifact(t, dir, "new.json", slow)
	var out strings.Builder
	n, err := runCompare(&out, old, niu, 0.25, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// The slowed row plus the aggregate (540 → 1040 is also past 25%).
	if n != 2 {
		t.Fatalf("regressions = %d, want 2:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("report does not flag the regression:\n%s", out.String())
	}
}

// TestCompareMinMsFloor: a relative blowup on a sub-floor row is noise,
// not a regression.
func TestCompareMinMsFloor(t *testing.T) {
	oldRows := []fig8JSON{{Pods: 2, Property: "reachability", Ms: 1, Verified: true}}
	newRows := []fig8JSON{{Pods: 2, Property: "reachability", Ms: 3, Verified: true}}
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", oldRows)
	niu := writeArtifact(t, dir, "new.json", newRows)
	var out strings.Builder
	n, err := runCompare(&out, old, niu, 0.25, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("+200%% on a 1ms row tripped the gate despite the 5ms floor:\n%s", out.String())
	}
}

// TestCompareVerdictFlip: a flipped verified bit is a regression even
// when timing improved.
func TestCompareVerdictFlip(t *testing.T) {
	flipped := baselineRows()
	flipped[0].Verified = false
	flipped[0].Ms = 10 // faster, still broken
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", baselineRows())
	niu := writeArtifact(t, dir, "new.json", flipped)
	var out strings.Builder
	n, err := runCompare(&out, old, niu, 0.25, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions = %d, want 1:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "VERDICT-FLIPPED") {
		t.Fatalf("report does not name the flip:\n%s", out.String())
	}
}

// TestCompareWorkRegression is the acceptance scenario for the
// deterministic work gate: conflicts grow 5% with wall time dead flat —
// the timing gate alone would pass, the work gate must fail the run.
func TestCompareWorkRegression(t *testing.T) {
	oldRows := []fig8JSON{
		{Pods: 2, Property: "reachability", Ms: 100, Verified: true,
			Conflicts: 1000, Decisions: 5000, Propagations: 900000, ClauseDBBytes: 700000},
		{Pods: 2, Property: "no-loops", Ms: 40, Verified: true,
			Conflicts: 10, Decisions: 50, Propagations: 8000, ClauseDBBytes: 650000},
	}
	newRows := []fig8JSON{
		{Pods: 2, Property: "reachability", Ms: 100, Verified: true,
			Conflicts: 1050, Decisions: 5000, Propagations: 900000, ClauseDBBytes: 700000},
		{Pods: 2, Property: "no-loops", Ms: 40, Verified: true,
			Conflicts: 10, Decisions: 50, Propagations: 8000, ClauseDBBytes: 650000},
	}
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", oldRows)
	niu := writeArtifact(t, dir, "new.json", newRows)

	// Sanity: the timing gate alone (work tolerance effectively off)
	// passes — nothing got slower.
	var out strings.Builder
	n, err := runCompare(&out, old, niu, 0.25, 5, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("timing gate tripped on flat timings:\n%s", out.String())
	}

	// The tight work gate catches the +5% conflicts.
	out.Reset()
	n, err = runCompare(&out, old, niu, 0.25, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("work regressions = %d, want 1:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "WORK-REGRESSED(conflicts)") {
		t.Fatalf("report does not name the regressed work column:\n%s", out.String())
	}
}

// TestCompareWorkBaselineWithoutColumns: an old artifact predating the
// cost columns (all-zero work) must not gate — zero is "unknown", not
// "the solver did no work".
func TestCompareWorkBaselineWithoutColumns(t *testing.T) {
	oldRows := baselineRows() // no work columns
	newRows := []fig8JSON{
		{Pods: 2, Property: "reachability", Ms: 100, Verified: true,
			Conflicts: 1000, Decisions: 5000, Propagations: 900000, ClauseDBBytes: 700000},
		{Pods: 2, Property: "no-loops", Ms: 40, Verified: true},
		{Pods: 4, Property: "reachability", Ms: 400, Verified: true},
	}
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", oldRows)
	niu := writeArtifact(t, dir, "new.json", newRows)
	var out strings.Builder
	n, err := runCompare(&out, old, niu, 0.25, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("zero-work baseline tripped the work gate:\n%s", out.String())
	}
}

// TestCompareDisjoint: artifacts with no shared rows are an error, not
// a silent pass.
func TestCompareDisjoint(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", baselineRows())
	niu := writeArtifact(t, dir, "new.json", []fig8JSON{
		{Pods: 8, Property: "other", Ms: 1},
	})
	var out strings.Builder
	if _, err := runCompare(&out, old, niu, 0.25, 5, 0.02); err == nil {
		t.Fatal("disjoint artifacts compared without error")
	}
}
