// Command topogen emits synthetic network configurations: k-pod
// folded-Clos BGP fabrics (the §8.2 benchmarks) or seeded operational-style
// populations (the §8.1 benchmarks).
//
// Usage:
//
//	topogen -pods 4 -out fabric/             # one fat-tree
//	topogen -population 152 -seed 1 -out pop/ # §8.1-style population
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/config"
	"repro/internal/netgen"
	"repro/internal/topogen"
)

func main() {
	var (
		pods       = flag.Int("pods", 0, "generate a fat-tree with this many pods (even)")
		population = flag.Int("population", 0, "generate this many operational-style networks")
		seed       = flag.Int64("seed", 1, "base seed for -population")
		out        = flag.String("out", "", "output directory")
	)
	flag.Parse()
	if *out == "" || (*pods == 0) == (*population == 0) {
		fmt.Fprintln(os.Stderr, "usage: topogen (-pods K | -population N [-seed S]) -out DIR")
		os.Exit(2)
	}
	if err := run(*pods, *population, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(pods, population int, seed int64, out string) error {
	if pods > 0 {
		ft, err := topogen.Generate(pods)
		if err != nil {
			return err
		}
		if err := writeRouters(out, ft.Routers); err != nil {
			return err
		}
		fmt.Printf("wrote %d router configs (%d lines) to %s\n",
			len(ft.Routers), config.TotalLines(ft.Routers), out)
		return nil
	}
	pop, err := netgen.Population(population, seed, netgen.DefaultParams())
	if err != nil {
		return err
	}
	for _, n := range pop {
		dir := filepath.Join(out, n.Name)
		if err := writeRouters(dir, n.Routers); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d networks to %s\n", len(pop), out)
	return nil
}

func writeRouters(dir string, routers []*config.Router) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range routers {
		path := filepath.Join(dir, r.Name+".cfg")
		if err := os.WriteFile(path, []byte(config.Print(r)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
