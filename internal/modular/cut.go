// Package modular implements assume/guarantee verification: it cuts a
// network at eBGP boundaries into components, derives typed interface
// contracts (the route each side of a cut session announces for the goal
// destination, in the encoder's environment-record vocabulary), verifies
// each component against its assumptions with the ordinary
// Compile/CheckGoal pipeline, and composes the per-component verdicts.
// Pod-isomorphic components share a canonical class key, so a fat-tree
// with thousands of routers verifies a handful of representative
// components. Anything outside the soundness envelope is reported as
// residue and falls back to the monolithic encoding.
package modular

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/protograph"
)

// Component is one verification unit of a cut: a maximal set of routers
// connected by IGP adjacencies, iBGP sessions or link-resolved statics.
type Component struct {
	Index   int
	Routers []string // sorted
}

// Session is one direction of a cut eBGP session: From announces routes
// to To. The pair (From, To) crossing components yields two Sessions.
type Session struct {
	ID       string
	From, To string
	FromComp int
	ToComp   int
	// FromAddr is From's peering address (what To's neighbor stanza
	// names); ToAddr likewise.
	FromAddr network.IP
	ToAddr   network.IP
	Link     *network.Link
}

// Cut is a partition of the network into components plus the boundary
// sessions between them. Residue lists the static preconditions the
// network violates; a non-empty residue means the modular pipeline must
// fall back to the monolithic encoding for every goal.
type Cut struct {
	Components []*Component
	CompOf     map[string]int
	Sessions   []*Session // sorted by ID
	Residue    []string   // sorted, deduplicated
	Hash       string
}

// MultiComponent reports whether the cut actually split the network.
func (c *Cut) MultiComponent() bool { return len(c.Components) > 1 }

// Partition computes the component decomposition of a protocol graph.
// Routers are merged when routes or packets can cross between them
// outside the eBGP session vocabulary: OSPF and RIP adjacencies, iBGP
// sessions, and static routes resolving to a link peer. The remaining
// inter-component eBGP sessions become the cut. All iteration is over
// sorted or pre-sorted structures, so equal inputs produce equal cuts
// (and equal hashes) on every run.
func Partition(g *protograph.Graph) *Cut {
	parent := map[string]string{}
	for _, n := range g.Topo.Nodes {
		parent[n.Name] = n.Name
	}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Smaller name wins so the forest shape is deterministic.
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	for _, adj := range g.OSPFAdjs {
		union(adj.Link.A.Name, adj.Link.B.Name)
	}
	for _, adj := range g.RIPAdjs {
		union(adj.Link.A.Name, adj.Link.B.Name)
	}
	for _, s := range g.Sessions {
		if s.Kind == protograph.IBGP {
			union(s.A.Name, s.B.Name)
		}
	}
	// A static whose next hop resolves to a link peer moves packets
	// across the link without any routing protocol; keep both ends
	// together.
	for _, n := range g.Topo.Nodes {
		cfg := g.Configs[n.Name]
		for _, st := range cfg.Statics {
			for _, l := range g.Topo.LinksOf(n) {
				if st.Interface != "" && st.Interface == l.IfaceOf(n) {
					union(n.Name, l.Peer(n).Name)
				} else if st.NextHop != 0 && l.Subnet.Contains(st.NextHop) {
					union(n.Name, l.Peer(n).Name)
				}
			}
		}
	}

	cut := &Cut{CompOf: map[string]int{}}
	rootIdx := map[string]int{}
	for _, n := range g.Topo.Nodes { // Nodes are name-sorted
		r := find(n.Name)
		idx, ok := rootIdx[r]
		if !ok {
			idx = len(cut.Components)
			rootIdx[r] = idx
			cut.Components = append(cut.Components, &Component{Index: idx})
		}
		cut.CompOf[n.Name] = idx
		cut.Components[idx].Routers = append(cut.Components[idx].Routers, n.Name)
	}

	residue := map[string]bool{}
	for _, s := range g.Sessions {
		if s.Kind != protograph.EBGP {
			continue
		}
		ca, cb := cut.CompOf[s.A.Name], cut.CompOf[s.B.Name]
		if ca == cb {
			continue
		}
		if s.Link == nil {
			residue["multihop-ebgp-cut"] = true
			continue
		}
		aAddr, bAddr := s.Link.AAddr, s.Link.BAddr
		if s.Link.A != s.A {
			aAddr, bAddr = bAddr, aAddr
		}
		cut.Sessions = append(cut.Sessions,
			&Session{ID: s.A.Name + ">" + s.B.Name, From: s.A.Name, To: s.B.Name,
				FromComp: ca, ToComp: cb, FromAddr: aAddr, ToAddr: bAddr, Link: s.Link},
			&Session{ID: s.B.Name + ">" + s.A.Name, From: s.B.Name, To: s.A.Name,
				FromComp: cb, ToComp: ca, FromAddr: bAddr, ToAddr: aAddr, Link: s.Link})
	}
	sort.Slice(cut.Sessions, func(i, j int) bool { return cut.Sessions[i].ID < cut.Sessions[j].ID })

	if cut.MultiComponent() {
		scanResidue(g, cut, residue)
	}
	for r := range residue {
		cut.Residue = append(cut.Residue, r)
	}
	sort.Strings(cut.Residue)
	cut.Hash = hashCut(cut)
	return cut
}

// scanResidue records the static feature checks that the contract
// vocabulary cannot express soundly. Each rule is conservative: tripping
// one only costs the monolithic fallback, never a wrong verdict.
func scanResidue(g *protograph.Graph, cut *Cut, residue map[string]bool) {
	for _, n := range g.Topo.Nodes {
		cfg := g.Configs[n.Name]
		// Redistribution moves routes between protocol vocabularies; the
		// BGP-hop metric arithmetic behind contract derivation no longer
		// holds.
		if cfg.OSPF != nil && len(cfg.OSPF.Redistribute) > 0 {
			residue["redistribution"] = true
		}
		if cfg.RIP != nil && len(cfg.RIP.Redistribute) > 0 {
			residue["redistribution"] = true
		}
		if cfg.BGP != nil {
			if len(cfg.BGP.Redistribute) > 0 {
				residue["redistribution"] = true
			}
			if cfg.BGP.AlwaysCompareMED {
				residue["med"] = true
			}
			if len(cfg.BGP.Aggregates) > 0 {
				residue["aggregates"] = true
			}
			// Two sessions from the same neighbor AS activate MED
			// comparison in the encoder (its medActive rule).
			byAS := map[uint32]int{}
			for _, nb := range cfg.BGP.Neighbors {
				if nb.RouteReflectorClient {
					residue["route-reflector"] = true
				}
				byAS[nb.RemoteAS]++
				if byAS[nb.RemoteAS] > 1 {
					residue["med"] = true
				}
			}
		}
		if len(cfg.CommunityLists) > 0 {
			residue["communities"] = true
		}
		for _, name := range sortedKeys(cfg.RouteMaps) {
			for _, cl := range cfg.RouteMaps[name].Clauses {
				if cl.MatchCommunity != "" || len(cl.SetCommunity) > 0 || len(cl.DelCommunity) > 0 {
					// Community bits cross cuts but per-component
					// community universes differ; contracts pin them
					// to zero, which is only sound when nothing reads
					// or writes them.
					residue["communities"] = true
				}
				if cl.HasSetMED {
					residue["med"] = true
				}
				if cl.HasSetMetric {
					// set metric can shorten the advertised AS-path
					// length, breaking the monotone lower bound the
					// contract induction rests on.
					residue["set-metric"] = true
				}
				if cl.HasSetNextHop {
					residue["set-next-hop"] = true
				}
			}
		}
	}
	// Components containing iBGP speakers build peering-address network
	// copies whose cut announcements are not covered by the destination
	// contract; keep such networks monolithic.
	for _, s := range g.Sessions {
		if s.Kind == protograph.IBGP {
			residue["ibgp"] = true
		}
	}
	for _, s := range cut.Sessions {
		// The component encoder applies only the sender-side out-ACL on
		// a cut edge; a receiver-side in-ACL would be skipped.
		fromIf := s.Link.IfaceOf(g.Topo.Node(s.From))
		if ifc := g.Configs[s.From].Iface(fromIf); ifc != nil && ifc.InACL != "" {
			residue["acl-on-cut"] = true
		}
		// Environment records tie-break by peer address while internal
		// sessions tie-break by router id. Multipath selection ignores
		// the tie-break entirely; otherwise a cut endpoint choosing
		// between several BGP candidates could pick differently in the
		// two encodings.
		cfg := g.Configs[s.From]
		if cfg.BGP != nil && cfg.BGP.MaxPaths <= 1 && len(cfg.BGP.Neighbors) > 1 {
			residue["tie-break-at-cut"] = true
		}
	}
}

func hashCut(c *Cut) string {
	h := sha256.New()
	for _, comp := range c.Components {
		fmt.Fprintf(h, "comp %d %s\n", comp.Index, strings.Join(comp.Routers, ","))
	}
	for _, s := range c.Sessions {
		fmt.Fprintf(h, "sess %s %d>%d %v %v\n", s.ID, s.FromComp, s.ToComp, s.FromAddr, s.ToAddr)
	}
	for _, r := range c.Residue {
		fmt.Fprintf(h, "residue %s\n", r)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var _ = config.Router{} // keep the import stable while the package grows
