package modular

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/protograph"
)

// Contract is the typed route-set for one direction of a cut session: if
// Valid, From guarantees that anything it announces to To for the goal
// destination carries Prefix with an AS-path length of at least Metric,
// and To may assume the same; if !Valid, From guarantees silence. The
// exact announcement (Prefix at exactly Metric, or nothing) is the
// guarantee each component discharges; the lower bound is the invariant
// every component may assume for free (see DESIGN.md §15).
type Contract struct {
	Session *Session
	Valid   bool
	Prefix  network.Prefix
	Metric  int
}

// Contracts carries the full contract assignment for a cut and one goal
// destination, plus the shortest-path structure it was derived from.
type Contracts struct {
	BySession   map[string]*Contract
	Prefix      network.Prefix // the originated prefix covering the goal subnet
	Dist        map[string]int // BGP-hop distance from the originators; absent = unreachable
	Originators []string       // sorted
	Residue     []string       // sorted
}

// maxMetric is the largest AS-path length the encoder treats as a live
// route (its validity cap); contracts past it are dead announcements.
const maxMetric = 255

// DeriveContracts computes the assume/guarantee route-sets for a cut and
// a goal subnet. The originators are the routers that both own and
// BGP-originate a prefix covering the subnet; every other router's best
// announcement for that prefix travels some BGP session path from an
// originator, gaining one metric per eBGP hop, so the 0/1-BFS distance
// (eBGP hops cost 1, iBGP hops cost 0) is the least metric any valid cut
// announcement can carry. A cut session whose sender cannot reach an
// originator — or only past the metric cap — gets an invalid (silence)
// contract.
func DeriveContracts(g *protograph.Graph, cut *Cut, subnet network.Prefix) *Contracts {
	con := &Contracts{BySession: map[string]*Contract{}, Dist: map[string]int{}}
	residue := map[string]bool{}

	prefixes := map[network.Prefix][]string{}
	for _, n := range g.Topo.Nodes {
		cfg := g.Configs[n.Name]
		if cfg.BGP == nil {
			continue
		}
		for _, p := range cfg.BGP.Networks {
			if p.Overlaps(subnet) && ownsPrefix(g, cfg, p) {
				prefixes[p] = append(prefixes[p], n.Name)
			}
		}
	}
	var pkeys []network.Prefix
	for p := range prefixes {
		pkeys = append(pkeys, p)
	}
	sort.Slice(pkeys, func(i, j int) bool {
		if pkeys[i].Addr != pkeys[j].Addr {
			return pkeys[i].Addr < pkeys[j].Addr
		}
		return pkeys[i].Len < pkeys[j].Len
	})
	switch len(pkeys) {
	case 0:
		// No internal BGP origin for the destination: nothing can cross
		// a cut for this goal, so every contract is silence. That is
		// sound — any valid cut announcement would need a support chain
		// ending at an origination, and there is none.
	case 1:
		con.Prefix = pkeys[0]
		con.Originators = append(con.Originators, prefixes[pkeys[0]]...)
		sort.Strings(con.Originators)
		if !con.Prefix.Covers(subnet) {
			// Part of the subnet lies outside the announced prefix;
			// announcements for that slice of destinations are not in
			// the contract vocabulary.
			residue["origin-partial-cover"] = true
		}
	default:
		// Competing originated prefixes select by longest match per
		// destination; a single (prefix, metric) contract cannot say
		// which wins where.
		residue["ambiguous-origin"] = true
	}

	if len(con.Originators) > 0 && len(residue) == 0 {
		bfs01(g, con.Originators, con.Dist)
	}

	for _, s := range cut.Sessions {
		c := &Contract{Session: s, Prefix: con.Prefix}
		if d, ok := con.Dist[s.From]; ok && d+1 <= maxMetric {
			c.Valid = true
			c.Metric = d + 1
		}
		con.BySession[s.ID] = c
	}

	for r := range residue {
		con.Residue = append(con.Residue, r)
	}
	sort.Strings(con.Residue)
	return con
}

// ownsPrefix mirrors the encoder's origination rule: a router originates
// a BGP network statement only when some non-shutdown interface or some
// static route carries exactly that prefix.
func ownsPrefix(g *protograph.Graph, cfg *config.Router, p network.Prefix) bool {
	for _, ifc := range cfg.Interfaces {
		if !ifc.Shutdown && ifc.Prefix == p {
			return true
		}
	}
	for _, st := range cfg.Statics {
		if st.Prefix == p {
			return true
		}
	}
	return false
}

// bfs01 fills dist with 0/1-BFS distances from the sources over the BGP
// session graph: iBGP sessions relay without an AS hop (weight 0), eBGP
// sessions cost one (weight 1). Both directions of every internal
// session count — contract metrics must lower-bound announcements along
// any session path, including ones that double back inside a component.
func bfs01(g *protograph.Graph, sources []string, dist map[string]int) {
	type edge struct {
		to string
		w  int
	}
	adj := map[string][]edge{}
	for _, s := range g.Sessions {
		w := 1
		switch s.Kind {
		case protograph.IBGP:
			w = 0
		case protograph.EBGP:
			w = 1
		default: // external sessions do not connect internal routers
			continue
		}
		adj[s.A.Name] = append(adj[s.A.Name], edge{s.B.Name, w})
		adj[s.B.Name] = append(adj[s.B.Name], edge{s.A.Name, w})
	}
	deque := make([]string, 0, len(sources))
	for _, src := range sources {
		dist[src] = 0
		deque = append(deque, src)
	}
	for len(deque) > 0 {
		u := deque[0]
		deque = deque[1:]
		du := dist[u]
		for _, e := range adj[u] {
			nd := du + e.w
			if old, ok := dist[e.to]; !ok || nd < old {
				dist[e.to] = nd
				if e.w == 0 {
					deque = append([]string{e.to}, deque...)
				} else {
					deque = append(deque, e.to)
				}
			}
		}
	}
}

// String renders a contract for diagnostics and violated-contract names.
func (c *Contract) String() string {
	if !c.Valid {
		return fmt.Sprintf("%s: silence", c.Session.ID)
	}
	return fmt.Sprintf("%s: %v metric %d", c.Session.ID, c.Prefix, c.Metric)
}
