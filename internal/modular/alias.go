package modular

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/tiered"
)

// canon builds the canonical serialization of one component. Router
// names become r<i> tokens (by sorted-name index), ASNs s<i> tokens and
// IP/prefix constants v<i> tokens, all assigned at first use, so two
// components that differ only in names and addressing serialize — and
// hash — identically. Neighbor descriptions are excluded (free-form
// text, never semantic). The value pool's pairwise order/containment
// relations are appended at the end: the encoder's terms mention the
// concrete constants only through such comparisons (against each other
// and against the goal destination), so components whose relation
// matrices agree produce isomorphic SMT systems and share one verdict.
type canon struct {
	w       io.Writer
	routers map[string]int
	names   []string // sorted member routers, index = token
	vals    []network.Prefix
	valIdx  map[network.Prefix]int
	asns    map[uint32]int
}

func newCanon(w io.Writer, routers []string) *canon {
	c := &canon{w: w, routers: map[string]int{}, names: routers,
		valIdx: map[network.Prefix]int{}, asns: map[uint32]int{}}
	for i, r := range routers {
		c.routers[r] = i
	}
	return c
}

func (c *canon) emit(format string, args ...any) { fmt.Fprintf(c.w, format+"\n", args...) }

func (c *canon) r(name string) string {
	i, ok := c.routers[name]
	if !ok {
		// Names outside the component must never reach the key; make the
		// leak visible in the hash rather than silently aliasing.
		return "r?" + name
	}
	return fmt.Sprintf("r%d", i)
}

func (c *canon) v(p network.Prefix) string {
	i, ok := c.valIdx[p]
	if !ok {
		i = len(c.vals)
		c.valIdx[p] = i
		c.vals = append(c.vals, p)
	}
	return fmt.Sprintf("v%d", i)
}

func (c *canon) ip(a network.IP) string { return c.v(network.Prefix{Addr: a, Len: 32}) }

func (c *canon) s(asn uint32) string {
	i, ok := c.asns[asn]
	if !ok {
		i = len(c.asns)
		c.asns[asn] = i
	}
	return fmt.Sprintf("s%d", i)
}

func (c *canon) router(cfg *config.Router) {
	c.emit("router %s", c.r(cfg.Name))
	for _, i := range cfg.Interfaces {
		c.emit("iface %s addr=%s pfx=%s cost=%d in=%s out=%s mgmt=%v down=%v",
			i.Name, c.ip(i.Addr), c.v(i.Prefix), i.OSPFCost, i.InACL, i.OutACL, i.Management, i.Shutdown)
	}
	if o := cfg.OSPF; o != nil {
		c.emit("ospf pid=%d ad=%d mp=%d", o.ProcessID, o.AdminDistance, o.MaxPaths)
		for _, n := range o.Networks {
			c.emit("ospf net %s", c.v(n))
		}
		c.redist("ospf", o.Redistribute)
	}
	if r := cfg.RIP; r != nil {
		c.emit("rip ad=%d", r.AdminDistance)
		for _, n := range r.Networks {
			c.emit("rip net %s", c.v(n))
		}
		c.redist("rip", r.Redistribute)
	}
	if b := cfg.BGP; b != nil {
		c.emit("bgp asn=%s rid=%s ad=%d mp=%d med=%v", c.s(b.ASN), c.ip(b.RouterID),
			b.AdminDistance, b.MaxPaths, b.AlwaysCompareMED)
		for _, n := range b.Networks {
			c.emit("bgp net %s", c.v(n))
		}
		for _, n := range b.Neighbors {
			c.emit("nbr addr=%s as=%s in=%s out=%s rrc=%v",
				c.ip(n.Addr), c.s(n.RemoteAS), n.InMap, n.OutMap, n.RouteReflectorClient)
		}
		c.redist("bgp", b.Redistribute)
		for _, a := range b.Aggregates {
			c.emit("agg %s summary=%v", c.v(a.Prefix), a.SummaryOnly)
		}
	}
	for _, st := range cfg.Statics {
		c.emit("static %s nh=%s if=%s ad=%d drop=%v",
			c.v(st.Prefix), c.ip(st.NextHop), st.Interface, st.AdminDistance, st.Drop)
	}
	for _, name := range sortedKeys(cfg.PrefixLists) {
		c.emit("plist %s", name)
		for _, e := range cfg.PrefixLists[name].Entries {
			c.emit("ple seq=%d act=%v %s ge=%d le=%d", e.Seq, e.Action, c.v(e.Prefix), e.Ge, e.Le)
		}
	}
	for _, name := range sortedKeys(cfg.RouteMaps) {
		c.emit("rmap %s", name)
		for _, cl := range cfg.RouteMaps[name].Clauses {
			c.emit("cl seq=%d act=%v mpl=%s mc=%s lp=%d met=%d/%v med=%d/%v setc=%s delc=%s nh=%s/%v pre=%d",
				cl.Seq, cl.Action, cl.MatchPrefixList, cl.MatchCommunity,
				cl.SetLocalPref, cl.SetMetric, cl.HasSetMetric, cl.SetMED, cl.HasSetMED,
				strings.Join(cl.SetCommunity, ","), strings.Join(cl.DelCommunity, ","),
				c.ip(cl.SetNextHop), cl.HasSetNextHop, cl.SetPrepend)
		}
	}
	for _, name := range sortedKeys(cfg.ACLs) {
		c.emit("acl %s", name)
		for _, e := range cfg.ACLs[name].Entries {
			c.emit("ae act=%v src=%s dst=%s proto=%d sp=%d-%d dp=%d-%d",
				e.Action, c.v(e.SrcPrefix), c.v(e.DstPrefix), e.Protocol,
				e.SrcPortLo, e.SrcPortHi, e.DstPortLo, e.DstPortHi)
		}
	}
	for _, name := range sortedKeys(cfg.CommunityLists) {
		c.emit("clist %s %s", name, strings.Join(cfg.CommunityLists[name].Values, ","))
	}
}

func (c *canon) redist(proto string, rs []config.Redistribution) {
	for _, r := range rs {
		c.emit("%s redist from=%v metric=%d map=%s", proto, r.From, r.Metric, r.RouteMap)
	}
}

// relations appends the value pool's pairwise comparison matrix: address
// order, prefix lengths and interval containment. Aligned prefix
// intervals are equal, disjoint or nested, so this matrix (with the
// lengths) fixes the truth of every address comparison the encoder can
// pose over the pool — including against the symbolic destination, whose
// range is the goal subnet, itself a pool member.
func (c *canon) relations() {
	for i, p := range c.vals {
		c.emit("val %d len=%d", i, p.Len)
	}
	for i := 0; i < len(c.vals); i++ {
		for j := i + 1; j < len(c.vals); j++ {
			a, b := c.vals[i], c.vals[j]
			cmp := 0
			if a.Addr < b.Addr {
				cmp = -1
			} else if a.Addr > b.Addr {
				cmp = 1
			}
			c.emit("rel %d %d cmp=%d ab=%v ba=%v", i, j, cmp, a.Covers(b), b.Covers(a))
		}
	}
}

// classKey computes the isomorphism-class key for a component plan and
// records the component's value pool on the plan (the pool drives the
// blame-renaming bijection between a class representative and its other
// members). Equal keys guarantee the canonical serializations are equal,
// and those are written in sorted-router order — so index-aligned zip of
// the sorted router lists is a config isomorphism between members.
func classKey(g *protograph.Graph, cp *CompPlan, goal tiered.Goal) string {
	h := sha256.New()
	c := newCanon(h, cp.Comp.Routers)
	if goal.HasSubnet {
		c.emit("subnet %s", c.v(goal.Subnet))
	}
	for _, name := range cp.Comp.Routers {
		c.router(g.Configs[name])
	}
	for _, name := range cp.Comp.Routers {
		n := g.Topo.Node(name)
		for _, l := range g.Topo.LinksOf(n) {
			peer := l.Peer(n)
			if _, in := c.routers[peer.Name]; in {
				if name < peer.Name {
					c.emit("link %s %s %s %s sub=%s a=%s b=%s", c.r(name), l.IfaceOf(n),
						c.r(peer.Name), l.IfaceOf(peer), c.v(l.Subnet), c.ip(l.AddrOf(n)), c.ip(l.AddrOf(peer)))
				}
			} else {
				c.emit("cutlink %s %s sub=%s a=%s b=%s", c.r(name), l.IfaceOf(n),
					c.v(l.Subnet), c.ip(l.AddrOf(n)), c.ip(l.AddrOf(peer)))
			}
		}
		for _, e := range g.Topo.ExternalsOf(n) {
			c.emit("ext %s %s peer=%s self=%s as=%s", c.r(name), e.Iface, c.ip(e.PeerAddr), c.ip(e.RouterAddr), c.s(e.ASN))
		}
	}
	for _, con := range cp.Imports {
		c.emit("import %s peer=%s valid=%v metric=%d pfx=%s",
			c.r(con.Session.To), c.ip(con.Session.FromAddr), con.Valid, con.Metric, c.v(con.Prefix))
	}
	for _, con := range cp.Exports {
		c.emit("export %s peer=%s valid=%v metric=%d pfx=%s",
			c.r(con.Session.From), c.ip(con.Session.ToAddr), con.Valid, con.Metric, c.v(con.Prefix))
	}
	c.emit("goal check=%s hops=%d maxlen=%d maxfail=%d hassubnet=%v",
		goal.Check, goal.Hops, goal.MaxLen, goal.MaxFailures, goal.HasSubnet)
	for _, s := range cp.Srcs {
		c.emit("src %s", c.r(s))
	}
	c.relations()
	cp.Vals = c.vals
	return hex.EncodeToString(h.Sum(nil))
}

// renameOrigins rewrites a class representative's blame origins into a
// member component's namespace: router names map index-for-index across
// the sorted router lists, and address/prefix literals map through the
// index-aligned value pools (equal keys force equal pool shapes). Name
// fields are rewritten token-wise so composite names like "a>b" or
// "tor-0-0-ext1" carry over.
func renameOrigins(origins []provenance.Origin, rep, member *CompPlan) []provenance.Origin {
	if rep == member {
		return origins
	}
	subst := map[string]string{}
	for i, r := range rep.Comp.Routers {
		subst[r] = member.Comp.Routers[i]
	}
	for i, v := range rep.Vals {
		if i >= len(member.Vals) {
			break
		}
		mv := member.Vals[i]
		if v.Len == 32 {
			subst[v.Addr.String()] = mv.Addr.String()
		}
		subst[v.String()] = mv.String()
	}
	out := make([]provenance.Origin, len(origins))
	for i, o := range origins {
		o.Router = renameToken(o.Router, subst)
		o.Name = renameString(o.Name, subst)
		out[i] = o
	}
	return out
}

func renameToken(tok string, subst map[string]string) string {
	if to, ok := subst[tok]; ok {
		return to
	}
	return tok
}

// renameString substitutes whole separator-delimited segments, plus the
// "<router>-ext<N>" external-name shape whose router part is a prefix of
// the segment rather than the whole of it.
func renameString(s string, subst map[string]string) string {
	if s == "" {
		return s
	}
	isSep := func(r byte) bool {
		switch r {
		case '|', '>', ':', ',', ' ', '(', ')', '[', ']':
			return true
		}
		return false
	}
	var b strings.Builder
	start := 0
	flush := func(end int) {
		seg := s[start:end]
		if to, ok := subst[seg]; ok {
			b.WriteString(to)
			return
		}
		if i := strings.LastIndex(seg, "-ext"); i > 0 {
			if to, ok := subst[seg[:i]]; ok {
				b.WriteString(to + seg[i:])
				return
			}
		}
		b.WriteString(seg)
	}
	for i := 0; i < len(s); i++ {
		if isSep(s[i]) {
			flush(i)
			b.WriteByte(s[i])
			start = i + 1
		}
	}
	flush(len(s))
	return b.String()
}
