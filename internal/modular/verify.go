package modular

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/properties"
	"repro/internal/protograph"
	"repro/internal/smt"
	"repro/internal/tiered"
)

// Mode labels how a Verdict was produced.
const (
	// ModeModular means the composed component verdict stands.
	ModeModular = "modular"
	// ModeMonolithic means the network was a single component, so the
	// "modular" run is the monolithic encoding by definition.
	ModeMonolithic = "monolithic"
	// ModeFallback means residue forced the monolithic pipeline.
	ModeFallback = "fallback"
)

// Verdict is the outcome of a modular verification: the final Result
// plus how it was obtained.
type Verdict struct {
	Result *core.Result
	Mode   string
	// Residue explains a fallback (static rule names, "discharge:<id>",
	// ...); empty for ModeModular.
	Residue []string
	// Violated names the violated contract when a discharge failed.
	Violated string
	// Report carries the component-level details of a modular run (nil
	// for single-component networks).
	Report *Report
	Cut    *Cut
}

// Verify answers a goal modularly when the network and goal are inside
// the soundness envelope, and monolithically otherwise. The verdict is
// always sound: modular composition only ever claims "verified" (with
// blamed stanzas from the component UNSAT cores); every falsification
// and every residue is decided by the unchanged monolithic pipeline.
func Verify(ctx context.Context, g *protograph.Graph, goal tiered.Goal, opts Options) (*Verdict, error) {
	cut := Partition(g)
	if !cut.MultiComponent() {
		res, err := CheckMonolithic(ctx, g, goal, opts.Core)
		if err != nil {
			return nil, err
		}
		return &Verdict{Result: res, Mode: ModeMonolithic,
			Residue: []string{"single-component"}, Cut: cut}, nil
	}
	plan := NewPlan(g, cut, goal)
	rep, err := Run(ctx, g, plan, opts)
	if err != nil {
		if ctx.Err() != nil {
			// Timeout / cancellation composes to timeout, never to a
			// verdict from partial components.
			return nil, err
		}
		return fallback(ctx, g, goal, opts, cut, rep,
			[]string{"error: " + err.Error()}, "")
	}
	if len(rep.Residue) > 0 {
		return fallback(ctx, g, goal, opts, cut, rep, rep.Residue, rep.Violated)
	}
	return &Verdict{Result: rep.Result, Mode: ModeModular, Report: rep, Cut: cut}, nil
}

// fallback decides a residue row monolithically — or, under
// Options.NoFallback, reports the residue with a nil Result so the
// caller decides what an undecided row means.
func fallback(ctx context.Context, g *protograph.Graph, goal tiered.Goal, opts Options,
	cut *Cut, rep *Report, residue []string, violated string) (*Verdict, error) {
	v := &Verdict{Mode: ModeFallback, Residue: residue, Violated: violated,
		Report: rep, Cut: cut}
	if opts.NoFallback {
		return v, nil
	}
	res, err := CheckMonolithic(ctx, g, goal, opts.Core)
	if err != nil {
		return nil, err
	}
	v.Result = res
	return v, nil
}

// CheckMonolithic runs a goal through the unchanged single-model
// pipeline: encode the whole network, build the goal's property term and
// check it under the failure-budget assumption.
func CheckMonolithic(ctx context.Context, g *protograph.Graph, goal tiered.Goal, opts core.Options) (*core.Result, error) {
	m, err := core.Encode(g, opts)
	if err != nil {
		return nil, err
	}
	cn := m.Compile()
	prop, err := GoalProperty(m, goal)
	if err != nil {
		return nil, err
	}
	return m.CheckGoal(ctx, cn, prop, goalAssumptions(m, goal)...)
}

// goalAssumptions returns the monolithic check's assumption set: the
// failure budget, plus the destination restriction when the goal has
// one. Source-property terms already embed their subnet guard (the extra
// assumption is then redundant); for the whole-network properties
// (blackholes, multipath-consistency, ...) the assumption is what gives
// a subnet-scoped goal its meaning — matching the modular composition,
// which always works per destination prefix.
func goalAssumptions(m *core.Model, goal tiered.Goal) []*smt.Term {
	out := []*smt.Term{failureAssumption(m, goal)}
	if goal.HasSubnet {
		out = append(out, properties.DstIn(m, goal.Subnet))
	}
	return out
}

func failureAssumption(m *core.Model, goal tiered.Goal) *smt.Term {
	if goal.MaxFailures > 0 {
		return m.AtMostFailures(goal.MaxFailures)
	}
	return m.NoFailures()
}

// GoalProperty builds the property term for a tiered.Goal on a model,
// covering the full goal vocabulary (the modular composition itself only
// handles a subset; the rest reaches this through the fallback).
func GoalProperty(m *core.Model, goal tiered.Goal) (*smt.Term, error) {
	srcs := goalSources(goal)
	needSrc := func() error {
		if goal.Src == "" {
			return fmt.Errorf("modular: check %q requires a source", goal.Check)
		}
		return nil
	}
	switch goal.Check {
	case "reachability":
		if err := needSrc(); err != nil {
			return nil, err
		}
		return properties.Reachable(m, goal.Src, goal.Subnet), nil
	case "reachability-all":
		return properties.ReachableAll(m, srcs, goal.Subnet), nil
	case "isolation":
		if err := needSrc(); err != nil {
			return nil, err
		}
		return properties.Isolated(m, goal.Src, goal.Subnet), nil
	case "mgmt-reachability":
		return properties.ManagementReachable(m), nil
	case "blackholes":
		return properties.NoBlackholes(m), nil
	case "multipath-consistency":
		return properties.MultipathConsistent(m), nil
	case "loops":
		return properties.NoForwardingLoops(m, nil), nil
	case "bounded-length":
		if err := needSrc(); err != nil {
			return nil, err
		}
		return properties.BoundedLength(m, goal.Src, goal.Subnet, goal.Hops), nil
	case "bounded-length-all":
		return properties.BoundedLengthAll(m, srcs, goal.Subnet, goal.Hops), nil
	case "equal-lengths":
		return properties.EqualLengths(m, srcs, goal.Subnet), nil
	case "waypoint":
		if err := needSrc(); err != nil {
			return nil, err
		}
		return properties.Waypointed(m, goal.Src, goal.Via, goal.Subnet), nil
	case "no-leak":
		return properties.NoLeak(m, nil, goal.MaxLen), nil
	}
	return nil, fmt.Errorf("modular: unsupported check %q", goal.Check)
}
