package modular_test

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/modular"
	"repro/internal/protograph"
	"repro/internal/tiered"
	"repro/internal/topogen"
)

func fabricGraph(t *testing.T, k int) *protograph.Graph {
	t.Helper()
	ft, err := topogen.Generate(k)
	if err != nil {
		t.Fatal(err)
	}
	return buildGraph(t, ft.Routers)
}

func buildGraph(t *testing.T, routers []*config.Router) *protograph.Graph {
	t.Helper()
	topo, err := config.BuildTopology(routers)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*config.Router{}
	for _, r := range routers {
		byName[r.Name] = r
	}
	g, err := protograph.Build(topo, byName)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fabricGoals(k int) []tiered.Goal {
	ft, _ := topogen.Generate(k)
	sub := topogen.ToRSubnet(0, 0)
	far := topogen.ToRName(k-1, 0)
	return []tiered.Goal{
		{Check: "reachability", Src: far, Subnet: sub, HasSubnet: true},
		{Check: "reachability-all", Srcs: ft.AllToRs(), Subnet: sub, HasSubnet: true},
		{Check: "bounded-length", Src: far, Subnet: sub, HasSubnet: true, Hops: 4},
		{Check: "bounded-length-all", Srcs: ft.AllToRs(), Subnet: sub, HasSubnet: true, Hops: 4},
		{Check: "equal-lengths", Srcs: ft.ToRs[k-1], Subnet: sub, HasSubnet: true},
		{Check: "blackholes", Subnet: sub, HasSubnet: true},
		{Check: "multipath-consistency", Subnet: sub, HasSubnet: true},
	}
}

func TestPartitionFatTreeDeterministic(t *testing.T) {
	g := fabricGraph(t, 2)
	cut := modular.Partition(g)
	if got, want := len(cut.Components), topogen.NumRouters(2); got != want {
		t.Fatalf("components = %d, want %d (all-eBGP fabric is all singletons)", got, want)
	}
	for _, c := range cut.Components {
		if len(c.Routers) != 1 {
			t.Fatalf("component %d has %d routers, want 1", c.Index, len(c.Routers))
		}
	}
	if len(cut.Residue) != 0 {
		t.Fatalf("unexpected residue %v", cut.Residue)
	}
	// 8 fabric links (k=2: 2 pods × (tor-agg) + 2 agg-core... derive from
	// sessions): each internal eBGP link yields two directed sessions.
	if len(cut.Sessions)%2 != 0 || len(cut.Sessions) == 0 {
		t.Fatalf("sessions = %d, want a positive even count", len(cut.Sessions))
	}
	for i := 0; i < 5; i++ {
		again := modular.Partition(fabricGraph(t, 2))
		if again.Hash != cut.Hash {
			t.Fatalf("partition hash differs across runs: %s vs %s", again.Hash, cut.Hash)
		}
	}
}

func TestContractsFatTree(t *testing.T) {
	g := fabricGraph(t, 2)
	cut := modular.Partition(g)
	con := modular.DeriveContracts(g, cut, topogen.ToRSubnet(0, 0))
	if len(con.Residue) != 0 {
		t.Fatalf("contract residue %v", con.Residue)
	}
	if len(con.Originators) != 1 || con.Originators[0] != topogen.ToRName(0, 0) {
		t.Fatalf("originators = %v, want [tor-0-0]", con.Originators)
	}
	wantDist := map[string]int{
		topogen.ToRName(0, 0): 0,
		topogen.AggName(0, 0): 1,
		topogen.CoreName(0):   2,
		topogen.AggName(1, 0): 3,
		topogen.ToRName(1, 0): 4,
	}
	for r, want := range wantDist {
		if got, ok := con.Dist[r]; !ok || got != want {
			t.Fatalf("dist[%s] = %d (ok=%v), want %d", r, got, ok, want)
		}
	}
	for id, c := range con.BySession {
		if !c.Valid {
			t.Fatalf("contract %s invalid, want all valid on a connected fabric", id)
		}
		if want := con.Dist[c.Session.From] + 1; c.Metric != want {
			t.Fatalf("contract %s metric = %d, want %d", id, c.Metric, want)
		}
	}
}

func checkParity(t *testing.T, g *protograph.Graph, goal tiered.Goal, opts modular.Options, wantAlias bool) {
	t.Helper()
	v, err := modular.Verify(context.Background(), g, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v.Mode != modular.ModeModular {
		t.Fatalf("mode = %s (residue %v), want modular", v.Mode, v.Residue)
	}
	mono, err := modular.CheckMonolithic(context.Background(), g, goal, opts.Core)
	if err != nil {
		t.Fatal(err)
	}
	if v.Result.Verified != mono.Verified {
		t.Fatalf("parity: modular verified=%v, monolithic verified=%v", v.Result.Verified, mono.Verified)
	}
	if v.Result.Verified && len(v.Result.Blame) == 0 {
		t.Fatalf("composed verified verdict has empty blame")
	}
	if wantAlias && v.Report.AliasHits == 0 {
		t.Fatalf("expected isomorphic-pod alias hits, got 0 (classes=%d, components=%d)",
			v.Report.Classes, v.Report.Components)
	}
}

func modularOpts() modular.Options {
	return modular.Options{Core: core.Options{Hoisting: true, Slicing: true, Blame: true}, Workers: 2}
}

func TestModularParityFatTree(t *testing.T) {
	// k=2 has no isomorphic pods (every router's contract metric is
	// distinct), so no alias hits are expected here; see the k=4 tests.
	g := fabricGraph(t, 2)
	for _, goal := range fabricGoals(2) {
		goal := goal
		t.Run(goal.Check, func(t *testing.T) { checkParity(t, g, goal, modularOpts(), false) })
	}
}

// TestModularParityFatTreeK4 cross-checks two goal shapes against the
// monolithic encoding at 20 routers (the largest fabric where the
// monolithic side is still quick); the fuzz ModularParity oracle and the
// CI sweep cover the remaining goals at this size.
func TestModularParityFatTreeK4(t *testing.T) {
	g := fabricGraph(t, 4)
	for _, goal := range fabricGoals(4) {
		switch goal.Check {
		case "reachability-all", "equal-lengths":
		default:
			continue
		}
		goal := goal
		t.Run(goal.Check, func(t *testing.T) { checkParity(t, g, goal, modularOpts(), true) })
	}
}

// TestModularAliasFatTree exercises the isomorphism aliasing without
// paying for monolithic reference checks: at k=4 the far pods must
// collapse into shared classes for every goal shape.
func TestModularAliasFatTree(t *testing.T) {
	g := fabricGraph(t, 4)
	for _, goal := range fabricGoals(4) {
		goal := goal
		t.Run(goal.Check, func(t *testing.T) {
			v, err := modular.Verify(context.Background(), g, goal, modularOpts())
			if err != nil {
				t.Fatal(err)
			}
			if v.Mode != modular.ModeModular {
				t.Fatalf("mode = %s (residue %v), want modular", v.Mode, v.Residue)
			}
			if !v.Result.Verified {
				t.Fatalf("fabric goal %s not verified", goal.Check)
			}
			if v.Report.Classes >= v.Report.Components {
				t.Fatalf("no class sharing: %d classes for %d components", v.Report.Classes, v.Report.Components)
			}
			if v.Report.AliasHits != v.Report.Components-v.Report.Classes {
				t.Fatalf("alias hits = %d, want components-classes = %d",
					v.Report.AliasHits, v.Report.Components-v.Report.Classes)
			}
		})
	}
}
