package modular

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/obs/cost"
	"repro/internal/properties"
	"repro/internal/protograph"
	"repro/internal/smt"
)

// Options configure one modular run.
type Options struct {
	// Core is the per-component encoder/solver configuration. Components
	// are compiled with it unchanged, so pass exactly what a monolithic
	// check would use (certification, blame, passes, ...).
	Core core.Options
	// Workers bounds class-level parallelism for the built-in scheduler
	// (<=0 means one worker). Ignored when Schedule is set.
	Workers int
	// Schedule, when non-nil, runs the per-class closures on an external
	// pool (the service engine's workers) and returns when all are done.
	Schedule func(tasks []func())
	// OnEvent receives progress events ("modular.class", ...) for the
	// flight recorder; nil disables.
	OnEvent func(event string, fields map[string]any)
	// NoFallback makes Verify report residue instead of deciding it
	// monolithically (Verdict.Result is then nil for fallback rows). For
	// fabrics where the whole-network encoding is off the table, a
	// surprise residue must not quietly start an infeasible solve.
	NoFallback bool
}

// Report is the outcome of a modular run over one plan.
type Report struct {
	Verified   bool
	Components int
	Classes    int
	// AliasHits counts components whose verdict was taken from an
	// isomorphic class representative instead of being solved.
	AliasHits int
	// Checks counts the component-level SMT checks actually solved.
	Checks int
	// Residue is the runtime residue: empty means the composed Result
	// stands; non-empty means a component check failed to discharge and
	// the caller must fall back to the monolithic encoding.
	Residue []string
	// Violated names the first violated contract (when a discharge check
	// failed), in Contract.String() form.
	Violated string
	// Result is the composed verdict (nil when Residue is non-empty).
	Result *core.Result
	// PeakTerms is the largest per-component term count — the modular
	// answer to the monolithic model-size question.
	PeakTerms int
	Elapsed   time.Duration
	// Cost is the run's resource ledger: one "class:N" child per solved
	// isomorphism class (N the representative's component index) holding
	// that class's compile and per-check phase costs, with meta members
	// and amortized_units recording how far aliasing stretched the work —
	// a class solved once on behalf of k members costs units/k per
	// component.
	Cost *cost.Node
}

func emit(o Options, event string, fields map[string]any) {
	if o.OnEvent != nil {
		o.OnEvent(event, fields)
	}
}

// hoistingOn mirrors the encoder's pass resolution for the hoist pass.
// Modular composition requires it: without prefix/loop hoisting, cut
// imports carry symbolic loop-detection state the contract vocabulary
// cannot pin soundly.
func hoistingOn(o core.Options) bool {
	switch o.Passes {
	case "":
		return o.Hoisting
	case "all":
		return true
	case "none":
		return false
	}
	for _, name := range strings.Split(o.Passes, ",") {
		if strings.TrimSpace(name) == core.PassHoist {
			return true
		}
	}
	return false
}

// classOutcome is one class representative's solved checks.
type classOutcome struct {
	rep      *CompPlan
	members  []*CompPlan
	verdicts []*core.ComponentVerdict
	residue  string // "" = all checks verified
	violated string
	terms    int
	cost     *cost.Node
	err      error
}

// Run executes a runnable multi-component plan: groups components into
// isomorphism classes, verifies one representative per class (discharge
// strata, then the goal's obligations and per-component properties) and
// composes the verdicts. Any failed component check surfaces as runtime
// residue — the modular pipeline never turns a component counterexample
// into a network counterexample, because the other components need not
// have matching stable states; falsification is the monolithic
// fallback's job.
func Run(ctx context.Context, g *protograph.Graph, plan *Plan, opts Options) (*Report, error) {
	start := time.Now()
	if !plan.Runnable() {
		return &Report{Components: len(plan.Comps), Residue: plan.AllResidue()}, nil
	}
	if !hoistingOn(opts.Core) {
		return &Report{Components: len(plan.Comps), Residue: []string{"no-hoist"}}, nil
	}

	byKey := map[string]*classOutcome{}
	var order []string
	for _, cp := range plan.Comps {
		cl, ok := byKey[cp.Key]
		if !ok {
			cl = &classOutcome{rep: cp}
			byKey[cp.Key] = cl
			order = append(order, cp.Key)
		}
		cl.members = append(cl.members, cp)
	}
	emit(opts, "modular.plan", map[string]any{
		"components": len(plan.Comps), "classes": len(order), "cut_sessions": len(plan.Cut.Sessions)})

	tasks := make([]func(), len(order))
	for i, key := range order {
		cl := byKey[key]
		tasks[i] = func() {
			runClass(ctx, g, plan, cl, opts)
			fields := map[string]any{"routers": len(cl.rep.Comp.Routers),
				"members": len(cl.members), "checks": len(cl.verdicts)}
			if cl.err != nil {
				fields["error"] = cl.err.Error()
			}
			if cl.residue != "" {
				fields["residue"] = cl.residue
			}
			emit(opts, "modular.class", fields)
		}
	}
	if opts.Schedule != nil {
		opts.Schedule(tasks)
	} else {
		workers := opts.Workers
		if workers <= 0 {
			workers = 1
		}
		var wg sync.WaitGroup
		ch := make(chan func())
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range ch {
					t()
				}
			}()
		}
		for _, t := range tasks {
			ch <- t
		}
		close(ch)
		wg.Wait()
	}

	rep := &Report{Components: len(plan.Comps), Classes: len(order), Cost: cost.New("modular")}
	var all []*core.ComponentVerdict
	for _, key := range order {
		cl := byKey[key]
		if cl.err != nil {
			return nil, cl.err
		}
		if cl.cost != nil {
			cl.cost.SetMeta("members", int64(len(cl.members)))
			cl.cost.SetMeta("checks", int64(len(cl.verdicts)))
			if n := int64(len(cl.members)); n > 0 {
				cl.cost.SetMeta("amortized_units", cl.cost.Total().Units()/n)
			}
			rep.Cost.AddChild(cl.cost)
		}
		rep.Checks += len(cl.verdicts)
		if cl.terms > rep.PeakTerms {
			rep.PeakTerms = cl.terms
		}
		if cl.residue != "" {
			rep.Residue = append(rep.Residue, cl.residue)
			if rep.Violated == "" {
				rep.Violated = cl.violated
			}
			continue
		}
		all = append(all, cl.verdicts...)
		// Alias members inherit the representative's verdicts with blame
		// rewritten through the router/value bijection; no solver work or
		// stats are double-counted.
		for _, m := range cl.members {
			if m == cl.rep {
				continue
			}
			rep.AliasHits++
			for _, v := range cl.verdicts {
				if v.Res == nil || len(v.Res.Blame) == 0 {
					continue
				}
				all = append(all, &core.ComponentVerdict{
					Component: m.Comp.Index,
					Check:     v.Check + ":alias",
					Res: &core.Result{Verified: v.Res.Verified,
						Blame: renameOrigins(v.Res.Blame, cl.rep, m)},
				})
			}
		}
	}
	sort.Strings(rep.Residue)
	rep.Elapsed = time.Since(start)
	if len(rep.Residue) > 0 {
		emit(opts, "modular.residue", map[string]any{"residue": strings.Join(rep.Residue, ","), "violated": rep.Violated})
		return rep, nil
	}

	// Length goals compose arithmetically: with singleton components and
	// exact discharges, a reached source's path length equals its BGP-hop
	// distance (every internal hop is an AS hop and delivery happens only
	// at the originators — both enforced by plan residue rules).
	if isLengthCheck(plan.Goal.Check) {
		if res := composeLengths(plan); res != "" {
			rep.Residue = []string{res}
			emit(opts, "modular.residue", map[string]any{"residue": res})
			return rep, nil
		}
	}

	rep.Result = core.ComposeVerdicts(all)
	rep.Verified = rep.Result.Verified
	emit(opts, "modular.compose", map[string]any{
		"verified": rep.Verified, "checks": rep.Checks, "alias_hits": rep.AliasHits,
		"blame": len(rep.Result.Blame)})
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// composeLengths discharges a length goal by contract-metric arithmetic.
// Sound verified claims only; anything else is residue.
func composeLengths(plan *Plan) string {
	dists := map[string]int{}
	infinite := false
	for _, src := range goalSources(plan.Goal) {
		d, ok := plan.Con.Dist[src]
		if !ok {
			infinite = true
			continue
		}
		dists[src] = d
	}
	switch plan.Goal.Check {
	case "bounded-length", "bounded-length-all":
		// Unreachable sources satisfy the bound vacuously; reached ones
		// use exactly dist hops.
		for src, d := range dists {
			if d > plan.Goal.Hops {
				return fmt.Sprintf("length-bound:%s", src)
			}
		}
	case "equal-lengths":
		if infinite {
			// A source the BGP graph cannot reach may still make the
			// property vacuously true monolithically; don't guess.
			return "length-unreachable-src"
		}
		first, have := 0, false
		for _, src := range goalSources(plan.Goal) {
			d := dists[src]
			if !have {
				first, have = d, true
			} else if d != first {
				return "length-unequal"
			}
		}
	}
	return ""
}

// buildComponent rebuilds a component's subset network: the far ends of
// cut sessions fall out of the router set, so BuildTopology re-infers
// them as external peers and the ordinary environment machinery models
// their announcements.
func buildComponent(g *protograph.Graph, cp *CompPlan) (*protograph.Graph, error) {
	if len(cp.Comp.Routers) == len(g.Topo.Nodes) {
		return g, nil
	}
	subset := make([]*config.Router, 0, len(cp.Comp.Routers))
	byName := make(map[string]*config.Router, len(cp.Comp.Routers))
	for _, name := range cp.Comp.Routers {
		cfg := g.Configs[name]
		subset = append(subset, cfg)
		byName[name] = cfg
	}
	topo, err := config.BuildTopology(subset)
	if err != nil {
		return nil, fmt.Errorf("modular: component %d topology: %w", cp.Comp.Index, err)
	}
	return protograph.Build(topo, byName)
}

// extFor resolves which external of the component graph carries a cut
// contract: the peer's address identifies it uniquely on the local
// router.
func extFor(cg *protograph.Graph, router string, peerAddr network.IP) (string, error) {
	n := cg.Topo.Node(router)
	if n == nil {
		return "", fmt.Errorf("modular: router %q missing from component", router)
	}
	for _, e := range cg.Topo.ExternalsOf(n) {
		if e.PeerAddr == peerAddr {
			return e.Name, nil
		}
	}
	return "", fmt.Errorf("modular: no external for %s peer %v", router, peerAddr)
}

// runClass verifies one class representative. Check order: discharge the
// export guarantees stratum by stratum (induction on contract metric),
// then the goal's reachability obligations and per-component property.
func runClass(ctx context.Context, g *protograph.Graph, plan *Plan, cl *classOutcome, opts Options) {
	cp := cl.rep
	fail := func(err error) { cl.err = err }

	cg, err := buildComponent(g, cp)
	if err != nil {
		fail(err)
		return
	}
	m, cn, err := core.CompileComponent(cg, opts.Core)
	if err != nil {
		fail(err)
		return
	}
	cl.cost = cost.New(fmt.Sprintf("class:%d", cp.Comp.Index))
	cl.cost.Child("compile").AddWall(cn.Elapsed)
	defer func() { cl.terms = m.Ctx.NumTerms() }()

	type boundExt struct {
		con *Contract
		ext string
		pin core.EnvPin
	}
	bind := func(cons []*Contract, localOf func(*Contract) (string, network.IP)) ([]boundExt, error) {
		out := make([]boundExt, 0, len(cons))
		for _, con := range cons {
			router, addr := localOf(con)
			ext, err := extFor(cg, router, addr)
			if err != nil {
				return nil, err
			}
			out = append(out, boundExt{con, ext,
				core.EnvPin{Ext: ext, Valid: con.Valid, Prefix: con.Prefix, Metric: con.Metric}})
		}
		return out, nil
	}
	imports, err := bind(cp.Imports, func(c *Contract) (string, network.IP) {
		return c.Session.To, c.Session.FromAddr
	})
	if err != nil {
		fail(err)
		return
	}
	exports, err := bind(cp.Exports, func(c *Contract) (string, network.IP) {
		return c.Session.From, c.Session.ToAddr
	})
	if err != nil {
		fail(err)
		return
	}

	dst := properties.DstIn(m, plan.Goal.Subnet)
	noFail := m.NoFailures()

	// The invariant assumption for every import: silence for invalid
	// contracts, and the support-chain lower bound (right prefix, metric
	// >= contract, no MED) for valid ones. Sound unconditionally under
	// the cut's static residue rules — every announcement for the goal
	// prefix is relayed from an originator gaining one metric per AS hop.
	var lb []*smt.Term
	for _, im := range imports {
		t, err := m.EnvContractLB(im.pin)
		if err != nil {
			fail(err)
			return
		}
		lb = append(lb, t)
	}
	exactBelow := func(metric int) ([]*smt.Term, error) {
		var pins []core.EnvPin
		for _, im := range imports {
			if im.con.Valid && im.con.Metric < metric {
				pins = append(pins, im.pin)
			}
		}
		return m.PinEnv(pins)
	}

	check := func(name, contract string, property *smt.Term, assumptions []*smt.Term) (bool, error) {
		res, err := m.CheckGoal(ctx, cn, property, assumptions...)
		if err != nil {
			return false, err
		}
		// Fold the check's phase ledger into the class node (same-name
		// phases accumulate, like origin profiles).
		cl.cost.Merge(res.Cost)
		cl.verdicts = append(cl.verdicts, &core.ComponentVerdict{
			Component: cp.Comp.Index, Check: name, Contract: contract, Res: res})
		return res.Verified, nil
	}

	// Discharge strata: guarantees at metric m may depend only on
	// assumptions at metrics < m, so pinning those exactly (and the rest
	// to the lower bound) and proving the stratum's exports breaks the
	// assume/guarantee circle by induction on m.
	strata := map[int][]boundExt{}
	var metrics []int
	for _, ex := range exports {
		if !ex.con.Valid {
			// Silence guarantees follow from the support-chain theorem
			// (no finite-distance chain exists); nothing to solve.
			continue
		}
		if _, ok := strata[ex.con.Metric]; !ok {
			metrics = append(metrics, ex.con.Metric)
		}
		strata[ex.con.Metric] = append(strata[ex.con.Metric], ex)
	}
	sort.Ints(metrics)
	for _, metric := range metrics {
		below, err := exactBelow(metric)
		if err != nil {
			fail(err)
			return
		}
		assumptions := append(append([]*smt.Term{dst, noFail}, lb...), below...)
		var goals []*smt.Term
		for _, ex := range strata[metric] {
			t, err := m.ExportMatches(ex.ext, ex.pin)
			if err != nil {
				fail(err)
				return
			}
			goals = append(goals, t)
		}
		ok, err := check(fmt.Sprintf("discharge[m=%d]", metric), "", m.Ctx.And(goals...), assumptions)
		if err != nil {
			fail(err)
			return
		}
		if !ok {
			// Bisect the stratum to name the violated contract.
			violated := strata[metric][0].con
			for _, ex := range strata[metric] {
				t, err := m.ExportMatches(ex.ext, ex.pin)
				if err != nil {
					fail(err)
					return
				}
				one, err := check(fmt.Sprintf("discharge[m=%d]:%s", metric, ex.con.Session.ID),
					ex.con.Session.ID, t, assumptions)
				if err != nil {
					fail(err)
					return
				}
				if !one {
					violated = ex.con
					break
				}
			}
			cl.residue = "discharge:" + violated.Session.ID
			cl.violated = violated.String()
			return
		}
	}

	if isLengthCheck(plan.Goal.Check) {
		return // composed by metric arithmetic in Run
	}

	// Everything below runs under the full exact environment: every
	// import pinned to its contract.
	var allPins []core.EnvPin
	for _, im := range imports {
		allPins = append(allPins, im.pin)
	}
	pinned, err := m.PinEnv(allPins)
	if err != nil {
		fail(err)
		return
	}
	assumptions := append([]*smt.Term{dst, noFail}, pinned...)

	// Obligations: the goal sources in this component — plus the ingress
	// routers, where neighbor components hand packets in — must reach the
	// destination counting only exits toward valid contracts (each such
	// exit crosses to a component whose own ingress obligation continues
	// the chain; contract metrics strictly decrease across crossings, so
	// the chain ends at an originator that delivers).
	obliged := map[string]bool{}
	switch plan.Goal.Check {
	case "reachability", "reachability-all":
		for _, s := range cp.Srcs {
			obliged[s] = true
		}
	}
	for _, ex := range exports {
		if ex.con.Valid {
			obliged[ex.con.Session.From] = true
		}
	}
	if len(obliged) > 0 {
		allowed := map[string]bool{}
		for _, im := range imports {
			if im.con.Valid {
				allowed[im.ext] = true
			}
		}
		reach := m.ReachVia(m.Main, allowed)
		var names []string
		for r := range obliged {
			names = append(names, r)
		}
		sort.Strings(names)
		var goals []*smt.Term
		for _, r := range names {
			goals = append(goals, reach[r])
		}
		ok, err := check("obligation:"+strings.Join(names, ","), "", m.Ctx.And(goals...), assumptions)
		if err != nil {
			fail(err)
			return
		}
		if !ok {
			cl.residue = "obligation:" + cp.Comp.Routers[0]
			return
		}
	}

	// Per-component property for the whole-network goals; the blackhole /
	// multipath conditions are local to each router's forwarding state,
	// so the component property plus the ingress obligations cover every
	// router of the fabric.
	var prop *smt.Term
	switch plan.Goal.Check {
	case "blackholes":
		prop = properties.NoBlackholes(m)
	case "multipath-consistency":
		prop = properties.MultipathConsistent(m)
	}
	if prop != nil {
		ok, err := check("property:"+plan.Goal.Check, "", prop, assumptions)
		if err != nil {
			fail(err)
			return
		}
		if !ok {
			cl.residue = "property:" + cp.Comp.Routers[0]
			return
		}
	}
}
