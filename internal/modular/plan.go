package modular

import (
	"sort"

	"repro/internal/network"
	"repro/internal/protograph"
	"repro/internal/tiered"
)

// CompPlan is one component's slice of the work: the contracts it
// assumes (Imports — sessions announcing into it), the contracts it must
// discharge (Exports — sessions it announces on), and the goal sources
// that live inside it. Key is the canonical isomorphism-class key; plans
// with equal keys verify once and share the verdict.
type CompPlan struct {
	Comp    *Component
	Imports []*Contract // sorted by session ID
	Exports []*Contract // sorted by session ID
	Srcs    []string    // goal sources in this component, sorted
	Key     string
	// Vals is the component's canonical value pool (filled by classKey);
	// index-aligned pools of same-key plans give the blame-renaming
	// bijection between class members.
	Vals []network.Prefix
}

// Plan is the full modular schedule for one (cut, goal) pair. A
// non-empty Residue (its own, the cut's or the contracts') means the
// goal must be answered monolithically.
type Plan struct {
	Cut     *Cut
	Goal    tiered.Goal
	Con     *Contracts
	Comps   []*CompPlan
	Residue []string // goal-level residue only; see AllResidue
}

// AllResidue merges the cut, contract and goal residues.
func (p *Plan) AllResidue() []string {
	seen := map[string]bool{}
	var out []string
	for _, rs := range [][]string{p.Cut.Residue, p.Con.Residue, p.Residue} {
		for _, r := range rs {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Runnable reports whether the modular pipeline may answer the goal.
func (p *Plan) Runnable() bool { return len(p.AllResidue()) == 0 }

func goalSources(g tiered.Goal) []string {
	if len(g.Srcs) > 0 {
		return g.Srcs
	}
	if g.Src != "" {
		return []string{g.Src}
	}
	return nil
}

func isLengthCheck(check string) bool {
	switch check {
	case "bounded-length", "bounded-length-all", "equal-lengths":
		return true
	}
	return false
}

// NewPlan derives contracts for the goal destination and assigns every
// component its imports, exports and sources. Goal-level residue rules
// apply only to genuinely multi-component cuts — a single-component
// "cut" is the monolithic encoding and supports everything.
func NewPlan(g *protograph.Graph, cut *Cut, goal tiered.Goal) *Plan {
	p := &Plan{Cut: cut, Goal: goal, Con: DeriveContracts(g, cut, goal.Subnet)}
	residue := map[string]bool{}

	if cut.MultiComponent() {
		switch goal.Check {
		case "reachability", "reachability-all", "bounded-length",
			"bounded-length-all", "equal-lengths", "blackholes",
			"multipath-consistency":
		default:
			// Waypoint/isolation/loop/leak-style goals need composition
			// arguments (path shape across several components) the
			// contract vocabulary does not carry yet.
			residue["goal-check"] = true
		}
		if !goal.HasSubnet {
			// Without a destination restriction the contract would have
			// to describe announcements for every prefix at once.
			residue["goal-no-subnet"] = true
		}
		if goal.MaxFailures > 0 {
			// A shared failure budget cannot be split soundly across
			// independently-verified components.
			residue["goal-max-failures"] = true
		}
		if goal.Via != "" {
			residue["goal-check"] = true
		}
		for _, src := range goalSources(goal) {
			if _, ok := cut.CompOf[src]; !ok {
				residue["goal-unknown-src"] = true
			}
		}
		if isLengthCheck(goal.Check) {
			// Length composition replaces per-hop SMT reasoning with
			// contract-metric arithmetic; that identifies path length
			// with BGP-hop distance, which needs every internal hop to
			// be an AS hop (singleton components) and delivery to happen
			// only at the originators.
			for _, comp := range cut.Components {
				if len(comp.Routers) > 1 {
					residue["length-component"] = true
					break
				}
			}
			orig := map[string]bool{}
			for _, o := range p.Con.Originators {
				orig[o] = true
			}
			for _, n := range g.Topo.Nodes {
				cfg := g.Configs[n.Name]
				for _, ifc := range cfg.Interfaces {
					if !ifc.Shutdown && !ifc.Management && ifc.Prefix.Overlaps(goal.Subnet) && !orig[n.Name] {
						// A connected route at a non-originator could
						// deliver early, making the real path shorter
						// than the BGP distance.
						residue["length-owner"] = true
					}
				}
				for _, st := range cfg.Statics {
					if st.Prefix.Overlaps(goal.Subnet) {
						residue["length-static"] = true
					}
				}
			}
		}
	}

	for r := range residue {
		p.Residue = append(p.Residue, r)
	}
	sort.Strings(p.Residue)

	srcsOf := map[int][]string{}
	for _, src := range goalSources(goal) {
		if ci, ok := cut.CompOf[src]; ok {
			srcsOf[ci] = append(srcsOf[ci], src)
		}
	}
	for _, comp := range cut.Components {
		cp := &CompPlan{Comp: comp, Srcs: srcsOf[comp.Index]}
		sort.Strings(cp.Srcs)
		for _, s := range cut.Sessions { // already ID-sorted
			c := p.Con.BySession[s.ID]
			if s.ToComp == comp.Index {
				cp.Imports = append(cp.Imports, c)
			}
			if s.FromComp == comp.Index {
				cp.Exports = append(cp.Exports, c)
			}
		}
		cp.Key = classKey(g, cp, goal)
		p.Comps = append(p.Comps, cp)
	}
	return p
}
