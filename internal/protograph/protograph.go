// Package protograph computes the protocol-level decomposition of a
// network (Figure 2(b)/(c) of the paper): which protocol instances run on
// each router, which pairs of instances exchange routing information over
// which physical links or peerings, and which instances redistribute into
// which.
//
// Both the symbolic encoder (internal/core) and the concrete simulator
// (internal/simulator) are driven by this graph, which keeps their
// semantics aligned.
package protograph

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/network"
)

// Instance is one protocol process on one router.
type Instance struct {
	Router *network.Node
	Proto  config.Protocol
}

func (i Instance) String() string {
	return fmt.Sprintf("%s/%v", i.Router.Name, i.Proto)
}

// OSPFAdj is a bidirectional OSPF adjacency over a link: both endpoints
// run OSPF and have the link subnet activated by a network statement.
type OSPFAdj struct {
	Link *network.Link
	// CostA is the interface cost on A's side (paid by A when receiving
	// routes from B... cost of A's outgoing interface), CostB likewise.
	CostA, CostB int
}

// RIPAdj is a bidirectional RIP adjacency over a link.
type RIPAdj struct {
	Link *network.Link
}

// BGPSessionKind distinguishes session types.
type BGPSessionKind int

// Session kinds.
const (
	EBGP BGPSessionKind = iota
	IBGP
	// EBGPExternal is a session to an environment neighbor.
	EBGPExternal
)

// BGPSession is one configured BGP peering. Internal sessions (between two
// modeled routers) carry both directions; external sessions connect a
// router to a symbolic environment peer.
type BGPSession struct {
	Kind BGPSessionKind

	// A is always an internal router; its neighbor stanza for the session
	// is NbrAtA.
	A      *network.Node
	NbrAtA *config.BGPNeighbor

	// B and NbrAtB are set for internal sessions.
	B      *network.Node
	NbrAtB *config.BGPNeighbor

	// Ext is set for external sessions.
	Ext *network.External

	// Link is the physical link the session rides (internal sessions).
	// Sessions between loopbacks ride the IGP; Link is nil then and the
	// session is up whenever the peering addresses are mutually
	// reachable.
	Link *network.Link
}

// Graph is the protocol-level decomposition of one network.
type Graph struct {
	Topo    *network.Topology
	Configs map[string]*config.Router

	Instances []Instance
	OSPFAdjs  []*OSPFAdj
	RIPAdjs   []*RIPAdj
	Sessions  []*BGPSession

	// IBGPSpeakers are routers with at least one iBGP session, in name
	// order; the encoder builds one extra network copy per speaker (§4).
	IBGPSpeakers []*network.Node
}

// Build computes the decomposition. Configs are keyed by router name and
// must cover every topology node.
func Build(topo *network.Topology, configs map[string]*config.Router) (*Graph, error) {
	g := &Graph{Topo: topo, Configs: configs}
	for _, n := range topo.Nodes {
		c := configs[n.Name]
		if c == nil {
			return nil, fmt.Errorf("protograph: no configuration for router %q", n.Name)
		}
		for _, p := range c.Protocols() {
			g.Instances = append(g.Instances, Instance{Router: n, Proto: p})
		}
	}
	// Deterministic decomposition: order instances by router name with the
	// protocol as tiebreaker, so downstream analyses (and anything hashing
	// the decomposition) never depend on per-router iteration order.
	sort.SliceStable(g.Instances, func(i, j int) bool {
		a, b := g.Instances[i], g.Instances[j]
		if a.Router.Name != b.Router.Name {
			return a.Router.Name < b.Router.Name
		}
		return a.Proto < b.Proto
	})

	// OSPF and RIP adjacencies.
	for _, l := range topo.Links {
		ca, cb := configs[l.A.Name], configs[l.B.Name]
		if aCost, ok := ospfActive(ca, l, l.A); ok {
			if bCost, ok2 := ospfActive(cb, l, l.B); ok2 {
				g.OSPFAdjs = append(g.OSPFAdjs, &OSPFAdj{Link: l, CostA: aCost, CostB: bCost})
			}
		}
		if ripActive(ca, l, l.A) && ripActive(cb, l, l.B) {
			g.RIPAdjs = append(g.RIPAdjs, &RIPAdj{Link: l})
		}
	}

	// BGP sessions. Peer address owned by an internal router → internal
	// session (deduplicated by requiring matching stanzas both ways);
	// otherwise external (already resolved by topology inference).
	addrOwner := map[network.IP]*network.Node{}
	for _, n := range topo.Nodes {
		for _, i := range configs[n.Name].Interfaces {
			if !i.Shutdown {
				addrOwner[i.Addr] = n
			}
		}
	}
	type pairKey struct{ a, b string }
	seen := map[pairKey]bool{}
	for _, n := range topo.Nodes {
		c := configs[n.Name]
		if c.BGP == nil {
			continue
		}
		for _, nbr := range c.BGP.Neighbors {
			peer := addrOwner[nbr.Addr]
			if peer == nil {
				continue // external; handled below via topo.Externals
			}
			pc := configs[peer.Name]
			if pc.BGP == nil {
				return nil, fmt.Errorf("protograph: %s peers with %s which does not run BGP", n.Name, peer.Name)
			}
			// Find the reciprocal stanza: peer must have a neighbor
			// statement for one of n's addresses.
			var back *config.BGPNeighbor
			for _, pn := range pc.BGP.Neighbors {
				if owner := addrOwner[pn.Addr]; owner == n {
					back = pn
					break
				}
			}
			if back == nil {
				return nil, fmt.Errorf("protograph: %s has a BGP neighbor %v on %s with no reciprocal stanza", n.Name, nbr.Addr, peer.Name)
			}
			if nbr.RemoteAS != pc.BGP.ASN || back.RemoteAS != c.BGP.ASN {
				return nil, fmt.Errorf("protograph: AS mismatch on session %s-%s", n.Name, peer.Name)
			}
			k := pairKey{n.Name, peer.Name}
			if n.Name > peer.Name {
				k = pairKey{peer.Name, n.Name}
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			kind := EBGP
			if nbr.IsInternal(c.BGP.ASN) {
				kind = IBGP
			}
			s := &BGPSession{Kind: kind, A: n, NbrAtA: nbr, B: peer, NbrAtB: back}
			// Attach the physical link when the peering addresses sit on
			// a shared subnet.
			for _, l := range topo.LinksOf(n) {
				if l.Peer(n) == peer && l.Subnet.Contains(nbr.Addr) {
					s.Link = l
					break
				}
			}
			g.Sessions = append(g.Sessions, s)
		}
	}
	for _, e := range topo.Externals {
		c := configs[e.Router.Name]
		nbr := config.FindBGPNeighbor(c, e.PeerAddr)
		if nbr == nil {
			return nil, fmt.Errorf("protograph: external peering %s has no neighbor stanza", e.Name)
		}
		g.Sessions = append(g.Sessions, &BGPSession{Kind: EBGPExternal, A: e.Router, NbrAtA: nbr, Ext: e})
	}
	sort.Slice(g.Sessions, func(i, j int) bool { return sessionLess(g.Sessions[i], g.Sessions[j]) })

	// iBGP speakers.
	speakers := map[string]*network.Node{}
	for _, s := range g.Sessions {
		if s.Kind == IBGP {
			speakers[s.A.Name] = s.A
			speakers[s.B.Name] = s.B
		}
	}
	for _, name := range sortedNames(speakers) {
		g.IBGPSpeakers = append(g.IBGPSpeakers, speakers[name])
	}
	return g, nil
}

func sessionLess(a, b *BGPSession) bool {
	an, bn := sessionKeyOf(a), sessionKeyOf(b)
	return an < bn
}

func sessionKeyOf(s *BGPSession) string {
	switch s.Kind {
	case EBGPExternal:
		return s.A.Name + "|ext|" + s.Ext.Name
	default:
		return s.A.Name + "|int|" + s.B.Name
	}
}

func sortedNames(m map[string]*network.Node) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ospfActive reports whether the endpoint runs OSPF on the link's subnet,
// and returns the interface cost on that endpoint's side.
func ospfActive(c *config.Router, l *network.Link, n *network.Node) (int, bool) {
	if c.OSPF == nil {
		return 0, false
	}
	ifName := l.IfaceOf(n)
	iface := c.Iface(ifName)
	if iface == nil || iface.Shutdown {
		return 0, false
	}
	for _, net := range c.OSPF.Networks {
		if net.Covers(iface.Prefix) || net == iface.Prefix {
			cost := iface.OSPFCost
			if cost <= 0 {
				cost = 1
			}
			return cost, true
		}
	}
	return 0, false
}

func ripActive(c *config.Router, l *network.Link, n *network.Node) bool {
	if c.RIP == nil {
		return false
	}
	iface := c.Iface(l.IfaceOf(n))
	if iface == nil || iface.Shutdown {
		return false
	}
	for _, net := range c.RIP.Networks {
		if net.Covers(iface.Prefix) || net == iface.Prefix {
			return true
		}
	}
	return false
}

// SessionsOf returns the sessions in which the router participates.
func (g *Graph) SessionsOf(n *network.Node) []*BGPSession {
	var out []*BGPSession
	for _, s := range g.Sessions {
		if s.A == n || s.B == n {
			out = append(out, s)
		}
	}
	return out
}

// OSPFAdjsOf returns the OSPF adjacencies incident to the router.
func (g *Graph) OSPFAdjsOf(n *network.Node) []*OSPFAdj {
	var out []*OSPFAdj
	for _, a := range g.OSPFAdjs {
		if a.Link.A == n || a.Link.B == n {
			out = append(out, a)
		}
	}
	return out
}

// RIPAdjsOf returns the RIP adjacencies incident to the router.
func (g *Graph) RIPAdjsOf(n *network.Node) []*RIPAdj {
	var out []*RIPAdj
	for _, a := range g.RIPAdjs {
		if a.Link.A == n || a.Link.B == n {
			out = append(out, a)
		}
	}
	return out
}

// RemoteEnd returns the far-end router of an internal session.
func (s *BGPSession) RemoteEnd(n *network.Node) *network.Node {
	if s.A == n {
		return s.B
	}
	return s.A
}

// StanzaOf returns the neighbor stanza configured at node n for this
// session.
func (s *BGPSession) StanzaOf(n *network.Node) *config.BGPNeighbor {
	if s.A == n {
		return s.NbrAtA
	}
	return s.NbrAtB
}

// HasCustomLocalPref reports whether any route-map reachable from a BGP
// import on this graph sets local-preference: the trigger for adding BGP
// loop-prevention bits (the paper's loop-detection hoisting, §6.1, skips
// them otherwise).
func (g *Graph) HasCustomLocalPref() bool {
	for _, s := range g.Sessions {
		for _, pair := range []struct {
			n   *network.Node
			nbr *config.BGPNeighbor
		}{{s.A, s.NbrAtA}, {s.B, s.NbrAtB}} {
			if pair.n == nil || pair.nbr == nil {
				continue
			}
			c := g.Configs[pair.n.Name]
			for _, mapName := range []string{pair.nbr.InMap, pair.nbr.OutMap} {
				if mapName == "" {
					continue
				}
				if rm := c.RouteMaps[mapName]; rm != nil {
					for _, cl := range rm.Clauses {
						if cl.SetLocalPref != 0 {
							return true
						}
					}
				}
			}
		}
	}
	return false
}
