package protograph

import (
	"strings"
	"testing"

	"repro/internal/config"
)

func build(t *testing.T, texts ...string) *Graph {
	t.Helper()
	var list []*config.Router
	byName := map[string]*config.Router{}
	for _, x := range texts {
		r, err := config.Parse(x)
		if err != nil {
			t.Fatal(err)
		}
		list = append(list, r)
		byName[r.Name] = r
	}
	topo, err := config.BuildTopology(list)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(topo, byName)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const pgR1 = `
hostname R1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
 ip ospf cost 5
!
interface Loopback0
 ip address 192.168.0.1 255.255.255.255
!
interface Serial0
 ip address 10.9.1.1 255.255.255.252
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 192.168.0.1 0.0.0.0 area 0
!
router bgp 65001
 neighbor 10.9.1.2 remote-as 65100
 neighbor 10.9.1.2 description N1
 neighbor 192.168.0.2 remote-as 65001
!
`

const pgR2 = `
hostname R2
!
interface Eth0
 ip address 10.0.12.2 255.255.255.252
 ip ospf cost 7
!
interface Loopback0
 ip address 192.168.0.2 255.255.255.255
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 192.168.0.2 0.0.0.0 area 0
!
router bgp 65001
 neighbor 192.168.0.1 remote-as 65001
!
`

func TestDecomposition(t *testing.T) {
	g := build(t, pgR1, pgR2)

	// Instances: R1 has connected+ospf+bgp, R2 likewise.
	var names []string
	for _, i := range g.Instances {
		names = append(names, i.String())
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"R1/ospf", "R1/bgp", "R1/connected", "R2/ospf"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing instance %s in %v", want, names)
		}
	}

	// One OSPF adjacency with per-side costs.
	if len(g.OSPFAdjs) != 1 {
		t.Fatalf("ospf adjacencies: %d", len(g.OSPFAdjs))
	}
	adj := g.OSPFAdjs[0]
	costR1, costR2 := adj.CostA, adj.CostB
	if adj.Link.A.Name == "R2" {
		costR1, costR2 = costR2, costR1
	}
	if costR1 != 5 || costR2 != 7 {
		t.Fatalf("costs %d/%d, want 5/7", costR1, costR2)
	}

	// Two sessions: one external eBGP at R1, one multihop iBGP.
	if len(g.Sessions) != 2 {
		t.Fatalf("sessions: %d", len(g.Sessions))
	}
	var ext, ibgp *BGPSession
	for _, s := range g.Sessions {
		switch s.Kind {
		case EBGPExternal:
			ext = s
		case IBGP:
			ibgp = s
		}
	}
	if ext == nil || ext.Ext.Name != "N1" || ext.A.Name != "R1" {
		t.Fatalf("external session %+v", ext)
	}
	if ibgp == nil || ibgp.Link != nil {
		t.Fatalf("iBGP session should be multihop: %+v", ibgp)
	}
	if ibgp.RemoteEnd(ibgp.A) != ibgp.B || ibgp.StanzaOf(ibgp.A) != ibgp.NbrAtA {
		t.Fatal("session accessors broken")
	}
	if len(g.IBGPSpeakers) != 2 {
		t.Fatalf("iBGP speakers %v", g.IBGPSpeakers)
	}
	if g.HasCustomLocalPref() {
		t.Fatal("no local-pref maps configured")
	}
	// Per-node views.
	r1 := g.Topo.Node("R1")
	if len(g.SessionsOf(r1)) != 2 || len(g.OSPFAdjsOf(r1)) != 1 {
		t.Fatal("per-node views")
	}
}

func TestSessionErrors(t *testing.T) {
	// A neighbor statement with no reciprocal stanza must be rejected.
	oneWay := strings.Replace(pgR2, " neighbor 192.168.0.1 remote-as 65001\n", "", 1)
	r1 := config.MustParse(pgR1)
	r2 := config.MustParse(oneWay)
	topo, err := config.BuildTopology([]*config.Router{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(topo, map[string]*config.Router{"R1": r1, "R2": r2}); err == nil {
		t.Fatal("one-way session accepted")
	}

	// AS mismatch must be rejected.
	badAS := strings.Replace(pgR2, "remote-as 65001", "remote-as 65009", 1)
	r2b := config.MustParse(badAS)
	topo2, err := config.BuildTopology([]*config.Router{r1, r2b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(topo2, map[string]*config.Router{"R1": r1, "R2": r2b}); err == nil {
		t.Fatal("AS mismatch accepted")
	}
}

func TestRIPAdjacency(t *testing.T) {
	a := `
hostname A
!
interface Eth0
 ip address 10.0.1.1 255.255.255.252
!
router rip
 network 10.0.1.0/30
!
`
	b := strings.ReplaceAll(strings.Replace(a, "hostname A", "hostname B", 1), "10.0.1.1", "10.0.1.2")
	g := build(t, a, b)
	if len(g.RIPAdjs) != 1 {
		t.Fatalf("rip adjacencies %d", len(g.RIPAdjs))
	}
	if len(g.RIPAdjsOf(g.Topo.Node("A"))) != 1 {
		t.Fatal("per-node rip view")
	}
}

func TestCustomLocalPrefDetection(t *testing.T) {
	r1 := strings.Replace(pgR1, "neighbor 192.168.0.2 remote-as 65001",
		`neighbor 192.168.0.2 remote-as 65001
 neighbor 192.168.0.2 route-map LP in`, 1) + `
route-map LP permit 10
 set local-preference 200
!
`
	g := build(t, r1, pgR2)
	if !g.HasCustomLocalPref() {
		t.Fatal("custom local-pref not detected")
	}
}
