package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/simulator"
	"repro/internal/smt"
	"repro/internal/testnets"
)

// solveConcrete pins the environment and extracts the unique stable
// state (test wrapper over Model.SolveConcrete).
func solveConcrete(t *testing.T, m *Model, dst network.IP, env *simulator.Environment) smt.Assignment {
	t.Helper()
	asg, err := m.SolveConcrete(dst, env)
	if err != nil {
		t.Fatal(err)
	}
	return asg
}

// compareStates checks the decoded symbolic stable state against the
// simulator's (test wrapper over Model.DiffSimulator).
func compareStates(t *testing.T, m *Model, asg smt.Assignment, simres *simulator.Result, dst network.IP, env *simulator.Environment) {
	t.Helper()
	for _, d := range m.DiffSimulator(asg, simres, dst, env) {
		t.Error(d)
	}
	if t.Failed() {
		t.FailNow()
	}
}

// runDifferential compares encoder and simulator over a set of
// destinations and environments.
func runDifferential(t *testing.T, net *testnets.Net, opts Options, dsts []network.IP, envs []*simulator.Environment) {
	t.Helper()
	m, err := Encode(net.Graph, opts)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for _, dst := range dsts {
		for _, env := range envs {
			diffs, err := m.DiffAgainstSimulator(dst, env)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diffs {
				t.Error(d)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

func ip(s string) network.IP         { return network.MustParseIP(s) }
func pfx(s string) network.Prefix    { return network.MustParsePrefix(s) }
func newEnv() *simulator.Environment { return simulator.NewEnvironment() }
func allOpts() map[string]Options {
	return map[string]Options{
		"optimized": DefaultOptions(),
		"nohoist":   {Hoisting: false, Slicing: true},
		"noslice":   {Hoisting: true, Slicing: false},
		"naive":     {Hoisting: false, Slicing: false},
	}
}

func TestDifferentialOSPFChain(t *testing.T) {
	net := testnets.OSPFChain(4)
	dsts := []network.IP{testnets.StubIP(4), testnets.StubIP(1), ip("9.9.9.9")}
	envs := []*simulator.Environment{
		newEnv(),
		newEnv().Fail("R2", "R3"),
		newEnv().Fail("R1", "R2").Fail("R3", "R4"),
	}
	for name, opts := range allOpts() {
		t.Run(name, func(t *testing.T) {
			runDifferential(t, net, opts, dsts, envs)
		})
	}
}

func TestDifferentialRIPChain(t *testing.T) {
	net := testnets.RIPChain(4)
	dsts := []network.IP{testnets.StubIP(4), testnets.StubIP(2)}
	envs := []*simulator.Environment{newEnv(), newEnv().Fail("R1", "R2")}
	runDifferential(t, net, DefaultOptions(), dsts, envs)
}

func TestDifferentialEBGPTriangle(t *testing.T) {
	net := testnets.EBGPTriangle()
	dsts := []network.IP{testnets.StubIP(1), testnets.StubIP(2), testnets.StubIP(3)}
	envs := []*simulator.Environment{
		newEnv(),
		newEnv().Fail("R1", "R3"),
		newEnv().Fail("R1", "R2").Fail("R2", "R3"),
	}
	for name, opts := range allOpts() {
		t.Run(name, func(t *testing.T) {
			runDifferential(t, net, opts, dsts, envs)
		})
	}
}

func TestDifferentialFigure2(t *testing.T) {
	net := testnets.Figure2()
	ext := pfx("8.8.8.0/24")
	dsts := []network.IP{ip("8.8.8.8"), ip("10.3.3.1"), ip("10.1.1.1")}
	envs := []*simulator.Environment{
		newEnv(),
		newEnv().Announce("N1", simulator.Announcement{Prefix: ext, PathLen: 3}).
			Announce("N2", simulator.Announcement{Prefix: ext, PathLen: 3}).
			Announce("N3", simulator.Announcement{Prefix: ext, PathLen: 3}),
		newEnv().Announce("N2", simulator.Announcement{Prefix: ext, PathLen: 2}).
			Announce("N3", simulator.Announcement{Prefix: ext, PathLen: 1}),
		newEnv().Announce("N1", simulator.Announcement{Prefix: ext, PathLen: 3}).Fail("R1", "R2"),
	}
	runDifferential(t, net, DefaultOptions(), dsts, envs)
}

// TestFigure2RedistributionDispute covers a genuinely multi-stable
// configuration: with only N3 announcing a default route at local-pref
// 100, Figure 2's mutual BGP↔OSPF redistribution admits two stable states
// at R1 (the iBGP-supported OSPF state, or the OSPF-import-supported BGP
// state). The encoder's semantics is "any stable state" (§3), so the test
// accepts either, but requires the returned state to be one of the two and
// well-founded (no circular support).
func TestFigure2RedistributionDispute(t *testing.T) {
	net := testnets.Figure2()
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv().Announce("N3", simulator.Announcement{Prefix: pfx("0.0.0.0/0"), PathLen: 5})
	asg := solveConcrete(t, m, ip("8.8.8.8"), env)
	best := DecodeRecord(m.Main.Best["R1"], asg)
	stateA := best.Valid && best.AD == 110 && best.Metric == 20 // OSPF, redistributed at R1
	stateB := best.Valid && best.AD == 20 && best.Metric == 0   // BGP, redistributed from the OSPF import
	if !stateA && !stateB {
		t.Fatalf("R1 in neither legitimate stable state: %+v", best)
	}
	// In either state the traffic must head toward R2 and exit via N3.
	if !smt.Eval(m.Main.CtrlFwd["R1"][Hop{Node: "R2"}], asg).Bool {
		t.Fatalf("R1 should forward to R2 (state %+v)", best)
	}
	if !smt.Eval(m.Main.CtrlFwd["R2"][Hop{Ext: "N3"}], asg).Bool {
		t.Fatal("R2 should exit via N3")
	}
}

func TestDifferentialFigure2Unoptimized(t *testing.T) {
	if testing.Short() {
		t.Skip("unoptimized encodings are slow")
	}
	net := testnets.Figure2()
	ext := pfx("8.8.8.0/24")
	dsts := []network.IP{ip("8.8.8.8")}
	envs := []*simulator.Environment{
		newEnv().Announce("N1", simulator.Announcement{Prefix: ext, PathLen: 3}).
			Announce("N3", simulator.Announcement{Prefix: ext, PathLen: 1}),
	}
	for name, opts := range allOpts() {
		t.Run(name, func(t *testing.T) {
			runDifferential(t, net, opts, dsts, envs)
		})
	}
}

func TestDifferentialACLSquare(t *testing.T) {
	net := testnets.ACLSquare()
	dsts := []network.IP{ip("10.50.0.1"), ip("10.0.25.2")}
	envs := []*simulator.Environment{newEnv(), newEnv().Fail("R1", "R2")}
	runDifferential(t, net, DefaultOptions(), dsts, envs)
}

func TestDifferentialStaticNull(t *testing.T) {
	net := testnets.StaticNull()
	dsts := []network.IP{ip("10.100.2.1"), ip("172.16.9.9"), ip("1.1.1.1")}
	envs := []*simulator.Environment{newEnv(), newEnv().Fail("R1", "R2")}
	runDifferential(t, net, DefaultOptions(), dsts, envs)
}

func TestDifferentialHijack(t *testing.T) {
	mgmt := ip("192.168.50.1")
	hijack := simulator.Announcement{Prefix: pfx("192.168.50.1/32"), PathLen: 1}
	for _, filtered := range []bool{false, true} {
		net := testnets.Hijackable(filtered)
		envs := []*simulator.Environment{
			newEnv(),
			newEnv().Announce("N", hijack),
			newEnv().Announce("N", simulator.Announcement{Prefix: pfx("192.168.0.0/16"), PathLen: 2}),
		}
		runDifferential(t, net, DefaultOptions(), []network.IP{mgmt}, envs)
	}
}

// TestDataFwdRespectsACL pins the ACLSquare network and checks the
// control/data plane divergence appears in the model exactly where the
// ACL sits.
func TestDataFwdRespectsACL(t *testing.T) {
	net := testnets.ACLSquare()
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	asg := solveConcrete(t, m, ip("10.50.0.1"), newEnv())
	ctrl := m.Main.CtrlFwd["R3"][Hop{Node: "R5"}]
	data := m.Main.DataFwd["R3"][Hop{Node: "R5"}]
	if !smt.Eval(ctrl, asg).Bool {
		t.Fatal("R3 should forward to R5 in the control plane")
	}
	if smt.Eval(data, asg).Bool {
		t.Fatal("ACL should block R3->R5 in the data plane")
	}
	// The R2 path is clean.
	if !smt.Eval(m.Main.DataFwd["R2"][Hop{Node: "R5"}], asg).Bool {
		t.Fatal("R2->R5 should pass")
	}
}

// TestComparatorAgainstSimulator cross-checks the symbolic preference
// circuits against the simulator's concrete comparators on enumerated
// records.
func TestComparatorAgainstSimulator(t *testing.T) {
	c := smt.NewContext()
	mk := func(tag string) (*Record, func(r simulator.Record) smt.Assignment) {
		rec := &Record{
			Valid:      c.True(),
			PrefixLen:  c.BVVar(tag+".plen", WidthPrefixLen),
			AD:         c.BVVar(tag+".ad", WidthAD),
			LocalPref:  c.BVVar(tag+".lp", WidthLP),
			Metric:     c.BVVar(tag+".metric", WidthMetric),
			MED:        c.BVVar(tag+".med", WidthMED),
			NbrASN:     c.BVVar(tag+".asn", WidthASN),
			RID:        c.BVVar(tag+".rid", WidthRID),
			Internal:   c.BoolVar(tag + ".int"),
			FromClient: c.False(),
			Comms:      map[string]*smt.Term{},
		}
		asgOf := func(r simulator.Record) smt.Assignment {
			return smt.Assignment{
				tag + ".plen":   {BV: uint64(r.PrefixLen)},
				tag + ".ad":     {BV: uint64(r.AD)},
				tag + ".lp":     {BV: uint64(r.LocalPref)},
				tag + ".metric": {BV: uint64(r.Metric)},
				tag + ".med":    {BV: uint64(r.MED)},
				tag + ".asn":    {BV: uint64(r.NbrASN)},
				tag + ".rid":    {BV: uint64(r.RID)},
				tag + ".int":    {Bool: r.Internal},
			}
		}
		return rec, asgOf
	}
	ra, asgA := mk("a")
	rb, asgB := mk("b")
	intraT := betterIntra(c, ra, rb, cmpMode{})
	overallT := betterOverall(c, ra, rb, cmpMode{})
	eqT := equallyGood(c, ra, rb, cmpMode{})

	recs := []simulator.Record{}
	for _, plen := range []int{16, 24} {
		for _, ad := range []int{20, 110, 200} {
			for _, lp := range []int{100, 120} {
				for _, metric := range []int{1, 3} {
					for _, internal := range []bool{false, true} {
						for _, rid := range []uint32{1, 9} {
							recs = append(recs, simulator.Record{
								Valid: true, PrefixLen: plen, AD: ad, LocalPref: lp,
								Metric: metric, Internal: internal, RID: rid,
								MED: int(rid) % 2, NbrASN: uint32(1 + int(rid)%2),
							})
						}
					}
				}
			}
		}
	}
	for _, a := range recs {
		for _, b := range recs {
			asg := smt.Assignment{}
			for k, v := range asgA(a) {
				asg[k] = v
			}
			for k, v := range asgB(b) {
				asg[k] = v
			}
			if got, want := smt.Eval(intraT, asg).Bool, simulator.BetterIntra(a, b, simulator.CompareMode{}); got != want {
				t.Fatalf("betterIntra(%v, %v) = %v, want %v", a, b, got, want)
			}
			if got, want := smt.Eval(overallT, asg).Bool, simulator.Better(a, b, simulator.CompareMode{}); got != want {
				t.Fatalf("betterOverall(%v, %v) = %v, want %v", a, b, got, want)
			}
			if got, want := smt.Eval(eqT, asg).Bool, simulator.EquallyGood(a, b, simulator.CompareMode{}); got != want {
				t.Fatalf("equallyGood(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestPassesNoneMatchesAll is the pass-pipeline soundness check of the
// compile-once refactor: for every testnet, a suite of properties must
// get the same verdict with every optimization pass disabled and with
// the full pipeline enabled.
func TestPassesNoneMatchesAll(t *testing.T) {
	nets := map[string]*testnets.Net{
		"ospf-chain":  testnets.OSPFChain(4),
		"rip-chain":   testnets.RIPChain(4),
		"ebgp-tri":    testnets.EBGPTriangle(),
		"figure2":     testnets.Figure2(),
		"acl-square":  testnets.ACLSquare(),
		"static-null": testnets.StaticNull(),
		"hijackable":  testnets.Hijackable(false),
	}
	type propCase struct {
		name  string
		build func(m *Model) (*smt.Term, []*smt.Term)
	}
	dst := testnets.StubIP(1)
	pin := func(m *Model) *smt.Term {
		return m.Ctx.Eq(m.DstIP, m.Ctx.BV(uint64(dst), WidthIP))
	}
	cases := []propCase{
		{"reach-first", func(m *Model) (*smt.Term, []*smt.Term) {
			r := m.G.Topo.Nodes[0].Name
			return m.Reach(m.Main, true)[r], []*smt.Term{m.NoFailures(), pin(m)}
		}},
		{"reach-last", func(m *Model) (*smt.Term, []*smt.Term) {
			r := m.G.Topo.Nodes[len(m.G.Topo.Nodes)-1].Name
			return m.Reach(m.Main, true)[r], []*smt.Term{m.NoFailures(), pin(m)}
		}},
		{"reach-last-1fail", func(m *Model) (*smt.Term, []*smt.Term) {
			r := m.G.Topo.Nodes[len(m.G.Topo.Nodes)-1].Name
			return m.Reach(m.Main, true)[r], []*smt.Term{m.AtMostFailures(1), pin(m)}
		}},
		{"bounded-length", func(m *Model) (*smt.Term, []*smt.Term) {
			// Exercises an asserts-appending builder after Compile.
			r := m.G.Topo.Nodes[0].Name
			lens, w := m.PathLengths(m.Main)
			return m.Ctx.Ule(lens[r], m.Ctx.BV(uint64(len(m.G.Topo.Nodes)), w)),
				[]*smt.Term{m.NoFailures(), pin(m)}
		}},
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			for _, pc := range cases {
				verdicts := map[string]bool{}
				for _, passes := range []string{"none", "all"} {
					m, err := Encode(net.Graph, Options{Passes: passes})
					if err != nil {
						t.Fatalf("%s/%s: encode: %v", pc.name, passes, err)
					}
					p, assumptions := pc.build(m)
					res, err := m.Check(p, assumptions...)
					if err != nil {
						t.Fatalf("%s/%s: check: %v", pc.name, passes, err)
					}
					verdicts[passes] = res.Verified
				}
				if verdicts["none"] != verdicts["all"] {
					t.Errorf("%s: verdict differs: none=%v all=%v",
						pc.name, verdicts["none"], verdicts["all"])
				}
			}
		})
	}
}

func TestEncodeStats(t *testing.T) {
	net := testnets.Figure2()
	opt, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Encode(net.Graph, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumRecordVars >= naive.NumRecordVars {
		t.Fatalf("slicing should reduce record variables: %d vs %d", opt.NumRecordVars, naive.NumRecordVars)
	}
	if len(opt.Asserts) == 0 {
		t.Fatal("no constraints generated")
	}
	_ = config.Protocol(0)
}
