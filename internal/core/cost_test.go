package core

import (
	"testing"

	"repro/internal/obs/cost"
	"repro/internal/smt"
	"repro/internal/testnets"
)

// checkLedgerMatchesStats asserts the acceptance invariant for a
// sequential check: the ledger's work total equals the Result's solver
// stats exactly, counter for counter.
func checkLedgerMatchesStats(t *testing.T, res *Result) {
	t.Helper()
	if res.Cost == nil {
		t.Fatal("result has no cost ledger")
	}
	total := res.Cost.Total()
	want := cost.FromStats(res.Stats)
	if total.Decisions != want.Decisions || total.Propagations != want.Propagations ||
		total.Conflicts != want.Conflicts || total.Learned != want.Learned ||
		total.Restarts != want.Restarts {
		t.Fatalf("ledger total %+v != solver stats %+v", total, want)
	}
}

// TestCheckCostLedger runs a verified and a violated property through
// Model.Check and validates the ledger's structure: phase children in
// execution order, work totals equal to sat.Stats, clause-DB bytes
// summing to the final database footprint, and proof bytes on the
// certify node for certified UNSATs.
func TestCheckCostLedger(t *testing.T) {
	net := testnets.OSPFChain(3)
	m, err := Encode(net.Graph, certifyOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := m.Ctx
	dst := testnets.StubIP(3)
	prop := m.Reach(m.Main, true)["R1"]
	pin := c.Eq(m.DstIP, c.BV(uint64(dst), WidthIP))
	res, err := m.Check(prop, m.NoFailures(), pin)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("expected verified")
	}
	checkLedgerMatchesStats(t, res)
	for _, phase := range []string{"blast", "simplify", "solve", "certify"} {
		if res.Cost.Find(phase) == nil {
			t.Fatalf("ledger missing %q phase:\n%+v", phase, res.Cost)
		}
	}
	if pb := res.Cost.Find("certify").Total().ProofBytes; pb <= 0 {
		t.Fatalf("certify node has no proof bytes (%d)", pb)
	}
	if db := res.Cost.Find("blast").Total().ClauseDBBytes; db <= 0 {
		t.Fatalf("blast node has no clause-db bytes (%d)", db)
	}
	if res.Cost.TotalWall() <= 0 {
		t.Fatal("ledger recorded no wall time")
	}

	// SAT verdict: decode phase appears, stats still match.
	res, err = m.Check(c.False())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Fatal("False verified")
	}
	checkLedgerMatchesStats(t, res)
	if res.Cost.Find("decode") == nil {
		t.Fatal("SAT ledger missing decode phase")
	}
}

// TestSessionCostLedger checks the incremental path: the session carries
// a one-time setup ledger, and each check's ledger prices only that
// check (so two checks' ledgers are independent and both nonzero).
func TestSessionCostLedger(t *testing.T) {
	net := testnets.OSPFChain(3)
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession()
	setup := s.SetupCost()
	if setup == nil {
		t.Fatal("no setup cost ledger")
	}
	if setup.Find("blast") == nil || setup.Find("simplify") == nil {
		t.Fatalf("setup ledger missing phases: %+v", setup)
	}
	if setup.Total().ClauseDBBytes <= 0 {
		t.Fatal("setup ledger has no clause-db bytes")
	}

	c := m.Ctx
	var props []*smt.Term
	props = append(props, c.True(), c.False())
	for _, p := range props {
		res, err := s.Check(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost == nil {
			t.Fatal("session check has no cost ledger")
		}
		if res.Cost.Find("solve") == nil {
			t.Fatal("session ledger missing solve phase")
		}
	}
}

// TestParallelCostLedger checks the racing path: the solve node carries
// one child per racer, the ledger prices the work spent (>= the adopted
// stats), and the winner's row is marked adopted.
func TestParallelCostLedger(t *testing.T) {
	net := testnets.OSPFChain(3)
	o := DefaultOptions()
	o.Parallel = "portfolio"
	o.ParallelWorkers = 3
	m, err := Encode(net.Graph, o)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Ctx
	dst := testnets.StubIP(3)
	prop := m.Reach(m.Main, true)["R1"]
	pin := c.Eq(m.DstIP, c.BV(uint64(dst), WidthIP))
	res, err := m.Check(prop, m.NoFailures(), pin)
	if err != nil {
		t.Fatal(err)
	}
	solve := res.Cost.Find("solve")
	if solve == nil {
		t.Fatal("no solve node")
	}
	if len(solve.Children) != 3 {
		t.Fatalf("solve node has %d racer children, want 3", len(solve.Children))
	}
	adopted := 0
	for _, racer := range solve.Children {
		if racer.Meta["adopted"] == 1 {
			adopted++
		}
	}
	if adopted != 1 {
		t.Fatalf("%d adopted racers, want 1", adopted)
	}
	// Spent >= adopted: the ledger's solve units can only exceed the
	// adopted stats delta (the losers raced too).
	spent := solve.Total().Units()
	if spent < res.Stats.Decisions+res.Stats.Propagations+res.Stats.Conflicts-
		res.Cost.Find("blast").Total().Units()-res.Cost.Find("simplify").Total().Units() {
		t.Fatalf("solve spent %d units < adopted delta", spent)
	}
}
