package core

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/sat"
	"repro/internal/smt"
)

// Options control the encoder's optimizations (§6). Both default to on;
// the §8.3 ablation benchmarks toggle them off.
type Options struct {
	// Passes selects the optimization pipeline by name: a comma-separated
	// subset of PassNames ("hoist,slice,fold,cse,propagate,coi"), or
	// "all" / "none". The empty string is the compatible default: the
	// deprecated Hoisting/Slicing booleans choose the encoding passes and
	// every term-level pass stays enabled.
	Passes string

	// Hoisting enables prefix elimination (replacing per-record symbolic
	// prefixes with tests on the global destination IP) and loop-detection
	// hoisting (loop bits only for routers where policy loops are
	// possible).
	//
	// Deprecated: set Passes instead; Hoisting is only consulted when
	// Passes is empty.
	Hoisting bool
	// Slicing enables removal of never-used attribute variables, merging
	// of import/export records, and merging of per-protocol and overall
	// best records.
	//
	// Deprecated: set Passes instead; Slicing is only consulted when
	// Passes is empty.
	Slicing bool
	// KeepAllCommunities keeps a symbolic bit for every community in the
	// config universe even when it is never matched on; equivalence
	// properties need this.
	KeepAllCommunities bool

	// Certify records a DRAT proof trace while solving and validates it
	// with the in-process checker (internal/sat/drat) whenever a check
	// returns UNSAT, so every "verified" verdict carries a machine-checked
	// certificate (Result.Certificate). A rejected certificate turns the
	// check into an error — a soundness alarm, never a silent verdict.
	Certify bool

	// Blame reports which config stanzas a verdict depends on
	// (Result.Blame). For UNSAT it replays the DRAT proof (recording one
	// when Certify is off), extracts the unsatisfiable core and maps the
	// core's input clauses back to the encoder origins that emitted them;
	// for SAT it reports the origins of the constraints that fixed each
	// decoded forwarding decision.
	Blame bool

	// ProfileOrigins keeps per-origin solver work counters (conflicts,
	// propagations, learned clauses, LBD mass) and attaches the
	// aggregated hot-constraint profile to Result.OriginProfile.
	ProfileOrigins bool

	// Span, when non-nil, is the parent under which Encode emits its
	// instrumentation spans and Check its per-query spans (the model
	// inherits it as Model.Obs). A nil span disables tracing at zero
	// cost.
	Span *obs.Span

	// Tiers selects the verification tiers attempted by callers that
	// orchestrate the graph fast path (internal/tiered) in front of the
	// solver: "graph,sat" (default when empty), "graph", "sat" or
	// "none". The encoder itself ignores the field — the tier runs at
	// the property boundary, where goals are still structured — but it
	// lives here so every entry point (service, CLI, harness) threads
	// one configuration object.
	Tiers string

	// Parallel selects the parallel solve strategy (internal/psolve):
	// "off" (or empty, the default) keeps the sequential search,
	// "portfolio" races differently-configured solver clones,
	// "cubes" splits on environment/failure variables, and "auto" picks
	// per query. With a parallel strategy on, UNSAT certification also
	// replays the DRAT trace with the concurrent segment checker.
	Parallel string
	// ParallelWorkers bounds solver-level parallelism; <=0 means one
	// worker per CPU.
	ParallelWorkers int
	// Seed diversifies the portfolio configurations deterministically;
	// fixed seeds give reproducible parallel runs (and the determinism
	// pin: one worker with any seed must equal the sequential search).
	Seed int64
}

// DefaultOptions enables all optimizations.
func DefaultOptions() Options { return Options{Hoisting: true, Slicing: true} }

// Hop is a forwarding target: an internal neighbor or an external peer.
type Hop struct {
	Node string
	Ext  string
}

func (h Hop) String() string {
	if h.Ext != "" {
		return "ext:" + h.Ext
	}
	return h.Node
}

// Slice is the encoding of the network for one destination: the main slice
// uses the symbolic packet destination, address slices use fixed
// infrastructure addresses for iBGP next-hop resolution (§4).
type Slice struct {
	Name  string
	DstIP *smt.Term

	// Env holds the raw environment record per external peer: what the
	// neighbor announces, unconstrained unless a property restricts it.
	Env map[string]*Record
	// ExtImports holds the post-import-filter record per external peer.
	ExtImports map[string]*Record
	// ExtExports holds the record each border router exports to each
	// external peer (for leak and equivalence checks).
	ExtExports map[string]*Record

	// BestProto and Best are the per-protocol and overall selected
	// records per router.
	BestProto map[string]map[config.Protocol]*Record
	Best      map[string]*Record

	// CtrlFwd and DataFwd are the forwarding indicators of §3(5)/(7).
	CtrlFwd map[string]map[Hop]*smt.Term
	DataFwd map[string]map[Hop]*smt.Term
	// DeliveredLocal marks local delivery onto a connected subnet;
	// DroppedNull marks a null0 drop.
	DeliveredLocal map[string]*smt.Term
	DroppedNull    map[string]*smt.Term

	reachMemo map[bool]map[string]*smt.Term
}

// Model is the full symbolic network model N: assert everything in
// Asserts, add a negated property, and check satisfiability.
type Model struct {
	Ctx  *smt.Context
	G    *protograph.Graph
	Opts Options

	// Symbolic packet (Figure 3, data plane section).
	DstIP, SrcIP *smt.Term
	SrcPort      *smt.Term
	DstPort      *smt.Term
	IPProto      *smt.Term

	// Failed maps canonical link ids to failure bits (§5 fault
	// tolerance).
	Failed map[string]*smt.Term

	Main *Slice
	// Addr maps iBGP peering addresses to their network copies.
	Addr map[network.IP]*Slice
	// SessUp maps multihop iBGP sessions to their session-up bits.
	SessUp map[*protograph.BGPSession]*smt.Term

	// Asserts is the constraint system N. AssertOrigins runs parallel to
	// it: AssertOrigins[i] names the config stanza (or synthetic source)
	// that emitted Asserts[i]. Configs carry no line numbers, so the
	// granularity is the named stanza.
	Asserts       []*smt.Term
	AssertOrigins []provenance.Origin

	// Prov interns origins to the dense base ids carried by the pass
	// pipeline, the SAT solver and DRAT proof steps.
	Prov *provenance.Table

	// curOrigin is stamped onto every constraint assert() emits.
	curOrigin provenance.Origin

	mode       cmpMode
	commUni    []string
	commActive map[string]bool
	lpActive   bool
	medActive  bool
	ibgpActive bool
	rrActive   bool
	riskySet   map[string]bool
	risky      []string // sorted

	// NumRecordVars counts allocated symbolic record fields, a formula
	// size measure reported by the optimization benchmarks.
	NumRecordVars int

	// Obs is the parent span (inherited from Options.Span) under which
	// Check emits per-query instrumentation; nil disables tracing.
	Obs *obs.Span
	// ProgressEvery, when positive, makes every Check install OnProgress
	// as a SAT progress hook firing each ProgressEvery conflicts.
	ProgressEvery int64
	// OnProgress receives the periodic solver snapshots.
	OnProgress func(sat.Progress)
	// Schedule, when set, runs parallel-solve tasks on a shared worker
	// pool (the service hands its helper pool here so job- and
	// solver-level parallelism share cores). Nil uses fresh goroutines.
	Schedule func(tasks []func())
	// OnSolverEvent receives parallel-engine flight-recorder events
	// (psolve.EventPortfolio, psolve.EventCube).
	OnSolverEvent func(kind string, fields map[string]any)

	// encSpan is the live "encode" span while EncodeWithContext runs;
	// encodeSlice hangs its per-slice spans off it.
	encSpan *obs.Span

	// spec is Options.Passes resolved by analyze; hoisting/slicing cache
	// its encoding-time switches for the hot paths in slice.go.
	spec              passSpec
	hoisting, slicing bool

	// compiled caches the artifact of the last Compile; compiledLast is
	// the final assert it covered, so splice-and-restore callers (EquivPair)
	// invalidate the cache even when lengths match.
	compiled     *CompiledNetwork
	compiledLast *smt.Term
	compiles     int

	// prefix namespaces every variable, letting several network copies
	// share one context (full equivalence / fault-invariance, §5).
	prefix string
}

// assert appends a constraint to N, recording the current origin in
// lockstep so provenance survives every later rewrite.
func (m *Model) assert(t *smt.Term) {
	m.Asserts = append(m.Asserts, t)
	m.AssertOrigins = append(m.AssertOrigins, m.curOrigin)
}

// setOrigin switches the origin stamped onto subsequent asserts and
// returns the previous one, for save/restore around nested encoders
// (route maps refine their caller's origin).
func (m *Model) setOrigin(o provenance.Origin) provenance.Origin {
	prev := m.curOrigin
	m.curOrigin = o
	return prev
}

// Formula returns the conjunction of all model constraints.
func (m *Model) Formula() *smt.Term { return m.Ctx.And(m.Asserts...) }

// Encode translates the protocol graph into the symbolic model.
func Encode(g *protograph.Graph, opts Options) (*Model, error) {
	return EncodeWithContext(g, opts, smt.NewContext(), "")
}

// EncodeWithContext encodes into an existing context under a variable-name
// prefix, so several network copies can be combined in one formula (full
// equivalence and fault-invariance, §5).
func EncodeWithContext(g *protograph.Graph, opts Options, ctx *smt.Context, prefix string) (*Model, error) {
	m := &Model{
		Ctx:    ctx,
		G:      g,
		Opts:   opts,
		Failed: map[string]*smt.Term{},
		Addr:   map[network.IP]*Slice{},
		SessUp: map[*protograph.BGPSession]*smt.Term{},
		Prov:   provenance.NewTable(),
		Obs:    opts.Span,
		prefix: prefix,
	}
	sp := opts.Span.Start("encode")
	defer sp.End()
	m.encSpan = sp
	defer func() {
		sp.SetInt("terms", int64(ctx.NumTerms()))
		sp.SetInt("record_vars", int64(m.NumRecordVars))
		sp.SetInt("asserts", int64(len(m.Asserts)))
	}()

	asp := sp.Start("analyze")
	err := m.analyze()
	asp.End()
	if err != nil {
		return nil, err
	}
	c := m.Ctx

	// Symbolic packet.
	m.DstIP = c.BVVar(prefix+"pkt.dstIP", WidthIP)
	m.SrcIP = c.BVVar(prefix+"pkt.srcIP", WidthIP)
	m.SrcPort = c.BVVar(prefix+"pkt.srcPort", 16)
	m.DstPort = c.BVVar(prefix+"pkt.dstPort", 16)
	m.IPProto = c.BVVar(prefix+"pkt.proto", 8)

	// Link failure bits.
	for _, l := range g.Topo.Links {
		id := linkID(l.A.Name, l.B.Name)
		m.Failed[id] = c.BoolVar(prefix + "failed|" + id)
	}
	for _, e := range g.Topo.Externals {
		id := extLinkID(e.Router.Name, e.Name)
		m.Failed[id] = c.BoolVar(prefix + "failed|" + id)
	}

	// Multihop iBGP sessions: session-up bits and address slices.
	var multihop []*protograph.BGPSession
	addrSet := map[network.IP]bool{}
	for _, s := range g.Sessions {
		if s.Kind == protograph.IBGP && s.Link == nil {
			multihop = append(multihop, s)
			addrSet[s.NbrAtA.Addr] = true
			addrSet[s.NbrAtB.Addr] = true
			m.SessUp[s] = c.BoolVar(fmt.Sprintf("%ssessUp|%s~%s", prefix, s.A.Name, s.B.Name))
		}
	}
	addrs := make([]network.IP, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		sl, err := m.encodeSlice(prefix+"addr_"+a.String(), c.BV(uint64(a), WidthIP), true)
		if err != nil {
			return nil, err
		}
		m.Addr[a] = sl
	}
	// Gate each multihop session on mutual reachability of the peering
	// addresses in the corresponding copies.
	for _, s := range multihop {
		m.setOrigin(provenance.Origin{Proto: "bgp", Kind: "session", Name: s.A.Name + "~" + s.B.Name})
		reachAB := m.Reach(m.Addr[s.NbrAtA.Addr], false)[s.A.Name]
		reachBA := m.Reach(m.Addr[s.NbrAtB.Addr], false)[s.B.Name]
		m.assert(c.Iff(m.SessUp[s], c.And(reachAB, reachBA)))
	}
	m.setOrigin(provenance.Origin{})

	main, err := m.encodeSlice(prefix+"main", m.DstIP, false)
	if err != nil {
		return nil, err
	}
	m.Main = main
	return m, nil
}

// analyze computes the attribute-activity flags and the community universe
// (the field-slicing analysis of §6.2) and the loop-risk router set (the
// loop-detection hoisting of §6.1).
func (m *Model) analyze() error {
	spec, err := resolvePasses(m.Opts)
	if err != nil {
		return err
	}
	m.spec = spec
	m.hoisting, m.slicing = spec.hoist, spec.slice
	g := m.G
	commSet := map[string]bool{}
	m.commActive = map[string]bool{}
	m.riskySet = map[string]bool{}
	for _, c := range g.Configs {
		if c.BGP != nil && c.BGP.AlwaysCompareMED {
			m.mode.alwaysCompareMED = true
			m.medActive = true
		}
		for _, cl := range c.CommunityLists {
			for _, v := range cl.Values {
				commSet[v] = true
			}
		}
		for _, rm := range c.RouteMaps {
			for _, cl := range rm.Clauses {
				for _, v := range cl.SetCommunity {
					commSet[v] = true
				}
				if cl.SetLocalPref != 0 {
					m.lpActive = true
				}
				if cl.HasSetMED {
					m.medActive = true
				}
				if cl.MatchCommunity != "" {
					if l := c.CommunityLists[cl.MatchCommunity]; l != nil {
						for _, v := range l.Values {
							m.commActive[v] = true
						}
					}
				}
			}
		}
		// Redistribution of dynamic protocols can create policy loops.
		for _, set := range [][]config.Redistribution{redistsOf(c.OSPF), ripRedists(c.RIP), bgpRedists(c.BGP)} {
			for _, rd := range set {
				if rd.From == config.OSPF || rd.From == config.RIP || rd.From == config.BGP {
					m.riskySet[c.Name] = true
				}
			}
		}
	}
	for _, s := range g.Sessions {
		if s.Kind == protograph.IBGP {
			m.ibgpActive = true
		}
		for _, pair := range []struct {
			n   *network.Node
			nbr *config.BGPNeighbor
		}{{s.A, s.NbrAtA}, {s.B, s.NbrAtB}} {
			if pair.nbr == nil {
				continue
			}
			if pair.nbr.RouteReflectorClient {
				m.rrActive = true
				// Route reflection can re-export iBGP routes, so
				// reflector meshes need loop bits (the paper handles
				// these "similarly to BGP", §4/§6.1).
				m.riskySet[pair.n.Name] = true
			}
		}
	}
	// Custom local preference on internal sessions defeats the
	// shortest-path loop argument (§6.1): mark such routers risky.
	if g.HasCustomLocalPref() {
		for _, s := range g.Sessions {
			if s.Kind == protograph.EBGPExternal {
				continue
			}
			for _, pair := range []struct {
				n   *network.Node
				nbr *config.BGPNeighbor
			}{{s.A, s.NbrAtA}, {s.B, s.NbrAtB}} {
				c := g.Configs[pair.n.Name]
				for _, mn := range []string{pair.nbr.InMap, pair.nbr.OutMap} {
					if mn == "" {
						continue
					}
					if rm := c.RouteMaps[mn]; rm != nil {
						for _, cl := range rm.Clauses {
							if cl.SetLocalPref != 0 {
								m.riskySet[pair.n.Name] = true
							}
						}
					}
				}
			}
		}
	}
	// MED comparison is possible when one router hears two sessions from
	// the same neighbor AS.
	for _, n := range g.Topo.Nodes {
		asns := map[uint32]int{}
		for _, s := range g.SessionsOf(n) {
			switch {
			case s.Kind == protograph.EBGPExternal:
				asns[s.Ext.ASN]++
			case s.Kind == protograph.EBGP:
				asns[g.Configs[s.RemoteEnd(n).Name].BGP.ASN]++
			}
		}
		for _, cnt := range asns {
			if cnt > 1 {
				m.medActive = true
			}
		}
	}

	if !m.slicing {
		// Slicing off: every attribute stays symbolic.
		m.lpActive, m.medActive = true, true
		m.ibgpActive = m.ibgpActive || len(g.Sessions) > 0
		m.rrActive = m.rrActive || m.ibgpActive
		for v := range commSet {
			m.commActive[v] = true
		}
	}
	if !m.hoisting {
		// Loop-detection hoisting off: loop bits for every BGP router.
		for _, n := range g.Topo.Nodes {
			if g.Configs[n.Name].BGP != nil {
				m.riskySet[n.Name] = true
			}
		}
	}
	if m.Opts.KeepAllCommunities {
		for v := range commSet {
			m.commActive[v] = true
		}
	}
	m.commUni = make([]string, 0, len(commSet))
	for v := range commSet {
		m.commUni = append(m.commUni, v)
	}
	sort.Strings(m.commUni)
	m.risky = m.risky[:0]
	for r := range m.riskySet {
		m.risky = append(m.risky, r)
	}
	sort.Strings(m.risky)
	return nil
}

func redistsOf(o *config.OSPFConfig) []config.Redistribution {
	if o == nil {
		return nil
	}
	return o.Redistribute
}

func ripRedists(r *config.RIPConfig) []config.Redistribution {
	if r == nil {
		return nil
	}
	return r.Redistribute
}

func bgpRedists(b *config.BGPConfig) []config.Redistribution {
	if b == nil {
		return nil
	}
	return b.Redistribute
}

// activeComms returns the communities kept symbolic on records.
func (m *Model) activeComms() []string {
	var out []string
	for _, v := range m.commUni {
		if m.commActive[v] {
			out = append(out, v)
		}
	}
	return out
}

// inv returns the canonical invalid record with neutral constant fields.
func (m *Model) inv() *Record {
	c := m.Ctx
	r := invalidRecord(c, nil, nil)
	r.LocalPref = c.BV(100, WidthLP)
	r.Comms = map[string]*smt.Term{}
	for _, cm := range m.activeComms() {
		r.Comms[cm] = c.False()
	}
	for _, rt := range m.risky {
		if r.Through == nil {
			r.Through = map[string]*smt.Term{}
		}
		r.Through[rt] = c.False()
	}
	if !m.hoisting {
		r.Prefix = c.BV(0, WidthIP)
	}
	return r
}

// recVar allocates a symbolic record: variable fields where the activity
// analysis demands, neutral constants elsewhere. isBGP widens the
// BGP-specific fields; adConst is the administrative distance used when
// the field can stay constant.
func (m *Model) recVar(name string, isBGP bool, adConst uint64) *Record {
	c := m.Ctx
	r := m.inv()
	bv := func(suffix string, w int) *smt.Term {
		m.NumRecordVars++
		return c.BVVar(name+"."+suffix, w)
	}
	bl := func(suffix string) *smt.Term {
		m.NumRecordVars++
		return c.BoolVar(name + "." + suffix)
	}
	r.Valid = bl("valid")
	r.PrefixLen = bv("plen", WidthPrefixLen)
	r.Metric = bv("metric", WidthMetric)
	r.RID = bv("rid", WidthRID)
	if !m.slicing || (isBGP && m.ibgpActive) {
		r.AD = bv("ad", WidthAD)
	} else {
		r.AD = c.BV(adConst, WidthAD)
	}
	if m.lpActive {
		r.LocalPref = bv("lp", WidthLP)
	}
	if m.medActive {
		r.MED = bv("med", WidthMED)
		r.NbrASN = bv("asn", WidthASN)
	}
	if isBGP && m.ibgpActive {
		r.Internal = bl("ibgp")
	}
	if isBGP && m.rrActive {
		r.FromClient = bl("fromClient")
	}
	for _, cm := range m.activeComms() {
		r.Comms[cm] = bl("comm." + cm)
	}
	for _, rt := range m.risky {
		r.Through[rt] = bl("through." + rt)
	}
	if !m.hoisting {
		r.Prefix = bv("prefix", WidthIP)
	}
	return r
}

// assertRecEq constrains each variable field of v to equal the
// corresponding field of t.
func (m *Model) assertRecEq(v, t *Record) {
	c := m.Ctx
	eqIfVar := func(a, b *smt.Term) {
		if a != nil && a.Op() == smt.OpBoolVar || a != nil && a.Op() == smt.OpBVVar {
			m.assert(c.Eq(a, b))
		}
	}
	eqIfVar(v.Valid, t.Valid)
	eqIfVar(v.PrefixLen, t.PrefixLen)
	eqIfVar(v.AD, t.AD)
	eqIfVar(v.LocalPref, t.LocalPref)
	eqIfVar(v.Metric, t.Metric)
	eqIfVar(v.MED, t.MED)
	eqIfVar(v.NbrASN, t.NbrASN)
	eqIfVar(v.RID, t.RID)
	eqIfVar(v.Internal, t.Internal)
	eqIfVar(v.FromClient, t.FromClient)
	// Deterministic order: asserts feed the content-addressed compile
	// hash, so map iteration must not leak into the assert list.
	for _, k := range sortedCommKeys(v.Comms) {
		eqIfVar(v.Comms[k], t.Comms[k])
	}
	for _, k := range sortedCommKeys(v.Through) {
		eqIfVar(v.Through[k], t.Through[k])
	}
	if v.Prefix != nil && t.Prefix != nil {
		eqIfVar(v.Prefix, t.Prefix)
	}
}

// wrapVar interposes a variable record equated to t — the behaviour of the
// naive (unsliced) encoding, which materializes every import/export record
// as fresh variables.
func (m *Model) wrapVar(name string, t *Record, isBGP bool) *Record {
	if m.slicing {
		return t
	}
	v := m.recVar(name, isBGP, 0)
	m.assertRecEq(v, t)
	return v
}

// linkID mirrors simulator.LinkID.
func linkID(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "~" + b
}

// extLinkID mirrors simulator.ExtLinkID.
func extLinkID(router, ext string) string { return router + "~ext~" + ext }

// linkUp returns ¬failed for a link.
func (m *Model) linkUp(id string) *smt.Term { return m.Ctx.Not(m.Failed[id]) }

// inPrefix returns the constraint that ip lies within the constant prefix:
// after hoisting this is the range test of §6.1.
func (m *Model) inPrefix(ip *smt.Term, p network.Prefix) *smt.Term {
	return m.Ctx.InRange(ip, uint64(p.First()), uint64(p.Last()))
}

// fbmConst builds FBM(prefixTerm, constAddr, constLen): used only in the
// non-hoisted encoding.
func (m *Model) fbmConst(prefix *smt.Term, addr network.IP, l int) *smt.Term {
	c := m.Ctx
	maskC := c.BV(uint64(network.MaskOf(l)), WidthIP)
	return c.Eq(c.BVAnd(prefix, maskC), c.BV(uint64(addr.Mask(l)), WidthIP))
}

// fbmSym builds FBM(prefix, dstIP, len) with a symbolic length by
// expanding over the 33 possible lengths: the expensive constraint prefix
// hoisting eliminates (§6.1).
func (m *Model) fbmSym(prefix, dstIP, plen *smt.Term) *smt.Term {
	c := m.Ctx
	var cases []*smt.Term
	for l := 0; l <= 32; l++ {
		maskC := c.BV(uint64(network.MaskOf(l)), WidthIP)
		cases = append(cases, c.And(
			c.Eq(plen, c.BV(uint64(l), WidthPrefixLen)),
			c.Eq(c.BVAnd(prefix, maskC), c.BVAnd(dstIP, maskC)),
		))
	}
	return c.Or(cases...)
}

// AssertExtra appends an instrumentation constraint to the model (used by
// the properties package for load totals and similar definitional
// constraints). Such constraints belong to the property, not the config.
func (m *Model) AssertExtra(t *smt.Term) {
	prev := m.setOrigin(provenance.Origin{Kind: "property"})
	m.assert(t)
	m.setOrigin(prev)
}
