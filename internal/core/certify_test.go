package core

import (
	"errors"
	"testing"

	"repro/internal/smt"
	"repro/internal/testnets"
)

func certifyOptions() Options {
	o := DefaultOptions()
	o.Certify = true
	return o
}

// TestCertifyFreshCheck: with Options.Certify on, every UNSAT verdict of
// Model.Check carries a checked certificate; SAT verdicts carry none.
func TestCertifyFreshCheck(t *testing.T) {
	net := testnets.OSPFChain(3)
	m, err := Encode(net.Graph, certifyOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := m.Ctx

	res, err := m.Check(c.True()) // ¬True is unsatisfiable outright
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("trivially true property not verified")
	}
	if res.Certificate == nil || !res.Certificate.Checked {
		t.Fatalf("verified verdict without checked certificate: %+v", res.Certificate)
	}
	if res.Certificate.Steps == 0 || res.Certificate.Inputs == 0 {
		t.Fatalf("degenerate certificate: %+v", res.Certificate)
	}

	res, err = m.Check(c.False()) // any stable state violates False
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Fatal("False verified")
	}
	if res.Certificate != nil {
		t.Fatal("SAT verdict carries a certificate")
	}
}

// TestCertifyRealProperty runs a meaningful verified property through
// certification: reachability of the stub owner under no failures.
func TestCertifyRealProperty(t *testing.T) {
	net := testnets.OSPFChain(3)
	m, err := Encode(net.Graph, certifyOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := m.Ctx
	dst := testnets.StubIP(3)
	prop := m.Reach(m.Main, true)["R1"]
	pin := c.Eq(m.DstIP, c.BV(uint64(dst), WidthIP))
	res, err := m.Check(prop, m.NoFailures(), pin)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("R1 should reach R3's stub with no failures")
	}
	if res.Certificate == nil || res.Certificate.Lemmas < 0 {
		t.Fatalf("missing certificate: %+v", res.Certificate)
	}
}

// TestCertifySession: session UNSATs are certified under the activation
// literal, across several checks of the same session.
func TestCertifySession(t *testing.T) {
	net := testnets.OSPFChain(3)
	m, err := Encode(net.Graph, certifyOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := m.Ctx
	s := m.NewSession()
	dst := testnets.StubIP(3)
	pin := c.Eq(m.DstIP, c.BV(uint64(dst), WidthIP))
	prop := m.Reach(m.Main, true)["R1"]
	for i := 0; i < 3; i++ {
		res, err := s.Check(prop, m.NoFailures(), pin)
		if err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
		if !res.Verified {
			t.Fatalf("check %d: not verified", i)
		}
		if res.Certificate == nil || !res.Certificate.Checked {
			t.Fatalf("check %d: no certificate", i)
		}
	}
	// A falsified query in the same session: no certificate, no error.
	res, err := s.Check(c.False())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified || res.Certificate != nil {
		t.Fatalf("False query: verified=%v cert=%v", res.Verified, res.Certificate)
	}
}

// TestSessionInvalidated is the regression for the stale-session fix:
// replacing or truncating already-blasted asserts must turn later session
// checks into ErrSessionInvalidated, not silently stale verdicts.
// Restoring the original assert list heals the session.
func TestSessionInvalidated(t *testing.T) {
	net := testnets.OSPFChain(2)
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := m.Ctx
	s := m.NewSession()
	if _, err := s.Check(c.True()); err != nil {
		t.Fatalf("baseline check: %v", err)
	}

	// Splice: same length, different final assert — the EquivPair.Check
	// pattern applied to already-blasted entries.
	saved := m.Asserts
	spliced := append([]*smt.Term(nil), saved...)
	spliced[len(spliced)-1] = c.True()
	m.Asserts = spliced
	if _, err := s.Check(c.True()); !errors.Is(err, ErrSessionInvalidated) {
		t.Fatalf("spliced asserts: got err=%v, want ErrSessionInvalidated", err)
	}

	// Truncation below the blasted prefix.
	m.Asserts = saved[:len(saved)-1]
	if _, err := s.Check(c.True()); !errors.Is(err, ErrSessionInvalidated) {
		t.Fatalf("truncated asserts: got err=%v, want ErrSessionInvalidated", err)
	}

	// Restore: the blasted prefix is intact again, checks resume.
	m.Asserts = saved
	if _, err := s.Check(c.True()); err != nil {
		t.Fatalf("restored asserts: %v", err)
	}

	// Appending (the supported builder pattern) keeps working.
	m.Asserts = append(m.Asserts, c.True())
	if _, err := s.Check(c.True()); err != nil {
		t.Fatalf("appended asserts: %v", err)
	}
}
