package core

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/smt"
)

// candidate is one route offer at a router, with its forwarding
// resolution.
type candidate struct {
	rec *Record
	// Exactly one of the following applies.
	hop       *Hop            // forward to a neighbor / external peer
	local     bool            // deliver onto a connected subnet
	drop      bool            // null0 blackhole
	redist    bool            // follow the source protocol's forwarding
	redistSrc config.Protocol //   ... which is this one
	ibgpVia   network.IP      // resolve through this address's slice
	ibgpPeer  string          //   ... toward this iBGP peer
}

// pktFields is the packet header a slice's data plane sees.
type pktFields struct {
	src, dst, sport, dport, proto *smt.Term
}

// encodeSlice builds the full encoding for one destination.
func (m *Model) encodeSlice(name string, dstIP *smt.Term, isAddr bool) (*Slice, error) {
	sp := m.encSpan.Start("slice:" + name)
	defer sp.End()
	terms0, recs0 := m.Ctx.NumTerms(), m.NumRecordVars
	defer func() {
		sp.SetInt("terms", int64(m.Ctx.NumTerms()-terms0))
		sp.SetInt("record_vars", int64(m.NumRecordVars-recs0))
	}()
	c := m.Ctx
	g := m.G
	sl := &Slice{
		Name: name, DstIP: dstIP,
		Env:            map[string]*Record{},
		ExtImports:     map[string]*Record{},
		ExtExports:     map[string]*Record{},
		BestProto:      map[string]map[config.Protocol]*Record{},
		Best:           map[string]*Record{},
		CtrlFwd:        map[string]map[Hop]*smt.Term{},
		DataFwd:        map[string]map[Hop]*smt.Term{},
		DeliveredLocal: map[string]*smt.Term{},
		DroppedNull:    map[string]*smt.Term{},
	}

	// Environment records: one symbolic announcement per external peer.
	for _, e := range g.Topo.Externals {
		m.setOrigin(provenance.Origin{Router: e.Router.Name, Proto: "bgp", Kind: "env", Name: e.Name})
		sl.Env[e.Name] = m.envRecord(sl, e)
	}
	m.setOrigin(provenance.Origin{})

	// Pass A: allocate the selected-record variables that break the
	// cross-router cycles (one per dynamic protocol instance).
	for _, n := range g.Topo.Nodes {
		cfg := g.Configs[n.Name]
		sl.BestProto[n.Name] = map[config.Protocol]*Record{}
		for _, p := range cfg.Protocols() {
			switch p {
			case config.OSPF:
				sl.BestProto[n.Name][p] = m.recVar(name+"|"+n.Name+"|best.ospf", false, uint64(ospfAD(cfg)))
			case config.RIP:
				sl.BestProto[n.Name][p] = m.recVar(name+"|"+n.Name+"|best.rip", false, uint64(ripAD(cfg)))
			case config.BGP:
				sl.BestProto[n.Name][p] = m.recVar(name+"|"+n.Name+"|best.bgp", true, uint64(bgpAD(cfg, false)))
			}
		}
	}

	// Pass B: per-router candidates, selection constraints, forwarding.
	for _, n := range g.Topo.Nodes {
		if err := m.encodeRouter(sl, n, isAddr); err != nil {
			return nil, err
		}
	}

	// Exports to external neighbors.
	for _, s := range g.Sessions {
		if s.Kind != protograph.EBGPExternal {
			continue
		}
		exp := m.exportBGP(sl, s.A, s)
		exp = exp.gate(c, m.linkUp(extLinkID(s.A.Name, s.Ext.Name)))
		m.setOrigin(provenance.Origin{Router: s.A.Name, Proto: "bgp", Kind: "neighbor", Name: "ext." + s.Ext.Name})
		sl.ExtExports[s.Ext.Name] = m.wrapVar(name+"|extout|"+s.Ext.Name, exp, true)
	}
	m.setOrigin(provenance.Origin{})
	return sl, nil
}

// pkt returns the packet fields this slice's ACLs test: the main slice
// uses the fully symbolic packet; address slices model the BGP session
// traffic (TCP/179) toward the fixed address, matching the simulator.
func (m *Model) pkt(sl *Slice) pktFields {
	c := m.Ctx
	if sl.DstIP == m.DstIP {
		return pktFields{src: m.SrcIP, dst: m.DstIP, sport: m.SrcPort, dport: m.DstPort, proto: m.IPProto}
	}
	return pktFields{
		src: c.BV(0, WidthIP), dst: sl.DstIP,
		sport: c.BV(0, 16), dport: c.BV(179, 16), proto: c.BV(6, 8),
	}
}

// envRecord allocates the symbolic environment announcement of one
// external peer.
func (m *Model) envRecord(sl *Slice, e *network.External) *Record {
	c := m.Ctx
	r := m.recVar(sl.Name+"|env|"+e.Name, true, uint64(0))
	// The peer chooses whether and what to announce; well-formedness:
	// prefix length ≤ 32 and AS-path length ≤ 255.
	m.assert(c.Implies(r.Valid, c.Ule(r.PrefixLen, c.BV(32, WidthPrefixLen))))
	m.assert(c.Implies(r.Valid, c.Ule(r.Metric, c.BV(255, WidthMetric))))
	if !m.hoisting {
		// Naive encoding: the announced prefix is explicit and must
		// cover the destination (FBM over a symbolic length).
		m.assert(c.Implies(r.Valid, m.fbmSym(r.Prefix, sl.DstIP, r.PrefixLen)))
	}
	// Fields the environment does not control.
	r.AD = c.BV(uint64(bgpAD(m.G.Configs[e.Router.Name], false)), WidthAD)
	r.LocalPref = c.BV(100, WidthLP)
	r.Internal = c.False()
	r.FromClient = c.False()
	r.RID = c.BV(uint64(e.PeerAddr), WidthRID)
	if m.medActive {
		r.NbrASN = c.BV(uint64(e.ASN), WidthASN)
	}
	for _, rt := range m.risky {
		r.Through[rt] = c.False()
	}
	return r
}

// encodeRouter builds all candidates of one router, asserts the selection
// constraints, and derives the forwarding indicators.
func (m *Model) encodeRouter(sl *Slice, n *network.Node, isAddr bool) error {
	c := m.Ctx
	cfg := m.G.Configs[n.Name]
	cands := map[config.Protocol][]*candidate{}

	// Connected and static candidates (selected as term folds).
	cands[config.Connected] = m.connectedCands(sl, cfg)
	sl.BestProto[n.Name][config.Connected] = selectBest(c, recsOf(cands[config.Connected]),
		func(a, b *Record) *smt.Term { return betterIntra(c, a, b, m.mode) }, m.inv())
	if len(cfg.Statics) > 0 {
		cands[config.Static] = m.staticCands(sl, n, cfg)
		sl.BestProto[n.Name][config.Static] = selectBest(c, recsOf(cands[config.Static]),
			func(a, b *Record) *smt.Term { return betterIntra(c, a, b, m.mode) }, m.inv())
	}

	// Dynamic protocols: candidates against neighbors' selected-record
	// variables, then assert the fold.
	if cfg.OSPF != nil {
		cands[config.OSPF] = m.ospfCands(sl, n, cfg)
	}
	if cfg.RIP != nil {
		cands[config.RIP] = m.ripCands(sl, n, cfg)
	}
	if cfg.BGP != nil {
		var err error
		cands[config.BGP], err = m.bgpCands(sl, n, cfg, isAddr)
		if err != nil {
			return err
		}
	}
	for _, p := range []config.Protocol{config.OSPF, config.RIP, config.BGP} {
		v := sl.BestProto[n.Name][p]
		if v == nil {
			continue
		}
		m.setOrigin(provenance.Origin{Router: n.Name, Proto: p.String(), Kind: "selection"})
		fold := selectBest(c, recsOf(cands[p]),
			func(a, b *Record) *smt.Term { return betterIntra(c, a, b, m.mode) }, m.inv())
		m.assertRecEq(v, fold)
	}

	// Overall best across protocols (term fold; merged with the
	// per-protocol best by slicing, a separate variable otherwise).
	protos := cfg.Protocols()
	var protoBests []*Record
	for _, p := range protos {
		if bp := sl.BestProto[n.Name][p]; bp != nil {
			protoBests = append(protoBests, bp)
		}
	}
	m.setOrigin(provenance.Origin{Router: n.Name, Proto: "overall", Kind: "selection"})
	best := selectBest(c, protoBests,
		func(a, b *Record) *smt.Term { return betterOverall(c, a, b, m.mode) }, m.inv())
	best = m.wrapVar(sl.Name+"|"+n.Name+"|best.overall", best, true)
	sl.Best[n.Name] = best

	// Forwarding: which protocol won, and which candidate within it.
	protoWins := map[config.Protocol]*smt.Term{}
	for _, p := range protos {
		bp := sl.BestProto[n.Name][p]
		if bp == nil {
			continue
		}
		protoWins[p] = c.And(bp.Valid, best.Valid, sameChoice(c, bp, best, m.mode))
	}

	type fwdInfo struct {
		fwd         map[Hop]*smt.Term
		local, drop *smt.Term
		// any is the disjunction of all chosen-candidate indicators; the
		// redundant constraint bp.Valid → any mirrors the paper's
		// relational "best equals one alternative" clause and gives the
		// solver direct propagation instead of case splits on the fold.
		any *smt.Term
	}
	infoMemo := map[config.Protocol]*fwdInfo{}
	var within func(p config.Protocol, visiting map[config.Protocol]bool) *fwdInfo
	within = func(p config.Protocol, visiting map[config.Protocol]bool) *fwdInfo {
		if info, ok := infoMemo[p]; ok {
			return info
		}
		info := &fwdInfo{fwd: map[Hop]*smt.Term{}, local: c.False(), drop: c.False(), any: c.False()}
		bp := sl.BestProto[n.Name][p]
		if bp == nil {
			return info
		}
		multipath := false
		switch p {
		case config.OSPF:
			multipath = cfg.OSPF.MaxPaths > 1
		case config.BGP:
			multipath = cfg.BGP.MaxPaths > 1
		}
		vis := map[config.Protocol]bool{p: true}
		for k := range visiting {
			vis[k] = true
		}
		addFwd := func(h Hop, t *smt.Term) {
			if prev, ok := info.fwd[h]; ok {
				info.fwd[h] = c.Or(prev, t)
			} else {
				info.fwd[h] = t
			}
		}
		for _, cand := range cands[p] {
			var chosen *smt.Term
			if multipath {
				chosen = c.And(cand.rec.Valid, equallyGood(c, cand.rec, bp, m.mode))
			} else {
				chosen = c.And(cand.rec.Valid, sameChoice(c, cand.rec, bp, m.mode))
			}
			info.any = c.Or(info.any, chosen)
			switch {
			case cand.local:
				info.local = c.Or(info.local, chosen)
			case cand.drop:
				info.drop = c.Or(info.drop, chosen)
			case cand.ibgpVia != 0:
				addr := m.Addr[cand.ibgpVia]
				if addr == nil {
					// Should not happen: multihop sessions have slices.
					continue
				}
				// Sorted iteration: term construction order fixes the
				// hash-consing ids, and commutative canonicalization
				// orders by id — map order here would leak into the CNF
				// and make solver work counters nondeterministic.
				ctrlFwd := addr.CtrlFwd[n.Name]
				for _, h := range sortedHops(ctrlFwd) {
					addFwd(h, c.And(chosen, ctrlFwd[h]))
				}
			case cand.redist:
				if visiting[cand.redistSrc] {
					continue // mutual-redistribution cycle: stop here
				}
				src := within(cand.redistSrc, vis)
				for _, h := range sortedHops(src.fwd) {
					addFwd(h, c.And(chosen, src.fwd[h]))
				}
				info.local = c.Or(info.local, c.And(chosen, src.local))
				info.drop = c.Or(info.drop, c.And(chosen, src.drop))
			case cand.hop != nil:
				addFwd(*cand.hop, chosen)
			}
		}
		if len(visiting) == 0 {
			infoMemo[p] = info
		}
		return info
	}

	ctrl := map[Hop]*smt.Term{}
	delivered := c.False()
	dropped := c.False()
	anyWin := c.False()
	for _, p := range protos {
		w := protoWins[p]
		if w == nil {
			continue
		}
		anyWin = c.Or(anyWin, w)
		info := within(p, map[config.Protocol]bool{})
		m.setOrigin(provenance.Origin{Router: n.Name, Proto: p.String(), Kind: "selection"})
		m.assert(c.Implies(sl.BestProto[n.Name][p].Valid, info.any))
		for _, h := range sortedHops(info.fwd) {
			contrib := c.And(w, info.fwd[h])
			if prev, ok := ctrl[h]; ok {
				ctrl[h] = c.Or(prev, contrib)
			} else {
				ctrl[h] = contrib
			}
		}
		delivered = c.Or(delivered, c.And(w, info.local))
		dropped = c.Or(dropped, c.And(w, info.drop))
	}
	m.setOrigin(provenance.Origin{Router: n.Name, Proto: "overall", Kind: "selection"})
	m.assert(c.Implies(best.Valid, anyWin))
	m.setOrigin(provenance.Origin{})
	sl.CtrlFwd[n.Name] = ctrl
	sl.DeliveredLocal[n.Name] = delivered
	sl.DroppedNull[n.Name] = dropped

	// Data plane: control plane modulo ACLs (§3(7)).
	pkt := m.pkt(sl)
	data := map[Hop]*smt.Term{}
	for _, h := range sortedHops(ctrl) {
		t := ctrl[h]
		if h.Ext != "" {
			out := m.aclPermits(cfg, m.extIfaceOf(n, h.Ext), false, pkt)
			data[h] = c.And(t, out)
			continue
		}
		link := m.G.Topo.FindLink(n.Name, h.Node)
		var outIf, inIf string
		if link != nil {
			outIf = link.IfaceOf(n)
			inIf = link.IfaceOf(link.Peer(n))
		}
		out := m.aclPermits(cfg, outIf, false, pkt)
		in := m.aclPermits(m.G.Configs[h.Node], inIf, true, pkt)
		data[h] = c.And(t, out, in)
	}
	sl.DataFwd[n.Name] = data
	return nil
}

func recsOf(cands []*candidate) []*Record {
	out := make([]*Record, len(cands))
	for i, c := range cands {
		out[i] = c.rec
	}
	return out
}

// connectedCands builds one candidate per connected interface.
func (m *Model) connectedCands(sl *Slice, cfg *config.Router) []*candidate {
	c := m.Ctx
	var out []*candidate
	for _, i := range cfg.Interfaces {
		if i.Shutdown {
			continue
		}
		r := m.inv()
		r.Valid = m.inPrefix(sl.DstIP, i.Prefix)
		r.PrefixLen = c.BV(uint64(i.Prefix.Len), WidthPrefixLen)
		r.AD = c.BV(0, WidthAD)
		if !m.hoisting {
			r.Prefix = c.BV(uint64(i.Prefix.Addr), WidthIP)
		}
		out = append(out, &candidate{rec: r, local: true})
	}
	return out
}

// staticCands builds one candidate per static route covering the
// destination. Next hops are resolved against the topology; a route whose
// next hop has no resolution is simply absent, matching the simulator.
func (m *Model) staticCands(sl *Slice, n *network.Node, cfg *config.Router) []*candidate {
	c := m.Ctx
	var out []*candidate
	for _, st := range cfg.Statics {
		r := m.inv()
		r.PrefixLen = c.BV(uint64(st.Prefix.Len), WidthPrefixLen)
		r.AD = c.BV(uint64(staticAD(st)), WidthAD)
		if !m.hoisting {
			r.Prefix = c.BV(uint64(st.Prefix.Addr), WidthIP)
		}
		valid := m.inPrefix(sl.DstIP, st.Prefix)
		cand := &candidate{rec: r}
		if st.Drop {
			cand.drop = true
		} else {
			hop, linkid, ok := m.resolveStaticHop(n, st)
			if !ok {
				continue
			}
			valid = c.And(valid, m.linkUp(linkid))
			cand.hop = &hop
		}
		r.Valid = valid
		out = append(out, cand)
	}
	return out
}

// resolveStaticHop finds the forwarding target of a static route.
func (m *Model) resolveStaticHop(n *network.Node, st *config.StaticRoute) (Hop, string, bool) {
	for _, l := range m.G.Topo.LinksOf(n) {
		peer := l.Peer(n)
		if (st.Interface != "" && l.IfaceOf(n) == st.Interface) ||
			(st.NextHop != 0 && l.AddrOf(peer) == st.NextHop) {
			return Hop{Node: peer.Name}, linkID(l.A.Name, l.B.Name), true
		}
	}
	for _, e := range m.G.Topo.ExternalsOf(n) {
		if (st.Interface != "" && e.Iface == st.Interface) ||
			(st.NextHop != 0 && e.PeerAddr == st.NextHop) {
			return Hop{Ext: e.Name}, extLinkID(n.Name, e.Name), true
		}
	}
	return Hop{}, "", false
}

// ospfCands builds origination, redistribution and import candidates for
// an OSPF instance.
func (m *Model) ospfCands(sl *Slice, n *network.Node, cfg *config.Router) []*candidate {
	c := m.Ctx
	ad := ospfAD(cfg)
	var out []*candidate
	for _, i := range cfg.Interfaces {
		if i.Shutdown || !prefixActivated(cfg.OSPF.Networks, i.Prefix) {
			continue
		}
		r := m.inv()
		r.Valid = m.inPrefix(sl.DstIP, i.Prefix)
		r.PrefixLen = c.BV(uint64(i.Prefix.Len), WidthPrefixLen)
		r.AD = c.BV(uint64(ad), WidthAD)
		if !m.hoisting {
			r.Prefix = c.BV(uint64(i.Prefix.Addr), WidthIP)
		}
		out = append(out, &candidate{rec: r, local: true})
	}
	for _, rd := range cfg.OSPF.Redistribute {
		if cand := m.redistCand(sl, n, cfg, rd, ad, 20, false); cand != nil {
			out = append(out, cand)
		}
	}
	for _, adj := range m.G.OSPFAdjsOf(n) {
		peer := adj.Link.Peer(n)
		cost := adj.CostA
		if n == adj.Link.B {
			cost = adj.CostB
		}
		pb := sl.BestProto[peer.Name][config.OSPF]
		r := pb.clone()
		valid := c.And(pb.Valid,
			m.linkUp(linkID(adj.Link.A.Name, adj.Link.B.Name)),
			c.Ule(pb.Metric, c.BV(uint64(65535-cost), WidthMetric)))
		if m.riskySet[n.Name] {
			valid = c.And(valid, c.Not(pb.Through[n.Name]))
		}
		r.Valid = valid
		r.Metric = c.Add(pb.Metric, c.BV(uint64(cost), WidthMetric))
		r.AD = c.BV(uint64(ad), WidthAD)
		r.RID = c.BV(uint64(peer.Index)+1, WidthRID)
		if m.riskySet[peer.Name] {
			r.Through[peer.Name] = c.True()
		}
		out = append(out, &candidate{rec: r, hop: &Hop{Node: peer.Name}})
	}
	return out
}

// ripCands mirrors ospfCands with unit costs and RIP's count-to-16.
func (m *Model) ripCands(sl *Slice, n *network.Node, cfg *config.Router) []*candidate {
	c := m.Ctx
	ad := ripAD(cfg)
	var out []*candidate
	for _, i := range cfg.Interfaces {
		if i.Shutdown || !prefixActivated(cfg.RIP.Networks, i.Prefix) {
			continue
		}
		r := m.inv()
		r.Valid = m.inPrefix(sl.DstIP, i.Prefix)
		r.PrefixLen = c.BV(uint64(i.Prefix.Len), WidthPrefixLen)
		r.AD = c.BV(uint64(ad), WidthAD)
		if !m.hoisting {
			r.Prefix = c.BV(uint64(i.Prefix.Addr), WidthIP)
		}
		out = append(out, &candidate{rec: r, local: true})
	}
	for _, rd := range cfg.RIP.Redistribute {
		if cand := m.redistCand(sl, n, cfg, rd, ad, 1, false); cand != nil {
			out = append(out, cand)
		}
	}
	for _, adj := range m.G.RIPAdjsOf(n) {
		peer := adj.Link.Peer(n)
		pb := sl.BestProto[peer.Name][config.RIP]
		r := pb.clone()
		valid := c.And(pb.Valid,
			m.linkUp(linkID(adj.Link.A.Name, adj.Link.B.Name)),
			c.Ule(pb.Metric, c.BV(14, WidthMetric)))
		if m.riskySet[n.Name] {
			valid = c.And(valid, c.Not(pb.Through[n.Name]))
		}
		r.Valid = valid
		r.Metric = c.Add(pb.Metric, c.BV(1, WidthMetric))
		r.AD = c.BV(uint64(ad), WidthAD)
		r.RID = c.BV(uint64(peer.Index)+1, WidthRID)
		if m.riskySet[peer.Name] {
			r.Through[peer.Name] = c.True()
		}
		out = append(out, &candidate{rec: r, hop: &Hop{Node: peer.Name}})
	}
	return out
}

// bgpCands builds origination, redistribution, environment-import and
// session-import candidates for a BGP instance.
func (m *Model) bgpCands(sl *Slice, n *network.Node, cfg *config.Router, isAddr bool) ([]*candidate, error) {
	c := m.Ctx
	var out []*candidate
	for _, p := range cfg.BGP.Networks {
		if !ownsPrefix(cfg, p) {
			continue
		}
		r := m.inv()
		r.Valid = m.inPrefix(sl.DstIP, p)
		r.PrefixLen = c.BV(uint64(p.Len), WidthPrefixLen)
		r.AD = c.BV(uint64(bgpAD(cfg, false)), WidthAD)
		if !m.hoisting {
			r.Prefix = c.BV(uint64(p.Addr), WidthIP)
		}
		out = append(out, &candidate{rec: r, local: true})
	}
	for _, rd := range cfg.BGP.Redistribute {
		if cand := m.redistCand(sl, n, cfg, rd, bgpAD(cfg, false), 0, true); cand != nil {
			out = append(out, cand)
		}
	}
	for _, sess := range m.G.SessionsOf(n) {
		switch {
		case sess.Kind == protograph.EBGPExternal:
			if sess.A != n {
				continue
			}
			prev := m.setOrigin(provenance.Origin{Router: n.Name, Proto: "bgp", Kind: "neighbor", Name: "ext." + sess.Ext.Name})
			env := sl.Env[sess.Ext.Name]
			r := env.clone()
			r.Valid = c.And(env.Valid, m.linkUp(extLinkID(n.Name, sess.Ext.Name)))
			r.AD = c.BV(uint64(bgpAD(cfg, false)), WidthAD)
			r.LocalPref = c.BV(100, WidthLP)
			r.Internal = c.False()
			r.RID = c.BV(uint64(sess.Ext.PeerAddr), WidthRID)
			r.NbrASN = c.BV(uint64(sess.Ext.ASN), WidthASN)
			r.FromClient = c.Bool(sess.NbrAtA.RouteReflectorClient)
			if sess.NbrAtA.InMap != "" {
				r = m.applyRouteMap(sl, cfg, sess.NbrAtA.InMap, r)
			}
			r = m.wrapVar(sl.Name+"|"+n.Name+"|in.ext."+sess.Ext.Name, r, true)
			m.setOrigin(prev)
			sl.ExtImports[sess.Ext.Name] = r
			out = append(out, &candidate{rec: r, hop: &Hop{Ext: sess.Ext.Name}})

		default:
			peer := sess.RemoteEnd(n)
			isIBGP := sess.Kind == protograph.IBGP
			if isIBGP && sess.Link == nil && isAddr {
				continue // address slices resolve next hops IGP-only
			}
			exp := m.exportBGP(sl, peer, sess)
			var up *smt.Term
			switch {
			case sess.Link != nil:
				up = m.linkUp(linkID(sess.Link.A.Name, sess.Link.B.Name))
			case isIBGP:
				up = m.SessUp[sess]
			default:
				return nil, fmt.Errorf("core: eBGP session %s-%s rides no link", sess.A.Name, sess.B.Name)
			}
			stanza := sess.StanzaOf(n)
			peerCfg := m.G.Configs[peer.Name]
			prev := m.setOrigin(provenance.Origin{Router: n.Name, Proto: "bgp", Kind: "neighbor", Name: peer.Name})
			r := exp.clone()
			valid := c.And(exp.Valid, up)
			if m.riskySet[n.Name] {
				valid = c.And(valid, c.Not(exp.Through[n.Name]))
			}
			r.Valid = valid
			r.Internal = c.Bool(isIBGP)
			if !isIBGP {
				r.LocalPref = c.BV(100, WidthLP)
			}
			r.AD = c.BV(uint64(bgpAD(cfg, isIBGP)), WidthAD)
			r.RID = c.BV(uint64(routerIDOf(peerCfg, peer)), WidthRID)
			r.NbrASN = c.BV(uint64(peerCfg.BGP.ASN), WidthASN)
			r.FromClient = c.Bool(stanza.RouteReflectorClient)
			if stanza.InMap != "" {
				r = m.applyRouteMap(sl, cfg, stanza.InMap, r)
			}
			r = m.wrapVar(sl.Name+"|"+n.Name+"|in.bgp."+peer.Name, r, true)
			m.setOrigin(prev)
			cand := &candidate{rec: r, hop: &Hop{Node: peer.Name}}
			if isIBGP && sess.Link == nil {
				cand.hop = nil
				cand.ibgpVia = stanza.Addr
				cand.ibgpPeer = peer.Name
			}
			out = append(out, cand)
		}
	}
	return out, nil
}

// exportBGP is the sender-side transfer of a BGP session (Figure 5):
// iBGP re-export and route-reflector rules, AS-path increment, MED
// non-transitivity, outbound route map, and path-length cap.
func (m *Model) exportBGP(sl *Slice, sender *network.Node, sess *protograph.BGPSession) *Record {
	c := m.Ctx
	cfg := m.G.Configs[sender.Name]
	b := sl.BestProto[sender.Name][config.BGP]
	if b == nil {
		return m.inv()
	}
	prev := m.setOrigin(provenance.Origin{Router: sender.Name, Proto: "bgp", Kind: "neighbor", Name: sessionTag(sess, sender)})
	defer m.setOrigin(prev)
	stanza := sess.StanzaOf(sender)
	toIBGP := sess.Kind == protograph.IBGP
	allowed := c.True()
	if toIBGP {
		allowed = c.Or(c.Not(b.Internal), b.FromClient, c.Bool(stanza.RouteReflectorClient))
	}
	out := b.clone()
	out.Valid = c.And(b.Valid, allowed)
	if !toIBGP {
		out.Metric = c.Add(b.Metric, c.BV(1, WidthMetric))
		out.MED = c.BV(0, WidthMED)
		// Aggregation (§4): summary-only aggregates shorten the
		// advertised prefix length when they cover the destination.
		for _, agg := range cfg.BGP.Aggregates {
			if !agg.SummaryOnly {
				continue
			}
			aggLen := c.BV(uint64(agg.Prefix.Len), WidthPrefixLen)
			cond := c.And(m.inPrefix(sl.DstIP, agg.Prefix), c.Ugt(out.PrefixLen, aggLen))
			out.PrefixLen = c.Ite(cond, aggLen, out.PrefixLen)
		}
	}
	if stanza.OutMap != "" {
		out = m.applyRouteMap(sl, cfg, stanza.OutMap, out)
	}
	out.Valid = c.And(out.Valid, c.Ule(out.Metric, c.BV(255, WidthMetric)))
	if m.riskySet[sender.Name] {
		out.Through[sender.Name] = c.True()
	}
	if !m.slicing {
		out = m.wrapVar(sl.Name+"|"+sender.Name+"|out.bgp."+sessionTag(sess, sender), out, true)
	}
	return out
}

func sessionTag(s *protograph.BGPSession, sender *network.Node) string {
	if s.Kind == protograph.EBGPExternal {
		return "ext." + s.Ext.Name
	}
	return s.RemoteEnd(sender).Name
}

// redistCand builds a redistribution candidate: the source protocol's
// selected record re-seeded into the target protocol.
func (m *Model) redistCand(sl *Slice, n *network.Node, cfg *config.Router, rd config.Redistribution, ad, defMetric int, intoBGP bool) *candidate {
	c := m.Ctx
	src := sl.BestProto[n.Name][rd.From]
	if src == nil {
		return nil
	}
	r := src.clone()
	// A record that already passed through this router must not be
	// redistributed again: this breaks the self-supporting ghost fixed
	// points that mutual redistribution would otherwise admit (the
	// redistribution analogue of AS-path loop prevention, §6.1).
	if m.riskySet[n.Name] {
		r.Valid = c.And(src.Valid, c.Not(src.Through[n.Name]))
		r.Through[n.Name] = c.True()
	}
	r.AD = c.BV(uint64(ad), WidthAD)
	metric := defMetric
	if rd.Metric != 0 {
		metric = rd.Metric
	}
	r.Metric = c.BV(uint64(metric), WidthMetric)
	r.Internal = c.False()
	r.RID = c.BV(0, WidthRID)
	if intoBGP {
		r.LocalPref = c.BV(100, WidthLP)
	}
	if rd.RouteMap != "" {
		r = m.applyRouteMap(sl, cfg, rd.RouteMap, r)
	}
	return &candidate{rec: r, redist: true, redistSrc: rd.From}
}

// extIfaceOf returns the interface a router uses toward an external peer.
func (m *Model) extIfaceOf(n *network.Node, ext string) string {
	for _, e := range m.G.Topo.ExternalsOf(n) {
		if e.Name == ext {
			return e.Iface
		}
	}
	return ""
}

func prefixActivated(nets []network.Prefix, p network.Prefix) bool {
	for _, n := range nets {
		if n.Covers(p) || n == p {
			return true
		}
	}
	return false
}

func ownsPrefix(cfg *config.Router, p network.Prefix) bool {
	for _, i := range cfg.Interfaces {
		if !i.Shutdown && i.Prefix == p {
			return true
		}
	}
	for _, st := range cfg.Statics {
		if st.Prefix == p {
			return true
		}
	}
	return false
}

func ospfAD(cfg *config.Router) int {
	if cfg.OSPF != nil && cfg.OSPF.AdminDistance != 0 {
		return cfg.OSPF.AdminDistance
	}
	return 110
}

func ripAD(cfg *config.Router) int {
	if cfg.RIP != nil && cfg.RIP.AdminDistance != 0 {
		return cfg.RIP.AdminDistance
	}
	return 120
}

func bgpAD(cfg *config.Router, internal bool) int {
	if cfg.BGP != nil && cfg.BGP.AdminDistance != 0 {
		return cfg.BGP.AdminDistance
	}
	if internal {
		return 200
	}
	return 20
}

func staticAD(st *config.StaticRoute) int {
	if st.AdminDistance != 0 {
		return st.AdminDistance
	}
	return 1
}

func routerIDOf(cfg *config.Router, n *network.Node) uint32 {
	if cfg.BGP != nil && cfg.BGP.RouterID != 0 {
		return uint32(cfg.BGP.RouterID)
	}
	return uint32(n.Index) + 1
}

// Reach instruments a slice with well-founded reachability booleans: one
// per router, true iff the packet eventually delivers locally (or, with
// countExit, leaves toward an external peer). The encoding uses strictly
// decreasing distance witnesses, so forwarding loops cannot support
// spurious reachability.
func (m *Model) Reach(sl *Slice, countExit bool) map[string]*smt.Term {
	if sl.reachMemo == nil {
		sl.reachMemo = map[bool]map[string]*smt.Term{}
	}
	if r, ok := sl.reachMemo[countExit]; ok {
		return r
	}
	c := m.Ctx
	w := bitsFor(len(m.G.Topo.Nodes) + 2)
	reach := map[string]*smt.Term{}
	dist := map[string]*smt.Term{}
	tag := "reach"
	if countExit {
		tag = "reachx"
	}
	for _, n := range m.G.Topo.Nodes {
		reach[n.Name] = c.BoolVar(sl.Name + "|" + tag + "|" + n.Name)
		dist[n.Name] = c.BVVar(sl.Name+"|"+tag+"dist|"+n.Name, w)
	}
	for _, n := range m.G.Topo.Nodes {
		m.setOrigin(provenance.Origin{Router: n.Name, Kind: "reach", Name: tag})
		base := sl.DeliveredLocal[n.Name]
		alts := []*smt.Term{base}
		// Lower bound (no spurious unreachability): delivery or a
		// reaching successor forces reach. Upper bound (no spurious
		// reachability): reach needs support with strictly decreasing
		// distance, so forwarding cycles cannot sustain it.
		m.assert(c.Implies(base, reach[n.Name]))
		for _, h := range sortedHops(sl.DataFwd[n.Name]) {
			t := sl.DataFwd[n.Name][h]
			if h.Ext != "" {
				if countExit {
					alts = append(alts, t)
					m.assert(c.Implies(t, reach[n.Name]))
				}
				continue
			}
			alts = append(alts, c.And(t, reach[h.Node], c.Ult(dist[h.Node], dist[n.Name])))
			m.assert(c.Implies(c.And(t, reach[h.Node]), reach[n.Name]))
		}
		m.assert(c.Implies(reach[n.Name], c.Or(alts...)))
	}
	m.setOrigin(provenance.Origin{})
	sl.reachMemo[countExit] = reach
	return reach
}

func bitsFor(x int) int {
	w := 1
	for (1 << w) <= x {
		w++
	}
	return w
}

// sortedHops returns a slice's forwarding targets for a router in
// deterministic order.
func sortedHops(fwd map[Hop]*smt.Term) []Hop {
	hops := make([]Hop, 0, len(fwd))
	for h := range fwd {
		hops = append(hops, h)
	}
	sort.Slice(hops, func(i, j int) bool {
		if hops[i].Node != hops[j].Node {
			return hops[i].Node < hops[j].Node
		}
		return hops[i].Ext < hops[j].Ext
	})
	return hops
}
