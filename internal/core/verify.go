package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/obs/cost"
	"repro/internal/provenance"
	"repro/internal/psolve"
	"repro/internal/sat"
	"repro/internal/sat/drat"
	"repro/internal/simulator"
	"repro/internal/smt"
	"repro/internal/smt/passes"
)

// Counterexample is a concrete stable state violating a property: the
// packet, the environment (announcements and failures) and the decoded
// variable assignment. It can be replayed in the simulator.
type Counterexample struct {
	Assignment smt.Assignment
	Packet     config.Packet
	Env        *simulator.Environment
}

// Result is the outcome of one verification query.
type Result struct {
	// Verified is true when no stable state violates the property
	// (the formula N ∧ ¬P is unsatisfiable).
	Verified bool
	// Counterexample is set when Verified is false.
	Counterexample *Counterexample
	// Elapsed is the total query time, the sum of the three phase
	// timings below (kept for compatibility with older tables).
	Elapsed time.Duration
	// EncodeElapsed is the Tseitin CNF conversion and bit-blasting time.
	// SimplifyElapsed covers everything that shrinks the formula before
	// the search: the term-level compile passes (only when this query
	// actually ran them rather than reusing a cached CompiledNetwork),
	// goal-relative cone-of-influence pruning, and top-level CNF
	// simplification. SolveElapsed is the CDCL search. Before these were
	// split, encode time was silently folded into the reported "solver"
	// time.
	EncodeElapsed   time.Duration
	SimplifyElapsed time.Duration
	SolveElapsed    time.Duration
	// PassStats itemizes SimplifyElapsed per pass, in execution order:
	// the compile passes charged to this query (if any), then "coi", then
	// a final "cnf-simplify" row whose Elapsed is the CNF simplification
	// time (its term/var columns are zero — it operates below the term
	// level).
	PassStats []passes.Stats
	// Formula/solver statistics for the performance experiments.
	// SATVars/SATClauses measure the blasted encoding before
	// simplification.
	SATVars    int
	SATClauses int
	Stats      sat.Stats
	// CertifyElapsed is the DRAT replay time when a proof was checked
	// (Options.Certify or Options.Blame); it is part of Elapsed.
	CertifyElapsed time.Duration
	// Certificate is set on UNSAT verdicts when Options.Certify is on:
	// the recorded DRAT trace was replayed through the independent
	// checker before the verdict was returned.
	Certificate *Certificate
	// Blame is set when Options.Blame is on: for UNSAT verdicts, the
	// config origins the checked proof's unsatisfiable core descends
	// from — the stanzas the verdict actually depends on; for SAT, the
	// origins of the constraints that fixed the counterexample's
	// forwarding decisions. Sorted and deduplicated, so equal inputs
	// blame identically.
	Blame []provenance.Origin
	// OriginProfile is set when Options.ProfileOrigins is on: solver
	// work (conflicts, propagations, learned clauses, LBD mass)
	// attributed per config origin, hottest first.
	OriginProfile *provenance.Profile

	// Portfolio and Cube report how a parallel solve (Options.Parallel)
	// reached its verdict; nil for sequential checks and for the parallel
	// strategies that were not used.
	Portfolio *psolve.PortfolioReport
	Cube      *psolve.CubeReport

	// Cost is the query's hierarchical resource ledger: wall/CPU time,
	// memory and deterministic solver work units attributed per phase
	// (compile, blast, simplify, solve, certify, decode, blame), with
	// per-racer/per-cube children under "solve" for parallel runs. For a
	// sequential check the ledger's work total equals Stats exactly; a
	// parallel run's ledger prices the work SPENT (winner and losers),
	// while Stats records the work ADOPTED by the verdict.
	Cost *cost.Node

	// Tier records which verification tier produced the verdict when a
	// tiered orchestrator (internal/tiered) ran the query: "graph" for
	// the fast path, "sat" for solver fall-through, "" when no tiering
	// was in play (today's plain Check calls).
	Tier string
	// FastPathElapsed is the graph tier's classification time — the cost
	// of the fast-path verdict, or the overhead added before falling
	// through to the solver.
	FastPathElapsed time.Duration
}

// Certificate summarizes a checked UNSAT proof.
type Certificate struct {
	// Checked is true when the trace passed the drat checker (always, on
	// a returned Result: a failed check is an error instead).
	Checked bool
	// Steps and Lits give the trace size; Inputs/Lemmas/Deletions split
	// Steps by kind.
	Steps, Lits               int
	Inputs, Lemmas, Deletions int
	// CheckElapsed is the checker's replay time, reported separately from
	// the solve phases (certification is off the verdict path).
	CheckElapsed time.Duration
}

// certify replays a recorded proof trace through the independent DRAT
// checker under an obs span. It returns the certificate, or an error when
// the trace does not establish UNSAT — in which case the caller must not
// report a verdict. With wantCore set the checker additionally extracts
// the unsatisfiable core (indices of the input steps the refutation
// depends on) in the same replay; core extraction threads state through
// the whole trace, so it stays sequential even when workers > 1.
func certify(sp *obs.Span, proof *sat.Proof, wantCore bool, workers int, assumptions ...sat.Lit) (*Certificate, []int, error) {
	cSp := sp.Start("certify")
	defer cSp.End()
	start := time.Now()
	var st *drat.Stats
	var core []int
	var err error
	switch {
	case wantCore:
		st, core, err = drat.CheckCore(proof, assumptions...)
	case workers > 1:
		st, err = drat.CheckParallel(proof, workers, assumptions...)
	default:
		st, err = drat.Check(proof, assumptions...)
	}
	elapsed := time.Since(start)
	cSp.SetInt("steps", int64(proof.NumSteps()))
	cSp.SetInt("lits", int64(proof.NumLits()))
	cSp.SetInt("check_us", elapsed.Microseconds())
	if err != nil {
		cSp.SetStr("verdict", "rejected")
		return nil, nil, fmt.Errorf("core: UNSAT verdict failed certification: %w", err)
	}
	cSp.SetStr("verdict", "checked")
	return &Certificate{
		Checked:      true,
		Steps:        proof.NumSteps(),
		Lits:         proof.NumLits(),
		Inputs:       st.Inputs,
		Lemmas:       st.Lemmas,
		Deletions:    st.Deletions,
		CheckElapsed: elapsed,
	}, core, nil
}

// Check decides whether the property holds in every stable state: it
// asserts N ∧ ¬property and searches for a satisfying assignment.
// Additional constraints (e.g. restricting the destination or bounding
// failures) can be passed as assumptions. It compiles the network on
// first use (cached until Asserts grows) and then delegates to the
// goal-specific phases; callers needing cancellation or explicit
// artifact reuse use CheckContext / CheckGoal.
func (m *Model) Check(property *smt.Term, assumptions ...*smt.Term) (*Result, error) {
	return m.CheckContext(context.Background(), property, assumptions...)
}

// CheckContext is Check with cancellation: when ctx is canceled the
// solver is interrupted and the context error returned.
func (m *Model) CheckContext(ctx context.Context, property *smt.Term, assumptions ...*smt.Term) (*Result, error) {
	before := m.compiles
	cn := m.Compile()
	// Charge compile time to this query only when it actually compiled;
	// cache hits ride for free, mirroring what the solver really did.
	var prior []passes.Stats
	var priorElapsed time.Duration
	if m.compiles != before {
		prior, priorElapsed = cn.PassStats, cn.Elapsed
	}
	return m.checkGoal(ctx, cn, prior, priorElapsed, property, assumptions)
}

// CheckGoal checks a property against a previously compiled artifact,
// the second half of the Compile/CheckGoal split. The artifact must
// come from this model's Compile (same term context). Compile time is
// not charged to the result — the caller amortized it already.
func (m *Model) CheckGoal(ctx context.Context, cn *CompiledNetwork, property *smt.Term, assumptions ...*smt.Term) (*Result, error) {
	return m.checkGoal(ctx, cn, nil, 0, property, assumptions)
}

// watchInterrupt arranges for interrupt to fire if ctx is canceled, and
// returns a stop function that joins the watcher; callers must invoke
// stop (and then reset the solver's interrupt flag) before reading
// solver state.
func watchInterrupt(ctx context.Context, interrupt func()) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	cancel := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			interrupt()
		case <-cancel:
		}
	}()
	return func() {
		close(cancel)
		<-done
	}
}

func (m *Model) checkGoal(ctx context.Context, cn *CompiledNetwork, prior []passes.Stats, priorElapsed time.Duration, property *smt.Term, assumptions []*smt.Term) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !psolve.ValidMode(m.Opts.Parallel) {
		return nil, fmt.Errorf("core: unknown parallel mode %q", m.Opts.Parallel)
	}
	c := m.Ctx
	sp := m.Obs.Start("check")
	defer sp.End()
	solver := smt.NewSolver(c)
	if m.ProgressEvery > 0 && m.OnProgress != nil {
		solver.SetProgress(m.ProgressEvery, m.OnProgress)
	}
	// Origin tracking (blame, profiling) stamps every clause with the
	// provenance of the assert it was blasted from; blame additionally
	// needs the proof trace so the UNSAT core can be extracted.
	track := m.Opts.Blame || m.Opts.ProfileOrigins
	if track {
		solver.EnableOriginTracking()
	}
	var proof *sat.Proof
	if m.Opts.Certify || m.Opts.Blame {
		proof = solver.EnableProof()
	}

	// The cost ledger shadows the span tree with resource accounting:
	// each phase is charged its wall/CPU/memory window by snapshot deltas
	// and its deterministic solver work by counter deltas, so the phase
	// rows telescope to exactly the final solver totals. Children are
	// created up front to pin the display order to the execution order.
	ledger := cost.New("goal")
	if priorElapsed > 0 {
		ledger.Child("compile").AddWall(priorElapsed)
	}
	blastNode, simpNode := ledger.Child("blast"), ledger.Child("simplify")

	// Phase 0 (charged to simplify): goal-relative term passes. The
	// compiled asserts plus any instrumentation appended after the
	// artifact was built, pruned to the goal's cone of influence.
	passStats := append([]passes.Stats(nil), prior...)
	msnap := cost.TakeSnap()
	termStart := time.Now()
	asserts := cn.Asserts
	origins := cn.Origins
	if tail := m.Asserts[cn.BaseLen:]; len(tail) > 0 {
		asserts = append(append([]*smt.Term(nil), asserts...), tail...)
		origins = append([][]int32(nil), origins...)
		for i := cn.BaseLen; i < len(m.Asserts); i++ {
			var o []int32
			if i < len(m.AssertOrigins) {
				o = []int32{m.Prov.ID(m.AssertOrigins[i])}
			}
			origins = append(origins, o)
		}
	}
	goals := make([]*smt.Term, 0, len(assumptions)+1)
	goals = append(goals, assumptions...)
	goals = append(goals, c.Not(property))
	if m.spec.coi {
		sys := &passes.System{Ctx: c, Asserts: append([]*smt.Term(nil), asserts...), Goals: goals}
		if track {
			sys.Origins = append([][]int32(nil), origins...)
		}
		pl, err := passes.NewPipeline(passes.COI)
		if err != nil {
			panic(err)
		}
		passStats = append(passStats, pl.Run(sys, sp)...)
		asserts, goals = sys.Asserts, sys.Goals
		if track {
			origins = sys.Origins
		}
	}
	termElapsed := priorElapsed + time.Since(termStart)
	msnap = simpNode.Charge(msnap)

	// Phase 1: Tseitin CNF conversion + bit-blasting of N ∧ ¬P.
	cnfSp := sp.Start("cnf")
	encStart := time.Now()
	for i, a := range asserts {
		if track {
			if i < len(origins) {
				solver.SetOrigin(origins[i]...)
			} else {
				solver.SetOrigin()
			}
		}
		solver.Assert(a)
	}
	if track {
		solver.SetOrigin(m.Prov.ID(provenance.Origin{Kind: "property"}))
	}
	for _, g := range goals {
		solver.Assert(g)
	}
	if track {
		solver.SetOrigin()
	}
	encodeElapsed := time.Since(encStart)
	satVars, satClauses := solver.NumSATVars(), solver.NumSATClauses()
	cnfSp.SetInt("terms", int64(c.NumTerms()))
	cnfSp.SetInt("asserts", int64(len(asserts)+len(goals)))
	cnfSp.SetInt("gates", int64(solver.NumGates()))
	cnfSp.SetInt("sat_vars", int64(satVars))
	cnfSp.SetInt("sat_clauses", int64(satClauses))
	cnfSp.End()
	msnap = blastNode.Charge(msnap)
	stBlast := solver.SATStats()
	dbBlast := solver.SATSolver().ClauseDBBytes()
	blastNode.Add(cost.FromStats(stBlast).Plus(cost.Work{ClauseDBBytes: dbBlast}))

	// Phase 2: top-level CNF simplification.
	simpSp := sp.Start("simplify")
	simpStart := time.Now()
	solver.Simplify()
	cnfSimplify := time.Since(simpStart)
	simplifyElapsed := termElapsed + cnfSimplify
	passStats = append(passStats, passes.Stats{Pass: "cnf-simplify", Elapsed: cnfSimplify})
	simpSp.SetInt("clauses_before", int64(satClauses))
	simpSp.SetInt("clauses_after", int64(solver.NumSATClauses()))
	simpSp.End()
	msnap = simpNode.Charge(msnap)
	stSimp := solver.SATStats()
	dbSimp := solver.SATSolver().ClauseDBBytes()
	simpNode.Add(cost.FromStats(stSimp).Minus(cost.FromStats(stBlast)).
		Plus(cost.Work{ClauseDBBytes: dbSimp - dbBlast}))

	// Phase 3: CDCL search, interruptible through ctx. A parallel
	// strategy (Options.Parallel) fans the search out over clones of the
	// solver and adopts the winner's verdict, stats and proof
	// (internal/psolve); the sequential path is untouched when off.
	solveSp := sp.Start("solve")
	solveStart := time.Now()
	var status sat.Status
	var outcome *psolve.Outcome
	if m.parallelEnabled() {
		var perr error
		outcome, perr = psolve.Solve(ctx, solver.SATSolver(), m.parallelOptions(solver))
		if perr != nil {
			solveSp.End()
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: parallel solve: %w", perr)
		}
		status = outcome.Status
	} else {
		stopWatch := watchInterrupt(ctx, solver.Interrupt)
		status = solver.Check()
		stopWatch()
		solver.ResetInterrupt()
	}
	solveElapsed := time.Since(solveStart)
	st := solver.SATStats()
	if outcome != nil {
		st = outcome.Stats
	}
	solveSp.SetStr("status", status.String())
	solveSp.SetInt("conflicts", st.Conflicts)
	solveSp.SetInt("decisions", st.Decisions)
	solveSp.SetInt("propagations", st.Propagations)
	solveSp.SetInt("learned", st.Learned)
	solveSp.SetInt("restarts", st.Restarts)
	solveSp.End()
	solveNode := ledger.Child("solve")
	msnap = solveNode.Charge(msnap)
	adoptedDelta := cost.FromStats(st).Minus(cost.FromStats(stSimp))
	if outcome != nil {
		chargeParallelSolve(solveNode, outcome, adoptedDelta)
	} else {
		adoptedDelta.ClauseDBBytes = solver.SATSolver().ClauseDBBytes() - dbSimp
		solveNode.Add(adoptedDelta)
	}

	res := &Result{
		Elapsed:         encodeElapsed + simplifyElapsed + solveElapsed,
		EncodeElapsed:   encodeElapsed,
		SimplifyElapsed: simplifyElapsed,
		SolveElapsed:    solveElapsed,
		PassStats:       passStats,
		SATVars:         satVars,
		SATClauses:      satClauses,
		Stats:           st,
	}
	if outcome != nil {
		res.Portfolio = outcome.Portfolio
		res.Cube = outcome.Cube
	}
	switch status {
	case sat.Unsat:
		res.Verified = true
		if proof != nil {
			// A parallel run's certificate is the adopted trace (the
			// winner's, or the stitched multi-cube proof), resolved against
			// whichever origin tables it refers to.
			checkProof, bases := proof, solver.OriginSetBases
			if outcome != nil {
				checkProof, bases = outcome.Proof, outcome.OriginBases
			}
			cert, core, err := certify(sp, checkProof, m.Opts.Blame, m.certifyWorkers())
			if err != nil {
				return nil, err
			}
			certNode := ledger.Child("certify")
			msnap = certNode.Charge(msnap)
			certNode.Add(cost.Work{ProofBytes: checkProof.Bytes()})
			res.Certificate = cert
			res.CertifyElapsed = cert.CheckElapsed
			res.Elapsed += res.CertifyElapsed
			if m.Opts.Blame {
				res.Blame = m.blameFromCore(bases, checkProof, core)
				msnap = ledger.Child("blame").Charge(msnap)
			}
		}
	case sat.Sat:
		dSp := sp.Start("decode")
		asg := solver.Model()
		if outcome != nil {
			asg = solver.ModelFrom(outcome.Winner)
		}
		res.Counterexample = m.Decode(asg)
		dSp.End()
		msnap = ledger.Child("decode").Charge(msnap)
		if m.Opts.Blame {
			res.Blame = m.blameSat(asserts, origins, res.Counterexample.Assignment)
			msnap = ledger.Child("blame").Charge(msnap)
		}
	default:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: solver returned %v", status)
	}
	if m.Opts.ProfileOrigins {
		if outcome != nil {
			res.OriginProfile = m.profileFromOutcome(outcome)
		} else {
			res.OriginProfile = m.originProfile(solver)
		}
	}
	// Whatever ran since the last phase boundary (profile construction,
	// result assembly) is the root's own window.
	ledger.Charge(msnap)
	res.Cost = ledger
	return res, nil
}

// chargeParallelSolve expands a parallel outcome under the solve node:
// one child per participating solver pricing the work it SPENT, with the
// adopted rows marked. The solve subtree therefore totals the race's
// full bill, while Result.Stats keeps only the adopted delta — the
// difference is recorded as wasted_units.
func chargeParallelSolve(solve *cost.Node, outcome *psolve.Outcome, adopted cost.Work) {
	var spent cost.Work
	for _, tw := range outcome.Tasks {
		name := tw.Label
		if outcome.Portfolio != nil {
			name = fmt.Sprintf("racer:%d", tw.ID)
		}
		w := cost.FromStats(tw.Stats)
		w.ClauseDBBytes = tw.DBBytes
		child := solve.Child(name)
		child.Add(w)
		if tw.Adopted {
			child.SetMeta("adopted", 1)
		}
		spent = spent.Plus(w)
	}
	if wasted := spent.Units() - adopted.Units(); wasted > 0 {
		solve.SetMeta("wasted_units", wasted)
	}
	if outcome.Portfolio != nil {
		solve.SetMeta("winner", int64(outcome.Portfolio.WinnerID))
	}
}

// blameFromCore maps an UNSAT core (input-step indices of a checked
// proof) back to config origins: each input clause carries the interned
// origin set of the assert it was blasted from, resolved through bases
// (the origin tables of whichever solver recorded the proof). Untagged
// clauses (the zero origin) are dropped; the result is sorted, so equal
// cores blame identically.
func (m *Model) blameFromCore(bases func(id int32) []int32, proof *sat.Proof, core []int) []provenance.Origin {
	steps := proof.Steps()
	seen := map[int32]bool{}
	var out []provenance.Origin
	for _, si := range core {
		if si < 0 || si >= len(steps) {
			continue
		}
		for _, base := range bases(steps[si].Origin) {
			if seen[base] {
				continue
			}
			seen[base] = true
			if o := m.Prov.Origin(base); o != (provenance.Origin{}) {
				out = append(out, o)
			}
		}
	}
	return provenance.DedupeOrigins(out)
}

// blameSat attributes a SAT counterexample: the origins of every
// constraint whose term DAG overlaps an active forwarding decision
// (control-plane forwarding, local delivery, null drop) of the decoded
// stable state. Terms are hash-consed, so shared subterms — in
// particular the decision indicators and their variables — identify the
// asserts that fixed each decision even after the pass pipeline
// rewrote them.
func (m *Model) blameSat(asserts []*smt.Term, origins [][]int32, asg smt.Assignment) []provenance.Origin {
	want := map[*smt.Term]bool{}
	var markAll func(t *smt.Term)
	markAll = func(t *smt.Term) {
		if want[t] {
			return
		}
		want[t] = true
		for _, k := range t.Kids() {
			markAll(k)
		}
	}
	sl := m.Main
	for _, fwd := range sl.CtrlFwd {
		for _, t := range fwd {
			if evalBool(t, asg) {
				markAll(t)
			}
		}
	}
	for _, t := range sl.DeliveredLocal {
		if evalBool(t, asg) {
			markAll(t)
		}
	}
	for _, t := range sl.DroppedNull {
		if evalBool(t, asg) {
			markAll(t)
		}
	}
	touched := map[*smt.Term]bool{}
	var touches func(t *smt.Term) bool
	touches = func(t *smt.Term) bool {
		if v, ok := touched[t]; ok {
			return v
		}
		r := want[t]
		for _, k := range t.Kids() {
			if r {
				break
			}
			r = touches(k)
		}
		touched[t] = r
		return r
	}
	seen := map[provenance.Origin]bool{}
	var out []provenance.Origin
	for i, a := range asserts {
		if i >= len(origins) || len(origins[i]) == 0 || !touches(a) {
			continue
		}
		for _, b := range origins[i] {
			o := m.Prov.Origin(b)
			if o == (provenance.Origin{}) || seen[o] {
				continue
			}
			seen[o] = true
			out = append(out, o)
		}
	}
	provenance.SortOrigins(out)
	return out
}

// originProfile converts the solver's per-set work counters into the
// per-origin hot-constraint profile.
func (m *Model) originProfile(solver *smt.Solver) *provenance.Profile {
	sets, counts := solver.OriginSnapshot()
	pc := make([]provenance.Counts, len(counts))
	for i, c := range counts {
		pc[i] = provenance.Counts{
			Conflicts:    c.Conflicts,
			Propagations: c.Propagations,
			Learned:      c.Learned,
			LBDSum:       c.LBDSum,
		}
	}
	return provenance.BuildProfile(m.Prov, sets, pc)
}

// CheckSat searches for a stable state satisfying the given condition
// (rather than verifying its absence): SAT returns the witness.
func (m *Model) CheckSat(condition *smt.Term) (*Counterexample, error) {
	res, err := m.Check(m.Ctx.Not(condition))
	if err != nil {
		return nil, err
	}
	return res.Counterexample, nil
}

// Decode reconstructs the concrete environment and packet from a model
// assignment.
func (m *Model) Decode(asg smt.Assignment) *Counterexample {
	cex := &Counterexample{Assignment: asg, Env: simulator.NewEnvironment()}
	dst := network.IP(asg[m.prefix+"pkt.dstIP"].BV)
	cex.Packet = config.Packet{
		DstIP:    dst,
		SrcIP:    network.IP(asg[m.prefix+"pkt.srcIP"].BV),
		SrcPort:  int(asg[m.prefix+"pkt.srcPort"].BV),
		DstPort:  int(asg[m.prefix+"pkt.dstPort"].BV),
		Protocol: int(asg[m.prefix+"pkt.proto"].BV),
	}
	for _, e := range m.G.Topo.Externals {
		rec := m.Main.Env[e.Name]
		if !evalBool(rec.Valid, asg) {
			continue
		}
		plen := int(smt.Eval(rec.PrefixLen, asg).BV)
		if plen > 32 {
			plen = 32
		}
		ann := simulator.Announcement{
			Prefix:  network.Prefix{Addr: dst.Mask(plen), Len: plen},
			PathLen: int(smt.Eval(rec.Metric, asg).BV),
			MED:     int(smt.Eval(rec.MED, asg).BV),
		}
		if !m.hoisting && rec.Prefix != nil {
			ann.Prefix = network.Prefix{Addr: network.IP(smt.Eval(rec.Prefix, asg).BV).Mask(plen), Len: plen}
		}
		for _, cm := range m.commUni {
			if bit, ok := rec.Comms[cm]; ok && evalBool(bit, asg) {
				ann.Communities = append(ann.Communities, cm)
			}
		}
		cex.Env.Announce(e.Name, ann)
	}
	for id, v := range m.Failed {
		if evalBool(v, asg) {
			cex.Env.FailedLinks[id] = true
		}
	}
	return cex
}

func evalBool(t *smt.Term, asg smt.Assignment) bool {
	return smt.Eval(t, asg).Bool
}

// RecordValue is a decoded record for diagnostics.
type RecordValue struct {
	Valid     bool
	PrefixLen int
	AD        int
	LocalPref int
	Metric    int
	MED       int
	Internal  bool
	RID       uint32
	Comms     []string
}

// DecodeRecord evaluates a symbolic record under an assignment.
func DecodeRecord(r *Record, asg smt.Assignment) RecordValue {
	v := RecordValue{
		Valid:     smt.Eval(r.Valid, asg).Bool,
		PrefixLen: int(smt.Eval(r.PrefixLen, asg).BV),
		AD:        int(smt.Eval(r.AD, asg).BV),
		LocalPref: int(smt.Eval(r.LocalPref, asg).BV),
		Metric:    int(smt.Eval(r.Metric, asg).BV),
		MED:       int(smt.Eval(r.MED, asg).BV),
		Internal:  smt.Eval(r.Internal, asg).Bool,
		RID:       uint32(smt.Eval(r.RID, asg).BV),
	}
	for cm, bit := range r.Comms {
		if smt.Eval(bit, asg).Bool {
			v.Comms = append(v.Comms, cm)
		}
	}
	sort.Strings(v.Comms)
	return v
}

// DecodeForwarding lists the active control-plane forwarding decisions of
// a slice under an assignment, for counterexample reports.
func (m *Model) DecodeForwarding(sl *Slice, asg smt.Assignment) []string {
	var out []string
	names := make([]string, 0, len(sl.CtrlFwd))
	for n := range sl.CtrlFwd {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, h := range sortedHops(sl.CtrlFwd[n]) {
			if evalBool(sl.CtrlFwd[n][h], asg) {
				out = append(out, n+" -> "+h.String())
			}
		}
		if evalBool(sl.DeliveredLocal[n], asg) {
			out = append(out, n+" delivers locally")
		}
		if evalBool(sl.DroppedNull[n], asg) {
			out = append(out, n+" drops (null0)")
		}
	}
	return out
}

// String renders a counterexample for operators.
func (c *Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packet: dst=%v src=%v proto=%d sport=%d dport=%d\n",
		c.Packet.DstIP, c.Packet.SrcIP, c.Packet.Protocol, c.Packet.SrcPort, c.Packet.DstPort)
	fmt.Fprintf(&b, "environment: %s", c.Env)
	return b.String()
}

// Replay runs the counterexample's environment through the concrete
// simulator and returns the resulting stable state, letting callers
// confirm a finding outside the symbolic model (the CLI's -replay flag
// and several tests use this).
func (m *Model) Replay(cex *Counterexample) (*simulator.Result, error) {
	sim := simulator.New(m.G)
	return sim.Run(cex.Packet.DstIP, cex.Env)
}

// ReplayAgrees replays the counterexample and compares the simulator's
// stable state with the decoded model state router by router (overall
// best route and forwarding). It returns a list of disagreements — empty
// when the concrete and symbolic worlds agree, which is strong evidence
// the finding is real. Networks with multiple stable states may disagree
// legitimately; see DESIGN.md.
func (m *Model) ReplayAgrees(cex *Counterexample) ([]string, error) {
	simres, err := m.Replay(cex)
	if err != nil {
		return nil, err
	}
	var diffs []string
	for _, n := range m.G.Topo.Nodes {
		sym := DecodeRecord(m.Main.Best[n.Name], cex.Assignment)
		conc := simres.States[n.Name].Best
		if sym.Valid != conc.Valid {
			diffs = append(diffs, fmt.Sprintf("%s: model best valid=%v, simulator=%v", n.Name, sym.Valid, conc.Valid))
			continue
		}
		if conc.Valid && (sym.PrefixLen != conc.PrefixLen || sym.AD != conc.AD ||
			sym.LocalPref != conc.LocalPref || sym.Metric != conc.Metric) {
			diffs = append(diffs, fmt.Sprintf("%s: model best %+v, simulator %v", n.Name, sym, conc))
		}
	}
	return diffs, nil
}
