package core

import (
	"repro/internal/config"
	"repro/internal/smt"
)

// applyRouteMap translates a route map into record constraints (the
// symbolic analogue of Figure 4). Clauses apply first-match; a permit
// clause executes its set actions, a deny clause (and the implicit tail)
// invalidates the record. With hoisting, prefix-list matches become range
// tests on the slice's destination IP plus bounds on the record's prefix
// length (§6.1); without it they test the record's explicit prefix field.
func (m *Model) applyRouteMap(sl *Slice, cfg *config.Router, name string, rec *Record) *Record {
	c := m.Ctx
	rm := cfg.RouteMaps[name]
	if rm == nil {
		return m.inv()
	}
	out := m.inv() // implicit deny tail
	for i := len(rm.Clauses) - 1; i >= 0; i-- {
		cl := rm.Clauses[i]
		match := m.clauseMatch(sl, cfg, cl, rec)
		var res *Record
		if cl.Action == config.Deny {
			res = m.inv()
		} else {
			res = m.applySets(cfg, cl, rec)
		}
		out = muxRecord(c, match, res, out)
	}
	out.Valid = c.And(rec.Valid, out.Valid)
	return out
}

// clauseMatch builds the condition under which a route-map clause applies.
func (m *Model) clauseMatch(sl *Slice, cfg *config.Router, cl *config.RouteMapClause, rec *Record) *smt.Term {
	c := m.Ctx
	cond := c.True()
	if cl.MatchPrefixList != "" {
		pl := cfg.PrefixLists[cl.MatchPrefixList]
		if pl == nil {
			return c.False()
		}
		cond = c.And(cond, m.prefixListPermits(sl, pl, rec))
	}
	if cl.MatchCommunity != "" {
		l := cfg.CommunityLists[cl.MatchCommunity]
		if l == nil {
			return c.False()
		}
		var any []*smt.Term
		for _, v := range l.Values {
			if bit, ok := rec.Comms[v]; ok {
				any = append(any, bit)
			}
		}
		cond = c.And(cond, c.Or(any...))
	}
	return cond
}

// prefixListPermits folds a prefix list's entries with first-match
// semantics into a permit bit.
func (m *Model) prefixListPermits(sl *Slice, pl *config.PrefixList, rec *Record) *smt.Term {
	c := m.Ctx
	out := c.False() // implicit deny
	for i := len(pl.Entries) - 1; i >= 0; i-- {
		e := pl.Entries[i]
		out = c.Ite(m.entryMatches(sl, e, rec), c.Bool(e.Action == config.Permit), out)
	}
	return out
}

// entryMatches builds one prefix-list entry test. The hoisted form tests
// the destination IP against the entry's constant prefix and bounds the
// record's prefix length — sound because record validity already implies
// the announced prefix covers the destination and the length bounds sit at
// or above the entry's length (§6.1).
func (m *Model) entryMatches(sl *Slice, e config.PrefixListEntry, rec *Record) *smt.Term {
	c := m.Ctx
	lo, hi := e.Prefix.Len, e.Prefix.Len
	if e.Ge != 0 {
		lo, hi = e.Ge, 32
	}
	if e.Le != 0 {
		hi = e.Le
		if e.Ge == 0 {
			lo = e.Prefix.Len
		}
	}
	bounds := c.And(
		c.Ule(c.BV(uint64(lo), WidthPrefixLen), rec.PrefixLen),
		c.Ule(rec.PrefixLen, c.BV(uint64(hi), WidthPrefixLen)),
	)
	if m.hoisting {
		return c.And(m.inPrefix(sl.DstIP, e.Prefix), bounds)
	}
	return c.And(m.fbmConst(rec.Prefix, e.Prefix.Addr, e.Prefix.Len), bounds)
}

// applySets executes a permit clause's set actions on a copy of the
// record.
func (m *Model) applySets(cfg *config.Router, cl *config.RouteMapClause, rec *Record) *Record {
	c := m.Ctx
	out := rec.clone()
	if cl.SetLocalPref != 0 {
		out.LocalPref = c.BV(uint64(cl.SetLocalPref), WidthLP)
	}
	if cl.HasSetMetric {
		out.Metric = c.BV(uint64(cl.SetMetric), WidthMetric)
	}
	if cl.HasSetMED {
		out.MED = c.BV(uint64(cl.SetMED), WidthMED)
	}
	for _, v := range cl.SetCommunity {
		if _, ok := out.Comms[v]; ok {
			out.Comms[v] = c.True()
		}
	}
	for _, listName := range cl.DelCommunity {
		if l := cfg.CommunityLists[listName]; l != nil {
			for _, v := range l.Values {
				if _, ok := out.Comms[v]; ok {
					out.Comms[v] = c.False()
				}
			}
		}
	}
	if cl.SetPrepend > 0 {
		out.Metric = c.Add(out.Metric, c.BV(uint64(cl.SetPrepend), WidthMetric))
	}
	return out
}

// aclPermits translates an interface ACL into a packet predicate (§3(7)).
// A missing interface or ACL permits everything.
func (m *Model) aclPermits(cfg *config.Router, ifaceName string, inbound bool, pkt pktFields) *smt.Term {
	c := m.Ctx
	if ifaceName == "" {
		return c.True()
	}
	iface := cfg.Iface(ifaceName)
	if iface == nil {
		return c.True()
	}
	name := iface.OutACL
	if inbound {
		name = iface.InACL
	}
	if name == "" {
		return c.True()
	}
	acl := cfg.ACLs[name]
	if acl == nil {
		return c.True()
	}
	out := c.False() // implicit deny
	for i := len(acl.Entries) - 1; i >= 0; i-- {
		e := acl.Entries[i]
		out = c.Ite(m.aclEntryMatches(e, pkt), c.Bool(e.Action == config.Permit), out)
	}
	return out
}

func (m *Model) aclEntryMatches(e config.ACLEntry, pkt pktFields) *smt.Term {
	c := m.Ctx
	cond := c.True()
	if e.SrcPrefix.Len > 0 {
		cond = c.And(cond, m.inPrefix(pkt.src, e.SrcPrefix))
	}
	if e.DstPrefix.Len > 0 {
		cond = c.And(cond, m.inPrefix(pkt.dst, e.DstPrefix))
	}
	if e.Protocol >= 0 {
		cond = c.And(cond, c.Eq(pkt.proto, c.BV(uint64(e.Protocol), 8)))
	}
	if e.SrcPortLo > 0 || e.SrcPortHi < 65535 {
		cond = c.And(cond, c.InRange(pkt.sport, uint64(e.SrcPortLo), uint64(e.SrcPortHi)))
	}
	if e.DstPortLo > 0 || e.DstPortHi < 65535 {
		cond = c.And(cond, c.InRange(pkt.dport, uint64(e.DstPortLo), uint64(e.DstPortHi)))
	}
	return cond
}
