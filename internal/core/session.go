package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs/cost"
	"repro/internal/provenance"
	"repro/internal/psolve"
	"repro/internal/sat"
	"repro/internal/smt"
)

// Session answers many property queries against one encoded network. The
// model's constraint system N is bit-blasted into the incremental SMT
// session exactly once; each Check blasts only the assumptions and the
// negated property under a fresh activation literal. Results have the
// same shape as Model.Check, with per-check phase timings and per-check
// solver work (deltas, not the session's cumulative counters).
//
// Property constructors (Waypointed, BoundedLength, ...) may append
// instrumentation constraints to Model.Asserts while building their
// terms; Check picks up any asserts added since the previous check and
// blasts them as permanent constraints before solving, so the usual
// "build property, then check it" flow works unchanged.
//
// A Session serializes its checks internally, so it is safe to call
// Check from multiple goroutines — they simply queue. Note that building
// property terms mutates the model's term context, which is NOT
// synchronized; callers sharing a Model across goroutines must serialize
// property construction themselves (the service layer holds one lock per
// network around build+check).
type Session struct {
	m  *Model
	mu sync.Mutex
	ss *smt.Session

	asserted int // prefix of m.Asserts already blasted as shared
	// lastBlasted remembers the final assert of that prefix. The session
	// blasts m.Asserts incrementally and can never un-blast: if a caller
	// replaces or truncates already-blasted asserts (EquivPair.Check
	// splices the model's assert list, and anything invalidating the
	// compile cache mid-session has the same effect), the solver state no
	// longer corresponds to the model and every later verdict would be
	// silently stale. Check detects the mismatch and returns
	// ErrSessionInvalidated instead.
	lastBlasted *smt.Term
	checks      int

	proof *sat.Proof // non-nil when Options.Certify or Options.Blame is on

	// blameAsserts/blameOrigins mirror every shared assert blasted into
	// the session with its provenance, for SAT-side blame (Options.Blame).
	blameAsserts []*smt.Term
	blameOrigins [][]int32

	setupCompile  time.Duration
	setupEncode   time.Duration
	setupSimplify time.Duration

	// setupCost is the one-time session ledger (compile, shared blast,
	// simplify); per-check Results carry their own ledgers. The service
	// grafts this under the session-creating job's cost tree.
	setupCost *cost.Node
}

// ErrSessionInvalidated is returned by Session.Check when the model's
// assert list was replaced or truncated after the session blasted it,
// so the session's solver state no longer matches the model. Callers
// must open a new session (or re-check with Model.Check, which
// recompiles).
var ErrSessionInvalidated = errors.New(
	"core: session invalidated: already-blasted model asserts were replaced or truncated")

// NewSession compiles the model (reusing a cached CompiledNetwork when
// available), blasts the compiled constraint system into a fresh
// incremental session, and simplifies it once. The setup cost is
// reported by SetupElapsed, not folded into the first check's Result.
func (m *Model) NewSession() *Session {
	s := &Session{m: m, ss: smt.NewSession(m.Ctx)}
	sp := m.Obs.Start("session")
	defer sp.End()
	if m.ProgressEvery > 0 && m.OnProgress != nil {
		s.ss.Solver().SetProgress(m.ProgressEvery, m.OnProgress)
	}
	track := m.Opts.Blame || m.Opts.ProfileOrigins
	if track {
		s.ss.Solver().EnableOriginTracking()
	}
	if m.Opts.Certify || m.Opts.Blame {
		s.proof = s.ss.Solver().EnableProof()
	}

	s.setupCost = cost.New("session-setup")
	msnap := cost.TakeSnap()
	compiles := m.compiles
	cn := m.Compile()
	if m.compiles != compiles {
		s.setupCompile = cn.Elapsed
		msnap = s.setupCost.Child("compile").Charge(msnap)
	}
	if m.Opts.Blame {
		s.blameAsserts = append([]*smt.Term(nil), cn.Asserts...)
		s.blameOrigins = append([][]int32(nil), cn.Origins...)
	}

	blastSp := sp.Start("blast")
	start := time.Now()
	for i, a := range cn.Asserts {
		if track {
			if i < len(cn.Origins) {
				s.ss.Solver().SetOrigin(cn.Origins[i]...)
			} else {
				s.ss.Solver().SetOrigin()
			}
		}
		s.ss.Assert(a)
	}
	if track {
		s.ss.Solver().SetOrigin()
	}
	s.asserted = cn.BaseLen
	if cn.BaseLen > 0 {
		s.lastBlasted = m.Asserts[cn.BaseLen-1]
	}
	s.setupEncode = time.Since(start)
	blastSp.SetInt("asserts", int64(len(cn.Asserts)))
	blastSp.SetInt("sat_vars", int64(s.ss.Solver().NumSATVars()))
	blastSp.SetInt("sat_clauses", int64(s.ss.Solver().NumSATClauses()))
	blastSp.End()
	blastNode := s.setupCost.Child("blast")
	msnap = blastNode.Charge(msnap)
	stBlast := s.ss.Solver().SATStats()
	dbBlast := s.ss.Solver().SATSolver().ClauseDBBytes()
	blastNode.Add(cost.FromStats(stBlast).Plus(cost.Work{ClauseDBBytes: dbBlast}))

	simpSp := sp.Start("simplify")
	start = time.Now()
	s.ss.Simplify()
	s.setupSimplify = time.Since(start)
	simpSp.SetInt("clauses_after", int64(s.ss.Solver().NumSATClauses()))
	simpSp.End()
	simpNode := s.setupCost.Child("simplify")
	simpNode.Charge(msnap)
	simpNode.Add(cost.FromStats(s.ss.Solver().SATStats()).Minus(cost.FromStats(stBlast)).
		Plus(cost.Work{ClauseDBBytes: s.ss.Solver().SATSolver().ClauseDBBytes() - dbBlast}))
	return s
}

// SetupCost returns the session's one-time setup ledger (compile, shared
// blast, simplify). The tree is owned by the session; callers merge or
// graft it, they do not mutate it.
func (s *Session) SetupCost() *cost.Node { return s.setupCost }

// SolverStats returns the session solver's cumulative counters — not a
// per-check delta. Service budgets baseline against it at check start so
// progress-hook snapshots (also cumulative) can be turned into per-check
// spend.
func (s *Session) SolverStats() sat.Stats { return s.ss.Solver().SATStats() }

// SetupElapsed returns the one-time session cost: the shared blast and
// the simplification work that ran in NewSession (term-level compile
// passes, when the session triggered them, plus the top-level CNF
// simplification).
func (s *Session) SetupElapsed() (encode, simplify time.Duration) {
	return s.setupEncode, s.setupCompile + s.setupSimplify
}

// Compiled returns the compilation artifact the session was built from.
func (s *Session) Compiled() *CompiledNetwork { return s.m.Compile() }

// SharedBlasts reports how many times the shared formula N was blasted —
// 1 for the session's whole lifetime, however many checks run.
func (s *Session) SharedBlasts() int { return s.ss.SharedBlasts() }

// Checks returns the number of completed checks.
func (s *Session) Checks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checks
}

// SATVars returns the current size of the blasted formula.
func (s *Session) SATVars() int { return s.ss.Solver().NumSATVars() }

// SATClauses returns the current number of problem clauses.
func (s *Session) SATClauses() int { return s.ss.Solver().NumSATClauses() }

// Check decides whether the property holds in every stable state, like
// Model.Check but reusing the session's blasted formula.
func (s *Session) Check(property *smt.Term, assumptions ...*smt.Term) (*Result, error) {
	return s.CheckContext(context.Background(), property, assumptions...)
}

// CheckContext is Check with cancellation: when ctx is canceled or times
// out mid-search, the solver is interrupted and ctx's error is returned.
func (s *Session) CheckContext(ctx context.Context, property *smt.Term, assumptions ...*smt.Term) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := s.m
	if !psolve.ValidMode(m.Opts.Parallel) {
		return nil, fmt.Errorf("core: unknown parallel mode %q", m.Opts.Parallel)
	}
	c := m.Ctx
	sp := m.Obs.Start("session-check")
	defer sp.End()

	// The session only ever appends to the solver: verify the blasted
	// prefix of m.Asserts is still the one we blasted before trusting it.
	if len(m.Asserts) < s.asserted ||
		(s.asserted > 0 && m.Asserts[s.asserted-1] != s.lastBlasted) {
		return nil, ErrSessionInvalidated
	}

	// Phase 1: blast instrumentation asserts added by property builders
	// since the last check (permanent), then the goals under a fresh
	// activation literal.
	ledger := cost.New("goal")
	msnap := cost.TakeSnap()
	blastNode := ledger.Child("blast")
	stBefore := s.ss.Solver().SATStats()
	dbBefore := s.ss.Solver().SATSolver().ClauseDBBytes()
	cnfSp := sp.Start("cnf")
	encStart := time.Now()
	track := m.Opts.Blame || m.Opts.ProfileOrigins
	newShared := len(m.Asserts) - s.asserted
	for i := s.asserted; i < len(m.Asserts); i++ {
		a := m.Asserts[i]
		if track {
			var o []int32
			if i < len(m.AssertOrigins) {
				o = []int32{m.Prov.ID(m.AssertOrigins[i])}
			}
			s.ss.Solver().SetOrigin(o...)
			if m.Opts.Blame {
				s.blameAsserts = append(s.blameAsserts, a)
				s.blameOrigins = append(s.blameOrigins, o)
			}
		}
		s.ss.Assert(a)
	}
	s.asserted = len(m.Asserts)
	if s.asserted > 0 {
		s.lastBlasted = m.Asserts[s.asserted-1]
	}
	goals := make([]*smt.Term, 0, len(assumptions)+1)
	goals = append(goals, assumptions...)
	goals = append(goals, c.Not(property))
	if track {
		s.ss.Solver().SetOrigin(m.Prov.ID(provenance.Origin{Kind: "property"}))
	}
	s.ss.Prepare(goals...)
	if track {
		s.ss.Solver().SetOrigin()
	}
	encodeElapsed := time.Since(encStart)
	satVars, satClauses := s.ss.Solver().NumSATVars(), s.ss.Solver().NumSATClauses()
	cnfSp.SetInt("new_shared_asserts", int64(newShared))
	cnfSp.SetInt("goals", int64(len(goals)))
	cnfSp.SetInt("sat_vars", int64(satVars))
	cnfSp.SetInt("sat_clauses", int64(satClauses))
	cnfSp.End()
	msnap = blastNode.Charge(msnap)
	stEnc := s.ss.Solver().SATStats()
	dbEnc := s.ss.Solver().SATSolver().ClauseDBBytes()
	blastNode.Add(cost.FromStats(stEnc).Minus(cost.FromStats(stBefore)).
		Plus(cost.Work{ClauseDBBytes: dbEnc - dbBefore}))

	// Phase 2: CDCL search under the activation literal, with optional
	// cancellation. The watcher is joined before the interrupt flag is
	// cleared so a late Interrupt cannot leak into the next check. With a
	// parallel strategy on, the search runs on clones of the session
	// solver (which stays untouched and reusable); the session is told
	// the adopted cumulative counters so per-check deltas stay right.
	solveSp := sp.Start("solve")
	solveStart := time.Now()
	var status sat.Status
	var outcome *psolve.Outcome
	if m.parallelEnabled() {
		var perr error
		outcome, perr = psolve.Solve(ctx, s.ss.Solver().SATSolver(),
			m.parallelOptions(s.ss.Solver()), s.ss.Assumptions()...)
		if perr != nil {
			solveSp.End()
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: parallel solve: %w", perr)
		}
		status = outcome.Status
		s.ss.FinishExternalSolve(outcome.Stats)
	} else {
		stopWatch := watchInterrupt(ctx, s.ss.Interrupt)
		status = s.ss.Solve()
		stopWatch()
		s.ss.ResetInterrupt()
	}
	solveElapsed := time.Since(solveStart)
	s.checks++
	st := s.ss.LastStats().Stats
	solveSp.SetStr("status", status.String())
	solveSp.SetInt("conflicts", st.Conflicts)
	solveSp.SetInt("decisions", st.Decisions)
	solveSp.SetInt("propagations", st.Propagations)
	solveSp.SetInt("learned", st.Learned)
	solveSp.End()
	solveNode := ledger.Child("solve")
	msnap = solveNode.Charge(msnap)
	if outcome != nil {
		chargeParallelSolve(solveNode, outcome, cost.FromStats(st))
	} else {
		w := cost.FromStats(s.ss.Solver().SATStats()).Minus(cost.FromStats(stEnc))
		w.ClauseDBBytes = s.ss.Solver().SATSolver().ClauseDBBytes() - dbEnc
		solveNode.Add(w)
	}

	res := &Result{
		Elapsed:       encodeElapsed + solveElapsed,
		EncodeElapsed: encodeElapsed,
		SolveElapsed:  solveElapsed,
		SATVars:       satVars,
		SATClauses:    satClauses,
		Stats:         st,
	}
	if outcome != nil {
		res.Portfolio = outcome.Portfolio
		res.Cube = outcome.Cube
	}
	switch status {
	case sat.Unsat:
		res.Verified = true
		if s.proof != nil {
			// The session's UNSAT is relative to its activation literal;
			// the checker gets it as an assumption. The trace replayed is
			// cumulative over the session's whole life, so certification
			// cost grows with the number of checks. A parallel run's trace
			// is the adopted one (winner's or stitched), resolved against
			// whichever origin tables recorded it.
			checkProof, bases := s.proof, s.ss.Solver().OriginSetBases
			if outcome != nil {
				checkProof, bases = outcome.Proof, outcome.OriginBases
			}
			cert, core, err := certify(sp, checkProof, m.Opts.Blame, m.certifyWorkers(), s.ss.Assumptions()...)
			if err != nil {
				return nil, err
			}
			certNode := ledger.Child("certify")
			msnap = certNode.Charge(msnap)
			certNode.Add(cost.Work{ProofBytes: checkProof.Bytes()})
			res.Certificate = cert
			res.CertifyElapsed = cert.CheckElapsed
			res.Elapsed += res.CertifyElapsed
			if m.Opts.Blame {
				res.Blame = m.blameFromCore(bases, checkProof, core)
				msnap = ledger.Child("blame").Charge(msnap)
			}
		}
	case sat.Sat:
		dSp := sp.Start("decode")
		asg := s.ss.Model()
		if outcome != nil {
			asg = s.ss.Solver().ModelFrom(outcome.Winner)
		}
		res.Counterexample = m.Decode(asg)
		dSp.End()
		msnap = ledger.Child("decode").Charge(msnap)
		if m.Opts.Blame {
			res.Blame = m.blameSat(s.blameAsserts, s.blameOrigins, res.Counterexample.Assignment)
			msnap = ledger.Child("blame").Charge(msnap)
		}
	default:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: solver returned %v", status)
	}
	if m.Opts.ProfileOrigins {
		if outcome != nil {
			res.OriginProfile = m.profileFromOutcome(outcome)
		} else {
			res.OriginProfile = m.originProfile(s.ss.Solver())
		}
	}
	ledger.Charge(msnap)
	res.Cost = ledger
	return res, nil
}
