package core

import (
	"context"
	"testing"

	"repro/internal/smt"
	"repro/internal/testnets"
)

func encodeNet(t *testing.T, net *testnets.Net, opts Options) *Model {
	t.Helper()
	m, err := Encode(net.Graph, opts)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return m
}

func TestCompileCachesUntilAssertsGrow(t *testing.T) {
	m := encodeNet(t, testnets.Figure2(), DefaultOptions())
	cn1 := m.Compile()
	cn2 := m.Compile()
	if cn1 != cn2 {
		t.Fatal("repeated Compile with unchanged asserts must return the cached artifact")
	}
	if got := m.CompileCount(); got != 1 {
		t.Fatalf("CompileCount=%d, want 1", got)
	}
	if cn1.BaseLen != len(m.Asserts) {
		t.Fatalf("BaseLen=%d, want %d", cn1.BaseLen, len(m.Asserts))
	}

	// Growing the assert list (what property builders do) invalidates
	// the cache.
	m.AssertExtra(m.NoFailures())
	cn3 := m.Compile()
	if cn3 == cn1 {
		t.Fatal("Compile must rebuild after Asserts grows")
	}
	if got := m.CompileCount(); got != 2 {
		t.Fatalf("CompileCount=%d, want 2", got)
	}
}

func TestCompileCacheSeesSplicedAsserts(t *testing.T) {
	// EquivPair.Check temporarily swaps the assert list and restores it
	// afterwards; the cache must notice even when the length matches.
	m := encodeNet(t, testnets.Figure2(), DefaultOptions())
	cn1 := m.Compile()
	saved := m.Asserts
	replaced := append([]*smt.Term(nil), saved...)
	replaced[len(replaced)-1] = m.NoFailures()
	m.Asserts = replaced
	cn2 := m.Compile()
	if cn2 == cn1 {
		t.Fatal("Compile must rebuild when the last assert changes at equal length")
	}
	m.Asserts = saved
	cn3 := m.Compile()
	if cn3 == cn2 {
		t.Fatal("Compile must rebuild again when the original asserts are restored")
	}
}

func TestCompileHashContentAddressed(t *testing.T) {
	// Structurally identical networks hash equally across contexts...
	m1 := encodeNet(t, testnets.Figure2(), DefaultOptions())
	m2 := encodeNet(t, testnets.Figure2(), DefaultOptions())
	h1, h2 := m1.Compile().Hash, m2.Compile().Hash
	if h1 == "" || h1 != h2 {
		t.Fatalf("same network must compile to the same hash: %q vs %q", h1, h2)
	}
	// ...and different networks (or pipelines) hash differently.
	m3 := encodeNet(t, testnets.OSPFChain(3), DefaultOptions())
	if h3 := m3.Compile().Hash; h3 == h1 {
		t.Fatal("different networks must not collide")
	}
	m4 := encodeNet(t, testnets.Figure2(), Options{Passes: "none"})
	if h4 := m4.Compile().Hash; h4 == h1 {
		t.Fatal("different pipelines produce different systems")
	}
}

func TestCheckGoalMatchesCheck(t *testing.T) {
	net := testnets.OSPFChain(3)
	dst := testnets.StubIP(3)

	mc := encodeNet(t, net, DefaultOptions())
	prop := mc.Reach(mc.Main, false)["R1"]
	want, err := mc.Check(prop, mc.NoFailures(), mc.Ctx.Eq(mc.DstIP, mc.Ctx.BV(uint64(dst), WidthIP)))
	if err != nil {
		t.Fatal(err)
	}

	mg := encodeNet(t, net, DefaultOptions())
	cn := mg.Compile()
	prop = mg.Reach(mg.Main, false)["R1"]
	got, err := mg.CheckGoal(context.Background(), cn, prop,
		mg.NoFailures(), mg.Ctx.Eq(mg.DstIP, mg.Ctx.BV(uint64(dst), WidthIP)))
	if err != nil {
		t.Fatal(err)
	}
	if want.Verified != got.Verified {
		t.Fatalf("CheckGoal verdict %v, Check verdict %v", got.Verified, want.Verified)
	}
	if sum := got.EncodeElapsed + got.SimplifyElapsed + got.SolveElapsed + got.CertifyElapsed; got.Elapsed != sum {
		t.Fatalf("CheckGoal elapsed %v != phase sum %v", got.Elapsed, sum)
	}
}

func TestResultPassStatsItemized(t *testing.T) {
	m := encodeNet(t, testnets.Figure2(), DefaultOptions())
	res, err := m.Check(m.Ctx.True())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PassStats) == 0 {
		t.Fatal("first check must itemize the compile passes it ran")
	}
	names := map[string]bool{}
	for _, st := range res.PassStats {
		names[st.Pass] = true
	}
	for _, want := range []string{"fold", "cse", "propagate", "coi", "cnf-simplify"} {
		if !names[want] {
			t.Fatalf("PassStats missing %q: %+v", want, res.PassStats)
		}
	}

	// A second check reuses the cached artifact: no compile rows, but
	// the per-query rows stay.
	res2, err := m.Check(m.Ctx.True())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res2.PassStats {
		if st.Pass == "fold" || st.Pass == "cse" || st.Pass == "propagate" {
			t.Fatalf("cached check must not charge compile passes: %+v", res2.PassStats)
		}
	}
	if got := m.CompileCount(); got != 1 {
		t.Fatalf("CompileCount=%d, want 1 across repeated checks", got)
	}
}

func TestCheckContextCancellation(t *testing.T) {
	m := encodeNet(t, testnets.Figure2(), DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.CheckContext(ctx, m.Ctx.True()); err == nil {
		t.Fatal("canceled context must fail the check")
	}
}
