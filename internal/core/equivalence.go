package core

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/smt"
)

// sessionDesc is the sort key used to pair up sessions of two routers for
// local equivalence: sessions are matched by kind and remote AS, in order.
type sessionDesc struct {
	kind protograph.BGPSessionKind
	asn  uint32
	sess *protograph.BGPSession
}

func sessionDescsOf(g *protograph.Graph, n string) []sessionDesc {
	node := g.Topo.Node(n)
	var out []sessionDesc
	for _, s := range g.SessionsOf(node) {
		d := sessionDesc{kind: s.Kind, sess: s}
		if s.Kind == protograph.EBGPExternal {
			d.asn = s.Ext.ASN
		} else {
			d.asn = g.Configs[s.RemoteEnd(node).Name].BGP.ASN
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].kind != out[j].kind {
			return out[i].kind < out[j].kind
		}
		return out[i].asn < out[j].asn
	})
	return out
}

// sameShape reports whether two session descriptors can be paired for the
// equivalence check: same kind. Remote AS numbers are allowed to differ —
// two spine routers in a fabric peer with different routers but must
// still apply equivalent policy.
func sameShape(a, b sessionDesc) bool { return a.kind == b.kind }

// LocalEquivalenceResult reports whether two routers in the same role are
// behaviourally equivalent, and if not, where they diverge.
type LocalEquivalenceResult struct {
	Equivalent bool
	// Difference describes the first divergence found.
	Difference string
}

// CheckLocalEquivalence decides whether two routers treat equal inputs
// equally (§5, local equivalence): given pairwise-equal peer
// advertisements their import filters must produce equal records, their
// export filters must produce equal exports, and their interface ACLs
// must make the same packet decisions. Sessions are paired by (kind,
// remote AS) in sorted order; a peer-count mismatch is a difference.
func CheckLocalEquivalence(g *protograph.Graph, a, b string, opts Options) (*LocalEquivalenceResult, error) {
	ca, cb := g.Configs[a], g.Configs[b]
	if ca == nil || cb == nil {
		return nil, fmt.Errorf("core: unknown router %q or %q", a, b)
	}
	sa, sb := sessionDescsOf(g, a), sessionDescsOf(g, b)
	if len(sa) != len(sb) {
		return &LocalEquivalenceResult{Difference: fmt.Sprintf("%s has %d BGP sessions, %s has %d", a, len(sa), b, len(sb))}, nil
	}

	// A miniature model: a shared symbolic destination and one symbolic
	// input record per session pair, fed through both routers' filters.
	opts.KeepAllCommunities = true
	m := &Model{Ctx: smt.NewContext(), G: g, Opts: opts}
	if err := m.analyze(); err != nil {
		return nil, err
	}
	c := m.Ctx
	dst := c.BVVar("eq.dstIP", WidthIP)
	sl := &Slice{Name: "eq", DstIP: dst}
	for i := range sa {
		if !sameShape(sa[i], sb[i]) {
			return &LocalEquivalenceResult{Difference: fmt.Sprintf("session %d differs: %s vs %s", i, describeSession(sa[i]), describeSession(sb[i]))}, nil
		}
		in := m.recVar(fmt.Sprintf("eq|in%d", i), true, uint64(20))
		stanzaA := sa[i].sess.StanzaOf(g.Topo.Node(a))
		stanzaB := sb[i].sess.StanzaOf(g.Topo.Node(b))
		outA, outB := in, in
		if stanzaA.InMap != "" {
			outA = m.applyRouteMap(sl, ca, stanzaA.InMap, in)
		}
		if stanzaB.InMap != "" {
			outB = m.applyRouteMap(sl, cb, stanzaB.InMap, in)
		}
		if diff := recordsDiffer(c, outA, outB); diff != "" {
			return &LocalEquivalenceResult{Difference: fmt.Sprintf("import policy for session %d (%s): %s", i, describeSession(sa[i]), diff)}, nil
		}
		// Export direction: a symbolic best record through each OutMap.
		best := m.recVar(fmt.Sprintf("eq|best%d", i), true, uint64(20))
		expA, expB := best, best
		if stanzaA.OutMap != "" {
			expA = m.applyRouteMap(sl, ca, stanzaA.OutMap, best)
		}
		if stanzaB.OutMap != "" {
			expB = m.applyRouteMap(sl, cb, stanzaB.OutMap, best)
		}
		if diff := recordsDiffer(c, expA, expB); diff != "" {
			return &LocalEquivalenceResult{Difference: fmt.Sprintf("export policy for session %d (%s): %s", i, describeSession(sa[i]), diff)}, nil
		}
	}

	// Data-plane behaviour: paired interfaces (sorted by name) must make
	// the same ACL decisions on a symbolic packet.
	pkt := pktFields{
		src:   c.BVVar("eq.src", WidthIP),
		dst:   dst,
		sport: c.BVVar("eq.sport", 16),
		dport: c.BVVar("eq.dport", 16),
		proto: c.BVVar("eq.proto", 8),
	}
	ifA, ifB := sortedIfaces(ca), sortedIfaces(cb)
	if len(ifA) != len(ifB) {
		return &LocalEquivalenceResult{Difference: fmt.Sprintf("%s has %d interfaces, %s has %d", a, len(ifA), b, len(ifB))}, nil
	}
	for i := range ifA {
		for _, inbound := range []bool{true, false} {
			pa := m.aclPermits(ca, ifA[i], inbound, pkt)
			pb := m.aclPermits(cb, ifB[i], inbound, pkt)
			if differs(c, pa, pb) {
				dir := "out"
				if inbound {
					dir = "in"
				}
				return &LocalEquivalenceResult{
					Difference: fmt.Sprintf("ACL behaviour differs on %s/%s vs %s/%s (%s)", a, ifA[i], b, ifB[i], dir),
				}, nil
			}
		}
	}
	return &LocalEquivalenceResult{Equivalent: true}, nil
}

func describeSession(d sessionDesc) string {
	switch d.kind {
	case protograph.EBGPExternal:
		return "external AS " + fmt.Sprint(d.asn)
	case protograph.IBGP:
		return "iBGP"
	default:
		return "eBGP AS " + fmt.Sprint(d.asn)
	}
}

func sortedIfaces(c *config.Router) []string {
	out := make([]string, 0, len(c.Interfaces))
	for _, i := range c.Interfaces {
		out = append(out, i.Name)
	}
	sort.Strings(out)
	return out
}

// recordsDiffer checks satisfiability of "the two derived records differ"
// and describes the differing field.
func recordsDiffer(c *smt.Context, a, b *Record) string {
	type field struct {
		name string
		t    *smt.Term
	}
	fields := []field{
		{"validity", c.Eq(a.Valid, b.Valid)},
		{"local-preference", c.Implies(c.And(a.Valid, b.Valid), c.Eq(a.LocalPref, b.LocalPref))},
		{"metric", c.Implies(c.And(a.Valid, b.Valid), c.Eq(a.Metric, b.Metric))},
		{"MED", c.Implies(c.And(a.Valid, b.Valid), c.Eq(a.MED, b.MED))},
	}
	for _, cm := range sortedCommKeys(a.Comms) {
		if bBit, ok := b.Comms[cm]; ok {
			fields = append(fields, field{"community " + cm,
				c.Implies(c.And(a.Valid, b.Valid), c.Eq(a.Comms[cm], bBit))})
		}
	}
	for _, f := range fields {
		if differs(c, f.t, c.True()) {
			return f.name
		}
	}
	return ""
}

func sortedCommKeys(m map[string]*smt.Term) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// differs checks whether two boolean terms can disagree.
func differs(c *smt.Context, a, b *smt.Term) bool {
	q := c.Distinct(a, b)
	if q == c.False() {
		return false
	}
	if q == c.True() {
		return true
	}
	// A fresh solver per query keeps queries independent.
	s := smt.NewSolver(c)
	s.Assert(q)
	return s.Check().String() == "sat"
}

// EquivPair is two network copies encoded in one context, the substrate
// for full equivalence and fault-invariance checking (§5).
type EquivPair struct {
	Ctx  *smt.Context
	A, B *Model
}

// EncodePair encodes the two graphs under one context with linked
// symbolic packets.
func EncodePair(ga, gb *protograph.Graph, opts Options) (*EquivPair, error) {
	ctx := smt.NewContext()
	ma, err := EncodeWithContext(ga, opts, ctx, "A|")
	if err != nil {
		return nil, err
	}
	mb, err := EncodeWithContext(gb, opts, ctx, "B|")
	if err != nil {
		return nil, err
	}
	// Same packet in both copies.
	ma.assert(ctx.Eq(ma.DstIP, mb.DstIP))
	ma.assert(ctx.Eq(ma.SrcIP, mb.SrcIP))
	ma.assert(ctx.Eq(ma.SrcPort, mb.SrcPort))
	ma.assert(ctx.Eq(ma.DstPort, mb.DstPort))
	ma.assert(ctx.Eq(ma.IPProto, mb.IPProto))
	return &EquivPair{Ctx: ctx, A: ma, B: mb}, nil
}

// LinkEnvironments constrains the two copies to see identical external
// announcements (matched by peer name). Returns an error if the peer sets
// differ.
func (p *EquivPair) LinkEnvironments() error {
	c := p.Ctx
	for name, ra := range p.A.Main.Env {
		rb, ok := p.B.Main.Env[name]
		if !ok {
			return fmt.Errorf("core: external peer %q missing in second network", name)
		}
		p.A.assert(c.Eq(ra.Valid, rb.Valid))
		p.A.assert(c.Eq(ra.PrefixLen, rb.PrefixLen))
		p.A.assert(c.Eq(ra.Metric, rb.Metric))
		p.A.assert(c.Eq(ra.MED, rb.MED))
		for cm, bitA := range ra.Comms {
			if bitB, ok := rb.Comms[cm]; ok {
				p.A.assert(c.Eq(bitA, bitB))
			}
		}
	}
	for name := range p.B.Main.Env {
		if _, ok := p.A.Main.Env[name]; !ok {
			return fmt.Errorf("core: external peer %q missing in first network", name)
		}
	}
	return nil
}

// LinkFailures constrains both copies to the same link failures (matched
// by canonical id).
func (p *EquivPair) LinkFailures() {
	c := p.Ctx
	for id, fa := range p.A.Failed {
		if fb, ok := p.B.Failed[id]; ok {
			p.A.assert(c.Eq(fa, fb))
		}
	}
}

// FullEquivalence returns the property that both copies make identical
// data-plane decisions and identical exports to external peers.
func (p *EquivPair) FullEquivalence() *smt.Term {
	c := p.Ctx
	out := c.True()
	for _, n := range p.A.G.Topo.Nodes {
		fa := p.A.Main.DataFwd[n.Name]
		fb := p.B.Main.DataFwd[n.Name]
		for _, h := range sortedHops(fa) {
			if tb, ok := fb[h]; ok {
				out = c.And(out, c.Eq(fa[h], tb))
			}
		}
		out = c.And(out, c.Eq(p.A.Main.DeliveredLocal[n.Name], p.B.Main.DeliveredLocal[n.Name]))
	}
	for name, ra := range p.A.Main.ExtExports {
		if rb, ok := p.B.Main.ExtExports[name]; ok {
			out = c.And(out,
				c.Eq(ra.Valid, rb.Valid),
				c.Implies(c.And(ra.Valid, rb.Valid),
					c.And(c.Eq(ra.PrefixLen, rb.PrefixLen), c.Eq(ra.Metric, rb.Metric))))
		}
	}
	return out
}

// FaultInvariance builds the §5 fault-invariance check for one network:
// copy A runs failure-free, copy B with at most k failures, identical
// environments, and the property is that every router's reachability is
// unchanged.
func FaultInvariance(g *protograph.Graph, opts Options, k int) (*EquivPair, *smt.Term, error) {
	p, err := EncodePair(g, g, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := p.LinkEnvironments(); err != nil {
		return nil, nil, err
	}
	c := p.Ctx
	p.A.assert(p.A.NoFailures())
	p.A.assert(p.B.AtMostFailures(k))
	reachA := p.A.Reach(p.A.Main, true)
	reachB := p.B.Reach(p.B.Main, true)
	prop := c.True()
	for _, n := range g.Topo.Nodes {
		prop = c.And(prop, c.Iff(reachA[n.Name], reachB[n.Name]))
	}
	return p, prop, nil
}

// Check decides a property over the pair (both copies' constraints are
// asserted). Counterexamples merge both copies' environments: failed
// links of the second copy are tagged "B:".
func (p *EquivPair) Check(property *smt.Term, assumptions ...*smt.Term) (*Result, error) {
	all := append([]*smt.Term{}, p.B.Asserts...)
	saved := p.A.Asserts
	savedOrigins := p.A.AssertOrigins
	p.A.Asserts = append(append([]*smt.Term{}, saved...), all...)
	p.A.AssertOrigins = append(append([]provenance.Origin{}, savedOrigins...), p.B.AssertOrigins...)
	res, err := p.A.Check(property, assumptions...)
	p.A.Asserts = saved
	p.A.AssertOrigins = savedOrigins
	if err == nil && res.Counterexample != nil {
		bEnv := p.B.Decode(res.Counterexample.Assignment).Env
		for id := range bEnv.FailedLinks {
			res.Counterexample.Env.FailedLinks["B:"+id] = true
		}
	}
	return res, err
}
