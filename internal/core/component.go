package core

import (
	"fmt"
	"sort"

	"repro/internal/network"
	"repro/internal/obs/cost"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/smt"
)

// TierModular marks a Result composed from per-component checks by the
// modular assume/guarantee pipeline (internal/modular).
const TierModular = "modular"

// EnvPin fixes one external peer's symbolic announcement to a concrete
// route (Valid with a prefix and metric, no MED, no communities) or to
// silence (!Valid). It is the interface-contract vocabulary of the
// modular pipeline: a cut eBGP session becomes an environment record in
// the importing component, and the neighbor's guarantee becomes a pin on
// that record.
type EnvPin struct {
	// Ext names the external peer (topology External.Name) carrying the
	// pinned announcement.
	Ext   string
	Valid bool
	// Prefix is the announced prefix; only significant when Valid.
	Prefix network.Prefix
	// Metric is the AS-path length of the announcement at the cut.
	Metric int
}

// PinEnv returns assumption terms forcing each listed environment record
// to its pinned value. Unlike PinEnvironment it only touches the listed
// externals (others stay symbolic), only the main slice, and returns
// assumptions instead of growing Asserts, so one compiled component can
// be checked under many different pin subsets.
func (m *Model) PinEnv(pins []EnvPin) ([]*smt.Term, error) {
	var out []*smt.Term
	for _, p := range pins {
		rec := m.Main.Env[p.Ext]
		if rec == nil {
			return nil, fmt.Errorf("core: no environment record for external %q", p.Ext)
		}
		out = append(out, m.pinRecord(rec, p)...)
	}
	return out, nil
}

// ExportMatches returns the guarantee term for one cut session: the
// record the component exports toward ext equals the pinned contract.
// A !Valid pin means the component must stay silent toward ext.
func (m *Model) ExportMatches(ext string, p EnvPin) (*smt.Term, error) {
	rec := m.Main.ExtExports[ext]
	if rec == nil {
		return nil, fmt.Errorf("core: no export record for external %q", ext)
	}
	if !p.Valid {
		return m.Ctx.Not(rec.Valid), nil
	}
	return m.Ctx.And(m.pinRecord(rec, p)...), nil
}

// EnvQuarantined states that no listed external's announcement survives
// the import policy: the post-import record is invalid for every ext.
// Length-arithmetic composition uses it to show real externals cannot
// contribute paths to the goal destination.
func (m *Model) EnvQuarantined(exts []string) (*smt.Term, error) {
	terms := make([]*smt.Term, 0, len(exts))
	for _, e := range exts {
		rec := m.Main.ExtImports[e]
		if rec == nil {
			return nil, fmt.Errorf("core: no import record for external %q", e)
		}
		terms = append(terms, m.Ctx.Not(rec.Valid))
	}
	return m.Ctx.And(terms...), nil
}

// pinRecord equates a record with a pin. For a Valid pin the route is
// present with the pinned prefix length and metric, MED zero and no
// communities — exactly what an eBGP hop under the modular residue rules
// (no MED-setting maps, no community usage) puts on the wire. Constant
// record fields (sliced models) fold away harmlessly.
func (m *Model) pinRecord(rec *Record, p EnvPin) []*smt.Term {
	c := m.Ctx
	if !p.Valid {
		return []*smt.Term{c.Not(rec.Valid)}
	}
	out := []*smt.Term{
		rec.Valid,
		c.Eq(rec.PrefixLen, c.BV(uint64(p.Prefix.Len), WidthPrefixLen)),
		c.Eq(rec.Metric, c.BV(uint64(p.Metric), WidthMetric)),
		c.Eq(rec.MED, c.BV(0, WidthMED)),
	}
	if rec.Prefix != nil {
		out = append(out, c.Eq(rec.Prefix, c.BV(uint64(p.Prefix.Addr), WidthIP)))
	}
	comms := make([]string, 0, len(rec.Comms))
	for cm := range rec.Comms {
		comms = append(comms, cm)
	}
	sort.Strings(comms)
	for _, cm := range comms {
		bit := rec.Comms[cm]
		if bit.Op() != smt.OpBoolVar {
			continue
		}
		out = append(out, c.Not(bit))
	}
	return out
}

// EnvContractLB returns the invariant lower bound assumed of every cut
// import, valid or not: if the peer announces at all, the announcement
// carries the contract prefix, MED zero and an AS-path length no shorter
// than the contract metric. Under the modular residue rules every
// announcement for the goal prefix is relayed hop-by-hop from an
// originator with the metric incremented per eBGP hop, so the shortest
// possible path length — the contract metric — bounds all of them. This
// weaker assumption breaks the circularity in discharging guarantees:
// higher-strata imports stay otherwise free, yet cannot advertise
// impossibly short paths.
func (m *Model) EnvContractLB(p EnvPin) (*smt.Term, error) {
	rec := m.Main.Env[p.Ext]
	if rec == nil {
		return nil, fmt.Errorf("core: no environment record for external %q", p.Ext)
	}
	c := m.Ctx
	if !p.Valid {
		return c.Not(rec.Valid), nil
	}
	body := []*smt.Term{
		c.Eq(rec.PrefixLen, c.BV(uint64(p.Prefix.Len), WidthPrefixLen)),
		c.Ule(c.BV(uint64(p.Metric), WidthMetric), rec.Metric),
		c.Eq(rec.MED, c.BV(0, WidthMED)),
	}
	if rec.Prefix != nil {
		body = append(body, c.Eq(rec.Prefix, c.BV(uint64(p.Prefix.Addr), WidthIP)))
	}
	return c.Implies(rec.Valid, c.And(body...)), nil
}

// ReachVia instruments the slice with reachability booleans that count
// local delivery and exits toward the allowed externals only. It is the
// component-local obligation of the modular composition: an allowed exit
// is a cut session whose far side holds a valid contract, so crossing it
// hands the packet to a neighbor component that (by its own obligation)
// delivers. Exits toward real externals or invalid-contract cuts do not
// count. The encoding copies Reach's well-founded scheme: strictly
// decreasing distance witnesses rule out loop-supported reachability.
//
// Each call mints fresh variables (no memoization); call it once per
// model and reuse the returned map.
func (m *Model) ReachVia(sl *Slice, allowed map[string]bool) map[string]*smt.Term {
	c := m.Ctx
	w := bitsFor(len(m.G.Topo.Nodes) + 2)
	reach := map[string]*smt.Term{}
	dist := map[string]*smt.Term{}
	const tag = "reachvia"
	for _, n := range m.G.Topo.Nodes {
		reach[n.Name] = c.BoolVar(sl.Name + "|" + tag + "|" + n.Name)
		dist[n.Name] = c.BVVar(sl.Name+"|"+tag+"dist|"+n.Name, w)
	}
	for _, n := range m.G.Topo.Nodes {
		m.setOrigin(provenance.Origin{Router: n.Name, Kind: "reach", Name: tag})
		base := sl.DeliveredLocal[n.Name]
		alts := []*smt.Term{base}
		m.assert(c.Implies(base, reach[n.Name]))
		for _, h := range sortedHops(sl.DataFwd[n.Name]) {
			t := sl.DataFwd[n.Name][h]
			if h.Ext != "" {
				if allowed[h.Ext] {
					alts = append(alts, t)
					m.assert(c.Implies(t, reach[n.Name]))
				}
				continue
			}
			alts = append(alts, c.And(t, reach[h.Node], c.Ult(dist[h.Node], dist[n.Name])))
			m.assert(c.Implies(c.And(t, reach[h.Node]), reach[n.Name]))
		}
		m.assert(c.Implies(reach[n.Name], c.Or(alts...)))
	}
	m.setOrigin(provenance.Origin{})
	return reach
}

// CompileComponent encodes a component's protocol graph and compiles it
// through the standard pass pipeline. The graph must already be cut: far
// ends of boundary sessions appear as externals (config.BuildTopology
// infers them for BGP neighbors outside the subset), so the encoder's
// ordinary environment machinery provides the assume-side records.
func CompileComponent(g *protograph.Graph, opts Options) (*Model, *CompiledNetwork, error) {
	m, err := Encode(g, opts)
	if err != nil {
		return nil, nil, err
	}
	return m, m.Compile(), nil
}

// ComponentVerdict is one component-local check outcome tagged with its
// role in the composition.
type ComponentVerdict struct {
	// Component indexes the cut's component list.
	Component int
	// Check names the component-local obligation ("discharge[m=3]",
	// "obligation:src", "property", ...).
	Check string
	// Contract holds the violated contract's session ID when a
	// discharge check falsifies; empty otherwise.
	Contract string
	Res      *Result
}

// ComposeVerdicts conjoins component-local results into one composed
// Result: verified iff every component check verified, blame the deduped
// union of component blames, elapsed the summed solver work (the
// sequential cost; wall-clock with parallelism is the scheduler's story)
// and SAT sizes the per-check peak.
func ComposeVerdicts(vs []*ComponentVerdict) *Result {
	out := &Result{Verified: true, Tier: TierModular, Cost: cost.New("goal")}
	var blame []provenance.Origin
	for _, v := range vs {
		r := v.Res
		if r == nil {
			continue
		}
		// Per-component ledgers merge like origin profiles: same-name
		// phase children fold, so the composed tree prices the whole
		// modular run with the familiar phase vocabulary.
		out.Cost.Merge(r.Cost)
		out.Elapsed += r.Elapsed
		out.EncodeElapsed += r.EncodeElapsed
		out.SimplifyElapsed += r.SimplifyElapsed
		out.SolveElapsed += r.SolveElapsed
		out.CertifyElapsed += r.CertifyElapsed
		if r.SATVars > out.SATVars {
			out.SATVars = r.SATVars
		}
		if r.SATClauses > out.SATClauses {
			out.SATClauses = r.SATClauses
		}
		out.Stats.Conflicts += r.Stats.Conflicts
		out.Stats.Decisions += r.Stats.Decisions
		out.Stats.Propagations += r.Stats.Propagations
		blame = append(blame, r.Blame...)
		if !r.Verified && out.Verified {
			out.Verified = false
			out.Counterexample = r.Counterexample
		}
	}
	out.Blame = provenance.DedupeOrigins(blame)
	// Keep the Elapsed >= phase-sum identity that harness tables assume.
	if sum := out.EncodeElapsed + out.SimplifyElapsed + out.SolveElapsed + out.CertifyElapsed; out.Elapsed < sum {
		out.Elapsed = sum
	}
	return out
}
