package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/smt"
	"repro/internal/testnets"
)

// sessionQueries builds a mixed suite of properties over the Figure 2
// network: some verified, some violated, some with instrumentation-heavy
// builders (Tainted, PathLengths) that append model asserts.
func sessionQueries(t *testing.T, m *Model) []struct {
	name        string
	property    *smt.Term
	assumptions []*smt.Term
} {
	t.Helper()
	c := m.Ctx
	quiet := m.NoFailures()
	for _, n := range []string{"N1", "N2", "N3"} {
		quiet = c.And(quiet, c.Not(m.Main.Env[n].Valid))
	}
	// dst ∈ S3 = 10.3.3.0/24, the subnet attached to R3.
	dstS3 := c.Eq(c.BVAnd(m.DstIP, c.BV(uint64(0xffffff00), WidthIP)), c.BV(uint64(network.MustParseIP("10.3.3.0")), WidthIP))
	reach := m.Reach(m.Main, false)
	return []struct {
		name        string
		property    *smt.Term
		assumptions []*smt.Term
	}{
		{"reach-quiet", c.Implies(dstS3, reach["R1"]), []*smt.Term{quiet}},
		{"reach-any-env", c.Implies(dstS3, reach["R1"]), []*smt.Term{m.NoFailures()}},
		{"taint", c.True(), []*smt.Term{m.Tainted(m.Main, "R1")["R3"], m.NoFailures()}},
		{"lengths", func() *smt.Term {
			ln, w := m.PathLengths(m.Main)
			return c.Implies(c.And(dstS3, reach["R2"]), c.Ule(ln["R2"], c.BV(3, w)))
		}(), []*smt.Term{quiet}},
		{"trivial-false", c.False(), []*smt.Term{}},
	}
}

// TestSessionMatchesFreshSolver runs the same query suite through
// Model.Check (fresh solver each time) and Session.Check, and demands
// identical verdicts with the shared formula blasted exactly once.
func TestSessionMatchesFreshSolver(t *testing.T) {
	net := testnets.Figure2()

	// Two models so the fresh flow's instrumentation asserts cannot
	// contaminate the session's model (builders mutate Model.Asserts).
	mFresh, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mSess, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sess := mSess.NewSession()

	fresh := sessionQueries(t, mFresh)
	inc := sessionQueries(t, mSess)
	for i := range fresh {
		want, err := mFresh.Check(fresh[i].property, fresh[i].assumptions...)
		if err != nil {
			t.Fatalf("%s fresh: %v", fresh[i].name, err)
		}
		got, err := sess.Check(inc[i].property, inc[i].assumptions...)
		if err != nil {
			t.Fatalf("%s session: %v", inc[i].name, err)
		}
		if got.Verified != want.Verified {
			t.Fatalf("%s: session verified=%v, fresh verified=%v", inc[i].name, got.Verified, want.Verified)
		}
		if !got.Verified && got.Counterexample == nil {
			t.Fatalf("%s: violated without counterexample", inc[i].name)
		}
	}
	if sess.SharedBlasts() != 1 {
		t.Fatalf("shared blasts=%d, want 1 after %d checks", sess.SharedBlasts(), sess.Checks())
	}
	if sess.Checks() != len(inc) {
		t.Fatalf("checks=%d, want %d", sess.Checks(), len(inc))
	}
}

// TestSessionCounterexampleReplays decodes a session counterexample and
// confirms the concrete simulator reproduces it, i.e. session model
// extraction is as trustworthy as the fresh-solver path.
func TestSessionCounterexampleReplays(t *testing.T) {
	net := testnets.Hijackable(false)
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession()
	cond := m.Ctx.And(
		m.Main.CtrlFwd["R2"][Hop{Ext: "N"}],
		m.NoFailures(),
		m.Ctx.Eq(m.DstIP, m.Ctx.BV(uint64(network.MustParseIP("192.168.50.1")), WidthIP)),
	)
	res, err := sess.Check(m.Ctx.Not(cond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified || res.Counterexample == nil {
		t.Fatal("expected a witness for the hijack condition")
	}
	diffs, err := m.ReplayAgrees(res.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("replay disagrees with session counterexample: %v", diffs)
	}
}

// TestResultElapsedIdentity pins the compatibility contract of the result
// tables: Elapsed is exactly the sum of the phase timings (encode,
// simplify, solve, and — when a proof is checked — certify), for both the
// fresh-solver path and the session path.
func TestResultElapsedIdentity(t *testing.T) {
	net := testnets.Figure2()
	check := func(name string, res *Result) {
		t.Helper()
		sum := res.EncodeElapsed + res.SimplifyElapsed + res.SolveElapsed + res.CertifyElapsed
		if res.Elapsed != sum {
			t.Fatalf("%s: Elapsed=%v but Encode+Simplify+Solve+Certify=%v", name, res.Elapsed, sum)
		}
	}
	for _, tc := range []struct {
		name    string
		certify bool
	}{
		{"plain", false},
		{"certify", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Certify = tc.certify
			m, err := Encode(net.Graph, opts)
			if err != nil {
				t.Fatal(err)
			}
			reach := m.Reach(m.Main, false)
			p := m.Ctx.Or(reach["R1"], m.Ctx.Not(reach["R1"]))

			res, err := m.Check(p, m.NoFailures())
			if err != nil {
				t.Fatal(err)
			}
			check("fresh", res)
			if tc.certify && res.CertifyElapsed == 0 {
				t.Fatal("certified verified check reported zero CertifyElapsed")
			}

			sess := m.NewSession()
			for i := 0; i < 3; i++ {
				res, err := sess.Check(p, m.NoFailures())
				if err != nil {
					t.Fatal(err)
				}
				check("session", res)
			}
		})
	}
}

// TestSessionCheckContextCanceled verifies an already-expired context is
// reported as its error without touching the solver, and that the session
// still answers afterwards.
func TestSessionCheckContextCanceled(t *testing.T) {
	net := testnets.Figure2()
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sess := m.NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.CheckContext(ctx, m.Ctx.False()); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// A live context still works, and the canceled attempt left no state.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	res, err := sess.CheckContext(ctx2, m.Ctx.True())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("true property must verify")
	}
}
