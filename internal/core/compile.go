package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/smt"
	"repro/internal/smt/passes"
)

// Encoding-time pass names accepted by Options.Passes alongside the
// term-level passes of internal/smt/passes. "hoist" and "slice" are the
// paper's §6.1/§6.2 rewrites applied while the model is built; the term
// passes run afterwards over the finished assert list.
const (
	PassHoist = "hoist"
	PassSlice = "slice"
)

// PassNames lists every pass name accepted by Options.Passes, in
// pipeline order: encoding passes first, then the term-level passes.
func PassNames() []string {
	return append([]string{PassHoist, PassSlice}, passes.Names()...)
}

// ValidatePasses checks an Options.Passes value without building a
// model, so commands can reject a bad -passes flag at startup.
func ValidatePasses(s string) error {
	_, err := resolvePasses(Options{Passes: s})
	return err
}

// passSpec is Options.Passes resolved into a concrete pipeline: the
// encoding-time switches, the property-agnostic compile passes, and
// whether goal-relative cone-of-influence pruning runs at check time.
type passSpec struct {
	hoist, slice bool
	compile      []string // fold/cse/propagate, canonical order
	coi          bool
}

// resolvePasses interprets Options.Passes. The empty string defers to
// the deprecated Hoisting/Slicing booleans for the encoding passes and
// enables every term-level pass (the modern default); "all" and "none"
// switch everything on or off; otherwise a comma-separated subset of
// PassNames selects exactly the listed passes.
func resolvePasses(o Options) (passSpec, error) {
	all := passSpec{
		hoist:   true,
		slice:   true,
		compile: []string{passes.Fold, passes.CSE, passes.Propagate},
		coi:     true,
	}
	switch o.Passes {
	case "":
		all.hoist, all.slice = o.Hoisting, o.Slicing
		return all, nil
	case "all":
		return all, nil
	case "none":
		return passSpec{}, nil
	}
	var spec passSpec
	for _, name := range strings.Split(o.Passes, ",") {
		switch strings.TrimSpace(name) {
		case PassHoist:
			spec.hoist = true
		case PassSlice:
			spec.slice = true
		case passes.Fold:
			spec.compile = append(spec.compile, passes.Fold)
		case passes.CSE:
			spec.compile = append(spec.compile, passes.CSE)
		case passes.Propagate:
			spec.compile = append(spec.compile, passes.Propagate)
		case passes.COI:
			spec.coi = true
		case "":
		default:
			return passSpec{}, fmt.Errorf("core: unknown pass %q (known: %s, all, none)",
				strings.TrimSpace(name), strings.Join(PassNames(), ", "))
		}
	}
	return spec, nil
}

// CompiledNetwork is the property-agnostic compilation artifact: the
// model's constraint system N after the term-level passes, content-
// addressed so callers (the service's per-network cache, cross-session
// reuse) can recognize semantically identical networks without
// comparing configurations. It is immutable once built.
type CompiledNetwork struct {
	// Asserts is the post-pass constraint system, ready to blast.
	Asserts []*smt.Term
	// Hash is the hex SHA-256 of the asserts' DAG serialization — equal
	// hashes mean structurally identical compiled systems, even across
	// different smt.Contexts.
	Hash string
	// BaseLen is the length of Model.Asserts this artifact covers.
	// Property builders append instrumentation constraints; a model
	// whose assert list has grown past BaseLen recompiles on demand,
	// while sessions blast the suffix incrementally instead.
	BaseLen int
	// PassStats itemizes the compile passes that produced the artifact.
	PassStats []passes.Stats
	// Elapsed is the total compile pipeline time.
	Elapsed time.Duration
	// Origins runs parallel to Asserts: the provenance base ids (interned
	// in the model's Prov table) each post-pass assert descends from.
	Origins [][]int32
}

// Compile runs the property-agnostic term passes (fold, cse, propagate
// as enabled by Options.Passes) over the model's current constraint
// system and returns the content-addressed artifact. The result is
// cached on the model: repeated calls are free until Asserts grows or
// is replaced, so every session and fresh check of one model shares a
// single compilation. Goal-relative pruning (coi) is not part of the
// artifact — it runs per query in CheckGoal.
func (m *Model) Compile() *CompiledNetwork {
	if cn := m.compiled; cn != nil && cn.BaseLen == len(m.Asserts) &&
		(cn.BaseLen == 0 || m.Asserts[cn.BaseLen-1] == m.compiledLast) {
		return cn
	}
	sp := m.Obs.Start("compile")
	defer sp.End()
	start := time.Now()
	sys := &passes.System{Ctx: m.Ctx, Asserts: append([]*smt.Term(nil), m.Asserts...)}
	// Provenance rides along: one base id per assert, merged by the
	// passes wherever asserts merge. Asserts spliced in from outside
	// assert() (equivalence tests) may outrun AssertOrigins; they simply
	// carry no origin.
	origins := make([][]int32, len(m.Asserts))
	for i := range origins {
		if i < len(m.AssertOrigins) {
			origins[i] = []int32{m.Prov.ID(m.AssertOrigins[i])}
		}
	}
	sys.Origins = origins
	pl, err := passes.NewPipeline(m.spec.compile...)
	if err != nil {
		// Names come from resolvePasses, which only emits canonical ones.
		panic(err)
	}
	stats := pl.Run(sys, sp)
	cn := &CompiledNetwork{
		Asserts:   sys.Asserts,
		Hash:      hashTerms(sys.Asserts),
		BaseLen:   len(m.Asserts),
		PassStats: stats,
		Elapsed:   time.Since(start),
		Origins:   sys.Origins,
	}
	sp.SetStr("hash", cn.Hash[:12])
	sp.SetInt("asserts_in", int64(cn.BaseLen))
	sp.SetInt("asserts_out", int64(len(cn.Asserts)))
	m.compiled = cn
	m.compiledLast = nil
	if cn.BaseLen > 0 {
		m.compiledLast = m.Asserts[cn.BaseLen-1]
	}
	m.compiles++
	return cn
}

// CompileCount reports how many times the model actually ran the
// compile pipeline (i.e. cache misses). Benchmarks use it to show the
// batch path compiles once per network while the fresh path recompiles
// as instrumentation grows the assert list.
func (m *Model) CompileCount() int { return m.compiles }

// hashTerms is the content address of a term list: a SHA-256 over a
// deterministic post-order serialization of the DAG. Node identity is
// the discovery index, not the context-local term id, so structurally
// identical systems hash equally across contexts and processes.
func hashTerms(ts []*smt.Term) string {
	h := sha256.New()
	idx := map[*smt.Term]uint32{}
	var scratch [8]byte
	writeU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		h.Write(scratch[:4])
	}
	var walk func(t *smt.Term) uint32
	walk = func(t *smt.Term) uint32 {
		if i, ok := idx[t]; ok {
			return i
		}
		kids := t.Kids()
		kidIdx := make([]uint32, len(kids))
		for i, k := range kids {
			kidIdx[i] = walk(k)
		}
		h.Write([]byte{byte(t.Op()), byte(t.Width())})
		binary.LittleEndian.PutUint64(scratch[:8], t.Const())
		h.Write(scratch[:8])
		io.WriteString(h, t.Name())
		h.Write([]byte{0})
		writeU32(uint32(len(kidIdx)))
		for _, ki := range kidIdx {
			writeU32(ki)
		}
		i := uint32(len(idx))
		idx[t] = i
		return i
	}
	for _, t := range ts {
		writeU32(walk(t))
	}
	return hex.EncodeToString(h.Sum(nil))
}
