package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sat"
)

// RecordSolverMetrics folds a query result into a trace's counters,
// gauges and the LBD histogram. It is the single implementation behind
// every Prometheus surface — cmd/minesweeper's -prom file and the
// daemon's /metrics endpoint — so the exposition stays identical across
// them.
func RecordSolverMetrics(tr *obs.Trace, res *Result) {
	st := res.Stats
	tr.Add("solver.conflicts", st.Conflicts)
	tr.Add("solver.decisions", st.Decisions)
	tr.Add("solver.propagations", st.Propagations)
	tr.Add("solver.learned", st.Learned)
	tr.Add("solver.deleted", st.Deleted)
	tr.Add("solver.restarts", st.Restarts)
	tr.Add("solver.simplified_clauses", st.Simplified)
	tr.Add("solver.strengthened_literals", st.Strengthened)
	tr.Gauge("formula.sat_vars", float64(res.SATVars))
	tr.Gauge("formula.sat_clauses", float64(res.SATClauses))
	// Bucket i of the solver histogram counts learned clauses with
	// LBD == i+1; the last bucket absorbs everything above.
	bounds := make([]float64, sat.LBDBuckets)
	counts := make([]int64, sat.LBDBuckets)
	var sum float64
	var n int64
	for i, c := range st.LBDHist {
		bounds[i] = float64(i + 1)
		counts[i] = c
		sum += float64(i+1) * float64(c)
		n += c
	}
	if n > 0 {
		tr.SetHist("solver.lbd", bounds, counts, sum, n)
	}
	// Per-phase latency distributions, so the Prometheus surface carries
	// p50/p90/p99 of solve and end-to-end check time (the quantile gauges
	// the exporter derives from these buckets).
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	tr.ObserveBounds("latency.solve_ms", ms(res.SolveElapsed), obs.LatencyMsBounds)
	tr.ObserveBounds("latency.check_ms", ms(res.Elapsed), obs.LatencyMsBounds)
	tr.SampleMem()
}
