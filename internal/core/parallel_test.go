package core

import (
	"testing"

	"repro/internal/psolve"
	"repro/internal/testnets"
)

func parallelOptions(mode string, workers int) Options {
	o := DefaultOptions()
	o.Certify = true
	o.Parallel = mode
	o.ParallelWorkers = workers
	o.Seed = 1729
	return o
}

// TestParallelDeterminismPin is the determinism pin of ISSUE 9: with a
// fixed seed and one worker, both parallel strategies must reproduce the
// sequential search bit for bit — same verdict, same solver statistics,
// same certificate shape. A single-worker portfolio is a vanilla clone
// and a single-worker cube run degenerates to the same, so any
// divergence means a strategy leaks configuration into the search.
func TestParallelDeterminismPin(t *testing.T) {
	net := testnets.OSPFChain(3)
	c0, err := Encode(net.Graph, parallelOptions(psolve.ModeOff, 1))
	if err != nil {
		t.Fatal(err)
	}
	dst := testnets.StubIP(3)
	check := func(m *Model) *Result {
		t.Helper()
		prop := m.Reach(m.Main, true)["R1"]
		pin := m.Ctx.Eq(m.DstIP, m.Ctx.BV(uint64(dst), WidthIP))
		res, err := m.Check(prop, m.NoFailures(), pin)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := check(c0)
	if !want.Verified || want.Certificate == nil || !want.Certificate.Checked {
		t.Fatalf("sequential baseline broken: %+v", want)
	}
	for _, mode := range []string{psolve.ModePortfolio, psolve.ModeCubes} {
		m, err := Encode(net.Graph, parallelOptions(mode, 1))
		if err != nil {
			t.Fatal(err)
		}
		got := check(m)
		if got.Verified != want.Verified {
			t.Fatalf("%s: verdict diverges: %v vs %v", mode, got.Verified, want.Verified)
		}
		if got.Stats != want.Stats {
			t.Fatalf("%s: solver stats diverge from sequential:\n got %+v\nwant %+v",
				mode, got.Stats, want.Stats)
		}
		if got.Certificate.Steps != want.Certificate.Steps ||
			got.Certificate.Lemmas != want.Certificate.Lemmas ||
			got.Certificate.Inputs != want.Certificate.Inputs {
			t.Fatalf("%s: certificate diverges: %+v vs %+v", mode, got.Certificate, want.Certificate)
		}
	}
}

// TestParallelModesAgree answers one verified and one falsified query
// under every strategy with real parallelism: identical verdicts,
// checked certificates on UNSAT, a counterexample that replays on SAT,
// and the strategy report attached.
func TestParallelModesAgree(t *testing.T) {
	net := testnets.OSPFChain(3)
	dst := testnets.StubIP(3)
	for _, mode := range []string{psolve.ModePortfolio, psolve.ModeCubes, psolve.ModeAuto} {
		m, err := Encode(net.Graph, parallelOptions(mode, 4))
		if err != nil {
			t.Fatal(err)
		}
		c := m.Ctx
		prop := m.Reach(m.Main, true)["R1"]
		pin := c.Eq(m.DstIP, c.BV(uint64(dst), WidthIP))
		res, err := m.Check(prop, m.NoFailures(), pin)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Verified {
			t.Fatalf("%s: R1 should reach R3's stub with no failures", mode)
		}
		if res.Certificate == nil || !res.Certificate.Checked {
			t.Fatalf("%s: verified without checked certificate", mode)
		}
		if res.Portfolio == nil && res.Cube == nil {
			t.Fatalf("%s: no strategy report on the result", mode)
		}

		res, err = m.Check(c.False())
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Verified {
			t.Fatalf("%s: False verified", mode)
		}
		if res.Counterexample == nil {
			t.Fatalf("%s: falsified without counterexample", mode)
		}
		if diffs, err := m.ReplayAgrees(res.Counterexample); err != nil || len(diffs) != 0 {
			t.Fatalf("%s: parallel counterexample does not replay: %v %v", mode, diffs, err)
		}
	}
}

// TestParallelSession runs several checks of one incremental session
// under a portfolio race: the clones must leave the session solver
// reusable, and every verdict must match the sequential session.
func TestParallelSession(t *testing.T) {
	net := testnets.OSPFChain(3)
	dst := testnets.StubIP(3)
	seqM, err := Encode(net.Graph, parallelOptions(psolve.ModeOff, 1))
	if err != nil {
		t.Fatal(err)
	}
	parM, err := Encode(net.Graph, parallelOptions(psolve.ModePortfolio, 4))
	if err != nil {
		t.Fatal(err)
	}
	seq, par := seqM.NewSession(), parM.NewSession()
	for i := 0; i < 3; i++ {
		run := func(m *Model, s *Session) *Result {
			t.Helper()
			c := m.Ctx
			prop := m.Reach(m.Main, true)["R1"]
			pin := c.Eq(m.DstIP, c.BV(uint64(dst), WidthIP))
			var res *Result
			var err error
			if i == 1 {
				res, err = s.Check(c.False())
			} else {
				res, err = s.Check(prop, m.NoFailures(), pin)
			}
			if err != nil {
				t.Fatalf("check %d: %v", i, err)
			}
			return res
		}
		want, got := run(seqM, seq), run(parM, par)
		if got.Verified != want.Verified {
			t.Fatalf("check %d: parallel session says %v, sequential says %v",
				i, got.Verified, want.Verified)
		}
		if got.Verified && (got.Certificate == nil || !got.Certificate.Checked) {
			t.Fatalf("check %d: verified without checked certificate", i)
		}
	}
}

// TestParallelUnknownMode pins the validation error for a bad
// Options.Parallel value on both execution paths.
func TestParallelUnknownMode(t *testing.T) {
	net := testnets.OSPFChain(2)
	o := DefaultOptions()
	o.Parallel = "sideways"
	m, err := Encode(net.Graph, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Check(m.Ctx.True()); err == nil {
		t.Fatal("Check accepted unknown parallel mode")
	}
	if _, err := m.NewSession().Check(m.Ctx.True()); err == nil {
		t.Fatal("Session.Check accepted unknown parallel mode")
	}
}
