package core

import (
	"fmt"
	"sort"

	"repro/internal/smt"
)

// FailureCount returns a bitvector counting failed links, for the §5
// fault-tolerance bound Σ failed ≤ k.
func (m *Model) FailureCount() *smt.Term {
	c := m.Ctx
	w := bitsFor(len(m.Failed) + 1)
	sum := c.BV(0, w)
	for _, id := range m.failedIDs() {
		sum = c.Add(sum, c.Ite(m.Failed[id], c.BV(1, w), c.BV(0, w)))
	}
	return sum
}

// AtMostFailures returns the constraint Σ failed ≤ k, used as a Check
// assumption for fault-tolerance properties.
func (m *Model) AtMostFailures(k int) *smt.Term {
	c := m.Ctx
	w := bitsFor(len(m.Failed) + 1)
	return c.Ule(m.FailureCount(), c.BV(uint64(k), w))
}

// NoFailures returns the constraint that every link is up.
func (m *Model) NoFailures() *smt.Term {
	c := m.Ctx
	out := c.True()
	for _, id := range m.failedIDs() {
		out = c.And(out, c.Not(m.Failed[id]))
	}
	return out
}

func (m *Model) failedIDs() []string {
	ids := make([]string, 0, len(m.Failed))
	for id := range m.Failed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ReachAvoiding is Reach with one router's forwarding removed: reach_x is
// true iff the packet from x delivers without ever transiting `avoid`.
// Used by the waypointing property (§5).
func (m *Model) ReachAvoiding(sl *Slice, avoid string, countExit bool) map[string]*smt.Term {
	c := m.Ctx
	w := bitsFor(len(m.G.Topo.Nodes) + 2)
	reach := map[string]*smt.Term{}
	dist := map[string]*smt.Term{}
	tag := fmt.Sprintf("%s|avoid.%s.%v|", sl.Name, avoid, countExit)
	for _, n := range m.G.Topo.Nodes {
		reach[n.Name] = c.BoolVar(tag + n.Name)
		dist[n.Name] = c.BVVar(tag+"dist|"+n.Name, w)
	}
	for _, n := range m.G.Topo.Nodes {
		if n.Name == avoid {
			// The avoided router terminates nothing and forwards nothing.
			m.assert(c.Not(reach[n.Name]))
			continue
		}
		alts := []*smt.Term{sl.DeliveredLocal[n.Name]}
		m.assert(c.Implies(sl.DeliveredLocal[n.Name], reach[n.Name]))
		for _, h := range sortedHops(sl.DataFwd[n.Name]) {
			t := sl.DataFwd[n.Name][h]
			if h.Ext != "" {
				if countExit {
					alts = append(alts, t)
					m.assert(c.Implies(t, reach[n.Name]))
				}
				continue
			}
			if h.Node == avoid {
				continue
			}
			alts = append(alts, c.And(t, reach[h.Node], c.Ult(dist[h.Node], dist[n.Name])))
			m.assert(c.Implies(c.And(t, reach[h.Node]), reach[n.Name]))
		}
		m.assert(c.Implies(reach[n.Name], c.Or(alts...)))
	}
	return reach
}

// Tainted returns per-router booleans: true iff traffic entering the
// network at src can arrive at the router through the data plane. The
// encoding is well-founded (strictly increasing distance from the source),
// so cycles cannot fabricate taint.
func (m *Model) Tainted(sl *Slice, src string) map[string]*smt.Term {
	c := m.Ctx
	w := bitsFor(len(m.G.Topo.Nodes) + 2)
	taint := map[string]*smt.Term{}
	dist := map[string]*smt.Term{}
	tag := sl.Name + "|taint." + src + "|"
	for _, n := range m.G.Topo.Nodes {
		taint[n.Name] = c.BoolVar(tag + n.Name)
		dist[n.Name] = c.BVVar(tag+"dist|"+n.Name, w)
	}
	// Collect predecessors.
	preds := map[string][]string{}
	for _, x := range m.G.Topo.Nodes {
		for _, h := range sortedHops(sl.DataFwd[x.Name]) {
			if h.Node != "" {
				preds[h.Node] = append(preds[h.Node], x.Name)
			}
		}
	}
	for _, n := range m.G.Topo.Nodes {
		if n.Name == src {
			m.assert(taint[n.Name])
			continue
		}
		var alts []*smt.Term
		for _, p := range preds[n.Name] {
			edge := sl.DataFwd[p][Hop{Node: n.Name}]
			alts = append(alts, c.And(taint[p], edge, c.Ult(dist[p], dist[n.Name])))
			m.assert(c.Implies(c.And(taint[p], edge), taint[n.Name]))
		}
		m.assert(c.Implies(taint[n.Name], c.Or(alts...)))
	}
	return taint
}

// PathLengths instruments a slice with the exact longest-forwarding-path
// length per router (§5, bounded/equal path length): delivered routers
// have length 0; a forwarding router's length is one more than the
// maximum over its live multipath branches. The returned width sizes
// constants for comparisons.
func (m *Model) PathLengths(sl *Slice) (map[string]*smt.Term, int) {
	c := m.Ctx
	nodes := m.G.Topo.Nodes
	w := bitsFor(len(nodes) + 3)
	cap64 := uint64(len(nodes) + 1)
	reach := m.Reach(sl, false)
	length := map[string]*smt.Term{}
	for _, n := range nodes {
		length[n.Name] = c.BVVar(sl.Name+"|plen|"+n.Name, w)
		m.assert(c.Ule(length[n.Name], c.BV(cap64, w)))
	}
	for _, n := range nodes {
		name := n.Name
		m.assert(c.Implies(sl.DeliveredLocal[name], c.Eq(length[name], c.BV(0, w))))
		var ubAlts []*smt.Term
		for _, h := range sortedHops(sl.DataFwd[name]) {
			if h.Ext != "" {
				continue
			}
			t := sl.DataFwd[name][h]
			live := c.And(t, reach[h.Node])
			succ := c.Add(length[h.Node], c.BV(1, w))
			// Lower bound: at least one more than every live branch.
			m.assert(c.Implies(c.And(reach[name], live), c.Uge(length[name], succ)))
			ubAlts = append(ubAlts, c.And(live, c.Ule(length[name], succ)))
		}
		// Upper bound: equal to some live branch plus one.
		cond := c.And(reach[name], c.Not(sl.DeliveredLocal[name]))
		m.assert(c.Implies(cond, c.Or(ubAlts...)))
	}
	return length, w
}

// ChainProgress instruments a slice with service-chain taint (§5
// waypointing, general form): progress[x][j] is true iff some data-plane
// path from src to x matches exactly j elements of the chain, in order.
// The encoding is distance-ranked like Tainted, so cycles cannot fabricate
// progress.
func (m *Model) ChainProgress(sl *Slice, src string, chain []string) map[string][]*smt.Term {
	c := m.Ctx
	k := len(chain)
	w := bitsFor(len(m.G.Topo.Nodes)*(k+1) + 2)
	pos := map[string]int{}
	for j, name := range chain {
		pos[name] = j
	}
	// stepTo returns the progress index after arriving at router y with
	// progress j.
	stepTo := func(y string, j int) int {
		if next, ok := pos[y]; ok && next == j {
			return j + 1
		}
		return j
	}
	prog := map[string][]*smt.Term{}
	dist := map[string][]*smt.Term{}
	tag := sl.Name + "|chain." + src + "|"
	for _, n := range m.G.Topo.Nodes {
		prog[n.Name] = make([]*smt.Term, k+1)
		dist[n.Name] = make([]*smt.Term, k+1)
		for j := 0; j <= k; j++ {
			prog[n.Name][j] = c.BoolVar(fmt.Sprintf("%s%s.%d", tag, n.Name, j))
			dist[n.Name][j] = c.BVVar(fmt.Sprintf("%sdist|%s.%d", tag, n.Name, j), w)
		}
	}
	// Predecessor edges.
	preds := map[string][]string{}
	for _, x := range m.G.Topo.Nodes {
		for _, h := range sortedHops(sl.DataFwd[x.Name]) {
			if h.Node != "" {
				preds[h.Node] = append(preds[h.Node], x.Name)
			}
		}
	}
	srcStart := stepTo(src, 0)
	for _, n := range m.G.Topo.Nodes {
		for j := 0; j <= k; j++ {
			var alts []*smt.Term
			if n.Name == src && j == srcStart {
				alts = append(alts, c.True())
			}
			for _, p := range preds[n.Name] {
				edge := sl.DataFwd[p][Hop{Node: n.Name}]
				// Arriving at n with prior progress i yields j when
				// stepTo(n, i) == j.
				for i := 0; i <= k; i++ {
					if stepTo(n.Name, i) != j {
						continue
					}
					t := c.And(prog[p][i], edge, c.Ult(dist[p][i], dist[n.Name][j]))
					alts = append(alts, t)
					m.assert(c.Implies(c.And(prog[p][i], edge), prog[n.Name][j]))
				}
			}
			if n.Name == src && j == srcStart {
				m.assert(prog[n.Name][j])
			}
			m.assert(c.Implies(prog[n.Name][j], c.Or(alts...)))
		}
	}
	return prog
}
