package core

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sat"
	"repro/internal/testnets"
)

// TestResultSplitTimings checks the observability invariants of Check on a
// small testnet: the phase timings are populated, non-negative and sum to
// the compatibility total.
func TestResultSplitTimings(t *testing.T) {
	net := testnets.Hijackable(false)
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Check(m.Ctx.Not(m.Main.CtrlFwd["R2"][Hop{Ext: "N"}]))
	if err != nil {
		t.Fatal(err)
	}
	if res.EncodeElapsed < 0 || res.SimplifyElapsed < 0 || res.SolveElapsed < 0 {
		t.Fatalf("negative phase timing: %+v", res)
	}
	if res.EncodeElapsed == 0 {
		t.Fatal("encode time not populated")
	}
	if got := res.EncodeElapsed + res.SimplifyElapsed + res.SolveElapsed; got != res.Elapsed {
		t.Fatalf("Elapsed %v is not the sum of phases %v", res.Elapsed, got)
	}
	if res.SATVars == 0 || res.SATClauses == 0 {
		t.Fatalf("encoding sizes missing: %+v", res)
	}
}

// TestCheckSpans checks that a traced Encode+Check emits the expected span
// hierarchy, with every span closed and child durations bounded by their
// parents.
func TestCheckSpans(t *testing.T) {
	tr := obs.New("verify")
	opts := DefaultOptions()
	opts.Span = tr.Root()
	net := testnets.Hijackable(false)
	m, err := Encode(net.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Check(m.Ctx.True()); err != nil {
		t.Fatal(err)
	}
	tr.Root().End()

	for _, name := range []string{"encode", "analyze", "slice:main", "check", "cnf", "simplify", "solve"} {
		sp := tr.Root().Find(name)
		if sp == nil {
			t.Fatalf("span %q missing from trace", name)
		}
		if !sp.Ended() {
			t.Fatalf("span %q not closed", name)
		}
	}
	// Nesting: check owns cnf/simplify/solve; encode owns the slices.
	check := tr.Root().Find("check")
	if check.Find("solve") == nil || check.Find("cnf") == nil {
		t.Fatal("solve/cnf not nested under check")
	}
	if tr.Root().Find("encode").Find("slice:main") == nil {
		t.Fatal("slice span not nested under encode")
	}
	check.Walk(func(sp *obs.Span, depth int) {
		if sp.Duration() > check.Duration() {
			t.Fatalf("child %q (%v) outlives parent check (%v)", sp.Name(), sp.Duration(), check.Duration())
		}
	})
	if v, ok := check.Find("cnf").Attr("sat_vars"); !ok || v.Int <= 0 {
		t.Fatalf("cnf span missing sat_vars attr: %+v", v)
	}
}

// TestModelProgressHook wires a progress hook through Model.Check and
// verifies the snapshots respect the interval. The hijack query is easy,
// so the hook may legitimately not fire; the test asserts only interval
// correctness plus that wiring a hook is harmless.
func TestModelProgressHook(t *testing.T) {
	net := testnets.Hijackable(false)
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var snaps []sat.Progress
	m.ProgressEvery = 1
	m.OnProgress = func(p sat.Progress) {
		mu.Lock()
		snaps = append(snaps, p)
		mu.Unlock()
	}
	res, err := m.Check(m.Ctx.Not(m.Main.CtrlFwd["R2"][Hop{Ext: "N"}]))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(len(snaps)) != res.Stats.Conflicts {
		t.Fatalf("interval 1: %d snapshots for %d conflicts", len(snaps), res.Stats.Conflicts)
	}
	for i, p := range snaps {
		if p.Conflicts != int64(i+1) {
			t.Fatalf("snapshot %d reports %d conflicts", i, p.Conflicts)
		}
	}
}
