// Package core implements the Minesweeper encoding: it translates router
// configurations into an SMT formula whose satisfying assignments are the
// stable states of the network control plane (§3–§4 of the paper),
// together with the hoisting and slicing optimizations of §6.
//
// The formula is built over internal/smt terms and decided by the CDCL
// solver in internal/sat. Properties (internal/properties) instrument the
// model with additional constraints and ask for a satisfying assignment of
// N ∧ ¬P: a counterexample if one exists.
package core

import (
	"repro/internal/smt"
)

// Field widths, following Figure 3 of the paper (prefix length needs six
// bits for the values 0–32).
const (
	WidthPrefixLen = 6
	WidthAD        = 8
	WidthLP        = 32
	WidthMetric    = 16
	WidthMED       = 32
	WidthASN       = 32
	WidthRID       = 32
	WidthIP        = 32
)

// Record is the symbolic control-plane record of Figure 3: one per
// protocol-level edge (import and export), per protocol origination
// point, and per selection result. All fields are terms; concrete
// configurations yield constant fields that the simplifier folds away —
// which is precisely how most of the paper's slicing optimizations
// manifest in this encoding.
type Record struct {
	Valid     *smt.Term // bool: a route is present
	PrefixLen *smt.Term // BV6: destination prefix length
	AD        *smt.Term // BV8: administrative distance
	LocalPref *smt.Term // BV32: BGP local preference
	Metric    *smt.Term // BV16: path cost / AS-path length
	MED       *smt.Term // BV32: multi-exit discriminator
	NbrASN    *smt.Term // BV32: AS the route was learned from
	RID       *smt.Term // BV32: router id of the sender (tie-break)
	Internal  *smt.Term // bool: learned via iBGP
	// FromClient marks routes learned from a route-reflector client.
	FromClient *smt.Term
	// Comms maps community strings (the universe found in the configs)
	// to presence bits.
	Comms map[string]*smt.Term
	// Prefix is only materialized when prefix hoisting is disabled
	// (§6.1 ablation): a BV32 holding the announced prefix bits.
	Prefix *smt.Term

	// Through maps "risky" router names to loop-prevention bits: true
	// when the advertisement already traversed that router. Only
	// materialized when the loop-detection hoisting cannot discharge
	// loops (§6.1).
	Through map[string]*smt.Term
}

// invalidRecord returns the canonical absent record (everything zero).
func invalidRecord(c *smt.Context, commUniverse []string, risky []string) *Record {
	r := &Record{
		Valid:      c.False(),
		PrefixLen:  c.BV(0, WidthPrefixLen),
		AD:         c.BV(0, WidthAD),
		LocalPref:  c.BV(0, WidthLP),
		Metric:     c.BV(0, WidthMetric),
		MED:        c.BV(0, WidthMED),
		NbrASN:     c.BV(0, WidthASN),
		RID:        c.BV(0, WidthRID),
		Internal:   c.False(),
		FromClient: c.False(),
		Comms:      map[string]*smt.Term{},
	}
	for _, cm := range commUniverse {
		r.Comms[cm] = c.False()
	}
	for _, rt := range risky {
		if r.Through == nil {
			r.Through = map[string]*smt.Term{}
		}
		r.Through[rt] = c.False()
	}
	return r
}

// clone shallow-copies the record (term references are shared; maps are
// copied).
func (r *Record) clone() *Record {
	out := *r
	out.Comms = make(map[string]*smt.Term, len(r.Comms))
	for k, v := range r.Comms {
		out.Comms[k] = v
	}
	if r.Through != nil {
		out.Through = make(map[string]*smt.Term, len(r.Through))
		for k, v := range r.Through {
			out.Through[k] = v
		}
	}
	return &out
}

// gate returns a copy of the record whose validity is additionally
// conditioned on cond.
func (r *Record) gate(c *smt.Context, cond *smt.Term) *Record {
	out := r.clone()
	out.Valid = c.And(r.Valid, cond)
	return out
}

// muxRecord returns the field-wise if-then-else of two records.
func muxRecord(c *smt.Context, cond *smt.Term, a, b *Record) *Record {
	out := &Record{
		Valid:      c.Ite(cond, a.Valid, b.Valid),
		PrefixLen:  c.Ite(cond, a.PrefixLen, b.PrefixLen),
		AD:         c.Ite(cond, a.AD, b.AD),
		LocalPref:  c.Ite(cond, a.LocalPref, b.LocalPref),
		Metric:     c.Ite(cond, a.Metric, b.Metric),
		MED:        c.Ite(cond, a.MED, b.MED),
		NbrASN:     c.Ite(cond, a.NbrASN, b.NbrASN),
		RID:        c.Ite(cond, a.RID, b.RID),
		Internal:   c.Ite(cond, a.Internal, b.Internal),
		FromClient: c.Ite(cond, a.FromClient, b.FromClient),
		Comms:      map[string]*smt.Term{},
	}
	for k := range a.Comms {
		out.Comms[k] = c.Ite(cond, a.Comms[k], b.Comms[k])
	}
	if a.Prefix != nil && b.Prefix != nil {
		out.Prefix = c.Ite(cond, a.Prefix, b.Prefix)
	}
	if a.Through != nil {
		out.Through = map[string]*smt.Term{}
		for k := range a.Through {
			out.Through[k] = c.Ite(cond, a.Through[k], b.Through[k])
		}
	}
	return out
}

// cmpMode mirrors simulator.CompareMode for the symbolic comparators.
type cmpMode struct {
	alwaysCompareMED bool
}

// betterAttrs builds the strict-preference circuit over the shared
// attribute order (local-pref, metric, MED, eBGP-over-iBGP, router id).
// Both records are assumed valid.
func betterAttrs(c *smt.Context, a, b *Record, mode cmpMode) *smt.Term {
	// Keys from most to least significant: (strictlyBetter, equalEnough).
	type key struct{ lt, eq *smt.Term }
	medEnabled := c.Eq(a.NbrASN, b.NbrASN)
	if mode.alwaysCompareMED {
		medEnabled = c.True()
	}
	keys := []key{
		{c.Ugt(a.LocalPref, b.LocalPref), c.Eq(a.LocalPref, b.LocalPref)},
		{c.Ult(a.Metric, b.Metric), c.Eq(a.Metric, b.Metric)},
		{c.And(medEnabled, c.Ult(a.MED, b.MED)), c.Or(c.Not(medEnabled), c.Eq(a.MED, b.MED))},
		{c.And(c.Not(a.Internal), b.Internal), c.Eq(a.Internal, b.Internal)},
		{c.Ult(a.RID, b.RID), c.Eq(a.RID, b.RID)},
	}
	// Fold right: better = L1 ∨ (E1 ∧ (L2 ∨ (E2 ∧ ...))).
	out := c.False()
	for i := len(keys) - 1; i >= 0; i-- {
		out = c.Or(keys[i].lt, c.And(keys[i].eq, out))
	}
	return out
}

// betterIntra is the within-protocol strict order: longest prefix, then
// the attribute order (no administrative distance — inside BGP, local
// preference dominates even though iBGP routes carry AD 200).
func betterIntra(c *smt.Context, a, b *Record, mode cmpMode) *smt.Term {
	pl := c.Ugt(a.PrefixLen, b.PrefixLen)
	pe := c.Eq(a.PrefixLen, b.PrefixLen)
	return c.Or(pl, c.And(pe, betterAttrs(c, a, b, mode)))
}

// betterOverall is the cross-protocol strict order: longest prefix, then
// lowest administrative distance, then the attribute order.
func betterOverall(c *smt.Context, a, b *Record, mode cmpMode) *smt.Term {
	pl := c.Ugt(a.PrefixLen, b.PrefixLen)
	pe := c.Eq(a.PrefixLen, b.PrefixLen)
	ad := c.Ult(a.AD, b.AD)
	ae := c.Eq(a.AD, b.AD)
	return c.Or(pl, c.And(pe, c.Or(ad, c.And(ae, betterAttrs(c, a, b, mode)))))
}

// equallyGood is the multipath relaxation (§4): neither record strictly
// preferred when the router-id tie-break is ignored.
func equallyGood(c *smt.Context, a, b *Record, mode cmpMode) *smt.Term {
	medEnabled := c.Eq(a.NbrASN, b.NbrASN)
	if mode.alwaysCompareMED {
		medEnabled = c.True()
	}
	return c.And(
		c.Eq(a.PrefixLen, b.PrefixLen),
		c.Eq(a.AD, b.AD),
		c.Eq(a.LocalPref, b.LocalPref),
		c.Eq(a.Metric, b.Metric),
		c.Or(c.Not(medEnabled), c.Eq(a.MED, b.MED)),
		c.Eq(a.Internal, b.Internal),
	)
}

// sameChoice tests whether a candidate record is exactly the selected one
// (all preference keys including the router-id tie-break): the encoder's
// analogue of "e4.valid ∧ e4 = bestoverall" from §3(5).
func sameChoice(c *smt.Context, cand, best *Record, mode cmpMode) *smt.Term {
	medEnabled := c.Eq(cand.NbrASN, best.NbrASN)
	if mode.alwaysCompareMED {
		medEnabled = c.True()
	}
	return c.And(
		c.Eq(cand.PrefixLen, best.PrefixLen),
		c.Eq(cand.AD, best.AD),
		c.Eq(cand.LocalPref, best.LocalPref),
		c.Eq(cand.Metric, best.Metric),
		c.Or(c.Not(medEnabled), c.Eq(cand.MED, best.MED)),
		c.Eq(cand.Internal, best.Internal),
		c.Eq(cand.RID, best.RID),
	)
}

// selectBest folds candidates into the selected record using the given
// strict order. Returns the invalid record when no candidate is valid.
func selectBest(c *smt.Context, cands []*Record, better func(a, b *Record) *smt.Term, inv *Record) *Record {
	best := inv
	for _, cand := range cands {
		takeCand := c.And(cand.Valid, c.Or(c.Not(best.Valid), better(cand, best)))
		best = muxRecord(c, takeCand, cand, best)
	}
	return best
}
