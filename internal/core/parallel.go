package core

import (
	"runtime"

	"repro/internal/provenance"
	"repro/internal/psolve"
	"repro/internal/sat"
	"repro/internal/smt"
)

// parallelEnabled reports whether checks on this model hand the CDCL
// search to the parallel engine (internal/psolve).
func (m *Model) parallelEnabled() bool { return psolve.Enabled(m.Opts.Parallel) }

// parallelWorkers resolves Options.ParallelWorkers (<=0 means one per
// CPU).
func (m *Model) parallelWorkers() int {
	if m.Opts.ParallelWorkers > 0 {
		return m.Opts.ParallelWorkers
	}
	return runtime.NumCPU()
}

// certifyWorkers is the concurrency of the DRAT replay: parallel checks
// use the segment checker with the same worker budget as the solve, so
// certification overhead shrinks with the solve time it shadows.
func (m *Model) certifyWorkers() int {
	if !m.parallelEnabled() {
		return 1
	}
	return m.parallelWorkers()
}

// parallelOptions assembles the psolve configuration for one check on
// the given solver.
func (m *Model) parallelOptions(solver *smt.Solver) psolve.Options {
	return psolve.Options{
		Mode:       m.Opts.Parallel,
		Workers:    m.parallelWorkers(),
		Seed:       m.Opts.Seed,
		Candidates: m.parallelCandidates(solver),
		Schedule:   m.Schedule,
		OnEvent:    m.OnSolverEvent,
	}
}

// parallelCandidates lists the SAT variables cube-and-conquer may split
// on: the bits of the environment records (announcement validity and
// prefix length) and the link-failure indicators. These are the
// variables the Minesweeper query universally quantifies over, so
// fixing them partitions the search space along semantically meaningful
// axes. Order is irrelevant — the engine totally orders candidates by
// probe activity and variable id.
func (m *Model) parallelCandidates(solver *smt.Solver) []sat.Var {
	var out []sat.Var
	add := func(t *smt.Term) {
		for _, l := range solver.BlastedLits(t) {
			out = append(out, l.Var())
		}
	}
	if m.Main != nil {
		for _, rec := range m.Main.Env {
			if rec == nil {
				continue
			}
			add(rec.Valid)
			add(rec.PrefixLen)
		}
	}
	for _, t := range m.Failed {
		add(t)
	}
	return out
}

// profileFromOutcome merges the participating solvers' origin counters
// into one hot-constraint profile; nil when tracking was off.
func (m *Model) profileFromOutcome(out *psolve.Outcome) *provenance.Profile {
	if len(out.Origins) == 0 {
		return nil
	}
	profiles := make([]*provenance.Profile, 0, len(out.Origins))
	for _, od := range out.Origins {
		pc := make([]provenance.Counts, len(od.Counts))
		for i, c := range od.Counts {
			pc[i] = provenance.Counts{
				Conflicts:    c.Conflicts,
				Propagations: c.Propagations,
				Learned:      c.Learned,
				LBDSum:       c.LBDSum,
			}
		}
		profiles = append(profiles, provenance.BuildProfile(m.Prov, od.Sets, pc))
	}
	return provenance.MergeProfiles(profiles...)
}
