package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/simulator"
	"repro/internal/smt"
	"repro/internal/testnets"
)

// noLeak and dstIn inline the corresponding internal/properties builders
// (importing that package from here would be a test import cycle).
func noLeak(m *Model, maxLen int) *smt.Term {
	c := m.Ctx
	out := c.True()
	for _, rec := range m.Main.ExtExports {
		out = c.And(out, c.Implies(rec.Valid,
			c.Ule(rec.PrefixLen, c.BV(uint64(maxLen), WidthPrefixLen))))
	}
	return out
}

func dstIn(m *Model, p network.Prefix) *smt.Term {
	return m.Ctx.InRange(m.DstIP, uint64(p.First()), uint64(p.Last()))
}

// aggNet: border router with a summary-only aggregate for 10.100.0.0/16;
// two stub /24s live behind it on R2.
func aggNet(summarize bool) *testnets.Net {
	agg := ""
	if summarize {
		agg = " aggregate-address 10.100.0.0 255.255.0.0 summary-only\n"
	}
	r1 := `
hostname R1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
!
interface Serial0
 ip address 10.9.1.1 255.255.255.252
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
!
router bgp 65001
 neighbor 10.9.1.2 remote-as 65100
 neighbor 10.9.1.2 description N1
 redistribute ospf
` + agg + `!
`
	r2 := `
hostname R2
!
interface Eth0
 ip address 10.0.12.2 255.255.255.252
!
interface Loopback0
 ip address 10.100.1.1 255.255.255.0
!
interface Loopback1
 ip address 10.100.2.1 255.255.255.0
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 10.100.1.0 0.0.0.255 area 0
 network 10.100.2.0 0.0.0.255 area 0
!
`
	return testnets.MustBuild(r1, r2)
}

func TestAggregationSuppressesSpecifics(t *testing.T) {
	dst := ip("10.100.1.1")

	// Simulator view: without the aggregate, the /24 leaks; with it, the
	// export is shortened to /16.
	for _, summarize := range []bool{false, true} {
		net := aggNet(summarize)
		sim := simulator.New(net.Graph)
		res, err := sim.Run(dst, simulator.NewEnvironment())
		if err != nil {
			t.Fatal(err)
		}
		exp := res.ExportsToExt["N1"]
		if !exp.Valid {
			t.Fatalf("summarize=%v: nothing exported", summarize)
		}
		wantLen := 24
		if summarize {
			wantLen = 16
		}
		if exp.PrefixLen != wantLen {
			t.Fatalf("summarize=%v: exported /%d, want /%d", summarize, exp.PrefixLen, wantLen)
		}
	}

	// Verifier view: the §5 leak property. Without aggregation NoLeak(16)
	// is violated; with it, verified.
	leaky, err := Encode(aggNet(false).Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := leaky.Check(noLeak(leaky, 16), leaky.NoFailures(), dstIn(leaky, pfx("10.100.0.0/16")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Fatal("specifics should leak without aggregation")
	}
	clean, err := Encode(aggNet(true).Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := clean.Check(noLeak(clean, 16), clean.NoFailures(), dstIn(clean, pfx("10.100.0.0/16")))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Verified {
		t.Fatalf("aggregate should cap exports at /16: %v", res2.Counterexample)
	}

	// Differential sanity on the aggregating network.
	runDifferential(t, aggNet(true), DefaultOptions(),
		[]network.IP{dst, ip("10.100.2.1")}, []*simulator.Environment{newEnv()})
}

// rrNet: hub-and-spoke iBGP. c1 has the only eBGP exit; c2 learns the
// external route only if the hub reflects (withRR).
func rrNet(withRR bool) *testnets.Net {
	client := ""
	if withRR {
		client = " neighbor 10.0.1.2 route-reflector-client\n neighbor 10.0.2.2 route-reflector-client\n"
	}
	rr := `
hostname hub
!
interface Eth0
 ip address 10.0.1.1 255.255.255.252
!
interface Eth1
 ip address 10.0.2.1 255.255.255.252
!
router bgp 65001
 bgp router-id 9.9.9.9
 neighbor 10.0.1.2 remote-as 65001
 neighbor 10.0.2.2 remote-as 65001
` + client + `!
`
	c1 := `
hostname spokeA
!
interface Eth0
 ip address 10.0.1.2 255.255.255.252
!
interface Serial0
 ip address 10.9.1.1 255.255.255.252
!
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.0.1.1 remote-as 65001
 neighbor 10.9.1.2 remote-as 65100
 neighbor 10.9.1.2 description N1
!
`
	c2 := `
hostname spokeB
!
interface Eth0
 ip address 10.0.2.2 255.255.255.252
!
router bgp 65001
 bgp router-id 2.2.2.2
 neighbor 10.0.2.1 remote-as 65001
!
`
	return testnets.MustBuild(rr, c1, c2)
}

func TestRouteReflection(t *testing.T) {
	dst := ip("8.8.8.8")
	env := newEnv().Announce("N1", simulator.Announcement{Prefix: pfx("8.8.8.0/24"), PathLen: 2})

	for _, withRR := range []bool{false, true} {
		net := rrNet(withRR)
		sim := simulator.New(net.Graph)
		res, err := sim.Run(dst, env)
		if err != nil {
			t.Fatal(err)
		}
		gotB := res.States["spokeB"].Best.Valid
		if gotB != withRR {
			t.Fatalf("withRR=%v: spokeB has route=%v", withRR, gotB)
		}
		if withRR {
			// spokeB forwards toward the hub, the hub toward spokeA.
			if len(res.States["spokeB"].Hops) != 1 || res.States["spokeB"].Hops[0].Node != "hub" {
				t.Fatalf("spokeB hops %v", res.States["spokeB"].Hops)
			}
			if len(res.States["hub"].Hops) != 1 || res.States["hub"].Hops[0].Node != "spokeA" {
				t.Fatalf("hub hops %v", res.States["hub"].Hops)
			}
		}
		// Symbolic model agrees, over several environments.
		runDifferential(t, net, DefaultOptions(), []network.IP{dst},
			[]*simulator.Environment{env, newEnv(), newEnv().Fail("hub", "spokeA")})
	}
}

// commNet: the border tags customer routes and filters on communities.
func commNet() *testnets.Net {
	r1 := `
hostname R1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
!
interface Serial0
 ip address 10.9.1.1 255.255.255.252
!
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.9.1.2 remote-as 65100
 neighbor 10.9.1.2 description N1
 neighbor 10.9.1.2 route-map IMPORT in
 neighbor 10.0.12.2 remote-as 65001
!
ip community-list BLACKHOLE permit 65100:666
ip community-list CUSTOMER permit 65100:100
!
route-map IMPORT deny 10
 match community BLACKHOLE
!
route-map IMPORT permit 20
 match community CUSTOMER
 set local-preference 200
 set community 65001:1 additive
!
route-map IMPORT permit 30
!
`
	r2 := `
hostname R2
!
interface Eth0
 ip address 10.0.12.2 255.255.255.252
!
router bgp 65001
 bgp router-id 2.2.2.2
 neighbor 10.0.12.1 remote-as 65001
!
`
	return testnets.MustBuild(r1, r2)
}

func TestCommunities(t *testing.T) {
	net := commNet()
	dst := ip("8.8.8.8")
	p := pfx("8.8.8.0/24")

	cases := []struct {
		comms   []string
		wantLP  int
		blocked bool
	}{
		{nil, 100, false},
		{[]string{"65100:100"}, 200, false},
		{[]string{"65100:666"}, 0, true},
		{[]string{"65100:100", "65100:666"}, 0, true}, // deny clause first
	}
	sim := simulator.New(net.Graph)
	for _, c := range cases {
		env := newEnv().Announce("N1", simulator.Announcement{Prefix: p, PathLen: 2, Communities: c.comms})
		res, err := sim.Run(dst, env)
		if err != nil {
			t.Fatal(err)
		}
		best := res.States["R1"].Best
		if best.Valid == c.blocked {
			t.Fatalf("comms %v: valid=%v want blocked=%v", c.comms, best.Valid, c.blocked)
		}
		if !c.blocked && best.LocalPref != c.wantLP {
			t.Fatalf("comms %v: lp=%d want %d", c.comms, best.LocalPref, c.wantLP)
		}
		if !c.blocked && c.wantLP == 200 && !best.HasComm("65001:1") {
			t.Fatalf("customer route not tagged: %v", best)
		}
		runDifferential(t, net, DefaultOptions(), []network.IP{dst}, []*simulator.Environment{env})
	}

	// Symbolically: a blackhole-tagged announcement can NEVER install at
	// R1 — for any prefix, any path length.
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tagged := m.Main.Env["N1"].Comms["65100:666"]
	neverInstalled := m.Ctx.Implies(tagged, m.Ctx.Not(m.Main.ExtImports["N1"].Valid))
	res, err := m.Check(neverInstalled, m.NoFailures())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("blackhole community bypassed the filter: %v", res.Counterexample)
	}
}

// medNet: one router, two sessions to the same external AS.
func medNet(alwaysCompare bool) *testnets.Net {
	cmp := ""
	if alwaysCompare {
		cmp = " bgp always-compare-med\n"
	}
	r1 := `
hostname R1
!
interface Serial0
 ip address 10.9.1.1 255.255.255.252
!
interface Serial1
 ip address 10.9.2.1 255.255.255.252
!
router bgp 65001
` + cmp + ` bgp router-id 1.1.1.1
 neighbor 10.9.1.2 remote-as 65100
 neighbor 10.9.1.2 description NA
 neighbor 10.9.2.2 remote-as 65100
 neighbor 10.9.2.2 description NB
!
`
	return testnets.MustBuild(r1)
}

func TestMEDComparison(t *testing.T) {
	dst := ip("8.8.8.8")
	p := pfx("8.8.8.0/24")
	// Same AS announces via two sessions with different MEDs: the lower
	// MED must win even though NB has the higher session address (worse
	// rid tie-break).
	env := newEnv().
		Announce("NA", simulator.Announcement{Prefix: p, PathLen: 3, MED: 50}).
		Announce("NB", simulator.Announcement{Prefix: p, PathLen: 3, MED: 10})
	net := medNet(false)
	sim := simulator.New(net.Graph)
	res, err := sim.Run(dst, env)
	if err != nil {
		t.Fatal(err)
	}
	if hops := res.States["R1"].Hops; len(hops) != 1 || hops[0].Ext != "NB" {
		t.Fatalf("MED should pick NB: %v", hops)
	}
	runDifferential(t, net, DefaultOptions(), []network.IP{dst}, []*simulator.Environment{env})

	// always-compare-med differential coverage.
	runDifferential(t, medNet(true), DefaultOptions(), []network.IP{dst}, []*simulator.Environment{env})
}

func TestWrapVarRoundTrip(t *testing.T) {
	// The unsliced encoding interposes variable records everywhere; the
	// stable states must be identical. Compare optimized vs naive on the
	// RR network (exercises iBGP fields through wrapped records).
	net := rrNet(true)
	env := newEnv().Announce("N1", simulator.Announcement{Prefix: pfx("8.8.8.0/24"), PathLen: 2})
	for name, opts := range allOpts() {
		t.Run(name, func(t *testing.T) {
			runDifferential(t, net, opts, []network.IP{ip("8.8.8.8")}, []*simulator.Environment{env})
		})
	}
}

func TestMultihopIBGPDifferential(t *testing.T) {
	// Exercises the per-address network copies (§4): the iBGP session
	// rides the routers' loopbacks, so its up/down state depends on IGP
	// reachability of the peering addresses — symbolically via SessUp
	// bits gated on the address slices.
	net := testnets.MultihopIBGP()
	ann := simulator.Announcement{Prefix: pfx("8.8.8.0/24"), PathLen: 2}
	envs := []*simulator.Environment{
		newEnv(),
		newEnv().Announce("N1", ann),
		newEnv().Announce("N1", ann).Fail("B1", "B2"),
		newEnv().Announce("N1", ann).FailExternal("B1", "N1"),
	}
	dsts := []network.IP{ip("8.8.8.8"), ip("192.168.0.2")}
	runDifferential(t, net, DefaultOptions(), dsts, envs)

	// The model must prove: if the internal link is down, B2 never has a
	// BGP route (the session transport is gone) — for any announcements.
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	linkDown := m.Failed["B1~B2"]
	noRoute := m.Ctx.Implies(linkDown, m.Ctx.Not(m.Main.BestProto["B2"][config.BGP].Valid))
	res, err := m.Check(noRoute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("iBGP session survived transport failure: %v", res.Counterexample)
	}
}
