package core

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sat"
	"repro/internal/simulator"
	"repro/internal/smt"
)

// This file is the differential-testing API: it pins a symbolic model to
// one concrete environment and compares the resulting stable state with
// the concrete simulator's, router by router. The package's own tests,
// the internal/fuzz oracles and cmd/bench's fuzz smoke mode all go
// through these entry points, so a disagreement found by any of them is
// reproducible with the others.

// PinEnvironment returns constraints fixing the packet to dst (TCP/80,
// zero source) and the announcement/failure environment to env, so the
// formula's stable state can be compared against the simulator's.
func (m *Model) PinEnvironment(dst network.IP, env *simulator.Environment) []*smt.Term {
	c := m.Ctx
	var out []*smt.Term
	out = append(out,
		c.Eq(m.DstIP, c.BV(uint64(dst), WidthIP)),
		c.Eq(m.SrcIP, c.BV(0, WidthIP)),
		c.Eq(m.SrcPort, c.BV(0, 16)),
		c.Eq(m.DstPort, c.BV(80, 16)),
		c.Eq(m.IPProto, c.BV(6, 8)),
	)
	pinSliceEnv := func(sl *Slice, sliceDst network.IP) {
		for _, e := range m.G.Topo.Externals {
			rec := sl.Env[e.Name]
			ann := env.Anns[e.Name]
			if ann == nil || !ann.Prefix.Contains(sliceDst) {
				out = append(out, c.Not(rec.Valid))
				continue
			}
			out = append(out,
				rec.Valid,
				c.Eq(rec.PrefixLen, c.BV(uint64(ann.Prefix.Len), WidthPrefixLen)),
				c.Eq(rec.Metric, c.BV(uint64(ann.PathLen), WidthMetric)),
			)
			if m.medActive {
				out = append(out, c.Eq(rec.MED, c.BV(uint64(ann.MED), WidthMED)))
			}
			if rec.Prefix != nil {
				out = append(out, c.Eq(rec.Prefix, c.BV(uint64(ann.Prefix.Addr), WidthIP)))
			}
			has := map[string]bool{}
			for _, cm := range ann.Communities {
				has[cm] = true
			}
			for cm, bit := range rec.Comms {
				if bit.Op() != smt.OpBoolVar {
					continue
				}
				if has[cm] {
					out = append(out, bit)
				} else {
					out = append(out, c.Not(bit))
				}
			}
		}
	}
	pinSliceEnv(m.Main, dst)
	for addr, sl := range m.Addr {
		pinSliceEnv(sl, addr)
	}
	for id, v := range m.Failed {
		if env.FailedLinks[id] {
			out = append(out, v)
		} else {
			out = append(out, c.Not(v))
		}
	}
	return out
}

// SolveConcrete pins the environment and extracts a stable state of the
// constraint system as a full variable assignment. Fixtures with a unique
// stable state get that state; multi-stable networks get one of theirs.
func (m *Model) SolveConcrete(dst network.IP, env *simulator.Environment) (smt.Assignment, error) {
	solver := smt.NewSolver(m.Ctx)
	for _, a := range m.Asserts {
		solver.Assert(a)
	}
	for _, a := range m.PinEnvironment(dst, env) {
		solver.Assert(a)
	}
	if st := solver.Check(); st != sat.Sat {
		return nil, fmt.Errorf("core: no stable state found (%v) for dst %v env %v", st, dst, env)
	}
	return solver.Model(), nil
}

// DiffSimulator compares a pinned assignment with the simulator's stable
// state router by router — overall best route, control-plane forwarding,
// local delivery, null drops and exports to external peers. It returns
// one message per disagreement; an empty slice means the symbolic and
// concrete worlds agree exactly.
func (m *Model) DiffSimulator(asg smt.Assignment, simres *simulator.Result, dst network.IP, env *simulator.Environment) []string {
	var diffs []string
	for _, n := range m.G.Topo.Nodes {
		name := n.Name
		sym := DecodeRecord(m.Main.Best[name], asg)
		conc := simres.States[name].Best
		ctx := fmt.Sprintf("router %s dst %v env [%v]", name, dst, env)
		if sym.Valid != conc.Valid {
			diffs = append(diffs, fmt.Sprintf("%s: valid mismatch sym=%v conc=%v", ctx, sym, conc))
			continue
		}
		if conc.Valid {
			if sym.PrefixLen != conc.PrefixLen || sym.AD != conc.AD ||
				sym.LocalPref != conc.LocalPref || sym.Metric != conc.Metric {
				diffs = append(diffs, fmt.Sprintf("%s: record mismatch sym=%+v conc=%v", ctx, sym, conc))
			}
			if m.ibgpActive && sym.Internal != conc.Internal {
				diffs = append(diffs, fmt.Sprintf("%s: internal mismatch sym=%+v conc=%v", ctx, sym, conc))
			}
		}
		// Forwarding decisions.
		simHops := map[Hop]bool{}
		for _, h := range simres.States[name].Hops {
			simHops[Hop{Node: h.Node, Ext: h.Ext}] = true
		}
		for h, bit := range m.Main.CtrlFwd[name] {
			got := smt.Eval(bit, asg).Bool
			if got != simHops[h] {
				diffs = append(diffs, fmt.Sprintf("%s: fwd %v sym=%v conc=%v (sym best %+v, conc %v)", ctx, h, got, simHops[h], sym, conc))
			}
			delete(simHops, h)
		}
		for h, want := range simHops {
			if want {
				diffs = append(diffs, fmt.Sprintf("%s: simulator forwards to %v but model has no such edge", ctx, h))
			}
		}
		if got := smt.Eval(m.Main.DeliveredLocal[name], asg).Bool; got != simres.States[name].DeliveredLocal {
			diffs = append(diffs, fmt.Sprintf("%s: deliveredLocal sym=%v conc=%v", ctx, got, simres.States[name].DeliveredLocal))
		}
		if got := smt.Eval(m.Main.DroppedNull[name], asg).Bool; got != simres.States[name].DroppedNull {
			diffs = append(diffs, fmt.Sprintf("%s: droppedNull sym=%v conc=%v", ctx, got, simres.States[name].DroppedNull))
		}
	}
	// Exports to external neighbors.
	for extName, symRec := range m.Main.ExtExports {
		sym := DecodeRecord(symRec, asg)
		conc := simres.ExportsToExt[extName]
		if sym.Valid != conc.Valid {
			diffs = append(diffs, fmt.Sprintf("export to %s: valid sym=%v conc=%v (dst %v env %v)", extName, sym.Valid, conc.Valid, dst, env))
		}
		if conc.Valid && sym.Metric != conc.Metric {
			diffs = append(diffs, fmt.Sprintf("export to %s: metric sym=%d conc=%d", extName, sym.Metric, conc.Metric))
		}
	}
	return diffs
}

// DiffAgainstSimulator runs the concrete simulator and the pinned
// symbolic model on one (dst, env) scenario and returns their
// disagreements. It is the one-call differential oracle: an error means
// a world failed to produce a state at all, a non-empty diff list means
// the worlds disagree.
func (m *Model) DiffAgainstSimulator(dst network.IP, env *simulator.Environment) ([]string, error) {
	sim := simulator.New(m.G)
	simres, err := sim.Run(dst, env)
	if err != nil {
		return nil, fmt.Errorf("core: simulate dst %v env %v: %w", dst, env, err)
	}
	asg, err := m.SolveConcrete(dst, env)
	if err != nil {
		return nil, err
	}
	return m.DiffSimulator(asg, simres, dst, env), nil
}
