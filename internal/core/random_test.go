package core

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/simulator"
	"repro/internal/testnets"
)

// randEnv draws a random environment: each external peer may announce a
// random prefix (sometimes covering dst, sometimes not), and up to two
// links may fail.
func randEnv(rng *rand.Rand, net *testnets.Net, dst network.IP, maxFail int) *simulator.Environment {
	env := simulator.NewEnvironment()
	pool := []network.Prefix{
		{Addr: dst.Mask(32), Len: 32},
		{Addr: dst.Mask(24), Len: 24},
		{Addr: dst.Mask(16), Len: 16},
		{Addr: dst.Mask(8), Len: 8},
		{Addr: 0, Len: 0},
		network.MustParsePrefix("203.0.113.0/24"), // never covers fixtures
	}
	for _, e := range net.Topo.Externals {
		if rng.Intn(2) == 0 {
			continue
		}
		p := pool[rng.Intn(len(pool))]
		env.Announce(e.Name, simulator.Announcement{
			Prefix:  p,
			PathLen: rng.Intn(6),
			MED:     rng.Intn(3),
		})
	}
	fails := rng.Intn(maxFail + 1)
	for i := 0; i < fails && len(net.Topo.Links) > 0; i++ {
		l := net.Topo.Links[rng.Intn(len(net.Topo.Links))]
		env.Fail(l.A.Name, l.B.Name)
	}
	if len(net.Topo.Externals) > 0 && rng.Intn(4) == 0 {
		e := net.Topo.Externals[rng.Intn(len(net.Topo.Externals))]
		env.FailExternal(e.Router.Name, e.Name)
	}
	return env
}

// fuzzDifferential compares encoder and simulator over random
// environments. Fixtures must have unique stable states (no
// mutual-redistribution disputes).
func fuzzDifferential(t *testing.T, net *testnets.Net, dsts []network.IP, iters int, seed int64) {
	t.Helper()
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulator.New(net.Graph)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < iters; i++ {
		dst := dsts[rng.Intn(len(dsts))]
		env := randEnv(rng, net, dst, 2)
		simres, err := sim.Run(dst, env)
		if err != nil {
			t.Fatalf("iter %d: simulate: %v (env %v)", i, err, env)
		}
		asg := solveConcrete(t, m, dst, env)
		compareStates(t, m, asg, simres, dst, env)
	}
}

func TestFuzzOSPFChain(t *testing.T) {
	net := testnets.OSPFChain(4)
	dsts := []network.IP{testnets.StubIP(1), testnets.StubIP(3), testnets.StubIP(4), ip("7.7.7.7")}
	fuzzDifferential(t, net, dsts, 25, 11)
}

func TestFuzzEBGPTriangle(t *testing.T) {
	net := testnets.EBGPTriangle()
	dsts := []network.IP{testnets.StubIP(1), testnets.StubIP(2), testnets.StubIP(3)}
	fuzzDifferential(t, net, dsts, 25, 12)
}

func TestFuzzHijackable(t *testing.T) {
	for _, filtered := range []bool{false, true} {
		net := testnets.Hijackable(filtered)
		dsts := []network.IP{ip("192.168.50.1"), ip("10.0.12.2"), ip("44.44.44.44")}
		fuzzDifferential(t, net, dsts, 25, 13)
	}
}

func TestFuzzACLSquare(t *testing.T) {
	net := testnets.ACLSquare()
	dsts := []network.IP{ip("10.50.0.1"), ip("10.0.25.2"), ip("9.9.9.9")}
	fuzzDifferential(t, net, dsts, 25, 14)
}
