package core

import (
	"strings"
	"testing"

	"repro/internal/simulator"
	"repro/internal/testnets"
)

func TestCheckSatFindsWitness(t *testing.T) {
	net := testnets.Hijackable(false)
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Witness: some stable state where R2 exits via N.
	cond := m.Main.CtrlFwd["R2"][Hop{Ext: "N"}]
	cex, err := m.CheckSat(cond)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("no witness found")
	}
	if cex.Env.Anns["N"] == nil {
		t.Fatalf("witness needs an announcement: %v", cex.Env)
	}
}

func TestReplayAgreement(t *testing.T) {
	net := testnets.Hijackable(false)
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cond := m.Ctx.And(
		m.Main.CtrlFwd["R2"][Hop{Ext: "N"}],
		m.NoFailures(),
		m.Ctx.Eq(m.DstIP, m.Ctx.BV(uint64(ip("192.168.50.1")), WidthIP)),
	)
	cex, err := m.CheckSat(cond)
	if err != nil || cex == nil {
		t.Fatalf("witness: %v %v", cex, err)
	}
	diffs, err := m.ReplayAgrees(cex)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("replay disagrees: %v", diffs)
	}
	simres, err := m.Replay(cex)
	if err != nil {
		t.Fatal(err)
	}
	if !simres.States["R2"].Best.Valid {
		t.Fatal("replayed state lost the route")
	}
}

func TestCounterexampleString(t *testing.T) {
	net := testnets.Hijackable(false)
	m, err := Encode(net.Graph, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cex, err := m.CheckSat(m.Main.Env["N"].Valid)
	if err != nil || cex == nil {
		t.Fatalf("%v %v", cex, err)
	}
	s := cex.String()
	if !strings.Contains(s, "packet:") || !strings.Contains(s, "environment:") {
		t.Fatalf("render: %q", s)
	}
	_ = simulator.NewEnvironment()
}
