package drat

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sat"
)

// randomBounds draws arbitrary split points for n steps and w segments:
// non-decreasing, starting at 0 and ending at n, duplicates (empty
// segments) allowed.
func randomBounds(rng *rand.Rand, n, w int) []int {
	bounds := make([]int, w+1)
	bounds[0], bounds[w] = 0, n
	for i := 1; i < w; i++ {
		bounds[i] = rng.Intn(n + 1)
	}
	sort.Ints(bounds)
	return bounds
}

// TestParallelAcceptsIffSequential is the equivalence property: for
// random instances and completely arbitrary split points, the segmented
// check must accept exactly the traces the sequential check accepts —
// valid proofs from the solver, and traces truncated just before the
// empty clause, which both must reject.
func TestParallelAcceptsIffSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	unsat := 0
	for tries := 0; unsat < 50; tries++ {
		if tries > 5000 {
			t.Fatalf("only %d unsat instances in %d tries", unsat, tries)
		}
		s, p := randomCNF(rng, 8+rng.Intn(12), 5.2)
		if s.Solve() != sat.Unsat {
			continue
		}
		unsat++
		seq, seqErr := Check(p)
		if seqErr != nil {
			t.Fatalf("instance %d: sequential rejected a solver proof: %v", unsat, seqErr)
		}
		for w := 2; w <= 5; w++ {
			bounds := randomBounds(rng, p.NumSteps(), w)
			st, err := checkWithBounds(p, bounds, nil)
			if err != nil {
				t.Fatalf("instance %d bounds %v: parallel rejected what sequential accepts: %v",
					unsat, bounds, err)
			}
			if st.Inputs != seq.Inputs || st.Lemmas != seq.Lemmas || st.Deletions != seq.Deletions {
				t.Fatalf("instance %d bounds %v: stats diverge: %+v vs %+v", unsat, bounds, st, seq)
			}
		}

		// Truncate the trace at a random point: whether the remainder still
		// demonstrates unsatisfiability (earlier installs may already
		// conflict) or not, the two checkers must agree on it.
		steps := p.Steps()
		if len(steps) < 2 {
			continue
		}
		trunc := replay(steps[:1+rng.Intn(len(steps)-1)])
		_, seqTruncErr := Check(trunc)
		bounds := randomBounds(rng, trunc.NumSteps(), 3)
		_, parTruncErr := checkWithBounds(trunc, bounds, nil)
		if (seqTruncErr == nil) != (parTruncErr == nil) {
			t.Fatalf("instance %d bounds %v: truncated trace: sequential err=%v, parallel err=%v",
				unsat, bounds, seqTruncErr, parTruncErr)
		}
	}
}

// TestParallelRejectsMutatedSegments drops all real lemmas from a
// pigeonhole proof and requires every split of the mutated trace to be
// rejected: a fast-forwarded prefix must not launder an unjustified
// derive past its segment's verifier.
func TestParallelRejectsMutatedSegments(t *testing.T) {
	s := sat.New()
	p := s.EnableProof()
	pigeonhole(s, 3)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("PHP(3) = %v, want unsat", st)
	}
	var kept []sat.ProofStep
	for _, st := range p.Steps() {
		if st.Kind == sat.ProofDerive && len(st.Lits) > 0 {
			continue
		}
		if st.Kind == sat.ProofDelete {
			continue
		}
		kept = append(kept, st)
	}
	mutated := replay(kept)
	if _, err := Check(mutated); err == nil {
		t.Fatal("sequential accepted the lemma-free proof")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		w := 2 + rng.Intn(6)
		bounds := randomBounds(rng, mutated.NumSteps(), w)
		if _, err := checkWithBounds(mutated, bounds, nil); err == nil {
			t.Fatalf("bounds %v: parallel accepted the lemma-free proof", bounds)
		}
	}
}

// TestParallelRejectsTamperedLemma mirrors the sequential tampering test
// through CheckParallel: flipping a literal of a random lemma must be
// rejected at least as often as sequentially — here, identically.
func TestParallelRejectsTamperedLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for tries := 0; checked < 30 && tries < 3000; tries++ {
		s, p := randomCNF(rng, 12, 5.0)
		if s.Solve() != sat.Unsat {
			continue
		}
		steps := append([]sat.ProofStep(nil), p.Steps()...)
		var idxs []int
		for i, st := range steps {
			if st.Kind == sat.ProofDerive && len(st.Lits) > 1 {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			continue
		}
		checked++
		i := idxs[rng.Intn(len(idxs))]
		lits := append([]sat.Lit(nil), steps[i].Lits...)
		lits[rng.Intn(len(lits))] = lits[rng.Intn(len(lits))].Not()
		steps[i] = sat.ProofStep{Kind: sat.ProofDerive, Lits: lits}
		mp := replay(steps)
		_, seqErr := Check(mp)
		_, parErr := CheckParallel(mp, 4)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("tampered step %d: sequential err=%v, parallel err=%v", i, seqErr, parErr)
		}
	}
	if checked == 0 {
		t.Fatal("no tampered instance was exercised")
	}
}

// TestCheckParallelEntry covers the public entry point's edge cases:
// nil proof, worker counts exceeding the step count, and the one-worker
// fallback.
func TestCheckParallelEntry(t *testing.T) {
	if _, err := CheckParallel(nil, 4); err == nil {
		t.Fatal("nil proof accepted")
	}
	s := sat.New()
	p := s.EnableProof()
	pigeonhole(s, 2)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("PHP(2) = %v, want unsat", st)
	}
	for _, w := range []int{1, 2, 1000} {
		if _, err := CheckParallel(p, w); err != nil {
			t.Fatalf("workers=%d: valid proof rejected: %v", w, err)
		}
	}
}
