package drat

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// TestCheckCoreExcludesIrrelevantInputs builds an UNSAT instance whose
// contradiction lives entirely in (a,b) and adds satisfiable clauses
// over (c,d) tagged with their own origin. The extracted core must
// certify, name only (a,b) inputs, and the origins reached through the
// core steps must exclude the irrelevant clauses' base.
func TestCheckCoreExcludesIrrelevantInputs(t *testing.T) {
	s := sat.New()
	p := s.EnableProof()
	s.EnableOriginTracking()
	a, b := s.NewVar(), s.NewVar()
	c, d := s.NewVar(), s.NewVar()

	s.SetOrigin(1)
	s.AddClause(sat.MkLit(a, false), sat.MkLit(b, false))
	s.AddClause(sat.MkLit(a, false), sat.MkLit(b, true))
	s.AddClause(sat.MkLit(a, true), sat.MkLit(b, false))
	s.AddClause(sat.MkLit(a, true), sat.MkLit(b, true))
	s.SetOrigin(99)
	s.AddClause(sat.MkLit(c, false), sat.MkLit(d, false))
	s.AddClause(sat.MkLit(c, true), sat.MkLit(d, false))
	s.SetOrigin()

	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("status %v, want Unsat", st)
	}
	stats, core, err := CheckCore(p)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || len(core) == 0 {
		t.Fatal("empty core on an UNSAT proof")
	}
	steps := p.Steps()
	for _, si := range core {
		st := steps[si]
		if st.Kind != sat.ProofInput {
			t.Fatalf("core step %d is %v, want input", si, st.Kind)
		}
		for _, l := range st.Lits {
			if v := l.Var(); v == c || v == d {
				t.Fatalf("core includes irrelevant clause %v", st.Lits)
			}
		}
		for _, base := range s.OriginSetBases(st.Origin) {
			if base == 99 {
				t.Fatalf("core step %d carries the irrelevant origin 99", si)
			}
		}
	}
}

// TestCheckCoreAgreesWithCheck runs CheckCore over random UNSAT instances
// and requires it to accept exactly when Check accepts, with every core
// index naming an input step.
func TestCheckCoreAgreesWithCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	unsat := 0
	for tries := 0; unsat < 25; tries++ {
		if tries > 3000 {
			t.Fatalf("only %d unsat instances in %d tries", unsat, tries)
		}
		s, p := randomCNF(rng, 8+rng.Intn(10), 5.2)
		if s.Solve() != sat.Unsat {
			continue
		}
		unsat++
		if _, err := Check(p); err != nil {
			t.Fatalf("Check rejected a solver proof: %v", err)
		}
		_, core, err := CheckCore(p)
		if err != nil {
			t.Fatalf("CheckCore rejected a proof Check accepted: %v", err)
		}
		if len(core) == 0 {
			t.Fatal("empty core")
		}
		steps := p.Steps()
		for i, si := range core {
			if steps[si].Kind != sat.ProofInput {
				t.Fatalf("core[%d] = step %d of kind %v", i, si, steps[si].Kind)
			}
			if i > 0 && core[i-1] >= si {
				t.Fatalf("core not sorted ascending: %v", core)
			}
		}
	}
}
