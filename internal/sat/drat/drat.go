// Package drat is a from-scratch RUP/DRAT proof checker for the traces
// recorded by sat.Solver.EnableProof. It shares no solving code with the
// solver: an independent two-watched-literal propagator replays the trace
// chronologically, accepting Input steps unchecked, verifying every
// Derive step by reverse unit propagation (assume the negation of the
// clause, propagate, require a conflict) and removing Delete steps from
// the database. A trace certifies unsatisfiability when the empty clause
// is derived, or when unit propagation alone refutes the accumulated
// database.
//
// Assumption literals (incremental sessions solve under activation
// literals) are treated as unit clauses present from the start, so the
// checked statement is UNSAT(formula ∧ assumptions).
package drat

import (
	"fmt"
	"sort"

	"repro/internal/sat"
)

// Stats summarizes a successful check.
type Stats struct {
	Inputs       int   // input clauses accepted unchecked
	Lemmas       int   // derive steps verified by RUP
	Deletions    int   // delete steps applied
	Propagations int64 // literals propagated while checking
}

// Check replays the proof chronologically and verifies that it
// establishes unsatisfiability of the recorded formula together with the
// given assumptions. It returns an error describing the first failing
// step, or the step count on success.
func Check(p *sat.Proof, assumptions ...sat.Lit) (*Stats, error) {
	c, _, err := replayTrace(p, false, assumptions)
	if err != nil {
		return nil, err
	}
	return &c.stats, nil
}

// CheckCore verifies the proof like Check and additionally extracts an
// unsatisfiable core: the indices of the Input steps the refutation
// actually depends on. While replaying, the checker records for every
// verified Derive step which database clauses its reverse-unit-
// propagation conflict touched (the conflicting clause plus the reason
// chain of every falsified literal); the refutation's own conflict is
// recorded the same way. Marking backwards from the refutation through
// those used-sets reaches exactly the steps the proof needs; the Input
// steps among them are the core. Assumption clauses are not steps and
// never appear in the core. Indices are sorted ascending.
func CheckCore(p *sat.Proof, assumptions ...sat.Lit) (*Stats, []int, error) {
	c, used, err := replayTrace(p, true, assumptions)
	if err != nil {
		return nil, nil, err
	}
	steps := p.Steps()
	marked := make(map[int]bool, len(c.refUsed))
	work := append([]int(nil), c.refUsed...)
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if marked[s] {
			continue
		}
		marked[s] = true
		if steps[s].Kind == sat.ProofDerive {
			work = append(work, used[s]...)
		}
	}
	var core []int
	for s := range marked {
		if steps[s].Kind == sat.ProofInput {
			core = append(core, s)
		}
	}
	sort.Ints(core)
	return &c.stats, core, nil
}

// replayTrace drives the checker over the trace. With core set it returns the
// per-Derive used-step sets; the refutation's used-set lands on
// checker.refUsed.
func replayTrace(p *sat.Proof, core bool, assumptions []sat.Lit) (*checker, map[int][]int, error) {
	if p == nil {
		return nil, nil, fmt.Errorf("drat: no proof recorded")
	}
	c := newChecker()
	c.core = core
	var used map[int][]int
	if core {
		used = map[int][]int{}
	}
	for _, a := range assumptions {
		c.install([]sat.Lit{a}, -1)
	}
	for i, st := range p.Steps() {
		switch st.Kind {
		case sat.ProofInput:
			c.stats.Inputs++
			c.install(st.Lits, i)
		case sat.ProofDerive:
			ok, u := c.rup(st.Lits)
			if !ok {
				return nil, nil, fmt.Errorf("drat: step %d: derived clause %v is not RUP", i, st.Lits)
			}
			c.stats.Lemmas++
			if core {
				used[i] = u
			}
			c.install(st.Lits, i)
		case sat.ProofDelete:
			if err := c.remove(st.Lits); err != nil {
				return nil, nil, fmt.Errorf("drat: step %d: %w", i, err)
			}
			c.stats.Deletions++
		default:
			return nil, nil, fmt.Errorf("drat: step %d: unknown kind %d", i, st.Kind)
		}
	}
	if !c.unsat {
		return nil, nil, fmt.Errorf("drat: proof ends without deriving the empty clause")
	}
	return c, used, nil
}

// value is a three-state assignment: 0 unknown, +1 true, -1 false.
type value int8

// clause is a checker clause. lits[0] and lits[1] are the watched
// positions while attached; key is the normalized (sorted, deduplicated)
// form used for deletion matching; step is the proof step that introduced
// the clause (-1 for assumption units, which are not proof steps).
type clause struct {
	lits     []sat.Lit
	key      string
	attached bool
	step     int
}

type checker struct {
	assigns []value     // indexed by Var
	reasons []*clause   // indexed by Var: antecedent of the current assignment
	watches [][]*clause // indexed by Lit
	trail   []sat.Lit
	qhead   int
	fixed   int // trail prefix that is permanent (root units + consequences)
	db      map[string][]*clause
	unsat   bool // empty clause derived or database refuted by propagation
	core    bool // record used-step sets for core extraction
	refUsed []int
	stats   Stats
}

func newChecker() *checker {
	return &checker{db: map[string][]*clause{}}
}

func (c *checker) ensure(v sat.Var) {
	for int(v) >= len(c.assigns) {
		c.assigns = append(c.assigns, 0)
		c.reasons = append(c.reasons, nil)
		c.watches = append(c.watches, nil, nil)
	}
}

func (c *checker) val(l sat.Lit) value {
	a := c.assigns[l.Var()]
	if l.Neg() {
		return -a
	}
	return a
}

// assign records l as true with the clause that forced it (nil for the
// assumed negations of a RUP check).
func (c *checker) assign(l sat.Lit, reason *clause) {
	if l.Neg() {
		c.assigns[l.Var()] = -1
	} else {
		c.assigns[l.Var()] = 1
	}
	c.reasons[l.Var()] = reason
	c.trail = append(c.trail, l)
}

// chainFrom collects the proof steps a conflict on cl depends on: cl's
// own step plus, transitively, the steps of the reason clauses that
// falsified its literals. Assumption clauses (step -1) terminate chains
// without contributing a step. The result is sorted.
func (c *checker) chainFrom(cl *clause) []int {
	seen := map[int]struct{}{}
	visited := map[sat.Var]struct{}{}
	var steps []int
	add := func(s int) {
		if s < 0 {
			return
		}
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			steps = append(steps, s)
		}
	}
	add(cl.step)
	stack := make([]sat.Var, 0, len(cl.lits))
	for _, l := range cl.lits {
		stack = append(stack, l.Var())
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := visited[v]; ok {
			continue
		}
		visited[v] = struct{}{}
		r := c.reasons[v]
		if r == nil {
			continue
		}
		add(r.step)
		for _, l := range r.lits {
			stack = append(stack, l.Var())
		}
	}
	sort.Ints(steps)
	return steps
}

// normalize sorts and deduplicates, reporting tautologies (x ∨ ¬x).
func normalize(lits []sat.Lit) (out []sat.Lit, taut bool) {
	out = append(out, lits...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	var prev sat.Lit = -1
	for _, l := range out {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return nil, true
		}
		out[n] = l
		n++
		prev = l
	}
	return out[:n], false
}

func key(norm []sat.Lit) string {
	b := make([]byte, 0, len(norm)*4)
	for _, l := range norm {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

// install adds a clause to the database and updates the persistent
// assignment: empty or all-false clauses refute the database, unit (or
// effectively-unit) clauses are propagated permanently. Tautologies are
// recorded for deletion matching but never attached.
func (c *checker) install(lits []sat.Lit, step int) {
	norm, taut := normalize(lits)
	for _, l := range norm {
		c.ensure(l.Var())
	}
	cl := &clause{lits: norm, key: key(norm), step: step}
	c.db[cl.key] = append(c.db[cl.key], cl)
	if taut || c.unsat {
		return
	}
	// Move two non-false literals to the watched positions. A clause with
	// a permanently-true literal can never become all-false, so it is
	// left detached.
	nonFalse := 0
	for i, l := range norm {
		switch c.val(l) {
		case 1:
			return
		case 0:
			norm[nonFalse], norm[i] = norm[i], norm[nonFalse]
			nonFalse++
		}
	}
	switch nonFalse {
	case 0:
		c.unsat = true
		if c.core {
			c.refUsed = c.chainFrom(cl)
		}
	case 1:
		c.assign(norm[0], cl)
		if confl := c.propagateFixed(); confl != nil {
			if c.core {
				c.refUsed = c.chainFrom(confl)
			}
		}
	default:
		cl.attached = true
		c.watch(norm[0], cl)
		c.watch(norm[1], cl)
	}
}

func (c *checker) watch(l sat.Lit, cl *clause) {
	c.watches[l.Not()] = append(c.watches[l.Not()], cl)
}

func (c *checker) unwatch(l sat.Lit, cl *clause) {
	ws := c.watches[l.Not()]
	for i := range ws {
		if ws[i] == cl {
			ws[i] = ws[len(ws)-1]
			c.watches[l.Not()] = ws[:len(ws)-1]
			return
		}
	}
}

// remove deletes one database occurrence of the clause. Units and the
// empty clause are never deleted by the solver, so a trace asking for
// that — or for a clause the database does not hold — is malformed.
func (c *checker) remove(lits []sat.Lit) error {
	norm, taut := normalize(lits)
	if !taut && len(norm) < 2 {
		return fmt.Errorf("deletion of unit/empty clause %v", lits)
	}
	k := key(norm)
	cls := c.db[k]
	if len(cls) == 0 {
		return fmt.Errorf("deletion of clause %v not in database", lits)
	}
	cl := cls[len(cls)-1]
	c.db[k] = cls[:len(cls)-1]
	if cl.attached {
		c.unwatch(cl.lits[0], cl)
		c.unwatch(cl.lits[1], cl)
	}
	return nil
}

// propagateFixed runs propagation and makes the result permanent,
// returning the conflicting clause (and marking the database refuted) if
// one arises.
func (c *checker) propagateFixed() *clause {
	confl := c.propagate()
	c.qhead = len(c.trail)
	c.fixed = len(c.trail)
	if confl != nil {
		c.unsat = true
	}
	return confl
}

// propagate processes the trail from qhead, returning the conflicting
// clause or nil.
func (c *checker) propagate() *clause {
	for c.qhead < len(c.trail) {
		p := c.trail[c.qhead]
		c.qhead++
		c.stats.Propagations++
		ws := c.watches[p]
		j := 0
	nextClause:
		for i := 0; i < len(ws); i++ {
			cl := ws[i]
			np := p.Not()
			if cl.lits[0] == np {
				cl.lits[0], cl.lits[1] = cl.lits[1], np
			}
			if c.val(cl.lits[0]) == 1 {
				ws[j] = cl
				j++
				continue
			}
			for k := 2; k < len(cl.lits); k++ {
				if c.val(cl.lits[k]) != -1 {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					c.watch(cl.lits[1], cl)
					continue nextClause
				}
			}
			ws[j] = cl
			j++
			if c.val(cl.lits[0]) == -1 {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				c.watches[p] = ws[:j]
				return cl
			}
			c.assign(cl.lits[0], cl)
		}
		c.watches[p] = ws[:j]
	}
	return nil
}

// rup verifies a derived clause by reverse unit propagation: assume every
// literal false, propagate, and require a conflict. A clause containing a
// permanently-true literal is already entailed; once the database is
// refuted everything is entailed. In core mode the second result lists
// the proof steps the verification depended on (the conflict's chain, or
// the entailing literal's reason chain).
func (c *checker) rup(lits []sat.Lit) (bool, []int) {
	if c.unsat {
		return true, nil
	}
	norm, taut := normalize(lits)
	if taut {
		return true, nil
	}
	mark := len(c.trail)
	for _, l := range norm {
		c.ensure(l.Var())
		switch c.val(l) {
		case 1:
			var used []int
			if c.core {
				if r := c.reasons[l.Var()]; r != nil {
					used = c.chainFrom(r)
				}
			}
			c.backtrack(mark)
			return true, used
		case 0:
			c.assign(l.Not(), nil)
		}
	}
	confl := c.propagate()
	var used []int
	if confl != nil && c.core {
		used = c.chainFrom(confl)
	}
	c.backtrack(mark)
	return confl != nil, used
}

// backtrack undoes every assignment past the persistent prefix mark.
func (c *checker) backtrack(mark int) {
	for i := len(c.trail) - 1; i >= mark; i-- {
		c.assigns[c.trail[i].Var()] = 0
		c.reasons[c.trail[i].Var()] = nil
	}
	c.trail = c.trail[:mark]
	c.qhead = mark
}
