// Package drat is a from-scratch RUP/DRAT proof checker for the traces
// recorded by sat.Solver.EnableProof. It shares no solving code with the
// solver: an independent two-watched-literal propagator replays the trace
// chronologically, accepting Input steps unchecked, verifying every
// Derive step by reverse unit propagation (assume the negation of the
// clause, propagate, require a conflict) and removing Delete steps from
// the database. A trace certifies unsatisfiability when the empty clause
// is derived, or when unit propagation alone refutes the accumulated
// database.
//
// Assumption literals (incremental sessions solve under activation
// literals) are treated as unit clauses present from the start, so the
// checked statement is UNSAT(formula ∧ assumptions).
package drat

import (
	"fmt"
	"sort"

	"repro/internal/sat"
)

// Stats summarizes a successful check.
type Stats struct {
	Inputs       int   // input clauses accepted unchecked
	Lemmas       int   // derive steps verified by RUP
	Deletions    int   // delete steps applied
	Propagations int64 // literals propagated while checking
}

// Check replays the proof chronologically and verifies that it
// establishes unsatisfiability of the recorded formula together with the
// given assumptions. It returns an error describing the first failing
// step, or the step count on success.
func Check(p *sat.Proof, assumptions ...sat.Lit) (*Stats, error) {
	if p == nil {
		return nil, fmt.Errorf("drat: no proof recorded")
	}
	c := newChecker()
	for _, a := range assumptions {
		c.install([]sat.Lit{a})
	}
	for i, st := range p.Steps() {
		switch st.Kind {
		case sat.ProofInput:
			c.stats.Inputs++
			c.install(st.Lits)
		case sat.ProofDerive:
			if !c.rup(st.Lits) {
				return nil, fmt.Errorf("drat: step %d: derived clause %v is not RUP", i, st.Lits)
			}
			c.stats.Lemmas++
			c.install(st.Lits)
		case sat.ProofDelete:
			if err := c.remove(st.Lits); err != nil {
				return nil, fmt.Errorf("drat: step %d: %w", i, err)
			}
			c.stats.Deletions++
		default:
			return nil, fmt.Errorf("drat: step %d: unknown kind %d", i, st.Kind)
		}
	}
	if !c.unsat {
		return nil, fmt.Errorf("drat: proof ends without deriving the empty clause")
	}
	return &c.stats, nil
}

// value is a three-state assignment: 0 unknown, +1 true, -1 false.
type value int8

// clause is a checker clause. lits[0] and lits[1] are the watched
// positions while attached; key is the normalized (sorted, deduplicated)
// form used for deletion matching.
type clause struct {
	lits     []sat.Lit
	key      string
	attached bool
}

type checker struct {
	assigns []value     // indexed by Var
	watches [][]*clause // indexed by Lit
	trail   []sat.Lit
	qhead   int
	fixed   int // trail prefix that is permanent (root units + consequences)
	db      map[string][]*clause
	unsat   bool // empty clause derived or database refuted by propagation
	stats   Stats
}

func newChecker() *checker {
	return &checker{db: map[string][]*clause{}}
}

func (c *checker) ensure(v sat.Var) {
	for int(v) >= len(c.assigns) {
		c.assigns = append(c.assigns, 0)
		c.watches = append(c.watches, nil, nil)
	}
}

func (c *checker) val(l sat.Lit) value {
	a := c.assigns[l.Var()]
	if l.Neg() {
		return -a
	}
	return a
}

func (c *checker) assign(l sat.Lit) {
	if l.Neg() {
		c.assigns[l.Var()] = -1
	} else {
		c.assigns[l.Var()] = 1
	}
	c.trail = append(c.trail, l)
}

// normalize sorts and deduplicates, reporting tautologies (x ∨ ¬x).
func normalize(lits []sat.Lit) (out []sat.Lit, taut bool) {
	out = append(out, lits...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	var prev sat.Lit = -1
	for _, l := range out {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return nil, true
		}
		out[n] = l
		n++
		prev = l
	}
	return out[:n], false
}

func key(norm []sat.Lit) string {
	b := make([]byte, 0, len(norm)*4)
	for _, l := range norm {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

// install adds a clause to the database and updates the persistent
// assignment: empty or all-false clauses refute the database, unit (or
// effectively-unit) clauses are propagated permanently. Tautologies are
// recorded for deletion matching but never attached.
func (c *checker) install(lits []sat.Lit) {
	norm, taut := normalize(lits)
	for _, l := range norm {
		c.ensure(l.Var())
	}
	cl := &clause{lits: norm, key: key(norm)}
	c.db[cl.key] = append(c.db[cl.key], cl)
	if taut || c.unsat {
		return
	}
	// Move two non-false literals to the watched positions. A clause with
	// a permanently-true literal can never become all-false, so it is
	// left detached.
	nonFalse := 0
	for i, l := range norm {
		switch c.val(l) {
		case 1:
			return
		case 0:
			norm[nonFalse], norm[i] = norm[i], norm[nonFalse]
			nonFalse++
		}
	}
	switch nonFalse {
	case 0:
		c.unsat = true
	case 1:
		c.assign(norm[0])
		if !c.propagateFixed() {
			c.unsat = true
		}
	default:
		cl.attached = true
		c.watch(norm[0], cl)
		c.watch(norm[1], cl)
	}
}

func (c *checker) watch(l sat.Lit, cl *clause) {
	c.watches[l.Not()] = append(c.watches[l.Not()], cl)
}

func (c *checker) unwatch(l sat.Lit, cl *clause) {
	ws := c.watches[l.Not()]
	for i := range ws {
		if ws[i] == cl {
			ws[i] = ws[len(ws)-1]
			c.watches[l.Not()] = ws[:len(ws)-1]
			return
		}
	}
}

// remove deletes one database occurrence of the clause. Units and the
// empty clause are never deleted by the solver, so a trace asking for
// that — or for a clause the database does not hold — is malformed.
func (c *checker) remove(lits []sat.Lit) error {
	norm, taut := normalize(lits)
	if !taut && len(norm) < 2 {
		return fmt.Errorf("deletion of unit/empty clause %v", lits)
	}
	k := key(norm)
	cls := c.db[k]
	if len(cls) == 0 {
		return fmt.Errorf("deletion of clause %v not in database", lits)
	}
	cl := cls[len(cls)-1]
	c.db[k] = cls[:len(cls)-1]
	if cl.attached {
		c.unwatch(cl.lits[0], cl)
		c.unwatch(cl.lits[1], cl)
	}
	return nil
}

// propagateFixed runs propagation and makes the result permanent,
// reporting false on conflict.
func (c *checker) propagateFixed() bool {
	ok := c.propagate()
	c.qhead = len(c.trail)
	c.fixed = len(c.trail)
	if !ok {
		c.unsat = true
	}
	return ok
}

// propagate processes the trail from qhead, returning false on conflict.
func (c *checker) propagate() bool {
	for c.qhead < len(c.trail) {
		p := c.trail[c.qhead]
		c.qhead++
		c.stats.Propagations++
		ws := c.watches[p]
		j := 0
	nextClause:
		for i := 0; i < len(ws); i++ {
			cl := ws[i]
			np := p.Not()
			if cl.lits[0] == np {
				cl.lits[0], cl.lits[1] = cl.lits[1], np
			}
			if c.val(cl.lits[0]) == 1 {
				ws[j] = cl
				j++
				continue
			}
			for k := 2; k < len(cl.lits); k++ {
				if c.val(cl.lits[k]) != -1 {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					c.watch(cl.lits[1], cl)
					continue nextClause
				}
			}
			ws[j] = cl
			j++
			if c.val(cl.lits[0]) == -1 {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				c.watches[p] = ws[:j]
				return false
			}
			c.assign(cl.lits[0])
		}
		c.watches[p] = ws[:j]
	}
	return true
}

// rup verifies a derived clause by reverse unit propagation: assume every
// literal false, propagate, and require a conflict. A clause containing a
// permanently-true literal is already entailed; once the database is
// refuted everything is entailed.
func (c *checker) rup(lits []sat.Lit) bool {
	if c.unsat {
		return true
	}
	norm, taut := normalize(lits)
	if taut {
		return true
	}
	mark := len(c.trail)
	for _, l := range norm {
		c.ensure(l.Var())
		switch c.val(l) {
		case 1:
			c.backtrack(mark)
			return true
		case 0:
			c.assign(l.Not())
		}
	}
	ok := c.propagate()
	c.backtrack(mark)
	return !ok
}

// backtrack undoes every assignment past the persistent prefix mark.
func (c *checker) backtrack(mark int) {
	for i := len(c.trail) - 1; i >= mark; i-- {
		c.assigns[c.trail[i].Var()] = 0
	}
	c.trail = c.trail[:mark]
	c.qhead = mark
}
