package drat

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// randomCNF loads a random 3-SAT instance near the phase transition into
// a fresh solver and returns it with proof logging on.
func randomCNF(rng *rand.Rand, nv int, ratio float64) (*sat.Solver, *sat.Proof) {
	s := sat.New()
	p := s.EnableProof()
	vars := make([]sat.Var, nv)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	n := int(ratio * float64(nv))
	for i := 0; i < n; i++ {
		lits := make([]sat.Lit, 0, 3)
		for len(lits) < 3 {
			lits = append(lits, sat.MkLit(vars[rng.Intn(nv)], rng.Intn(2) == 0))
		}
		s.AddClause(lits...)
	}
	return s, p
}

// TestAcceptsRandomUnsatProofs generates random small instances until 100
// unsatisfiable ones have been solved, and requires every recorded proof
// to check.
func TestAcceptsRandomUnsatProofs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	unsat := 0
	for tries := 0; unsat < 100; tries++ {
		if tries > 5000 {
			t.Fatalf("only %d unsat instances in %d tries", unsat, tries)
		}
		s, p := randomCNF(rng, 8+rng.Intn(12), 5.2)
		if s.Solve() != sat.Unsat {
			continue
		}
		unsat++
		st, err := Check(p)
		if err != nil {
			t.Fatalf("instance %d: valid proof rejected: %v", unsat, err)
		}
		if st.Inputs == 0 {
			t.Fatalf("instance %d: no inputs in stats", unsat)
		}
	}
}

// pigeonhole needs real search: dropping its lemmas must make the proof
// uncheckable, because unit propagation alone cannot refute it.
func pigeonhole(s *sat.Solver, n int) {
	vars := make([][]sat.Var, n+1)
	for p := range vars {
		vars[p] = make([]sat.Var, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]sat.Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = sat.MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(sat.MkLit(vars[p1][h], true), sat.MkLit(vars[p2][h], true))
			}
		}
	}
}

// replay turns a (possibly mutated) step list back into a Proof.
func replay(steps []sat.ProofStep) *sat.Proof {
	return sat.RebuildProof(steps)
}

func TestRejectsDroppedLemmas(t *testing.T) {
	s := sat.New()
	p := s.EnableProof()
	pigeonhole(s, 3)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("PHP(3) = %v, want unsat", st)
	}
	if _, err := Check(p); err != nil {
		t.Fatalf("intact proof rejected: %v", err)
	}
	// Drop every non-empty derived clause: the remaining trace claims the
	// empty clause follows from the inputs by propagation alone, which is
	// false for PHP.
	var kept []sat.ProofStep
	dropped := 0
	for _, st := range p.Steps() {
		if st.Kind == sat.ProofDerive && len(st.Lits) > 0 {
			dropped++
			continue
		}
		// Deletions of the dropped lemmas would now dangle; skip them too.
		if st.Kind == sat.ProofDelete {
			continue
		}
		kept = append(kept, st)
	}
	if dropped == 0 {
		t.Fatal("PHP(3) produced no lemmas; instance too easy")
	}
	if _, err := Check(replay(kept)); err == nil {
		t.Fatal("proof with all lemmas dropped was accepted")
	}
}

func TestRejectsTamperedLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rejected := 0
	for tries := 0; rejected < 20 && tries < 2000; tries++ {
		s, p := randomCNF(rng, 12, 5.0)
		if s.Solve() != sat.Unsat {
			continue
		}
		steps := append([]sat.ProofStep(nil), p.Steps()...)
		// Flip one literal of one random multi-literal lemma.
		var idxs []int
		for i, st := range steps {
			if st.Kind == sat.ProofDerive && len(st.Lits) > 1 {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			continue
		}
		i := idxs[rng.Intn(len(idxs))]
		lits := append([]sat.Lit(nil), steps[i].Lits...)
		lits[rng.Intn(len(lits))] = lits[rng.Intn(len(lits))].Not()
		steps[i] = sat.ProofStep{Kind: sat.ProofDerive, Lits: lits}
		if _, err := Check(replay(steps)); err != nil {
			rejected++
		}
		// A tampered lemma can occasionally still be RUP; only a complete
		// failure to ever reject is a checker bug.
	}
	if rejected == 0 {
		t.Fatal("checker accepted every tampered proof")
	}
}

func TestRejectsUnknownDeletion(t *testing.T) {
	s := sat.New()
	p := s.EnableProof()
	x, y, z := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(sat.MkLit(x, false), sat.MkLit(y, false))
	steps := append([]sat.ProofStep(nil), p.Steps()...)
	steps = append(steps, sat.ProofStep{
		Kind: sat.ProofDelete,
		Lits: []sat.Lit{sat.MkLit(x, false), sat.MkLit(z, false)},
	})
	if _, err := Check(replay(steps)); err == nil {
		t.Fatal("deletion of a clause never added was accepted")
	}
}

func TestRejectsSatTrace(t *testing.T) {
	s := sat.New()
	p := s.EnableProof()
	x := s.NewVar()
	s.AddClause(sat.MkLit(x, false))
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("got %v, want sat", st)
	}
	if _, err := Check(p); err == nil {
		t.Fatal("trace of a satisfiable run was accepted as an unsat certificate")
	}
}

func TestNilProof(t *testing.T) {
	if _, err := Check(nil); err == nil {
		t.Fatal("nil proof accepted")
	}
}
