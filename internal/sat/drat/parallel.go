package drat

import (
	"fmt"
	"sync"

	"repro/internal/sat"
)

// CheckParallel verifies the proof with the given number of concurrent
// workers and the same acceptance semantics as Check: it accepts exactly
// the traces Check accepts. The trace is partitioned into contiguous
// segments balanced by literal mass; worker k reconstructs the database
// state at its segment boundary by fast-forwarding the prefix — applying
// installs and deletes and propagating units, but skipping RUP
// verification, which is the dominant cost — and then fully verifies the
// Derive steps of its own segment. Every Derive step is therefore RUP-
// checked by exactly one worker against the same database state the
// sequential checker would present, and the union of the segment checks
// is the sequential check.
//
// Core extraction stays sequential (CheckCore): it threads used-step
// state through the whole replay.
func CheckParallel(p *sat.Proof, workers int, assumptions ...sat.Lit) (*Stats, error) {
	if p == nil {
		return nil, fmt.Errorf("drat: no proof recorded")
	}
	if workers > p.NumSteps() {
		workers = p.NumSteps()
	}
	if workers <= 1 {
		return Check(p, assumptions...)
	}
	return checkWithBounds(p, splitBounds(p, workers), assumptions)
}

// splitBounds partitions the trace into segments of roughly equal literal
// mass, weighting Derive steps (which pay a RUP check) by their size.
// The result has workers+1 entries from 0 to NumSteps.
func splitBounds(p *sat.Proof, workers int) []int {
	steps := p.Steps()
	weight := func(st sat.ProofStep) int {
		if st.Kind == sat.ProofDerive {
			return 4 + len(st.Lits)
		}
		return 1
	}
	total := 0
	for _, st := range steps {
		total += weight(st)
	}
	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, 0)
	acc, cut := 0, 1
	for i, st := range steps {
		acc += weight(st)
		for cut < workers && acc >= cut*total/workers {
			bounds = append(bounds, i+1)
			cut++
		}
	}
	for len(bounds) < workers {
		bounds = append(bounds, len(steps))
	}
	bounds = append(bounds, len(steps))
	return bounds
}

// checkWithBounds runs one checker per segment. Exposed to the property
// tests so arbitrary split points can be exercised; bounds must be
// non-decreasing, start at 0 and end at NumSteps.
func checkWithBounds(p *sat.Proof, bounds []int, assumptions []sat.Lit) (*Stats, error) {
	steps := p.Steps()
	n := len(bounds) - 1
	type segment struct {
		stats Stats
		unsat bool
		err   error
	}
	segs := make([]segment, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		w := w
		go func() {
			defer wg.Done()
			c := newChecker()
			for _, a := range assumptions {
				c.install([]sat.Lit{a}, -1)
			}
			for i := 0; i < bounds[w]; i++ {
				if err := c.apply(steps[i], i, false); err != nil {
					segs[w].err = err
					return
				}
			}
			for i := bounds[w]; i < bounds[w+1]; i++ {
				if err := c.apply(steps[i], i, true); err != nil {
					segs[w].err = err
					return
				}
			}
			segs[w] = segment{stats: c.stats, unsat: c.unsat}
		}()
	}
	wg.Wait()
	merged := &Stats{}
	for w := 0; w < n; w++ {
		if segs[w].err != nil {
			return nil, segs[w].err
		}
		merged.Inputs += segs[w].stats.Inputs
		merged.Lemmas += segs[w].stats.Lemmas
		merged.Deletions += segs[w].stats.Deletions
		merged.Propagations += segs[w].stats.Propagations
	}
	if !segs[n-1].unsat {
		return nil, fmt.Errorf("drat: proof ends without deriving the empty clause")
	}
	return merged, nil
}

// apply processes one trace step. With verify set it behaves exactly like
// the sequential replay (RUP-checking Derive steps and counting stats);
// without it the step is only applied to the database — the fast-forward
// used to reconstruct a segment boundary's state, whose install, delete
// and unit-propagation effects are deterministic and independent of the
// skipped RUP verdicts. Propagation work is counted in both modes.
func (c *checker) apply(st sat.ProofStep, i int, verify bool) error {
	switch st.Kind {
	case sat.ProofInput:
		if verify {
			c.stats.Inputs++
		}
		c.install(st.Lits, i)
	case sat.ProofDerive:
		if verify {
			ok, _ := c.rup(st.Lits)
			if !ok {
				return fmt.Errorf("drat: step %d: derived clause %v is not RUP", i, st.Lits)
			}
			c.stats.Lemmas++
		}
		c.install(st.Lits, i)
	case sat.ProofDelete:
		if err := c.remove(st.Lits); err != nil {
			return fmt.Errorf("drat: step %d: %w", i, err)
		}
		if verify {
			c.stats.Deletions++
		}
	default:
		return fmt.Errorf("drat: step %d: unknown kind %d", i, st.Kind)
	}
	return nil
}
