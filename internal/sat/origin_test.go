package sat

import "testing"

// TestOriginSetInterning pins the set-interning semantics behind
// SetOrigin: base lists are sorted and deduplicated, identical sets share
// one id, negative ids are dropped, and the empty set stays id 0.
func TestOriginSetInterning(t *testing.T) {
	s := New()
	s.EnableOriginTracking()
	a, b := s.NewVar(), s.NewVar()

	s.SetOrigin(3, 1, 3)
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.SetOrigin(1, 3)
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.SetOrigin(-7)
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.SetOrigin()
	s.AddClause(MkLit(a, true), MkLit(b, true))

	sets, counts := s.OriginSnapshot()
	if len(sets) != len(counts) {
		t.Fatalf("snapshot misaligned: %d sets, %d counts", len(sets), len(counts))
	}
	// Id 0 is the empty set; {3,1,3} and {1,3} intern to one further set.
	if len(sets) != 2 {
		t.Fatalf("interned %d sets, want 2 (empty + {1,3}): %v", len(sets), sets)
	}
	if len(sets[0]) != 0 {
		t.Fatalf("set 0 not empty: %v", sets[0])
	}
	if len(sets[1]) != 2 || sets[1][0] != 1 || sets[1][1] != 3 {
		t.Fatalf("set 1 = %v, want [1 3]", sets[1])
	}
}

// TestOriginAttribution solves a small UNSAT instance with two tagged
// clause groups plus untagged glue and checks that solver work lands on
// the tagged sets: the conflicting constraints over (a,b) must be
// attributed, and learned-clause origins must be unions of antecedent
// bases — never inventions.
func TestOriginAttribution(t *testing.T) {
	s := New()
	s.EnableOriginTracking()
	a, b := s.NewVar(), s.NewVar()
	c, d := s.NewVar(), s.NewVar()

	s.SetOrigin(10)
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.SetOrigin(20)
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, true))
	s.SetOrigin()
	s.AddClause(MkLit(c, false), MkLit(d, false)) // satisfiable, irrelevant

	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v, want Unsat", st)
	}
	sets, counts := s.OriginSnapshot()
	var worked []int32
	for id, cnt := range counts {
		if cnt == (OriginCounts{}) {
			continue
		}
		for _, base := range sets[id] {
			if base != 10 && base != 20 {
				t.Fatalf("work attributed to unknown base %d (set %v)", base, sets[id])
			}
			worked = append(worked, base)
		}
	}
	if len(worked) == 0 {
		t.Fatal("UNSAT solve attributed no work to any tagged origin")
	}
}

// TestOriginTrackingOffIsFree pins the disabled path: without
// EnableOriginTracking the snapshot is nil and SetOrigin is a no-op.
func TestOriginTrackingOffIsFree(t *testing.T) {
	s := New()
	s.SetOrigin(1, 2, 3)
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	if sets, counts := s.OriginSnapshot(); sets != nil || counts != nil {
		t.Fatalf("snapshot without tracking: %v %v", sets, counts)
	}
	if s.TrackingOrigins() {
		t.Fatal("TrackingOrigins() true without enable")
	}
}
