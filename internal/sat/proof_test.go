package sat_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sat"
	"repro/internal/sat/drat"
)

// pigeonhole builds PHP(n): n+1 pigeons into n holes, a classic UNSAT
// family that needs real search (no refutation by unit propagation).
// Returns the solver's variable matrix for reuse.
func pigeonhole(s *sat.Solver, n int) [][]sat.Var {
	vars := make([][]sat.Var, n+1)
	for p := range vars {
		vars[p] = make([]sat.Var, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]sat.Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = sat.MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(sat.MkLit(vars[p1][h], true), sat.MkLit(vars[p2][h], true))
			}
		}
	}
	return vars
}

// TestProofSimplifyAndRestarts is the regression for the Simplify audit:
// a known-UNSAT instance is pushed through root-unit strengthening,
// satisfied-clause removal, restarts and a final refutation, and the
// recorded trace must still check. Before Simplify mirrored its rewrites
// into the trace, the deletions it performed silently desynchronized the
// proof from the database.
func TestProofSimplifyAndRestarts(t *testing.T) {
	s := sat.New()
	p := s.EnableProof()
	pigeonhole(s, 5)

	// Extra structure for Simplify to chew on: units that satisfy some
	// clauses outright and strengthen others.
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(sat.MkLit(a, false), sat.MkLit(b, false))                     // satisfied once a holds
	s.AddClause(sat.MkLit(a, true), sat.MkLit(b, false), sat.MkLit(c, false)) // strengthened once a holds
	s.AddClause(sat.MkLit(b, true), sat.MkLit(c, true))
	s.AddClause(sat.MkLit(a, false)) // unit: a

	if !s.Simplify() {
		t.Fatal("Simplify reported unsat on a not-yet-refuted instance")
	}
	if s.Stats.Simplified == 0 {
		t.Fatal("test instance did not exercise satisfied-clause removal")
	}
	if s.Stats.Strengthened == 0 {
		t.Fatal("test instance did not exercise literal strengthening")
	}
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("PHP(5) = %v, want unsat", st)
	}
	if s.Stats.Restarts == 0 {
		t.Fatal("instance solved without restarting; pick a harder one")
	}
	if _, err := drat.Check(p); err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
}

// TestProofSurvivesReduceDB drives the solver into learned-clause
// deletion and checks the trace still verifies: reduceDB must log every
// clause it drops.
func TestProofSurvivesReduceDB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for try := 0; ; try++ {
		if try > 50 {
			t.Fatal("no random instance exercised reduceDB")
		}
		s := sat.New()
		p := s.EnableProof()
		nv := 140
		vars := make([]sat.Var, nv)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		for i := 0; i < int(4.4*float64(nv)); i++ {
			var lits []sat.Lit
			for len(lits) < 3 {
				l := sat.MkLit(vars[rng.Intn(nv)], rng.Intn(2) == 0)
				lits = append(lits, l)
			}
			s.AddClause(lits...)
		}
		st := s.Solve()
		if st != sat.Unsat || s.Stats.Deleted == 0 {
			continue
		}
		if _, err := drat.Check(p); err != nil {
			t.Fatalf("proof rejected after reduceDB (try %d): %v", try, err)
		}
		return
	}
}

// TestProofIncrementalAssumptions covers the session pattern: clauses
// added between solves, UNSAT under an activation literal, certified with
// the assumption handed to the checker.
func TestProofIncrementalAssumptions(t *testing.T) {
	s := sat.New()
	p := s.EnableProof()
	x, y, act := s.NewVar(), s.NewVar(), s.NewVar()
	lx, ly, lact := sat.MkLit(x, false), sat.MkLit(y, false), sat.MkLit(act, false)
	s.AddClause(lx, ly)
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("base = %v, want sat", st)
	}
	// act → ¬x, act → ¬y: unsat only under the assumption.
	s.AddClause(lact.Not(), lx.Not())
	s.AddClause(lact.Not(), ly.Not())
	if st := s.Solve(lact); st != sat.Unsat {
		t.Fatalf("assumed = %v, want unsat", st)
	}
	if _, err := drat.Check(p, lact); err != nil {
		t.Fatalf("proof with assumption rejected: %v", err)
	}
	if _, err := drat.Check(p); err == nil {
		t.Fatal("proof without the assumption checked; formula alone is sat")
	}
	// Still sat without the assumption — and the trace keeps growing.
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("retry without assumption = %v, want sat", st)
	}
	if p.NumSteps() == 0 {
		t.Fatal("empty trace")
	}
}

// TestProofEnableSnapshotsDatabase: enabling after clauses were added
// must snapshot them, so later verdicts stay certifiable.
func TestProofEnableSnapshotsDatabase(t *testing.T) {
	s := sat.New()
	x, y := s.NewVar(), s.NewVar()
	lx, ly := sat.MkLit(x, false), sat.MkLit(y, false)
	s.AddClause(lx, ly)
	s.AddClause(lx.Not()) // unit before enabling
	p := s.EnableProof()
	s.AddClause(lx, ly.Not())
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	if _, err := drat.Check(p); err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
}

func TestWriteDRAT(t *testing.T) {
	s := sat.New()
	p := s.EnableProof()
	x := s.NewVar()
	y := s.NewVar()
	s.AddClause(sat.MkLit(x, false), sat.MkLit(y, false))
	s.AddClause(sat.MkLit(x, false), sat.MkLit(y, true))
	s.AddClause(sat.MkLit(x, true), sat.MkLit(y, false))
	s.AddClause(sat.MkLit(x, true), sat.MkLit(y, true))
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	var buf bytes.Buffer
	if err := p.WriteDRAT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0\n") {
		t.Fatalf("no terminated DRAT lines in %q", out)
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "0") {
		t.Fatalf("trace does not end in a clause line: %q", out)
	}
	inputs, derives, _ := p.Counts()
	if inputs != 4 || derives == 0 {
		t.Fatalf("counts: %d inputs (want 4), %d derives (want >0)", inputs, derives)
	}
}
