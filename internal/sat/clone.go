package sat

// Cloning supports the parallel solve engine: a portfolio race or a cube
// fan-out starts from byte-identical copies of one template solver, so a
// clone configured like the template searches exactly the trajectory the
// template would have. Everything that influences the search is copied
// verbatim — clause databases, watch-list order, trail, VSIDS heap order,
// saved phases, activities, stats, the proof trace and the origin tables —
// which is what the determinism pin in core relies on.

// SeedRandom seeds the solver's deterministic random generator used by
// RandomFreq decisions. Zero is mapped to a fixed non-zero constant, so a
// zero-valued seed still yields a working generator.
func (s *Solver) SeedRandom(seed int64) {
	s.rng = uint64(seed)
	if s.rng == 0 {
		s.rng = 0x9e3779b97f4a7c15
	}
}

// nextRand advances the xorshift64 state and returns it.
func (s *Solver) nextRand() uint64 {
	if s.rng == 0 {
		s.rng = 0x9e3779b97f4a7c15
	}
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// randFloat returns a deterministic uniform float in [0,1).
func (s *Solver) randFloat() float64 {
	return float64(s.nextRand()>>11) / float64(1<<53)
}

// Activity returns v's VSIDS activity, the lookahead signal used by
// cube-and-conquer to rank split candidates after a probing run.
func (s *Solver) Activity(v Var) float64 {
	if int(v) >= len(s.activity) {
		return 0
	}
	return s.activity[v]
}

// SetAllSavedPhases overwrites the saved phase of every allocated
// variable: neg=true biases future decisions to false (the allocation
// default), neg=false to true. Portfolio configurations use it to flip
// the polarity of one racer.
func (s *Solver) SetAllSavedPhases(neg bool) {
	for i := range s.polarity {
		s.polarity[i] = neg
	}
}

// JitterActivity adds eps-scaled deterministic noise to every variable's
// VSIDS activity and restores the heap invariant, diversifying the
// branching order of one portfolio racer without erasing what the
// template search already learned.
func (s *Solver) JitterActivity(seed int64, eps float64) {
	s.SeedRandom(seed)
	for v := range s.activity {
		s.activity[v] += eps * s.randFloat()
	}
	s.order.rebuild()
}

// Clone returns a deep copy of the solver sharing no mutable state with
// the receiver. The receiver is backtracked to decision level 0 first
// (exactly what its own next Solve call would do), so clone and template
// observe the same root state. The clone starts with a clear interrupt
// flag and no progress hook; proof and origin tracking carry over with
// the recorded prefix intact, so the clone's trace extends the template's
// byte for byte.
func (s *Solver) Clone() *Solver {
	s.cancelUntil(0)
	n := &Solver{
		varInc:       s.varInc,
		varDecay:     s.varDecay,
		claInc:       s.claInc,
		claDecay:     s.claDecay,
		ok:           s.ok,
		qhead:        s.qhead,
		Stats:        s.Stats,
		MaxConflicts: s.MaxConflicts,
		RestartBase:  s.RestartBase,
		RandomFreq:   s.RandomFreq,
		rng:          s.rng,
	}
	remap := make(map[*clause]*clause, len(s.clauses)+len(s.learnts))
	cloneList := func(cs []*clause) []*clause {
		if cs == nil {
			return nil
		}
		out := make([]*clause, len(cs))
		for i, c := range cs {
			nc := &clause{
				lits:     append([]Lit(nil), c.lits...),
				activity: c.activity,
				lbd:      c.lbd,
				learnt:   c.learnt,
				origin:   c.origin,
			}
			remap[c] = nc
			out[i] = nc
		}
		return out
	}
	n.clauses = cloneList(s.clauses)
	n.learnts = cloneList(s.learnts)
	n.watches = make([][]watcher, len(s.watches))
	for i, ws := range s.watches {
		if ws == nil {
			continue
		}
		nws := make([]watcher, len(ws))
		for j, w := range ws {
			nws[j] = watcher{c: remap[w.c], blocker: w.blocker}
		}
		n.watches[i] = nws
	}
	n.assigns = append([]Tribool(nil), s.assigns...)
	n.level = append([]int32(nil), s.level...)
	n.polarity = append([]bool(nil), s.polarity...)
	n.activity = append([]float64(nil), s.activity...)
	n.reason = make([]*clause, len(s.reason))
	for i, c := range s.reason {
		if c != nil {
			n.reason[i] = remap[c]
		}
	}
	n.trail = append([]Lit(nil), s.trail...)
	n.trailLim = append([]int(nil), s.trailLim...)
	n.seen = make([]bool, len(s.seen))
	n.order = &varHeap{
		solver: n,
		heap:   append([]Var(nil), s.order.heap...),
		index:  append([]int32(nil), s.order.index...),
	}
	if s.proof != nil {
		// Steps are append-only and their literal slices immutable, so the
		// shallow step copy is safe: template and clone extend distinct
		// backing arrays from here on.
		n.proof = &Proof{steps: append([]ProofStep(nil), s.proof.steps...), lits: s.proof.lits}
	}
	if s.origins != nil {
		n.origins = s.origins.clone()
	}
	return n
}

// rebuild restores the heap invariant after a bulk activity rewrite.
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}
