package sat

// Origin tracking attributes solver work to the constraints that caused
// it. The solver itself knows nothing about routers or config stanzas:
// callers intern their provenance elsewhere into small "base ids"
// (int32) and hand the solver sets of them. The solver in turn interns
// each distinct set once, stamps the set id onto every clause added
// while it is current, unions antecedent sets onto learned clauses, and
// keeps per-set work counters that the caller expands back into
// per-origin rows. Set id 0 is the empty set ("no origin"); with
// tracking disabled every clause stays at 0 and the hot paths pay one
// predictable branch.

// OriginCounts is the work attributed to one origin set.
type OriginCounts struct {
	// Conflicts counts conflicts whose conflicting clause carried the set.
	Conflicts int64
	// Propagations counts unit propagations whose reason clause carried
	// the set.
	Propagations int64
	// Learned counts clauses learned with this set (the union of the
	// conflict's antecedent sets); LBDSum accumulates their LBD.
	Learned int64
	LBDSum  int64
}

// originState holds the tracking tables, split out so a solver without
// tracking carries one nil pointer.
type originState struct {
	cur     int32            // set id stamped onto clauses being added
	sets    [][]int32        // set id -> sorted base ids; sets[0] = empty
	keys    map[string]int32 // canonical key -> set id
	counts  []OriginCounts   // indexed by set id
	unions  map[uint64]int32 // memoized pairwise unions
	scratch []int32          // analyze: distinct antecedent set ids
	learned int32            // origin of the clause analyze just built
}

// EnableOriginTracking turns on per-origin attribution. Enable before
// adding clauses so every clause carries its creator's origin;
// idempotent.
func (s *Solver) EnableOriginTracking() {
	if s.origins != nil {
		return
	}
	s.origins = &originState{
		sets:   [][]int32{nil},
		keys:   map[string]int32{"": 0},
		counts: make([]OriginCounts, 1),
		unions: map[uint64]int32{},
	}
}

// TrackingOrigins reports whether origin tracking is enabled.
func (s *Solver) TrackingOrigins() bool { return s.origins != nil }

// SetOrigin declares the base origins of the clauses added next. With
// tracking off it is a no-op; an empty call resets to "no origin".
func (s *Solver) SetOrigin(bases ...int32) {
	if s.origins == nil {
		return
	}
	s.origins.cur = s.origins.intern(bases)
}

// OriginSetBases returns the base origin ids of an interned set (the
// value recorded on ProofStep.Origin). The slice is owned by the
// solver; callers must not mutate it.
func (s *Solver) OriginSetBases(id int32) []int32 {
	if s.origins == nil || id <= 0 || int(id) >= len(s.origins.sets) {
		return nil
	}
	return s.origins.sets[id]
}

// OriginSnapshot copies the interned sets and their work counters, for
// profile construction. Index i of both slices describes set id i.
func (s *Solver) OriginSnapshot() (sets [][]int32, counts []OriginCounts) {
	if s.origins == nil {
		return nil, nil
	}
	sets = make([][]int32, len(s.origins.sets))
	for i, set := range s.origins.sets {
		sets[i] = append([]int32(nil), set...)
	}
	return sets, append([]OriginCounts(nil), s.origins.counts...)
}

// InternOriginSet interns a base-id set and returns its id, without
// changing the current clause origin. The parallel solve engine uses it
// to remap origin ids recorded by a racing clone back into the template
// solver's tables before adopting the clone's proof trace.
func (s *Solver) InternOriginSet(bases []int32) int32 {
	if s.origins == nil {
		return 0
	}
	return s.origins.intern(bases)
}

// clone deep-copies the tracking tables so a cloned solver interns new
// sets without perturbing the original's ids.
func (o *originState) clone() *originState {
	n := &originState{
		cur:     o.cur,
		sets:    make([][]int32, len(o.sets)),
		keys:    make(map[string]int32, len(o.keys)),
		counts:  append([]OriginCounts(nil), o.counts...),
		unions:  make(map[uint64]int32, len(o.unions)),
		learned: o.learned,
	}
	for i, set := range o.sets {
		n.sets[i] = append([]int32(nil), set...)
	}
	for k, v := range o.keys {
		n.keys[k] = v
	}
	for k, v := range o.unions {
		n.unions[k] = v
	}
	return n
}

// clauseOrigin is the origin stamped onto clauses being added now.
func (s *Solver) clauseOrigin() int32 {
	if s.origins == nil {
		return 0
	}
	return s.origins.cur
}

// intern returns the set id for a list of base ids (sorted, deduped
// internally; the input is not mutated).
func (o *originState) intern(bases []int32) int32 {
	switch len(bases) {
	case 0:
		return 0
	case 1:
		if bases[0] < 0 {
			return 0
		}
	}
	sorted := append([]int32(nil), bases...)
	insertionSort(sorted)
	n := 0
	for i, b := range sorted {
		if b < 0 || (i > 0 && b == sorted[n-1]) {
			continue
		}
		sorted[n] = b
		n++
	}
	sorted = sorted[:n]
	return o.internSorted(sorted)
}

func (o *originState) internSorted(sorted []int32) int32 {
	if len(sorted) == 0 {
		return 0
	}
	k := setKey(sorted)
	if id, ok := o.keys[k]; ok {
		return id
	}
	id := int32(len(o.sets))
	o.sets = append(o.sets, append([]int32(nil), sorted...))
	o.counts = append(o.counts, OriginCounts{})
	o.keys[k] = id
	return id
}

// union returns the id of sets[a] ∪ sets[b], memoizing pairs: conflict
// analysis folds many antecedents and the same pairs recur constantly.
func (o *originState) union(a, b int32) int32 {
	if a == b || b == 0 {
		return a
	}
	if a == 0 {
		return b
	}
	if a > b {
		a, b = b, a
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	if id, ok := o.unions[key]; ok {
		return id
	}
	sa, sb := o.sets[a], o.sets[b]
	merged := make([]int32, 0, len(sa)+len(sb))
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			merged = append(merged, sa[i])
			i++
		case sa[i] > sb[j]:
			merged = append(merged, sb[j])
			j++
		default:
			merged = append(merged, sa[i])
			i++
			j++
		}
	}
	merged = append(merged, sa[i:]...)
	merged = append(merged, sb[j:]...)
	id := o.internSorted(merged)
	o.unions[key] = id
	return id
}

// noteAntecedent collects a distinct antecedent set id during conflict
// analysis; analyze resolves few distinct origin sets per conflict, so
// a linear scan beats hashing.
func (o *originState) noteAntecedent(id int32) {
	if id == 0 {
		return
	}
	for _, seen := range o.scratch {
		if seen == id {
			return
		}
	}
	o.scratch = append(o.scratch, id)
}

// finishAnalyze folds the collected antecedent sets into the learned
// clause's origin and resets the scratch state.
func (o *originState) finishAnalyze() {
	var u int32
	for _, id := range o.scratch {
		u = o.union(u, id)
	}
	o.learned = u
	o.scratch = o.scratch[:0]
}

// setKey encodes a sorted base-id list as a byte string for map lookup,
// four bytes per id.
func setKey(sorted []int32) string {
	buf := make([]byte, 0, len(sorted)*4)
	for _, b := range sorted {
		u := uint32(b)
		buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return string(buf)
}

// insertionSort keeps tiny base-id lists sorted without pulling
// sort.Slice's closure allocation into the hot path.
func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
