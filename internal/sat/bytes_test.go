package sat

import "testing"

// TestClauseDBBytes pins the accounting formula: 32 bytes per clause
// plus 4 per literal, over problem and learned clauses alike.
func TestClauseDBBytes(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	if s.ClauseDBBytes() != 0 {
		t.Fatalf("empty db bytes = %d", s.ClauseDBBytes())
	}
	s.AddClause(MkLit(a, false), MkLit(b, false))                 // binary: 32 + 8
	s.AddClause(MkLit(a, false), MkLit(b, true), MkLit(c, false)) // ternary: 32 + 12
	if got, want := s.ClauseDBBytes(), int64(32+8+32+12); got != want {
		t.Fatalf("db bytes = %d, want %d", got, want)
	}
	// Unit clauses are enqueued, not stored; bytes must not change.
	before := s.ClauseDBBytes()
	s.AddClause(MkLit(c, false))
	if s.ClauseDBBytes() != before {
		t.Fatalf("unit clause changed db bytes: %d -> %d", before, s.ClauseDBBytes())
	}
}

// TestClauseDBBytesCountsLearnts drives a small UNSAT-ish search and
// checks learned clauses are included while they live in the database.
func TestClauseDBBytesCountsLearnts(t *testing.T) {
	s := New()
	const n = 6
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Pigeonhole-flavored pairwise constraints to force some learning.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.AddClause(MkLit(vars[i], true), MkLit(vars[j], true))
		}
	}
	s.AddClause(MkLit(vars[0], false), MkLit(vars[1], false), MkLit(vars[2], false))
	base := s.ClauseDBBytes()
	if base <= 0 {
		t.Fatal("no db bytes before solve")
	}
	s.Solve()
	st := s.Stats
	if st.Learned > 0 && s.ClauseDBBytes() < base {
		// Learned clauses may be deleted again; just require the call
		// to stay consistent with the formula.
		var want int64
		for _, lits := range s.Clauses() {
			want += 32 + 4*int64(len(lits))
		}
		// Clauses() only reports problem clauses; learnts add on top, so
		// the db can only be >= that.
		if s.ClauseDBBytes() < want {
			t.Fatalf("db bytes %d < problem-clause bytes %d", s.ClauseDBBytes(), want)
		}
	}
}

// TestProofBytes pins the proof accounting formula: 16 bytes per step
// plus 4 per literal, nil-safe.
func TestProofBytes(t *testing.T) {
	var nilProof *Proof
	if nilProof.Bytes() != 0 {
		t.Fatal("nil proof bytes != 0")
	}
	p := NewProof()
	if p.Bytes() != 0 {
		t.Fatal("empty proof bytes != 0")
	}
	p.AppendShared(ProofStep{Kind: ProofInput, Lits: []Lit{MkLit(0, false), MkLit(1, true)}})
	p.AppendShared(ProofStep{Kind: ProofDerive, Lits: []Lit{MkLit(0, false)}})
	p.AppendShared(ProofStep{Kind: ProofDelete, Lits: nil})
	if got, want := p.Bytes(), int64(16*3+4*3); got != want {
		t.Fatalf("proof bytes = %d, want %d", got, want)
	}
	if got := int64(16*p.NumSteps() + 4*p.NumLits()); got != p.Bytes() {
		t.Fatalf("Bytes inconsistent with NumSteps/NumLits: %d vs %d", p.Bytes(), got)
	}
}
