// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver. It is the solving substrate for the SMT layer used by the
// Minesweeper encoder: quantifier-free bitvector formulas are bit-blasted
// into CNF and decided here.
//
// The design follows MiniSat: two-watched-literal propagation, 1UIP
// conflict analysis with clause minimization, exponential VSIDS branching,
// phase saving, Luby restarts and activity/LBD-based deletion of learned
// clauses.
package sat

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Var identifies a boolean variable. Variables are allocated densely
// starting at 0 via Solver.NewVar.
type Var int32

// Lit is a literal: a variable together with a sign. The encoding is the
// MiniSat one: Lit = 2*Var for the positive literal and 2*Var+1 for the
// negation.
type Lit int32

// MkLit builds a literal from a variable and a sign. neg=true yields ¬v.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as v3 or ~v3.
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

// Tribool is a three-valued boolean used for assignments.
type Tribool int8

// Tribool values.
const (
	Unknown Tribool = iota
	True
	False
)

func (t Tribool) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	}
	return "unknown"
}

// not negates a tribool, leaving Unknown fixed.
func (t Tribool) not() Tribool {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	// Unsolved means the search was aborted (budget exhausted).
	Unsolved Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unsolved"
}

// ErrBudget is returned by SolveLimited when the conflict budget is
// exhausted before a verdict is reached.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// ErrInterrupted is returned by SolveLimited when Interrupt aborted the
// search before a verdict was reached.
var ErrInterrupted = errors.New("sat: search interrupted")

// clause is a disjunction of literals plus solver bookkeeping.
type clause struct {
	lits     []Lit
	activity float64
	lbd      int32
	learnt   bool
	// origin is the interned origin-set id of the constraints this
	// clause came from: the creator's set for problem clauses, the union
	// of the antecedents' sets for learned ones. 0 when tracking is off.
	origin int32
}

// watcher pairs a watched clause with a blocker literal that lets
// propagation skip the clause when the blocker is already true.
type watcher struct {
	c       *clause
	blocker Lit
}

// LBDBuckets is the number of buckets in Stats.LBDHist.
const LBDBuckets = 12

// Stats counts solver work, for benchmarking and regression tests.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learned      int64
	Deleted      int64
	MaxLevel     int
	// Simplified counts clauses removed by Simplify; Strengthened counts
	// literals Simplify stripped from surviving clauses.
	Simplified   int64
	Strengthened int64
	// LBDHist is the learned-clause LBD distribution: bucket i counts
	// clauses learned with LBD i+1, the last bucket everything larger.
	// Its sum tracks Stats.Learned.
	LBDHist [LBDBuckets]int64
}

// Progress is the snapshot handed to a progress hook: a copy of the work
// counters plus the current database size, letting long-running checks
// report liveness.
type Progress struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learned      int64
	Deleted      int64
	Vars         int
	Clauses      int
	LearntDB     int // learned clauses currently retained
	// LBDAvg is the running mean LBD of all learned clauses (0 before the
	// first conflict): a falling average means the search is finding
	// shorter explanations, i.e. making progress.
	LBDAvg float64
}

// Solver is a CDCL SAT solver. The zero value is not ready for use; call
// New.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause // learned clauses

	watches [][]watcher // indexed by Lit

	assigns  []Tribool // indexed by Var
	level    []int32   // decision level per Var
	reason   []*clause // antecedent clause per Var
	polarity []bool    // saved phase per Var (true = last assigned false)

	activity []float64 // VSIDS activity per Var
	varInc   float64
	varDecay float64

	claInc   float64
	claDecay float64

	order *varHeap // branching order, max-activity first

	trail    []Lit
	trailLim []int // trail index per decision level
	qhead    int

	// conflict analysis scratch
	seen      []bool
	analyzeCl []Lit
	minStack  []Lit
	minClear  []Lit
	toClear   []Lit
	lbdStamp  []int64
	lbdGen    int64

	ok bool // false once top-level conflict proven

	// proof, when non-nil, records every clause addition, derivation and
	// deletion as a DRAT-style trace. Enabled via EnableProof.
	proof *Proof

	// origins, when non-nil, attributes solver work to the constraints
	// that caused it. Enabled via EnableOriginTracking.
	origins *originState

	Stats Stats

	// MaxConflicts, when positive, bounds the search effort for
	// SolveLimited.
	MaxConflicts int64

	// RestartBase, when positive, overrides the Luby restart unit (the
	// conflict budget of the first restart interval). Zero keeps the
	// default of 100. Portfolio configurations vary it to diversify
	// restart schedules across racing solvers.
	RestartBase float64

	// RandomFreq, when positive, is the probability that a decision picks
	// a random heap variable instead of the VSIDS maximum. Randomness
	// comes from the solver's own deterministic generator (SeedRandom), so
	// runs with equal seeds are reproducible.
	RandomFreq float64

	// rng is the xorshift state behind RandomFreq decisions; zero means
	// "unseeded" and is lazily replaced by a fixed constant so RandomFreq
	// works without SeedRandom.
	rng uint64

	// ProgressEvery, when positive, makes the solver call OnProgress
	// after every ProgressEvery conflicts. The hook runs synchronously on
	// the solving goroutine; hand the snapshot to a channel (or other
	// synchronization) to consume it elsewhere.
	ProgressEvery int64
	// OnProgress receives periodic search snapshots; nil disables.
	OnProgress func(Progress)

	// interrupted is the asynchronous cancellation flag set by Interrupt
	// and polled by the search loop at conflict and decision points.
	interrupted atomic.Bool
}

// Interrupt asks a running Solve to abort at the next conflict or
// decision. It is the only Solver method safe to call from another
// goroutine; the interrupted search returns Unsolved (ErrInterrupted from
// SolveLimited). The flag is sticky until ResetInterrupt, so an Interrupt
// that lands just after the search returns aborts the next Solve instead
// of being lost — callers that reuse a solver across checks should
// ResetInterrupt once the canceling goroutine has been joined.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// ResetInterrupt clears a pending interrupt so the solver can be reused.
// Call it only after the goroutine that might call Interrupt has exited.
func (s *Solver) ResetInterrupt() { s.interrupted.Store(false) }

// Interrupted reports whether an interrupt is pending.
func (s *Solver) Interrupted() bool { return s.interrupted.Load() }

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc:   1.0,
		varDecay: 0.95,
		claInc:   1.0,
		claDecay: 0.999,
		ok:       true,
	}
	s.order = &varHeap{solver: s}
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses currently held.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// clauseBytes is the accounting size of one clause: a fixed per-clause
// overhead plus four bytes per literal. The constant models the clause
// header (activity, lbd, flags, slice header), not Go's exact layout, so
// the figure is a deterministic function of the database contents and
// identical across machines.
func clauseBytes(c *clause) int64 { return 32 + 4*int64(len(c.lits)) }

// ClauseDBBytes returns the accounting footprint of the clause database
// (problem plus learned clauses). Deterministic: equal databases report
// equal bytes regardless of platform, so the figure is safe to gate on.
func (s *Solver) ClauseDBBytes() int64 {
	var b int64
	for _, c := range s.clauses {
		b += clauseBytes(c)
	}
	for _, c := range s.learnts {
		b += clauseBytes(c)
	}
	return b
}

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, Unknown)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.polarity = append(s.polarity, true) // default phase: false
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// value returns the current assignment of a literal.
func (s *Solver) value(l Lit) Tribool {
	a := s.assigns[l.Var()]
	if a == Unknown {
		return Unknown
	}
	if l.Neg() {
		return a.not()
	}
	return a
}

// Value returns the model value of v after a Sat result. It reflects the
// current assignment; call it only after Solve returns Sat.
func (s *Solver) Value(v Var) Tribool { return s.assigns[v] }

// ValueLit returns the model value of a literal after a Sat result.
func (s *Solver) ValueLit(l Lit) Tribool { return s.value(l) }

// decisionLevel is the current depth of the decision stack.
func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a problem clause. It returns false if the solver is
// already in an UNSAT state or the clause makes it so at the top level.
// Duplicate literals are removed; tautologies are silently satisfied.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	origin := s.clauseOrigin()
	if s.proof != nil {
		s.proof.add(ProofInput, lits, origin)
	}
	// A previous Sat result leaves the trail intact so the model stays
	// readable; adding a clause invalidates it, so backtrack first.
	s.cancelUntil(0)
	// Normalize: sort, dedupe, drop false lits, detect tautology/true lits.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	dropped := false // a root-falsified literal was stripped
	for _, l := range ls {
		if int(l.Var()) >= s.NumVars() {
			panic(fmt.Sprintf("sat: literal %v references unallocated variable", l))
		}
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return true // tautology: x ∨ ¬x
		}
		switch s.value(l) {
		case True:
			return true // already satisfied at top level
		case False:
			dropped = true
			continue // drop falsified literal
		}
		out = append(out, l)
		prev = l
	}
	// The stored clause differs from the input when falsified literals
	// were stripped; the strengthened form is a RUP consequence of the
	// input plus root facts, so record it as a derivation. Later Delete
	// steps then match the clause the database actually holds.
	switch len(out) {
	case 0:
		if s.proof != nil {
			s.proof.add(ProofDerive, nil, origin)
		}
		s.ok = false
		return false
	case 1:
		if s.proof != nil && dropped {
			s.proof.add(ProofDerive, out, origin)
		}
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			if s.proof != nil {
				s.proof.add(ProofDerive, nil, origin)
			}
			s.ok = false
			return false
		}
		return true
	}
	if s.proof != nil && dropped {
		s.proof.add(ProofDerive, out, origin)
	}
	c := &clause{lits: append([]Lit(nil), out...), origin: origin}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

// attach registers the first two literals of c as watched.
func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{c, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{c, l0})
}

// detach removes c from its watch lists.
func (s *Solver) detach(c *clause) {
	for _, w := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[w]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// uncheckedEnqueue records an assignment implied by reason (nil for
// decisions and top-level facts).
func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = False
	} else {
		s.assigns[v] = True
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	if s.origins != nil && from != nil {
		s.origins.counts[from.origin].Propagations++
	}
}

// propagate performs unit propagation over the watch lists and returns the
// conflicting clause, or nil if a fixed point is reached.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		j := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == True {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			// Ensure the false literal (¬p) is lits[1].
			np := p.Not()
			if c.lits[0] == np {
				c.lits[0], c.lits[1] = c.lits[1], np
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == True {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if s.value(first) == False {
				// Conflict: copy back remaining watchers and bail.
				s.qhead = len(s.trail)
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

// analyze performs 1UIP conflict analysis. It fills s.analyzeCl with the
// learned clause (asserting literal first) and returns the backtrack level.
func (s *Solver) analyze(confl *clause) int {
	s.analyzeCl = s.analyzeCl[:0]
	s.analyzeCl = append(s.analyzeCl, 0) // placeholder for asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.claBump(confl)
		if s.origins != nil {
			s.origins.noteAntecedent(confl.origin)
		}
		for _, q := range confl.lits {
			if p >= 0 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.varBump(v)
				s.seen[v] = true
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					s.analyzeCl = append(s.analyzeCl, q)
				}
			}
		}
		// Find next literal on the trail to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		pathC--
		if pathC <= 0 {
			break
		}
		confl = s.reason[v]
	}
	s.analyzeCl[0] = p.Not()
	if s.origins != nil {
		// The learned clause follows from exactly the clauses resolved
		// above; its origin is the union of their origin sets.
		s.origins.finishAnalyze()
	}

	// Mark remaining for minimization bookkeeping, remembering every
	// marked variable so all bits are cleared afterwards — including
	// literals dropped by minimization.
	s.toClear = append(s.toClear[:0], s.analyzeCl...)
	toClear := s.toClear
	for _, l := range s.analyzeCl[1:] {
		s.seen[l.Var()] = true
	}
	// Clause minimization: drop literals implied by the rest.
	out := s.analyzeCl[:1]
	for _, l := range s.analyzeCl[1:] {
		if s.reason[l.Var()] == nil || !s.litRedundant(l) {
			out = append(out, l)
		}
	}
	s.analyzeCl = out
	for _, l := range toClear {
		s.seen[l.Var()] = false
	}
	for _, l := range s.minClear {
		s.seen[l.Var()] = false
	}
	s.minClear = s.minClear[:0]

	// Backtrack level: second-highest level in the clause.
	if len(s.analyzeCl) == 1 {
		return 0
	}
	maxI := 1
	for i := 2; i < len(s.analyzeCl); i++ {
		if s.level[s.analyzeCl[i].Var()] > s.level[s.analyzeCl[maxI].Var()] {
			maxI = i
		}
	}
	s.analyzeCl[1], s.analyzeCl[maxI] = s.analyzeCl[maxI], s.analyzeCl[1]
	return int(s.level[s.analyzeCl[1].Var()])
}

// litRedundant checks whether l is implied by other marked literals, so it
// can be removed from the learned clause (local minimization).
func (s *Solver) litRedundant(l Lit) bool {
	s.minStack = s.minStack[:0]
	s.minStack = append(s.minStack, l)
	top := len(s.minClear)
	for len(s.minStack) > 0 {
		p := s.minStack[len(s.minStack)-1]
		s.minStack = s.minStack[:len(s.minStack)-1]
		c := s.reason[p.Var()]
		for _, q := range c.lits {
			v := q.Var()
			if q == p.Not() || s.seen[v] || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == nil {
				// Decision literal not in clause: l is not redundant.
				for _, cl := range s.minClear[top:] {
					s.seen[cl.Var()] = false
				}
				s.minClear = s.minClear[:top]
				return false
			}
			s.seen[v] = true
			s.minClear = append(s.minClear, q)
			s.minStack = append(s.minStack, q)
		}
	}
	return true
}

// computeLBD returns the number of distinct decision levels in lits.
func (s *Solver) computeLBD(lits []Lit) int32 {
	for len(s.lbdStamp) < len(s.trailLim)+2 {
		s.lbdStamp = append(s.lbdStamp, 0)
	}
	s.lbdGen++
	var n int32
	for _, l := range lits {
		lv := s.level[l.Var()]
		if int(lv) < len(s.lbdStamp) && s.lbdStamp[lv] != s.lbdGen {
			s.lbdStamp[lv] = s.lbdGen
			n++
		}
	}
	return n
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		l := s.trail[i]
		v := l.Var()
		s.polarity[v] = s.assigns[v] == False
		s.assigns[v] = Unknown
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// varBump increases a variable's VSIDS activity.
func (s *Solver) varBump(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) varDecayActivity() { s.varInc /= s.varDecay }

func (s *Solver) claBump(c *clause) {
	if !c.learnt {
		return
	}
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecayActivity() { s.claInc /= s.claDecay }

// pickBranchLit chooses the next decision literal, using VSIDS order and
// saved phases. It returns -1 when all variables are assigned. With
// RandomFreq set, a fraction of decisions instead picks a uniform heap
// variable, leaving it in the heap: later pops skip assigned variables
// anyway, so the order invariants are untouched.
func (s *Solver) pickBranchLit() Lit {
	if s.RandomFreq > 0 && s.randFloat() < s.RandomFreq {
		if n := len(s.order.heap); n > 0 {
			v := s.order.heap[s.nextRand()%uint64(n)]
			if s.assigns[v] == Unknown {
				return MkLit(v, s.polarity[v])
			}
		}
	}
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		if s.assigns[v] == Unknown {
			return MkLit(v, s.polarity[v])
		}
	}
}

// reduceDB removes roughly half of the learned clauses, keeping low-LBD and
// high-activity ones.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		a, b := s.learnts[i], s.learnts[j]
		if a.lbd != b.lbd {
			return a.lbd < b.lbd
		}
		return a.activity > b.activity
	})
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || c.lbd <= 3 || s.locked(c) || len(c.lits) == 2 {
			keep = append(keep, c)
			continue
		}
		s.detach(c)
		if s.proof != nil {
			s.proof.add(ProofDelete, c.lits, c.origin)
		}
		s.Stats.Deleted++
	}
	s.learnts = keep
}

// locked reports whether c is the reason for a current assignment.
func (s *Solver) locked(c *clause) bool {
	v := c.lits[0].Var()
	return s.value(c.lits[0]) == True && s.reason[v] == c
}

// luby computes the Luby restart sequence term for index i (1-based), with
// unit u.
func luby(u float64, i int) float64 {
	// Find the finite subsequence containing i, and its position.
	size, seq := 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	return u * math.Pow(2, float64(seq))
}

// Solve decides the formula under the given assumptions. Assumptions are
// literals that must hold; they are asserted as pseudo-decisions and the
// search proves the formula relative to them.
func (s *Solver) Solve(assumptions ...Lit) Status {
	saved := s.MaxConflicts
	s.MaxConflicts = 0
	st, _ := s.SolveLimited(assumptions...)
	s.MaxConflicts = saved
	return st
}

// SolveLimited is Solve with a conflict budget (s.MaxConflicts when
// positive). On budget exhaustion it returns Unsolved and ErrBudget.
func (s *Solver) SolveLimited(assumptions ...Lit) (Status, error) {
	if !s.ok {
		return Unsat, nil
	}
	s.cancelUntil(0)

	restartBase := s.RestartBase
	if restartBase <= 0 {
		restartBase = 100.0
	}
	var conflictsTotal int64

	for restart := 0; ; restart++ {
		budget := int64(luby(restartBase, restart))
		st, conflicts := s.search(budget, assumptions)
		conflictsTotal += conflicts
		if st != Unsolved {
			if st == Sat {
				// Leave the trail intact so Value() can read the model,
				// but the next Solve call will cancel.
				return st, nil
			}
			s.cancelUntil(0)
			return st, nil
		}
		if s.interrupted.Load() {
			s.cancelUntil(0)
			return Unsolved, ErrInterrupted
		}
		s.Stats.Restarts++
		// Mirror search's own exhaustion condition on the lifetime conflict
		// count: search returns Unsolved without further work once
		// Stats.Conflicts passes the budget, so checking only the per-call
		// total here would loop forever on a reused solver.
		if s.MaxConflicts > 0 && (conflictsTotal >= s.MaxConflicts || s.Stats.Conflicts >= s.MaxConflicts) {
			s.cancelUntil(0)
			return Unsolved, ErrBudget
		}
	}
}

// search runs CDCL until a verdict, a conflict budget, or a restart.
func (s *Solver) search(budget int64, assumptions []Lit) (Status, int64) {
	var conflicts int64
	learntLimit := int64(len(s.clauses)/3 + 1000)

	for {
		confl := s.propagate()
		if confl != nil {
			conflicts++
			s.Stats.Conflicts++
			if s.origins != nil {
				s.origins.counts[confl.origin].Conflicts++
			}
			if s.ProgressEvery > 0 && s.OnProgress != nil && s.Stats.Conflicts%s.ProgressEvery == 0 {
				s.OnProgress(s.progress())
			}
			if s.decisionLevel() == 0 {
				if s.proof != nil {
					s.proof.add(ProofDerive, nil, confl.origin)
				}
				s.ok = false
				return Unsat, conflicts
			}
			btLevel := s.analyze(confl)
			// Don't backtrack above the assumption levels: if the learned
			// clause forces backtracking into assumptions, re-propagation
			// will handle it; but if analyze proves conflict at assumption
			// level 0 relative to assumptions, the formula is UNSAT under
			// them.
			s.cancelUntil(btLevel)
			learned := append([]Lit(nil), s.analyzeCl...)
			var learnedOrigin int32
			if s.origins != nil {
				learnedOrigin = s.origins.learned
			}
			if s.proof != nil {
				s.proof.add(ProofDerive, learned, learnedOrigin)
			}
			if len(learned) == 1 {
				s.uncheckedEnqueue(learned[0], nil)
				if s.origins != nil {
					s.origins.counts[learnedOrigin].Learned++
					s.origins.counts[learnedOrigin].LBDSum++
				}
			} else {
				c := &clause{lits: learned, learnt: true, lbd: s.computeLBD(learned), origin: learnedOrigin}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.claBump(c)
				s.uncheckedEnqueue(learned[0], c)
				s.Stats.Learned++
				if s.origins != nil {
					s.origins.counts[learnedOrigin].Learned++
					s.origins.counts[learnedOrigin].LBDSum += int64(c.lbd)
				}
				b := int(c.lbd) - 1
				if b < 0 {
					b = 0
				} else if b >= LBDBuckets {
					b = LBDBuckets - 1
				}
				s.Stats.LBDHist[b]++
			}
			s.varDecayActivity()
			s.claDecayActivity()
			continue
		}

		if conflicts >= budget || (s.MaxConflicts > 0 && s.Stats.Conflicts >= s.MaxConflicts) ||
			s.interrupted.Load() {
			s.cancelUntil(0)
			return Unsolved, conflicts
		}
		if int64(len(s.learnts)) > learntLimit+int64(len(s.trail)) {
			s.reduceDB()
		}

		// Assert pending assumptions as decisions.
		var next Lit = -1
		for s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.value(p) {
			case True:
				// Already satisfied; open a dummy level to keep indices
				// aligned with assumption count.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case False:
				// Conflicts with current forced assignments: UNSAT under
				// assumptions.
				s.cancelUntil(0)
				return Unsat, conflicts
			}
			next = p
			break
		}
		if next == -1 {
			next = s.pickBranchLit()
			if next == -1 {
				return Sat, conflicts // all variables assigned
			}
			s.Stats.Decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		if dl := s.decisionLevel(); dl > s.Stats.MaxLevel {
			s.Stats.MaxLevel = dl
		}
		s.uncheckedEnqueue(next, nil)
	}
}

// Model returns a copy of the current assignment as a []bool indexed by
// variable. Valid only after Solve returned Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.assigns))
	for v := range s.assigns {
		m[v] = s.assigns[v] == True
	}
	return m
}

// Okay reports whether the solver is still consistent at the top level
// (no unconditional conflict has been derived).
func (s *Solver) Okay() bool { return s.ok }

// Clauses returns a copy of the problem clauses, for CNF export. Every
// literal implied at the top level (added units and their consequences)
// is exported as a unit clause, so the result stays equisatisfiable with
// the loaded formula even after Simplify removed satisfied clauses.
func (s *Solver) Clauses() [][]Lit {
	var out [][]Lit
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			out = append(out, []Lit{l})
		}
	}
	for _, c := range s.clauses {
		out = append(out, append([]Lit(nil), c.lits...))
	}
	return out
}

// progress snapshots the search counters for the progress hook.
func (s *Solver) progress() Progress {
	p := Progress{
		Conflicts:    s.Stats.Conflicts,
		Decisions:    s.Stats.Decisions,
		Propagations: s.Stats.Propagations,
		Restarts:     s.Stats.Restarts,
		Learned:      s.Stats.Learned,
		Deleted:      s.Stats.Deleted,
		Vars:         s.NumVars(),
		Clauses:      s.NumClauses(),
		LearntDB:     len(s.learnts),
	}
	// Bucket i of LBDHist counts clauses learned with LBD i+1 (the last
	// bucket absorbs larger values, slightly underestimating their mass).
	var sum, n int64
	for i, c := range s.Stats.LBDHist {
		sum += int64(i+1) * c
		n += c
	}
	if n > 0 {
		p.LBDAvg = float64(sum) / float64(n)
	}
	return p
}

// Simplify performs top-level simplification: it backtracks to level 0,
// propagates all root facts, removes clauses already satisfied there and
// strips falsified literals from the remainder. It returns false when
// the formula is proven unsatisfiable. The removed/strengthened work is
// counted in Stats for the observability layer.
func (s *Solver) Simplify() bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	if confl := s.propagate(); confl != nil {
		if s.proof != nil {
			s.proof.add(ProofDerive, nil, confl.origin)
		}
		s.ok = false
		return false
	}
	// Root assignments are permanent facts: their antecedents are never
	// inspected again, so drop the pointers and let removed clauses be
	// collected.
	for _, l := range s.trail {
		s.reason[l.Var()] = nil
	}
	s.clauses = s.simplifyList(s.clauses)
	s.learnts = s.simplifyList(s.learnts)
	return s.ok
}

// simplifyList rewrites one clause database under the root assignment.
// Surviving clauses keep their two watched literals (a false watch would
// have propagated, satisfying the clause or conflicting), so the watch
// lists stay valid without reattachment.
//
// With proof logging on, every rewrite is mirrored in the trace so no
// clause silently vanishes: a satisfied clause gets a Delete step, and a
// strengthened clause gets a Derive of its new form (RUP: the stripped
// literals are root-falsified) followed by a Delete of the old one —
// recorded before the in-place mutation, so a later deletion of the
// strengthened clause matches what the trace says the database holds.
func (s *Solver) simplifyList(cs []*clause) []*clause {
	out := cs[:0]
	for _, c := range cs {
		satisfied := false
		for _, l := range c.lits {
			if s.value(l) == True {
				satisfied = true
				break
			}
		}
		if satisfied {
			if s.proof != nil {
				s.proof.add(ProofDelete, c.lits, c.origin)
			}
			s.detach(c)
			s.Stats.Simplified++
			continue
		}
		var orig []Lit
		if s.proof != nil {
			orig = append(orig, c.lits...)
		}
		n := 0
		for _, l := range c.lits {
			if s.value(l) != False {
				c.lits[n] = l
				n++
			}
		}
		if s.proof != nil && n != len(orig) {
			s.proof.add(ProofDerive, c.lits[:n], c.origin)
			s.proof.add(ProofDelete, orig, c.origin)
		}
		s.Stats.Strengthened += int64(len(c.lits) - n)
		c.lits = c.lits[:n]
		out = append(out, c)
	}
	return out
}

// varHeap is a max-heap on variable activity used for VSIDS branching.
type varHeap struct {
	solver *Solver
	heap   []Var
	index  []int32 // position in heap per var, -1 if absent
}

func (h *varHeap) less(a, b Var) bool {
	return h.solver.activity[a] > h.solver.activity[b]
}

func (h *varHeap) ensure(v Var) {
	for int(v) >= len(h.index) {
		h.index = append(h.index, -1)
	}
}

func (h *varHeap) push(v Var) {
	h.ensure(v)
	if h.index[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v Var) { h.push(v) }

func (h *varHeap) pop() (Var, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.index[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.index[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v Var) {
	h.ensure(v)
	if i := h.index[v]; i >= 0 {
		h.up(int(i))
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.index[h.heap[i]] = int32(i)
		i = p
	}
	h.heap[i] = v
	h.index[v] = int32(i)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.index[h.heap[i]] = int32(i)
		i = c
	}
	h.heap[i] = v
	h.index[v] = int32(i)
}
