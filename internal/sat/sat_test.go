package sat

import (
	"math/rand"
	"testing"
)

// mk builds a literal from a signed integer in DIMACS convention:
// 1 → v0, -1 → ¬v0, 2 → v1, ...
func mk(i int) Lit {
	if i > 0 {
		return MkLit(Var(i-1), false)
	}
	return MkLit(Var(-i-1), true)
}

// newSolverWithVars allocates n variables.
func newSolverWithVars(n int) *Solver {
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return s
}

// addDimacs adds clauses given in DIMACS signed-int convention.
func addDimacs(s *Solver, clauses [][]int) bool {
	for _, c := range clauses {
		ls := make([]Lit, len(c))
		for i, x := range c {
			ls[i] = mk(x)
		}
		if !s.AddClause(ls...) {
			return false
		}
	}
	return true
}

func TestLitEncoding(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Fatalf("positive literal mis-encoded: %v", l)
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Fatalf("negation mis-encoded: %v", n)
	}
	if n.Not() != l {
		t.Fatalf("double negation is not identity")
	}
	if l.String() != "v5" || n.String() != "~v5" {
		t.Fatalf("unexpected strings %q %q", l, n)
	}
}

func TestTriboolNot(t *testing.T) {
	if True.not() != False || False.not() != True || Unknown.not() != Unknown {
		t.Fatal("tribool negation broken")
	}
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Fatal("tribool strings broken")
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s := New()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula: got %v, want sat", st)
	}
}

func TestSingleUnit(t *testing.T) {
	s := newSolverWithVars(1)
	s.AddClause(mk(1))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.Value(0) != True {
		t.Fatalf("v0 = %v, want true", s.Value(0))
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := newSolverWithVars(1)
	s.AddClause(mk(1))
	if ok := s.AddClause(mk(-1)); ok {
		t.Fatal("expected AddClause to report top-level conflict")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := newSolverWithVars(2)
	if !s.AddClause(mk(1), mk(-1)) {
		t.Fatal("tautology rejected")
	}
	if s.NumClauses() != 0 {
		t.Fatalf("tautology stored: %d clauses", s.NumClauses())
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := newSolverWithVars(1)
	s.AddClause(mk(1), mk(1), mk(1))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.Value(0) != True {
		t.Fatal("duplicate-literal unit not propagated")
	}
}

func TestSimpleUnsat(t *testing.T) {
	// (x∨y) ∧ (x∨¬y) ∧ (¬x∨y) ∧ (¬x∨¬y)
	s := newSolverWithVars(2)
	addDimacs(s, [][]int{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes — classically hard UNSAT.
	for _, n := range []int{3, 4, 5} {
		s := New()
		// var p[i][j]: pigeon i in hole j
		p := make([][]Lit, n+1)
		for i := range p {
			p[i] = make([]Lit, n)
			for j := range p[i] {
				p[i][j] = MkLit(s.NewVar(), false)
			}
		}
		for i := 0; i <= n; i++ {
			s.AddClause(p[i]...)
		}
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					s.AddClause(p[i1][j].Not(), p[i2][j].Not())
				}
			}
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d+1,%d): got %v, want unsat", n, n, st)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// 3-color a 5-cycle (chromatic number 3) — satisfiable.
	const n, k = 5, 3
	s := New()
	color := make([][]Lit, n)
	for i := range color {
		color[i] = make([]Lit, k)
		for j := range color[i] {
			color[i][j] = MkLit(s.NewVar(), false)
		}
	}
	for i := 0; i < n; i++ {
		s.AddClause(color[i]...)
		for c1 := 0; c1 < k; c1++ {
			for c2 := c1 + 1; c2 < k; c2++ {
				s.AddClause(color[i][c1].Not(), color[i][c2].Not())
			}
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		for c := 0; c < k; c++ {
			s.AddClause(color[i][c].Not(), color[j][c].Not())
		}
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want sat", st)
	}
	// Verify the model is a proper coloring.
	for i := 0; i < n; i++ {
		ci := -1
		for c := 0; c < k; c++ {
			if s.ValueLit(color[i][c]) == True {
				ci = c
				break
			}
		}
		if ci < 0 {
			t.Fatalf("node %d has no color", i)
		}
		j := (i + 1) % n
		if s.ValueLit(color[j][ci]) == True {
			t.Fatalf("edge %d-%d monochromatic", i, j)
		}
	}
}

func Test2ColoringOddCycleUnsat(t *testing.T) {
	// 2-coloring an odd cycle is unsatisfiable.
	const n = 7
	s := New()
	x := make([]Lit, n) // x[i] true = color A
	for i := range x {
		x[i] = MkLit(s.NewVar(), false)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s.AddClause(x[i], x[j])
		s.AddClause(x[i].Not(), x[j].Not())
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
}

func TestAssumptions(t *testing.T) {
	// (a ∨ b) with assumption ¬a forces b.
	s := newSolverWithVars(2)
	s.AddClause(mk(1), mk(2))
	if st := s.Solve(mk(-1)); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.Value(0) != False || s.Value(1) != True {
		t.Fatalf("model a=%v b=%v", s.Value(0), s.Value(1))
	}
	// Assumptions contradicting a unit make it unsat, but the solver
	// stays usable.
	s2 := newSolverWithVars(1)
	s2.AddClause(mk(1))
	if st := s2.Solve(mk(-1)); st != Unsat {
		t.Fatalf("got %v, want unsat under assumption", st)
	}
	if st := s2.Solve(); st != Sat {
		t.Fatalf("solver unusable after assumption conflict: %v", st)
	}
}

func TestIncrementalUse(t *testing.T) {
	s := newSolverWithVars(3)
	addDimacs(s, [][]int{{1, 2}, {-1, 3}})
	if st := s.Solve(); st != Sat {
		t.Fatalf("phase 1: %v", st)
	}
	// Add more constraints after solving.
	addDimacs(s, [][]int{{-2}, {-3}})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("phase 2: got %v, want unsat", st)
	}
}

func TestModelLength(t *testing.T) {
	s := newSolverWithVars(4)
	s.AddClause(mk(1))
	s.Solve()
	if m := s.Model(); len(m) != 4 || !m[0] {
		t.Fatalf("model %v", m)
	}
}

func TestLuby(t *testing.T) {
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if g := luby(1, i); g != w {
			t.Fatalf("luby(1,%d) = %v, want %v", i, g, w)
		}
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard pigeonhole instance with a tiny budget must return Unsolved.
	n := 8
	s := New()
	p := make([][]Lit, n+1)
	for i := range p {
		p[i] = make([]Lit, n)
		for j := range p[i] {
			p[i][j] = MkLit(s.NewVar(), false)
		}
	}
	for i := 0; i <= n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(p[i1][j].Not(), p[i2][j].Not())
			}
		}
	}
	s.MaxConflicts = 50
	st, err := s.SolveLimited()
	if st != Unsolved || err != ErrBudget {
		t.Fatalf("got %v/%v, want unsolved/budget", st, err)
	}
}

// dpllSolve is a tiny reference solver used to cross-check the CDCL engine
// on random instances.
func dpllSolve(nVars int, clauses [][]int, assign []int8) bool {
	// Unit propagation.
	for {
		change := false
		for _, c := range clauses {
			unassigned, sat, lastLit := 0, false, 0
			for _, l := range c {
				v := abs(l) - 1
				switch {
				case assign[v] == 0:
					unassigned++
					lastLit = l
				case (l > 0) == (assign[v] > 0):
					sat = true
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				return false
			}
			if unassigned == 1 {
				v := abs(lastLit) - 1
				if lastLit > 0 {
					assign[v] = 1
				} else {
					assign[v] = -1
				}
				change = true
			}
		}
		if !change {
			break
		}
	}
	// Pick an unassigned variable.
	pick := -1
	for v := 0; v < nVars; v++ {
		if assign[v] == 0 {
			pick = v
			break
		}
	}
	if pick == -1 {
		return true
	}
	for _, val := range []int8{1, -1} {
		cp := append([]int8(nil), assign...)
		cp[pick] = val
		if dpllSolve(nVars, clauses, cp) {
			return true
		}
	}
	return false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestRandom3SATAgainstDPLL(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		nVars := 4 + rng.Intn(10)
		// Clause/variable ratios straddling the phase transition (~4.26).
		nClauses := int(float64(nVars) * (3.0 + rng.Float64()*3.0))
		clauses := make([][]int, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			c := make([]int, 0, 3)
			used := map[int]bool{}
			for len(c) < 3 {
				v := 1 + rng.Intn(nVars)
				if used[v] {
					continue
				}
				used[v] = true
				if rng.Intn(2) == 0 {
					v = -v
				}
				c = append(c, v)
			}
			clauses = append(clauses, c)
		}

		want := dpllSolve(nVars, clauses, make([]int8, nVars))

		s := newSolverWithVars(nVars)
		okAdd := addDimacs(s, clauses)
		got := okAdd && s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: cdcl=%v dpll=%v clauses=%v", iter, got, want, clauses)
		}
		if got {
			// Check the model actually satisfies every clause.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					v := Var(abs(l) - 1)
					if (l > 0) == (s.Value(v) == True) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model does not satisfy clause %v", iter, c)
				}
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := newSolverWithVars(6)
	addDimacs(s, [][]int{{1, 2, 3}, {-1, 4}, {-2, 5}, {-3, 6}, {-4, -5}, {-5, -6}, {-4, -6}})
	s.Solve()
	if s.Stats.Propagations == 0 {
		t.Fatal("expected some propagations")
	}
}

func BenchmarkSolverPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 7
		s := New()
		p := make([][]Lit, n+1)
		for i := range p {
			p[i] = make([]Lit, n)
			for j := range p[i] {
				p[i][j] = MkLit(s.NewVar(), false)
			}
		}
		for i := 0; i <= n; i++ {
			s.AddClause(p[i]...)
		}
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					s.AddClause(p[i1][j].Not(), p[i2][j].Not())
				}
			}
		}
		if st := s.Solve(); st != Unsat {
			b.Fatalf("got %v", st)
		}
	}
}

// pigeonhole loads PHP(n+1, n) — hard UNSAT, guaranteed to conflict.
func pigeonhole(n int) *Solver {
	s := New()
	p := make([][]Lit, n+1)
	for i := range p {
		p[i] = make([]Lit, n)
		for j := range p[i] {
			p[i][j] = MkLit(s.NewVar(), false)
		}
	}
	for i := 0; i <= n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(p[i1][j].Not(), p[i2][j].Not())
			}
		}
	}
	return s
}

func TestProgressHookInterval(t *testing.T) {
	const every = 10
	s := pigeonhole(6)
	var snaps []Progress
	s.ProgressEvery = every
	s.OnProgress = func(p Progress) { snaps = append(snaps, p) }
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	if len(snaps) == 0 {
		t.Fatal("progress hook never fired")
	}
	for i, p := range snaps {
		if p.Conflicts%every != 0 {
			t.Fatalf("snapshot %d at %d conflicts, want a multiple of %d", i, p.Conflicts, every)
		}
		if i > 0 && p.Conflicts <= snaps[i-1].Conflicts {
			t.Fatalf("snapshots not monotone: %d then %d", snaps[i-1].Conflicts, p.Conflicts)
		}
		if p.Learned > p.Conflicts || p.Deleted > p.Learned {
			t.Fatalf("snapshot %d inconsistent: %+v", i, p)
		}
		if p.Vars != s.NumVars() {
			t.Fatalf("snapshot %d reports %d vars, want %d", i, p.Vars, s.NumVars())
		}
	}
	want := s.Stats.Conflicts / every
	if int64(len(snaps)) != want {
		t.Fatalf("hook fired %d times over %d conflicts, want %d", len(snaps), s.Stats.Conflicts, want)
	}
}

// TestProgressHookConcurrent consumes snapshots on another goroutine while
// the solver runs — the pattern CLIs use to report liveness. Meaningful
// under -race.
func TestProgressHookConcurrent(t *testing.T) {
	s := pigeonhole(7)
	ch := make(chan Progress, 64)
	s.ProgressEvery = 25
	s.OnProgress = func(p Progress) { ch <- p }
	var consumed int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := range ch {
			consumed += p.Conflicts - p.Conflicts + 1 // touch the snapshot
		}
	}()
	st := s.Solve()
	close(ch)
	<-done
	if st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	if consumed == 0 {
		t.Fatal("no snapshots consumed")
	}
}

func TestStatsMonotonicity(t *testing.T) {
	s := pigeonhole(6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	st := s.Stats
	if st.Conflicts == 0 {
		t.Fatal("expected conflicts on a pigeonhole instance")
	}
	if st.Learned > st.Conflicts {
		t.Fatalf("learned %d > conflicts %d", st.Learned, st.Conflicts)
	}
	if st.Deleted > st.Learned {
		t.Fatalf("deleted %d > learned %d", st.Deleted, st.Learned)
	}
	var hist int64
	for _, n := range st.LBDHist {
		if n < 0 {
			t.Fatalf("negative LBD bucket: %v", st.LBDHist)
		}
		hist += n
	}
	if hist != st.Learned {
		t.Fatalf("LBD histogram sums to %d, learned %d", hist, st.Learned)
	}
}

func TestSimplifyPreservesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		nVars := 4 + rng.Intn(10)
		nClauses := int(float64(nVars) * (3.0 + rng.Float64()*3.0))
		clauses := make([][]int, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			c := make([]int, 0, 3)
			used := map[int]bool{}
			for len(c) < 3 {
				v := 1 + rng.Intn(nVars)
				if used[v] {
					continue
				}
				used[v] = true
				if rng.Intn(2) == 0 {
					v = -v
				}
				c = append(c, v)
			}
			clauses = append(clauses, c)
		}
		// Seed some units so Simplify has facts to work with.
		for u := 1; u <= nVars/3; u++ {
			clauses = append(clauses, []int{u})
		}

		plain := newSolverWithVars(nVars)
		okPlain := addDimacs(plain, clauses)
		want := okPlain && plain.Solve() == Sat

		simp := newSolverWithVars(nVars)
		okSimp := addDimacs(simp, clauses)
		if okSimp {
			okSimp = simp.Simplify()
		}
		got := okSimp && simp.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: simplified=%v plain=%v clauses=%v", iter, got, want, clauses)
		}
		if got {
			for _, c := range clauses {
				satisfied := false
				for _, l := range c {
					if (l > 0) == (simp.Value(Var(abs(l)-1)) == True) {
						satisfied = true
						break
					}
				}
				if !satisfied {
					t.Fatalf("iter %d: post-simplify model misses clause %v", iter, c)
				}
			}
		}
	}
}

func TestSimplifyShrinksDatabase(t *testing.T) {
	s := newSolverWithVars(4)
	// The unit arrives after the clauses (AddClause would fold it away
	// otherwise): 1 satisfies {1,2} and strengthens {-1,3,4} to {3,4}.
	addDimacs(s, [][]int{{1, 2}, {-1, 3, 4}, {2, 3, -4}, {1}})
	before := s.NumClauses()
	if !s.Simplify() {
		t.Fatal("simplify reported unsat")
	}
	if s.NumClauses() >= before {
		t.Fatalf("clause count %d not reduced from %d", s.NumClauses(), before)
	}
	if s.Stats.Simplified == 0 || s.Stats.Strengthened == 0 {
		t.Fatalf("stats not recorded: %+v", s.Stats)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want sat", st)
	}
}

func TestClausesExportsRootUnits(t *testing.T) {
	s := newSolverWithVars(3)
	addDimacs(s, [][]int{{1}, {-1, 2}, {2, 3}})
	// v0 and the implied v1 must both appear as exported units.
	units := map[Lit]bool{}
	for _, c := range s.Clauses() {
		if len(c) == 1 {
			units[c[0]] = true
		}
	}
	if !units[mk(1)] || !units[mk(2)] {
		t.Fatalf("missing implied units in export: %v", units)
	}
}

// TestAssumptionReentrancy is the property the incremental SMT session is
// built on: one solver instance answers a sequence of Solve(assumptions...)
// queries, and an UNSAT verdict under one assumption set must not poison a
// later query under a different set. It also exercises the activation-
// literal pattern the session uses: guarded clauses (¬a ∨ C) activated by
// assuming a, then retired by the permanent unit ¬a.
func TestAssumptionReentrancy(t *testing.T) {
	// Shared formula: x1 ∨ x2, ¬x1 ∨ x3.
	s := newSolverWithVars(3)
	addDimacs(s, [][]int{{1, 2}, {-1, 3}})

	// Query 1: UNSAT under assumptions forcing both x2 and x3 false
	// (x1 must be true by clause 1 and false by clause 2).
	if st := s.Solve(mk(-2), mk(-3)); st != Unsat {
		t.Fatalf("query 1: got %v, want unsat", st)
	}
	// Query 2: the same instance answers SAT under a different set.
	if st := s.Solve(mk(-2)); st != Sat {
		t.Fatalf("query 2: got %v, want sat after unsat", st)
	}
	if s.Value(0) != True || s.Value(2) != True {
		t.Fatalf("query 2 model: x1=%v x3=%v, want both true", s.Value(0), s.Value(2))
	}
	// Query 3: back to the first set, still UNSAT (verdicts are stable).
	if st := s.Solve(mk(-2), mk(-3)); st != Unsat {
		t.Fatalf("query 3: got %v, want unsat again", st)
	}

	// Activation-literal lifecycle: a1 guards x2, a2 guards ¬x2.
	a1 := MkLit(s.NewVar(), false)
	a2 := MkLit(s.NewVar(), false)
	s.AddClause(a1.Not(), mk(2))
	s.AddClause(a2.Not(), mk(-2))
	if st := s.Solve(a1); st != Sat {
		t.Fatalf("guard a1: got %v, want sat", st)
	}
	if s.Value(1) != True {
		t.Fatalf("guard a1: x2=%v, want true", s.Value(1))
	}
	if st := s.Solve(a1, a2); st != Unsat {
		t.Fatalf("guards a1∧a2: got %v, want unsat", st)
	}
	// Retire a1 permanently; a2's guarded clause now decides x2 alone.
	s.AddClause(a1.Not())
	if st := s.Solve(a2); st != Sat {
		t.Fatalf("after retiring a1: got %v, want sat", st)
	}
	if s.Value(1) != False {
		t.Fatalf("after retiring a1: x2=%v, want false", s.Value(1))
	}
}

// TestInterrupt aborts a hard search from another goroutine and checks the
// solver is reusable after ResetInterrupt.
func TestInterrupt(t *testing.T) {
	// Hard pigeonhole instance (10 pigeons, 9 holes).
	n := 9
	s := New()
	p := make([][]Lit, n+1)
	for i := range p {
		p[i] = make([]Lit, n)
		for j := range p[i] {
			p[i][j] = MkLit(s.NewVar(), false)
		}
	}
	for i := 0; i <= n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(p[i1][j].Not(), p[i2][j].Not())
			}
		}
	}
	go s.Interrupt() // may land before or during the search: both abort it
	st, err := s.SolveLimited()
	if st != Unsolved || err != ErrInterrupted {
		t.Fatalf("got %v/%v, want unsolved/interrupted", st, err)
	}
	if !s.Interrupted() {
		t.Fatal("interrupt flag should be sticky until reset")
	}
	s.ResetInterrupt()
	// The search runs again after the reset (no immediate interrupt): a
	// budget-limited call does real work and exhausts the budget rather
	// than returning ErrInterrupted.
	s.MaxConflicts = 50
	if st, err := s.SolveLimited(); st != Unsolved || err != ErrBudget {
		t.Fatalf("after reset: got %v/%v, want unsolved/budget", st, err)
	}
}
