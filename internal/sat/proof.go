package sat

import (
	"bufio"
	"io"
	"strconv"
)

// ProofKind classifies one step of a recorded proof trace.
type ProofKind uint8

// Proof step kinds. Input steps record clauses handed to AddClause (and
// the database snapshot taken when recording was enabled); Derive steps
// record clauses the solver claims follow from everything before them
// (learned clauses, normalized inputs, the empty clause); Delete steps
// record clauses removed from the database by Simplify or reduceDB.
const (
	ProofInput ProofKind = iota
	ProofDerive
	ProofDelete
)

func (k ProofKind) String() string {
	switch k {
	case ProofInput:
		return "input"
	case ProofDerive:
		return "derive"
	case ProofDelete:
		return "delete"
	}
	return "?"
}

// ProofStep is one chronological entry of a proof trace. A Derive step
// with no literals is the empty clause: deriving it certifies
// unsatisfiability of everything added before it. Origin is the interned
// origin-set id of the clause (see Solver.SetOrigin); 0 when origin
// tracking is off.
type ProofStep struct {
	Kind   ProofKind
	Lits   []Lit
	Origin int32
}

// Proof is a chronological DRAT-style trace of one solver's clause
// database: every clause added, every clause the solver derived and every
// clause it deleted, in order. Incremental use (clauses added between
// Solve calls) interleaves Input steps after Derive steps; a checker must
// process the trace in order. The trace certifies verdicts relative to
// the database as of EnableProof.
type Proof struct {
	steps []ProofStep
	lits  int
}

// Steps returns the recorded steps. The slice and its literal slices are
// owned by the proof; callers must not mutate them.
func (p *Proof) Steps() []ProofStep { return p.steps }

// NumSteps returns the number of recorded steps.
func (p *Proof) NumSteps() int { return len(p.steps) }

// NumLits returns the total literal count across all steps, a proxy for
// the proof's size in memory and on disk.
func (p *Proof) NumLits() int { return p.lits }

// Bytes returns the accounting footprint of the trace: a fixed per-step
// overhead plus four bytes per literal. Like Solver.ClauseDBBytes this is
// a deterministic function of the trace contents (not Go's exact memory
// layout), so cost ledgers and regression gates can compare it across
// machines. Nil-safe.
func (p *Proof) Bytes() int64 {
	if p == nil {
		return 0
	}
	return 16*int64(len(p.steps)) + 4*int64(p.lits)
}

// Counts returns the number of input, derive and delete steps.
func (p *Proof) Counts() (inputs, derives, deletes int) {
	for _, st := range p.steps {
		switch st.Kind {
		case ProofInput:
			inputs++
		case ProofDerive:
			derives++
		case ProofDelete:
			deletes++
		}
	}
	return
}

func (p *Proof) add(k ProofKind, lits []Lit, origin int32) {
	p.steps = append(p.steps, ProofStep{Kind: k, Lits: append([]Lit(nil), lits...), Origin: origin})
	p.lits += len(lits)
}

// NewProof returns an empty proof for external assembly: the parallel
// solve engine stitches per-cube traces into one checkable proof through
// AppendShared.
func NewProof() *Proof { return &Proof{} }

// AppendShared appends a step sharing its literal slice with the caller
// (no copy). The caller must not mutate the slice afterwards; steps
// coming out of Proof.Steps already satisfy this.
func (p *Proof) AppendShared(st ProofStep) {
	p.steps = append(p.steps, st)
	p.lits += len(st.Lits)
}

// RebuildProof assembles a Proof from explicit steps, for replaying
// traces that were stored or transformed outside the solver (tests,
// corpus minimization). Literal slices are copied.
func RebuildProof(steps []ProofStep) *Proof {
	p := &Proof{}
	for _, st := range steps {
		p.add(st.Kind, st.Lits, st.Origin)
	}
	return p
}

// WriteDRAT writes the derive and delete steps in the textual DRAT format
// consumed by external checkers such as drat-trim (variable v becomes
// DIMACS index v+1). Input steps are skipped: DRAT checkers take the
// original formula separately, e.g. a DIMACS dump of Solver.Clauses.
func (p *Proof) WriteDRAT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, st := range p.steps {
		if st.Kind == ProofInput {
			continue
		}
		if st.Kind == ProofDelete {
			if _, err := bw.WriteString("d "); err != nil {
				return err
			}
		}
		for _, l := range st.Lits {
			n := int(l.Var()) + 1
			if l.Neg() {
				n = -n
			}
			if _, err := bw.WriteString(strconv.Itoa(n)); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EnableProof turns on proof logging and returns the trace, which grows
// as the solver works. Enabling is idempotent. The current database
// (root-level facts, problem clauses and any learned clauses) is
// snapshotted as Input steps, so the proof certifies verdicts relative
// to the formula as of this call; enable before solving to certify
// relative to the original input.
func (s *Solver) EnableProof() *Proof {
	if s.proof != nil {
		return s.proof
	}
	s.proof = &Proof{}
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			s.proof.add(ProofInput, []Lit{l}, 0)
		}
	}
	for _, c := range s.clauses {
		s.proof.add(ProofInput, c.lits, c.origin)
	}
	for _, c := range s.learnts {
		s.proof.add(ProofInput, c.lits, c.origin)
	}
	return s.proof
}

// Proof returns the trace being recorded, or nil when proof logging is
// off.
func (s *Solver) Proof() *Proof { return s.proof }
