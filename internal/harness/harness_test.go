package harness

import (
	"testing"

	"repro/internal/netgen"
)

func TestSection81DetectsInjectedBugs(t *testing.T) {
	// A small population with high bug rates: the verifier's findings
	// must match the generator's ground truth per network.
	p := netgen.DefaultParams()
	p.MinRouters, p.MaxRouters = 5, 10
	p.PHijack, p.PACLException, p.PDeepDrop = 0.5, 0.5, 0.5
	pop, err := netgen.Population(10, 42, p)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunSection81(pop, []string{PropMgmtReach, PropLocalEquiv, PropBlackholes})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 10 || len(sum.PerNet) != 10 {
		t.Fatalf("summary %+v", sum)
	}
	for i, n := range pop {
		nc := sum.PerNet[i]
		if got := nc.Results[PropMgmtReach].Violated; got != n.Bugs.HijackableMgmt {
			t.Errorf("%s: hijack found=%v injected=%v", n.Name, got, n.Bugs.HijackableMgmt)
		}
		wantEquiv := n.Bugs.ACLException && len(n.Roles["access"]) >= 2
		if got := nc.Results[PropLocalEquiv].Violated; got != wantEquiv {
			t.Errorf("%s: equiv violated=%v injected=%v", n.Name, got, wantEquiv)
		}
		wantDeep := n.Bugs.DeepDrop && len(n.Cores) > 0 && len(n.Access) > 0
		if got := nc.Results[PropBlackholes].Violated; got != wantDeep {
			t.Errorf("%s: deep drop found=%v injected=%v", n.Name, got, wantDeep)
		}
	}
}

func TestFig8SmallFabric(t *testing.T) {
	f, err := BuildFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, prop := range AllFig8Props() {
		row, err := RunFig8Property(f, prop)
		if err != nil {
			t.Fatalf("%s: %v", prop, err)
		}
		if !row.Verified {
			t.Errorf("%s violated on a clean fabric", prop)
		}
		if row.Elapsed <= 0 {
			t.Errorf("%s: no time recorded", prop)
		}
	}
}

func TestFig8TieredParity(t *testing.T) {
	// Two fabrics over the same pod count: one untiered (pure SAT), one
	// with the graph fast path on. Every row the fast path decides must
	// carry the SAT verdict, and on this fabric it must decide at least
	// the reachability and bounded-length families (5 of 8 rows) — a
	// hit-rate floor so the fast path cannot silently regress to
	// all-residue.
	sat, err := BuildFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := BuildFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	fast.Tiers = "graph,sat"
	hits := 0
	for _, prop := range AllFig8Props() {
		satRow, err := RunFig8Property(sat, prop)
		if err != nil {
			t.Fatalf("%s: %v", prop, err)
		}
		fastRow, err := RunFig8Property(fast, prop)
		if err != nil {
			t.Fatalf("%s tiered: %v", prop, err)
		}
		if fastRow.Verified != satRow.Verified {
			t.Errorf("%s: tiered verdict %v, sat verdict %v (tier %s)",
				prop, fastRow.Verified, satRow.Verified, fastRow.Tier)
		}
		if fastRow.Tier == "graph" {
			hits++
			if fastRow.Elapsed != fastRow.FastPath {
				t.Errorf("%s: graph-tier row elapsed %v != fast-path %v", prop, fastRow.Elapsed, fastRow.FastPath)
			}
		}
	}
	if hits < 5 {
		t.Errorf("fast path decided %d of %d fig8 rows, want >= 5", hits, len(AllFig8Props()))
	}
}

func TestAblationMonotone(t *testing.T) {
	f, err := BuildFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	var none, both *AblationRow
	for _, cfg := range AblationConfigs() {
		row, err := RunAblation(f, cfg.Name, cfg.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if !row.Verified {
			t.Fatalf("%s: reachability must verify", cfg.Name)
		}
		switch cfg.Name {
		case "none":
			none = row
		case "all":
			both = row
		}
	}
	if none.RecordVars <= both.RecordVars {
		t.Fatalf("optimizations should shrink the formula: %d vs %d", none.RecordVars, both.RecordVars)
	}
	if none.SATClauses <= both.SATClauses {
		t.Fatalf("optimizations should shrink the CNF: %d vs %d", none.SATClauses, both.SATClauses)
	}
}
