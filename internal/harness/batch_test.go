package harness

import (
	"testing"
)

// TestRunBatchAmortization pins the service PR's acceptance criteria on
// the smallest fabric: the suite has at least 10 properties, the session
// blasts the shared formula exactly once (the fresh strategy once per
// property), verdicts agree between strategies (RunBatch errors on
// mismatch), and the session run beats the fresh run's wall clock.
func TestRunBatchAmortization(t *testing.T) {
	f, err := BuildFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatch(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Properties < 10 {
		t.Fatalf("suite has %d properties, want ≥ 10", res.Properties)
	}
	if len(res.Fresh.Checks) != res.Properties || len(res.Session.Checks) != res.Properties {
		t.Fatalf("check counts: fresh=%d session=%d want %d",
			len(res.Fresh.Checks), len(res.Session.Checks), res.Properties)
	}
	if res.Session.SharedBlasts != 1 {
		t.Fatalf("session blasted the shared formula %d times, want 1", res.Session.SharedBlasts)
	}
	if res.Fresh.SharedBlasts != res.Properties {
		t.Fatalf("fresh blasted the shared formula %d times, want %d", res.Fresh.SharedBlasts, res.Properties)
	}
	for i, c := range res.Session.Checks {
		if c.Elapsed != c.Encode+c.Simplify+c.Solve+c.Certify {
			t.Fatalf("session check %d: elapsed %v != phase sum %v",
				i, c.Elapsed, c.Encode+c.Simplify+c.Solve+c.Certify)
		}
	}
	if res.Session.Total >= res.Fresh.Total {
		t.Fatalf("session (%v) did not beat fresh (%v) over %d properties",
			res.Session.Total, res.Fresh.Total, res.Properties)
	}
	if res.Speedup <= 1 {
		t.Fatalf("speedup %.2f, want > 1", res.Speedup)
	}
}
