// Package harness drives the paper's evaluation (§8): the four-property
// audit of the operational-network population (§8.1 violations table and
// Figure 7 timing panels), the synthetic data-center property sweep
// (Figure 8) and the optimization ablation (§8.3). cmd/bench and the
// repository benchmarks are thin wrappers over this package.
package harness

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/properties"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/sat"
	"repro/internal/smt"
	"repro/internal/tiered"
	"repro/internal/topogen"
)

// BuildGraph assembles the protocol graph from router configurations.
func BuildGraph(routers []*config.Router) (*protograph.Graph, error) {
	topo, err := config.BuildTopology(routers)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*config.Router, len(routers))
	for _, r := range routers {
		byName[r.Name] = r
	}
	return protograph.Build(topo, byName)
}

// PropResult is one property check outcome. Encode/Simplify/Solve split
// Elapsed by pipeline phase; they stay zero for checks that do not go
// through the solver (structural local-equivalence).
type PropResult struct {
	Violated bool
	Elapsed  time.Duration
	Encode   time.Duration
	Simplify time.Duration
	Solve    time.Duration
	Detail   string
}

// splitFrom copies the phase breakdown out of a core.Result.
func (pr *PropResult) splitFrom(res *core.Result) {
	pr.Encode = res.EncodeElapsed
	pr.Simplify = res.SimplifyElapsed
	pr.Solve = res.SolveElapsed
}

// Section 8.1 property names.
const (
	PropMgmtReach  = "mgmt-reachability"
	PropLocalEquiv = "local-equivalence"
	PropBlackholes = "blackholes"
	PropFaultInvar = "fault-invariance"
)

// AllSection81Props lists the four §8.1 properties in paper order.
func AllSection81Props() []string {
	return []string{PropMgmtReach, PropLocalEquiv, PropBlackholes, PropFaultInvar}
}

// NetCheck is the audit result for one network.
type NetCheck struct {
	Name    string
	Routers int
	Lines   int
	Results map[string]PropResult
}

// CheckNetwork runs the requested §8.1 properties on one generated
// network.
func CheckNetwork(n *netgen.Network, props []string) (*NetCheck, error) {
	g, err := BuildGraph(n.Routers)
	if err != nil {
		return nil, err
	}
	out := &NetCheck{Name: n.Name, Routers: len(n.Routers), Lines: n.Lines, Results: map[string]PropResult{}}
	for _, prop := range props {
		var pr PropResult
		switch prop {
		case PropMgmtReach:
			pr, err = checkMgmt(g)
		case PropLocalEquiv:
			pr, err = checkLocalEquiv(g, n.Roles)
		case PropBlackholes:
			pr, err = checkDropsAtEdge(g, n)
		case PropFaultInvar:
			pr, err = checkFaultInvariance(g)
		default:
			err = fmt.Errorf("harness: unknown property %q", prop)
		}
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", n.Name, prop, err)
		}
		out.Results[prop] = pr
	}
	return out, nil
}

func checkMgmt(g *protograph.Graph) (PropResult, error) {
	m, err := core.Encode(g, core.DefaultOptions())
	if err != nil {
		return PropResult{}, err
	}
	res, err := m.Check(properties.ManagementReachable(m), m.NoFailures())
	if err != nil {
		return PropResult{}, err
	}
	pr := PropResult{Violated: !res.Verified, Elapsed: res.Elapsed}
	pr.splitFrom(res)
	if !res.Verified {
		pr.Detail = res.Counterexample.String()
	}
	return pr, nil
}

func checkLocalEquiv(g *protograph.Graph, roles map[string][]string) (PropResult, error) {
	start := time.Now()
	pr := PropResult{}
	for _, members := range roles {
		for i := 0; i+1 < len(members); i++ {
			res, err := core.CheckLocalEquivalence(g, members[i], members[i+1], core.DefaultOptions())
			if err != nil {
				return pr, err
			}
			if !res.Equivalent && !pr.Violated {
				pr.Violated = true
				pr.Detail = fmt.Sprintf("%s vs %s: %s", members[i], members[i+1], res.Difference)
			}
		}
	}
	pr.Elapsed = time.Since(start)
	return pr, nil
}

func checkDropsAtEdge(g *protograph.Graph, n *netgen.Network) (PropResult, error) {
	m, err := core.Encode(g, core.DefaultOptions())
	if err != nil {
		return PropResult{}, err
	}
	edge := map[string]bool{}
	for _, r := range n.Access {
		edge[r] = true
	}
	for _, r := range n.Borders {
		edge[r] = true
	}
	p := properties.DropsAtEdgeOnly(m, func(r string) bool { return edge[r] })
	res, err := m.Check(p, m.NoFailures())
	if err != nil {
		return PropResult{}, err
	}
	pr := PropResult{Violated: !res.Verified, Elapsed: res.Elapsed}
	pr.splitFrom(res)
	if !res.Verified {
		pr.Detail = res.Counterexample.String()
	}
	return pr, nil
}

func checkFaultInvariance(g *protograph.Graph) (PropResult, error) {
	pair, prop, err := core.FaultInvariance(g, core.DefaultOptions(), 1)
	if err != nil {
		return PropResult{}, err
	}
	// §8.1 asks whether router-pair reachability survives any single
	// failure; environment-induced changes are the hijack property's
	// business, so the announcements are held silent here (they are
	// linked across the two copies already).
	silent := pair.Ctx.True()
	for _, rec := range pair.A.Main.Env {
		silent = pair.Ctx.And(silent, pair.Ctx.Not(rec.Valid))
	}
	res, err := pair.Check(prop, silent)
	if err != nil {
		return PropResult{}, err
	}
	pr := PropResult{Violated: !res.Verified, Elapsed: res.Elapsed}
	pr.splitFrom(res)
	if !res.Verified {
		pr.Detail = res.Counterexample.String()
	}
	return pr, nil
}

// Section81Summary aggregates an §8.1 audit.
type Section81Summary struct {
	Total      int
	Violations map[string]int
	PerNet     []*NetCheck
}

// RunSection81 audits a population.
func RunSection81(pop []*netgen.Network, props []string) (*Section81Summary, error) {
	sum := &Section81Summary{Total: len(pop), Violations: map[string]int{}}
	for _, n := range pop {
		nc, err := CheckNetwork(n, props)
		if err != nil {
			return nil, err
		}
		sum.PerNet = append(sum.PerNet, nc)
		for prop, pr := range nc.Results {
			if pr.Violated {
				sum.Violations[prop]++
			}
		}
	}
	return sum, nil
}

// Figure 8 property names (paper legend order).
const (
	Fig8NoBlackholes   = "no-blackholes"
	Fig8Multipath      = "multipath-consistency"
	Fig8LocalConsist   = "local-consistency"
	Fig8ReachSingle    = "single-tor-reachability"
	Fig8ReachAll       = "all-tor-reachability"
	Fig8BoundedSingle  = "single-tor-bounded-length"
	Fig8BoundedAll     = "all-tor-bounded-length"
	Fig8EqualLengthPod = "equal-length-pod"
)

// AllFig8Props lists the Figure 8 properties.
func AllFig8Props() []string {
	return []string{
		Fig8NoBlackholes, Fig8Multipath, Fig8LocalConsist,
		Fig8ReachSingle, Fig8ReachAll,
		Fig8BoundedSingle, Fig8BoundedAll, Fig8EqualLengthPod,
	}
}

// Fig8Row is one point of Figure 8. Encode/Simplify/Solve split Elapsed
// by pipeline phase (zero for the structural local-consistency property).
// The Proof columns stay zero unless the fabric runs with Certify: they
// give the DRAT trace size and the independent checker's replay time
// behind a verified verdict.
type Fig8Row struct {
	Pods, Routers int
	Property      string
	// Tier names the verification tier that answered the row: "graph"
	// for the fast path, "sat" for the solver (including fast-path
	// residue), "" when the fabric ran untiered.
	Tier string
	// FastPath is the graph tier's classification time (the whole row
	// cost on a hit, overhead on residue; zero untiered).
	FastPath    time.Duration
	Elapsed     time.Duration
	Encode      time.Duration
	Simplify    time.Duration
	Solve       time.Duration
	Verified    bool
	SATVars     int
	SATClauses  int
	Conflicts   int64
	ProofSteps  int
	ProofLemmas int
	ProofCheck  time.Duration
	// Deterministic work columns, from the adopted search's counters and
	// the cost ledger's byte estimates. At a fixed seed with a sequential
	// search these are machine-independent, so the regression gate holds
	// them to a far tighter tolerance than wall-clock time.
	Decisions     int64
	Propagations  int64
	ClauseDBBytes int64
	ProofBytes    int64
	// SpentUnits totals decisions+propagations+conflicts across every
	// solver task in the ledger — equal to the adopted units on a
	// sequential search, larger under portfolio/cube parallelism where
	// losing tasks also burn work.
	SpentUnits int64
	// Profile is the per-origin hot-constraint profile, populated only
	// when the fabric runs with ProfileOrigins.
	Profile *provenance.Profile
}

// Fabric caches a generated fat-tree and its graph. The optional
// observability fields are threaded into every model built from the
// fabric: Obs parents the per-query spans, and ProgressEvery/OnProgress
// install the solver progress hook.
type Fabric struct {
	FT *topogen.FatTree
	G  *protograph.Graph

	// Passes, when non-empty, overrides the optimization pipeline for
	// every encode that does not already pin Options.Passes (the cmd
	// -passes flag lands here).
	Passes string

	// Tiers enables the graph fast path for Fig8 rows when
	// tiered.Enabled(Tiers) holds (the cmd -tiers flag lands here; the
	// zero value here means OFF so existing callers measure the solver
	// unchanged — pass "graph,sat" to opt in).
	Tiers string

	// analysis is the lazily built fast-path analysis shared by every
	// row of a tiered run. Not synchronized: a Fabric is driven by one
	// goroutine at a time.
	analysis *tiered.Analysis

	// Certify turns on DRAT proof recording for every encode: verified
	// verdicts carry an independently checked certificate and the Fig8Row
	// proof columns are populated.
	Certify bool

	// ProfileOrigins turns on solver origin attribution for every encode:
	// rows carry the per-origin hot-constraint profile.
	ProfileOrigins bool

	// Parallel selects the parallel solve strategy for every encode
	// (core.Options.Parallel syntax); empty keeps the sequential search.
	// ParallelWorkers bounds solver-level parallelism (<=0: one per CPU).
	Parallel        string
	ParallelWorkers int

	Obs           *obs.Span
	ProgressEvery int64
	OnProgress    func(sat.Progress)
}

// encode builds a model from the fabric with its observability wiring.
func (f *Fabric) encode(opts core.Options) (*core.Model, error) {
	opts.Span = f.Obs
	if opts.Passes == "" {
		opts.Passes = f.Passes
	}
	if f.Certify {
		opts.Certify = true
	}
	if f.ProfileOrigins {
		opts.ProfileOrigins = true
	}
	if f.Parallel != "" {
		opts.Parallel = f.Parallel
		opts.ParallelWorkers = f.ParallelWorkers
	}
	m, err := core.Encode(f.G, opts)
	if err != nil {
		return nil, err
	}
	m.ProgressEvery = f.ProgressEvery
	m.OnProgress = f.OnProgress
	return m, nil
}

// tiersOn reports whether Fig8 rows should attempt the graph fast path.
// Unlike the CLI flags — where empty means the default, tiers on — the
// empty Fabric field keeps existing benchmark callers untiered.
func (f *Fabric) tiersOn() bool { return f.Tiers != "" && tiered.Enabled(f.Tiers) }

// Analysis returns the fabric's fast-path analysis, building it on first
// use (cached: one analysis serves every row and sweep on the fabric).
func (f *Fabric) Analysis() *tiered.Analysis {
	if f.analysis == nil {
		f.analysis = tiered.NewAnalysis(f.G)
	}
	return f.analysis
}

// Fig8Goal translates a Figure 8 property into the graph tier's goal
// vocabulary (ok=false for local-consistency, which the tier does not
// model). Shared by RunFig8Property and the tiered-sweep experiment so
// both answer exactly the query the SAT row answers.
func Fig8Goal(f *Fabric, prop string) (tiered.Goal, bool) {
	k := f.FT.K
	dst := topogen.ToRSubnet(0, 0)
	destToR := topogen.ToRName(0, 0)
	farToR := topogen.ToRName(k-1, 0)
	var others []string
	for _, t := range f.FT.AllToRs() {
		if t != destToR {
			others = append(others, t)
		}
	}
	goal := tiered.Goal{Subnet: dst, HasSubnet: true}
	switch prop {
	case Fig8NoBlackholes:
		return tiered.Goal{Check: "blackholes"}, true
	case Fig8Multipath:
		return tiered.Goal{Check: "multipath-consistency"}, true
	case Fig8ReachSingle:
		goal.Check, goal.Src = "reachability", farToR
	case Fig8ReachAll:
		goal.Check, goal.Srcs = "reachability-all", others
	case Fig8BoundedSingle:
		goal.Check, goal.Src, goal.Hops = "bounded-length", farToR, 4
	case Fig8BoundedAll:
		goal.Check, goal.Srcs, goal.Hops = "bounded-length-all", others, 4
	case Fig8EqualLengthPod:
		goal.Check, goal.Srcs = "equal-lengths", f.FT.ToRs[k-1]
	default:
		return tiered.Goal{}, false
	}
	return goal, true
}

// Fig8ModularGoal is Fig8Goal with the whole-network properties
// (no-blackholes, multipath-consistency) scoped to the destination
// subnet. The modular composition always works per destination prefix
// — its contracts describe announcements for one prefix — and the
// monolithic reference adds the matching DstIn assumption, so both
// sides of a modular-vs-monolithic comparison answer the same
// subnet-scoped question.
func Fig8ModularGoal(f *Fabric, prop string) (tiered.Goal, bool) {
	goal, ok := Fig8Goal(f, prop)
	if !ok {
		return goal, false
	}
	if !goal.HasSubnet {
		goal.Subnet = topogen.ToRSubnet(0, 0)
		goal.HasSubnet = true
	}
	return goal, true
}

// BuildFabric generates a k-pod fabric.
func BuildFabric(k int) (*Fabric, error) {
	ft, err := topogen.Generate(k)
	if err != nil {
		return nil, err
	}
	g, err := BuildGraph(ft.Routers)
	if err != nil {
		return nil, err
	}
	return &Fabric{FT: ft, G: g}, nil
}

// RunFig8Property checks one Figure 8 property on a fabric. The
// destination is the first ToR's subnet, the far source the last pod's
// first ToR, matching the paper's fixed-destination queries.
func RunFig8Property(f *Fabric, prop string) (*Fig8Row, error) {
	k := f.FT.K
	row := &Fig8Row{Pods: k, Routers: len(f.FT.Routers), Property: prop}
	dst := topogen.ToRSubnet(0, 0)
	destToR := topogen.ToRName(0, 0)
	farToR := topogen.ToRName(k-1, 0)
	allToRs := func() []string {
		var out []string
		for _, t := range f.FT.AllToRs() {
			if t != destToR {
				out = append(out, t)
			}
		}
		return out
	}

	if prop == Fig8LocalConsist {
		// n−1 pairwise equivalence queries over the core tier, as in
		// §8.2 ("to ensure all n spine routers are equivalent... n−1
		// separate queries").
		start := time.Now()
		cores := f.FT.Cores
		row.Verified = true
		opts := core.DefaultOptions()
		opts.Span = f.Obs
		for i := 0; i+1 < len(cores); i++ {
			res, err := core.CheckLocalEquivalence(f.G, cores[i], cores[i+1], opts)
			if err != nil {
				return nil, err
			}
			if !res.Equivalent {
				row.Verified = false
			}
		}
		row.Elapsed = time.Since(start)
		return row, nil
	}

	// Graph fast path: a decided goal costs one analysis pass instead of
	// an encode + solve; residue rows pay the classification as overhead
	// and fall through to the solver unchanged.
	if f.tiersOn() {
		if goal, ok := Fig8Goal(f, prop); ok {
			a := f.Analysis()
			start := time.Now()
			out := a.Decide(goal)
			row.FastPath = time.Since(start)
			if out.Decided {
				row.Tier = tiered.TierGraph
				row.Elapsed = row.FastPath
				row.Verified = out.Verified
				return row, nil
			}
			row.Tier = tiered.TierSAT
		}
	}

	m, err := f.encode(core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	var p = m.Ctx.True()
	assumptions := []*smt.Term{m.NoFailures()}
	switch prop {
	case Fig8NoBlackholes:
		p = properties.NoBlackholes(m)
	case Fig8Multipath:
		p = properties.MultipathConsistent(m)
	case Fig8ReachSingle:
		p = properties.Reachable(m, farToR, dst)
		assumptions = append(assumptions, properties.DstIn(m, dst))
	case Fig8ReachAll:
		p = properties.ReachableAll(m, allToRs(), dst)
		assumptions = append(assumptions, properties.DstIn(m, dst))
	case Fig8BoundedSingle:
		p = properties.BoundedLength(m, farToR, dst, 4)
		assumptions = append(assumptions, properties.DstIn(m, dst))
	case Fig8BoundedAll:
		p = properties.BoundedLengthAll(m, allToRs(), dst, 4)
		assumptions = append(assumptions, properties.DstIn(m, dst))
	case Fig8EqualLengthPod:
		// ToRs of a pod other than the destination's use equal-length
		// paths.
		p = properties.EqualLengths(m, f.FT.ToRs[k-1], dst)
		assumptions = append(assumptions, properties.DstIn(m, dst))
	default:
		return nil, fmt.Errorf("harness: unknown figure-8 property %q", prop)
	}
	res, err := m.Check(p, assumptions...)
	if err != nil {
		return nil, err
	}
	row.Elapsed = res.Elapsed
	row.Encode = res.EncodeElapsed
	row.Simplify = res.SimplifyElapsed
	row.Solve = res.SolveElapsed
	row.Verified = res.Verified
	row.SATVars = res.SATVars
	row.SATClauses = res.SATClauses
	row.Conflicts = res.Stats.Conflicts
	row.Decisions = res.Stats.Decisions
	row.Propagations = res.Stats.Propagations
	if res.Cost != nil {
		t := res.Cost.Total()
		row.ClauseDBBytes = t.ClauseDBBytes
		row.ProofBytes = t.ProofBytes
		row.SpentUnits = t.Units()
	}
	if cert := res.Certificate; cert != nil {
		row.ProofSteps = cert.Steps
		row.ProofLemmas = cert.Lemmas
		row.ProofCheck = cert.CheckElapsed
	}
	row.Profile = res.OriginProfile
	return row, nil
}

// AblationRow is one §8.3 data point: single-source reachability with a
// given optimization configuration. Encode is the symbolic model build,
// Check the full query; CNF/Simplify/Solve split Check by solver phase.
type AblationRow struct {
	Config        string
	Opts          core.Options
	Pods, Routers int
	Encode        time.Duration
	Check         time.Duration
	CNF           time.Duration
	Simplify      time.Duration
	Solve         time.Duration
	Verified      bool
	RecordVars    int
	SATVars       int
	SATClauses    int
	Conflicts     int64
}

// AblationConfigs enumerates the §8.3 configurations: the naive
// encoding, each optimization pass alone, and the full pipeline.
func AblationConfigs() []struct {
	Name string
	Opts core.Options
} {
	out := []struct {
		Name string
		Opts core.Options
	}{{"none", core.Options{Passes: "none"}}}
	for _, name := range core.PassNames() {
		out = append(out, struct {
			Name string
			Opts core.Options
		}{name, core.Options{Passes: name}})
	}
	return append(out, struct {
		Name string
		Opts core.Options
	}{"all", core.Options{Passes: "all"}})
}

// RunAblation measures the optimizations on single-source reachability
// over a k-pod fabric.
func RunAblation(f *Fabric, name string, opts core.Options) (*AblationRow, error) {
	k := f.FT.K
	row := &AblationRow{Config: name, Opts: opts, Pods: k, Routers: len(f.FT.Routers)}
	t0 := time.Now()
	m, err := f.encode(opts)
	if err != nil {
		return nil, err
	}
	row.Encode = time.Since(t0)
	row.RecordVars = m.NumRecordVars
	dst := topogen.ToRSubnet(0, 0)
	p := properties.Reachable(m, topogen.ToRName(k-1, 0), dst)
	res, err := m.Check(p, m.NoFailures(), properties.DstIn(m, dst))
	if err != nil {
		return nil, err
	}
	row.Check = res.Elapsed
	row.CNF = res.EncodeElapsed
	row.Simplify = res.SimplifyElapsed
	row.Solve = res.SolveElapsed
	row.Verified = res.Verified
	row.SATVars = res.SATVars
	row.SATClauses = res.SATClauses
	row.Conflicts = res.Stats.Conflicts
	return row, nil
}
