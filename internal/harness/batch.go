package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/properties"
	"repro/internal/smt"
	"repro/internal/topogen"
)

// batchProp is one property of the batch suite. Build runs against the
// mode's own model, because property construction interns terms and may
// append instrumentation constraints.
type batchProp struct {
	Name  string
	Build func(m *core.Model) (*smt.Term, []*smt.Term)
}

// batchToRLimit caps the per-ToR property fan-out so the suite grows
// gently with fabric size.
const batchToRLimit = 3

// batchProps builds the batch suite for a fabric: the fixed whole-network
// properties plus four queries per non-destination ToR (capped). On the
// smallest fabric (2 pods) this is a 10-property suite.
func batchProps(f *Fabric) []batchProp {
	k := f.FT.K
	dst := topogen.ToRSubnet(0, 0)
	destToR := topogen.ToRName(0, 0)
	var tors []string
	for _, t := range f.FT.AllToRs() {
		if t != destToR && len(tors) < batchToRLimit {
			tors = append(tors, t)
		}
	}
	noFail := func(m *core.Model) []*smt.Term { return []*smt.Term{m.NoFailures()} }
	withDst := func(m *core.Model) []*smt.Term {
		return []*smt.Term{m.NoFailures(), properties.DstIn(m, dst)}
	}
	props := []batchProp{
		{"no-blackholes", func(m *core.Model) (*smt.Term, []*smt.Term) {
			return properties.NoBlackholes(m), noFail(m)
		}},
		{"multipath-consistency", func(m *core.Model) (*smt.Term, []*smt.Term) {
			return properties.MultipathConsistent(m), noFail(m)
		}},
		{"no-loops", func(m *core.Model) (*smt.Term, []*smt.Term) {
			return properties.NoForwardingLoops(m, nil), noFail(m)
		}},
		{"equal-length-pod", func(m *core.Model) (*smt.Term, []*smt.Term) {
			return properties.EqualLengths(m, f.FT.ToRs[k-1], dst), withDst(m)
		}},
		{"all-tor-reachability", func(m *core.Model) (*smt.Term, []*smt.Term) {
			var all []string
			for _, t := range f.FT.AllToRs() {
				if t != destToR {
					all = append(all, t)
				}
			}
			return properties.ReachableAll(m, all, dst), withDst(m)
		}},
		{"all-tor-bounded-length", func(m *core.Model) (*smt.Term, []*smt.Term) {
			var all []string
			for _, t := range f.FT.AllToRs() {
				if t != destToR {
					all = append(all, t)
				}
			}
			return properties.BoundedLengthAll(m, all, dst, 4), withDst(m)
		}},
	}
	for _, tor := range tors {
		tor := tor
		props = append(props,
			batchProp{"reachability:" + tor, func(m *core.Model) (*smt.Term, []*smt.Term) {
				return properties.Reachable(m, tor, dst), withDst(m)
			}},
			batchProp{"bounded-length:" + tor, func(m *core.Model) (*smt.Term, []*smt.Term) {
				return properties.BoundedLength(m, tor, dst, 4), withDst(m)
			}},
			batchProp{"reachability-1f:" + tor, func(m *core.Model) (*smt.Term, []*smt.Term) {
				return properties.Reachable(m, tor, dst),
					[]*smt.Term{m.AtMostFailures(1), properties.DstIn(m, dst)}
			}},
			batchProp{"bounded-length-6:" + tor, func(m *core.Model) (*smt.Term, []*smt.Term) {
				return properties.BoundedLength(m, tor, dst, 6), withDst(m)
			}},
		)
	}
	return props
}

// BatchCheck is one property's timings in one mode.
type BatchCheck struct {
	Property  string
	Elapsed   time.Duration
	Encode    time.Duration
	Simplify  time.Duration
	Solve     time.Duration
	Certify   time.Duration
	Verified  bool
	Conflicts int64
}

// BatchMode aggregates one strategy's run over the suite. Total is the
// wall clock of the whole mode including the model encode; for the
// session mode SetupBlast and SetupSimplify are the one-time session
// costs amortized across the checks.
type BatchMode struct {
	Mode          string
	Total         time.Duration
	EncodeModel   time.Duration
	SetupBlast    time.Duration
	SetupSimplify time.Duration
	SharedBlasts  int
	// Compiles counts term-pipeline runs (Model.CompileCount): the
	// session mode compiles once, while the fresh mode recompiles each
	// time a property builder grows the assert list.
	Compiles int
	Checks   []BatchCheck
}

// QueryTotal sums the per-check elapsed times plus the session setup,
// excluding the (mode-independent) symbolic model encode.
func (bm *BatchMode) QueryTotal() time.Duration {
	t := bm.SetupBlast + bm.SetupSimplify
	for _, c := range bm.Checks {
		t += c.Elapsed
	}
	return t
}

// BatchResult compares the fresh-solver strategy (every property re-blasts
// the shared constraint system N into a new solver) against one
// incremental session (N blasted once, each property checked under an
// activation literal).
type BatchResult struct {
	Pods, Routers, Properties int
	Fresh, Session            BatchMode
	// Speedup is Fresh.Total / Session.Total.
	Speedup float64
}

// RunBatch runs the batch suite twice on the fabric — fresh solvers, then
// one session — and cross-checks that both strategies return identical
// verdicts for every property.
func RunBatch(f *Fabric) (*BatchResult, error) {
	props := batchProps(f)
	out := &BatchResult{
		Pods:       f.FT.K,
		Routers:    len(f.FT.Routers),
		Properties: len(props),
	}

	// Fresh mode: one model, a brand-new solver per check (Model.Check).
	start := time.Now()
	encStart := time.Now()
	mf, err := f.encode(core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	out.Fresh = BatchMode{Mode: "fresh", EncodeModel: time.Since(encStart)}
	out.Fresh.SharedBlasts = 0
	for _, bp := range props {
		p, assumptions := bp.Build(mf)
		res, err := mf.Check(p, assumptions...)
		if err != nil {
			return nil, fmt.Errorf("harness: fresh %s: %w", bp.Name, err)
		}
		out.Fresh.SharedBlasts++ // every fresh check re-blasts N
		out.Fresh.Checks = append(out.Fresh.Checks, BatchCheck{
			Property: bp.Name, Elapsed: res.Elapsed,
			Encode: res.EncodeElapsed, Simplify: res.SimplifyElapsed,
			Solve: res.SolveElapsed, Certify: res.CertifyElapsed,
			Verified: res.Verified, Conflicts: res.Stats.Conflicts,
		})
	}
	out.Fresh.Compiles = mf.CompileCount()
	out.Fresh.Total = time.Since(start)

	// Session mode: one model, one incremental session for all checks.
	start = time.Now()
	encStart = time.Now()
	ms, err := f.encode(core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	out.Session = BatchMode{Mode: "session", EncodeModel: time.Since(encStart)}
	sess := ms.NewSession()
	out.Session.SetupBlast, out.Session.SetupSimplify = sess.SetupElapsed()
	for _, bp := range props {
		p, assumptions := bp.Build(ms)
		res, err := sess.Check(p, assumptions...)
		if err != nil {
			return nil, fmt.Errorf("harness: session %s: %w", bp.Name, err)
		}
		out.Session.Checks = append(out.Session.Checks, BatchCheck{
			Property: bp.Name, Elapsed: res.Elapsed,
			Encode: res.EncodeElapsed, Simplify: res.SimplifyElapsed,
			Solve: res.SolveElapsed, Certify: res.CertifyElapsed,
			Verified: res.Verified, Conflicts: res.Stats.Conflicts,
		})
	}
	out.Session.SharedBlasts = sess.SharedBlasts()
	out.Session.Compiles = ms.CompileCount()
	out.Session.Total = time.Since(start)

	for i := range props {
		if out.Fresh.Checks[i].Verified != out.Session.Checks[i].Verified {
			return nil, fmt.Errorf("harness: %s: fresh verified=%v but session verified=%v",
				props[i].Name, out.Fresh.Checks[i].Verified, out.Session.Checks[i].Verified)
		}
	}
	if out.Session.Total > 0 {
		out.Speedup = float64(out.Fresh.Total) / float64(out.Session.Total)
	}
	return out, nil
}
