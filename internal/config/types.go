// Package config defines the vendor-style router configuration language
// consumed by the verifier: a typed in-memory representation (the analogue
// of Batfish's vendor-independent model), a Cisco-IOS-flavoured text
// parser, a printer, and layer-3 topology inference.
package config

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// Protocol identifies a routing-information source. Connected and static
// routes are modeled as protocols of their own, exactly as in the paper
// ("we model them as if they are another protocol to avoid special
// cases").
type Protocol int

// Routing protocols.
const (
	Connected Protocol = iota
	Static
	OSPF
	RIP
	BGP
)

func (p Protocol) String() string {
	switch p {
	case Connected:
		return "connected"
	case Static:
		return "static"
	case OSPF:
		return "ospf"
	case RIP:
		return "rip"
	case BGP:
		return "bgp"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// DefaultAdminDistance returns the conventional administrative distance
// used when the configuration does not override it.
func DefaultAdminDistance(p Protocol) int {
	switch p {
	case Connected:
		return 0
	case Static:
		return 1
	case OSPF:
		return 110
	case RIP:
		return 120
	case BGP:
		return 20 // eBGP; iBGP uses 200
	}
	return 255
}

// Action is permit or deny in filters.
type Action int

// Filter actions.
const (
	Permit Action = iota
	Deny
)

func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// Router is the configuration of one device.
type Router struct {
	Name       string
	Interfaces []*Interface
	OSPF       *OSPFConfig
	RIP        *RIPConfig
	BGP        *BGPConfig
	Statics    []*StaticRoute

	PrefixLists map[string]*PrefixList
	RouteMaps   map[string]*RouteMap
	ACLs        map[string]*ACL
	// CommunityLists names sets of community values for route-map matches.
	CommunityLists map[string]*CommunityList
}

// NewRouter returns an empty configuration for the named device.
func NewRouter(name string) *Router {
	return &Router{
		Name:           name,
		PrefixLists:    map[string]*PrefixList{},
		RouteMaps:      map[string]*RouteMap{},
		ACLs:           map[string]*ACL{},
		CommunityLists: map[string]*CommunityList{},
	}
}

// Interface is a layer-3 interface.
type Interface struct {
	Name string
	// Addr is the interface address; Prefix its connected subnet.
	Addr   network.IP
	Prefix network.Prefix
	// OSPFCost is the link cost (default 1 when the interface runs OSPF).
	OSPFCost int
	// InACL and OutACL name data-plane filters ("" = none).
	InACL, OutACL string
	// Management marks a device-management interface (the §8.1
	// reachability property targets these).
	Management bool
	// Shutdown interfaces are administratively down.
	Shutdown bool
}

// Iface returns the named interface or nil.
func (r *Router) Iface(name string) *Interface {
	for _, i := range r.Interfaces {
		if i.Name == name {
			return i
		}
	}
	return nil
}

// ManagementInterfaces returns all interfaces flagged as management.
func (r *Router) ManagementInterfaces() []*Interface {
	var out []*Interface
	for _, i := range r.Interfaces {
		if i.Management {
			out = append(out, i)
		}
	}
	return out
}

// Redistribution imports routes from another protocol into the enclosing
// one.
type Redistribution struct {
	From Protocol
	// Metric is the seed metric in the target protocol (0 = protocol
	// default).
	Metric int
	// RouteMap optionally filters/transforms redistributed routes.
	RouteMap string
}

// OSPFConfig is a link-state routing process.
type OSPFConfig struct {
	ProcessID int
	// Networks lists interface subnets activated for OSPF.
	Networks []network.Prefix
	// Redistribute imports other protocols.
	Redistribute []Redistribution
	// AdminDistance overrides the default of 110 when non-zero.
	AdminDistance int
	// MaxPaths >1 enables ECMP.
	MaxPaths int
}

// RIPConfig is a distance-vector routing process. Per the paper, RIP is
// modeled as shortest paths with every link of weight 1.
type RIPConfig struct {
	Networks      []network.Prefix
	Redistribute  []Redistribution
	AdminDistance int
}

// BGPConfig is a BGP process.
type BGPConfig struct {
	ASN      uint32
	RouterID network.IP
	// Networks are prefixes originated by this router.
	Networks []network.Prefix
	// Neighbors lists configured peers (internal or external).
	Neighbors []*BGPNeighbor
	// Redistribute imports other protocols.
	Redistribute []Redistribution
	// MaxPaths >1 enables BGP multipath.
	MaxPaths int
	// AdminDistance overrides the default (20 eBGP / 200 iBGP) when
	// non-zero.
	AdminDistance int
	// AlwaysCompareMED selects MED comparison independent of neighboring
	// AS (§4, first MED usage).
	AlwaysCompareMED bool
	// Aggregates are advertised summary prefixes (§4 aggregation).
	Aggregates []Aggregate
}

// Aggregate is a BGP aggregate-address statement. With SummaryOnly the
// more-specific routes are suppressed on eBGP export: following the paper,
// this is modeled as shortening the advertised prefix length to the
// aggregate's.
type Aggregate struct {
	Prefix      network.Prefix
	SummaryOnly bool
}

// BGPNeighbor is one BGP peering.
type BGPNeighbor struct {
	Addr     network.IP
	RemoteAS uint32
	// InMap and OutMap name route-maps applied on import/export.
	InMap, OutMap string
	// RouteReflectorClient marks the peer as an RR client of this router.
	RouteReflectorClient bool
	// Description is free-form.
	Description string
}

// IsInternal reports whether the peering is iBGP given the local ASN.
func (n *BGPNeighbor) IsInternal(localAS uint32) bool { return n.RemoteAS == localAS }

// StaticRoute is a static forwarding entry.
type StaticRoute struct {
	Prefix network.Prefix
	// NextHop is the next-hop address (0 if Interface is set).
	NextHop network.IP
	// Interface directs out a named interface when non-empty.
	Interface string
	// AdminDistance overrides the default of 1 when non-zero.
	AdminDistance int
	// Drop marks a "reject"/null0 route that blackholes the prefix.
	Drop bool
}

// PrefixList is an ordered prefix filter.
type PrefixList struct {
	Name    string
	Entries []PrefixListEntry
}

// PrefixListEntry is one prefix-list rule. Ge/Le of 0 mean "unset": the
// entry then matches the exact prefix length only.
type PrefixListEntry struct {
	Seq    int
	Action Action
	Prefix network.Prefix
	Ge, Le int
}

// Matches reports whether the entry matches a route for prefix p, per the
// standard semantics: first Prefix.Len bits must match and the length must
// satisfy the ge/le bounds.
func (e PrefixListEntry) Matches(p network.Prefix) bool {
	if p.Addr.Mask(e.Prefix.Len) != e.Prefix.Addr {
		return false
	}
	lo, hi := e.Prefix.Len, e.Prefix.Len
	if e.Ge != 0 {
		lo = e.Ge
		hi = 32
	}
	if e.Le != 0 {
		hi = e.Le
		if e.Ge == 0 {
			lo = e.Prefix.Len
		}
	}
	return p.Len >= lo && p.Len <= hi
}

// Permits runs the prefix list against p with an implicit deny-all tail.
func (l *PrefixList) Permits(p network.Prefix) bool {
	for _, e := range l.Entries {
		if e.Matches(p) {
			return e.Action == Permit
		}
	}
	return false
}

// CommunityList names a set of community strings.
type CommunityList struct {
	Name   string
	Values []string
}

// RouteMap is an ordered sequence of match/set clauses.
type RouteMap struct {
	Name    string
	Clauses []*RouteMapClause
}

// RouteMapClause is one route-map stanza. All match conditions must hold
// for the clause to apply; an applying permit clause executes its sets and
// accepts, an applying deny clause rejects. A route matching no clause is
// rejected (implicit deny).
type RouteMapClause struct {
	Seq    int
	Action Action

	// Match conditions (zero values = unset).
	MatchPrefixList string
	MatchCommunity  string // community-list name

	// Set actions (applied when the clause permits).
	SetLocalPref  uint32 // 0 = unset
	SetMetric     int    // 0 = unset
	HasSetMetric  bool
	SetMED        int
	HasSetMED     bool
	SetCommunity  []string // communities to add
	DelCommunity  []string // communities to remove
	SetNextHop    network.IP
	HasSetNextHop bool
	// SetPrepend prepends the local ASN this many times on export,
	// lengthening the advertised AS path.
	SetPrepend int
}

// ACL is a data-plane packet filter.
type ACL struct {
	Name    string
	Entries []ACLEntry
}

// ACLEntry matches the 5-tuple fields of the symbolic packet.
type ACLEntry struct {
	Action Action
	// SrcPrefix/DstPrefix constrain addresses; zero-length prefixes match
	// any.
	SrcPrefix, DstPrefix network.Prefix
	// Protocol is the IP protocol number, or -1 for any.
	Protocol int
	// Port ranges; Lo=0,Hi=65535 means any.
	SrcPortLo, SrcPortHi int
	DstPortLo, DstPortHi int
}

// AnyACLEntry returns an entry matching every packet.
func AnyACLEntry(a Action) ACLEntry {
	return ACLEntry{Action: a, Protocol: -1, SrcPortHi: 65535, DstPortHi: 65535}
}

// Packet is a concrete data-plane packet header (used by the simulator and
// by counterexample replay).
type Packet struct {
	SrcIP, DstIP     network.IP
	SrcPort, DstPort int
	Protocol         int
}

// MatchesPacket reports whether the entry matches the concrete packet.
func (e ACLEntry) MatchesPacket(p Packet) bool {
	if e.SrcPrefix.Len > 0 && !e.SrcPrefix.Contains(p.SrcIP) {
		return false
	}
	if e.DstPrefix.Len > 0 && !e.DstPrefix.Contains(p.DstIP) {
		return false
	}
	if e.Protocol >= 0 && e.Protocol != p.Protocol {
		return false
	}
	if p.SrcPort < e.SrcPortLo || p.SrcPort > e.SrcPortHi {
		return false
	}
	if p.DstPort < e.DstPortLo || p.DstPort > e.DstPortHi {
		return false
	}
	return true
}

// Permits runs the ACL against a packet with the implicit deny-all tail.
func (a *ACL) Permits(p Packet) bool {
	for _, e := range a.Entries {
		if e.MatchesPacket(p) {
			return e.Action == Permit
		}
	}
	return false
}

// Protocols returns the routing protocols configured on the router,
// including the implicit Connected instance, in deterministic order.
func (r *Router) Protocols() []Protocol {
	out := []Protocol{Connected}
	if len(r.Statics) > 0 {
		out = append(out, Static)
	}
	if r.OSPF != nil {
		out = append(out, OSPF)
	}
	if r.RIP != nil {
		out = append(out, RIP)
	}
	if r.BGP != nil {
		out = append(out, BGP)
	}
	return out
}

// OriginatedPrefixes returns every prefix the router can inject into
// routing: connected subnets, static destinations, and BGP network
// statements.
func (r *Router) OriginatedPrefixes() []network.Prefix {
	seen := map[network.Prefix]bool{}
	var out []network.Prefix
	add := func(p network.Prefix) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, i := range r.Interfaces {
		if !i.Shutdown {
			add(i.Prefix)
		}
	}
	for _, s := range r.Statics {
		add(s.Prefix)
	}
	if r.BGP != nil {
		for _, p := range r.BGP.Networks {
			add(p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// Validate performs basic structural checks: referenced route-maps,
// prefix-lists and ACLs must exist, interfaces must have addresses, and
// BGP neighbors must be unique.
func (r *Router) Validate() error {
	for _, i := range r.Interfaces {
		if i.Prefix.Len == 0 && i.Addr == 0 {
			return fmt.Errorf("%s: interface %s has no address", r.Name, i.Name)
		}
		for _, acl := range []string{i.InACL, i.OutACL} {
			if acl != "" && r.ACLs[acl] == nil {
				return fmt.Errorf("%s: interface %s references undefined ACL %q", r.Name, i.Name, acl)
			}
		}
	}
	if r.BGP != nil {
		seen := map[network.IP]bool{}
		for _, n := range r.BGP.Neighbors {
			if seen[n.Addr] {
				return fmt.Errorf("%s: duplicate BGP neighbor %v", r.Name, n.Addr)
			}
			seen[n.Addr] = true
			for _, m := range []string{n.InMap, n.OutMap} {
				if m != "" && r.RouteMaps[m] == nil {
					return fmt.Errorf("%s: neighbor %v references undefined route-map %q", r.Name, n.Addr, m)
				}
			}
		}
	}
	for _, rm := range r.RouteMaps {
		for _, cl := range rm.Clauses {
			if cl.MatchPrefixList != "" && r.PrefixLists[cl.MatchPrefixList] == nil {
				return fmt.Errorf("%s: route-map %s references undefined prefix-list %q", r.Name, rm.Name, cl.MatchPrefixList)
			}
			if cl.MatchCommunity != "" && r.CommunityLists[cl.MatchCommunity] == nil {
				return fmt.Errorf("%s: route-map %s references undefined community-list %q", r.Name, rm.Name, cl.MatchCommunity)
			}
		}
	}
	return nil
}
