package config

import (
	"strings"
	"testing"

	"repro/internal/network"
)

const sampleR1 = `
hostname R1
!
interface GigabitEthernet0/0
 ip address 10.0.12.1 255.255.255.0
 ip ospf cost 10
!
interface GigabitEthernet0/1
 ip address 10.0.13.1 255.255.255.0
!
interface Loopback0
 ip address 192.168.1.1 255.255.255.255
 management
!
interface Serial0/0
 ip address 10.1.1.1 255.255.255.252
!
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
 network 10.0.13.0 0.0.0.255 area 0
 redistribute bgp metric 20
 maximum-paths 4
!
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.1.1.2 remote-as 65100
 neighbor 10.1.1.2 description N1
 neighbor 10.1.1.2 route-map IMPORT in
 neighbor 10.1.1.2 route-map EXPORT out
 neighbor 10.0.12.2 remote-as 65001
 network 192.168.1.1 mask 255.255.255.255
 redistribute ospf
!
ip route 172.16.0.0 255.255.0.0 10.0.12.2
ip route 172.17.0.0 255.255.0.0 null0
!
ip prefix-list BOGONS seq 5 deny 192.168.0.0/16 le 32
ip prefix-list BOGONS seq 10 permit 0.0.0.0/0 le 32
!
ip community-list CUST permit 65001:100
!
route-map IMPORT permit 10
 match ip address prefix-list BOGONS
 set local-preference 120
 set community 65001:100 additive
!
route-map EXPORT permit 10
 set med 50
!
access-list 101 deny ip any host 172.18.0.1
access-list 101 permit ip any any
`

func TestParseSample(t *testing.T) {
	r, err := Parse(sampleR1)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if r.Name != "R1" {
		t.Fatalf("hostname %q", r.Name)
	}
	if len(r.Interfaces) != 4 {
		t.Fatalf("interfaces: %d", len(r.Interfaces))
	}
	gi := r.Iface("GigabitEthernet0/0")
	if gi == nil || gi.OSPFCost != 10 {
		t.Fatalf("gi0/0 = %+v", gi)
	}
	if gi.Prefix.String() != "10.0.12.0/24" || gi.Addr.String() != "10.0.12.1" {
		t.Fatalf("gi0/0 addressing %v %v", gi.Prefix, gi.Addr)
	}
	lo := r.Iface("Loopback0")
	if lo == nil || !lo.Management || lo.Prefix.Len != 32 {
		t.Fatalf("loopback %+v", lo)
	}
	if len(r.ManagementInterfaces()) != 1 {
		t.Fatal("management interface count")
	}

	if r.OSPF == nil || len(r.OSPF.Networks) != 2 || r.OSPF.MaxPaths != 4 {
		t.Fatalf("ospf %+v", r.OSPF)
	}
	if len(r.OSPF.Redistribute) != 1 || r.OSPF.Redistribute[0].From != BGP || r.OSPF.Redistribute[0].Metric != 20 {
		t.Fatalf("ospf redistribute %+v", r.OSPF.Redistribute)
	}

	if r.BGP == nil || r.BGP.ASN != 65001 || r.BGP.RouterID.String() != "1.1.1.1" {
		t.Fatalf("bgp %+v", r.BGP)
	}
	if len(r.BGP.Neighbors) != 2 {
		t.Fatalf("neighbors %d", len(r.BGP.Neighbors))
	}
	n1 := FindBGPNeighbor(r, network.MustParseIP("10.1.1.2"))
	if n1 == nil || n1.RemoteAS != 65100 || n1.InMap != "IMPORT" || n1.OutMap != "EXPORT" || n1.Description != "N1" {
		t.Fatalf("n1 %+v", n1)
	}
	ib := FindBGPNeighbor(r, network.MustParseIP("10.0.12.2"))
	if ib == nil || !ib.IsInternal(r.BGP.ASN) {
		t.Fatalf("iBGP neighbor %+v", ib)
	}

	if len(r.Statics) != 2 || r.Statics[0].NextHop.String() != "10.0.12.2" || !r.Statics[1].Drop {
		t.Fatalf("statics %+v", r.Statics)
	}

	pl := r.PrefixLists["BOGONS"]
	if pl == nil || len(pl.Entries) != 2 || pl.Entries[0].Action != Deny || pl.Entries[0].Le != 32 {
		t.Fatalf("prefix list %+v", pl)
	}

	rm := r.RouteMaps["IMPORT"]
	if rm == nil || len(rm.Clauses) != 1 {
		t.Fatalf("route map %+v", rm)
	}
	cl := rm.Clauses[0]
	if cl.MatchPrefixList != "BOGONS" || cl.SetLocalPref != 120 || len(cl.SetCommunity) != 1 {
		t.Fatalf("clause %+v", cl)
	}
	if r.RouteMaps["EXPORT"].Clauses[0].SetMED != 50 {
		t.Fatal("export med")
	}

	acl := r.ACLs["101"]
	if acl == nil || len(acl.Entries) != 2 {
		t.Fatalf("acl %+v", acl)
	}
	if acl.Entries[0].Action != Deny || acl.Entries[0].DstPrefix.String() != "172.18.0.1/32" {
		t.Fatalf("acl entry %+v", acl.Entries[0])
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	r1, err := Parse(sampleR1)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(r1)
	r2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse printed config: %v\n%s", err, text)
	}
	if Print(r2) != text {
		t.Fatal("print is not a fixed point of parse∘print")
	}
}

func TestLinesCountsNonEmpty(t *testing.T) {
	r := MustParse(sampleR1)
	n := Lines(r)
	if n < 30 {
		t.Fatalf("suspicious line count %d", n)
	}
	if TotalLines([]*Router{r, r}) != 2*n {
		t.Fatal("TotalLines")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"no hostname", "interface Eth0\n ip address 10.0.0.1 255.255.255.0\n"},
		{"bad ip", "hostname R\ninterface E0\n ip address 10.0.0.300 255.255.255.0\n"},
		{"bad mask", "hostname R\ninterface E0\n ip address 10.0.0.1 255.0.255.0\n"},
		{"unknown directive", "hostname R\nfrobnicate\n"},
		{"unknown iface directive", "hostname R\ninterface E0\n ip address 10.0.0.1 255.255.255.0\n spanning-tree on\n"},
		{"bad asn", "hostname R\nrouter bgp banana\n"},
		{"neighbor before remote-as", "hostname R\nrouter bgp 1\n neighbor 10.0.0.2 route-map M in\n"},
		{"undefined route map", "hostname R\ninterface E0\n ip address 10.0.1.1 255.255.255.0\nrouter bgp 1\n neighbor 10.0.1.2 remote-as 2\n neighbor 10.0.1.2 route-map NOPE in\n"},
		{"undefined acl", "hostname R\ninterface E0\n ip address 10.0.0.1 255.255.255.0\n ip access-group NOPE in\n"},
		{"prefix list ge below len", "hostname R\nip prefix-list L permit 10.0.0.0/16 ge 8\n"},
		{"dup interface", "hostname R\ninterface E0\n ip address 10.0.0.1 255.255.255.0\ninterface E0\n ip address 10.0.1.1 255.255.255.0\n"},
		{"dup bgp neighbor", "hostname R\ninterface E0\n ip address 10.0.0.1 255.255.255.0\nrouter bgp 1\n neighbor 10.0.0.2 remote-as 2\n neighbor 10.0.0.2 remote-as 3\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPrefixListSemantics(t *testing.T) {
	e := PrefixListEntry{Action: Permit, Prefix: network.MustParsePrefix("192.168.0.0/16"), Ge: 24, Le: 32}
	cases := []struct {
		p    string
		want bool
	}{
		{"192.168.1.0/24", true},
		{"192.168.0.0/16", false}, // length below ge
		{"192.168.1.128/25", true},
		{"192.168.1.1/32", true},
		{"10.0.0.0/24", false}, // first bits differ
	}
	for _, c := range cases {
		if got := e.Matches(network.MustParsePrefix(c.p)); got != c.want {
			t.Errorf("match %s = %v, want %v", c.p, got, c.want)
		}
	}

	// Unset ge/le means exact length.
	exact := PrefixListEntry{Action: Permit, Prefix: network.MustParsePrefix("10.0.0.0/8")}
	if !exact.Matches(network.MustParsePrefix("10.0.0.0/8")) {
		t.Error("exact match failed")
	}
	if exact.Matches(network.MustParsePrefix("10.1.0.0/16")) {
		t.Error("longer prefix matched exact entry")
	}

	// le without ge: lengths from Prefix.Len to le.
	le := PrefixListEntry{Action: Permit, Prefix: network.MustParsePrefix("0.0.0.0/0"), Le: 32}
	if !le.Matches(network.MustParsePrefix("1.2.3.0/24")) {
		t.Error("default le 32 should match everything")
	}

	l := &PrefixList{Entries: []PrefixListEntry{
		{Action: Deny, Prefix: network.MustParsePrefix("192.168.0.0/16"), Le: 32},
		{Action: Permit, Prefix: network.MustParsePrefix("0.0.0.0/0"), Le: 32},
	}}
	if l.Permits(network.MustParsePrefix("192.168.5.0/24")) {
		t.Error("bogon permitted")
	}
	if !l.Permits(network.MustParsePrefix("8.8.8.0/24")) {
		t.Error("normal prefix denied")
	}
	empty := &PrefixList{}
	if empty.Permits(network.MustParsePrefix("8.8.8.0/24")) {
		t.Error("implicit deny violated")
	}
}

func TestACLSemantics(t *testing.T) {
	acl := &ACL{Entries: []ACLEntry{
		{Action: Deny, DstPrefix: network.MustParsePrefix("172.16.1.0/24"), Protocol: -1, SrcPortHi: 65535, DstPortHi: 65535},
		{Action: Permit, Protocol: 6, SrcPortHi: 65535, DstPortLo: 80, DstPortHi: 80},
		AnyACLEntry(Deny),
	}}
	deny1 := Packet{DstIP: network.MustParseIP("172.16.1.7"), Protocol: 6, DstPort: 80}
	if acl.Permits(deny1) {
		t.Error("blocked subnet permitted")
	}
	ok := Packet{DstIP: network.MustParseIP("8.8.8.8"), Protocol: 6, DstPort: 80}
	if !acl.Permits(ok) {
		t.Error("web traffic denied")
	}
	udp := Packet{DstIP: network.MustParseIP("8.8.8.8"), Protocol: 17, DstPort: 80}
	if acl.Permits(udp) {
		t.Error("udp should fall through to deny")
	}
}

func TestOriginatedPrefixes(t *testing.T) {
	r := MustParse(sampleR1)
	ps := r.OriginatedPrefixes()
	want := map[string]bool{}
	for _, p := range ps {
		want[p.String()] = true
	}
	for _, expect := range []string{"10.0.12.0/24", "10.0.13.0/24", "192.168.1.1/32", "172.16.0.0/16", "172.17.0.0/16", "10.1.1.0/30"} {
		if !want[expect] {
			t.Errorf("missing originated prefix %s (have %v)", expect, ps)
		}
	}
}

const sampleR2 = `
hostname R2
!
interface GigabitEthernet0/0
 ip address 10.0.12.2 255.255.255.0
!
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
!
router bgp 65001
 neighbor 10.0.12.1 remote-as 65001
!
`

func TestBuildTopology(t *testing.T) {
	r1 := MustParse(sampleR1)
	r2 := MustParse(sampleR2)
	topo, err := BuildTopology([]*Router{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 2 {
		t.Fatalf("nodes %d", len(topo.Nodes))
	}
	l := topo.FindLink("R1", "R2")
	if l == nil {
		t.Fatal("missing R1-R2 link")
	}
	if l.Subnet.String() != "10.0.12.0/24" {
		t.Fatalf("link subnet %v", l.Subnet)
	}
	// External neighbor of R1 at 10.1.1.2.
	exts := topo.ExternalsOf(topo.Node("R1"))
	if len(exts) != 1 || exts[0].Name != "N1" || exts[0].ASN != 65100 {
		t.Fatalf("externals %+v", exts)
	}
	if !topo.Connected() {
		t.Fatal("topology should be connected")
	}
	// Neighbor address on no subnet is an error.
	bad := MustParse(strings.Replace(sampleR2, "neighbor 10.0.12.1", "neighbor 99.9.9.9", 1))
	if _, err := BuildTopology([]*Router{r1, bad}); err == nil {
		t.Fatal("expected error for unreachable neighbor")
	}
	// Duplicate address across routers is an error.
	dup := MustParse(strings.Replace(sampleR2, "10.0.12.2", "10.0.12.1", 1))
	if _, err := BuildTopology([]*Router{r1, dup}); err == nil {
		t.Fatal("expected duplicate-address error")
	}
}

func TestProtocolsAndDefaults(t *testing.T) {
	r := MustParse(sampleR1)
	ps := r.Protocols()
	if len(ps) != 4 || ps[0] != Connected {
		t.Fatalf("protocols %v", ps)
	}
	if DefaultAdminDistance(Connected) != 0 || DefaultAdminDistance(Static) != 1 ||
		DefaultAdminDistance(OSPF) != 110 || DefaultAdminDistance(BGP) != 20 {
		t.Fatal("admin distances")
	}
	if Connected.String() != "connected" || BGP.String() != "bgp" {
		t.Fatal("protocol strings")
	}
}

func TestAggregateParsing(t *testing.T) {
	r := MustParse(`
hostname R
!
interface E0
 ip address 10.0.0.1 255.255.255.0
!
router bgp 65001
 neighbor 10.0.0.2 remote-as 65002
 aggregate-address 10.0.0.0 255.0.0.0 summary-only
 aggregate-address 172.16.0.0 255.240.0.0
!
`)
	if len(r.BGP.Aggregates) != 2 {
		t.Fatalf("aggregates %+v", r.BGP.Aggregates)
	}
	if !r.BGP.Aggregates[0].SummaryOnly || r.BGP.Aggregates[0].Prefix.String() != "10.0.0.0/8" {
		t.Fatalf("first aggregate %+v", r.BGP.Aggregates[0])
	}
	if r.BGP.Aggregates[1].SummaryOnly || r.BGP.Aggregates[1].Prefix.Len != 12 {
		t.Fatalf("second aggregate %+v", r.BGP.Aggregates[1])
	}
	// Round trip.
	again := MustParse(Print(r))
	if len(again.BGP.Aggregates) != 2 || Print(again) != Print(r) {
		t.Fatal("aggregate round trip")
	}
	// Bad options rejected.
	if _, err := Parse("hostname R\nrouter bgp 1\n aggregate-address 10.0.0.0 255.0.0.0 frob\n"); err == nil {
		t.Fatal("bad aggregate option accepted")
	}
}
