package config

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/network"
)

// ParseError reports a configuration syntax error with its location.
type ParseError struct {
	Router string
	Line   int
	Text   string
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s (in %q)", e.Router, e.Line, e.Msg, e.Text)
}

// Parse parses one router's configuration text. The dialect is a
// Cisco-IOS-flavoured subset covering interfaces, OSPF, RIP, BGP, static
// routes, prefix lists, route maps, community lists and numbered/named
// ACLs.
func Parse(text string) (*Router, error) {
	p := &parser{r: NewRouter("")}
	lines := strings.Split(text, "\n")
	for i, raw := range lines {
		p.lineNo = i + 1
		p.raw = raw
		line := strings.TrimRight(raw, " \t\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "!") {
			// Comment/separator lines close indented blocks only when
			// they are flush left.
			if !strings.HasPrefix(line, " ") {
				p.ctx = ctxTop
			}
			continue
		}
		indented := strings.HasPrefix(line, " ")
		fields := strings.Fields(line)
		if err := p.dispatch(indented, fields); err != nil {
			return nil, &ParseError{Router: p.r.Name, Line: p.lineNo, Text: strings.TrimSpace(raw), Msg: err.Error()}
		}
	}
	if p.r.Name == "" {
		return nil, fmt.Errorf("config: missing hostname directive")
	}
	if err := p.r.Validate(); err != nil {
		return nil, err
	}
	return p.r, nil
}

// MustParse panics on parse errors; for tests and generators.
func MustParse(text string) *Router {
	r, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return r
}

type context int

const (
	ctxTop context = iota
	ctxInterface
	ctxOSPF
	ctxRIP
	ctxBGP
	ctxRouteMap
)

type parser struct {
	r      *Router
	lineNo int
	raw    string

	ctx     context
	curIf   *Interface
	curMap  *RouteMapClause
	curName string // current route-map name
}

func (p *parser) dispatch(indented bool, f []string) error {
	if !indented {
		p.ctx = ctxTop
		return p.topLevel(f)
	}
	switch p.ctx {
	case ctxInterface:
		return p.interfaceLine(f)
	case ctxOSPF:
		return p.ospfLine(f)
	case ctxRIP:
		return p.ripLine(f)
	case ctxBGP:
		return p.bgpLine(f)
	case ctxRouteMap:
		return p.routeMapLine(f)
	}
	return fmt.Errorf("indented line outside any block")
}

func (p *parser) topLevel(f []string) error {
	switch f[0] {
	case "hostname":
		if len(f) != 2 {
			return fmt.Errorf("hostname needs one argument")
		}
		p.r.Name = f[1]
		return nil
	case "interface":
		if len(f) != 2 {
			return fmt.Errorf("interface needs a name")
		}
		if p.r.Iface(f[1]) != nil {
			return fmt.Errorf("duplicate interface %q", f[1])
		}
		i := &Interface{Name: f[1], OSPFCost: 1}
		p.r.Interfaces = append(p.r.Interfaces, i)
		p.curIf = i
		p.ctx = ctxInterface
		return nil
	case "router":
		return p.routerBlock(f)
	case "ip":
		return p.ipDirective(f)
	case "route-map":
		return p.routeMapHeader(f)
	case "access-list":
		return p.numberedACL(f)
	}
	return fmt.Errorf("unknown directive %q", f[0])
}

func (p *parser) routerBlock(f []string) error {
	if len(f) < 2 {
		return fmt.Errorf("router needs a protocol")
	}
	switch f[1] {
	case "ospf":
		id := 1
		if len(f) >= 3 {
			n, err := strconv.Atoi(f[2])
			if err != nil {
				return fmt.Errorf("bad ospf process id %q", f[2])
			}
			id = n
		}
		if p.r.OSPF == nil {
			p.r.OSPF = &OSPFConfig{ProcessID: id, MaxPaths: 1}
		}
		p.ctx = ctxOSPF
		return nil
	case "rip":
		if p.r.RIP == nil {
			p.r.RIP = &RIPConfig{}
		}
		p.ctx = ctxRIP
		return nil
	case "bgp":
		if len(f) != 3 {
			return fmt.Errorf("router bgp needs an ASN")
		}
		asn, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return fmt.Errorf("bad ASN %q", f[2])
		}
		if p.r.BGP == nil {
			p.r.BGP = &BGPConfig{ASN: uint32(asn), MaxPaths: 1}
		}
		p.ctx = ctxBGP
		return nil
	}
	return fmt.Errorf("unsupported routing protocol %q", f[1])
}

func (p *parser) interfaceLine(f []string) error {
	i := p.curIf
	switch {
	case eq(f, "ip", "address"):
		if len(f) != 4 {
			return fmt.Errorf("ip address needs address and mask")
		}
		addr, err := network.ParseIP(f[2])
		if err != nil {
			return err
		}
		mask, err := network.ParseIP(f[3])
		if err != nil {
			return err
		}
		pre, err := network.PrefixFromMask(addr, mask)
		if err != nil {
			return err
		}
		i.Addr, i.Prefix = addr, pre
		return nil
	case eq(f, "ip", "access-group"):
		if len(f) != 4 || (f[3] != "in" && f[3] != "out") {
			return fmt.Errorf("ip access-group NAME in|out")
		}
		if f[3] == "in" {
			i.InACL = f[2]
		} else {
			i.OutACL = f[2]
		}
		return nil
	case eq(f, "ip", "ospf", "cost"):
		if len(f) != 4 {
			return fmt.Errorf("ip ospf cost needs a value")
		}
		n, err := strconv.Atoi(f[3])
		if err != nil || n < 1 || n > 65535 {
			return fmt.Errorf("bad ospf cost %q", f[3])
		}
		i.OSPFCost = n
		return nil
	case f[0] == "management":
		i.Management = true
		return nil
	case f[0] == "shutdown":
		i.Shutdown = true
		return nil
	case f[0] == "description":
		return nil
	}
	return fmt.Errorf("unknown interface directive %q", strings.Join(f, " "))
}

func (p *parser) ospfLine(f []string) error {
	o := p.r.OSPF
	switch {
	case f[0] == "network":
		// network A.B.C.D W.W.W.W area N
		if len(f) != 5 || f[3] != "area" {
			return fmt.Errorf("network A.B.C.D WILDCARD area N")
		}
		addr, err := network.ParseIP(f[1])
		if err != nil {
			return err
		}
		wc, err := network.ParseIP(f[2])
		if err != nil {
			return err
		}
		l, ok := network.WildcardLen(wc)
		if !ok {
			return fmt.Errorf("non-contiguous wildcard %v", wc)
		}
		o.Networks = append(o.Networks, network.Prefix{Addr: addr.Mask(l), Len: l})
		return nil
	case f[0] == "redistribute":
		rd, err := parseRedistribute(f)
		if err != nil {
			return err
		}
		o.Redistribute = append(o.Redistribute, rd)
		return nil
	case f[0] == "maximum-paths":
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 1 {
			return fmt.Errorf("bad maximum-paths")
		}
		o.MaxPaths = n
		return nil
	case f[0] == "distance":
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 1 || n > 255 {
			return fmt.Errorf("bad distance")
		}
		o.AdminDistance = n
		return nil
	}
	return fmt.Errorf("unknown ospf directive %q", strings.Join(f, " "))
}

func (p *parser) ripLine(f []string) error {
	r := p.r.RIP
	switch f[0] {
	case "network":
		// RIP uses classful "network A.B.C.D"; we accept CIDR instead.
		pre, err := network.ParsePrefix(f[1])
		if err != nil {
			return err
		}
		r.Networks = append(r.Networks, pre)
		return nil
	case "redistribute":
		rd, err := parseRedistribute(f)
		if err != nil {
			return err
		}
		r.Redistribute = append(r.Redistribute, rd)
		return nil
	}
	return fmt.Errorf("unknown rip directive %q", strings.Join(f, " "))
}

func parseRedistribute(f []string) (Redistribution, error) {
	if len(f) < 2 {
		return Redistribution{}, fmt.Errorf("redistribute needs a protocol")
	}
	var from Protocol
	switch f[1] {
	case "connected":
		from = Connected
	case "static":
		from = Static
	case "ospf":
		from = OSPF
	case "rip":
		from = RIP
	case "bgp":
		from = BGP
	default:
		return Redistribution{}, fmt.Errorf("cannot redistribute %q", f[1])
	}
	rd := Redistribution{From: from}
	for i := 2; i < len(f); i++ {
		switch f[i] {
		case "metric":
			if i+1 >= len(f) {
				return rd, fmt.Errorf("metric needs a value")
			}
			n, err := strconv.Atoi(f[i+1])
			if err != nil {
				return rd, fmt.Errorf("bad metric %q", f[i+1])
			}
			rd.Metric = n
			i++
		case "route-map":
			if i+1 >= len(f) {
				return rd, fmt.Errorf("route-map needs a name")
			}
			rd.RouteMap = f[i+1]
			i++
		default:
			return rd, fmt.Errorf("unknown redistribute option %q", f[i])
		}
	}
	return rd, nil
}

func (p *parser) bgpLine(f []string) error {
	b := p.r.BGP
	switch {
	case eq(f, "bgp", "router-id"):
		ip, err := network.ParseIP(f[2])
		if err != nil {
			return err
		}
		b.RouterID = ip
		return nil
	case eq(f, "bgp", "always-compare-med"):
		b.AlwaysCompareMED = true
		return nil
	case f[0] == "neighbor":
		return p.bgpNeighbor(f)
	case f[0] == "network":
		// network A.B.C.D mask M.M.M.M
		if len(f) == 4 && f[2] == "mask" {
			addr, err := network.ParseIP(f[1])
			if err != nil {
				return err
			}
			m, err := network.ParseIP(f[3])
			if err != nil {
				return err
			}
			pre, err := network.PrefixFromMask(addr, m)
			if err != nil {
				return err
			}
			b.Networks = append(b.Networks, pre)
			return nil
		}
		if len(f) == 2 {
			pre, err := network.ParsePrefix(f[1])
			if err != nil {
				return err
			}
			b.Networks = append(b.Networks, pre)
			return nil
		}
		return fmt.Errorf("network A.B.C.D mask M.M.M.M")
	case f[0] == "redistribute":
		rd, err := parseRedistribute(f)
		if err != nil {
			return err
		}
		b.Redistribute = append(b.Redistribute, rd)
		return nil
	case f[0] == "aggregate-address":
		// aggregate-address A.B.C.D M.M.M.M [summary-only]
		if len(f) < 3 {
			return fmt.Errorf("aggregate-address A.B.C.D M.M.M.M [summary-only]")
		}
		addr, err := network.ParseIP(f[1])
		if err != nil {
			return err
		}
		m, err := network.ParseIP(f[2])
		if err != nil {
			return err
		}
		pre, err := network.PrefixFromMask(addr, m)
		if err != nil {
			return err
		}
		agg := Aggregate{Prefix: pre}
		if len(f) >= 4 {
			if f[3] != "summary-only" {
				return fmt.Errorf("unknown aggregate option %q", f[3])
			}
			agg.SummaryOnly = true
		}
		b.Aggregates = append(b.Aggregates, agg)
		return nil
	case f[0] == "maximum-paths":
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 1 {
			return fmt.Errorf("bad maximum-paths")
		}
		b.MaxPaths = n
		return nil
	case f[0] == "distance":
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 1 || n > 255 {
			return fmt.Errorf("bad distance")
		}
		b.AdminDistance = n
		return nil
	}
	return fmt.Errorf("unknown bgp directive %q", strings.Join(f, " "))
}

func (p *parser) bgpNeighbor(f []string) error {
	if len(f) < 3 {
		return fmt.Errorf("neighbor needs an address and a directive")
	}
	addr, err := network.ParseIP(f[1])
	if err != nil {
		return err
	}
	b := p.r.BGP
	var n *BGPNeighbor
	for _, x := range b.Neighbors {
		if x.Addr == addr {
			n = x
			break
		}
	}
	switch f[2] {
	case "remote-as":
		if len(f) != 4 {
			return fmt.Errorf("remote-as needs an ASN")
		}
		asn, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return fmt.Errorf("bad ASN %q", f[3])
		}
		if n != nil {
			if n.RemoteAS != uint32(asn) {
				return fmt.Errorf("neighbor %v redeclared with remote-as %d (was %d)", addr, asn, n.RemoteAS)
			}
			return nil
		}
		b.Neighbors = append(b.Neighbors, &BGPNeighbor{Addr: addr, RemoteAS: uint32(asn)})
		return nil
	}
	if n == nil {
		return fmt.Errorf("neighbor %v has no remote-as yet", addr)
	}
	switch f[2] {
	case "route-map":
		if len(f) != 5 || (f[4] != "in" && f[4] != "out") {
			return fmt.Errorf("neighbor A.B.C.D route-map NAME in|out")
		}
		if f[4] == "in" {
			n.InMap = f[3]
		} else {
			n.OutMap = f[3]
		}
		return nil
	case "route-reflector-client":
		n.RouteReflectorClient = true
		return nil
	case "description":
		n.Description = strings.Join(f[3:], " ")
		return nil
	}
	return fmt.Errorf("unknown neighbor directive %q", f[2])
}

func (p *parser) ipDirective(f []string) error {
	if len(f) < 2 {
		return fmt.Errorf("incomplete ip directive")
	}
	switch f[1] {
	case "route":
		return p.staticRoute(f)
	case "prefix-list":
		return p.prefixList(f)
	case "community-list":
		return p.communityList(f)
	case "access-list":
		return p.namedACL(f)
	}
	return fmt.Errorf("unknown ip directive %q", f[1])
}

func (p *parser) staticRoute(f []string) error {
	// ip route A.B.C.D M.M.M.M (NEXTHOP | null0 | IFACE) [distance]
	if len(f) < 5 {
		return fmt.Errorf("ip route PREFIX MASK NEXTHOP")
	}
	addr, err := network.ParseIP(f[2])
	if err != nil {
		return err
	}
	m, err := network.ParseIP(f[3])
	if err != nil {
		return err
	}
	pre, err := network.PrefixFromMask(addr, m)
	if err != nil {
		return err
	}
	s := &StaticRoute{Prefix: pre}
	if f[4] == "null0" || f[4] == "Null0" {
		s.Drop = true
	} else if nh, err := network.ParseIP(f[4]); err == nil {
		s.NextHop = nh
	} else {
		s.Interface = f[4]
	}
	if len(f) >= 6 {
		d, err := strconv.Atoi(f[5])
		if err != nil || d < 1 || d > 255 {
			return fmt.Errorf("bad static distance %q", f[5])
		}
		s.AdminDistance = d
	}
	p.r.Statics = append(p.r.Statics, s)
	return nil
}

func (p *parser) prefixList(f []string) error {
	// ip prefix-list NAME [seq N] permit|deny PREFIX [ge N] [le N]
	if len(f) < 4 {
		return fmt.Errorf("incomplete prefix-list")
	}
	name := f[2]
	rest := f[3:]
	e := PrefixListEntry{}
	if rest[0] == "seq" {
		if len(rest) < 3 {
			return fmt.Errorf("seq needs a number")
		}
		n, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad seq %q", rest[1])
		}
		e.Seq = n
		rest = rest[2:]
	}
	switch rest[0] {
	case "permit":
		e.Action = Permit
	case "deny":
		e.Action = Deny
	default:
		return fmt.Errorf("prefix-list action must be permit or deny")
	}
	if len(rest) < 2 {
		return fmt.Errorf("prefix-list needs a prefix")
	}
	pre, err := network.ParsePrefix(rest[1])
	if err != nil {
		return err
	}
	e.Prefix = pre
	for i := 2; i < len(rest); i += 2 {
		if i+1 >= len(rest) {
			return fmt.Errorf("dangling %q", rest[i])
		}
		n, err := strconv.Atoi(rest[i+1])
		if err != nil || n < 0 || n > 32 {
			return fmt.Errorf("bad prefix length bound %q", rest[i+1])
		}
		switch rest[i] {
		case "ge":
			e.Ge = n
		case "le":
			e.Le = n
		default:
			return fmt.Errorf("unknown prefix-list option %q", rest[i])
		}
	}
	if e.Ge != 0 && e.Ge < e.Prefix.Len {
		return fmt.Errorf("ge %d below prefix length %d", e.Ge, e.Prefix.Len)
	}
	if e.Le != 0 && e.Ge != 0 && e.Le < e.Ge {
		return fmt.Errorf("le %d below ge %d", e.Le, e.Ge)
	}
	l := p.r.PrefixLists[name]
	if l == nil {
		l = &PrefixList{Name: name}
		p.r.PrefixLists[name] = l
	}
	if e.Seq == 0 {
		e.Seq = 5 * (len(l.Entries) + 1)
	}
	l.Entries = append(l.Entries, e)
	return nil
}

func (p *parser) communityList(f []string) error {
	// ip community-list NAME permit VALUE...
	if len(f) < 5 || f[3] != "permit" {
		return fmt.Errorf("ip community-list NAME permit VALUES")
	}
	name := f[2]
	l := p.r.CommunityLists[name]
	if l == nil {
		l = &CommunityList{Name: name}
		p.r.CommunityLists[name] = l
	}
	l.Values = append(l.Values, f[4:]...)
	return nil
}

func (p *parser) routeMapHeader(f []string) error {
	// route-map NAME permit|deny SEQ
	if len(f) != 4 {
		return fmt.Errorf("route-map NAME permit|deny SEQ")
	}
	name := f[1]
	var act Action
	switch f[2] {
	case "permit":
		act = Permit
	case "deny":
		act = Deny
	default:
		return fmt.Errorf("route-map action must be permit or deny")
	}
	seq, err := strconv.Atoi(f[3])
	if err != nil {
		return fmt.Errorf("bad route-map sequence %q", f[3])
	}
	m := p.r.RouteMaps[name]
	if m == nil {
		m = &RouteMap{Name: name}
		p.r.RouteMaps[name] = m
	}
	cl := &RouteMapClause{Seq: seq, Action: act}
	m.Clauses = append(m.Clauses, cl)
	p.curMap = cl
	p.curName = name
	p.ctx = ctxRouteMap
	return nil
}

func (p *parser) routeMapLine(f []string) error {
	cl := p.curMap
	switch {
	case eq(f, "match", "ip", "address", "prefix-list"):
		if len(f) != 5 {
			return fmt.Errorf("match ip address prefix-list NAME")
		}
		cl.MatchPrefixList = f[4]
		return nil
	case eq(f, "match", "community"):
		if len(f) != 3 {
			return fmt.Errorf("match community NAME")
		}
		cl.MatchCommunity = f[2]
		return nil
	case eq(f, "set", "local-preference"):
		n, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil || n == 0 {
			return fmt.Errorf("bad local-preference %q", f[2])
		}
		cl.SetLocalPref = uint32(n)
		return nil
	case eq(f, "set", "metric"):
		n, err := strconv.Atoi(f[2])
		if err != nil || n < 0 {
			return fmt.Errorf("bad metric %q", f[2])
		}
		cl.SetMetric, cl.HasSetMetric = n, true
		return nil
	case eq(f, "set", "med"):
		n, err := strconv.Atoi(f[2])
		if err != nil || n < 0 {
			return fmt.Errorf("bad med %q", f[2])
		}
		cl.SetMED, cl.HasSetMED = n, true
		return nil
	case eq(f, "set", "community"):
		vals := f[2:]
		if len(vals) > 0 && vals[len(vals)-1] == "additive" {
			vals = vals[:len(vals)-1]
		}
		if len(vals) == 0 {
			return fmt.Errorf("set community needs values")
		}
		cl.SetCommunity = append(cl.SetCommunity, vals...)
		return nil
	case eq(f, "set", "comm-list") && len(f) == 4 && f[3] == "delete":
		cl.DelCommunity = append(cl.DelCommunity, f[2])
		return nil
	case eq(f, "set", "ip", "next-hop"):
		ip, err := network.ParseIP(f[3])
		if err != nil {
			return err
		}
		cl.SetNextHop, cl.HasSetNextHop = ip, true
		return nil
	case eq(f, "set", "as-path", "prepend"):
		// Count the prepended ASNs.
		cl.SetPrepend = len(f) - 3
		if cl.SetPrepend < 1 {
			return fmt.Errorf("as-path prepend needs ASNs")
		}
		return nil
	}
	return fmt.Errorf("unknown route-map directive %q (map %s)", strings.Join(f, " "), p.curName)
}

// numberedACL parses "access-list NAME permit|deny ip SRC [WILD] DST [WILD]".
func (p *parser) numberedACL(f []string) error {
	if len(f) < 4 {
		return fmt.Errorf("incomplete access-list")
	}
	name := f[1]
	var act Action
	switch f[2] {
	case "permit":
		act = Permit
	case "deny":
		act = Deny
	default:
		return fmt.Errorf("access-list action must be permit or deny")
	}
	e := AnyACLEntry(act)
	rest := f[3:]
	// Protocol.
	switch rest[0] {
	case "ip":
		e.Protocol = -1
	case "tcp":
		e.Protocol = 6
	case "udp":
		e.Protocol = 17
	case "icmp":
		e.Protocol = 1
	default:
		return fmt.Errorf("unknown ACL protocol %q", rest[0])
	}
	rest = rest[1:]
	src, rest, err := parseACLAddr(rest)
	if err != nil {
		return err
	}
	e.SrcPrefix = src
	var ports [2]int
	ports, rest, err = parseACLPorts(rest)
	if err != nil {
		return err
	}
	e.SrcPortLo, e.SrcPortHi = ports[0], ports[1]
	dst, rest, err := parseACLAddr(rest)
	if err != nil {
		return err
	}
	e.DstPrefix = dst
	ports, rest, err = parseACLPorts(rest)
	if err != nil {
		return err
	}
	e.DstPortLo, e.DstPortHi = ports[0], ports[1]
	if len(rest) != 0 {
		return fmt.Errorf("trailing ACL tokens %v", rest)
	}
	a := p.r.ACLs[name]
	if a == nil {
		a = &ACL{Name: name}
		p.r.ACLs[name] = a
	}
	a.Entries = append(a.Entries, e)
	return nil
}

// namedACL parses "ip access-list ..." as an alias of access-list.
func (p *parser) namedACL(f []string) error {
	return p.numberedACL(f[1:])
}

func parseACLAddr(f []string) (network.Prefix, []string, error) {
	if len(f) == 0 {
		return network.Prefix{}, nil, fmt.Errorf("missing ACL address")
	}
	if f[0] == "any" {
		return network.Prefix{}, f[1:], nil
	}
	if f[0] == "host" {
		if len(f) < 2 {
			return network.Prefix{}, nil, fmt.Errorf("host needs an address")
		}
		ip, err := network.ParseIP(f[1])
		if err != nil {
			return network.Prefix{}, nil, err
		}
		return network.Prefix{Addr: ip, Len: 32}, f[2:], nil
	}
	ip, err := network.ParseIP(f[0])
	if err != nil {
		return network.Prefix{}, nil, err
	}
	if len(f) < 2 {
		return network.Prefix{}, nil, fmt.Errorf("address %v needs a wildcard", ip)
	}
	wc, err := network.ParseIP(f[1])
	if err != nil {
		return network.Prefix{}, nil, err
	}
	l, ok := network.WildcardLen(wc)
	if !ok {
		return network.Prefix{}, nil, fmt.Errorf("non-contiguous wildcard %v", wc)
	}
	return network.Prefix{Addr: ip.Mask(l), Len: l}, f[2:], nil
}

func parseACLPorts(f []string) ([2]int, []string, error) {
	ports := [2]int{0, 65535}
	if len(f) == 0 {
		return ports, f, nil
	}
	switch f[0] {
	case "eq":
		if len(f) < 2 {
			return ports, nil, fmt.Errorf("eq needs a port")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 0 || n > 65535 {
			return ports, nil, fmt.Errorf("bad port %q", f[1])
		}
		return [2]int{n, n}, f[2:], nil
	case "range":
		if len(f) < 3 {
			return ports, nil, fmt.Errorf("range needs two ports")
		}
		lo, err1 := strconv.Atoi(f[1])
		hi, err2 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || lo < 0 || hi > 65535 || lo > hi {
			return ports, nil, fmt.Errorf("bad port range")
		}
		return [2]int{lo, hi}, f[3:], nil
	}
	return ports, f, nil
}

func eq(f []string, prefix ...string) bool {
	if len(f) < len(prefix) {
		return false
	}
	for i, p := range prefix {
		if f[i] != p {
			return false
		}
	}
	return true
}
