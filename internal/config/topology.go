package config

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// BuildTopology infers the layer-3 topology from a set of router
// configurations, the way Batfish does: two internal interfaces on the
// same subnet form a link; a BGP neighbor address covered by an interface
// subnet but not owned by any internal router is an external peer.
func BuildTopology(routers []*Router) (*network.Topology, error) {
	names := make([]string, len(routers))
	byName := make(map[string]*Router, len(routers))
	for i, r := range routers {
		names[i] = r.Name
		if byName[r.Name] != nil {
			return nil, fmt.Errorf("config: duplicate router %q", r.Name)
		}
		byName[r.Name] = r
	}
	t := network.NewTopology(names)

	// Index every interface address.
	type ifaceRef struct {
		r *Router
		i *Interface
	}
	owned := map[network.IP]ifaceRef{}
	var refs []ifaceRef
	for _, r := range routers {
		for _, i := range r.Interfaces {
			if i.Shutdown {
				continue
			}
			if prev, dup := owned[i.Addr]; dup {
				return nil, fmt.Errorf("config: address %v on both %s/%s and %s/%s",
					i.Addr, prev.r.Name, prev.i.Name, r.Name, i.Name)
			}
			owned[i.Addr] = ifaceRef{r, i}
			refs = append(refs, ifaceRef{r, i})
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].r.Name != refs[b].r.Name {
			return refs[a].r.Name < refs[b].r.Name
		}
		return refs[a].i.Name < refs[b].i.Name
	})

	// Internal links: pairs of interfaces sharing a subnet.
	linked := map[[2]string]bool{}
	for ai, a := range refs {
		for _, b := range refs[ai+1:] {
			if a.r == b.r {
				continue
			}
			if a.i.Prefix != b.i.Prefix || a.i.Prefix.Len == 32 {
				continue
			}
			k := [2]string{a.r.Name + "/" + a.i.Name, b.r.Name + "/" + b.i.Name}
			if linked[k] {
				continue
			}
			linked[k] = true
			t.AddLink(a.r.Name, a.i.Name, b.r.Name, b.i.Name, a.i.Prefix, a.i.Addr, b.i.Addr)
		}
	}

	// External peers: BGP neighbors whose address no internal interface
	// owns. The neighbor is reachable through the interface whose subnet
	// covers its address.
	for _, r := range routers {
		if r.BGP == nil {
			continue
		}
		extN := 0
		for _, n := range r.BGP.Neighbors {
			if _, internal := owned[n.Addr]; internal {
				continue
			}
			var via *Interface
			for _, i := range r.Interfaces {
				if !i.Shutdown && i.Prefix.Len < 32 && i.Prefix.Contains(n.Addr) {
					via = i
					break
				}
			}
			if via == nil {
				return nil, fmt.Errorf("config: %s: BGP neighbor %v is on no connected subnet", r.Name, n.Addr)
			}
			extN++
			name := n.Description
			if name == "" {
				name = fmt.Sprintf("%s-ext%d", r.Name, extN)
			}
			t.AddExternal(r.Name, via.Name, name, n.Addr, via.Addr, n.RemoteAS)
		}
	}

	return t, nil
}

// FindBGPNeighbor returns the neighbor stanza for a peer address, or nil.
func FindBGPNeighbor(r *Router, addr network.IP) *BGPNeighbor {
	if r.BGP == nil {
		return nil
	}
	for _, n := range r.BGP.Neighbors {
		if n.Addr == addr {
			return n
		}
	}
	return nil
}

// OwnsAddress reports whether any interface of r owns the address.
func OwnsAddress(r *Router, addr network.IP) bool {
	for _, i := range r.Interfaces {
		if !i.Shutdown && i.Addr == addr {
			return true
		}
	}
	return false
}
