package config

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/network"
)

// Print renders the router configuration back to the text dialect accepted
// by Parse. Print∘Parse is the identity up to formatting, and the emitted
// text is what the Figure 7 benchmarks count as "lines of configuration".
func Print(r *Router) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\n!\n", r.Name)

	for _, i := range r.Interfaces {
		fmt.Fprintf(&b, "interface %s\n", i.Name)
		fmt.Fprintf(&b, " ip address %v %v\n", i.Addr, network.MaskOf(i.Prefix.Len))
		if i.OSPFCost > 1 {
			fmt.Fprintf(&b, " ip ospf cost %d\n", i.OSPFCost)
		}
		if i.InACL != "" {
			fmt.Fprintf(&b, " ip access-group %s in\n", i.InACL)
		}
		if i.OutACL != "" {
			fmt.Fprintf(&b, " ip access-group %s out\n", i.OutACL)
		}
		if i.Management {
			b.WriteString(" management\n")
		}
		if i.Shutdown {
			b.WriteString(" shutdown\n")
		}
		b.WriteString("!\n")
	}

	if o := r.OSPF; o != nil {
		fmt.Fprintf(&b, "router ospf %d\n", o.ProcessID)
		for _, n := range o.Networks {
			fmt.Fprintf(&b, " network %v %v area 0\n", n.Addr, network.IP(^uint32(network.MaskOf(n.Len))))
		}
		for _, rd := range o.Redistribute {
			printRedistribute(&b, rd)
		}
		if o.MaxPaths > 1 {
			fmt.Fprintf(&b, " maximum-paths %d\n", o.MaxPaths)
		}
		if o.AdminDistance != 0 {
			fmt.Fprintf(&b, " distance %d\n", o.AdminDistance)
		}
		b.WriteString("!\n")
	}

	if rp := r.RIP; rp != nil {
		b.WriteString("router rip\n")
		for _, n := range rp.Networks {
			fmt.Fprintf(&b, " network %v\n", n)
		}
		for _, rd := range rp.Redistribute {
			printRedistribute(&b, rd)
		}
		b.WriteString("!\n")
	}

	if g := r.BGP; g != nil {
		fmt.Fprintf(&b, "router bgp %d\n", g.ASN)
		if g.RouterID != 0 {
			fmt.Fprintf(&b, " bgp router-id %v\n", g.RouterID)
		}
		if g.AlwaysCompareMED {
			b.WriteString(" bgp always-compare-med\n")
		}
		for _, n := range g.Neighbors {
			fmt.Fprintf(&b, " neighbor %v remote-as %d\n", n.Addr, n.RemoteAS)
			if n.Description != "" {
				fmt.Fprintf(&b, " neighbor %v description %s\n", n.Addr, n.Description)
			}
			if n.InMap != "" {
				fmt.Fprintf(&b, " neighbor %v route-map %s in\n", n.Addr, n.InMap)
			}
			if n.OutMap != "" {
				fmt.Fprintf(&b, " neighbor %v route-map %s out\n", n.Addr, n.OutMap)
			}
			if n.RouteReflectorClient {
				fmt.Fprintf(&b, " neighbor %v route-reflector-client\n", n.Addr)
			}
		}
		for _, n := range g.Networks {
			fmt.Fprintf(&b, " network %v mask %v\n", n.Addr, network.MaskOf(n.Len))
		}
		for _, rd := range g.Redistribute {
			printRedistribute(&b, rd)
		}
		for _, agg := range g.Aggregates {
			fmt.Fprintf(&b, " aggregate-address %v %v", agg.Prefix.Addr, network.MaskOf(agg.Prefix.Len))
			if agg.SummaryOnly {
				b.WriteString(" summary-only")
			}
			b.WriteString("\n")
		}
		if g.MaxPaths > 1 {
			fmt.Fprintf(&b, " maximum-paths %d\n", g.MaxPaths)
		}
		if g.AdminDistance != 0 {
			fmt.Fprintf(&b, " distance %d\n", g.AdminDistance)
		}
		b.WriteString("!\n")
	}

	for _, s := range r.Statics {
		target := s.Interface
		if s.Drop {
			target = "null0"
		} else if target == "" {
			target = s.NextHop.String()
		}
		fmt.Fprintf(&b, "ip route %v %v %s", s.Prefix.Addr, network.MaskOf(s.Prefix.Len), target)
		if s.AdminDistance != 0 {
			fmt.Fprintf(&b, " %d", s.AdminDistance)
		}
		b.WriteString("\n")
	}
	if len(r.Statics) > 0 {
		b.WriteString("!\n")
	}

	for _, name := range sortedKeys(r.PrefixLists) {
		for _, e := range r.PrefixLists[name].Entries {
			fmt.Fprintf(&b, "ip prefix-list %s seq %d %v %v", name, e.Seq, e.Action, e.Prefix)
			if e.Ge != 0 {
				fmt.Fprintf(&b, " ge %d", e.Ge)
			}
			if e.Le != 0 {
				fmt.Fprintf(&b, " le %d", e.Le)
			}
			b.WriteString("\n")
		}
		b.WriteString("!\n")
	}

	for _, name := range sortedKeys(r.CommunityLists) {
		l := r.CommunityLists[name]
		fmt.Fprintf(&b, "ip community-list %s permit %s\n!\n", name, strings.Join(l.Values, " "))
	}

	for _, name := range sortedKeys(r.RouteMaps) {
		for _, cl := range r.RouteMaps[name].Clauses {
			fmt.Fprintf(&b, "route-map %s %v %d\n", name, cl.Action, cl.Seq)
			if cl.MatchPrefixList != "" {
				fmt.Fprintf(&b, " match ip address prefix-list %s\n", cl.MatchPrefixList)
			}
			if cl.MatchCommunity != "" {
				fmt.Fprintf(&b, " match community %s\n", cl.MatchCommunity)
			}
			if cl.SetLocalPref != 0 {
				fmt.Fprintf(&b, " set local-preference %d\n", cl.SetLocalPref)
			}
			if cl.HasSetMetric {
				fmt.Fprintf(&b, " set metric %d\n", cl.SetMetric)
			}
			if cl.HasSetMED {
				fmt.Fprintf(&b, " set med %d\n", cl.SetMED)
			}
			if len(cl.SetCommunity) > 0 {
				fmt.Fprintf(&b, " set community %s additive\n", strings.Join(cl.SetCommunity, " "))
			}
			for _, d := range cl.DelCommunity {
				fmt.Fprintf(&b, " set comm-list %s delete\n", d)
			}
			if cl.HasSetNextHop {
				fmt.Fprintf(&b, " set ip next-hop %v\n", cl.SetNextHop)
			}
			if cl.SetPrepend > 0 {
				b.WriteString(" set as-path prepend")
				for i := 0; i < cl.SetPrepend; i++ {
					b.WriteString(" 65000")
				}
				b.WriteString("\n")
			}
			b.WriteString("!\n")
		}
	}

	for _, name := range sortedKeys(r.ACLs) {
		for _, e := range r.ACLs[name].Entries {
			fmt.Fprintf(&b, "access-list %s %v %s %s%s %s%s\n", name, e.Action,
				aclProto(e.Protocol),
				aclAddr(e.SrcPrefix), aclPorts(e.SrcPortLo, e.SrcPortHi),
				aclAddr(e.DstPrefix), aclPorts(e.DstPortLo, e.DstPortHi))
		}
		b.WriteString("!\n")
	}

	return b.String()
}

// Lines counts the configuration lines of a router, the x-axis measure of
// Figure 7.
func Lines(r *Router) int {
	n := 0
	for _, l := range strings.Split(Print(r), "\n") {
		if s := strings.TrimSpace(l); s != "" && s != "!" {
			n++
		}
	}
	return n
}

// TotalLines sums Lines over a network's routers.
func TotalLines(routers []*Router) int {
	n := 0
	for _, r := range routers {
		n += Lines(r)
	}
	return n
}

func printRedistribute(b *strings.Builder, rd Redistribution) {
	fmt.Fprintf(b, " redistribute %v", rd.From)
	if rd.Metric != 0 {
		fmt.Fprintf(b, " metric %d", rd.Metric)
	}
	if rd.RouteMap != "" {
		fmt.Fprintf(b, " route-map %s", rd.RouteMap)
	}
	b.WriteString("\n")
}

func aclProto(p int) string {
	switch p {
	case 6:
		return "tcp"
	case 17:
		return "udp"
	case 1:
		return "icmp"
	}
	return "ip"
}

func aclAddr(p network.Prefix) string {
	if p.Len == 0 {
		return "any"
	}
	if p.Len == 32 {
		return "host " + p.Addr.String()
	}
	return fmt.Sprintf("%v %v", p.Addr, network.IP(^uint32(network.MaskOf(p.Len))))
}

func aclPorts(lo, hi int) string {
	switch {
	case lo == 0 && hi == 65535:
		return ""
	case lo == hi:
		return fmt.Sprintf(" eq %d", lo)
	default:
		return fmt.Sprintf(" range %d %d", lo, hi)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
