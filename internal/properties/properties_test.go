package properties

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/simulator"
	"repro/internal/smt"
	"repro/internal/testnets"
)

func encode(t *testing.T, net *testnets.Net) *core.Model {
	t.Helper()
	m, err := core.Encode(net.Graph, core.DefaultOptions())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return m
}

func check(t *testing.T, m *core.Model, p *smt.Term, assumptions ...*smt.Term) *core.Result {
	t.Helper()
	res, err := m.Check(p, assumptions...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return res
}

func pfx(s string) network.Prefix { return network.MustParsePrefix(s) }
func ip(s string) network.IP      { return network.MustParseIP(s) }

func TestManagementHijackFoundAndReplays(t *testing.T) {
	net := testnets.Hijackable(false)
	m := encode(t, net)
	res := check(t, m, ManagementReachable(m), m.NoFailures())
	if res.Verified {
		t.Fatal("hijack not found")
	}
	cex := res.Counterexample
	if cex.Packet.DstIP != ip("192.168.50.1") {
		t.Fatalf("counterexample dst %v", cex.Packet.DstIP)
	}
	ann := cex.Env.Anns["N"]
	if ann == nil {
		t.Fatalf("counterexample has no hijack announcement: %v", cex.Env)
	}
	// Replay in the simulator: R2 must fail to deliver to the management
	// interface under the decoded environment.
	sim := simulator.New(net.Graph)
	simres, err := sim.Run(cex.Packet.DstIP, cex.Env)
	if err != nil {
		t.Fatal(err)
	}
	w := sim.Walk(simres, "R2", cex.Packet)
	if w.Outcomes[simulator.Delivered] {
		t.Fatalf("counterexample does not replay: %v under %v", w, cex.Env)
	}
}

func TestManagementHijackFixedByFilter(t *testing.T) {
	net := testnets.Hijackable(true)
	m := encode(t, net)
	res := check(t, m, ManagementReachable(m), m.NoFailures())
	if !res.Verified {
		t.Fatalf("filtered network still hijackable: %v", res.Counterexample)
	}
}

func TestReachabilityAndFaultTolerance(t *testing.T) {
	net := testnets.OSPFChain(4)
	m := encode(t, net)
	stub := pfx("10.100.4.0/24")
	p := Reachable(m, "R1", stub)

	if res := check(t, m, p, m.NoFailures()); !res.Verified {
		t.Fatalf("chain reachability failed: %v", res.Counterexample)
	}
	// A chain is not 1-fault tolerant.
	if res := check(t, m, p, m.AtMostFailures(1)); res.Verified {
		t.Fatal("chain should not tolerate failures")
	} else if res.Counterexample.Env.NumFailed() != 1 {
		t.Fatalf("expected a single failure, got %v", res.Counterexample.Env)
	}
}

func TestTriangleFaultTolerance(t *testing.T) {
	net := testnets.EBGPTriangle()
	m := encode(t, net)
	stub := pfx("10.100.3.0/24")
	p := Reachable(m, "R1", stub)
	if res := check(t, m, p, m.AtMostFailures(1)); !res.Verified {
		t.Fatalf("triangle should tolerate one failure: %v\nfwd: %v",
			res.Counterexample, m.DecodeForwarding(m.Main, res.Counterexample.Assignment))
	}
	if res := check(t, m, p, m.AtMostFailures(2)); res.Verified {
		t.Fatal("two failures must be able to cut R1 off")
	}
}

func TestIsolationOfUnknownPrefix(t *testing.T) {
	// The OSPF chain has no external peers, so an unknown prefix can never
	// become reachable in any environment.
	net := testnets.OSPFChain(3)
	m := encode(t, net)
	if res := check(t, m, Isolated(m, "R1", pfx("203.0.113.0/24"))); !res.Verified {
		t.Fatalf("unknown prefix reachable: %v", res.Counterexample)
	}
	// And the stub is NOT isolated.
	if res := check(t, m, Isolated(m, "R1", pfx("10.100.3.0/24")), m.NoFailures()); res.Verified {
		t.Fatal("stub wrongly isolated")
	}
}

func TestBoundedAndEqualLength(t *testing.T) {
	net := testnets.OSPFChain(4)
	m := encode(t, net)
	stub := pfx("10.100.4.0/24")
	if res := check(t, m, BoundedLength(m, "R1", stub, 3), m.NoFailures()); !res.Verified {
		t.Fatalf("3 hops should suffice: %v", res.Counterexample)
	}
	if res := check(t, m, BoundedLength(m, "R1", stub, 2), m.NoFailures()); res.Verified {
		t.Fatal("2 hops cannot suffice")
	}
	// R2 and R2 trivially equal; R1 vs R3 differ.
	m2 := encode(t, net)
	if res := check(t, m2, EqualLengths(m2, []string{"R1", "R3"}, stub), m2.NoFailures()); res.Verified {
		t.Fatal("R1 and R3 are at different distances")
	}
}

func TestWaypointing(t *testing.T) {
	net := testnets.OSPFChain(4)
	m := encode(t, net)
	stub := pfx("10.100.4.0/24")
	// All R1 traffic to the stub must pass R3 (it is on the only path).
	if res := check(t, m, Waypointed(m, "R1", "R3", stub)); !res.Verified {
		t.Fatalf("chain traffic avoids R3?! %v", res.Counterexample)
	}
	// In the triangle, R2 can be bypassed.
	tri := testnets.EBGPTriangle()
	mt := encode(t, tri)
	if res := check(t, mt, Waypointed(mt, "R1", "R2", pfx("10.100.3.0/24")), mt.NoFailures()); res.Verified {
		t.Fatal("triangle traffic need not pass R2")
	}
}

func TestMultipathConsistency(t *testing.T) {
	net := testnets.ACLSquare()
	m := encode(t, net)
	res := check(t, m, MultipathConsistent(m), m.NoFailures())
	if res.Verified {
		t.Fatal("ACLSquare is the canonical multipath-consistency violation")
	}
	if !pfx("10.50.0.0/24").Contains(res.Counterexample.Packet.DstIP) {
		t.Fatalf("violation should involve the blocked subnet, got %v", res.Counterexample.Packet.DstIP)
	}

	clean := testnets.OSPFChain(3)
	mc := encode(t, clean)
	if res := check(t, mc, MultipathConsistent(mc)); !res.Verified {
		t.Fatalf("chain should be consistent: %v", res.Counterexample)
	}
}

func TestNoBlackholesCatchesACLDrop(t *testing.T) {
	net := testnets.ACLSquare()
	m := encode(t, net)
	res := check(t, m, NoBlackholes(m), m.NoFailures())
	if res.Verified {
		t.Fatal("R3's ACL drop is a blackhole")
	}
	clean := testnets.OSPFChain(3)
	mc := encode(t, clean)
	if res := check(t, mc, NoBlackholes(mc)); !res.Verified {
		t.Fatalf("chain has no blackholes: %v", res.Counterexample)
	}
}

func TestDropsAtEdgeOnly(t *testing.T) {
	net := testnets.ACLSquare()
	m := encode(t, net)
	// Treat R1 and R5 as edge: the drop at interior R3 violates.
	isEdge := func(r string) bool { return r == "R1" || r == "R5" }
	if res := check(t, m, DropsAtEdgeOnly(m, isEdge), m.NoFailures()); res.Verified {
		t.Fatal("interior ACL drop undetected")
	}
	// Treating R3 as edge accepts the drop.
	isEdge2 := func(r string) bool { return r != "R2" }
	if res := check(t, m, DropsAtEdgeOnly(m, isEdge2)); !res.Verified {
		t.Fatalf("unexpected interior drop: %v", res.Counterexample)
	}
}

const staticLoopR1 = `
hostname R1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
!
ip route 172.20.0.0 255.255.0.0 10.0.12.2
!
`

const staticLoopR2 = `
hostname R2
!
interface Eth0
 ip address 10.0.12.2 255.255.255.252
!
ip route 172.20.0.0 255.255.0.0 10.0.12.1
!
`

func TestForwardingLoops(t *testing.T) {
	loopy := testnets.MustBuild(staticLoopR1, staticLoopR2)
	m := encode(t, loopy)
	res := check(t, m, NoForwardingLoops(m, nil))
	if res.Verified {
		t.Fatal("static route loop undetected")
	}
	if !pfx("172.20.0.0/16").Contains(res.Counterexample.Packet.DstIP) {
		t.Fatalf("loop counterexample dst %v", res.Counterexample.Packet.DstIP)
	}
	clean := testnets.StaticNull()
	mc := encode(t, clean)
	if res := check(t, mc, NoForwardingLoops(mc, nil)); !res.Verified {
		t.Fatalf("no loop expected: %v", res.Counterexample)
	}
	if cands := LoopCandidates(m); len(cands) != 2 {
		t.Fatalf("loop candidates %v", cands)
	}
}

func TestNeighborPreferences(t *testing.T) {
	net := testnets.Figure2()
	m := encode(t, net)
	n1Silent := m.Ctx.Not(m.Main.Env["N1"].Valid)
	// Query a destination class away from the peering infrastructure, as
	// an operator would; otherwise connected /30s and longest-prefix
	// match legitimately override the egress preference.
	extDst := DstIn(m, pfx("8.0.0.0/8"))
	// Longest-prefix match lets a more specific announcement from a less
	// preferred neighbor take the traffic, so the preference property is
	// quantified over same-length announcements (the paper's records
	// compete for one destination prefix).
	samePlen := m.Ctx.Eq(m.Main.Env["N2"].PrefixLen, m.Main.Env["N3"].PrefixLen)
	// R2 prefers N2 (local-pref 110) over N3 (default 100).
	good := PrefersNeighbors(m, "R2", []string{"N2", "N3"})
	if res := check(t, m, good, m.NoFailures(), n1Silent, extDst, samePlen); !res.Verified {
		t.Fatalf("preference N2>N3 should hold: %v", res.Counterexample)
	}
	bad := PrefersNeighbors(m, "R2", []string{"N3", "N2"})
	if res := check(t, m, bad, m.NoFailures(), n1Silent, extDst, samePlen); res.Verified {
		t.Fatal("reversed preference should fail")
	}
	// Without the same-length restriction the property is genuinely
	// violated by a more-specific hijack.
	if res := check(t, m, good, m.NoFailures(), n1Silent, extDst); res.Verified {
		t.Fatal("longest-prefix hijack should break naive preference")
	}
}

func TestNoLeak(t *testing.T) {
	net := testnets.Figure2()
	m := encode(t, net)
	// The /30 link subnets and /24 loopbacks leak beyond /16.
	if res := check(t, m, NoLeak(m, nil, 16), m.NoFailures()); res.Verified {
		t.Fatal("specifics should leak in Figure 2")
	}
	if res := check(t, m, NoLeak(m, nil, 32)); !res.Verified {
		t.Fatalf("nothing can be longer than /32: %v", res.Counterexample)
	}
}

// cleanDiamond is ACLSquare without the ACL: a true ECMP diamond.
func cleanDiamond() *testnets.Net {
	net := testnets.ACLSquare()
	r3 := net.Routers["R3"]
	r3.Iface("Eth1").OutACL = ""
	return net
}

func TestLoadBalanced(t *testing.T) {
	clean := cleanDiamond()
	m := encode(t, clean)
	dst := pfx("10.50.0.0/24")
	p := LoadBalanced(m, []string{"R1"}, "R2", "R3", 1000, 0)
	if res := check(t, m, p, m.NoFailures(), DstIn(m, dst)); !res.Verified {
		t.Fatalf("diamond should balance evenly: %v", res.Counterexample)
	}

	skewed := testnets.ACLSquare()
	ms := encode(t, skewed)
	ps := LoadBalanced(ms, []string{"R1"}, "R2", "R3", 1000, 100)
	if res := check(t, ms, ps, ms.NoFailures(), DstIn(ms, dst)); res.Verified {
		t.Fatal("ACL-skewed diamond cannot balance")
	}
}

const twinA = `
hostname A1
!
interface Eth0
 ip address 10.0.1.1 255.255.255.252
!
router bgp 65001
 neighbor 10.0.1.2 remote-as 65100
 neighbor 10.0.1.2 route-map IMP in
!
ip prefix-list BLOCK seq 5 deny 192.168.0.0/16 le 32
ip prefix-list BLOCK seq 10 permit 0.0.0.0/0 le 32
!
route-map IMP permit 10
 match ip address prefix-list BLOCK
 set local-preference 120
!
access-list 9 deny ip any host 172.18.0.1
access-list 9 permit ip any any
!
interface Eth1
 ip address 10.1.1.1 255.255.255.0
 ip access-group 9 in
!
`

func twinB(aclException bool) string {
	s := strings.ReplaceAll(twinA, "A1", "B1")
	s = strings.ReplaceAll(s, "10.0.1.1", "10.0.2.1")
	s = strings.ReplaceAll(s, "10.0.1.2", "10.0.2.2")
	s = strings.ReplaceAll(s, "10.1.1.1", "10.1.2.1")
	if aclException {
		// The §8.1 violation class: one extra ACL entry.
		s = strings.Replace(s, "access-list 9 deny ip any host 172.18.0.1",
			"access-list 9 deny ip any host 172.18.0.1\naccess-list 9 deny ip any host 172.18.0.2", 1)
	}
	return s
}

func TestLocalEquivalence(t *testing.T) {
	same := testnets.MustBuild(twinA, twinB(false))
	res, err := core.CheckLocalEquivalence(same.Graph, "A1", "B1", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("twins should be equivalent: %s", res.Difference)
	}

	diff := testnets.MustBuild(twinA, twinB(true))
	res2, err := core.CheckLocalEquivalence(diff.Graph, "A1", "B1", core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Equivalent {
		t.Fatal("ACL exception should break equivalence")
	}
	if !strings.Contains(res2.Difference, "ACL") {
		t.Fatalf("difference should implicate the ACL: %s", res2.Difference)
	}
}

func TestFullEquivalence(t *testing.T) {
	a := testnets.Hijackable(false)
	b := testnets.Hijackable(false)
	pair, err := core.EncodePair(a.Graph, b.Graph, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := pair.LinkEnvironments(); err != nil {
		t.Fatal(err)
	}
	pair.LinkFailures()
	res, err := pair.Check(pair.FullEquivalence())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("identical networks must be equivalent: %v", res.Counterexample)
	}

	// The filtered variant behaves differently (it drops the hijack).
	c := testnets.Hijackable(true)
	pair2, err := core.EncodePair(a.Graph, c.Graph, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := pair2.LinkEnvironments(); err != nil {
		t.Fatal(err)
	}
	pair2.LinkFailures()
	res2, err := pair2.Check(pair2.FullEquivalence())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verified {
		t.Fatal("filtered and unfiltered networks must differ")
	}
}

func TestFaultInvariance(t *testing.T) {
	// The triangle tolerates any single failure: reachability unchanged.
	tri := testnets.EBGPTriangle()
	pair, prop, err := core.FaultInvariance(tri.Graph, core.DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pair.Check(prop)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("triangle should be fault-invariant: %v", res.Counterexample)
	}

	// A chain is not.
	chain := testnets.OSPFChain(3)
	pair2, prop2, err := core.FaultInvariance(chain.Graph, core.DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := pair2.Check(prop2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verified {
		t.Fatal("chain cannot be fault-invariant")
	}
}

func TestDescribe(t *testing.T) {
	net := testnets.OSPFChain(2)
	m := encode(t, net)
	res := check(t, m, Reachable(m, "R1", pfx("10.100.2.0/24")), m.NoFailures())
	s := Describe("reach", res)
	if !strings.Contains(s, "verified") {
		t.Fatalf("describe: %s", s)
	}
}

func TestReachableAllAndExternally(t *testing.T) {
	net := testnets.Figure2()
	m := encode(t, net)
	s3 := pfx("10.3.3.0/24")
	// Over ALL environments, S3 reachability is violated: Figure 2 has no
	// inbound filters for internal address space, so an external neighbor
	// can hijack S3 with a more-specific announcement — the same
	// vulnerability class as the paper's management-interface finding.
	res0 := check(t, m, ReachableAll(m, []string{"R1", "R2"}, s3), m.NoFailures())
	if res0.Verified {
		t.Fatal("expected the more-specific hijack of S3 to be found")
	}
	// The diversion works either with a more-specific prefix (LPM) or an
	// equal-length one (eBGP's administrative distance beats OSPF's).
	hijacked := false
	for _, ann := range res0.Counterexample.Env.Anns {
		if ann.Prefix.Contains(res0.Counterexample.Packet.DstIP) && s3.Contains(res0.Counterexample.Packet.DstIP) {
			hijacked = true
		}
	}
	if !hijacked {
		t.Fatalf("counterexample is not a hijack: %v", res0.Counterexample)
	}
	// With silent neighbors, S3 is reachable from everywhere.
	var silent []*smt.Term
	for _, name := range []string{"N1", "N2", "N3"} {
		silent = append(silent, m.Ctx.Not(m.Main.Env[name].Valid))
	}
	assumptions := append([]*smt.Term{m.NoFailures()}, silent...)
	if res := check(t, m, ReachableAll(m, []string{"R1", "R2"}, s3), assumptions...); !res.Verified {
		t.Fatalf("S3 should be reachable with silent peers: %v", res.Counterexample)
	}
	// External reachability of 8.8.8.0/24 requires an announcement: with a
	// fully symbolic environment the peers may stay silent, so the
	// property is violated — and the counterexample env must be silent.
	ext := pfx("8.8.8.0/24")
	res := check(t, m, ReachesExternally(m, "R3", ext), m.NoFailures())
	if res.Verified {
		t.Fatal("silence must break external reachability")
	}
	if len(res.Counterexample.Env.Anns) != 0 {
		// Any announcements present must not provide the destination —
		// decoded environments always cover the destination, so none
		// should appear.
		t.Fatalf("expected silent environment, got %v", res.Counterexample.Env)
	}
}

func TestWaypointChainOrder(t *testing.T) {
	// On the chain R1—R2—R3—R4, traffic from R1 to R4's stub passes R2
	// then R3 — in that order only.
	net := testnets.OSPFChain(4)
	stub := pfx("10.100.4.0/24")

	m := encode(t, net)
	if res := check(t, m, WaypointedChain(m, "R1", []string{"R2", "R3"}, stub), m.NoFailures()); !res.Verified {
		t.Fatalf("R2→R3 order should hold: %v", res.Counterexample)
	}
	m2 := encode(t, net)
	if res := check(t, m2, WaypointedChain(m2, "R1", []string{"R3", "R2"}, stub), m2.NoFailures()); res.Verified {
		t.Fatal("R3→R2 order is impossible on the chain and must be violated")
	}
	// A chain with an unrelated router is violated too.
	m3 := encode(t, net)
	if res := check(t, m3, WaypointedChain(m3, "R2", []string{"R1"}, stub), m3.NoFailures()); res.Verified {
		t.Fatal("R1 is not on the R2→R4 path")
	}
}

func TestDisjointPaths(t *testing.T) {
	net := testnets.ACLSquare()
	dst := pfx("10.50.0.0/24")
	// R2 and R3 reach R5 over distinct links.
	m := encode(t, net)
	if res := check(t, m, DisjointPaths(m, "R2", "R3", dst), m.NoFailures()); !res.Verified {
		t.Fatalf("R2/R3 paths should be edge-disjoint: %v", res.Counterexample)
	}
	// R1's traffic rides through R2, sharing the R2→R5 link.
	m2 := encode(t, net)
	if res := check(t, m2, DisjointPaths(m2, "R1", "R2", dst), m2.NoFailures()); res.Verified {
		t.Fatal("R1 and R2 share the R2→R5 link")
	}
}

func TestAlwaysExportsCommunity(t *testing.T) {
	mk := func(tagged bool) string {
		out := ""
		if tagged {
			out = ` neighbor 10.9.1.2 route-map TAG out
`
		}
		return `
hostname R1
!
interface Serial0
 ip address 10.9.1.1 255.255.255.252
!
interface Loopback0
 ip address 10.100.1.1 255.255.255.0
!
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.9.1.2 remote-as 65100
 neighbor 10.9.1.2 description N1
` + out + ` network 10.100.1.0 mask 255.255.255.0
!
route-map TAG permit 10
 set community 65001:7 additive
!
`
	}
	opts := core.DefaultOptions()
	opts.KeepAllCommunities = true
	tagged := testnets.MustBuild(mk(true))
	m, err := core.Encode(tagged.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := AlwaysExportsCommunity(m, []string{"N1"}, "65001:7")
	if res := check(t, m, p, m.NoFailures()); !res.Verified {
		t.Fatalf("export map should tag everything: %v", res.Counterexample)
	}
	plain := testnets.MustBuild(mk(false))
	m2, err := core.Encode(plain.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2 := AlwaysExportsCommunity(m2, []string{"N1"}, "65001:7")
	if res := check(t, m2, p2, m2.NoFailures()); res.Verified {
		t.Fatal("untagged exports must violate")
	}
}
