// Package properties encodes the verification properties of §5 of the
// paper as SMT constraints over a core.Model: reachability, isolation,
// waypointing, bounded and equal path length, disjoint paths, forwarding
// loops, black holes, multipath consistency, neighbor preferences, load
// balancing, aggregation/leaking, and the equivalence and fault properties.
//
// Each builder returns a property term P; core.Model.Check(P) then decides
// N ∧ ¬P. Builders may instrument the model with definitional constraints
// (reachability ranks, path lengths, taint); instrumentation is
// value-preserving and may be shared across properties.
package properties

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/smt"
)

// inSubnet constrains the symbolic destination to the prefix.
func inSubnet(m *core.Model, p network.Prefix) *smt.Term {
	return m.Ctx.InRange(m.DstIP, uint64(p.First()), uint64(p.Last()))
}

// DstIn restricts queries to destinations within the prefix; use it as a
// Check assumption or property guard.
func DstIn(m *core.Model, p network.Prefix) *smt.Term { return inSubnet(m, p) }

// Reachable asserts that packets for the subnet sourced at src are
// delivered (for any environment and any packet in the subnet).
func Reachable(m *core.Model, src string, subnet network.Prefix) *smt.Term {
	reach := m.Reach(m.Main, false)
	return m.Ctx.Implies(inSubnet(m, subnet), reach[src])
}

// ReachableAll is the many-sources single-query form the paper highlights:
// every listed router can reach the subnet.
func ReachableAll(m *core.Model, srcs []string, subnet network.Prefix) *smt.Term {
	c := m.Ctx
	reach := m.Reach(m.Main, false)
	var all []*smt.Term
	for _, s := range srcs {
		all = append(all, reach[s])
	}
	return c.Implies(inSubnet(m, subnet), c.And(all...))
}

// ReachesExternally asserts packets from src for the subnet are delivered
// or leave toward an external peer.
func ReachesExternally(m *core.Model, src string, subnet network.Prefix) *smt.Term {
	reach := m.Reach(m.Main, true)
	return m.Ctx.Implies(inSubnet(m, subnet), reach[src])
}

// Isolated asserts src can never deliver packets to the subnet, under any
// environment.
func Isolated(m *core.Model, src string, subnet network.Prefix) *smt.Term {
	reach := m.Reach(m.Main, false)
	return m.Ctx.Implies(inSubnet(m, subnet), m.Ctx.Not(reach[src]))
}

// ManagementReachable is the §8.1 property: every router can reach every
// management interface, irrespective of the environment.
func ManagementReachable(m *core.Model) *smt.Term {
	c := m.Ctx
	reach := m.Reach(m.Main, false)
	out := c.True()
	for _, n := range m.G.Topo.Nodes {
		cfg := m.G.Configs[n.Name]
		for _, mi := range cfg.ManagementInterfaces() {
			dstIs := c.Eq(m.DstIP, c.BV(uint64(mi.Addr), core.WidthIP))
			for _, other := range m.G.Topo.Nodes {
				if other == n {
					continue
				}
				out = c.And(out, c.Implies(dstIs, reach[other.Name]))
			}
		}
	}
	return out
}

// Waypointed asserts that all delivered traffic from src to the subnet
// traverses the waypoint router (§5, service chaining with k=1).
func Waypointed(m *core.Model, src, waypoint string, subnet network.Prefix) *smt.Term {
	avoiding := m.ReachAvoiding(m.Main, waypoint, false)
	return m.Ctx.Implies(inSubnet(m, subnet), m.Ctx.Not(avoiding[src]))
}

// BoundedLength asserts every forwarding path from src to the subnet has
// at most k hops.
func BoundedLength(m *core.Model, src string, subnet network.Prefix, k int) *smt.Term {
	c := m.Ctx
	lens, w := m.PathLengths(m.Main)
	reach := m.Reach(m.Main, false)
	return c.Implies(c.And(inSubnet(m, subnet), reach[src]),
		c.Ule(lens[src], c.BV(uint64(k), w)))
}

// BoundedLengthAll bounds every source at once (the paper's all-ToR form).
func BoundedLengthAll(m *core.Model, srcs []string, subnet network.Prefix, k int) *smt.Term {
	c := m.Ctx
	lens, w := m.PathLengths(m.Main)
	reach := m.Reach(m.Main, false)
	out := c.True()
	for _, s := range srcs {
		out = c.And(out, c.Implies(c.And(inSubnet(m, subnet), reach[s]),
			c.Ule(lens[s], c.BV(uint64(k), w))))
	}
	return out
}

// EqualLengths asserts all listed sources that reach the subnet use paths
// of identical length (§8.2, equal-length pod).
func EqualLengths(m *core.Model, srcs []string, subnet network.Prefix) *smt.Term {
	c := m.Ctx
	lens, _ := m.PathLengths(m.Main)
	reach := m.Reach(m.Main, false)
	out := c.True()
	for i := 0; i < len(srcs); i++ {
		for j := i + 1; j < len(srcs); j++ {
			both := c.And(inSubnet(m, subnet), reach[srcs[i]], reach[srcs[j]])
			out = c.And(out, c.Implies(both, c.Eq(lens[srcs[i]], lens[srcs[j]])))
		}
	}
	return out
}

// DisjointPaths asserts traffic from the two sources to the subnet never
// shares a directed link (§5).
func DisjointPaths(m *core.Model, s1, s2 string, subnet network.Prefix) *smt.Term {
	c := m.Ctx
	t1 := m.Tainted(m.Main, s1)
	t2 := m.Tainted(m.Main, s2)
	out := c.True()
	for _, x := range m.G.Topo.Nodes {
		for _, h := range hopsOf(m, x.Name) {
			if h.Node == "" {
				continue
			}
			edge := m.Main.DataFwd[x.Name][h]
			used1 := c.And(t1[x.Name], edge)
			used2 := c.And(t2[x.Name], edge)
			out = c.And(out, c.Not(c.And(used1, used2)))
		}
	}
	return c.Implies(inSubnet(m, subnet), out)
}

func hopsOf(m *core.Model, router string) []core.Hop {
	fwd := m.Main.DataFwd[router]
	hops := make([]core.Hop, 0, len(fwd))
	for h := range fwd {
		hops = append(hops, h)
	}
	sort.Slice(hops, func(i, j int) bool {
		if hops[i].Node != hops[j].Node {
			return hops[i].Node < hops[j].Node
		}
		return hops[i].Ext < hops[j].Ext
	})
	return hops
}

// LoopCandidates returns the routers where forwarding loops are possible
// — those with static routes or dynamic redistribution — mirroring the
// paper's optimization of instrumenting only such routers.
func LoopCandidates(m *core.Model) []string {
	var out []string
	for _, n := range m.G.Topo.Nodes {
		cfg := m.G.Configs[n.Name]
		risky := len(cfg.Statics) > 0
		if cfg.OSPF != nil && len(cfg.OSPF.Redistribute) > 0 {
			risky = true
		}
		if cfg.RIP != nil && len(cfg.RIP.Redistribute) > 0 {
			risky = true
		}
		if cfg.BGP != nil && len(cfg.BGP.Redistribute) > 0 {
			risky = true
		}
		if risky {
			out = append(out, n.Name)
		}
	}
	return out
}

// NoForwardingLoops asserts no data-plane cycle passes through any of the
// given routers (nil = the LoopCandidates optimization set).
func NoForwardingLoops(m *core.Model, routers []string) *smt.Term {
	c := m.Ctx
	if routers == nil {
		routers = LoopCandidates(m)
	}
	out := c.True()
	for _, r := range routers {
		taint := m.Tainted(m.Main, r)
		loop := c.False()
		for _, x := range m.G.Topo.Nodes {
			if x.Name == r {
				continue
			}
			if edge, ok := m.Main.DataFwd[x.Name][core.Hop{Node: r}]; ok {
				loop = c.Or(loop, c.And(taint[x.Name], edge))
			}
		}
		out = c.And(out, c.Not(loop))
	}
	return out
}

// NoBlackholes asserts no router silently discards traffic some neighbor
// data-forwards to it: arriving traffic is delivered, forwarded onward, or
// intentionally dropped by a null route (§5).
func NoBlackholes(m *core.Model) *smt.Term {
	c := m.Ctx
	out := c.True()
	for _, x := range m.G.Topo.Nodes {
		incoming := c.False()
		for _, y := range m.G.Topo.Nodes {
			if edge, ok := m.Main.DataFwd[y.Name][core.Hop{Node: x.Name}]; ok {
				incoming = c.Or(incoming, edge)
			}
		}
		onward := c.False()
		for _, h := range hopsOf(m, x.Name) {
			onward = c.Or(onward, m.Main.DataFwd[x.Name][h])
		}
		handled := c.Or(onward, m.Main.DeliveredLocal[x.Name], m.Main.DroppedNull[x.Name])
		out = c.And(out, c.Implies(incoming, handled))
	}
	return out
}

// DropsAtEdgeOnly asserts ACL drops happen only at edge routers: at any
// interior router the control- and data-plane decisions agree (the §8.1
// blackhole check that flagged "traffic dropped deep in the network").
func DropsAtEdgeOnly(m *core.Model, isEdge func(router string) bool) *smt.Term {
	c := m.Ctx
	out := c.True()
	for _, x := range m.G.Topo.Nodes {
		if isEdge(x.Name) {
			continue
		}
		for _, h := range hopsOf(m, x.Name) {
			ctrl := m.Main.CtrlFwd[x.Name][h]
			data := m.Main.DataFwd[x.Name][h]
			out = c.And(out, c.Implies(ctrl, data))
		}
	}
	return out
}

// MultipathConsistent encodes the Batfish multipath-consistency property
// exactly as in §5: wherever a router can reach the destination, each of
// its control-plane branches must also pass the data plane and lead to a
// neighbor that can reach it.
func MultipathConsistent(m *core.Model) *smt.Term {
	c := m.Ctx
	reach := m.Reach(m.Main, true)
	out := c.True()
	for _, x := range m.G.Topo.Nodes {
		branchOK := c.True()
		for _, h := range hopsOf(m, x.Name) {
			ctrl := m.Main.CtrlFwd[x.Name][h]
			data := m.Main.DataFwd[x.Name][h]
			tail := c.True()
			if h.Node != "" {
				tail = reach[h.Node]
			}
			branchOK = c.And(branchOK, c.Implies(ctrl, c.And(data, tail)))
		}
		out = c.And(out, c.Implies(reach[x.Name], branchOK))
	}
	return out
}

// PrefersNeighbors asserts the router honors the given external-neighbor
// preference order (§5): if the i-th neighbor's advertisement survives the
// import filter and all more-preferred ones do not, traffic exits via the
// i-th neighbor.
func PrefersNeighbors(m *core.Model, router string, prefs []string) *smt.Term {
	c := m.Ctx
	out := c.True()
	for i, nbr := range prefs {
		imp := m.Main.ExtImports[nbr]
		if imp == nil {
			continue
		}
		cond := imp.Valid
		for _, higher := range prefs[:i] {
			if h := m.Main.ExtImports[higher]; h != nil {
				cond = c.And(cond, c.Not(h.Valid))
			}
		}
		fwd := m.Main.CtrlFwd[router][core.Hop{Ext: nbr}]
		if fwd == nil {
			fwd = c.False()
		}
		out = c.And(out, c.Implies(cond, fwd))
	}
	return out
}

// NoLeak asserts nothing more specific than maxLen is ever exported to the
// listed external peers (nil = all): the §5 aggregation property.
func NoLeak(m *core.Model, peers []string, maxLen int) *smt.Term {
	c := m.Ctx
	if peers == nil {
		for name := range m.Main.ExtExports {
			peers = append(peers, name)
		}
		sort.Strings(peers)
	}
	out := c.True()
	for _, p := range peers {
		rec := m.Main.ExtExports[p]
		if rec == nil {
			continue
		}
		out = c.And(out, c.Implies(rec.Valid,
			c.Ule(rec.PrefixLen, c.BV(uint64(maxLen), core.WidthPrefixLen))))
	}
	return out
}

// AlwaysExportsCommunity asserts every advertisement to the external peers
// carries the community (§5's local-equivalence motivation). The model
// must be encoded with Options.KeepAllCommunities: the slicing analysis
// otherwise removes community bits that no filter matches on, and a
// missing bit reads as "never attached".
func AlwaysExportsCommunity(m *core.Model, peers []string, comm string) *smt.Term {
	c := m.Ctx
	out := c.True()
	for _, p := range peers {
		rec := m.Main.ExtExports[p]
		if rec == nil {
			continue
		}
		bit, ok := rec.Comms[comm]
		if !ok {
			bit = c.False()
		}
		out = c.And(out, c.Implies(rec.Valid, bit))
	}
	return out
}

// LoadBalanced instruments the §5 load-balancing model: each source
// injects `scale` units of traffic, every forwarding router splits its
// load equally over its active branches (the paper's shared-variable
// trick), and the property bounds |total(a) − total(b)| ≤ tol.
func LoadBalanced(m *core.Model, sources []string, a, b string, scale, tol uint64) *smt.Term {
	c := m.Ctx
	const w = 32
	reach := m.Reach(m.Main, false)
	total := map[string]*smt.Term{}
	for _, n := range m.G.Topo.Nodes {
		total[n.Name] = c.BVVar("load|total|"+n.Name, w)
	}
	srcSet := map[string]bool{}
	for _, s := range sources {
		srcSet[s] = true
	}
	// Per-edge load contributions.
	outFlow := map[string]map[core.Hop]*smt.Term{}
	for _, n := range m.G.Topo.Nodes {
		share := c.BVVar("load|share|"+n.Name, w)
		outFlow[n.Name] = map[core.Hop]*smt.Term{}
		sum := c.BV(0, w)
		for _, h := range hopsOf(m, n.Name) {
			live := m.Main.DataFwd[n.Name][h]
			if h.Node != "" {
				live = c.And(live, reach[h.Node])
			}
			f := c.Ite(live, share, c.BV(0, w))
			outFlow[n.Name][h] = f
			sum = c.Add(sum, f)
		}
		// Conservation: a reaching, non-delivering router forwards its
		// whole load; a delivering router absorbs it.
		m.AssertExtra(c.Implies(c.And(reach[n.Name], c.Not(m.Main.DeliveredLocal[n.Name])),
			c.Eq(sum, total[n.Name])))
	}
	// Totals: seed plus incoming flow.
	for _, n := range m.G.Topo.Nodes {
		seed := c.BV(0, w)
		if srcSet[n.Name] {
			seed = c.BV(scale, w)
		}
		sum := seed
		for _, y := range m.G.Topo.Nodes {
			if f, ok := outFlow[y.Name][core.Hop{Node: n.Name}]; ok {
				sum = c.Add(sum, f)
			}
		}
		m.AssertExtra(c.Eq(total[n.Name], sum))
	}
	diffAB := c.Sub(total[a], total[b])
	diffBA := c.Sub(total[b], total[a])
	bound := c.BV(tol, w)
	return c.Or(
		c.And(c.Ule(total[b], total[a]), c.Ule(diffAB, bound)),
		c.And(c.Ule(total[a], total[b]), c.Ule(diffBA, bound)),
	)
}

// RoleRouters groups routers by a role function (e.g. name prefix) for
// role-based equivalence sweeps.
func RoleRouters(m *core.Model, roleOf func(string) string) map[string][]string {
	out := map[string][]string{}
	for _, n := range m.G.Topo.Nodes {
		r := roleOf(n.Name)
		if r == "" {
			continue
		}
		out[r] = append(out[r], n.Name)
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}

// Describe renders a property-check outcome for CLI output.
func Describe(name string, res *core.Result) string {
	if res.Verified {
		return fmt.Sprintf("%s: verified (%.1fms, %d vars, %d clauses)",
			name, float64(res.Elapsed.Microseconds())/1000, res.SATVars, res.SATClauses)
	}
	return fmt.Sprintf("%s: VIOLATED (%.1fms)\n%s", name,
		float64(res.Elapsed.Microseconds())/1000, res.Counterexample)
}

// WaypointedChain asserts all delivered traffic from src to the subnet
// traverses the waypoints in order (§5 service chaining, general form): a
// violation is a delivery whose chain progress is below k.
func WaypointedChain(m *core.Model, src string, chain []string, subnet network.Prefix) *smt.Term {
	c := m.Ctx
	k := len(chain)
	prog := m.ChainProgress(m.Main, src, chain)
	out := c.True()
	for _, n := range m.G.Topo.Nodes {
		for j := 0; j < k; j++ {
			bad := c.And(m.Main.DeliveredLocal[n.Name], prog[n.Name][j])
			out = c.And(out, c.Not(bad))
		}
	}
	return c.Implies(inSubnet(m, subnet), out)
}
