package simulator

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/protograph"
)

// Hop is one forwarding target: an internal neighbor or an external peer.
type Hop struct {
	Node string // internal next hop ("" if external)
	Ext  string // external peer name ("" if internal)
}

func (h Hop) String() string {
	if h.Ext != "" {
		return "ext:" + h.Ext
	}
	return h.Node
}

// RouterState is the stable state reached by one router for the slice.
type RouterState struct {
	// PerProto holds the best record per protocol instance.
	PerProto map[config.Protocol]Record
	// Best is the overall best record installed in the FIB.
	Best Record
	// Hops are the control-plane forwarding decisions (several under
	// multipath).
	Hops []Hop
	// DeliveredLocal is set when the router delivers the packet onto a
	// connected subnet.
	DeliveredLocal bool
	// DroppedNull is set when a null0 static route blackholes the packet.
	DroppedNull bool
}

// Result is the outcome of simulating one slice: one destination IP under
// one environment.
type Result struct {
	DstIP  network.IP
	Env    *Environment
	States map[string]*RouterState
	// ExportsToExt holds the BGP record each router exports to each
	// external peer (keyed by peer name), for leak/equivalence checks.
	ExportsToExt map[string]Record
	Rounds       int
}

// Simulator computes stable states of the control plane for concrete
// environments.
type Simulator struct {
	G    *protograph.Graph
	Mode CompareMode

	// addrSlices caches per-address slices used for iBGP next-hop
	// resolution, keyed by destination address.
	addrSlices map[network.IP]*Result
	// inAddrSlice disables multihop iBGP sessions while computing an
	// address slice: iBGP next-hops must be resolvable by the IGP alone,
	// which also breaks the mutual recursion between address slices.
	inAddrSlice bool
	// sessUp caches the resolved iBGP session status for the current
	// environment.
	sessUp map[*protograph.BGPSession]bool
	envKey string
}

// New returns a simulator over the protocol graph.
func New(g *protograph.Graph) *Simulator {
	mode := CompareMode{}
	for _, c := range g.Configs {
		if c.BGP != nil && c.BGP.AlwaysCompareMED {
			mode.AlwaysCompareMED = true
		}
	}
	return &Simulator{G: g, Mode: mode}
}

// maxRounds bounds the fixed-point iteration.
func (s *Simulator) maxRounds() int { return 4*len(s.G.Topo.Nodes) + 10 }

// Run simulates the control plane for packets destined to dstIP under the
// environment and returns the stable state. It returns an error if the
// control plane does not converge (e.g. a policy dispute cycle).
func (s *Simulator) Run(dstIP network.IP, env *Environment) (*Result, error) {
	if err := s.resolveIBGP(env); err != nil {
		return nil, err
	}
	return s.runSlice(dstIP, env)
}

// resolveIBGP computes which iBGP sessions are up: both peering addresses
// must be mutually reachable (the paper's per-next-hop network copies).
// Sessions riding a direct link are simply gated on that link.
func (s *Simulator) resolveIBGP(env *Environment) error {
	key := env.String()
	if s.sessUp != nil && s.envKey == key {
		return nil
	}
	s.envKey = key
	s.addrSlices = map[network.IP]*Result{}
	s.sessUp = map[*protograph.BGPSession]bool{}
	var multihop []*protograph.BGPSession
	for _, sess := range s.G.Sessions {
		if sess.Kind != protograph.IBGP {
			continue
		}
		if sess.Link != nil {
			s.sessUp[sess] = !env.FailedLinks[LinkID(sess.Link.A.Name, sess.Link.B.Name)]
			continue
		}
		s.sessUp[sess] = true // optimistic start
		multihop = append(multihop, sess)
	}
	if len(multihop) == 0 {
		return nil
	}
	// Address slices are IGP-only (multihop iBGP disabled inside them), so
	// a single resolution pass suffices.
	for _, sess := range multihop {
		// NbrAtA.Addr is B's peering address and vice versa.
		upAB, err := s.addrReachable(sess.A.Name, sess.NbrAtA.Addr, env)
		if err != nil {
			return err
		}
		upBA, err := s.addrReachable(sess.B.Name, sess.NbrAtB.Addr, env)
		if err != nil {
			return err
		}
		s.sessUp[sess] = upAB && upBA
	}
	return nil
}

// addrReachable reports whether a packet from the router reaches the given
// address, using a dedicated slice.
func (s *Simulator) addrReachable(from string, addr network.IP, env *Environment) (bool, error) {
	slice, err := s.addrSlice(addr, env)
	if err != nil {
		return false, err
	}
	w := s.Walk(slice, from, config.Packet{DstIP: addr, Protocol: 6, DstPort: 179})
	return w.Outcomes[Delivered], nil
}

func (s *Simulator) addrSlice(addr network.IP, env *Environment) (*Result, error) {
	if r, ok := s.addrSlices[addr]; ok {
		return r, nil
	}
	s.inAddrSlice = true
	r, err := s.runSlice(addr, env)
	s.inAddrSlice = false
	if err != nil {
		return nil, err
	}
	s.addrSlices[addr] = r
	return r, nil
}

// runSlice iterates the per-router transfer functions to a fixed point.
func (s *Simulator) runSlice(dstIP network.IP, env *Environment) (*Result, error) {
	res := &Result{DstIP: dstIP, Env: env, States: map[string]*RouterState{}, ExportsToExt: map[string]Record{}}
	for _, n := range s.G.Topo.Nodes {
		res.States[n.Name] = &RouterState{PerProto: map[config.Protocol]Record{}}
	}
	for round := 0; ; round++ {
		if round >= s.maxRounds() {
			return nil, fmt.Errorf("simulator: no convergence for dst %v after %d rounds", dstIP, round)
		}
		changed := false
		for _, n := range s.G.Topo.Nodes {
			ns := s.computeRouter(n, res, dstIP, env)
			old := res.States[n.Name]
			if !statesEqual(old, ns) {
				changed = true
			}
			res.States[n.Name] = ns
		}
		if !changed {
			res.Rounds = round + 1
			break
		}
	}
	// Exports to external neighbors (after convergence).
	for _, sess := range s.G.Sessions {
		if sess.Kind != protograph.EBGPExternal {
			continue
		}
		rec := s.exportBGP(sess.A, sess, res, dstIP)
		if env.FailedLinks[ExtLinkID(sess.A.Name, sess.Ext.Name)] {
			rec = Invalid()
		}
		res.ExportsToExt[sess.Ext.Name] = rec
	}
	return res, nil
}

func statesEqual(a, b *RouterState) bool {
	if len(a.PerProto) != len(b.PerProto) {
		return false
	}
	for p, ra := range a.PerProto {
		if !equalRoute(ra, b.PerProto[p]) {
			return false
		}
	}
	return equalRoute(a.Best, b.Best)
}

// computeRouter evaluates one router's selection against the current state
// of its neighbors.
func (s *Simulator) computeRouter(n *network.Node, res *Result, dstIP network.IP, env *Environment) *RouterState {
	cfg := s.G.Configs[n.Name]
	byProto := map[config.Protocol][]Record{}

	// Connected.
	for _, i := range cfg.Interfaces {
		if i.Shutdown || !i.Prefix.Contains(dstIP) {
			continue
		}
		byProto[config.Connected] = append(byProto[config.Connected], Record{
			Valid: true, PrefixLen: i.Prefix.Len, AD: 0, LocalPref: 100,
			Proto: config.Connected, Origin: i.Name,
		})
	}

	// Static.
	for _, st := range cfg.Statics {
		if !st.Prefix.Contains(dstIP) {
			continue
		}
		rec := Record{
			Valid: true, PrefixLen: st.Prefix.Len, AD: staticAD(st), LocalPref: 100,
			Proto: config.Static, Origin: st.Prefix.String(), Drop: st.Drop,
		}
		if !st.Drop {
			hop, ok := s.resolveNextHop(n, st, env)
			if !ok {
				continue // unresolvable next hop: route not installed
			}
			rec.FromNode, rec.FromExt = hop.Node, hop.Ext
		}
		byProto[config.Static] = append(byProto[config.Static], rec)
	}

	// OSPF.
	if cfg.OSPF != nil {
		ad := orDefault(cfg.OSPF.AdminDistance, 110)
		for _, i := range cfg.Interfaces {
			if i.Shutdown || !i.Prefix.Contains(dstIP) {
				continue
			}
			if !prefixActivated(cfg.OSPF.Networks, i.Prefix) {
				continue
			}
			byProto[config.OSPF] = append(byProto[config.OSPF], Record{
				Valid: true, PrefixLen: i.Prefix.Len, AD: ad, LocalPref: 100,
				Proto: config.OSPF, Origin: i.Name,
			})
		}
		for _, rd := range cfg.OSPF.Redistribute {
			if rec, ok := s.redistribute(cfg, rd, res.States[n.Name], config.OSPF, ad, 20, dstIP); ok {
				byProto[config.OSPF] = append(byProto[config.OSPF], rec)
			}
		}
		for _, adj := range s.G.OSPFAdjsOf(n) {
			if env.FailedLinks[LinkID(adj.Link.A.Name, adj.Link.B.Name)] {
				continue
			}
			peer := adj.Link.Peer(n)
			pr := res.States[peer.Name].PerProto[config.OSPF]
			if !pr.Valid {
				continue
			}
			cost := adj.CostA
			if n == adj.Link.B {
				cost = adj.CostB
			}
			in := pr.clone()
			in.Metric += cost
			if in.Metric > 65535 || contains(in.Path, n.Name) {
				continue
			}
			in.AD = ad
			in.FromNode, in.FromExt = peer.Name, ""
			in.Origin = "ospf:" + peer.Name
			in.RID = uint32(peer.Index) + 1
			in.Path = append(in.Path, peer.Name)
			byProto[config.OSPF] = append(byProto[config.OSPF], in)
		}
	}

	// RIP: shortest paths with unit weights (§4).
	if cfg.RIP != nil {
		ad := orDefault(cfg.RIP.AdminDistance, 120)
		for _, i := range cfg.Interfaces {
			if i.Shutdown || !i.Prefix.Contains(dstIP) {
				continue
			}
			if !prefixActivated(cfg.RIP.Networks, i.Prefix) {
				continue
			}
			byProto[config.RIP] = append(byProto[config.RIP], Record{
				Valid: true, PrefixLen: i.Prefix.Len, AD: ad, LocalPref: 100,
				Proto: config.RIP, Origin: i.Name,
			})
		}
		for _, rd := range cfg.RIP.Redistribute {
			if rec, ok := s.redistribute(cfg, rd, res.States[n.Name], config.RIP, ad, 1, dstIP); ok {
				byProto[config.RIP] = append(byProto[config.RIP], rec)
			}
		}
		for _, adj := range s.G.RIPAdjsOf(n) {
			if env.FailedLinks[LinkID(adj.Link.A.Name, adj.Link.B.Name)] {
				continue
			}
			peer := adj.Link.Peer(n)
			pr := res.States[peer.Name].PerProto[config.RIP]
			if !pr.Valid {
				continue
			}
			in := pr.clone()
			in.Metric++
			if in.Metric >= 16 || contains(in.Path, n.Name) {
				continue // RIP infinity
			}
			in.AD = ad
			in.FromNode, in.FromExt = peer.Name, ""
			in.Origin = "rip:" + peer.Name
			in.RID = uint32(peer.Index) + 1
			in.Path = append(in.Path, peer.Name)
			byProto[config.RIP] = append(byProto[config.RIP], in)
		}
	}

	// BGP.
	if cfg.BGP != nil {
		for _, p := range cfg.BGP.Networks {
			if !p.Contains(dstIP) || !s.ownsPrefix(cfg, p) {
				continue
			}
			byProto[config.BGP] = append(byProto[config.BGP], Record{
				Valid: true, PrefixLen: p.Len, AD: bgpAD(cfg, false), LocalPref: 100,
				Proto: config.BGP, Origin: "network " + p.String(),
			})
		}
		for _, rd := range cfg.BGP.Redistribute {
			if rec, ok := s.redistribute(cfg, rd, res.States[n.Name], config.BGP, bgpAD(cfg, false), 0, dstIP); ok {
				rec.LocalPref = 100
				byProto[config.BGP] = append(byProto[config.BGP], rec)
			}
		}
		for _, sess := range s.G.SessionsOf(n) {
			if rec, ok := s.importBGP(n, sess, res, dstIP, env); ok {
				byProto[config.BGP] = append(byProto[config.BGP], rec)
			}
		}
	}

	// Selection.
	ns := &RouterState{PerProto: map[config.Protocol]Record{}}
	for proto, cands := range byProto {
		best := Invalid()
		for _, c := range cands {
			if !c.Valid {
				continue
			}
			if !best.Valid || BetterIntra(c, best, s.Mode) {
				best = c
			}
		}
		if best.Valid {
			ns.PerProto[proto] = best
		}
	}
	overall := Invalid()
	for _, rec := range ns.PerProto {
		if !overall.Valid || Better(rec, overall, s.Mode) {
			overall = rec
		}
	}
	ns.Best = overall
	if overall.Valid {
		s.decideForwarding(n, cfg, ns, byProto[overall.Proto])
	}
	return ns
}

// decideForwarding fills Hops / DeliveredLocal / DroppedNull from the
// winning protocol's candidates.
func (s *Simulator) decideForwarding(n *network.Node, cfg *config.Router, ns *RouterState, cands []Record) {
	best := ns.Best
	switch {
	case best.Proto == config.Connected:
		ns.DeliveredLocal = true
		return
	case best.Drop:
		ns.DroppedNull = true
		return
	}
	multipath := false
	switch best.Proto {
	case config.OSPF:
		multipath = cfg.OSPF.MaxPaths > 1
	case config.BGP:
		multipath = cfg.BGP.MaxPaths > 1
	}
	seen := map[Hop]bool{}
	for _, c := range cands {
		if !c.Valid {
			continue
		}
		use := false
		if multipath {
			use = EquallyGood(c, best, s.Mode)
		} else {
			use = equalRoute(c, best)
		}
		if !use {
			continue
		}
		for _, h := range s.hopsOf(n, c) {
			if !seen[h] {
				seen[h] = true
				ns.Hops = append(ns.Hops, h)
			}
		}
	}
}

// hopsOf resolves a record's forwarding target(s). iBGP-learned routes
// recursively resolve toward the peer's address through the cached
// address slice.
func (s *Simulator) hopsOf(n *network.Node, rec Record) []Hop {
	if rec.FromExt != "" {
		return []Hop{{Ext: rec.FromExt}}
	}
	if rec.FromNode == "" {
		return nil
	}
	if rec.Proto == config.BGP && rec.Internal {
		// Recursive next-hop lookup: forward toward the iBGP peer's
		// address using that address's slice (§4 iBGP modeling).
		addr := s.peerAddrOf(n, rec.FromNode)
		if addr != 0 {
			if slice, ok := s.addrSlices[addr]; ok {
				st := slice.States[n.Name]
				if st != nil && st.Best.Valid && !st.DeliveredLocal {
					return st.Hops
				}
			}
		}
		// Directly connected iBGP peer (session over a link): fall
		// through to the direct hop.
	}
	return []Hop{{Node: rec.FromNode}}
}

// peerAddrOf returns the peering address this router uses to reach the
// named iBGP peer, or 0.
func (s *Simulator) peerAddrOf(n *network.Node, peer string) network.IP {
	for _, sess := range s.G.SessionsOf(n) {
		if sess.Kind != protograph.IBGP || sess.Link != nil {
			continue
		}
		if sess.A == n && sess.B.Name == peer {
			return sess.NbrAtA.Addr
		}
		if sess.B == n && sess.A.Name == peer {
			return sess.NbrAtB.Addr
		}
	}
	return 0
}

// importBGP evaluates the import transfer at router n over session sess.
func (s *Simulator) importBGP(n *network.Node, sess *protograph.BGPSession, res *Result, dstIP network.IP, env *Environment) (Record, bool) {
	cfg := s.G.Configs[n.Name]
	var in Record
	var stanza *config.BGPNeighbor
	switch {
	case sess.Kind == protograph.EBGPExternal:
		if sess.A != n {
			return Invalid(), false
		}
		if env.FailedLinks[ExtLinkID(n.Name, sess.Ext.Name)] {
			return Invalid(), false
		}
		ann := env.Anns[sess.Ext.Name]
		if ann == nil || !ann.Prefix.Contains(dstIP) {
			return Invalid(), false
		}
		in = Record{
			Valid: true, PrefixLen: ann.Prefix.Len, LocalPref: 100,
			Metric: ann.PathLen, MED: ann.MED, NbrASN: sess.Ext.ASN,
			Proto: config.BGP, Origin: "ebgp:" + sess.Ext.Name,
			FromExt: sess.Ext.Name, RID: uint32(sess.Ext.PeerAddr),
		}
		for _, c := range ann.Communities {
			in = in.withComm(c, true)
		}
		stanza = sess.NbrAtA
	default:
		peer := sess.RemoteEnd(n)
		if sess.Link != nil && env.FailedLinks[LinkID(sess.Link.A.Name, sess.Link.B.Name)] {
			return Invalid(), false
		}
		if sess.Kind == protograph.IBGP && sess.Link == nil && (s.inAddrSlice || !s.sessUp[sess]) {
			return Invalid(), false
		}
		exp := s.exportBGP(peer, sess, res, dstIP)
		if !exp.Valid || contains(exp.Path, n.Name) {
			return Invalid(), false
		}
		in = exp
		in.FromNode, in.FromExt = peer.Name, ""
		in.Origin = "bgp:" + peer.Name
		in.NbrASN = s.G.Configs[peer.Name].BGP.ASN
		in.RID = routerIDOf(s.G.Configs[peer.Name], peer)
		if sess.Kind == protograph.EBGP {
			in.LocalPref = 100 // local-pref is not transitive across ASes
			in.Internal = false
		} else {
			in.Internal = true
		}
		stanza = sess.StanzaOf(n)
	}
	in.AD = bgpAD(cfg, in.Internal)
	in.Proto = config.BGP
	// The receiving stanza's client flag marks routes learned from RR
	// clients.
	in.FromClient = stanza.RouteReflectorClient
	if stanza.InMap != "" {
		out, ok := applyRouteMap(cfg, stanza.InMap, in, dstIP)
		if !ok {
			return Invalid(), false
		}
		in = out
	}
	return in, true
}

// exportBGP evaluates the export transfer at the sending router for a
// session: iBGP re-export rules, route-reflector semantics, metric
// increment and the outbound route map.
func (s *Simulator) exportBGP(sender *network.Node, sess *protograph.BGPSession, res *Result, dstIP network.IP) Record {
	cfg := s.G.Configs[sender.Name]
	b := res.States[sender.Name].PerProto[config.BGP]
	if !b.Valid {
		return Invalid()
	}
	stanza := sess.StanzaOf(sender)
	toIBGP := sess.Kind == protograph.IBGP
	if b.Internal && toIBGP {
		// Routes learned via iBGP are not re-exported to iBGP peers,
		// unless route reflection applies: reflect client routes to
		// everyone, non-client routes to clients only.
		if !b.FromClient && !stanza.RouteReflectorClient {
			return Invalid()
		}
	}
	out := b.clone()
	if !toIBGP {
		out.Metric++
		out.MED = 0 // MED is non-transitive across ASes
		// Aggregation (§4): summary-only aggregates suppress the more
		// specific routes, modeled as shortening the advertised length.
		for _, agg := range cfg.BGP.Aggregates {
			if agg.SummaryOnly && agg.Prefix.Contains(dstIP) && out.PrefixLen > agg.Prefix.Len {
				out.PrefixLen = agg.Prefix.Len
			}
		}
	}
	if stanza.OutMap != "" {
		o, ok := applyRouteMap(cfg, stanza.OutMap, out, dstIP)
		if !ok {
			return Invalid()
		}
		out = o
	}
	if out.Metric > 255 {
		return Invalid()
	}
	out.Path = append(out.Path, sender.Name)
	return out
}

// redistribute seeds a record from another protocol's current best.
func (s *Simulator) redistribute(cfg *config.Router, rd config.Redistribution, st *RouterState, into config.Protocol, ad, defMetric int, dstIP network.IP) (Record, bool) {
	src := st.PerProto[rd.From]
	if !src.Valid {
		return Invalid(), false
	}
	rec := src.clone()
	rec.Proto = into
	rec.AD = ad
	rec.Metric = defMetric
	if rd.Metric != 0 {
		rec.Metric = rd.Metric
	}
	rec.Internal = false
	rec.Origin = fmt.Sprintf("redist %v", rd.From)
	// Forwarding for a redistributed route follows the source protocol's
	// decision; keep FromNode/FromExt so hops resolve.
	if rd.RouteMap != "" {
		out, ok := applyRouteMap(cfg, rd.RouteMap, rec, dstIP)
		if !ok {
			return Invalid(), false
		}
		rec = out
	}
	return rec, true
}

// resolveNextHop resolves a static route's next hop to a forwarding target.
func (s *Simulator) resolveNextHop(n *network.Node, st *config.StaticRoute, env *Environment) (Hop, bool) {
	if st.Interface != "" {
		for _, l := range s.G.Topo.LinksOf(n) {
			if l.IfaceOf(n) == st.Interface && !env.FailedLinks[LinkID(l.A.Name, l.B.Name)] {
				return Hop{Node: l.Peer(n).Name}, true
			}
		}
		for _, e := range s.G.Topo.ExternalsOf(n) {
			if e.Iface == st.Interface && !env.FailedLinks[ExtLinkID(n.Name, e.Name)] {
				return Hop{Ext: e.Name}, true
			}
		}
		return Hop{}, false
	}
	for _, l := range s.G.Topo.LinksOf(n) {
		if l.AddrOf(l.Peer(n)) == st.NextHop && !env.FailedLinks[LinkID(l.A.Name, l.B.Name)] {
			return Hop{Node: l.Peer(n).Name}, true
		}
	}
	for _, e := range s.G.Topo.ExternalsOf(n) {
		if e.PeerAddr == st.NextHop && !env.FailedLinks[ExtLinkID(n.Name, e.Name)] {
			return Hop{Ext: e.Name}, true
		}
	}
	return Hop{}, false
}

// ownsPrefix reports whether the router can originate the BGP network
// statement: an interface or static route for exactly that prefix exists.
func (s *Simulator) ownsPrefix(cfg *config.Router, p network.Prefix) bool {
	for _, i := range cfg.Interfaces {
		if !i.Shutdown && i.Prefix == p {
			return true
		}
	}
	for _, st := range cfg.Statics {
		if st.Prefix == p {
			return true
		}
	}
	return false
}

// applyRouteMap runs a route map over a record under the hoisted prefix
// semantics: prefix-list tests become tests on the destination IP plus
// bounds on the record's prefix length (§6.1).
func applyRouteMap(cfg *config.Router, name string, rec Record, dstIP network.IP) (Record, bool) {
	rm := cfg.RouteMaps[name]
	if rm == nil {
		return Invalid(), false
	}
	for _, cl := range rm.Clauses {
		if !clauseMatches(cfg, cl, rec, dstIP) {
			continue
		}
		if cl.Action == config.Deny {
			return Invalid(), false
		}
		out := rec.clone()
		if cl.SetLocalPref != 0 {
			out.LocalPref = int(cl.SetLocalPref)
		}
		if cl.HasSetMetric {
			out.Metric = cl.SetMetric
		}
		if cl.HasSetMED {
			out.MED = cl.SetMED
		}
		for _, c := range cl.SetCommunity {
			out = out.withComm(c, true)
		}
		for _, listName := range cl.DelCommunity {
			if l := cfg.CommunityLists[listName]; l != nil {
				for _, c := range l.Values {
					out = out.withComm(c, false)
				}
			}
		}
		out.Metric += cl.SetPrepend
		return out, true
	}
	return Invalid(), false // implicit deny
}

func clauseMatches(cfg *config.Router, cl *config.RouteMapClause, rec Record, dstIP network.IP) bool {
	if cl.MatchPrefixList != "" {
		pl := cfg.PrefixLists[cl.MatchPrefixList]
		if pl == nil || !prefixListPermitsSlice(pl, rec.PrefixLen, dstIP) {
			return false
		}
	}
	if cl.MatchCommunity != "" {
		l := cfg.CommunityLists[cl.MatchCommunity]
		if l == nil {
			return false
		}
		any := false
		for _, c := range l.Values {
			if rec.HasComm(c) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// prefixListPermitsSlice evaluates a prefix list against the slice's
// destination IP and the record's prefix length — the concrete analogue
// of the encoder's hoisted test.
func prefixListPermitsSlice(pl *config.PrefixList, plen int, dstIP network.IP) bool {
	for _, e := range pl.Entries {
		if entryMatchesSlice(e, plen, dstIP) {
			return e.Action == config.Permit
		}
	}
	return false
}

func entryMatchesSlice(e config.PrefixListEntry, plen int, dstIP network.IP) bool {
	if dstIP.Mask(e.Prefix.Len) != e.Prefix.Addr {
		return false
	}
	lo, hi := e.Prefix.Len, e.Prefix.Len
	if e.Ge != 0 {
		lo, hi = e.Ge, 32
	}
	if e.Le != 0 {
		hi = e.Le
		if e.Ge == 0 {
			lo = e.Prefix.Len
		}
	}
	return plen >= lo && plen <= hi
}

func prefixActivated(nets []network.Prefix, p network.Prefix) bool {
	for _, n := range nets {
		if n.Covers(p) || n == p {
			return true
		}
	}
	return false
}

func staticAD(st *config.StaticRoute) int {
	return orDefault(st.AdminDistance, 1)
}

func bgpAD(cfg *config.Router, internal bool) int {
	if cfg.BGP != nil && cfg.BGP.AdminDistance != 0 {
		return cfg.BGP.AdminDistance
	}
	if internal {
		return 200
	}
	return 20
}

func routerIDOf(cfg *config.Router, n *network.Node) uint32 {
	if cfg.BGP != nil && cfg.BGP.RouterID != 0 {
		return uint32(cfg.BGP.RouterID)
	}
	return uint32(n.Index) + 1
}

func orDefault(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
