package simulator

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/testnets"
)

func TestWalkDetectsLoop(t *testing.T) {
	r1 := `
hostname R1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
!
ip route 172.20.0.0 255.255.0.0 10.0.12.2
!
`
	r2 := strings.ReplaceAll(strings.Replace(r1, "hostname R1", "hostname R2", 1),
		"10.0.12.1 255.255.255.252", "10.0.12.2 255.255.255.252")
	r2 = strings.Replace(r2, "ip route 172.20.0.0 255.255.0.0 10.0.12.2",
		"ip route 172.20.0.0 255.255.0.0 10.0.12.1", 1)
	net := testnets.MustBuild(r1, r2)
	s := New(net.Graph)
	dst := network.MustParseIP("172.20.5.5")
	res, err := s.Run(dst, NewEnvironment())
	if err != nil {
		t.Fatal(err)
	}
	w := s.Walk(res, "R1", config.Packet{DstIP: dst, Protocol: 6})
	if !w.Outcomes[Looped] {
		t.Fatalf("expected loop, got %v", w)
	}
	if w.Reaches() {
		t.Fatal("looped traffic must not reach")
	}
	if !strings.Contains(w.String(), "looped") {
		t.Fatalf("render %q", w.String())
	}
}

func TestMultihopIBGP(t *testing.T) {
	net := testnets.MultihopIBGP()
	s := New(net.Graph)
	dst := network.MustParseIP("8.8.8.8")
	ann := Announcement{Prefix: network.MustParsePrefix("8.8.8.0/24"), PathLen: 2}

	// With the session up, B2 learns the external route via iBGP and
	// forwards toward B1's loopback (resolved through the IGP).
	res, err := s.Run(dst, NewEnvironment().Announce("N1", ann))
	if err != nil {
		t.Fatal(err)
	}
	st := res.States["B2"]
	if !st.Best.Valid || !st.Best.Internal {
		t.Fatalf("B2 best %v", st.Best)
	}
	if len(st.Hops) != 1 || st.Hops[0].Node != "B1" {
		t.Fatalf("B2 hops %v", st.Hops)
	}
	w := s.Walk(res, "B2", config.Packet{DstIP: dst, Protocol: 6})
	if !w.Outcomes[Exited] {
		t.Fatalf("B2 should exit via N1: %v", w)
	}

	// Failing the only internal link kills the session transport, so the
	// iBGP route disappears.
	res2, err := s.Run(dst, NewEnvironment().Announce("N1", ann).Fail("B1", "B2"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.States["B2"].Best.Valid {
		t.Fatalf("session should be down: %v", res2.States["B2"].Best)
	}
}

func TestHopString(t *testing.T) {
	if (Hop{Node: "R1"}).String() != "R1" || (Hop{Ext: "N1"}).String() != "ext:N1" {
		t.Fatal("hop rendering")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		Delivered: "delivered", Exited: "exited", DroppedACL: "dropped-acl",
		DroppedNull: "dropped-null", Blackhole: "blackhole", Looped: "looped",
	} {
		if o.String() != want {
			t.Fatalf("%d: %q", o, o.String())
		}
	}
}
