package simulator

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/network"
)

// Announcement is one concrete eBGP advertisement from an external peer:
// the concrete instantiation of the symbolic environment record.
type Announcement struct {
	Prefix network.Prefix
	// PathLen is the advertised AS-path length.
	PathLen int
	// MED is the multi-exit discriminator.
	MED int
	// Communities attached to the advertisement.
	Communities []string
}

// Environment is one concrete control-plane environment: what each
// external neighbor announces (at most one announcement per peer,
// mirroring the one-record-per-edge slice model) and which links have
// failed.
type Environment struct {
	// Anns maps external peer name to its announcement; absent = silent.
	Anns map[string]*Announcement
	// FailedLinks holds canonical link ids (see LinkID / ExtLinkID).
	FailedLinks map[string]bool
}

// NewEnvironment returns an empty environment (no announcements, no
// failures).
func NewEnvironment() *Environment {
	return &Environment{Anns: map[string]*Announcement{}, FailedLinks: map[string]bool{}}
}

// Announce records an announcement from the named external peer.
func (e *Environment) Announce(peer string, a Announcement) *Environment {
	e.Anns[peer] = &a
	return e
}

// Fail marks the internal link between the two named routers as failed.
func (e *Environment) Fail(a, b string) *Environment {
	e.FailedLinks[LinkID(a, b)] = true
	return e
}

// FailExternal marks the link to the named external peer as failed.
func (e *Environment) FailExternal(router, ext string) *Environment {
	e.FailedLinks[ExtLinkID(router, ext)] = true
	return e
}

// NumFailed returns the number of failed links.
func (e *Environment) NumFailed() int { return len(e.FailedLinks) }

// LinkID returns the canonical id of an internal link between two routers.
func LinkID(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "~" + b
}

// ExtLinkID returns the canonical id of an external peering link.
func ExtLinkID(router, ext string) string { return router + "~ext~" + ext }

// String renders the environment for counterexample reports.
func (e *Environment) String() string {
	var parts []string
	peers := make([]string, 0, len(e.Anns))
	for p := range e.Anns {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		a := e.Anns[p]
		s := fmt.Sprintf("%s announces %v pathlen=%d", p, a.Prefix, a.PathLen)
		if a.MED != 0 {
			s += fmt.Sprintf(" med=%d", a.MED)
		}
		if len(a.Communities) > 0 {
			s += " comms=" + strings.Join(a.Communities, ",")
		}
		parts = append(parts, s)
	}
	links := make([]string, 0, len(e.FailedLinks))
	for l := range e.FailedLinks {
		links = append(links, l)
	}
	sort.Strings(links)
	for _, l := range links {
		parts = append(parts, "failed "+l)
	}
	if len(parts) == 0 {
		return "<empty environment>"
	}
	return strings.Join(parts, "; ")
}
