// Package simulator is a concrete control-plane simulator: given router
// configurations, one concrete environment (external announcements and
// failed links) and one concrete packet, it computes the stable state the
// control plane converges to and the resulting forwarding behavior.
//
// It plays the role Batfish plays in the paper: a per-environment oracle
// used to validate the symbolic encoder by differential testing, and a
// counterexample replayer. Its transfer functions (import/export filters,
// route selection) implement the same slice semantics as internal/core —
// one route record per protocol edge, restricted to the packet's
// destination.
package simulator

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
)

// Record is a concrete control-plane route record: the concrete analogue
// of the symbolic record of Figure 3.
type Record struct {
	Valid     bool
	PrefixLen int
	AD        int
	LocalPref int
	Metric    int
	MED       int
	NbrASN    uint32
	Internal  bool // learned via iBGP
	// FromClient marks routes learned from a route-reflector client,
	// which may be reflected onward to other iBGP peers.
	FromClient bool
	RID        uint32
	Comms      map[string]bool
	// Path lists routers the announcement traversed, newest last; used
	// for concrete loop suppression (the analogue of AS-path loop
	// detection).
	Path []string
	// Proto is the protocol that produced the record.
	Proto config.Protocol
	// Origin describes where the route entered: an interface (connected),
	// a static route, a neighbor or an external peer.
	Origin string
	// FromNode is the internal neighbor that supplied the record (""
	// for local origination or external imports).
	FromNode string
	// FromExt is the external peer that supplied the record ("" otherwise).
	FromExt string
	// Drop marks a null0 static route.
	Drop bool
}

// Invalid is the absent record.
func Invalid() Record { return Record{} }

// clone deep-copies the record.
func (r Record) clone() Record {
	c := r
	if r.Comms != nil {
		c.Comms = make(map[string]bool, len(r.Comms))
		for k, v := range r.Comms {
			c.Comms[k] = v
		}
	}
	c.Path = append([]string(nil), r.Path...)
	return c
}

// HasComm reports whether the community is attached.
func (r Record) HasComm(c string) bool { return r.Comms[c] }

// withComm returns a copy with the community added or removed.
func (r Record) withComm(c string, on bool) Record {
	out := r.clone()
	if out.Comms == nil {
		out.Comms = map[string]bool{}
	}
	if on {
		out.Comms[c] = true
	} else {
		delete(out.Comms, c)
	}
	return out
}

// equalRoute compares the fields that define a stable state (everything
// except provenance bookkeeping).
func equalRoute(a, b Record) bool {
	if a.Valid != b.Valid {
		return false
	}
	if !a.Valid {
		return true
	}
	if a.PrefixLen != b.PrefixLen || a.AD != b.AD || a.LocalPref != b.LocalPref ||
		a.Metric != b.Metric || a.MED != b.MED || a.Internal != b.Internal ||
		a.FromClient != b.FromClient ||
		a.RID != b.RID || a.NbrASN != b.NbrASN || a.FromNode != b.FromNode || a.FromExt != b.FromExt {
		return false
	}
	if len(a.Comms) != len(b.Comms) {
		return false
	}
	for k := range a.Comms {
		if !b.Comms[k] {
			return false
		}
	}
	return len(a.Path) == len(b.Path)
}

// CompareMode selects MED handling for route comparison.
type CompareMode struct {
	// AlwaysCompareMED compares MED regardless of neighboring AS.
	AlwaysCompareMED bool
}

// Better reports whether a is strictly preferred over b under the decision
// process shared with the symbolic encoder:
//
//  1. longer prefix (longest-prefix match),
//  2. lower administrative distance,
//  3. higher local preference,
//  4. lower metric (path length / IGP cost),
//  5. lower MED (same neighbor AS, unless AlwaysCompareMED),
//  6. eBGP over iBGP,
//  7. lower router id.
//
// Better is the cross-protocol (overall best) order. Within one protocol
// instance use BetterIntra, which skips administrative distance: inside
// BGP, local preference dominates even though iBGP routes carry a higher
// AD than eBGP routes. Both records must be valid.
func Better(a, b Record, mode CompareMode) bool {
	if a.PrefixLen != b.PrefixLen {
		return a.PrefixLen > b.PrefixLen
	}
	if a.AD != b.AD {
		return a.AD < b.AD
	}
	return betterAttrs(a, b, mode)
}

// BetterIntra is the within-protocol preference order: Better without the
// administrative-distance step.
func BetterIntra(a, b Record, mode CompareMode) bool {
	if a.PrefixLen != b.PrefixLen {
		return a.PrefixLen > b.PrefixLen
	}
	return betterAttrs(a, b, mode)
}

func betterAttrs(a, b Record, mode CompareMode) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	if (mode.AlwaysCompareMED || a.NbrASN == b.NbrASN) && a.MED != b.MED {
		return a.MED < b.MED
	}
	if a.Internal != b.Internal {
		return !a.Internal
	}
	return a.RID < b.RID
}

// EquallyGood reports whether neither record is strictly preferred when
// the router-id tiebreak is ignored: the multipath relaxation of §4.
func EquallyGood(a, b Record, mode CompareMode) bool {
	if !a.Valid || !b.Valid {
		return false
	}
	if a.PrefixLen != b.PrefixLen || a.AD != b.AD || a.LocalPref != b.LocalPref || a.Metric != b.Metric {
		return false
	}
	if (mode.AlwaysCompareMED || a.NbrASN == b.NbrASN) && a.MED != b.MED {
		return false
	}
	return a.Internal == b.Internal
}

// String renders the record compactly for debugging and counterexamples.
func (r Record) String() string {
	if !r.Valid {
		return "<no route>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v len=%d ad=%d lp=%d metric=%d", r.Proto, r.PrefixLen, r.AD, r.LocalPref, r.Metric)
	if r.MED != 0 {
		fmt.Fprintf(&b, " med=%d", r.MED)
	}
	if r.Internal {
		b.WriteString(" ibgp")
	}
	if len(r.Comms) > 0 {
		cs := make([]string, 0, len(r.Comms))
		for c := range r.Comms {
			cs = append(cs, c)
		}
		sort.Strings(cs)
		fmt.Fprintf(&b, " comms=%s", strings.Join(cs, ","))
	}
	if r.Origin != "" {
		fmt.Fprintf(&b, " via %s", r.Origin)
	}
	return b.String()
}
