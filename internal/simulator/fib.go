package simulator

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/network"
)

// Outcome classifies the fate of a packet along one forwarding path.
type Outcome int

// Walk outcomes.
const (
	// Delivered: the packet reached a router that delivers it onto a
	// connected subnet containing the destination.
	Delivered Outcome = iota
	// Exited: the packet left the network toward an external peer.
	Exited
	// DroppedACL: an access list discarded the packet.
	DroppedACL
	// DroppedNull: a null0 static route discarded the packet.
	DroppedNull
	// Blackhole: a router had no route (or an unresolvable one).
	Blackhole
	// Looped: the packet revisited a router.
	Looped
)

func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Exited:
		return "exited"
	case DroppedACL:
		return "dropped-acl"
	case DroppedNull:
		return "dropped-null"
	case Blackhole:
		return "blackhole"
	case Looped:
		return "looped"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// WalkResult aggregates the fates of a packet over every ECMP branch.
type WalkResult struct {
	// Outcomes is the set of outcomes over all branches.
	Outcomes map[Outcome]bool
	// Paths lists each branch as the sequence of visited routers, with a
	// final pseudo-element describing the fate.
	Paths [][]string
	// DeliveredAt collects routers that delivered the packet; ExitedVia
	// the external peers used.
	DeliveredAt map[string]bool
	ExitedVia   map[string]bool
	// MaxHops is the longest router path among delivered/exited branches.
	MaxHops int
}

// AllDelivered reports whether every branch delivered the packet
// internally.
func (w *WalkResult) AllDelivered() bool {
	return len(w.Outcomes) == 1 && w.Outcomes[Delivered]
}

// Reaches reports whether some branch delivered or exited.
func (w *WalkResult) Reaches() bool { return w.Outcomes[Delivered] || w.Outcomes[Exited] }

// String summarizes the walk.
func (w *WalkResult) String() string {
	var os []string
	for o := range w.Outcomes {
		os = append(os, o.String())
	}
	sort.Strings(os)
	return fmt.Sprintf("{%s, %d paths}", strings.Join(os, "|"), len(w.Paths))
}

// Walk traces a packet from a starting router through the data plane of a
// computed stable state, following every multipath branch, applying ACLs,
// and classifying each branch's fate.
func (s *Simulator) Walk(res *Result, from string, pkt config.Packet) *WalkResult {
	w := &WalkResult{
		Outcomes:    map[Outcome]bool{},
		DeliveredAt: map[string]bool{},
		ExitedVia:   map[string]bool{},
	}
	s.walk(res, from, pkt, []string{}, map[string]bool{}, w)
	return w
}

func (s *Simulator) walk(res *Result, at string, pkt config.Packet, path []string, visited map[string]bool, w *WalkResult) {
	if visited[at] {
		w.Outcomes[Looped] = true
		w.Paths = append(w.Paths, append(append([]string(nil), path...), at, "<loop>"))
		return
	}
	visited[at] = true
	defer delete(visited, at)
	path = append(path, at)

	st := res.States[at]
	cfg := s.G.Configs[at]
	finish := func(o Outcome, note string) {
		w.Outcomes[o] = true
		w.Paths = append(w.Paths, append(append([]string(nil), path...), note))
		if o == Delivered || o == Exited {
			if hops := len(path) - 1; hops > w.MaxHops {
				w.MaxHops = hops
			}
		}
	}
	switch {
	case st == nil || !st.Best.Valid:
		finish(Blackhole, "<no route>")
		return
	case st.DeliveredLocal:
		w.DeliveredAt[at] = true
		finish(Delivered, "<delivered>")
		return
	case st.DroppedNull:
		finish(DroppedNull, "<null0>")
		return
	case len(st.Hops) == 0:
		finish(Blackhole, "<unresolved>")
		return
	}

	for _, h := range st.Hops {
		if h.Ext != "" {
			// Egress ACL on the external-facing interface.
			iface := s.extIface(at, h.Ext)
			if !s.aclPermits(cfg, iface, false, pkt) {
				finish(DroppedACL, "<out-acl to "+h.Ext+">")
				continue
			}
			w.ExitedVia[h.Ext] = true
			finish(Exited, "<exit "+h.Ext+">")
			continue
		}
		link := s.G.Topo.FindLink(at, h.Node)
		var outIface, inIface string
		if link != nil {
			outIface = link.IfaceOf(s.G.Topo.Node(at))
			inIface = link.IfaceOf(s.G.Topo.Node(h.Node))
		}
		if !s.aclPermits(cfg, outIface, false, pkt) {
			finish(DroppedACL, "<out-acl to "+h.Node+">")
			continue
		}
		if !s.aclPermits(s.G.Configs[h.Node], inIface, true, pkt) {
			finish(DroppedACL, "<in-acl at "+h.Node+">")
			continue
		}
		s.walk(res, h.Node, pkt, path, visited, w)
	}
}

// extIface returns the interface name a router uses toward an external
// peer.
func (s *Simulator) extIface(router, ext string) string {
	for _, e := range s.G.Topo.ExternalsOf(s.G.Topo.Node(router)) {
		if e.Name == ext {
			return e.Iface
		}
	}
	return ""
}

// aclPermits applies the interface's in/out ACL to the packet (no ACL =
// permit).
func (s *Simulator) aclPermits(cfg *config.Router, ifaceName string, inbound bool, pkt config.Packet) bool {
	if ifaceName == "" {
		return true
	}
	iface := cfg.Iface(ifaceName)
	if iface == nil {
		return true
	}
	name := iface.OutACL
	if inbound {
		name = iface.InACL
	}
	if name == "" {
		return true
	}
	acl := cfg.ACLs[name]
	if acl == nil {
		return true
	}
	return acl.Permits(pkt)
}

// CanReachIP runs a slice for the address and reports whether the packet
// from the router reaches it.
func (s *Simulator) CanReachIP(from string, dst network.IP, env *Environment) (bool, error) {
	res, err := s.Run(dst, env)
	if err != nil {
		return false, err
	}
	w := s.Walk(res, from, config.Packet{DstIP: dst, Protocol: 6, DstPort: 179, SrcPort: 12345})
	return w.Reaches(), nil
}

// FIBEntry renders one router's installed route for debugging.
func FIBEntry(res *Result, router string) string {
	st := res.States[router]
	if st == nil || !st.Best.Valid {
		return router + ": <no route>"
	}
	hops := make([]string, 0, len(st.Hops))
	for _, h := range st.Hops {
		hops = append(hops, h.String())
	}
	extra := ""
	if st.DeliveredLocal {
		extra = " (local)"
	}
	if st.DroppedNull {
		extra = " (null0)"
	}
	return fmt.Sprintf("%s: %v -> [%s]%s", router, st.Best, strings.Join(hops, " "), extra)
}
