package simulator

import (
	"testing"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/testnets"
)

func mustRun(t *testing.T, s *Simulator, dst network.IP, env *Environment) *Result {
	t.Helper()
	res, err := s.Run(dst, env)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return res
}

func pkt(dst network.IP) config.Packet {
	return config.Packet{DstIP: dst, Protocol: 6, SrcPort: 1234, DstPort: 80}
}

func TestOSPFChainReachability(t *testing.T) {
	net := testnets.OSPFChain(4)
	s := New(net.Graph)
	dst := testnets.StubIP(4)
	res := mustRun(t, s, dst, NewEnvironment())

	// Every router should reach R4's stub.
	for _, from := range []string{"R1", "R2", "R3"} {
		w := s.Walk(res, from, pkt(dst))
		if !w.AllDelivered() {
			t.Fatalf("%s -> %v: %v (fib: %s)", from, dst, w, FIBEntry(res, from))
		}
	}
	// R1's path is R1-R2-R3-R4: 3 hops.
	w := s.Walk(res, "R1", pkt(dst))
	if w.MaxHops != 3 {
		t.Fatalf("hops = %d, want 3", w.MaxHops)
	}
	// Metric at R1: 3 links with cost 1 each... the stub is a /24 with
	// metric accumulated over 3 hops.
	best := res.States["R1"].Best
	if best.Proto != config.OSPF || best.Metric != 3 {
		t.Fatalf("R1 best %v", best)
	}
	// R4 delivers locally via connected.
	if !res.States["R4"].DeliveredLocal {
		t.Fatal("R4 should deliver locally")
	}
}

func TestOSPFChainLinkFailure(t *testing.T) {
	net := testnets.OSPFChain(4)
	s := New(net.Graph)
	dst := testnets.StubIP(4)
	env := NewEnvironment().Fail("R2", "R3")
	res := mustRun(t, s, dst, env)
	w := s.Walk(res, "R1", pkt(dst))
	if w.Reaches() {
		t.Fatalf("chain cut but still reaches: %v", w)
	}
	if !w.Outcomes[Blackhole] {
		t.Fatalf("expected blackhole, got %v", w)
	}
}

func TestRIPChain(t *testing.T) {
	net := testnets.RIPChain(5)
	s := New(net.Graph)
	dst := testnets.StubIP(5)
	res := mustRun(t, s, dst, NewEnvironment())
	w := s.Walk(res, "R1", pkt(dst))
	if !w.AllDelivered() || w.MaxHops != 4 {
		t.Fatalf("walk %v hops=%d", w, w.MaxHops)
	}
	if res.States["R1"].Best.Proto != config.RIP {
		t.Fatalf("R1 best %v", res.States["R1"].Best)
	}
}

func TestRIPInfinity(t *testing.T) {
	// RIP counts to 16: an 18-router chain leaves the far end unreachable.
	net := testnets.RIPChain(18)
	s := New(net.Graph)
	dst := testnets.StubIP(18)
	res := mustRun(t, s, dst, NewEnvironment())
	if res.States["R1"].Best.Valid {
		t.Fatalf("R1 has a route beyond RIP infinity: %v", res.States["R1"].Best)
	}
	if !res.States["R5"].Best.Valid {
		t.Fatalf("R5 should still have a route")
	}
}

func TestEBGPTriangle(t *testing.T) {
	net := testnets.EBGPTriangle()
	s := New(net.Graph)
	dst := testnets.StubIP(3)
	res := mustRun(t, s, dst, NewEnvironment())
	// R1 reaches R3's stub directly (1 AS hop beats 2).
	w := s.Walk(res, "R1", pkt(dst))
	if !w.AllDelivered() || w.MaxHops != 1 {
		t.Fatalf("walk %v hops=%d fib=%s", w, w.MaxHops, FIBEntry(res, "R1"))
	}
	best := res.States["R1"].Best
	if best.Proto != config.BGP || best.Metric != 1 || best.FromNode != "R3" {
		t.Fatalf("R1 best %v", best)
	}
	// Failing R1-R3 reroutes through R2.
	env := NewEnvironment().Fail("R1", "R3")
	res2 := mustRun(t, s, dst, env)
	w2 := s.Walk(res2, "R1", pkt(dst))
	if !w2.AllDelivered() || w2.MaxHops != 2 {
		t.Fatalf("after failure: %v hops=%d", w2, w2.MaxHops)
	}
	if res2.States["R1"].Best.FromNode != "R2" {
		t.Fatalf("detour best %v", res2.States["R1"].Best)
	}
}

func TestFigure2EgressPreference(t *testing.T) {
	net := testnets.Figure2()
	s := New(net.Graph)
	ext := network.MustParseIP("8.8.8.8")
	extPfx := network.MustParsePrefix("8.8.8.0/24")

	// All three neighbors announce: R3 must exit via N1 (local-pref 120
	// at R1 beats 110 via N2 and 100 via N3) — the paper's walkthrough.
	env := NewEnvironment().
		Announce("N1", Announcement{Prefix: extPfx, PathLen: 3}).
		Announce("N2", Announcement{Prefix: extPfx, PathLen: 3}).
		Announce("N3", Announcement{Prefix: extPfx, PathLen: 3})
	res := mustRun(t, s, ext, env)
	w := s.Walk(res, "R3", pkt(ext))
	if !w.Outcomes[Exited] || !w.ExitedVia["N1"] || len(w.ExitedVia) != 1 {
		t.Fatalf("R3 egress %v via %v (R3 fib %s; R1 fib %s)", w, w.ExitedVia, FIBEntry(res, "R3"), FIBEntry(res, "R1"))
	}

	// Only N2 and N3 announce: egress via N2 (lp 110 > 100).
	env2 := NewEnvironment().
		Announce("N2", Announcement{Prefix: extPfx, PathLen: 3}).
		Announce("N3", Announcement{Prefix: extPfx, PathLen: 3})
	res2 := mustRun(t, s, ext, env2)
	w2 := s.Walk(res2, "R3", pkt(ext))
	if !w2.Outcomes[Exited] || !w2.ExitedVia["N2"] || len(w2.ExitedVia) != 1 {
		t.Fatalf("R3 egress %v via %v", w2, w2.ExitedVia)
	}

	// Nobody announces: no route at R3.
	res3 := mustRun(t, s, ext, NewEnvironment())
	w3 := s.Walk(res3, "R3", pkt(ext))
	if w3.Reaches() {
		t.Fatalf("unexpected reachability: %v", w3)
	}
}

func TestFigure2InternalReachability(t *testing.T) {
	net := testnets.Figure2()
	s := New(net.Graph)
	// R3's subnet S3 is reachable from R1 and R2 via OSPF.
	dst := network.MustParseIP("10.3.3.1")
	res := mustRun(t, s, dst, NewEnvironment())
	for _, from := range []string{"R1", "R2"} {
		w := s.Walk(res, from, pkt(dst))
		if !w.AllDelivered() {
			t.Fatalf("%s: %v", from, w)
		}
	}
	// Exports to external neighbors carry S3 (OSPF redistributed into
	// BGP, then exported).
	for _, n := range []string{"N1", "N2", "N3"} {
		if !res.ExportsToExt[n].Valid {
			t.Fatalf("S3 not exported to %s", n)
		}
	}
}

func TestACLSquareMultipathInconsistency(t *testing.T) {
	net := testnets.ACLSquare()
	s := New(net.Graph)
	dst := network.MustParseIP("10.50.0.1")
	res := mustRun(t, s, dst, NewEnvironment())
	// R1 load-balances to R2 and R3.
	if len(res.States["R1"].Hops) != 2 {
		t.Fatalf("R1 hops %v", res.States["R1"].Hops)
	}
	w := s.Walk(res, "R1", pkt(dst))
	if !w.Outcomes[Delivered] || !w.Outcomes[DroppedACL] {
		t.Fatalf("want split fate, got %v", w)
	}
	// Other traffic is not dropped.
	other := network.MustParseIP("10.0.25.2")
	res2 := mustRun(t, s, other, NewEnvironment())
	w2 := s.Walk(res2, "R1", pkt(other))
	if w2.Outcomes[DroppedACL] {
		t.Fatalf("unrelated traffic dropped: %v", w2)
	}
}

func TestStaticAndNull(t *testing.T) {
	net := testnets.StaticNull()
	s := New(net.Graph)
	dst := network.MustParseIP("10.100.2.1")
	res := mustRun(t, s, dst, NewEnvironment())
	if res.States["R1"].Best.Proto != config.Static {
		t.Fatalf("R1 best %v", res.States["R1"].Best)
	}
	w := s.Walk(res, "R1", pkt(dst))
	if !w.AllDelivered() {
		t.Fatalf("static route walk %v", w)
	}
	// Null0 blackhole.
	drop := network.MustParseIP("172.16.9.9")
	res2 := mustRun(t, s, drop, NewEnvironment())
	w2 := s.Walk(res2, "R1", pkt(drop))
	if !w2.Outcomes[DroppedNull] {
		t.Fatalf("null0 walk %v", w2)
	}
	// Static next hop dies with the link.
	env := NewEnvironment().Fail("R1", "R2")
	res3 := mustRun(t, s, dst, env)
	if res3.States["R1"].Best.Valid {
		t.Fatalf("static survived link failure: %v", res3.States["R1"].Best)
	}
}

func TestHijack(t *testing.T) {
	mgmt := network.MustParseIP("192.168.50.1")
	hijack := Announcement{Prefix: network.MustParsePrefix("192.168.50.1/32"), PathLen: 1}

	// Unfiltered: the external announcement diverts R2's traffic.
	open := testnets.Hijackable(false)
	s := New(open.Graph)
	res := mustRun(t, s, mgmt, NewEnvironment().Announce("N", hijack))
	w := s.Walk(res, "R2", pkt(mgmt))
	if !w.Outcomes[Exited] || w.Outcomes[Delivered] {
		t.Fatalf("expected hijack, got %v (fib %s)", w, FIBEntry(res, "R2"))
	}
	// Without the announcement, management is reachable.
	resQuiet := mustRun(t, s, mgmt, NewEnvironment())
	if !s.Walk(resQuiet, "R2", pkt(mgmt)).AllDelivered() {
		t.Fatal("management unreachable even without hijack")
	}

	// Filtered: the prefix list blocks the hijack.
	closed := testnets.Hijackable(true)
	s2 := New(closed.Graph)
	res2 := mustRun(t, s2, mgmt, NewEnvironment().Announce("N", hijack))
	w2 := s2.Walk(res2, "R2", pkt(mgmt))
	if !w2.AllDelivered() {
		t.Fatalf("filter did not stop hijack: %v (fib %s)", w2, FIBEntry(res2, "R2"))
	}
}

func TestEnvironmentString(t *testing.T) {
	env := NewEnvironment().
		Announce("N1", Announcement{Prefix: network.MustParsePrefix("8.8.8.0/24"), PathLen: 2, MED: 5, Communities: []string{"65001:1"}}).
		Fail("R1", "R2")
	s := env.String()
	if s == "" || s == "<empty environment>" {
		t.Fatalf("env string %q", s)
	}
	if NewEnvironment().String() != "<empty environment>" {
		t.Fatal("empty env string")
	}
}

func TestRecordString(t *testing.T) {
	if Invalid().String() != "<no route>" {
		t.Fatal("invalid record string")
	}
	r := Record{Valid: true, Proto: config.BGP, PrefixLen: 24, AD: 20, LocalPref: 100,
		Metric: 2, MED: 7, Internal: true, Comms: map[string]bool{"65001:1": true}, Origin: "x"}
	if r.String() == "" {
		t.Fatal("record string")
	}
}

func TestCompareOrders(t *testing.T) {
	mode := CompareMode{}
	base := Record{Valid: true, PrefixLen: 24, AD: 20, LocalPref: 100, Metric: 2, RID: 5}
	longer := base
	longer.PrefixLen = 32
	if !Better(longer, base, mode) || !BetterIntra(longer, base, mode) {
		t.Fatal("longest prefix first")
	}
	lowAD := base
	lowAD.AD = 1
	lowAD.LocalPref = 1 // worse on later keys
	if !Better(lowAD, base, mode) {
		t.Fatal("AD should dominate cross-protocol order")
	}
	if BetterIntra(lowAD, base, mode) {
		t.Fatal("AD must not be compared within a protocol")
	}
	hiLP := base
	hiLP.LocalPref = 200
	hiLP.Metric = 99
	if !BetterIntra(hiLP, base, mode) {
		t.Fatal("local pref beats metric")
	}
	ebgp := base
	ibgp := base
	ibgp.Internal = true
	ibgp.RID = 1
	if !BetterIntra(ebgp, ibgp, mode) {
		t.Fatal("eBGP over iBGP")
	}
	// MED only compared for the same neighbor AS by default.
	m1 := base
	m1.NbrASN, m1.MED = 1, 10
	m2 := base
	m2.NbrASN, m2.MED = 2, 5
	if BetterIntra(m2, m1, mode) != (m2.RID < m1.RID) {
		t.Fatal("MED compared across different ASes")
	}
	m2.NbrASN = 1
	if !BetterIntra(m2, m1, mode) {
		t.Fatal("MED not compared for same AS")
	}
	m2.NbrASN = 2
	if !BetterIntra(m2, m1, CompareMode{AlwaysCompareMED: true}) {
		t.Fatal("always-compare-med ignored")
	}
	// EquallyGood ignores rid.
	r2 := base
	r2.RID = 99
	if !EquallyGood(base, r2, mode) {
		t.Fatal("equally good with different rid")
	}
	if EquallyGood(base, longer, mode) {
		t.Fatal("different plen equally good")
	}
}
