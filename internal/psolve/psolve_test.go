package psolve

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/sat"
	"repro/internal/sat/drat"
)

// randomCNF loads a random 3-SAT instance near the phase transition into
// a fresh solver with proof logging on.
func randomCNF(rng *rand.Rand, nv int, ratio float64) *sat.Solver {
	s := sat.New()
	s.EnableProof()
	vars := make([]sat.Var, nv)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	n := int(ratio * float64(nv))
	for i := 0; i < n; i++ {
		lits := make([]sat.Lit, 0, 3)
		for len(lits) < 3 {
			lits = append(lits, sat.MkLit(vars[rng.Intn(nv)], rng.Intn(2) == 0))
		}
		s.AddClause(lits...)
	}
	return s
}

// pigeonhole loads PHP(n) — n+1 pigeons, n holes — and returns its
// variables (the cube split candidates). Refuting it needs real search,
// so it keeps many racers busy at once.
func pigeonhole(s *sat.Solver, n int) []sat.Var {
	grid := make([][]sat.Var, n+1)
	var all []sat.Var
	for p := range grid {
		grid[p] = make([]sat.Var, n)
		for h := range grid[p] {
			grid[p][h] = s.NewVar()
			all = append(all, grid[p][h])
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]sat.Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = sat.MkLit(grid[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(sat.MkLit(grid[p1][h], true), sat.MkLit(grid[p2][h], true))
			}
		}
	}
	return all
}

// allVars returns every variable of the solver, for cube candidates.
func allVars(s *sat.Solver) []sat.Var {
	vars := make([]sat.Var, s.NumVars())
	for i := range vars {
		vars[i] = sat.Var(i)
	}
	return vars
}

// TestPortfolioParityRandom races random instances and requires the
// adopted verdict to match a sequential reference, with every UNSAT
// verdict carrying a checkable proof.
func TestPortfolioParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		template := randomCNF(rng, 10+rng.Intn(10), 4.8)
		ref := template.Clone()
		want, _ := ref.SolveLimited()
		out, err := Solve(context.Background(), template,
			Options{Mode: ModePortfolio, Workers: 4, Seed: int64(i)})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if out.Status != want {
			t.Fatalf("instance %d: portfolio says %v, sequential says %v", i, out.Status, want)
		}
		if out.Status == sat.Unsat {
			if out.Proof == nil {
				t.Fatalf("instance %d: UNSAT without proof", i)
			}
			if _, err := drat.Check(out.Proof); err != nil {
				t.Fatalf("instance %d: winner's proof rejected: %v", i, err)
			}
		}
		if out.Portfolio == nil || out.Portfolio.Workers != 4 {
			t.Fatalf("instance %d: missing or wrong portfolio report: %+v", i, out.Portfolio)
		}
	}
}

// TestCubesParityAndStitchedProof runs cube-and-conquer on random
// instances: verdicts must match the sequential reference, and an
// all-UNSAT fan-out must yield a stitched proof the sequential DRAT
// checker accepts.
func TestCubesParityAndStitchedProof(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	stitched := 0
	for i := 0; i < 30; i++ {
		template := randomCNF(rng, 12+rng.Intn(8), 4.8)
		ref := template.Clone()
		want, _ := ref.SolveLimited()
		out, err := Solve(context.Background(), template,
			Options{Mode: ModeCubes, Workers: 4, Candidates: allVars(template),
				ProbeConflicts: 5})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if out.Status != want {
			t.Fatalf("instance %d: cubes say %v, sequential says %v", i, out.Status, want)
		}
		if out.Status == sat.Unsat {
			if out.Proof == nil {
				t.Fatalf("instance %d: UNSAT without proof", i)
			}
			if _, err := drat.Check(out.Proof); err != nil {
				t.Fatalf("instance %d: stitched proof rejected: %v", i, err)
			}
			if out.Cube != nil && !out.Cube.ProbeDecided {
				stitched++
			}
		}
	}
	if stitched == 0 {
		t.Fatal("no run exercised proof stitching (every UNSAT was probe-decided); lower ProbeConflicts")
	}
}

// TestWorkersOneDeterminism is the engine-level determinism pin: with one
// worker both strategies degenerate to a single vanilla clone whose
// stats and proof are bit-identical to a sequential solve of a clone.
func TestWorkersOneDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		template := randomCNF(rng, 14, 5.0)
		ref := template.Clone()
		want, _ := ref.SolveLimited()
		for _, mode := range []string{ModePortfolio, ModeCubes} {
			out, err := Solve(context.Background(), template,
				Options{Mode: mode, Workers: 1, Seed: 42, Candidates: allVars(template)})
			if err != nil {
				t.Fatalf("instance %d mode %s: %v", i, mode, err)
			}
			if out.Status != want {
				t.Fatalf("instance %d mode %s: got %v, want %v", i, mode, out.Status, want)
			}
			if out.Stats != ref.Stats {
				t.Fatalf("instance %d mode %s: stats diverge from sequential:\n got %+v\nwant %+v",
					i, mode, out.Stats, ref.Stats)
			}
			if want == sat.Unsat && !reflect.DeepEqual(out.Proof.Steps(), ref.Proof().Steps()) {
				t.Fatalf("instance %d mode %s: proof diverges from sequential", i, mode)
			}
		}
	}
}

// TestRepeatedRacesOneTemplate re-races the same template many times:
// the Interrupt/ResetInterrupt cycle of each round must leave every
// solver reusable, and the template must still answer sequentially at
// the end.
func TestRepeatedRacesOneTemplate(t *testing.T) {
	template := sat.New()
	template.EnableProof()
	pigeonhole(template, 4)
	for round := 0; round < 10; round++ {
		out, err := Solve(context.Background(), template,
			Options{Mode: ModePortfolio, Workers: 8, Seed: int64(round)})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if out.Status != sat.Unsat {
			t.Fatalf("round %d: PHP(4) = %v, want unsat", round, out.Status)
		}
		if _, err := drat.Check(out.Proof); err != nil {
			t.Fatalf("round %d: proof rejected: %v", round, err)
		}
	}
	if st := template.Solve(); st != sat.Unsat {
		t.Fatalf("template no longer usable after races: %v", st)
	}
}

// TestCubesContextCancellation cancels a cube fan-out on a hard instance
// mid-search (mirroring a service job timeout) and requires the context
// error back, with the template left reusable.
func TestCubesContextCancellation(t *testing.T) {
	template := sat.New()
	template.EnableProof()
	cands := pigeonhole(template, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	out, err := Solve(ctx, template,
		Options{Mode: ModeCubes, Workers: 4, Candidates: cands})
	if err == nil {
		t.Fatalf("PHP(9) decided under a 50ms deadline: %v", out.Status)
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	// The template was never interrupted and must still search.
	template.MaxConflicts = template.Stats.Conflicts + 10
	if st, err := template.SolveLimited(); err != sat.ErrBudget {
		t.Fatalf("template unusable after cancelled fan-out: %v / %v", st, err)
	}
}

// TestSerialScheduleTerminates runs both strategies on a degenerate
// one-at-a-time scheduler — the worst case of the service pool's inline
// fallback. Losers must notice the winner's interrupt even though they
// start after it finished, so the run terminates with the right verdict.
func TestSerialScheduleTerminates(t *testing.T) {
	serial := func(tasks []func()) {
		for _, task := range tasks {
			task()
		}
	}
	template := sat.New()
	template.EnableProof()
	cands := pigeonhole(template, 4)
	for _, mode := range []string{ModePortfolio, ModeCubes} {
		out, err := Solve(context.Background(), template,
			Options{Mode: mode, Workers: 4, Candidates: cands, ProbeConflicts: 5,
				Schedule: serial})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if out.Status != sat.Unsat {
			t.Fatalf("mode %s: PHP(4) = %v, want unsat", mode, out.Status)
		}
		if _, err := drat.Check(out.Proof); err != nil {
			t.Fatalf("mode %s: proof rejected: %v", mode, err)
		}
	}
}

// TestNoGoroutineLeak runs decided, cancelled and raced solves and then
// requires the goroutine count to settle back to the baseline: every
// racer and cancellation watcher must be joined by the time Solve
// returns.
func TestNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5; i++ {
		template := randomCNF(rng, 14, 5.0)
		if _, err := Solve(context.Background(), template,
			Options{Mode: ModePortfolio, Workers: 8, Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := Solve(context.Background(), template,
			Options{Mode: ModeCubes, Workers: 4, Candidates: allVars(template),
				ProbeConflicts: 5}); err != nil {
			t.Fatal(err)
		}
	}
	hard := sat.New()
	cands := pigeonhole(hard, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	_, err := Solve(ctx, hard, Options{Mode: ModeCubes, Workers: 8, Candidates: cands})
	cancel()
	if err == nil {
		t.Fatal("PHP(9) decided under a 20ms deadline")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestModeValidation pins the mode vocabulary.
func TestModeValidation(t *testing.T) {
	for _, m := range []string{"", ModeOff, ModePortfolio, ModeCubes, ModeAuto} {
		if !ValidMode(m) {
			t.Errorf("ValidMode(%q) = false", m)
		}
	}
	if ValidMode("racing") {
		t.Error(`ValidMode("racing") = true`)
	}
	if Enabled(ModeOff) || Enabled("") || !Enabled(ModeAuto) {
		t.Error("Enabled misclassifies modes")
	}
	if _, err := Solve(context.Background(), sat.New(), Options{Mode: ModeOff}); err == nil {
		t.Error("Solve accepted a non-parallel mode")
	}
}
