// Package psolve is the parallel solve engine: it answers one SAT query
// with many cores without changing what the answer means. Two strategies
// are provided. Portfolio mode races N differently-configured clones of
// one template solver and adopts the first verdict, cancelling the losers
// through the solver's Interrupt plumbing. Cube-and-conquer splits the
// search space on high-activity environment variables found by a short
// probing run and solves the cubes concurrently; a SAT cube yields a
// model directly, while an all-UNSAT fan-out is re-certified by stitching
// the per-cube DRAT traces into one checkable proof.
//
// Both strategies start from sat.Solver.Clone, so the template solver is
// never mutated by a parallel run and stays reusable for incremental
// sessions. With Workers == 1 each strategy degenerates to a single
// vanilla clone whose search, stats and proof are byte-identical to a
// sequential Solve on the template — the determinism pin in core holds
// the engine to that.
package psolve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/sat"
)

// Strategy names accepted by core.Options.Parallel and the -parallel
// flags.
const (
	ModeOff       = "off"
	ModePortfolio = "portfolio"
	ModeCubes     = "cubes"
	ModeAuto      = "auto"
)

// ValidMode reports whether m names a known strategy ("" counts as off).
func ValidMode(m string) bool {
	switch m {
	case "", ModeOff, ModePortfolio, ModeCubes, ModeAuto:
		return true
	}
	return false
}

// Enabled reports whether m selects a parallel strategy.
func Enabled(m string) bool {
	switch m {
	case ModePortfolio, ModeCubes, ModeAuto:
		return true
	}
	return false
}

// Event kinds passed to Options.OnEvent, mirrored onto the service flight
// recorder.
const (
	EventPortfolio = "solver.portfolio"
	EventCube      = "solver.cube"
)

// ErrNoVerdict is returned when every racer was cancelled or exhausted
// its budget before reaching a verdict.
var ErrNoVerdict = errors.New("psolve: no racer reached a verdict")

// Options configures one parallel solve.
type Options struct {
	// Mode is the strategy: ModePortfolio, ModeCubes or ModeAuto. Auto
	// picks cubes when the query has enough split candidates and workers,
	// portfolio otherwise.
	Mode string
	// Workers bounds the number of concurrently racing solvers; <=0 means
	// runtime.NumCPU().
	Workers int
	// Seed diversifies the portfolio configurations deterministically:
	// equal seeds produce equal config tables.
	Seed int64
	// Candidates are the variables cube-and-conquer may split on —
	// environment and failure variables in the Minesweeper encoding. The
	// probing run ranks them by VSIDS activity.
	Candidates []sat.Var
	// CubeVars caps the number of split variables (2^CubeVars cubes);
	// <=0 derives it from Workers.
	CubeVars int
	// ProbeConflicts is the conflict budget of the cube lookahead run;
	// <=0 means 2000.
	ProbeConflicts int64
	// Schedule, when set, runs a batch of tasks on a shared worker pool
	// and returns when all have finished (service.Engine hands its helper
	// pool here so job- and solver-level parallelism share cores). Nil
	// runs tasks on fresh goroutines.
	Schedule func(tasks []func())
	// OnEvent, when set, receives flight-recorder events (EventPortfolio,
	// EventCube) describing how the verdict was reached.
	OnEvent func(kind string, fields map[string]any)
}

// PortfolioReport describes a decided portfolio race.
type PortfolioReport struct {
	Workers      int    `json:"workers"`
	WinnerID     int    `json:"winner_id"`
	WinnerConfig string `json:"winner_config"`
	// CancelledElapsed is the time between the winner's verdict and the
	// last loser acknowledging cancellation.
	CancelledElapsed time.Duration `json:"cancelled_elapsed"`
}

// CubeReport describes a decided cube-and-conquer run.
type CubeReport struct {
	Workers    int       `json:"workers"`
	SplitVars  []sat.Var `json:"split_vars"`
	Cubes      int       `json:"cubes"`
	UnsatCubes int       `json:"unsat_cubes"`
	SatCube    int       `json:"sat_cube"` // index of the satisfying cube, -1 otherwise
	// ProbeDecided is set when the lookahead run already reached the
	// verdict, so no cubes were spawned.
	ProbeDecided bool `json:"probe_decided"`
}

// TaskWork is one participating solver's work delta — the cost ledger's
// view of a parallel solve. Stats and DBBytes are deltas against the
// template's counters at solve start, so they price exactly this solve's
// search, not prior incremental work. Adopted marks the tasks whose
// deltas the Outcome.Stats adopted: the winner of a portfolio race (the
// losers' rows price the wasted work), probe plus every ran cube for a
// cube fan-out (nothing is wasted there — every cube's refutation is
// part of the verdict).
type TaskWork struct {
	// ID is the portfolio config id or cube index; -1 for the cube probe.
	ID int `json:"id"`
	// Label names the task: a portfolio config name, "probe", or "cube:N".
	Label string `json:"label"`
	// Stats is the task's search-work delta.
	Stats sat.Stats `json:"stats"`
	// DBBytes is the task's clause-database growth (can be negative when
	// simplification shrank the inherited database).
	DBBytes int64 `json:"db_bytes"`
	// Adopted reports whether the delta is part of Outcome.Stats.
	Adopted bool `json:"adopted"`
}

// statsDelta returns after - base as a fresh Stats (counters subtract,
// MaxLevel takes after's maximum).
func statsDelta(base, after sat.Stats) sat.Stats {
	var d sat.Stats
	statsAdd(&d, base, after)
	return d
}

// taskWork builds one task's ledger row against the template baseline.
func taskWork(id int, label string, s *sat.Solver, baseStats sat.Stats, baseDB int64, adopted bool) TaskWork {
	return TaskWork{
		ID:      id,
		Label:   label,
		Stats:   statsDelta(baseStats, s.Stats),
		DBBytes: s.ClauseDBBytes() - baseDB,
		Adopted: adopted,
	}
}

// OriginData is one participating solver's origin tables, for
// hot-constraint profile construction.
type OriginData struct {
	Sets   [][]int32
	Counts []sat.OriginCounts
}

// Outcome is the adopted result of a parallel solve.
type Outcome struct {
	Status sat.Status
	// Winner holds the satisfying assignment after Sat (read it through
	// sat.Solver.ValueLit); it is the deciding solver for portfolio runs
	// and the deciding cube or probe for cube runs.
	Winner *sat.Solver
	// Stats is the adopted work accounting: the winner's counters for a
	// portfolio race (the losers' work bought nothing the verdict uses),
	// the summed counters of probe and cubes for a cube run.
	Stats sat.Stats
	// Proof is the adopted certificate: the winner's own trace for
	// portfolio and probe verdicts, the stitched multi-cube trace for an
	// all-UNSAT fan-out. Nil when the template records no proof. Origin
	// ids on stitched steps are re-interned into the template solver's
	// tables, so the template resolves them for blame.
	Proof *sat.Proof
	// OriginBases resolves a proof step's origin id to base origin ids,
	// against whichever solver's tables the adopted proof refers to.
	OriginBases func(id int32) []int32
	// Origins lists the participating solvers' origin tables (winner only
	// for portfolio) for profile construction; nil when tracking is off.
	Origins []OriginData
	// Tasks lists every participating solver's work delta for cost
	// attribution, winners and losers alike; the adopted rows sum to the
	// solve's Stats delta, the rest is the race's wasted work.
	Tasks []TaskWork

	Portfolio *PortfolioReport
	Cube      *CubeReport
}

// Solve answers the template's formula under the given assumptions with
// the selected parallel strategy. The template itself is only read (and
// backtracked to the root level, which any Solve call does anyway); all
// search happens on clones.
func Solve(ctx context.Context, template *sat.Solver, opts Options, assumptions ...sat.Lit) (*Outcome, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.ProbeConflicts <= 0 {
		opts.ProbeConflicts = 2000
	}
	mode := opts.Mode
	if mode == ModeAuto {
		if len(opts.Candidates) >= 2 && opts.Workers >= 4 {
			mode = ModeCubes
		} else {
			mode = ModePortfolio
		}
	}
	switch mode {
	case ModePortfolio:
		return runPortfolio(ctx, template, opts, assumptions)
	case ModeCubes:
		return runCubes(ctx, template, opts, assumptions)
	default:
		return nil, errors.New("psolve: mode " + opts.Mode + " is not a parallel strategy")
	}
}

// runTasks executes the batch on the configured pool (or fresh
// goroutines) and returns when every task has finished.
func runTasks(schedule func([]func()), tasks []func()) {
	if schedule != nil {
		schedule(tasks)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		go func() {
			defer wg.Done()
			t()
		}()
	}
	wg.Wait()
}

// watchCancel interrupts every solver when ctx is cancelled. The returned
// stop function must be called after the solving tasks have been joined;
// it does not wait for the watcher goroutine, which exits promptly.
func watchCancel(ctx context.Context, solvers []*sat.Solver) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			for _, s := range solvers {
				s.Interrupt()
			}
		case <-done:
		}
	}()
	return func() { close(done) }
}

// decisive reports whether a status is a verdict.
func decisive(st sat.Status) bool { return st == sat.Sat || st == sat.Unsat }

// proofPrefixLen returns the template's recorded step count, the split
// point between the shared prefix and the per-clone tails.
func proofPrefixLen(template *sat.Solver) int {
	if p := template.Proof(); p != nil {
		return p.NumSteps()
	}
	return 0
}

// originData snapshots one solver's origin tables.
func originData(s *sat.Solver) (OriginData, bool) {
	sets, counts := s.OriginSnapshot()
	if sets == nil {
		return OriginData{}, false
	}
	return OriginData{Sets: sets, Counts: counts}, true
}

// originDelta snapshots one solver's origin tables with the template's
// base counts subtracted (origin-set ids are append-only, so the base
// tables are a prefix of every clone's).
func originDelta(s *sat.Solver, baseCounts []sat.OriginCounts) (OriginData, bool) {
	od, ok := originData(s)
	if !ok {
		return od, false
	}
	for i := range baseCounts {
		if i >= len(od.Counts) {
			break
		}
		od.Counts[i].Conflicts -= baseCounts[i].Conflicts
		od.Counts[i].Propagations -= baseCounts[i].Propagations
		od.Counts[i].Learned -= baseCounts[i].Learned
		od.Counts[i].LBDSum -= baseCounts[i].LBDSum
	}
	return od, true
}

// statsAdd folds the search-work delta between base and after into dst.
// Counters add; MaxLevel takes the maximum.
func statsAdd(dst *sat.Stats, base, after sat.Stats) {
	dst.Decisions += after.Decisions - base.Decisions
	dst.Propagations += after.Propagations - base.Propagations
	dst.Conflicts += after.Conflicts - base.Conflicts
	dst.Restarts += after.Restarts - base.Restarts
	dst.Learned += after.Learned - base.Learned
	dst.Deleted += after.Deleted - base.Deleted
	dst.Simplified += after.Simplified - base.Simplified
	dst.Strengthened += after.Strengthened - base.Strengthened
	if after.MaxLevel > dst.MaxLevel {
		dst.MaxLevel = after.MaxLevel
	}
	for i := range dst.LBDHist {
		dst.LBDHist[i] += after.LBDHist[i] - base.LBDHist[i]
	}
}
