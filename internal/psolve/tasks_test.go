package psolve

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// sumAdopted folds the adopted task deltas into one Stats.
func sumAdopted(tasks []TaskWork) sat.Stats {
	var sum sat.Stats
	for _, tw := range tasks {
		if !tw.Adopted {
			continue
		}
		statsAdd(&sum, sat.Stats{}, tw.Stats)
	}
	return sum
}

// TestPortfolioTasksAccountWork checks the ledger rows of a portfolio
// race: one row per racer, exactly one adopted, and the adopted delta
// equal to the outcome's stats delta against the template baseline.
func TestPortfolioTasksAccountWork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		template := randomCNF(rng, 12+rng.Intn(8), 4.8)
		base := template.Stats
		out, err := Solve(context.Background(), template,
			Options{Mode: ModePortfolio, Workers: 4, Seed: int64(i)})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if len(out.Tasks) != 4 {
			t.Fatalf("instance %d: %d task rows, want 4", i, len(out.Tasks))
		}
		adopted := 0
		for _, tw := range out.Tasks {
			if tw.Adopted {
				adopted++
				if out.Portfolio != nil && tw.ID != out.Portfolio.WinnerID {
					t.Fatalf("instance %d: adopted task %d is not the winner %d", i, tw.ID, out.Portfolio.WinnerID)
				}
			}
			if tw.Label == "" {
				t.Fatalf("instance %d: task %d has no label", i, tw.ID)
			}
		}
		if adopted != 1 {
			t.Fatalf("instance %d: %d adopted tasks, want 1", i, adopted)
		}
		wantDelta := statsDelta(base, out.Stats)
		got := sumAdopted(out.Tasks)
		if got.Conflicts != wantDelta.Conflicts || got.Decisions != wantDelta.Decisions ||
			got.Propagations != wantDelta.Propagations {
			t.Fatalf("instance %d: adopted sum %+v != outcome delta %+v", i, got, wantDelta)
		}
	}
}

// TestCubesTasksAccountWork checks the cube fan-out ledger: a probe row
// plus one row per ran cube, all adopted, summing to the outcome's
// stats delta.
func TestCubesTasksAccountWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for i := 0; i < 20; i++ {
		template := randomCNF(rng, 12+rng.Intn(8), 4.8)
		base := template.Stats
		out, err := Solve(context.Background(), template,
			Options{Mode: ModeCubes, Workers: 4, Candidates: allVars(template), ProbeConflicts: 5})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if len(out.Tasks) == 0 {
			t.Fatalf("instance %d: no task rows", i)
		}
		for _, tw := range out.Tasks {
			if !tw.Adopted {
				t.Fatalf("instance %d: cube task %q not adopted", i, tw.Label)
			}
		}
		wantDelta := statsDelta(base, out.Stats)
		got := sumAdopted(out.Tasks)
		if got.Conflicts != wantDelta.Conflicts || got.Decisions != wantDelta.Decisions ||
			got.Propagations != wantDelta.Propagations {
			t.Fatalf("instance %d: adopted sum %+v != outcome delta %+v", i, got, wantDelta)
		}
		if out.Cube != nil && !out.Cube.ProbeDecided {
			if out.Tasks[0].Label != "probe" || out.Tasks[0].ID != -1 {
				t.Fatalf("instance %d: first task %+v is not the probe", i, out.Tasks[0])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no run exercised a real cube fan-out")
	}
}
