package psolve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sat"
)

// runCubes answers the query by cube-and-conquer: a short probing run
// ranks the split candidates by VSIDS activity, the top-k become 2^k
// cubes (sign patterns), and each cube is solved on its own clone with
// the cube literals as extra assumptions. A SAT cube ends the run (the
// others are interrupted); UNSAT requires every cube UNSAT, and the
// per-cube traces are stitched into one checkable proof.
//
// With one worker — or when no usable split candidate survives — the run
// degenerates to a single vanilla clone, keeping the sequential
// semantics bit for bit.
func runCubes(ctx context.Context, template *sat.Solver, opts Options, assumptions []sat.Lit) (*Outcome, error) {
	if opts.Workers <= 1 {
		return runPortfolio(ctx, template, Options{Mode: ModePortfolio, Workers: 1,
			Schedule: opts.Schedule, OnEvent: opts.OnEvent}, assumptions)
	}
	prefix := proofPrefixLen(template)
	base := template.Stats
	baseDB := template.ClauseDBBytes()

	// Lookahead: a budgeted probe both ranks the split variables and
	// sometimes settles the query outright.
	probe := template.Clone()
	// The budget is relative to the work already on the clock: clones
	// inherit the template's cumulative conflict count.
	probe.MaxConflicts = probe.Stats.Conflicts + opts.ProbeConflicts
	stop := watchCancel(ctx, []*sat.Solver{probe})
	probeStatus, probeErr := probe.SolveLimited(assumptions...)
	stop()
	probe.ResetInterrupt()
	probe.MaxConflicts = template.MaxConflicts
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if decisive(probeStatus) {
		out := adoptSingle(probe, probeStatus)
		out.Tasks = []TaskWork{taskWork(-1, "probe", probe, base, baseDB, true)}
		out.Cube = &CubeReport{Workers: opts.Workers, SatCube: -1, ProbeDecided: true}
		emitCubeEvent(opts, out.Cube, out.Status)
		return out, nil
	}
	if probeErr != nil && probeErr != sat.ErrBudget {
		return nil, probeErr
	}

	splitVars := pickSplitVars(template, probe, opts, assumptions)
	if len(splitVars) == 0 {
		// Nothing safe to split on: fall back to a portfolio race.
		return runPortfolio(ctx, template, Options{Mode: ModePortfolio, Workers: opts.Workers,
			Seed: opts.Seed, Schedule: opts.Schedule, OnEvent: opts.OnEvent}, assumptions)
	}

	// Cube i assigns splitVars[j] the sign of bit (k-1-j): variable 0 is
	// the most significant bit, so consecutive cubes differ in the LAST
	// literal — the order the proof-stitching merge tree resolves on.
	k := len(splitVars)
	nCubes := 1 << k
	cubeLits := make([][]sat.Lit, nCubes)
	for i := 0; i < nCubes; i++ {
		lits := make([]sat.Lit, k)
		for j := 0; j < k; j++ {
			lits[j] = sat.MkLit(splitVars[j], (i>>(k-1-j))&1 == 0)
		}
		cubeLits[i] = lits
	}

	solvers := make([]*sat.Solver, nCubes)
	for i := range solvers {
		solvers[i] = template.Clone()
	}
	type result struct {
		status sat.Status
		err    error
		ran    bool
	}
	results := make([]result, nCubes)
	var sawSat atomic.Bool
	var mu sync.Mutex
	stop = watchCancel(ctx, solvers)
	tasks := make([]func(), nCubes)
	for i := range solvers {
		i := i
		tasks[i] = func() {
			if sawSat.Load() {
				return // a satisfying cube already ended the run
			}
			as := append(append([]sat.Lit(nil), assumptions...), cubeLits[i]...)
			st, err := solvers[i].SolveLimited(as...)
			mu.Lock()
			results[i] = result{status: st, err: err, ran: true}
			if st == sat.Sat && !sawSat.Swap(true) {
				for j, other := range solvers {
					if j != i {
						other.Interrupt()
					}
				}
			}
			mu.Unlock()
		}
	}
	runTasks(opts.Schedule, tasks)
	stop()
	for _, s := range solvers {
		s.ResetInterrupt()
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}

	report := &CubeReport{Workers: opts.Workers, SplitVars: splitVars, Cubes: nCubes, SatCube: -1}
	stats := base
	statsAdd(&stats, base, probe.Stats)
	// Every cube's refutation contributes to the verdict, so every ran
	// task is adopted — a cube fan-out has no wasted-work rows.
	taskRows := []TaskWork{taskWork(-1, "probe", probe, base, baseDB, true)}
	for i, r := range results {
		if !r.ran {
			continue
		}
		statsAdd(&stats, base, solvers[i].Stats)
		taskRows = append(taskRows, taskWork(i, fmt.Sprintf("cube:%d", i), solvers[i], base, baseDB, true))
		if r.status == sat.Unsat {
			report.UnsatCubes++
		}
	}

	// A satisfying cube settles the query: its model satisfies the
	// formula under the original assumptions (the cube literals were only
	// assumptions, not clauses).
	for i, r := range results {
		if r.ran && r.status == sat.Sat {
			report.SatCube = i
			out := adoptSingle(solvers[i], sat.Sat)
			out.Stats = stats
			out.Tasks = taskRows
			out.Cube = report
			emitCubeEvent(opts, report, sat.Sat)
			return out, nil
		}
	}
	if report.UnsatCubes < nCubes {
		// Some cube was interrupted or exhausted its budget without a SAT
		// winner: no verdict.
		for _, r := range results {
			if r.err != nil && r.err != sat.ErrInterrupted {
				return nil, r.err
			}
		}
		return nil, ErrNoVerdict
	}

	out := &Outcome{
		Status:      sat.Unsat,
		Winner:      solvers[0],
		Stats:       stats,
		OriginBases: template.OriginSetBases,
		Tasks:       taskRows,
		Cube:        report,
	}
	if template.Proof() != nil {
		out.Proof = stitchProof(template, prefix, cubeLits, solvers)
	}
	if template.TrackingOrigins() {
		// Every clone's counters include the template's pre-existing work;
		// emit the base once and per-participant deltas, so the merged
		// profile counts the shared prefix exactly once — the same total a
		// sequential run would report.
		baseData, _ := originData(template)
		out.Origins = append(out.Origins, baseData)
		if od, ok := originDelta(probe, baseData.Counts); ok {
			out.Origins = append(out.Origins, od)
		}
		for _, s := range solvers {
			if od, ok := originDelta(s, baseData.Counts); ok {
				out.Origins = append(out.Origins, od)
			}
		}
	}
	emitCubeEvent(opts, report, sat.Unsat)
	return out, nil
}

// adoptSingle wraps one deciding solver as an outcome.
func adoptSingle(s *sat.Solver, st sat.Status) *Outcome {
	out := &Outcome{
		Status:      st,
		Winner:      s,
		Stats:       s.Stats,
		Proof:       s.Proof(),
		OriginBases: s.OriginSetBases,
	}
	if od, ok := originData(s); ok {
		out.Origins = []OriginData{od}
	}
	return out
}

func emitCubeEvent(opts Options, report *CubeReport, st sat.Status) {
	if opts.OnEvent == nil {
		return
	}
	opts.OnEvent(EventCube, map[string]any{
		"workers":       report.Workers,
		"split_vars":    len(report.SplitVars),
		"cubes":         report.Cubes,
		"unsat_cubes":   report.UnsatCubes,
		"sat_cube":      report.SatCube,
		"probe_decided": report.ProbeDecided,
		"status":        st.String(),
	})
}

// pickSplitVars ranks the candidate variables by the probe's VSIDS
// activity and returns the top k, where 2^k roughly doubles the worker
// count (capped at 64 cubes). Candidates already assigned at the
// template's root level, out of range, duplicated, or appearing among
// the assumptions are discarded.
func pickSplitVars(template, probe *sat.Solver, opts Options, assumptions []sat.Lit) []sat.Var {
	assumed := make(map[sat.Var]bool, len(assumptions))
	for _, l := range assumptions {
		assumed[l.Var()] = true
	}
	seen := make(map[sat.Var]bool, len(opts.Candidates))
	var cands []sat.Var
	for _, v := range opts.Candidates {
		if v < 0 || int(v) >= template.NumVars() || seen[v] || assumed[v] {
			continue
		}
		seen[v] = true
		if template.Value(v) != sat.Unknown {
			continue // fixed at root: splitting on it wastes half the cubes
		}
		cands = append(cands, v)
	}
	if len(cands) == 0 {
		return nil
	}
	sort.SliceStable(cands, func(i, j int) bool {
		ai, aj := probe.Activity(cands[i]), probe.Activity(cands[j])
		if ai != aj {
			return ai > aj
		}
		return cands[i] < cands[j]
	})
	k := opts.CubeVars
	if k <= 0 {
		k = 1
		for 1<<k < 2*opts.Workers && k < 6 {
			k++
		}
	}
	if k > 6 {
		k = 6
	}
	if k > len(cands) {
		k = len(cands)
	}
	return cands[:k]
}

// stitchProof assembles one checkable DRAT trace from an all-UNSAT cube
// fan-out. Layout:
//
//	shared prefix            — the template's trace, common to every clone
//	per-cube derives         — each clone's learned clauses (valid without
//	                           the cube: CDCL learns only by resolution on
//	                           database clauses, never on assumptions)
//	per-cube ¬cube clause    — RUP: propagating the cube literals over the
//	                           clone's final database mimics its refutation
//	merge tree               — pairs of ¬cube clauses differing in the last
//	                           literal resolve to their shared prefix (RUP:
//	                           both become unit on the split variable with
//	                           opposite signs), down to the empty clause
//
// Delete steps from the clone tails are dropped: the clones delete shared
// clauses independently, and a checker database that only grows keeps
// every later RUP check valid. Origin ids recorded by the clones are
// re-interned into the template's tables so one solver resolves the whole
// stitched trace.
func stitchProof(template *sat.Solver, prefix int, cubeLits [][]sat.Lit, solvers []*sat.Solver) *sat.Proof {
	p := sat.NewProof()
	for _, st := range template.Proof().Steps() {
		p.AppendShared(st)
	}
	negCubes := make([][]sat.Lit, len(solvers))
	for i, s := range solvers {
		// Origin-set ids diverge across clones past the shared prefix, so
		// the remap cache is per clone.
		remapped := map[int32]int32{}
		for _, st := range s.Proof().Steps()[prefix:] {
			if st.Kind == sat.ProofDelete {
				continue
			}
			origin := st.Origin
			if origin != 0 {
				id, ok := remapped[origin]
				if !ok {
					id = template.InternOriginSet(s.OriginSetBases(origin))
					remapped[origin] = id
				}
				origin = id
			}
			p.AppendShared(sat.ProofStep{Kind: st.Kind, Lits: st.Lits, Origin: origin})
		}
		neg := make([]sat.Lit, len(cubeLits[i]))
		for j, l := range cubeLits[i] {
			neg[j] = l.Not()
		}
		p.AppendShared(sat.ProofStep{Kind: sat.ProofDerive, Lits: neg})
		negCubes[i] = neg
	}
	frontier := negCubes
	for level := len(cubeLits[0]); level > 0; level-- {
		next := make([][]sat.Lit, 0, len(frontier)/2)
		for j := 0; j+1 < len(frontier); j += 2 {
			merged := append([]sat.Lit(nil), frontier[j][:level-1]...)
			p.AppendShared(sat.ProofStep{Kind: sat.ProofDerive, Lits: merged})
			next = append(next, merged)
		}
		frontier = next
	}
	return p
}
