package psolve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/sat"
)

// Config is one portfolio member's solver configuration. The zero Config
// (ID 0) leaves the clone exactly as the template configured it, so a
// one-worker portfolio is the sequential search.
type Config struct {
	ID   int
	Name string
	// Seed seeds the solver's deterministic random generator (applied
	// only when the config uses randomness).
	Seed int64
	// RestartBase overrides the Luby restart unit when positive.
	RestartBase float64
	// RandomFreq is the random-decision rate when positive.
	RandomFreq float64
	// FlipPhase starts the racer with all saved phases biased to true
	// instead of the solver's false default.
	FlipPhase bool
	// JitterEps perturbs VSIDS activities by up to JitterEps when
	// positive, diversifying the branching order.
	JitterEps float64
}

// apply configures a cloned solver. Config 0 must leave the clone
// untouched: the determinism pin compares its run against the sequential
// path bit for bit.
func (c Config) apply(s *sat.Solver) {
	if c.RestartBase > 0 {
		s.RestartBase = c.RestartBase
	}
	if c.RandomFreq > 0 {
		s.RandomFreq = c.RandomFreq
		s.SeedRandom(c.Seed)
	}
	if c.FlipPhase {
		s.SetAllSavedPhases(false)
	}
	if c.JitterEps > 0 {
		s.JitterActivity(c.Seed, c.JitterEps)
	}
}

// baseConfigs is the diversity palette: restart schedule, phase polarity,
// random-decision rate and VSIDS jitter, roughly in order of how often
// each wins on the fig8 workload.
var baseConfigs = []Config{
	{Name: "vanilla"},
	{Name: "flip-phase", FlipPhase: true},
	{Name: "slow-restarts", RestartBase: 512},
	{Name: "random-2%", RandomFreq: 0.02},
	{Name: "fast-restarts+jitter", RestartBase: 32, JitterEps: 0.5},
	{Name: "flip+random-5%", FlipPhase: true, RandomFreq: 0.05},
	{Name: "slow-restarts+jitter", RestartBase: 1024, JitterEps: 0.25},
	{Name: "random-10%", RandomFreq: 0.1},
}

// Configs returns the portfolio table for n workers. Entry 0 is always
// the vanilla config; past the palette, entries recycle it with fresh
// seeds. Equal (n, seed) inputs yield equal tables.
func Configs(n int, seed int64) []Config {
	out := make([]Config, n)
	for i := 0; i < n; i++ {
		c := baseConfigs[i%len(baseConfigs)]
		c.ID = i
		c.Seed = seed ^ int64(i)*0x9e3779b9
		if i >= len(baseConfigs) {
			c.Name = fmt.Sprintf("%s#%d", c.Name, i/len(baseConfigs))
			if c.RandomFreq == 0 && !c.FlipPhase {
				// Recycled deterministic configs would duplicate the search;
				// add jitter so every extra racer explores something new.
				c.JitterEps = 0.1 * float64(1+i/len(baseConfigs))
			}
		}
		out[i] = c
	}
	return out
}

// runPortfolio races Workers differently-configured clones and adopts the
// first verdict, interrupting the rest. All racers are joined before it
// returns, so no goroutine outlives the call and the template is safe to
// reuse immediately.
func runPortfolio(ctx context.Context, template *sat.Solver, opts Options, assumptions []sat.Lit) (*Outcome, error) {
	cfgs := Configs(opts.Workers, opts.Seed)
	baseStats, baseDB := template.Stats, template.ClauseDBBytes()
	solvers := make([]*sat.Solver, len(cfgs))
	for i, cfg := range cfgs {
		c := template.Clone()
		if i == 0 {
			// Only the vanilla racer keeps the progress hook: hooks are not
			// synchronized, and the sequential path it mirrors had one.
			c.ProgressEvery = template.ProgressEvery
			c.OnProgress = template.OnProgress
		}
		cfg.apply(c)
		solvers[i] = c
	}

	type result struct {
		status sat.Status
		err    error
		at     time.Duration
	}
	results := make([]result, len(solvers))
	start := time.Now()
	var mu sync.Mutex
	winner := -1
	stop := watchCancel(ctx, solvers)
	tasks := make([]func(), len(solvers))
	for i := range solvers {
		i := i
		tasks[i] = func() {
			st, err := solvers[i].SolveLimited(assumptions...)
			at := time.Since(start)
			mu.Lock()
			results[i] = result{status: st, err: err, at: at}
			if decisive(st) && winner < 0 {
				winner = i
				for j, other := range solvers {
					if j != i {
						other.Interrupt()
					}
				}
			}
			mu.Unlock()
		}
	}
	runTasks(opts.Schedule, tasks)
	stop()
	for _, s := range solvers {
		s.ResetInterrupt()
	}

	if winner < 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, r := range results {
			if r.err != nil {
				return nil, r.err
			}
		}
		return nil, ErrNoVerdict
	}

	win := solvers[winner]
	report := &PortfolioReport{
		Workers:          len(solvers),
		WinnerID:         winner,
		WinnerConfig:     cfgs[winner].Name,
		CancelledElapsed: time.Since(start) - results[winner].at,
	}
	out := &Outcome{
		Status:      results[winner].status,
		Winner:      win,
		Stats:       win.Stats,
		Proof:       win.Proof(),
		OriginBases: win.OriginSetBases,
		Portfolio:   report,
	}
	if od, ok := originData(win); ok {
		out.Origins = []OriginData{od}
	}
	for i, s := range solvers {
		out.Tasks = append(out.Tasks, taskWork(i, cfgs[i].Name, s, baseStats, baseDB, i == winner))
	}
	if opts.OnEvent != nil {
		opts.OnEvent(EventPortfolio, map[string]any{
			"workers":              report.Workers,
			"winner_id":            report.WinnerID,
			"winner_config":        report.WinnerConfig,
			"status":               out.Status.String(),
			"winner_elapsed_ms":    results[winner].at.Milliseconds(),
			"cancelled_elapsed_ms": report.CancelledElapsed.Milliseconds(),
		})
	}
	return out, nil
}
