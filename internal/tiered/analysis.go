package tiered

import (
	"sort"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/simulator"
)

// mayEdge is one edge of the over-approximate forwarding graph: router
// `from` (the map key) could, for some destination in the edge's prefix
// scope and some environment, forward traffic to router `to`.
type mayEdge struct {
	to string
	// pfx scopes the edge to destinations it can carry (static routes);
	// scoped=false means any destination (adjacencies, BGP sessions).
	pfx    network.Prefix
	scoped bool
	origin provenance.Origin
}

// Analysis precomputes everything about one network that the tier reuses
// across goals: the may-graph, the forwarding-equivalence-class boundary
// prefixes, and the preconditions of the deterministic path. It is cheap
// to build (linear in the configuration) and safe to cache alongside the
// protocol graph; Decide is not safe for concurrent use (it shares a
// simulator), callers serialize as they do for core sessions.
type Analysis struct {
	G   *protograph.Graph
	sim *simulator.Simulator

	// may is the over-approximate forwarding graph, keyed by router name.
	may map[string][]mayEdge

	// boundaries are all prefixes any destination-dependent test in the
	// network can distinguish; destinations between consecutive boundary
	// edges are forwarding-equivalent.
	boundaries []network.Prefix

	// detReason is non-empty when the deterministic path is unavailable
	// for the whole network (named residue reason).
	detReason string
	// aclReason is non-empty when some data-plane ACL matches packet
	// fields other than the destination address, making a single
	// representative packet per FEC insufficient.
	aclReason string
}

// NewAnalysis builds the tier's per-network state from the protocol
// graph.
func NewAnalysis(g *protograph.Graph) *Analysis {
	a := &Analysis{G: g, sim: simulator.New(g), may: map[string][]mayEdge{}}
	a.buildMayGraph()
	a.collectBoundaries()
	a.detReason = detPrecondition(g)
	a.aclReason = aclPrecondition(g)
	return a
}

// addMay inserts a directed may-edge, deduplicating unscoped duplicates.
func (a *Analysis) addMay(from string, e mayEdge) {
	for _, have := range a.may[from] {
		if have.to == e.to && !have.scoped {
			return // already unconditionally connected
		}
	}
	a.may[from] = append(a.may[from], e)
}

// buildMayGraph collects every mechanism by which a router can come to
// forward traffic to an internal neighbor, under any environment:
//
//   - IGP adjacencies (OSPF, RIP) carry routes, so traffic can flow both
//     ways across them;
//   - every internal BGP session, with or without a shared link: multihop
//     iBGP next hops resolve recursively and the simulator/encoder fall
//     back to a direct hop, so the session endpoints themselves are the
//     conservative edge;
//   - static routes resolved to a neighbor, scoped to the static's
//     prefix.
//
// Redistribution adds no edges: a redistributed route forwards along the
// source protocol's decision, which one of the mechanisms above already
// covers.
func (a *Analysis) buildMayGraph() {
	adjOrigin := func(from, to, proto string) provenance.Origin {
		return provenance.Origin{Router: from, Proto: proto, Kind: "adjacency", Name: to}
	}
	for _, adj := range a.G.OSPFAdjs {
		an, bn := adj.Link.A.Name, adj.Link.B.Name
		a.addMay(an, mayEdge{to: bn, origin: adjOrigin(an, bn, "ospf")})
		a.addMay(bn, mayEdge{to: an, origin: adjOrigin(bn, an, "ospf")})
	}
	for _, adj := range a.G.RIPAdjs {
		an, bn := adj.Link.A.Name, adj.Link.B.Name
		a.addMay(an, mayEdge{to: bn, origin: adjOrigin(an, bn, "rip")})
		a.addMay(bn, mayEdge{to: an, origin: adjOrigin(bn, an, "rip")})
	}
	for _, sess := range a.G.Sessions {
		if sess.Kind == protograph.EBGPExternal {
			continue // no internal edge; externals enter via imports, not hops
		}
		an, bn := sess.A.Name, sess.B.Name
		a.addMay(an, mayEdge{to: bn, origin: provenance.Origin{Router: an, Proto: "bgp", Kind: "neighbor", Name: bn}})
		a.addMay(bn, mayEdge{to: an, origin: provenance.Origin{Router: bn, Proto: "bgp", Kind: "neighbor", Name: an}})
	}
	for name, cfg := range a.G.Configs {
		n := a.G.Topo.Node(name)
		for _, st := range cfg.Statics {
			if st.Drop {
				continue
			}
			origin := provenance.Origin{Router: name, Proto: "static", Kind: "static", Name: st.Prefix.String()}
			for _, l := range a.G.Topo.LinksOf(n) {
				peer := l.Peer(n)
				match := false
				if st.Interface != "" {
					match = l.IfaceOf(n) == st.Interface
				} else {
					match = l.AddrOf(peer) == st.NextHop
				}
				if match {
					a.addMay(name, mayEdge{to: peer.Name, pfx: st.Prefix, scoped: true, origin: origin})
				}
			}
		}
	}
	for _, edges := range a.may {
		sort.SliceStable(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
	}
}

// collectBoundaries gathers every prefix a destination-dependent test in
// the network can distinguish: interface subnets, static destinations,
// BGP network statements and aggregates, prefix-list entries (hoisted
// route-map tests are destination tests), and ACL destination prefixes.
// Destinations falling strictly between boundary edges take identical
// branches everywhere, so one representative per interval suffices.
func (a *Analysis) collectBoundaries() {
	seen := map[network.Prefix]bool{}
	add := func(p network.Prefix) {
		if !seen[p] {
			seen[p] = true
			a.boundaries = append(a.boundaries, p)
		}
	}
	for _, cfg := range a.G.Configs {
		for _, i := range cfg.Interfaces {
			add(i.Prefix)
		}
		for _, st := range cfg.Statics {
			add(st.Prefix)
		}
		if cfg.BGP != nil {
			for _, p := range cfg.BGP.Networks {
				add(p)
			}
			for _, agg := range cfg.BGP.Aggregates {
				add(agg.Prefix)
			}
		}
		for _, pl := range cfg.PrefixLists {
			for _, e := range pl.Entries {
				add(e.Prefix)
			}
		}
		for _, acl := range cfg.ACLs {
			for _, e := range acl.Entries {
				if e.DstPrefix.Len > 0 {
					add(e.DstPrefix)
				}
			}
		}
	}
	sort.Slice(a.boundaries, func(i, j int) bool {
		if a.boundaries[i].Addr != a.boundaries[j].Addr {
			return a.boundaries[i].Addr < a.boundaries[j].Addr
		}
		return a.boundaries[i].Len < a.boundaries[j].Len
	})
}

// repLimit bounds how many forwarding-equivalence classes the
// deterministic path will simulate before declaring residue.
const repLimit = 2048

// reps returns one representative destination per forwarding-equivalence
// class intersecting the region: the region's first address plus every
// boundary-prefix edge that falls inside it.
func (a *Analysis) reps(region network.Prefix) ([]network.IP, bool) {
	lo, hi := uint64(region.First()), uint64(region.Last())
	cuts := map[uint64]bool{lo: true}
	for _, p := range a.boundaries {
		f, l := uint64(p.First()), uint64(p.Last())
		if f > lo && f <= hi {
			cuts[f] = true
		}
		if l+1 > lo && l+1 <= hi {
			cuts[l+1] = true
		}
		if len(cuts) > repLimit {
			return nil, false
		}
	}
	sorted := make([]uint64, 0, len(cuts))
	for c := range cuts {
		sorted = append(sorted, c)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]network.IP, len(sorted))
	for i, c := range sorted {
		out[i] = network.IP(uint32(c))
	}
	return out, true
}

// detPrecondition names the reason the deterministic path is unsound for
// this network, or "" when its stable state is provably unique and
// environment-independent above the external prefix-length bound:
//
//   - no redistribution of dynamic protocols (OSPF/RIP/BGP sources feed
//     each other's metrics, breaking the layered shortest-path argument);
//   - no iBGP (session liveness itself depends on the environment via
//     next-hop reachability, and reflection breaks monotonicity);
//   - internal eBGP sessions apply prefix-list-only policy: any clause
//     that rewrites preference attributes (local-pref, metric, MED,
//     prepend) or touches communities can create preference cycles with
//     multiple stable states. External-session policy stays unrestricted —
//     it only shapes routes the prefix-length bound already dominates.
func detPrecondition(g *protograph.Graph) string {
	for _, cfg := range g.Configs {
		var redists []config.Redistribution
		if cfg.OSPF != nil {
			redists = append(redists, cfg.OSPF.Redistribute...)
		}
		if cfg.RIP != nil {
			redists = append(redists, cfg.RIP.Redistribute...)
		}
		if cfg.BGP != nil {
			redists = append(redists, cfg.BGP.Redistribute...)
		}
		for _, rd := range redists {
			switch rd.From {
			case config.OSPF, config.RIP, config.BGP:
				return "dynamic-redistribution"
			}
		}
	}
	for _, sess := range g.Sessions {
		switch sess.Kind {
		case protograph.IBGP:
			return "ibgp-session"
		case protograph.EBGP:
			for _, end := range []struct {
				n   string
				nbr *config.BGPNeighbor
			}{{sess.A.Name, sess.NbrAtA}, {sess.B.Name, sess.NbrAtB}} {
				cfg := g.Configs[end.n]
				for _, mapName := range []string{end.nbr.InMap, end.nbr.OutMap} {
					if mapName == "" {
						continue
					}
					rm := cfg.RouteMaps[mapName]
					if rm == nil {
						continue
					}
					for _, cl := range rm.Clauses {
						if cl.SetLocalPref != 0 || cl.HasSetMetric || cl.HasSetMED ||
							cl.SetPrepend != 0 || cl.HasSetNextHop ||
							len(cl.SetCommunity) > 0 || len(cl.DelCommunity) > 0 ||
							cl.MatchCommunity != "" {
							return "internal-session-policy"
						}
					}
				}
			}
		}
	}
	return ""
}

// aclPrecondition names the reason one representative packet per FEC is
// insufficient, or "": every interface ACL must branch on the
// destination address only (any source, any protocol, full port
// ranges), so the zero-valued representative packet exercises the same
// branches as every packet of its class.
func aclPrecondition(g *protograph.Graph) string {
	for _, cfg := range g.Configs {
		for _, i := range cfg.Interfaces {
			for _, name := range []string{i.InACL, i.OutACL} {
				if name == "" {
					continue
				}
				acl := cfg.ACLs[name]
				if acl == nil {
					continue
				}
				for _, e := range acl.Entries {
					if e.SrcPrefix.Len > 0 || e.Protocol >= 0 ||
						e.SrcPortLo != 0 || e.SrcPortHi != 65535 ||
						e.DstPortLo != 0 || e.DstPortHi != 65535 {
						return "acl-matches-non-destination-fields"
					}
				}
			}
		}
	}
	return ""
}

// wholeSpace is the destination region of unrestricted properties.
var wholeSpace = network.Prefix{}

// --- may-graph queries -------------------------------------------------

// delivers reports whether the router can deliver locally for some
// destination in the region: a non-shutdown interface subnet overlaps it.
func (a *Analysis) delivers(router string, region network.Prefix) bool {
	cfg := a.G.Configs[router]
	for _, i := range cfg.Interfaces {
		if !i.Shutdown && overlapsRegion(i.Prefix, region) {
			return true
		}
	}
	return false
}

func overlapsRegion(p, region network.Prefix) bool {
	return p.Overlaps(region)
}

// mayReach over-approximates data-plane reachability: can traffic from
// src, for some destination in the region and some environment, arrive
// at a router that delivers it locally? avoid (optional) removes a
// router entirely, giving the over-approximation of reach-avoiding used
// for waypoint proofs. The returned origins name the ACLs whose definite
// blocks pruned the search — the provenance a verdict that relies on
// unreachability rests on.
func (a *Analysis) mayReach(src string, region network.Prefix, avoid string) (bool, []provenance.Origin) {
	if src == avoid {
		return false, nil
	}
	if a.G.Topo.Node(src) == nil {
		return false, nil
	}
	var blockers []provenance.Origin
	visited := map[string]bool{src: true}
	queue := []string{src}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		if a.delivers(at, region) {
			return true, nil
		}
		for _, e := range a.may[at] {
			if visited[e.to] || e.to == avoid {
				continue
			}
			if e.scoped && !overlapsRegion(e.pfx, region) {
				continue
			}
			if blocked, origins := a.edgeBlocked(at, e.to, region); blocked {
				blockers = append(blockers, origins...)
				continue
			}
			visited[e.to] = true
			queue = append(queue, e.to)
		}
	}
	provenance.SortOrigins(blockers)
	return false, provenance.DedupeOrigins(blockers)
}

// edgeBlocked reports whether the data-plane edge from→to is provably
// closed for every packet destined into the region: the out-ACL on the
// sending interface or the in-ACL on the receiving interface denies all
// such packets. Mirrors the simulator's Walk: the ACL pair comes from
// the first link between the routers; sessions without a physical link
// ("teleport" hops) carry no ACLs and are never blocked.
func (a *Analysis) edgeBlocked(from, to string, region network.Prefix) (bool, []provenance.Origin) {
	link := a.G.Topo.FindLink(from, to)
	if link == nil {
		return false, nil
	}
	outIface := link.IfaceOf(a.G.Topo.Node(from))
	inIface := link.IfaceOf(a.G.Topo.Node(to))
	if name, blocked := ifaceACLBlocks(a.G.Configs[from], outIface, false, region); blocked {
		return true, []provenance.Origin{{Router: from, Kind: "acl", Name: name}}
	}
	if name, blocked := ifaceACLBlocks(a.G.Configs[to], inIface, true, region); blocked {
		return true, []provenance.Origin{{Router: to, Kind: "acl", Name: name}}
	}
	return false, nil
}

// ifaceACLBlocks resolves the interface's directional ACL and asks
// whether it definitely denies every packet destined into the region.
func ifaceACLBlocks(cfg *config.Router, ifaceName string, inbound bool, region network.Prefix) (string, bool) {
	if ifaceName == "" {
		return "", false
	}
	iface := cfg.Iface(ifaceName)
	if iface == nil {
		return "", false
	}
	name := iface.OutACL
	if inbound {
		name = iface.InACL
	}
	if name == "" {
		return "", false
	}
	acl := cfg.ACLs[name]
	if acl == nil {
		return "", false
	}
	return name, aclDefinitelyDenies(acl, region)
}

// aclDefinitelyDenies is a conservative ordered scan: true only when no
// packet with a destination in the region can be permitted. A permit
// entry that could match some such packet defeats the block; a deny
// entry that certainly matches all of them (any source, any protocol,
// full ports, destination covering the region) establishes it; the
// implicit tail denies whatever falls through.
func aclDefinitelyDenies(acl *config.ACL, region network.Prefix) bool {
	for _, e := range acl.Entries {
		mayMatch := e.DstPrefix.Len == 0 || e.DstPrefix.Overlaps(region)
		if e.Action == config.Permit {
			if mayMatch {
				return false
			}
			continue
		}
		coversAll := e.DstPrefix.Len == 0 || e.DstPrefix.Covers(region)
		unconditional := e.SrcPrefix.Len == 0 && e.Protocol < 0 &&
			e.SrcPortLo == 0 && e.SrcPortHi == 65535 &&
			e.DstPortLo == 0 && e.DstPortHi == 65535
		if coversAll && unconditional {
			return true
		}
	}
	return true // implicit deny
}

// loopCandidates mirrors properties.LoopCandidates: routers whose
// configuration can create forwarding cycles (statics or
// redistribution).
func (a *Analysis) loopCandidates() []string {
	var out []string
	for _, n := range a.G.Topo.Nodes {
		cfg := a.G.Configs[n.Name]
		risky := len(cfg.Statics) > 0
		if cfg.OSPF != nil && len(cfg.OSPF.Redistribute) > 0 {
			risky = true
		}
		if cfg.RIP != nil && len(cfg.RIP.Redistribute) > 0 {
			risky = true
		}
		if cfg.BGP != nil && len(cfg.BGP.Redistribute) > 0 {
			risky = true
		}
		if risky {
			out = append(out, n.Name)
		}
	}
	return out
}

// managementAddrs returns every management interface address with its
// owning router, in deterministic order.
func (a *Analysis) managementAddrs() []struct {
	Router string
	Addr   network.IP
} {
	var out []struct {
		Router string
		Addr   network.IP
	}
	for _, n := range a.G.Topo.Nodes {
		for _, mi := range a.G.Configs[n.Name].ManagementInterfaces() {
			out = append(out, struct {
				Router string
				Addr   network.IP
			}{n.Name, mi.Addr})
		}
	}
	return out
}
