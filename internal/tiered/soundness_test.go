package tiered_test

import (
	"testing"

	"repro/internal/fuzz"
	"repro/internal/tiered"
)

// TestSoundnessOnRegressionCorpus replays every network in the fuzz
// regression corpus through the graph tier: each corpus check carries
// the SAT pipeline's recorded verdict (expect=verified|falsified), and
// any check the tier claims to decide must reproduce it exactly. The
// tier is free to return residue — that is the design — but a decided
// disagreement is a soundness bug.
func TestSoundnessOnRegressionCorpus(t *testing.T) {
	corpus, err := fuzz.LoadCorpus("../fuzz/testdata/regressions")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("empty regression corpus")
	}
	decided, covered := 0, 0
	for _, cs := range corpus {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			a := tiered.NewAnalysis(cs.Net.Graph)
			for i, ck := range cs.Checks {
				goal, ok := fuzz.GoalFor(ck)
				if !ok {
					continue
				}
				covered++
				out := a.Decide(goal)
				if !out.Decided {
					t.Logf("check %d (%s src=%s subnet=%s): residue (%s)",
						i, ck.Check, ck.Src, ck.Subnet, out.Reason)
					continue
				}
				decided++
				if out.Verified != ck.Expect {
					t.Errorf("check %d (%s src=%s subnet=%s maxfail=%d): graph tier decided verified=%v (reason %s), recorded SAT verdict %v",
						i, ck.Check, ck.Src, ck.Subnet, ck.MaxFailures, out.Verified, out.Reason, ck.Expect)
				}
				if len(out.Blame) == 0 {
					t.Errorf("check %d (%s): decided verdict carries no blame", i, ck.Check)
				}
			}
		})
	}
	t.Logf("graph tier decided %d of %d corpus checks", decided, covered)
	if decided == 0 {
		t.Error("graph tier decided no corpus check at all; the fast path is dead on the corpus")
	}
}
