package tiered_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/testnets"
	"repro/internal/tiered"
)

func TestValidateTiers(t *testing.T) {
	for _, ok := range []string{"", "graph,sat", "graph", "sat", "none", " graph,sat "} {
		if err := tiered.ValidateTiers(ok); err != nil {
			t.Errorf("ValidateTiers(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"grph", "sat,graph", "all", "graph;sat"} {
		if err := tiered.ValidateTiers(bad); err == nil {
			t.Errorf("ValidateTiers(%q) = nil, want error", bad)
		}
	}
}

func TestEnabled(t *testing.T) {
	for _, on := range []string{"", "graph,sat", "graph"} {
		if !tiered.Enabled(on) {
			t.Errorf("Enabled(%q) = false, want true", on)
		}
	}
	for _, off := range []string{"sat", "none"} {
		if tiered.Enabled(off) {
			t.Errorf("Enabled(%q) = true, want false", off)
		}
	}
}

func chainAnalysis(t *testing.T, n int) *tiered.Analysis {
	t.Helper()
	net, err := testnets.Build(testnets.OSPFChainTexts(n)...)
	if err != nil {
		t.Fatal(err)
	}
	return tiered.NewAnalysis(net.Graph)
}

func TestDecideReachabilityOnChain(t *testing.T) {
	a := chainAnalysis(t, 3)
	out := a.Decide(tiered.Goal{
		Check: "reachability", Src: "R1",
		Subnet: network.MustParsePrefix("10.100.3.0/24"), HasSubnet: true,
	})
	if !out.Decided || !out.Verified {
		t.Fatalf("chain reachability: decided=%v verified=%v reason=%s, want decided verified",
			out.Decided, out.Verified, out.Reason)
	}
	if len(out.Blame) == 0 {
		t.Fatal("decided verdict carries no blame")
	}
}

func TestDecideFalsifiesUnroutedDestination(t *testing.T) {
	a := chainAnalysis(t, 3)
	// 203.0.113.0/24 is outside every fixture's address plan: the
	// may-graph proves no router ever delivers it, falsifying
	// reachability with a concrete witness.
	out := a.Decide(tiered.Goal{
		Check: "reachability", Src: "R1",
		Subnet: network.MustParsePrefix("203.0.113.0/24"), HasSubnet: true,
	})
	if !out.Decided || out.Verified {
		t.Fatalf("unrouted reachability: decided=%v verified=%v reason=%s, want decided falsified",
			out.Decided, out.Verified, out.Reason)
	}
	if out.Packet == nil {
		t.Fatal("falsified outcome carries no witness packet")
	}
	if got := out.Packet.DstIP; got.Mask(24) != network.MustParseIP("203.0.113.0") {
		t.Fatalf("witness packet dst %v outside the queried subnet", got)
	}
	// The same proof verifies isolation of the same (src, subnet).
	iso := a.Decide(tiered.Goal{
		Check: "isolation", Src: "R1",
		Subnet: network.MustParsePrefix("203.0.113.0/24"), HasSubnet: true,
	})
	if !iso.Decided || !iso.Verified {
		t.Fatalf("unrouted isolation: decided=%v verified=%v reason=%s, want decided verified",
			iso.Decided, iso.Verified, iso.Reason)
	}
}

func TestDecideResidues(t *testing.T) {
	a := chainAnalysis(t, 3)
	cases := []struct {
		name   string
		goal   tiered.Goal
		reason string
	}{
		{"unknown router", tiered.Goal{Check: "reachability", Src: "R9",
			Subnet: network.MustParsePrefix("10.100.3.0/24"), HasSubnet: true}, "unknown-router"},
		{"missing subnet", tiered.Goal{Check: "reachability", Src: "R1"}, "missing-subnet"},
		{"missing source", tiered.Goal{Check: "reachability",
			Subnet: network.MustParsePrefix("10.100.3.0/24"), HasSubnet: true}, "missing-source"},
		{"failure budget", tiered.Goal{Check: "reachability", Src: "R1", MaxFailures: 1,
			Subnet: network.MustParsePrefix("10.100.3.0/24"), HasSubnet: true}, "failure-budget"},
		{"unsupported check", tiered.Goal{Check: "prefers-neighbors"}, "unsupported-check"},
	}
	for _, tc := range cases {
		out := a.Decide(tc.goal)
		if out.Decided {
			t.Errorf("%s: decided (verified=%v), want residue", tc.name, out.Verified)
			continue
		}
		if out.Reason != tc.reason {
			t.Errorf("%s: residue reason %q, want %q", tc.name, out.Reason, tc.reason)
		}
	}
}

func TestDecideWholeNetworkChecksOnChain(t *testing.T) {
	a := chainAnalysis(t, 3)
	for _, check := range []string{"loops", "blackholes", "multipath-consistency", "mgmt-reachability", "no-leak"} {
		out := a.Decide(tiered.Goal{Check: check})
		if !out.Decided || !out.Verified {
			t.Errorf("%s on clean chain: decided=%v verified=%v reason=%s, want decided verified",
				check, out.Decided, out.Verified, out.Reason)
		}
	}
}

func TestDetPreconditionResidue(t *testing.T) {
	// Figure 2 has mutual OSPF<->BGP redistribution: the deterministic
	// path must refuse it, and whole-space checks become residue.
	net, err := testnets.Build(testnets.Figure2Texts()...)
	if err != nil {
		t.Fatal(err)
	}
	a := tiered.NewAnalysis(net.Graph)
	out := a.Decide(tiered.Goal{Check: "blackholes"})
	if out.Decided {
		t.Fatalf("blackholes on figure2: decided (verified=%v), want residue", out.Verified)
	}
	if out.Reason != "dynamic-redistribution" {
		t.Fatalf("residue reason %q, want dynamic-redistribution", out.Reason)
	}
}

func TestCheckDisabledReturnsFallbackUntouched(t *testing.T) {
	a := chainAnalysis(t, 2)
	want := &core.Result{Verified: true}
	got, err := tiered.Check(a, tiered.Options{Tiers: "none"}, tiered.Goal{Check: "loops"},
		func() (*core.Result, error) { return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("disabled tiers: fallback result not returned as-is")
	}
	if got.Tier != "" || got.FastPathElapsed != 0 {
		t.Fatalf("disabled tiers stamped Tier=%q FastPathElapsed=%v on the result", got.Tier, got.FastPathElapsed)
	}
}

func TestCheckDecidedSkipsFallback(t *testing.T) {
	a := chainAnalysis(t, 2)
	res, err := tiered.Check(a, tiered.Options{Blame: true}, tiered.Goal{Check: "loops"},
		func() (*core.Result, error) {
			t.Fatal("fallback ran for a decided goal")
			return nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != tiered.TierGraph || !res.Verified {
		t.Fatalf("Tier=%q Verified=%v, want graph verified", res.Tier, res.Verified)
	}
	if len(res.Blame) == 0 {
		t.Fatal("Blame option set but synthesized result carries none")
	}
}

func TestCheckResidueStampsFallbackResult(t *testing.T) {
	a := chainAnalysis(t, 2)
	res, err := tiered.Check(a, tiered.Options{},
		tiered.Goal{Check: "reachability", Src: "R1", MaxFailures: 1,
			Subnet: network.MustParsePrefix("10.100.2.0/24"), HasSubnet: true},
		func() (*core.Result, error) { return &core.Result{Verified: true}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != tiered.TierSAT {
		t.Fatalf("residue fallback Tier=%q, want sat", res.Tier)
	}
}

func TestSynthesizeFalsified(t *testing.T) {
	out := tiered.Outcome{Decided: true, Verified: false, Reason: "test"}
	res := tiered.Synthesize(out, 5*time.Millisecond, false)
	if res.Tier != tiered.TierGraph || res.Verified {
		t.Fatalf("Tier=%q Verified=%v, want graph falsified", res.Tier, res.Verified)
	}
	if res.Elapsed != 5*time.Millisecond || res.FastPathElapsed != 5*time.Millisecond {
		t.Fatalf("Elapsed=%v FastPathElapsed=%v, want 5ms each", res.Elapsed, res.FastPathElapsed)
	}
	if res.Counterexample == nil || res.Counterexample.Env == nil {
		t.Fatal("falsified synthesis must carry a counterexample with a non-nil environment")
	}
	if res.Counterexample.Assignment != nil {
		t.Fatal("graph-tier counterexample has no SAT assignment to decode")
	}
}
