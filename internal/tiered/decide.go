package tiered

import (
	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/simulator"
)

// propertyOrigin matches the origin the SAT path attaches to the
// property assertion itself, so fast-path blame stays in the same
// vocabulary (and trivially-true verdicts blame exactly what SAT does).
var propertyOrigin = provenance.Origin{Kind: "property"}

// Decide attempts a definitive verdict for the goal. The decision rules,
// in order of cost:
//
//  1. Trivially-true properties (no loop candidates, no management
//     interfaces, no external peers) — sound for any failure budget.
//  2. May-graph verdicts: if the over-approximate forwarding graph says
//     src cannot reach the destination region (optionally avoiding the
//     waypoint), then no environment and no stable state can make it
//     reach — verifying isolation/waypoint/bounded-length vacuously and
//     falsifying reachability, for any failure budget.
//  3. The deterministic path: when the network's stable state is provably
//     unique and environment-independent (detPrecondition), simulate one
//     representative per forwarding-equivalence class and evaluate the
//     property concretely — both polarities under zero failures,
//     falsification only under a positive failure budget.
//
// Everything else is residue and falls through to SAT.
func (a *Analysis) Decide(goal Goal) Outcome {
	for _, r := range append(append([]string{}, goal.sources()...), goal.Via) {
		if r != "" && a.G.Topo.Node(r) == nil {
			return residue("unknown-router")
		}
	}
	switch goal.Check {
	case "loops":
		if len(a.loopCandidates()) == 0 {
			return verified("no-loop-candidates", []provenance.Origin{propertyOrigin})
		}
		return a.detDecide(goal, wholeSpace)
	case "blackholes", "multipath-consistency":
		return a.detDecide(goal, wholeSpace)
	case "mgmt-reachability":
		if len(a.managementAddrs()) == 0 {
			return verified("no-management-interfaces", []provenance.Origin{propertyOrigin})
		}
		return a.detMgmt(goal)
	case "no-leak":
		if len(a.G.Topo.Externals) == 0 {
			return verified("no-external-peers", []provenance.Origin{propertyOrigin})
		}
		// Exports are functions of the symbolic announcements; the graph
		// abstraction has no sound bound for them.
		return residue("environment-dependent-exports")
	case "reachability", "reachability-all", "isolation", "waypoint",
		"bounded-length", "bounded-length-all", "equal-lengths":
		if !goal.HasSubnet {
			return residue("missing-subnet")
		}
		if len(goal.sources()) == 0 {
			return residue("missing-source")
		}
		if out := a.mayDecide(goal); out.Decided {
			return out
		}
		return a.detDecide(goal, goal.Subnet)
	}
	return residue("unsupported-check")
}

// mayDecide derives verdicts that need only the over-approximation.
func (a *Analysis) mayDecide(goal Goal) Outcome {
	srcs := goal.sources()
	region := goal.Subnet
	reach := make([]bool, len(srcs))
	var blockers []provenance.Origin
	for i, src := range srcs {
		r, b := a.mayReach(src, region, "")
		reach[i] = r
		blockers = append(blockers, b...)
	}
	unreachBlame := func() []provenance.Origin {
		out := append([]provenance.Origin{propertyOrigin}, blockers...)
		provenance.SortOrigins(out)
		return provenance.DedupeOrigins(out)
	}
	allUnreach := true
	for _, r := range reach {
		allUnreach = allUnreach && !r
	}
	switch goal.Check {
	case "isolation":
		if !reach[0] {
			return verified("may-unreachable", unreachBlame())
		}
	case "bounded-length", "bounded-length-all":
		if allUnreach {
			return verified("may-unreachable", unreachBlame())
		}
	case "equal-lengths":
		// Pairwise property: vacuous when at most one source can ever
		// reach.
		n := 0
		for _, r := range reach {
			if r {
				n++
			}
		}
		if n <= 1 {
			return verified("may-unreachable", unreachBlame())
		}
	case "waypoint":
		if ok, b := a.mayReach(goal.Src, region, goal.Via); !ok {
			blame := append([]provenance.Origin{propertyOrigin}, b...)
			provenance.SortOrigins(blame)
			return verified("cannot-avoid-waypoint", provenance.DedupeOrigins(blame))
		}
	case "reachability", "reachability-all":
		for i, r := range reach {
			if !r {
				return a.mayFalsifyReach(goal, srcs[i], unreachBlame())
			}
		}
	}
	return residue("may-graph-inconclusive")
}

// mayFalsifyReach turns a may-unreachability proof into a falsification.
// Unreachability alone shows no stable state delivers src's traffic; a
// counterexample additionally needs some stable state to exist for a
// destination in the subnet, witnessed by the simulator's empty-
// environment fixpoint (the zero-failure environment is admissible under
// every failure budget).
func (a *Analysis) mayFalsifyReach(goal Goal, src string, blame []provenance.Origin) Outcome {
	rep := goal.Subnet.First()
	env := simulator.NewEnvironment()
	if _, err := a.sim.Run(rep, env); err != nil {
		return residue("no-convergence")
	}
	return falsified("may-unreachable:"+src, blame, config.Packet{DstIP: rep}, env)
}

// detDecide evaluates the goal concretely on the unique stable state,
// one representative destination per forwarding-equivalence class.
func (a *Analysis) detDecide(goal Goal, region network.Prefix) Outcome {
	if a.detReason != "" {
		return residue(a.detReason)
	}
	if a.aclReason != "" {
		return residue(a.aclReason)
	}
	reps, ok := a.reps(region)
	if !ok {
		return residue("too-many-fecs")
	}
	blame := []provenance.Origin{propertyOrigin}
	for _, rep := range reps {
		pl, reason := a.plane(rep)
		if reason != "" {
			return residue(reason)
		}
		violated, reason := pl.evaluate(goal)
		if reason != "" {
			return residue(reason)
		}
		if violated {
			return falsified("stable-state-violation", pl.blame(), pl.pkt, pl.env)
		}
		blame = append(blame, pl.blame()...)
	}
	if goal.MaxFailures > 0 {
		// The unique-stable-state argument only covers the zero-failure
		// environment; nothing was falsified there, but a failure could
		// still break the property.
		return residue("failure-budget")
	}
	provenance.SortOrigins(blame)
	return verified("stable-state", provenance.DedupeOrigins(blame))
}

// detMgmt evaluates management reachability: for every management
// address, every other router must reach it. Each address is its own
// forwarding-equivalence class.
func (a *Analysis) detMgmt(goal Goal) Outcome {
	if a.detReason != "" {
		return residue(a.detReason)
	}
	if a.aclReason != "" {
		return residue(a.aclReason)
	}
	blame := []provenance.Origin{propertyOrigin}
	for _, m := range a.managementAddrs() {
		pl, reason := a.plane(m.Addr)
		if reason != "" {
			return residue(reason)
		}
		reach := pl.reach(false)
		for _, n := range a.G.Topo.Nodes {
			if n.Name != m.Router && !reach[n.Name] {
				return falsified("mgmt-unreachable:"+n.Name, pl.blame(), pl.pkt, pl.env)
			}
		}
		blame = append(blame, pl.blame()...)
	}
	if goal.MaxFailures > 0 {
		return residue("failure-budget")
	}
	provenance.SortOrigins(blame)
	return verified("stable-state", provenance.DedupeOrigins(blame))
}

// plane is the concrete data plane for one representative destination:
// the simulator's stable state plus the ACL-filtered forwarding edges,
// mirroring the encoder's DataFwd relation.
type plane struct {
	a      *Analysis
	rep    network.IP
	pkt    config.Packet
	env    *simulator.Environment
	states map[string]*simulator.RouterState
	// edges[x] lists internal routers x data-forwards to (control hop
	// surviving both directional ACLs); extFwd[x] marks a surviving hop
	// to an external peer.
	edges  map[string][]string
	extFwd map[string]bool
}

// plane simulates the representative under the empty environment and
// checks the state is environment-independent; a non-empty reason is
// residue.
func (a *Analysis) plane(rep network.IP) (*plane, string) {
	env := simulator.NewEnvironment()
	res, err := a.sim.Run(rep, env)
	if err != nil {
		return nil, "no-convergence"
	}
	// Environment independence: external announcements can inject BGP
	// records of at most the filtered prefix length; if every BGP
	// speaker's installed route is strictly longer, longest-prefix-match
	// selection keeps every forwarding decision identical under any
	// announcements (see DESIGN.md §14).
	bound := a.maxExtPlen(rep)
	if bound >= 0 {
		for _, n := range a.G.Topo.Nodes {
			if a.G.Configs[n.Name].BGP == nil {
				continue
			}
			st := res.States[n.Name]
			if !st.Best.Valid || st.Best.PrefixLen <= bound {
				return nil, "external-influence"
			}
		}
	}
	pl := &plane{
		a: a, rep: rep, pkt: config.Packet{DstIP: rep}, env: env,
		states: res.States, edges: map[string][]string{}, extFwd: map[string]bool{},
	}
	pl.buildEdges()
	return pl, ""
}

// buildEdges applies the walk's ACL discipline to every control hop.
func (p *plane) buildEdges() {
	topo := p.a.G.Topo
	for _, n := range topo.Nodes {
		st := p.states[n.Name]
		if st == nil || !st.Best.Valid || st.DeliveredLocal || st.DroppedNull {
			continue
		}
		cfg := p.a.G.Configs[n.Name]
		for _, h := range st.Hops {
			if h.Ext != "" {
				if p.aclPermits(cfg, p.extIface(n.Name, h.Ext), false) {
					p.extFwd[n.Name] = true
				}
				continue
			}
			link := topo.FindLink(n.Name, h.Node)
			var outIface, inIface string
			if link != nil {
				outIface = link.IfaceOf(topo.Node(n.Name))
				inIface = link.IfaceOf(topo.Node(h.Node))
			}
			if !p.aclPermits(cfg, outIface, false) {
				continue
			}
			if !p.aclPermits(p.a.G.Configs[h.Node], inIface, true) {
				continue
			}
			p.edges[n.Name] = append(p.edges[n.Name], h.Node)
		}
	}
}

func (p *plane) extIface(router, ext string) string {
	for _, e := range p.a.G.Topo.ExternalsOf(p.a.G.Topo.Node(router)) {
		if e.Name == ext {
			return e.Iface
		}
	}
	return ""
}

// aclPermits mirrors the simulator's per-interface directional filter.
func (p *plane) aclPermits(cfg *config.Router, ifaceName string, inbound bool) bool {
	if ifaceName == "" {
		return true
	}
	iface := cfg.Iface(ifaceName)
	if iface == nil {
		return true
	}
	name := iface.OutACL
	if inbound {
		name = iface.InACL
	}
	if name == "" {
		return true
	}
	acl := cfg.ACLs[name]
	if acl == nil {
		return true
	}
	return acl.Permits(p.pkt)
}

func (p *plane) delivered(router string) bool {
	st := p.states[router]
	return st != nil && st.Best.Valid && st.DeliveredLocal
}

// reach mirrors the encoder's Reach relation: a router reaches the
// destination when it delivers locally, exits to an external peer
// (countExit only), or data-forwards to an internal router that reaches.
func (p *plane) reach(countExit bool) map[string]bool {
	rev := map[string][]string{}
	for x, hs := range p.edges {
		for _, h := range hs {
			rev[h] = append(rev[h], x)
		}
	}
	out := map[string]bool{}
	var queue []string
	for _, n := range p.a.G.Topo.Nodes {
		if p.delivered(n.Name) || (countExit && p.extFwd[n.Name]) {
			out[n.Name] = true
			queue = append(queue, n.Name)
		}
	}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for _, x := range rev[at] {
			if !out[x] {
				out[x] = true
				queue = append(queue, x)
			}
		}
	}
	return out
}

// reachAvoiding mirrors ReachAvoiding: reach computed with the waypoint
// router removed from the graph.
func (p *plane) reachAvoiding(avoid string) map[string]bool {
	rev := map[string][]string{}
	for x, hs := range p.edges {
		if x == avoid {
			continue
		}
		for _, h := range hs {
			if h != avoid {
				rev[h] = append(rev[h], x)
			}
		}
	}
	out := map[string]bool{}
	var queue []string
	for _, n := range p.a.G.Topo.Nodes {
		if n.Name != avoid && p.delivered(n.Name) {
			out[n.Name] = true
			queue = append(queue, n.Name)
		}
	}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for _, x := range rev[at] {
			if !out[x] {
				out[x] = true
				queue = append(queue, x)
			}
		}
	}
	return out
}

// lens mirrors PathLengths: over live branches (data edges into reaching
// routers), a delivered router has length 0 and every other reaching
// router's length is one more than its longest live branch. A live cycle
// would make the SAT relation unbounded-by-construction; declare residue
// rather than reason about it.
func (p *plane) lens() (map[string]int, bool) {
	reach := p.reach(false)
	live := map[string][]string{}
	for x, hs := range p.edges {
		for _, h := range hs {
			if reach[h] {
				live[x] = append(live[x], h)
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	out := map[string]int{}
	ok := true
	var visit func(x string) int
	visit = func(x string) int {
		if color[x] == gray {
			ok = false
			return 0
		}
		if color[x] == black {
			return out[x]
		}
		color[x] = gray
		v := 0
		if p.delivered(x) {
			v = 0
		} else {
			for _, h := range live[x] {
				if l := visit(h) + 1; l > v {
					v = l
				}
				if !ok {
					break
				}
			}
		}
		color[x] = black
		out[x] = v
		return v
	}
	for x := range live {
		visit(x)
		if !ok {
			return nil, false
		}
	}
	return out, true
}

// evaluate checks the goal's property on this plane, mirroring the
// internal/properties formulas clause for clause. It returns
// (violated, residueReason).
func (p *plane) evaluate(goal Goal) (bool, string) {
	switch goal.Check {
	case "reachability", "reachability-all":
		reach := p.reach(false)
		for _, src := range goal.sources() {
			if !reach[src] {
				return true, ""
			}
		}
		return false, ""
	case "isolation":
		return p.reach(false)[goal.Src], ""
	case "waypoint":
		return p.reachAvoiding(goal.Via)[goal.Src], ""
	case "bounded-length", "bounded-length-all":
		reach := p.reach(false)
		lens, ok := p.lens()
		if !ok {
			return false, "live-cycle"
		}
		for _, src := range goal.sources() {
			if reach[src] && lens[src] > goal.Hops {
				return true, ""
			}
		}
		return false, ""
	case "equal-lengths":
		reach := p.reach(false)
		lens, ok := p.lens()
		if !ok {
			return false, "live-cycle"
		}
		srcs := goal.sources()
		for i := 0; i < len(srcs); i++ {
			for j := i + 1; j < len(srcs); j++ {
				if reach[srcs[i]] && reach[srcs[j]] && lens[srcs[i]] != lens[srcs[j]] {
					return true, ""
				}
			}
		}
		return false, ""
	case "blackholes":
		incoming := map[string]bool{}
		for _, hs := range p.edges {
			for _, h := range hs {
				incoming[h] = true
			}
		}
		for _, n := range p.a.G.Topo.Nodes {
			if !incoming[n.Name] {
				continue
			}
			st := p.states[n.Name]
			handled := len(p.edges[n.Name]) > 0 || p.extFwd[n.Name] ||
				(st != nil && st.Best.Valid && (st.DeliveredLocal || st.DroppedNull))
			if !handled {
				return true, ""
			}
		}
		return false, ""
	case "multipath-consistency":
		reach := p.reach(true)
		for _, n := range p.a.G.Topo.Nodes {
			if !reach[n.Name] {
				continue
			}
			st := p.states[n.Name]
			if st == nil || !st.Best.Valid || st.DeliveredLocal || st.DroppedNull {
				continue
			}
			cfg := p.a.G.Configs[n.Name]
			for _, h := range st.Hops {
				if h.Ext != "" {
					if !p.aclPermits(cfg, p.extIface(n.Name, h.Ext), false) {
						return true, ""
					}
					continue
				}
				if !containsStr(p.edges[n.Name], h.Node) || !reach[h.Node] {
					return true, ""
				}
			}
		}
		return false, ""
	case "loops":
		for _, r := range p.a.loopCandidates() {
			taint := map[string]bool{r: true}
			queue := []string{r}
			for len(queue) > 0 {
				at := queue[0]
				queue = queue[1:]
				for _, h := range p.edges[at] {
					if !taint[h] {
						taint[h] = true
						queue = append(queue, h)
					}
				}
			}
			for x := range taint {
				if x != r && containsStr(p.edges[x], r) {
					return true, ""
				}
			}
		}
		return false, ""
	}
	return false, "unsupported-check"
}

// blame names the routing decisions the plane's verdict rests on: each
// router's installed best route, in the provenance vocabulary the SAT
// path's counterexample blame uses.
func (p *plane) blame() []provenance.Origin {
	out := []provenance.Origin{propertyOrigin}
	for _, n := range p.a.G.Topo.Nodes {
		st := p.states[n.Name]
		if st == nil || !st.Best.Valid {
			continue
		}
		out = append(out, provenance.Origin{
			Router: n.Name, Proto: st.Best.Proto.String(), Kind: "selection", Name: st.Best.Origin,
		})
	}
	provenance.SortOrigins(out)
	return provenance.DedupeOrigins(out)
}

// maxExtPlen bounds the prefix length of any BGP record derived from an
// external announcement anywhere in the network, for destinations in
// rep's forwarding-equivalence class: the longest length surviving some
// external session's import filter (-1 when nothing survives). Internal
// propagation preserves the length (internal-session policy is
// prefix-list-only under detPrecondition) and aggregation only shortens
// it, so the per-import bound is global.
func (a *Analysis) maxExtPlen(rep network.IP) int {
	bound := -1
	for _, sess := range a.G.Sessions {
		if sess.Kind != protograph.EBGPExternal {
			continue
		}
		if b := extPlenBound(a.G.Configs[sess.A.Name], sess.NbrAtA.InMap, rep); b > bound {
			bound = b
		}
	}
	return bound
}

// extPlenBound is the conservative per-session bound: the longest
// announcement prefix length that may survive the inbound route map for
// this destination class.
func extPlenBound(cfg *config.Router, mapName string, rep network.IP) int {
	if mapName == "" {
		return 32
	}
	rm := cfg.RouteMaps[mapName]
	if rm == nil {
		return -1 // applyRouteMap invalidates everything on a missing map
	}
	bound := -1
	for plen := 32; plen >= 0; plen-- {
		if plenMaySurvive(cfg, rm, plen, rep) {
			bound = plen
			break
		}
	}
	return bound
}

// plenMaySurvive runs the route map's clause scan abstractly: the prefix
// -list component evaluates concretely under the hoisted semantics
// (destination plus record length), the community component of an
// announcement is unknown and treated as possibly-either. A clause that
// may match and permits lets the length survive; a deny that certainly
// matches stops it; a deny that only may match falls through.
func plenMaySurvive(cfg *config.Router, rm *config.RouteMap, plen int, rep network.IP) bool {
	for _, cl := range rm.Clauses {
		if cl.MatchPrefixList != "" {
			pl := cfg.PrefixLists[cl.MatchPrefixList]
			if pl == nil || !prefixListPermitsHoisted(pl, plen, rep) {
				continue // clause cannot match this length/destination
			}
		}
		certain := true
		if cl.MatchCommunity != "" {
			if cfg.CommunityLists[cl.MatchCommunity] == nil {
				continue // clauseMatches is false on a missing list
			}
			certain = false // depends on the announcement's communities
		}
		if cl.Action == config.Permit {
			return true
		}
		if certain {
			return false
		}
		// may-deny: the announcement might fall through to later clauses
	}
	return false // implicit deny
}

// prefixListPermitsHoisted mirrors the simulator's hoisted prefix-list
// evaluation: first-bits match on the destination, length bounds on the
// record.
func prefixListPermitsHoisted(pl *config.PrefixList, plen int, dstIP network.IP) bool {
	for _, e := range pl.Entries {
		if dstIP.Mask(e.Prefix.Len) != e.Prefix.Addr {
			continue
		}
		lo, hi := e.Prefix.Len, e.Prefix.Len
		if e.Ge != 0 {
			lo, hi = e.Ge, 32
		}
		if e.Le != 0 {
			hi = e.Le
			if e.Ge == 0 {
				lo = e.Prefix.Len
			}
		}
		if plen >= lo && plen <= hi {
			return e.Action == config.Permit
		}
	}
	return false
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
