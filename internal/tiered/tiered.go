// Package tiered is a sound graph-analysis fast path in front of the SAT
// pipeline. It extends the protocol-level decomposition of
// internal/protograph into two conservative approximations of the
// network's forwarding behavior:
//
//   - an over-approximation ("may-graph"): every router pair that could
//     possibly exchange traffic for some destination under some
//     environment — per-protocol adjacency closure, BGP session edges,
//     static next hops — cut only by ACLs that provably discard every
//     packet of the query's destination set; and
//   - an under-approximation (the "deterministic path"): for networks
//     whose routing is environment-independent up to prefix-length
//     domination, the concrete simulator's unique stable state, evaluated
//     once per forwarding-equivalence class of the destination set.
//
// A goal is answered definitively only when the relevant approximation is
// sound for its property class (see DESIGN.md §14 for the per-class
// argument); everything else is classified as residue and falls through
// to the existing SAT path unchanged. Fast-path verdicts carry
// provenance (Outcome.Blame) in the same vocabulary as the SAT path.
package tiered

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/obs/cost"
	"repro/internal/provenance"
	"repro/internal/simulator"
)

// Tier labels for core.Result.Tier.
const (
	// TierGraph marks a verdict answered by the graph fast path.
	TierGraph = "graph"
	// TierSAT marks a verdict that fell through to the SAT pipeline.
	TierSAT = "sat"
)

// ValidateTiers rejects malformed -tiers values. The accepted grammar
// mirrors core.ValidatePasses: "" (default, graph tier on), "graph,sat",
// "graph" (same: residue always falls through to SAT), "sat" or "none"
// (fast path disabled, today's behavior exactly).
func ValidateTiers(s string) error {
	switch strings.TrimSpace(s) {
	case "", "graph,sat", "graph", "sat", "none":
		return nil
	}
	return fmt.Errorf("tiered: unknown -tiers value %q (want graph,sat | graph | sat | none)", s)
}

// Enabled reports whether the graph tier runs for the given -tiers value.
func Enabled(s string) bool {
	switch strings.TrimSpace(s) {
	case "", "graph,sat", "graph":
		return true
	}
	return false
}

// Goal names one property query in the tier's vocabulary. Callers at the
// property boundary (service, CLI, harness, fuzz) translate their specs
// into a Goal; the tier cannot interpret the SAT path's opaque property
// terms, so the translation is where the two pipelines are kept aligned.
type Goal struct {
	// Check selects the property class: reachability, reachability-all,
	// isolation, waypoint, bounded-length, bounded-length-all,
	// equal-lengths, loops, blackholes, multipath-consistency,
	// mgmt-reachability or no-leak.
	Check string
	// Src is the source router for per-source properties; Srcs the
	// source set for the -all / equal-lengths forms.
	Src  string
	Srcs []string
	// Via is the waypoint router.
	Via string
	// Subnet is the destination restriction (properties.DstIn); HasSubnet
	// distinguishes the whole-space queries (loops, blackholes, ...).
	Subnet    network.Prefix
	HasSubnet bool
	// Hops bounds path length for bounded-length.
	Hops int
	// MaxLen is the no-leak export-length bound.
	MaxLen int
	// MaxFailures is the environment's link-failure budget (0 = the
	// NoFailures assumption). Definitive *verified* verdicts from the
	// deterministic path require 0; over-approximation verdicts and
	// falsifications are sound for any budget.
	MaxFailures int
}

// sources returns the goal's source routers (single or multi form).
func (g Goal) sources() []string {
	if len(g.Srcs) > 0 {
		return g.Srcs
	}
	if g.Src != "" {
		return []string{g.Src}
	}
	return nil
}

// Outcome is the tier's answer for one goal. Decided=false is residue:
// the analysis was not sound (or not precise enough) for this goal and
// the SAT path must answer it.
type Outcome struct {
	// Decided is true when the tier returns a definitive verdict.
	Decided bool
	// Verified is the verdict when Decided.
	Verified bool
	// Reason names the decision rule (or, for residue, why the goal fell
	// through) — surfaced in telemetry.
	Reason string
	// Blame lists the configuration origins the verdict depends on, in
	// the same vocabulary as the SAT path's UNSAT-core / counterexample
	// blame.
	Blame []provenance.Origin
	// Packet and Env witness a falsified verdict: a concrete stable
	// state (the simulator's empty-environment fixpoint) in which the
	// property fails. Both are nil on verified or residue outcomes.
	Packet *config.Packet
	Env    *simulator.Environment
}

func verified(reason string, blame []provenance.Origin) Outcome {
	return Outcome{Decided: true, Verified: true, Reason: reason, Blame: blame}
}

func falsified(reason string, blame []provenance.Origin, pkt config.Packet, env *simulator.Environment) Outcome {
	return Outcome{Decided: true, Verified: false, Reason: reason, Blame: blame, Packet: &pkt, Env: env}
}

func residue(reason string) Outcome { return Outcome{Reason: reason} }

// Options configure the orchestrator.
type Options struct {
	// Tiers is the -tiers value (see ValidateTiers).
	Tiers string
	// Blame attaches Outcome.Blame to synthesized results, mirroring
	// core.Options.Blame.
	Blame bool
}

// Check attempts the goal on the graph tier and falls back to the SAT
// path on residue. The fallback closure runs the existing pipeline
// (core.Model.Check / Session.Check / CheckGoal) unchanged; Check stamps
// Result.Tier and Result.FastPathElapsed either way. With the fast path
// disabled (Enabled false) the fallback result is returned untouched —
// byte-for-byte today's behavior.
func Check(a *Analysis, opts Options, goal Goal, fallback func() (*core.Result, error)) (*core.Result, error) {
	if a == nil || !Enabled(opts.Tiers) {
		return fallback()
	}
	snap := cost.TakeSnap()
	start := time.Now()
	out := a.Decide(goal)
	elapsed := time.Since(start)
	if out.Decided {
		return Synthesize(out, elapsed, opts.Blame), nil
	}
	fastNode := cost.New("fastpath")
	fastNode.Charge(snap)
	res, err := fallback()
	if err != nil {
		return nil, err
	}
	res.Tier = TierSAT
	res.FastPathElapsed = elapsed
	// The residue's ledger came from the SAT path; graft the graph
	// tier's (fruitless) classification window in front so the query's
	// full bill is in one tree.
	if res.Cost != nil {
		res.Cost.Children = append([]*cost.Node{fastNode}, res.Cost.Children...)
	}
	return res, nil
}

// Synthesize renders a decided outcome as a core.Result so fast-path
// verdicts flow through the same reporting paths (service verdicts, CLI
// JSON, bench rows) as SAT verdicts. Falsified outcomes carry a
// counterexample with a nil Assignment: the packet and environment are
// concrete, but there is no SAT model to decode symbolic state from.
func Synthesize(out Outcome, elapsed time.Duration, blame bool) *core.Result {
	ledger := cost.New("goal")
	ledger.Child("fastpath").AddWall(elapsed)
	res := &core.Result{
		Verified:        out.Verified,
		Tier:            TierGraph,
		FastPathElapsed: elapsed,
		Elapsed:         elapsed,
		Cost:            ledger,
	}
	if blame {
		res.Blame = out.Blame
	}
	if !out.Verified {
		env := out.Env
		if env == nil {
			env = simulator.NewEnvironment()
		}
		var pkt config.Packet
		if out.Packet != nil {
			pkt = *out.Packet
		}
		res.Counterexample = &core.Counterexample{Packet: pkt, Env: env}
	}
	return res
}
