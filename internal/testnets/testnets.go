// Package testnets provides small canonical networks used across the test
// suites: the simulator tests, the encoder differential tests and the
// property tests all share these fixtures so the two semantics are
// exercised on identical inputs.
package testnets

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/protograph"
)

// Net bundles parsed configurations with the inferred topology and
// protocol graph.
type Net struct {
	Routers map[string]*config.Router
	Topo    *network.Topology
	Graph   *protograph.Graph
}

// Build parses the given configuration texts and derives topology and
// protocol graph.
func Build(texts ...string) (*Net, error) {
	var list []*config.Router
	byName := map[string]*config.Router{}
	for _, t := range texts {
		r, err := config.Parse(t)
		if err != nil {
			return nil, err
		}
		list = append(list, r)
		byName[r.Name] = r
	}
	topo, err := config.BuildTopology(list)
	if err != nil {
		return nil, err
	}
	g, err := protograph.Build(topo, byName)
	if err != nil {
		return nil, err
	}
	return &Net{Routers: byName, Topo: topo, Graph: g}, nil
}

// MustBuild panics on error.
func MustBuild(texts ...string) *Net {
	n, err := Build(texts...)
	if err != nil {
		panic(err)
	}
	return n
}

// OSPFChain returns an n-router OSPF chain R1—R2—…—Rn. Each router Ri has
// a stub subnet 10.100.i.0/24; inter-router links are 10.0.i.0/30.
func OSPFChain(n int) *Net {
	return MustBuild(OSPFChainTexts(n)...)
}

// OSPFChainTexts returns the raw configuration texts of OSPFChain, for
// consumers that need the unparsed files (e.g. service requests).
func OSPFChainTexts(n int) []string {
	texts := make([]string, n)
	for i := 1; i <= n; i++ {
		t := fmt.Sprintf("hostname R%d\n!\n", i)
		t += fmt.Sprintf("interface Loopback0\n ip address 10.100.%d.1 255.255.255.0\n!\n", i)
		if i > 1 {
			t += fmt.Sprintf("interface Eth0\n ip address 10.0.%d.2 255.255.255.252\n!\n", i-1)
		}
		if i < n {
			t += fmt.Sprintf("interface Eth1\n ip address 10.0.%d.1 255.255.255.252\n!\n", i)
		}
		t += "router ospf 1\n"
		t += fmt.Sprintf(" network 10.100.%d.0 0.0.0.255 area 0\n", i)
		if i > 1 {
			t += fmt.Sprintf(" network 10.0.%d.0 0.0.0.3 area 0\n", i-1)
		}
		if i < n {
			t += fmt.Sprintf(" network 10.0.%d.0 0.0.0.3 area 0\n", i)
		}
		t += "!\n"
		texts[i-1] = t
	}
	return texts
}

// StubIP returns the stub-subnet address of router Ri in OSPFChain/RIPChain
// networks.
func StubIP(i int) network.IP {
	return network.MustParseIP(fmt.Sprintf("10.100.%d.1", i))
}

// RIPChain is OSPFChain with RIP instead of OSPF.
func RIPChain(n int) *Net {
	texts := make([]string, n)
	for i := 1; i <= n; i++ {
		t := fmt.Sprintf("hostname R%d\n!\n", i)
		t += fmt.Sprintf("interface Loopback0\n ip address 10.100.%d.1 255.255.255.0\n!\n", i)
		if i > 1 {
			t += fmt.Sprintf("interface Eth0\n ip address 10.0.%d.2 255.255.255.252\n!\n", i-1)
		}
		if i < n {
			t += fmt.Sprintf("interface Eth1\n ip address 10.0.%d.1 255.255.255.252\n!\n", i)
		}
		t += "router rip\n"
		t += fmt.Sprintf(" network 10.100.%d.0/24\n", i)
		if i > 1 {
			t += fmt.Sprintf(" network 10.0.%d.0/30\n", i-1)
		}
		if i < n {
			t += fmt.Sprintf(" network 10.0.%d.0/30\n", i)
		}
		t += "!\n"
		texts[i-1] = t
	}
	return MustBuild(texts...)
}

// EBGPTriangle returns three routers in distinct ASes, fully meshed with
// eBGP, each originating a /24.
//
//	R1 (AS 65001, 10.100.1.0/24) — R2 (AS 65002, 10.100.2.0/24)
//	   \                          /
//	     R3 (AS 65003, 10.100.3.0/24)
func EBGPTriangle() *Net {
	mk := func(i int, peers [2]int, myAddr, peerAddr [2]string) string {
		t := fmt.Sprintf("hostname R%d\n!\n", i)
		t += fmt.Sprintf("interface Loopback0\n ip address 10.100.%d.1 255.255.255.0\n!\n", i)
		for j := 0; j < 2; j++ {
			t += fmt.Sprintf("interface Eth%d\n ip address %s 255.255.255.252\n!\n", j, myAddr[j])
		}
		t += fmt.Sprintf("router bgp %d\n", 65000+i)
		for j := 0; j < 2; j++ {
			t += fmt.Sprintf(" neighbor %s remote-as %d\n", peerAddr[j], 65000+peers[j])
		}
		t += fmt.Sprintf(" network 10.100.%d.0 mask 255.255.255.0\n!\n", i)
		return t
	}
	// Links: R1-R2 on 10.0.12.0/30, R1-R3 on 10.0.13.0/30, R2-R3 on 10.0.23.0/30.
	r1 := mk(1, [2]int{2, 3}, [2]string{"10.0.12.1", "10.0.13.1"}, [2]string{"10.0.12.2", "10.0.13.2"})
	r2 := mk(2, [2]int{1, 3}, [2]string{"10.0.12.2", "10.0.23.1"}, [2]string{"10.0.12.1", "10.0.23.2"})
	r3 := mk(3, [2]int{1, 2}, [2]string{"10.0.13.2", "10.0.23.2"}, [2]string{"10.0.13.1", "10.0.23.1"})
	return MustBuild(r1, r2, r3)
}

// Figure2 builds the running example of the paper (Figure 2): three
// internal routers; R1 and R2 speak eBGP to external neighbors and iBGP to
// each other, everyone speaks OSPF internally, BGP redistributes into OSPF
// (so R3 learns external destinations) and OSPF into BGP (so internal
// subnets are announced externally).
//
// Topology:
//
//	N1 — R1 — R3 (subnet S3 = 10.3.3.0/24)
//	      |
//	N2 — R2 — N3
//
// The import route-maps let tests steer preferences; by default R1 sets
// local-pref 120 on routes from N1 and R2 sets 110 on routes from N2, so
// R1's egress via N1 is preferred network-wide.
func Figure2() *Net {
	return MustBuild(Figure2Texts()...)
}

// Figure2Texts returns the raw configuration texts of Figure2, for
// consumers that need the unparsed files (e.g. service requests).
func Figure2Texts() []string {
	r1 := `
hostname R1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
!
interface Eth1
 ip address 10.0.13.1 255.255.255.252
!
interface Serial0
 ip address 10.9.1.1 255.255.255.252
!
interface Loopback0
 ip address 10.1.1.1 255.255.255.0
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 10.0.13.0 0.0.0.3 area 0
 network 10.1.1.0 0.0.0.255 area 0
 redistribute bgp metric 20
!
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.9.1.2 remote-as 65101
 neighbor 10.9.1.2 description N1
 neighbor 10.9.1.2 route-map FROM-N1 in
 neighbor 10.0.12.2 remote-as 65001
 redistribute ospf
 redistribute connected
!
route-map FROM-N1 permit 10
 set local-preference 120
!
`
	r2 := `
hostname R2
!
interface Eth0
 ip address 10.0.12.2 255.255.255.252
!
interface Serial0
 ip address 10.9.2.1 255.255.255.252
!
interface Serial1
 ip address 10.9.3.1 255.255.255.252
!
interface Loopback0
 ip address 10.2.2.1 255.255.255.0
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 10.2.2.0 0.0.0.255 area 0
 redistribute bgp metric 20
!
router bgp 65001
 bgp router-id 2.2.2.2
 neighbor 10.9.2.2 remote-as 65102
 neighbor 10.9.2.2 description N2
 neighbor 10.9.2.2 route-map FROM-N2 in
 neighbor 10.9.3.2 remote-as 65103
 neighbor 10.9.3.2 description N3
 neighbor 10.0.12.1 remote-as 65001
 redistribute ospf
 redistribute connected
!
route-map FROM-N2 permit 10
 set local-preference 110
!
`
	r3 := `
hostname R3
!
interface Eth0
 ip address 10.0.13.2 255.255.255.252
!
interface Loopback0
 ip address 10.3.3.1 255.255.255.0
!
router ospf 1
 network 10.0.13.0 0.0.0.3 area 0
 network 10.3.3.0 0.0.0.255 area 0
!
`
	return []string{r1, r2, r3}
}

// ACLSquare builds the multipath-consistency example of Figure 6(a):
// R1 uses ECMP toward R2 and R3; R3's egress toward R5 carries an ACL that
// drops traffic to the destination subnet, so one branch is dropped.
//
//	     R2
//	   /    \
//	R1        R5 — S (10.50.0.0/24)
//	   \    /
//	     R3   (out-ACL on the R3→R5 link)
func ACLSquare() *Net {
	r1 := `
hostname R1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
!
interface Eth1
 ip address 10.0.13.1 255.255.255.252
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 10.0.13.0 0.0.0.3 area 0
 maximum-paths 4
!
`
	r2 := `
hostname R2
!
interface Eth0
 ip address 10.0.12.2 255.255.255.252
!
interface Eth1
 ip address 10.0.25.1 255.255.255.252
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 10.0.25.0 0.0.0.3 area 0
!
`
	r3 := `
hostname R3
!
interface Eth0
 ip address 10.0.13.2 255.255.255.252
!
interface Eth1
 ip address 10.0.35.1 255.255.255.252
 ip access-group BLOCK out
!
router ospf 1
 network 10.0.13.0 0.0.0.3 area 0
 network 10.0.35.0 0.0.0.3 area 0
!
access-list BLOCK deny ip any 10.50.0.0 0.0.0.255
access-list BLOCK permit ip any any
!
`
	r5 := `
hostname R5
!
interface Eth0
 ip address 10.0.25.2 255.255.255.252
!
interface Eth1
 ip address 10.0.35.2 255.255.255.252
!
interface Loopback0
 ip address 10.50.0.1 255.255.255.0
!
router ospf 1
 network 10.0.25.0 0.0.0.3 area 0
 network 10.0.35.0 0.0.0.3 area 0
 network 10.50.0.0 0.0.0.255 area 0
!
`
	return MustBuild(r1, r2, r3, r5)
}

// StaticNull builds a two-router network where R1 reaches R2's stub via a
// static route and blackholes 172.16.0.0/16 via null0.
func StaticNull() *Net {
	r1 := `
hostname R1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
!
ip route 10.100.2.0 255.255.255.0 10.0.12.2
ip route 172.16.0.0 255.255.0.0 null0
!
`
	r2 := `
hostname R2
!
interface Eth0
 ip address 10.0.12.2 255.255.255.252
!
interface Loopback0
 ip address 10.100.2.1 255.255.255.0
!
`
	return MustBuild(r1, r2)
}

// Hijackable builds the §8.1 management-hijack scenario: R1 carries a
// management loopback 192.168.50.1/32, distributed internally via OSPF
// (administrative distance 110). R2 peers with an external neighbor N with
// no inbound filtering, so N can announce 192.168.50.1/32 and — since
// eBGP's administrative distance of 20 beats OSPF's — divert R2's
// management traffic out of the network. Setting filtered to true installs
// the route-map that blocks the hijack.
func Hijackable(filtered bool) *Net {
	filterRef := ""
	filterDef := ""
	if filtered {
		filterRef = " neighbor 10.9.9.2 route-map NO-HIJACK in\n"
		filterDef = `ip prefix-list MGMT seq 5 deny 192.168.50.0/24 le 32
ip prefix-list MGMT seq 10 permit 0.0.0.0/0 le 32
!
route-map NO-HIJACK permit 10
 match ip address prefix-list MGMT
!
`
	}
	r1 := `
hostname R1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
!
interface Management0
 ip address 192.168.50.1 255.255.255.255
 management
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 192.168.50.1 0.0.0.0 area 0
!
`
	r2 := `
hostname R2
!
interface Eth0
 ip address 10.0.12.2 255.255.255.252
!
interface Serial0
 ip address 10.9.9.1 255.255.255.252
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
!
router bgp 65001
 bgp router-id 2.2.2.2
 neighbor 10.9.9.2 remote-as 65999
 neighbor 10.9.9.2 description N
` + filterRef + `!
` + filterDef
	return MustBuild(r1, r2)
}

// MultihopIBGP builds two border routers peering iBGP over their
// loopbacks, with OSPF providing the session transport — exercising the
// per-address network copies of §4.
func MultihopIBGP() *Net {
	b1 := `
hostname B1
!
interface Eth0
 ip address 10.0.12.1 255.255.255.252
!
interface Loopback0
 ip address 192.168.0.1 255.255.255.255
!
interface Serial0
 ip address 10.9.1.1 255.255.255.252
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 192.168.0.1 0.0.0.0 area 0
!
router bgp 65001
 bgp router-id 1.1.1.1
 neighbor 10.9.1.2 remote-as 65100
 neighbor 10.9.1.2 description N1
 neighbor 192.168.0.2 remote-as 65001
!
`
	b2 := `
hostname B2
!
interface Eth0
 ip address 10.0.12.2 255.255.255.252
!
interface Loopback0
 ip address 192.168.0.2 255.255.255.255
!
router ospf 1
 network 10.0.12.0 0.0.0.3 area 0
 network 192.168.0.2 0.0.0.0 area 0
!
router bgp 65001
 bgp router-id 2.2.2.2
 neighbor 192.168.0.1 remote-as 65001
!
`
	return MustBuild(b1, b2)
}
