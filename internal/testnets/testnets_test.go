package testnets

import "testing"

func TestFixturesBuild(t *testing.T) {
	fixtures := map[string]*Net{
		"ospf-chain":    OSPFChain(3),
		"rip-chain":     RIPChain(3),
		"ebgp-triangle": EBGPTriangle(),
		"figure2":       Figure2(),
		"acl-square":    ACLSquare(),
		"static-null":   StaticNull(),
		"hijack-open":   Hijackable(false),
		"hijack-fixed":  Hijackable(true),
		"multihop-ibgp": MultihopIBGP(),
	}
	for name, net := range fixtures {
		if len(net.Routers) < 2 {
			t.Errorf("%s: only %d routers", name, len(net.Routers))
		}
		if !net.Topo.Connected() {
			t.Errorf("%s: disconnected", name)
		}
		if len(net.Graph.Instances) == 0 {
			t.Errorf("%s: no protocol instances", name)
		}
	}
	if _, err := Build("hostname A\n!\nbogus\n"); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStubIPs(t *testing.T) {
	if StubIP(3).String() != "10.100.3.1" {
		t.Fatal("stub addressing")
	}
}
