// Package topogen generates synthetic data-center networks: k-ary
// folded-Clos (fat-tree) fabrics running eBGP with multipath, structured
// like the §8.2 benchmarks ("similar to those described in Propane").
//
// A k-pod fabric has k pods of k/2 top-of-rack and k/2 aggregation
// routers plus (k/2)² cores — 5k²/4 routers total, matching the paper's
// 5(2), 45(6), 125(10), 245(14), 405(18) routers(pods) series. Every
// router speaks eBGP in its own private AS; each ToR originates a /24;
// cores peer with an external backbone behind an inbound route filter.
package topogen

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/network"
)

// FatTree describes one generated fabric.
type FatTree struct {
	K       int // number of pods (even)
	Routers []*config.Router
	// ToRs[p] lists the ToR router names of pod p; Aggs likewise. Cores
	// lists the core routers.
	ToRs  [][]string
	Aggs  [][]string
	Cores []string
}

// backboneASN is the AS of the external backbone behind every core.
const backboneASN = 65000

// ToRSubnet returns the /24 advertised by ToR t of pod p.
func ToRSubnet(p, t int) network.Prefix {
	return network.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", p, t))
}

// ToRName, AggName and CoreName name fabric routers.
func ToRName(p, t int) string   { return fmt.Sprintf("tor-%d-%d", p, t) }
func AggName(p, a int) string   { return fmt.Sprintf("agg-%d-%d", p, a) }
func CoreName(c int) string     { return fmt.Sprintf("core-%d", c) }
func BackboneName(c int) string { return fmt.Sprintf("bb-%d", c) }

// builder allocates point-to-point /30 subnets and assembles router
// configuration text.
type builder struct {
	nextLink uint32
	cfgs     map[string]*routerDraft
	order    []string
}

type routerDraft struct {
	name       string
	asn        uint32
	ifaces     []string
	bgpLines   []string
	extraLines []string
	nIface     int
}

func (b *builder) router(name string, asn uint32) *routerDraft {
	if d, ok := b.cfgs[name]; ok {
		return d
	}
	d := &routerDraft{name: name, asn: asn}
	b.cfgs[name] = d
	b.order = append(b.order, name)
	return d
}

// linkSubnet allocates the next /30 from 172.16.0.0/12.
func (b *builder) linkSubnet() (network.IP, network.IP) {
	base := uint32(network.MustParseIP("172.16.0.0")) + b.nextLink*4
	b.nextLink++
	return network.IP(base + 1), network.IP(base + 2)
}

// connect wires two routers with a /30 and reciprocal eBGP sessions.
func (b *builder) connect(a, z *routerDraft) {
	ipA, ipZ := b.linkSubnet()
	ifA := fmt.Sprintf("Eth%d", a.nIface)
	ifZ := fmt.Sprintf("Eth%d", z.nIface)
	a.nIface++
	z.nIface++
	a.ifaces = append(a.ifaces, fmt.Sprintf("interface %s\n ip address %v 255.255.255.252\n!", ifA, ipA))
	z.ifaces = append(z.ifaces, fmt.Sprintf("interface %s\n ip address %v 255.255.255.252\n!", ifZ, ipZ))
	a.bgpLines = append(a.bgpLines, fmt.Sprintf(" neighbor %v remote-as %d", ipZ, z.asn))
	z.bgpLines = append(z.bgpLines, fmt.Sprintf(" neighbor %v remote-as %d", ipA, a.asn))
}

// external wires a router to a named external backbone neighbor, with an
// inbound filter blocking fabric address space.
func (b *builder) external(r *routerDraft, name string, asn uint32, filter bool) {
	ipR, ipX := b.linkSubnet()
	ifR := fmt.Sprintf("Ext%d", r.nIface)
	r.nIface++
	r.ifaces = append(r.ifaces, fmt.Sprintf("interface %s\n ip address %v 255.255.255.252\n!", ifR, ipR))
	r.bgpLines = append(r.bgpLines,
		fmt.Sprintf(" neighbor %v remote-as %d", ipX, asn),
		fmt.Sprintf(" neighbor %v description %s", ipX, name))
	if filter {
		r.bgpLines = append(r.bgpLines, fmt.Sprintf(" neighbor %v route-map BLOCK-FABRIC in", ipX))
		r.extraLines = append(r.extraLines,
			"ip prefix-list FABRIC seq 5 deny 10.0.0.0/8 le 32",
			"ip prefix-list FABRIC seq 10 deny 172.16.0.0/12 le 32",
			"ip prefix-list FABRIC seq 15 permit 0.0.0.0/0 le 32",
			"!",
			"route-map BLOCK-FABRIC permit 10",
			" match ip address prefix-list FABRIC",
			"!",
		)
	}
}

func (d *routerDraft) text(networks []network.Prefix, multipath int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "hostname %s\n!\n", d.name)
	for _, i := range d.ifaces {
		sb.WriteString(i + "\n")
	}
	fmt.Fprintf(&sb, "router bgp %d\n", d.asn)
	for _, l := range d.bgpLines {
		sb.WriteString(l + "\n")
	}
	for _, n := range networks {
		fmt.Fprintf(&sb, " network %v mask %v\n", n.Addr, network.MaskOf(n.Len))
	}
	if multipath > 1 {
		fmt.Fprintf(&sb, " maximum-paths %d\n", multipath)
	}
	sb.WriteString("!\n")
	for _, l := range d.extraLines {
		sb.WriteString(l + "\n")
	}
	return sb.String()
}

// Generate builds a k-pod fat-tree (k even, ≥ 2).
func Generate(k int) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topogen: pod count %d must be even and ≥ 2", k)
	}
	half := k / 2
	b := &builder{cfgs: map[string]*routerDraft{}}
	ft := &FatTree{K: k}

	// Internal ASNs count up from the private range; the backbone AS
	// (65000) is skipped so no fabric router ever collides with it — a
	// collision would make cores see two neighbors in one AS, activating
	// MED comparison the fabric never asked for.
	asn := uint32(64512)
	nextASN := func() uint32 {
		asn++
		if asn == backboneASN {
			asn++
		}
		return asn
	}

	// Cores.
	cores := make([]*routerDraft, half*half)
	for c := range cores {
		cores[c] = b.router(CoreName(c), nextASN())
		ft.Cores = append(ft.Cores, cores[c].name)
	}
	// Pods.
	for p := 0; p < k; p++ {
		var torNames, aggNames []string
		aggs := make([]*routerDraft, half)
		for a := 0; a < half; a++ {
			aggs[a] = b.router(AggName(p, a), nextASN())
			aggNames = append(aggNames, aggs[a].name)
		}
		for t := 0; t < half; t++ {
			tor := b.router(ToRName(p, t), nextASN())
			torNames = append(torNames, tor.name)
			// ToR hosts its /24.
			sub := ToRSubnet(p, t)
			tor.ifaces = append(tor.ifaces, fmt.Sprintf("interface Hosts0\n ip address %v 255.255.255.0\n!",
				sub.Addr+1))
			for a := 0; a < half; a++ {
				b.connect(tor, aggs[a])
			}
		}
		// Aggregation to core: agg a connects to cores [a*half, (a+1)*half).
		for a := 0; a < half; a++ {
			for c := a * half; c < (a+1)*half; c++ {
				b.connect(aggs[a], cores[c])
			}
		}
		ft.ToRs = append(ft.ToRs, torNames)
		ft.Aggs = append(ft.Aggs, aggNames)
	}
	// External backbone behind every core.
	for c, core := range cores {
		b.external(core, BackboneName(c), backboneASN, true)
	}

	// Render and parse.
	for _, name := range b.order {
		d := b.cfgs[name]
		var nets []network.Prefix
		if strings.HasPrefix(name, "tor-") {
			var p, t int
			fmt.Sscanf(name, "tor-%d-%d", &p, &t)
			nets = []network.Prefix{ToRSubnet(p, t)}
		}
		text := d.text(nets, 4)
		r, err := config.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("topogen: generated config invalid: %w\n%s", err, text)
		}
		ft.Routers = append(ft.Routers, r)
	}
	return ft, nil
}

// NumRouters returns the fabric size for a pod count, 5k²/4.
func NumRouters(k int) int { return 5 * k * k / 4 }

// AllToRs flattens the ToR names.
func (ft *FatTree) AllToRs() []string {
	var out []string
	for _, pod := range ft.ToRs {
		out = append(out, pod...)
	}
	return out
}

// AllSpines returns aggregation and core routers (the paper checks spine
// equivalence; we expose both tiers).
func (ft *FatTree) AllSpines() []string {
	var out []string
	for _, pod := range ft.Aggs {
		out = append(out, pod...)
	}
	out = append(out, ft.Cores...)
	return out
}
