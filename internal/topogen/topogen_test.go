package topogen

import (
	"testing"

	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/protograph"
	"repro/internal/simulator"
)

func build(t *testing.T, k int) (*FatTree, *protograph.Graph) {
	t.Helper()
	ft, err := Generate(k)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := config.BuildTopology(ft.Routers)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*config.Router{}
	for _, r := range ft.Routers {
		byName[r.Name] = r
	}
	g, err := protograph.Build(topo, byName)
	if err != nil {
		t.Fatal(err)
	}
	return ft, g
}

func TestSizesMatchPaper(t *testing.T) {
	// Figure 8's series: routers (pods).
	want := map[int]int{2: 5, 6: 45, 10: 125, 14: 245, 18: 405}
	for k, n := range want {
		if NumRouters(k) != n {
			t.Fatalf("NumRouters(%d) = %d, want %d", k, NumRouters(k), n)
		}
	}
	ft, _ := build(t, 2)
	if len(ft.Routers) != 5 {
		t.Fatalf("k=2 has %d routers", len(ft.Routers))
	}
	ft4, _ := build(t, 4)
	if len(ft4.Routers) != NumRouters(4) {
		t.Fatalf("k=4 has %d routers, want %d", len(ft4.Routers), NumRouters(4))
	}
}

func TestRejectsOddPods(t *testing.T) {
	if _, err := Generate(3); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := Generate(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTopologyShape(t *testing.T) {
	ft, g := build(t, 4)
	if !g.Topo.Connected() {
		t.Fatal("fabric not connected")
	}
	// k=4: 4 pods × (2 ToR + 2 agg) + 4 cores = 20 routers; ToR-agg links
	// 4*2*2=16, agg-core 4*2*2=16.
	if len(g.Topo.Links) != 32 {
		t.Fatalf("links = %d, want 32", len(g.Topo.Links))
	}
	// One external per core.
	if len(g.Topo.Externals) != 4 {
		t.Fatalf("externals = %d", len(g.Topo.Externals))
	}
	// All sessions are eBGP (every router in its own AS).
	for _, s := range g.Sessions {
		if s.Kind == protograph.IBGP {
			t.Fatal("unexpected iBGP session")
		}
	}
	_ = ft
}

func TestFabricRoutes(t *testing.T) {
	ft, g := build(t, 4)
	sim := simulator.New(g)
	dst := network.MustParseIP("10.2.1.10") // pod 2, ToR 1 subnet
	res, err := sim.Run(dst, simulator.NewEnvironment())
	if err != nil {
		t.Fatal(err)
	}
	// Every ToR reaches the destination subnet, within 4 hops, and
	// cross-pod ToRs use ECMP over both aggs.
	for p, pod := range ft.ToRs {
		for _, tor := range pod {
			if tor == ToRName(2, 1) {
				continue
			}
			w := sim.Walk(res, tor, config.Packet{DstIP: dst, Protocol: 6})
			if !w.AllDelivered() {
				t.Fatalf("%s: %v", tor, w)
			}
			if w.MaxHops > 4 {
				t.Fatalf("%s: path length %d exceeds 4", tor, w.MaxHops)
			}
			if p != 2 && len(res.States[tor].Hops) != 2 {
				t.Fatalf("%s: expected ECMP over 2 aggs, got %v", tor, res.States[tor].Hops)
			}
		}
	}
	// The externally announced default route reaches ToRs through cores.
	env := simulator.NewEnvironment()
	for c := range ft.Cores {
		env.Announce(BackboneName(c), simulator.Announcement{
			Prefix: network.MustParsePrefix("0.0.0.0/0"), PathLen: 2,
		})
	}
	ext := network.MustParseIP("8.8.8.8")
	res2, err := sim.Run(ext, env)
	if err != nil {
		t.Fatal(err)
	}
	w := sim.Walk(res2, ToRName(0, 0), config.Packet{DstIP: ext, Protocol: 6})
	if !w.Outcomes[simulator.Exited] {
		t.Fatalf("default route should lead out: %v", w)
	}
	// The inbound filter blocks fabric-space hijacks at the border.
	hijackEnv := simulator.NewEnvironment().Announce(BackboneName(0), simulator.Announcement{
		Prefix: network.MustParsePrefix("10.2.1.0/25"), PathLen: 1,
	})
	res3, err := sim.Run(network.MustParseIP("10.2.1.10"), hijackEnv)
	if err != nil {
		t.Fatal(err)
	}
	w3 := sim.Walk(res3, ToRName(0, 0), config.Packet{DstIP: dst, Protocol: 6})
	if !w3.AllDelivered() {
		t.Fatalf("hijack of fabric space should be filtered: %v", w3)
	}
}

func TestGeneratedConfigsRoundTrip(t *testing.T) {
	ft, _ := build(t, 2)
	for _, r := range ft.Routers {
		text := config.Print(r)
		if _, err := config.Parse(text); err != nil {
			t.Fatalf("%s: print∘parse: %v", r.Name, err)
		}
	}
	if lines := config.TotalLines(ft.Routers); lines < 50 {
		t.Fatalf("suspicious config size %d", lines)
	}
}

// TestASNsAvoidBackbone pins the fabric ASN allocator away from the
// backbone AS: at 1280 routers the sequential counter walks straight
// through 65000, and a fabric router in the backbone's AS makes every
// adjacent core see two neighbors in one AS — silently activating MED
// comparison (and the modular pipeline's "med" residue) fabric-wide.
func TestASNsAvoidBackbone(t *testing.T) {
	if testing.Short() {
		t.Skip("k=32 generation is a few seconds")
	}
	ft, err := Generate(32)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]string{}
	for _, r := range ft.Routers {
		if r.BGP == nil {
			t.Fatalf("%s: no BGP stanza", r.Name)
		}
		asn := r.BGP.ASN
		if asn == backboneASN {
			t.Fatalf("%s allocated the backbone AS %d", r.Name, backboneASN)
		}
		if prev, dup := seen[asn]; dup {
			t.Fatalf("AS %d allocated twice: %s and %s", asn, prev, r.Name)
		}
		seen[asn] = r.Name
	}
}
