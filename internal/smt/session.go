package smt

import (
	"repro/internal/sat"
)

// Session answers a sequence of satisfiability queries that share a large
// common formula N. The shared assertions are bit-blasted into the SAT
// solver exactly once; each Check blasts only its goals (assumptions and
// the negated property), guarded by a fresh activation literal that is
// assumed for the query and retired — by a permanent unit clause — when
// the next query begins. K queries therefore cost one blast of N instead
// of K, and the solver additionally keeps its learned clauses, variable
// activity and saved phases across queries.
//
// Soundness of the guard scheme: only top-level clauses of a goal carry
// the activation literal. Sub-term Tseitin gates are definitional
// equivalences (satisfiable under any assignment of their inputs), so
// leaving them behind cannot constrain later queries; clauses learned
// while an activation literal was assumed either mention its negation
// (and are satisfied once the literal is retired) or are globally valid.
//
// A Session is not safe for concurrent use; callers that share one across
// goroutines must serialize Check calls.
type Session struct {
	sol *Solver

	act    sat.Lit // current activation literal
	active bool

	checks       int
	sharedBlasts int

	// snapshots for per-check deltas
	statsBefore   sat.Stats
	varsBefore    int
	clausesBefore int
	last          CheckStats
}

// CheckStats describes the incremental work of one session check.
type CheckStats struct {
	// Stats is the SAT search work of this check alone (the underlying
	// solver counters are cumulative across the session).
	Stats sat.Stats
	// NewVars and NewClauses count the SAT variables and problem clauses
	// blasted for this check's goals — zero re-blasting of the shared
	// formula shows up here as small numbers that do not grow with N.
	NewVars, NewClauses int
}

// NewSession returns an empty session for terms of the given context.
func NewSession(ctx *Context) *Session {
	return &Session{sol: NewSolver(ctx)}
}

// Solver exposes the underlying incremental solver (stats, model, sizes).
func (ss *Session) Solver() *Solver { return ss.sol }

// Assumptions returns the solver assumptions of the current check (the
// activation literal of the last Prepare). An Unsat verdict certifies
// UNSAT(database ∧ assumptions); a DRAT check of the session's proof
// trace must therefore be given these literals.
func (ss *Session) Assumptions() []sat.Lit {
	if !ss.active {
		return nil
	}
	return []sat.Lit{ss.act}
}

// Assert adds a permanent constraint shared by every later check. The
// first Assert marks the shared blast; core uses SharedBlasts to prove
// the encoding is never repeated.
func (ss *Session) Assert(t *Term) {
	if ss.sharedBlasts == 0 {
		ss.sharedBlasts = 1
	}
	ss.sol.Assert(t)
}

// SharedBlasts reports how many times the shared formula was bit-blasted:
// 1 after the first Assert, forever. (A fresh-solver flow would pay one
// blast per query; the counter exists so benchmarks can assert the
// difference.)
func (ss *Session) SharedBlasts() int { return ss.sharedBlasts }

// Checks returns the number of Solve calls completed.
func (ss *Session) Checks() int { return ss.checks }

// Simplify runs top-level CNF simplification on the blasted shared
// formula. Activation literals are assumptions, never root facts, so
// simplification cannot erase guarded structure from earlier checks.
func (ss *Session) Simplify() bool { return ss.sol.Simplify() }

// Prepare begins a new check: it retires the previous activation literal,
// allocates a fresh one, and blasts the goals under it. Snapshot counters
// are reset so the following Solve reports per-check deltas.
func (ss *Session) Prepare(goals ...*Term) {
	if ss.active {
		ss.sol.RetireLit(ss.act)
	}
	ss.act = ss.sol.NewFreeLit()
	ss.active = true
	ss.varsBefore = ss.sol.NumSATVars()
	ss.clausesBefore = ss.sol.NumSATClauses()
	for _, g := range goals {
		ss.sol.AssertUnder(g, ss.act)
	}
	ss.statsBefore = ss.sol.SATStats()
}

// Solve decides shared ∧ goals for the goals of the last Prepare. After a
// Sat result the model remains readable (Model) until the next Prepare.
func (ss *Session) Solve() sat.Status {
	st := ss.sol.CheckAssuming(ss.act)
	ss.checks++
	ss.last = CheckStats{
		Stats:      statsDelta(ss.statsBefore, ss.sol.SATStats()),
		NewVars:    ss.sol.NumSATVars() - ss.varsBefore,
		NewClauses: ss.sol.NumSATClauses() - ss.clausesBefore,
	}
	return st
}

// FinishExternalSolve records the accounting of a check whose search ran
// outside the session solver (the parallel engine solves on clones, so
// the session's own counters do not move). after must be the adopted
// cumulative counters — a winner clone's Stats, or the template base
// plus the summed cube deltas — which extend the session's counters the
// same way a sequential Solve would have.
func (ss *Session) FinishExternalSolve(after sat.Stats) {
	ss.checks++
	ss.last = CheckStats{
		Stats:      statsDelta(ss.statsBefore, after),
		NewVars:    ss.sol.NumSATVars() - ss.varsBefore,
		NewClauses: ss.sol.NumSATClauses() - ss.clausesBefore,
	}
}

// Check is Prepare followed by Solve.
func (ss *Session) Check(goals ...*Term) sat.Status {
	ss.Prepare(goals...)
	return ss.Solve()
}

// LastStats returns the incremental work of the most recent Solve.
func (ss *Session) LastStats() CheckStats { return ss.last }

// Model extracts concrete values after a Sat result.
func (ss *Session) Model() Assignment { return ss.sol.Model() }

// Interrupt aborts a running Solve from another goroutine.
func (ss *Session) Interrupt() { ss.sol.Interrupt() }

// ResetInterrupt clears a pending interrupt; call only once the goroutine
// that might Interrupt has been joined.
func (ss *Session) ResetInterrupt() { ss.sol.ResetInterrupt() }

// statsDelta subtracts the monotone counters; MaxLevel, a high-water
// mark, is carried over from the later snapshot.
func statsDelta(before, after sat.Stats) sat.Stats {
	d := sat.Stats{
		Decisions:    after.Decisions - before.Decisions,
		Propagations: after.Propagations - before.Propagations,
		Conflicts:    after.Conflicts - before.Conflicts,
		Restarts:     after.Restarts - before.Restarts,
		Learned:      after.Learned - before.Learned,
		Deleted:      after.Deleted - before.Deleted,
		MaxLevel:     after.MaxLevel,
		Simplified:   after.Simplified - before.Simplified,
		Strengthened: after.Strengthened - before.Strengthened,
	}
	for i := range d.LBDHist {
		d.LBDHist[i] = after.LBDHist[i] - before.LBDHist[i]
	}
	return d
}
