package smt

import "fmt"

// Value is a concrete value for a variable: a boolean or a bitvector held
// as a uint64.
type Value struct {
	Bool bool
	BV   uint64
}

// Assignment maps variable names to concrete values.
type Assignment map[string]Value

// Eval evaluates t under the assignment. Unassigned variables default to
// false / zero, which matches the solver's default phase. Eval is the
// executable semantics the bit-blaster is tested against, and is also used
// to replay counterexample models.
func Eval(t *Term, a Assignment) Value {
	memo := make(map[*Term]Value)
	return eval(t, a, memo)
}

func eval(t *Term, a Assignment, memo map[*Term]Value) Value {
	if v, ok := memo[t]; ok {
		return v
	}
	var v Value
	switch t.op {
	case OpTrue:
		v = Value{Bool: true}
	case OpFalse:
		v = Value{Bool: false}
	case OpBoolVar:
		v = Value{Bool: a[t.name].Bool}
	case OpBVVar:
		v = Value{BV: a[t.name].BV & mask(t.Width())}
	case OpBVConst:
		v = Value{BV: t.val}
	case OpNot:
		v = Value{Bool: !eval(t.kids[0], a, memo).Bool}
	case OpAnd:
		v = Value{Bool: true}
		for _, k := range t.kids {
			if !eval(k, a, memo).Bool {
				v = Value{Bool: false}
				break
			}
		}
	case OpOr:
		v = Value{Bool: false}
		for _, k := range t.kids {
			if eval(k, a, memo).Bool {
				v = Value{Bool: true}
				break
			}
		}
	case OpIte:
		if eval(t.kids[0], a, memo).Bool {
			v = eval(t.kids[1], a, memo)
		} else {
			v = eval(t.kids[2], a, memo)
		}
	case OpEq:
		x, y := eval(t.kids[0], a, memo), eval(t.kids[1], a, memo)
		if t.kids[0].IsBool() {
			v = Value{Bool: x.Bool == y.Bool}
		} else {
			v = Value{Bool: x.BV == y.BV}
		}
	case OpBVAdd:
		x, y := eval(t.kids[0], a, memo), eval(t.kids[1], a, memo)
		v = Value{BV: (x.BV + y.BV) & mask(t.Width())}
	case OpBVSub:
		x, y := eval(t.kids[0], a, memo), eval(t.kids[1], a, memo)
		v = Value{BV: (x.BV - y.BV) & mask(t.Width())}
	case OpBVAnd:
		x, y := eval(t.kids[0], a, memo), eval(t.kids[1], a, memo)
		v = Value{BV: x.BV & y.BV}
	case OpBVUle:
		x, y := eval(t.kids[0], a, memo), eval(t.kids[1], a, memo)
		v = Value{Bool: x.BV <= y.BV}
	case OpBVUlt:
		x, y := eval(t.kids[0], a, memo), eval(t.kids[1], a, memo)
		v = Value{Bool: x.BV < y.BV}
	default:
		panic(fmt.Sprintf("smt: eval: unknown op %d", t.op))
	}
	memo[t] = v
	return v
}
