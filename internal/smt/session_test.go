package smt

import (
	"testing"

	"repro/internal/sat"
)

// TestSessionIsolation checks that goals of one check do not leak into the
// next: contradictory per-check goals over a shared formula each get the
// verdict a fresh solver would give.
func TestSessionIsolation(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	ss := NewSession(c)
	ss.Assert(c.Ule(x, c.BV(10, 8))) // shared: x ≤ 10

	if st := ss.Check(c.Eq(x, c.BV(3, 8))); st != sat.Sat {
		t.Fatalf("x=3 under x≤10: %v", st)
	}
	if got := ss.Model()["x"].BV; got != 3 {
		t.Fatalf("model x=%d, want 3", got)
	}
	if st := ss.Check(c.Eq(x, c.BV(20, 8))); st != sat.Unsat {
		t.Fatalf("x=20 under x≤10: %v", st)
	}
	// The x=20 goal must be gone: x=7 is again satisfiable.
	if st := ss.Check(c.Eq(x, c.BV(7, 8))); st != sat.Sat {
		t.Fatalf("x=7 after unsat check: %v", st)
	}
	if got := ss.Model()["x"].BV; got != 7 {
		t.Fatalf("model x=%d, want 7", got)
	}
	if ss.Checks() != 3 {
		t.Fatalf("checks=%d, want 3", ss.Checks())
	}
}

// TestSessionAgainstFresh cross-checks session verdicts against a fresh
// solver per query on a shared boolean formula.
func TestSessionAgainstFresh(t *testing.T) {
	c := NewContext()
	a, b, d := c.BoolVar("a"), c.BoolVar("b"), c.BoolVar("d")
	shared := []*Term{c.Or(a, b), c.Implies(a, d)}

	goals := [][]*Term{
		{a},
		{a, c.Not(d)},
		{c.Not(a), c.Not(b)},
		{b, c.Not(d)},
		{c.And(a, d)},
	}

	ss := NewSession(c)
	for _, s := range shared {
		ss.Assert(s)
	}
	for i, gs := range goals {
		fresh := NewSolver(c)
		for _, s := range shared {
			fresh.Assert(s)
		}
		for _, g := range gs {
			fresh.Assert(g)
		}
		want := fresh.Check()
		if got := ss.Check(gs...); got != want {
			t.Fatalf("query %d: session=%v fresh=%v", i, got, want)
		}
	}
}

// TestSessionSharedBlastOnce verifies the amortization claim: after the
// first check, further checks add only goal-sized increments, never the
// shared formula again.
func TestSessionSharedBlastOnce(t *testing.T) {
	c := NewContext()
	// A shared formula with real bit-blasting volume: three 16-bit sums.
	x := c.BVVar("x", 16)
	y := c.BVVar("y", 16)
	z := c.BVVar("z", 16)
	ss := NewSession(c)
	ss.Assert(c.Eq(c.Add(x, y), z))
	ss.Assert(c.Ule(c.Add(y, z), c.BV(40000, 16)))
	sharedVars := ss.Solver().NumSATVars()

	if ss.SharedBlasts() != 1 {
		t.Fatalf("shared blasts=%d, want 1", ss.SharedBlasts())
	}
	for i := uint64(0); i < 8; i++ {
		if st := ss.Check(c.Eq(x, c.BV(i, 16))); st != sat.Sat {
			t.Fatalf("check %d: %v", i, st)
		}
		cs := ss.LastStats()
		// Each goal x = const blasts no new bits beyond the activation
		// literal (x's bits and the adders already exist).
		if cs.NewVars > 1 {
			t.Fatalf("check %d blasted %d new vars, want ≤ 1 (shared re-blast?)", i, cs.NewVars)
		}
	}
	if ss.SharedBlasts() != 1 {
		t.Fatalf("shared blasts after 8 checks=%d, want 1", ss.SharedBlasts())
	}
	if v := ss.Solver().NumSATVars(); v >= 2*sharedVars {
		t.Fatalf("vars grew from %d to %d across 8 checks: shared structure re-blasted", sharedVars, v)
	}
}

// TestSessionStatsDelta checks the per-check stats are deltas, not the
// solver's cumulative counters.
func TestSessionStatsDelta(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 12)
	y := c.BVVar("y", 12)
	ss := NewSession(c)
	ss.Assert(c.Eq(c.Add(x, y), c.BV(100, 12)))

	var total int64
	for i := 0; i < 4; i++ {
		ss.Check(c.Ule(x, c.BV(uint64(10+i), 12)))
		d := ss.LastStats().Stats
		if d.Propagations < 0 || d.Conflicts < 0 || d.Decisions < 0 {
			t.Fatalf("negative delta: %+v", d)
		}
		total += d.Propagations
	}
	if cum := ss.Solver().SATStats().Propagations; total > cum {
		t.Fatalf("delta sum %d exceeds cumulative %d", total, cum)
	}
}

// TestSessionAssertBetweenChecks exercises the lazy shared-assert path the
// core session uses for property instrumentation: permanent constraints
// added between checks bind all later queries.
func TestSessionAssertBetweenChecks(t *testing.T) {
	c := NewContext()
	p, q := c.BoolVar("p"), c.BoolVar("q")
	ss := NewSession(c)
	ss.Assert(c.Or(p, q))

	if st := ss.Check(c.Not(q)); st != sat.Sat {
		t.Fatalf("¬q: %v", st)
	}
	ss.Assert(c.Not(p)) // permanent from now on
	if st := ss.Check(c.Not(q)); st != sat.Unsat {
		t.Fatalf("¬q after asserting ¬p: %v", st)
	}
	if st := ss.Check(q); st != sat.Sat {
		t.Fatalf("q after asserting ¬p: %v", st)
	}
}
