package smt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sat"
)

func TestConstFolding(t *testing.T) {
	c := NewContext()
	if c.And(c.True(), c.True()) != c.True() {
		t.Fatal("and of trues")
	}
	if c.And(c.True(), c.False()) != c.False() {
		t.Fatal("and with false")
	}
	if c.Or(c.False(), c.False()) != c.False() {
		t.Fatal("or of falses")
	}
	if c.Not(c.True()) != c.False() || c.Not(c.False()) != c.True() {
		t.Fatal("not on constants")
	}
	x := c.BoolVar("x")
	if c.Not(c.Not(x)) != x {
		t.Fatal("double negation")
	}
	if c.And(x, c.Not(x)) != c.False() {
		t.Fatal("x ∧ ¬x")
	}
	if c.Or(x, c.Not(x)) != c.True() {
		t.Fatal("x ∨ ¬x")
	}
	if c.And(x, x, x) != x {
		t.Fatal("idempotent and")
	}
	if c.Eq(x, x) != c.True() {
		t.Fatal("x = x")
	}
}

func TestBVConstFolding(t *testing.T) {
	c := NewContext()
	if got := c.Add(c.BV(3, 8), c.BV(4, 8)); got != c.BV(7, 8) {
		t.Fatalf("3+4 = %v", got)
	}
	// Overflow wraps.
	if got := c.Add(c.BV(255, 8), c.BV(1, 8)); got != c.BV(0, 8) {
		t.Fatalf("255+1 = %v", got)
	}
	if got := c.Sub(c.BV(0, 8), c.BV(1, 8)); got != c.BV(255, 8) {
		t.Fatalf("0-1 = %v", got)
	}
	if c.Ule(c.BV(3, 8), c.BV(4, 8)) != c.True() {
		t.Fatal("3<=4")
	}
	if c.Ult(c.BV(4, 8), c.BV(4, 8)) != c.False() {
		t.Fatal("4<4")
	}
	x := c.BVVar("x", 8)
	if c.Add(x, c.BV(0, 8)) != x {
		t.Fatal("x+0")
	}
	if c.Ule(c.BV(0, 8), x) != c.True() {
		t.Fatal("0<=x")
	}
	if c.Ule(x, c.BV(255, 8)) != c.True() {
		t.Fatal("x<=255")
	}
	if c.Ult(x, c.BV(0, 8)) != c.False() {
		t.Fatal("x<0")
	}
	if c.Eq(c.BV(9, 8), c.BV(9, 8)) != c.True() {
		t.Fatal("9=9")
	}
	if c.Eq(c.BV(9, 8), c.BV(8, 8)) != c.False() {
		t.Fatal("9=8")
	}
}

func TestHashConsing(t *testing.T) {
	c := NewContext()
	x, y := c.BoolVar("x"), c.BoolVar("y")
	a1 := c.And(x, y)
	a2 := c.And(y, x)
	if a1 != a2 {
		t.Fatal("commutative and not shared")
	}
	if c.BoolVar("x") != x {
		t.Fatal("variable not interned")
	}
	u, v := c.BVVar("u", 8), c.BVVar("v", 8)
	if c.Add(u, v) != c.Add(v, u) {
		t.Fatal("commutative add not shared")
	}
	if c.Eq(u, v) != c.Eq(v, u) {
		t.Fatal("symmetric eq not shared")
	}
}

func TestSortChecks(t *testing.T) {
	c := NewContext()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mixed-sort eq")
		}
	}()
	c.Eq(c.BoolVar("x"), c.BVVar("u", 8))
}

func TestVarRedeclarationPanics(t *testing.T) {
	c := NewContext()
	c.BVVar("u", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width change")
		}
	}()
	c.BVVar("u", 16)
}

func TestSimpleSatUnsat(t *testing.T) {
	c := NewContext()
	x, y := c.BoolVar("x"), c.BoolVar("y")

	s := NewSolver(c)
	s.Assert(c.Or(x, y))
	s.Assert(c.Not(x))
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	m := s.Model()
	if m["x"].Bool || !m["y"].Bool {
		t.Fatalf("model %v", m)
	}

	s2 := NewSolver(c)
	s2.Assert(x)
	s2.Assert(c.Not(x))
	if st := s2.Check(); st != sat.Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestBVArithmeticModels(t *testing.T) {
	c := NewContext()
	x := c.BVVar("bx", 8)
	y := c.BVVar("by", 8)

	s := NewSolver(c)
	s.Assert(c.Eq(c.Add(x, y), c.BV(10, 8)))
	s.Assert(c.Ult(x, y))
	s.Assert(c.Ugt(x, c.BV(2, 8)))
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	m := s.Model()
	gx, gy := m["bx"].BV, m["by"].BV
	if (gx+gy)&0xff != 10 || gx >= gy || gx <= 2 {
		t.Fatalf("model violates constraints: x=%d y=%d", gx, gy)
	}
}

func TestUnsatArithmetic(t *testing.T) {
	c := NewContext()
	x := c.BVVar("ux", 8)
	s := NewSolver(c)
	// x < 5 ∧ x > 9 is unsat.
	s.Assert(c.Ult(x, c.BV(5, 8)))
	s.Assert(c.Ugt(x, c.BV(9, 8)))
	if st := s.Check(); st != sat.Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestSubIdentityValid(t *testing.T) {
	// (x - y) + y = x is valid: its negation must be unsat.
	c := NewContext()
	x := c.BVVar("sx", 16)
	y := c.BVVar("sy", 16)
	s := NewSolver(c)
	s.Assert(c.Distinct(c.Add(c.Sub(x, y), y), x))
	if st := s.Check(); st != sat.Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestUleTotalOrderValid(t *testing.T) {
	// x ≤ y ∨ y ≤ x is valid.
	c := NewContext()
	x := c.BVVar("tx", 12)
	y := c.BVVar("ty", 12)
	s := NewSolver(c)
	s.Assert(c.Not(c.Or(c.Ule(x, y), c.Ule(y, x))))
	if st := s.Check(); st != sat.Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestUltIrreflexiveAndTransitive(t *testing.T) {
	c := NewContext()
	x := c.BVVar("ix", 8)
	y := c.BVVar("iy", 8)
	z := c.BVVar("iz", 8)
	// x<y ∧ y<z ∧ ¬(x<z) unsat.
	s := NewSolver(c)
	s.Assert(c.Ult(x, y))
	s.Assert(c.Ult(y, z))
	s.Assert(c.Not(c.Ult(x, z)))
	if st := s.Check(); st != sat.Unsat {
		t.Fatalf("transitivity: got %v", st)
	}
}

func TestIteSemantics(t *testing.T) {
	c := NewContext()
	p := c.BoolVar("p")
	x := c.BVVar("mx", 8)
	s := NewSolver(c)
	s.Assert(c.Eq(c.Ite(p, c.BV(7, 8), c.BV(9, 8)), x))
	s.Assert(p)
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	if m := s.Model(); m["mx"].BV != 7 {
		t.Fatalf("ite model %v", m)
	}
}

func TestInRange(t *testing.T) {
	c := NewContext()
	x := c.BVVar("rx", 32)
	s := NewSolver(c)
	// The shape produced by prefix hoisting: 192.168.0.0/16 range.
	lo := uint64(0xC0A80000)
	hi := uint64(0xC0A8FFFF)
	s.Assert(c.InRange(x, lo, hi))
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	if v := s.Model()["rx"].BV; v < lo || v > hi {
		t.Fatalf("model %x out of range", v)
	}
	s.Assert(c.Ult(x, c.BV(lo, 32)))
	if st := s.Check(); st != sat.Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestIncrementalSolving(t *testing.T) {
	c := NewContext()
	x := c.BVVar("nx", 8)
	s := NewSolver(c)
	s.Assert(c.Ule(x, c.BV(100, 8)))
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("phase1 %v", st)
	}
	s.Assert(c.Uge(x, c.BV(101, 8)))
	if st := s.Check(); st != sat.Unsat {
		t.Fatalf("phase2 %v", st)
	}
}

func TestEvalBasics(t *testing.T) {
	c := NewContext()
	x := c.BoolVar("x")
	u := c.BVVar("u", 8)
	f := c.And(x, c.Ule(u, c.BV(5, 8)))
	if !Eval(f, Assignment{"x": {Bool: true}, "u": {BV: 3}}).Bool {
		t.Fatal("want true")
	}
	if Eval(f, Assignment{"x": {Bool: true}, "u": {BV: 9}}).Bool {
		t.Fatal("want false")
	}
	if Eval(f, Assignment{"u": {BV: 3}}).Bool {
		t.Fatal("default x is false")
	}
	if got := Eval(c.Add(u, c.BV(250, 8)), Assignment{"u": {BV: 10}}); got.BV != 4 {
		t.Fatalf("wraparound eval: %d", got.BV)
	}
}

// randTerm builds a random boolean term over a fixed set of variables.
func randTerm(c *Context, rng *rand.Rand, depth int) *Term {
	bools := []*Term{c.BoolVar("p"), c.BoolVar("q"), c.BoolVar("r")}
	bvs := []*Term{c.BVVar("a", 4), c.BVVar("b", 4)}
	var bv func(d int) *Term
	bv = func(d int) *Term {
		if d <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return bvs[rng.Intn(len(bvs))]
			}
			return c.BV(uint64(rng.Intn(16)), 4)
		}
		switch rng.Intn(3) {
		case 0:
			return c.Add(bv(d-1), bv(d-1))
		case 1:
			return c.Sub(bv(d-1), bv(d-1))
		default:
			var cond *Term
			if d > 1 {
				cond = bools[rng.Intn(len(bools))]
			} else {
				cond = bools[0]
			}
			return c.Ite(cond, bv(d-1), bv(d-1))
		}
	}
	var bl func(d int) *Term
	bl = func(d int) *Term {
		if d <= 0 {
			return bools[rng.Intn(len(bools))]
		}
		switch rng.Intn(7) {
		case 0:
			return c.Not(bl(d - 1))
		case 1:
			return c.And(bl(d-1), bl(d-1))
		case 2:
			return c.Or(bl(d-1), bl(d-1), bl(d-1))
		case 3:
			return c.Eq(bl(d-1), bl(d-1))
		case 4:
			return c.Ule(bv(d-1), bv(d-1))
		case 5:
			return c.Eq(bv(d-1), bv(d-1))
		default:
			return c.Ult(bv(d-1), bv(d-1))
		}
	}
	return bl(depth)
}

// bruteForceSat exhaustively decides satisfiability over the fixed
// variable universe used by randTerm (3 bools × 2 4-bit bitvectors).
func bruteForceSat(t *Term) bool {
	for p := 0; p < 2; p++ {
		for q := 0; q < 2; q++ {
			for r := 0; r < 2; r++ {
				for a := uint64(0); a < 16; a++ {
					for b := uint64(0); b < 16; b++ {
						asg := Assignment{
							"p": {Bool: p == 1}, "q": {Bool: q == 1}, "r": {Bool: r == 1},
							"a": {BV: a}, "b": {BV: b},
						}
						if Eval(t, asg).Bool {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

func TestRandomFormulasAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		c := NewContext()
		f := randTerm(c, rng, 3)
		want := bruteForceSat(f)
		s := NewSolver(c)
		s.Assert(f)
		got := s.Check() == sat.Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v formula=%v", iter, got, want, f)
		}
		if got {
			// The extracted model must actually satisfy the formula.
			if !Eval(f, s.Model()).Bool {
				t.Fatalf("iter %d: model does not satisfy %v", iter, f)
			}
		}
	}
}

func TestQuickAddCommutes(t *testing.T) {
	// Property: bit-blasted addition agrees with machine addition.
	c := NewContext()
	x := c.BVVar("qx", 16)
	y := c.BVVar("qy", 16)
	sum := c.Add(x, y)
	err := quick.Check(func(a, b uint16) bool {
		asg := Assignment{"qx": {BV: uint64(a)}, "qy": {BV: uint64(b)}}
		return Eval(sum, asg).BV == uint64(a+b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareAgreesWithUint(t *testing.T) {
	c := NewContext()
	x := c.BVVar("cx", 16)
	y := c.BVVar("cy", 16)
	le := c.Ule(x, y)
	lt := c.Ult(x, y)
	err := quick.Check(func(a, b uint16) bool {
		asg := Assignment{"cx": {BV: uint64(a)}, "cy": {BV: uint64(b)}}
		return Eval(le, asg).Bool == (a <= b) && Eval(lt, asg).Bool == (a < b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestBlastAgainstEvalConcrete pins the bit-blaster against the evaluator:
// for random formulas, force each variable to a random concrete value and
// check the solver verdict matches Eval.
func TestBlastAgainstEvalConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 150; iter++ {
		c := NewContext()
		f := randTerm(c, rng, 4)
		asg := Assignment{
			"p": {Bool: rng.Intn(2) == 1},
			"q": {Bool: rng.Intn(2) == 1},
			"r": {Bool: rng.Intn(2) == 1},
			"a": {BV: uint64(rng.Intn(16))},
			"b": {BV: uint64(rng.Intn(16))},
		}
		s := NewSolver(c)
		s.Assert(f)
		// Pin all variables.
		for name, v := range asg {
			tm, okBool := c.vars[name]
			if !okBool {
				continue
			}
			if tm.IsBool() {
				if v.Bool {
					s.Assert(tm)
				} else {
					s.Assert(c.Not(tm))
				}
			} else {
				s.Assert(c.Eq(tm, c.BV(v.BV, tm.Width())))
			}
		}
		want := Eval(f, asg).Bool
		got := s.Check() == sat.Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v eval=%v asg=%v formula=%v", iter, got, want, asg, f)
		}
	}
}

func TestSolverStatsExposed(t *testing.T) {
	c := NewContext()
	x := c.BVVar("zx", 8)
	s := NewSolver(c)
	s.Assert(c.Eq(c.Add(x, x), c.BV(8, 8)))
	s.Check()
	if s.NumSATVars() == 0 || s.NumSATClauses() == 0 {
		t.Fatal("expected blasting to create vars/clauses")
	}
}

func TestConflictBudgetPropagates(t *testing.T) {
	c := NewContext()
	// A moderately hard instance: multiplication-free but wide.
	x := c.BVVar("hx", 24)
	y := c.BVVar("hy", 24)
	s := NewSolver(c)
	s.Assert(c.Eq(c.Add(x, y), c.BV(0xABCDEF, 24)))
	s.SetMaxConflicts(1)
	// Whatever the verdict, CheckLimited must not hang; most likely it
	// solves instantly by propagation, so just ensure no panic and a
	// definite answer or budget error.
	st, err := s.CheckLimited()
	if st == sat.Unsolved && err == nil {
		t.Fatal("unsolved without budget error")
	}
}

func TestTermString(t *testing.T) {
	c := NewContext()
	f := c.And(c.BoolVar("x"), c.Ule(c.BVVar("u", 8), c.BV(5, 8)))
	got := f.String()
	if got == "" {
		t.Fatal("empty render")
	}
}

func TestBVAnd(t *testing.T) {
	c := NewContext()
	if c.BVAnd(c.BV(0b1100, 4), c.BV(0b1010, 4)) != c.BV(0b1000, 4) {
		t.Fatal("const fold")
	}
	x := c.BVVar("ax", 8)
	if c.BVAnd(x, c.BV(0, 8)) != c.BV(0, 8) {
		t.Fatal("and zero")
	}
	if c.BVAnd(x, c.BV(255, 8)) != x {
		t.Fatal("and ones")
	}
	if c.BVAnd(x, x) != x {
		t.Fatal("idempotent")
	}
	// Blast agreement: masked equality behaves like prefix matching.
	y := c.BVVar("ay", 8)
	maskedEq := c.Eq(c.BVAnd(x, c.BV(0xF0, 8)), c.BVAnd(y, c.BV(0xF0, 8)))
	err := quick.Check(func(a, b uint8) bool {
		asg := Assignment{"ax": {BV: uint64(a)}, "ay": {BV: uint64(b)}}
		return Eval(maskedEq, asg).Bool == (a&0xF0 == b&0xF0)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(c)
	s.Assert(maskedEq)
	s.Assert(c.Distinct(x, y))
	if st := s.Check(); st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	m := s.Model()
	if m["ax"].BV&0xF0 != m["ay"].BV&0xF0 || m["ax"].BV == m["ay"].BV {
		t.Fatalf("model %v", m)
	}
}

func TestDIMACSExport(t *testing.T) {
	c := NewContext()
	x := c.BVVar("dx", 4)
	y := c.BoolVar("dy")
	b := NewCNFBuilder(c)
	b.Assert(c.Or(y, c.Ult(x, c.BV(5, 4))))
	b.Assert(c.Not(y))
	var buf strings.Builder
	if err := b.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p cnf ") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "c bv dx ->") || !strings.Contains(out, "c var dy ->") {
		t.Fatalf("missing variable map:\n%s", out)
	}
	// Every clause line ends with 0 and the counts match the header.
	var nv, nc int
	if _, err := fmt.Sscanf(out[strings.Index(out, "p cnf"):], "p cnf %d %d", &nv, &nc); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range strings.Split(out, "\n") {
		if l != "" && !strings.HasPrefix(l, "c") && !strings.HasPrefix(l, "p") {
			if !strings.HasSuffix(l, " 0") && l != "0" {
				t.Fatalf("clause line %q does not end with 0", l)
			}
			lines++
		}
	}
	if lines != nc {
		t.Fatalf("header says %d clauses, wrote %d", nc, lines)
	}
	if st := b.Check(); st.String() != "sat" {
		t.Fatalf("builder check: %v", st)
	}
}
