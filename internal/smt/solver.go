package smt

import (
	"fmt"

	"repro/internal/sat"
)

// Solver decides satisfiability of asserted boolean terms by bit-blasting
// bitvector structure and Tseitin-encoding boolean structure into a CDCL
// SAT solver. It can be used incrementally: Assert may be called after a
// Check, and Check re-solves with all constraints.
type Solver struct {
	ctx *Context
	sat *sat.Solver

	trueLit sat.Lit

	boolMemo map[*Term]sat.Lit
	bvMemo   map[*Term][]sat.Lit
	gateMemo map[gateKey]sat.Lit
}

type gateKey struct {
	op      uint8
	a, b, c sat.Lit
}

const (
	gateAnd uint8 = iota
	gateXor
	gateIte
)

// NewSolver returns a solver for terms of the given context.
func NewSolver(ctx *Context) *Solver {
	s := &Solver{
		ctx:      ctx,
		sat:      sat.New(),
		boolMemo: make(map[*Term]sat.Lit),
		bvMemo:   make(map[*Term][]sat.Lit),
		gateMemo: make(map[gateKey]sat.Lit),
	}
	s.trueLit = sat.MkLit(s.sat.NewVar(), false)
	s.sat.AddClause(s.trueLit)
	return s
}

// Context returns the term context the solver was created with.
func (s *Solver) Context() *Context { return s.ctx }

// SATStats exposes the underlying SAT solver statistics.
func (s *Solver) SATStats() sat.Stats { return s.sat.Stats }

// NumSATVars returns the number of SAT variables created by blasting.
func (s *Solver) NumSATVars() int { return s.sat.NumVars() }

// NumSATClauses returns the number of problem clauses created by blasting.
func (s *Solver) NumSATClauses() int { return s.sat.NumClauses() }

// SetMaxConflicts bounds search effort; 0 means unbounded.
func (s *Solver) SetMaxConflicts(n int64) { s.sat.MaxConflicts = n }

// SetProgress installs a periodic progress hook on the SAT search: fn is
// called every `every` conflicts with a snapshot of the work counters.
// fn runs on the solving goroutine; every ≤ 0 or a nil fn disables it.
func (s *Solver) SetProgress(every int64, fn func(sat.Progress)) {
	s.sat.ProgressEvery = every
	s.sat.OnProgress = fn
}

// NumGates returns the number of memoized Tseitin gate variables created
// by blasting, a measure of shared circuit structure.
func (s *Solver) NumGates() int { return len(s.gateMemo) }

// Simplify performs top-level simplification of the blasted CNF (root
// propagation, satisfied-clause removal, literal strengthening). It
// returns false when the assertions are already unsatisfiable.
func (s *Solver) Simplify() bool { return s.sat.Simplify() }

// Clauses exposes the blasted problem clauses (for DIMACS export).
func (s *Solver) Clauses() [][]sat.Lit { return s.sat.Clauses() }

// EnableProof turns on DRAT proof logging in the underlying SAT solver
// and returns the growing trace. Call before Check so the trace covers
// the whole database; an Unsat verdict can then be validated with
// drat.Check.
func (s *Solver) EnableProof() *sat.Proof { return s.sat.EnableProof() }

// Proof returns the recorded trace, or nil when logging is off.
func (s *Solver) Proof() *sat.Proof { return s.sat.Proof() }

// EnableOriginTracking turns on per-origin attribution in the underlying
// SAT solver. Enable before asserting so every blasted clause carries the
// origin current at Assert time.
func (s *Solver) EnableOriginTracking() { s.sat.EnableOriginTracking() }

// SetOrigin declares the base origin ids of the constraints asserted
// next. Tseitin gate clauses memoized across asserts keep their first
// creator's origin; that is sound for blame because every semantically
// contributing assert also emits root clauses under its own origin.
func (s *Solver) SetOrigin(bases ...int32) { s.sat.SetOrigin(bases...) }

// OriginSetBases resolves an interned origin-set id (as recorded on
// proof steps) to its base origin ids. The slice is owned by the solver.
func (s *Solver) OriginSetBases(id int32) []int32 { return s.sat.OriginSetBases(id) }

// OriginSnapshot copies the interned origin sets and their work counters.
func (s *Solver) OriginSnapshot() ([][]int32, []sat.OriginCounts) { return s.sat.OriginSnapshot() }

// Assert adds a boolean term as a constraint. Top-level conjunctions and
// disjunctions are clausified directly without auxiliary gate variables.
func (s *Solver) Assert(t *Term) {
	mustBool("assert", t)
	s.assertTrue(t)
}

func (s *Solver) assertTrue(t *Term) {
	switch t.op {
	case OpTrue:
		return
	case OpFalse:
		s.sat.AddClause() // empty clause: unsat
		return
	case OpAnd:
		for _, k := range t.kids {
			s.assertTrue(k)
		}
		return
	case OpOr:
		lits := make([]sat.Lit, len(t.kids))
		for i, k := range t.kids {
			lits[i] = s.lit(k)
		}
		s.sat.AddClause(lits...)
		return
	case OpNot:
		s.sat.AddClause(s.lit(t.kids[0]).Not())
		return
	}
	s.sat.AddClause(s.lit(t))
}

// AssertUnder adds t as a constraint guarded by the activation literal
// act: every top-level clause carries ¬act, encoding act → t, so t binds
// only while act is assumed. Sub-term Tseitin gates are definitional
// equivalences and stay unguarded, which is what lets later checks reuse
// them. Adding the unit clause ¬act (RetireLit) retires t for good.
func (s *Solver) AssertUnder(t *Term, act sat.Lit) {
	mustBool("assert", t)
	s.assertImplied(t, act.Not())
}

func (s *Solver) assertImplied(t *Term, na sat.Lit) {
	switch t.op {
	case OpTrue:
		return
	case OpFalse:
		s.sat.AddClause(na)
		return
	case OpAnd:
		for _, k := range t.kids {
			s.assertImplied(k, na)
		}
		return
	case OpOr:
		lits := make([]sat.Lit, 0, len(t.kids)+1)
		lits = append(lits, na)
		for _, k := range t.kids {
			lits = append(lits, s.lit(k))
		}
		s.sat.AddClause(lits...)
		return
	case OpNot:
		s.sat.AddClause(na, s.lit(t.kids[0]).Not())
		return
	}
	s.sat.AddClause(na, s.lit(t))
}

// NewFreeLit allocates a fresh SAT literal bound to no term, for use as an
// activation/assumption literal by the incremental Session.
func (s *Solver) NewFreeLit() sat.Lit { return sat.MkLit(s.sat.NewVar(), false) }

// RetireLit permanently falsifies a literal, disabling every clause
// guarded by it.
func (s *Solver) RetireLit(l sat.Lit) { s.sat.AddClause(l.Not()) }

// Check decides the conjunction of all assertions so far.
func (s *Solver) Check() sat.Status { return s.sat.Solve() }

// CheckAssuming decides the assertions under additional assumption
// literals (without adding them as clauses).
func (s *Solver) CheckAssuming(assumptions ...sat.Lit) sat.Status {
	return s.sat.Solve(assumptions...)
}

// Interrupt asks a running check to abort; safe from other goroutines.
func (s *Solver) Interrupt() { s.sat.Interrupt() }

// ResetInterrupt clears a pending interrupt once the canceling goroutine
// has been joined, so the solver can be reused.
func (s *Solver) ResetInterrupt() { s.sat.ResetInterrupt() }

// CheckLimited is Check with the configured conflict budget.
func (s *Solver) CheckLimited() (sat.Status, error) { return s.sat.SolveLimited() }

// Model extracts concrete values for every context variable after a Sat
// result. Variables that never appeared in an assertion get zero values.
func (s *Solver) Model() Assignment { return s.modelFrom(s.sat.ValueLit) }

// ModelFrom is Model reading the assignment out of sol instead of the
// solver's own SAT core. The parallel solve engine hands back a clone
// here: clones preserve variable numbering, so the blasting memo tables
// of this solver decode the clone's model directly.
func (s *Solver) ModelFrom(sol *sat.Solver) Assignment { return s.modelFrom(sol.ValueLit) }

func (s *Solver) modelFrom(valueLit func(sat.Lit) sat.Tribool) Assignment {
	m := make(Assignment)
	for _, v := range s.ctx.Vars() {
		if v.IsBool() {
			if l, ok := s.boolMemo[v]; ok {
				m[v.name] = Value{Bool: valueLit(l) == sat.True}
			} else {
				m[v.name] = Value{}
			}
			continue
		}
		bits, ok := s.bvMemo[v]
		if !ok {
			m[v.name] = Value{}
			continue
		}
		var x uint64
		for i, b := range bits {
			if valueLit(b) == sat.True {
				x |= uint64(1) << i
			}
		}
		m[v.name] = Value{BV: x}
	}
	return m
}

// SATSolver exposes the underlying CDCL solver. The parallel solve
// engine clones it for portfolio races and cube fan-outs; nothing else
// should reach around the SMT layer.
func (s *Solver) SATSolver() *sat.Solver { return s.sat }

// BlastedLits returns the SAT literals already backing t — the boolean
// literal, or a bitvector's bits — without blasting anything new: nil
// when t has not appeared in an asserted constraint. Cube-and-conquer
// uses it to translate environment terms into split candidates.
func (s *Solver) BlastedLits(t *Term) []sat.Lit {
	if l, ok := s.boolMemo[t]; ok {
		return []sat.Lit{l}
	}
	if bs, ok := s.bvMemo[t]; ok {
		return append([]sat.Lit(nil), bs...)
	}
	return nil
}

// lit returns the SAT literal representing boolean term t, creating gate
// variables as needed (Tseitin encoding).
func (s *Solver) lit(t *Term) sat.Lit {
	if l, ok := s.boolMemo[t]; ok {
		return l
	}
	var l sat.Lit
	switch t.op {
	case OpTrue:
		l = s.trueLit
	case OpFalse:
		l = s.trueLit.Not()
	case OpBoolVar:
		l = sat.MkLit(s.sat.NewVar(), false)
	case OpNot:
		l = s.lit(t.kids[0]).Not()
	case OpAnd:
		lits := make([]sat.Lit, len(t.kids))
		for i, k := range t.kids {
			lits[i] = s.lit(k)
		}
		l = s.mkAndN(lits)
	case OpOr:
		lits := make([]sat.Lit, len(t.kids))
		for i, k := range t.kids {
			lits[i] = s.lit(k).Not()
		}
		l = s.mkAndN(lits).Not()
	case OpIte:
		if t.IsBool() {
			l = s.mkIte(s.lit(t.kids[0]), s.lit(t.kids[1]), s.lit(t.kids[2]))
		} else {
			panic("smt: bitvector ite has no boolean literal")
		}
	case OpEq:
		a, b := t.kids[0], t.kids[1]
		if a.IsBool() {
			l = s.mkXor(s.lit(a), s.lit(b)).Not()
		} else {
			x, y := s.bits(a), s.bits(b)
			eqs := make([]sat.Lit, len(x))
			for i := range x {
				eqs[i] = s.mkXor(x[i], y[i]).Not()
			}
			l = s.mkAndN(eqs)
		}
	case OpBVUle:
		l = s.mkCompare(t.kids[0], t.kids[1], true)
	case OpBVUlt:
		l = s.mkCompare(t.kids[0], t.kids[1], false)
	default:
		panic(fmt.Sprintf("smt: lit: non-boolean op %d", t.op))
	}
	s.boolMemo[t] = l
	return l
}

// bits returns the SAT literals for each bit of a bitvector term, LSB
// first.
func (s *Solver) bits(t *Term) []sat.Lit {
	if bs, ok := s.bvMemo[t]; ok {
		return bs
	}
	w := t.Width()
	var bs []sat.Lit
	switch t.op {
	case OpBVVar:
		bs = make([]sat.Lit, w)
		for i := range bs {
			bs[i] = sat.MkLit(s.sat.NewVar(), false)
		}
	case OpBVConst:
		bs = make([]sat.Lit, w)
		for i := range bs {
			if t.val&(uint64(1)<<i) != 0 {
				bs[i] = s.trueLit
			} else {
				bs[i] = s.trueLit.Not()
			}
		}
	case OpBVAdd:
		bs = s.mkAdder(s.bits(t.kids[0]), s.bits(t.kids[1]), s.trueLit.Not())
	case OpBVSub:
		// a - b = a + ¬b + 1
		nb := s.bits(t.kids[1])
		inv := make([]sat.Lit, len(nb))
		for i, b := range nb {
			inv[i] = b.Not()
		}
		bs = s.mkAdder(s.bits(t.kids[0]), inv, s.trueLit)
	case OpBVAnd:
		x, y := s.bits(t.kids[0]), s.bits(t.kids[1])
		bs = make([]sat.Lit, w)
		for i := range bs {
			bs[i] = s.mkAnd(x[i], y[i])
		}
	case OpIte:
		c := s.lit(t.kids[0])
		x, y := s.bits(t.kids[1]), s.bits(t.kids[2])
		bs = make([]sat.Lit, w)
		for i := range bs {
			bs[i] = s.mkIte(c, x[i], y[i])
		}
	default:
		panic(fmt.Sprintf("smt: bits: non-bitvector op %d", t.op))
	}
	s.bvMemo[t] = bs
	return bs
}

// mkAdder builds a ripple-carry adder and returns the sum bits.
func (s *Solver) mkAdder(a, b []sat.Lit, carry sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(a))
	for i := range a {
		axb := s.mkXor(a[i], b[i])
		out[i] = s.mkXor(axb, carry)
		if i+1 < len(a) {
			// carry' = (a ∧ b) ∨ (carry ∧ (a ⊕ b))
			carry = s.mkAnd(s.mkAnd(a[i], b[i]).Not(), s.mkAnd(carry, axb).Not()).Not()
		}
	}
	return out
}

// mkCompare builds the unsigned comparison circuit for a ≤ b (orEqual) or
// a < b, folding constant prefixes.
func (s *Solver) mkCompare(ta, tb *Term, orEqual bool) sat.Lit {
	a, b := s.bits(ta), s.bits(tb)
	// From LSB to MSB: acc = lt(a_i,b_i) ∨ (eq(a_i,b_i) ∧ acc).
	var acc sat.Lit
	if orEqual {
		acc = s.trueLit
	} else {
		acc = s.trueLit.Not()
	}
	for i := 0; i < len(a); i++ {
		lt := s.mkAnd(a[i].Not(), b[i])
		eq := s.mkXor(a[i], b[i]).Not()
		acc = s.mkAnd(s.mkAnd(eq, acc).Not(), lt.Not()).Not() // lt ∨ (eq ∧ acc)
	}
	return acc
}

// mkAnd returns a literal equivalent to a ∧ b, folding constants and
// memoizing gates.
func (s *Solver) mkAnd(a, b sat.Lit) sat.Lit {
	tl, fl := s.trueLit, s.trueLit.Not()
	switch {
	case a == fl || b == fl:
		return fl
	case a == tl:
		return b
	case b == tl:
		return a
	case a == b:
		return a
	case a == b.Not():
		return fl
	}
	if a > b {
		a, b = b, a
	}
	k := gateKey{gateAnd, a, b, 0}
	if g, ok := s.gateMemo[k]; ok {
		return g
	}
	g := sat.MkLit(s.sat.NewVar(), false)
	s.sat.AddClause(g.Not(), a)
	s.sat.AddClause(g.Not(), b)
	s.sat.AddClause(a.Not(), b.Not(), g)
	s.gateMemo[k] = g
	return g
}

// mkAndN folds a slice of literals into a single conjunction literal.
func (s *Solver) mkAndN(lits []sat.Lit) sat.Lit {
	tl, fl := s.trueLit, s.trueLit.Not()
	// Filter constants first so the n-ary gate stays small.
	var kids []sat.Lit
	for _, l := range lits {
		if l == fl {
			return fl
		}
		if l == tl {
			continue
		}
		kids = append(kids, l)
	}
	switch len(kids) {
	case 0:
		return tl
	case 1:
		return kids[0]
	case 2:
		return s.mkAnd(kids[0], kids[1])
	}
	g := sat.MkLit(s.sat.NewVar(), false)
	long := make([]sat.Lit, 0, len(kids)+1)
	for _, l := range kids {
		s.sat.AddClause(g.Not(), l)
		long = append(long, l.Not())
	}
	long = append(long, g)
	s.sat.AddClause(long...)
	return g
}

// mkXor returns a literal equivalent to a ⊕ b.
func (s *Solver) mkXor(a, b sat.Lit) sat.Lit {
	tl, fl := s.trueLit, s.trueLit.Not()
	switch {
	case a == fl:
		return b
	case b == fl:
		return a
	case a == tl:
		return b.Not()
	case b == tl:
		return a.Not()
	case a == b:
		return fl
	case a == b.Not():
		return tl
	}
	// Canonicalize: strip shared negations so x⊕y and ¬x⊕¬y share a gate.
	neg := false
	if a.Neg() {
		a, neg = a.Not(), !neg
	}
	if b.Neg() {
		b, neg = b.Not(), !neg
	}
	if a > b {
		a, b = b, a
	}
	k := gateKey{gateXor, a, b, 0}
	g, ok := s.gateMemo[k]
	if !ok {
		g = sat.MkLit(s.sat.NewVar(), false)
		s.sat.AddClause(g.Not(), a, b)
		s.sat.AddClause(g.Not(), a.Not(), b.Not())
		s.sat.AddClause(g, a.Not(), b)
		s.sat.AddClause(g, a, b.Not())
		s.gateMemo[k] = g
	}
	if neg {
		return g.Not()
	}
	return g
}

// mkIte returns a literal equivalent to (c ? a : b).
func (s *Solver) mkIte(c, a, b sat.Lit) sat.Lit {
	tl, fl := s.trueLit, s.trueLit.Not()
	switch {
	case c == tl:
		return a
	case c == fl:
		return b
	case a == b:
		return a
	case a == tl && b == fl:
		return c
	case a == fl && b == tl:
		return c.Not()
	case a == tl:
		return s.mkAnd(c.Not(), b.Not()).Not() // c ∨ b
	case a == fl:
		return s.mkAnd(c.Not(), b)
	case b == tl:
		return s.mkAnd(c, a.Not()).Not() // ¬c ∨ a
	case b == fl:
		return s.mkAnd(c, a)
	}
	if c.Neg() {
		c, a, b = c.Not(), b, a
	}
	k := gateKey{gateIte, c, a, b}
	if g, ok := s.gateMemo[k]; ok {
		return g
	}
	g := sat.MkLit(s.sat.NewVar(), false)
	s.sat.AddClause(c.Not(), a.Not(), g)
	s.sat.AddClause(c.Not(), a, g.Not())
	s.sat.AddClause(c, b.Not(), g)
	s.sat.AddClause(c, b, g.Not())
	// Redundant but propagation-strengthening clauses.
	s.sat.AddClause(a.Not(), b.Not(), g)
	s.sat.AddClause(a, b, g.Not())
	s.gateMemo[k] = g
	return g
}
