// Package passes is the term-level optimization pipeline that runs
// between encoding and bit-blasting. The encoder produces a System — a
// list of asserted terms over one hash-consing Context, plus optional
// goal terms — and each Pass rewrites the assert list while preserving
// the set of satisfying assignments projected onto the declared
// variables (unit facts are kept as asserts, never erased, so model
// decoding and counterexample replay see every variable constrained).
//
// The four passes generalize the paper's §6 formula-level rewrites into
// reusable, independently measurable stages:
//
//   - fold: rebuilds every assert bottom-up through the Context's
//     simplifying smart constructors (constant folding, identity and
//     absorption rules). On freshly encoded terms this is close to a
//     no-op — construction already folds — but after propagate has
//     substituted facts it re-canonicalizes the DAG.
//   - cse: structural sharing across asserted terms. The Context
//     hash-conses every node, so sub-term sharing is implicit; the
//     assert-level work is flattening top-level conjunctions into
//     individual asserts and deduplicating structurally identical
//     asserts, which both shrinks the list and exposes unit facts to
//     propagate.
//   - propagate: term-level unit and equality propagation. Facts of the
//     shapes x, ¬x, x = const and x = y are substituted into every
//     other assert to fixpoint. The fact asserts themselves stay.
//   - coi: cone-of-influence pruning relative to the goals. Asserts
//     sharing no variables — transitively — with any goal are dropped.
//     Sound here because every pruned component of the network encoding
//     admits a stable state on its own (the all-silent environment),
//     so a model of the pruned system always extends to the full one.
//
// Passes are idempotent: running any pass twice in a row is a fixpoint
// (the second run reports before == after).
package passes

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/smt"
)

// Canonical pass names, in canonical pipeline order.
const (
	Fold      = "fold"
	CSE       = "cse"
	Propagate = "propagate"
	COI       = "coi"
)

// Names lists every term-level pass in canonical pipeline order.
func Names() []string { return []string{Fold, CSE, Propagate, COI} }

// System is the unit of compilation: the asserted constraint system and
// (optionally) the goal terms of the query being compiled for. Passes
// rewrite Asserts in place; Goals are read as cone-of-influence roots
// and rewritten only under substitutions that keep them equivalent.
type System struct {
	Ctx     *smt.Context
	Asserts []*smt.Term
	// Goals are the query roots (assumptions and the negated property)
	// for goal-relative passes; empty for property-agnostic compilation.
	Goals []*smt.Term
	// Origins optionally carries provenance: Origins[i] lists the base
	// origin ids (interned elsewhere, e.g. a provenance.Table) of
	// Asserts[i]. nil disables tracking; when set it stays parallel to
	// Asserts through every pass. Rewrites that merge asserts (cse
	// dedupe) or make one assert depend on another (propagate
	// substitution) union the origin lists, so blame over-approximates
	// rather than drops contributors.
	Origins [][]int32
}

// mergeBases unions two base-id lists into a fresh sorted, deduplicated
// list. Inputs are not mutated.
func mergeBases(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, v := range out {
		if i > 0 && v == out[n-1] {
			continue
		}
		out[n] = v
		n++
	}
	return out[:n]
}

// Stats reports one pass execution: assert/term/variable counts before
// and after, and the pass's wall time. Terms and Vars count distinct DAG
// nodes reachable from Asserts and Goals.
type Stats struct {
	Pass          string
	AssertsBefore int
	AssertsAfter  int
	TermsBefore   int
	TermsAfter    int
	VarsBefore    int
	VarsAfter     int
	Elapsed       time.Duration
}

// Pass is one term-level rewrite over a System.
type Pass interface {
	Name() string
	Run(*System) Stats
}

// New returns the pass with the given canonical name.
func New(name string) (Pass, error) {
	switch name {
	case Fold:
		return foldPass{}, nil
	case CSE:
		return csePass{}, nil
	case Propagate:
		return propagatePass{}, nil
	case COI:
		return coiPass{}, nil
	}
	return nil, fmt.Errorf("passes: unknown pass %q (known: %s)", name, strings.Join(Names(), ","))
}

// Pipeline is an ordered list of passes run as one compilation stage.
type Pipeline struct {
	Passes []Pass
}

// NewPipeline builds a pipeline from canonical names, preserving order.
func NewPipeline(names ...string) (*Pipeline, error) {
	p := &Pipeline{}
	for _, n := range names {
		pass, err := New(n)
		if err != nil {
			return nil, err
		}
		p.Passes = append(p.Passes, pass)
	}
	return p, nil
}

// Run executes the pipeline over the system. Each pass emits a child
// span under sp (nil-safe) carrying its before/after counts, and the
// per-pass stats are returned in execution order.
func (p *Pipeline) Run(sys *System, sp *obs.Span) []Stats {
	if p == nil || len(p.Passes) == 0 {
		return nil
	}
	out := make([]Stats, 0, len(p.Passes))
	for _, pass := range p.Passes {
		psp := sp.Start("pass:" + pass.Name())
		st := pass.Run(sys)
		psp.SetInt("asserts_before", int64(st.AssertsBefore))
		psp.SetInt("asserts_after", int64(st.AssertsAfter))
		psp.SetInt("terms_before", int64(st.TermsBefore))
		psp.SetInt("terms_after", int64(st.TermsAfter))
		psp.SetInt("vars_before", int64(st.VarsBefore))
		psp.SetInt("vars_after", int64(st.VarsAfter))
		psp.End()
		out = append(out, st)
	}
	return out
}

// measure wraps a pass body with before/after counting and timing.
func measure(name string, sys *System, body func()) Stats {
	st := Stats{Pass: name, AssertsBefore: len(sys.Asserts)}
	st.TermsBefore, st.VarsBefore = sys.count()
	start := time.Now()
	body()
	st.Elapsed = time.Since(start)
	st.AssertsAfter = len(sys.Asserts)
	st.TermsAfter, st.VarsAfter = sys.count()
	return st
}

// count walks the DAG reachable from Asserts and Goals, returning the
// number of distinct term nodes and of distinct variable nodes.
func (sys *System) count() (terms, vars int) {
	seen := map[*smt.Term]bool{}
	var walk func(t *smt.Term)
	walk = func(t *smt.Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		terms++
		if op := t.Op(); op == smt.OpBoolVar || op == smt.OpBVVar {
			vars++
		}
		for _, k := range t.Kids() {
			walk(k)
		}
	}
	for _, a := range sys.Asserts {
		walk(a)
	}
	for _, g := range sys.Goals {
		walk(g)
	}
	return terms, vars
}

// rewriter rebuilds terms through the Context's smart constructors with
// an optional variable substitution, memoized over the DAG.
type rewriter struct {
	c     *smt.Context
	subst map[*smt.Term]*smt.Term // variable node -> replacement
	memo  map[*smt.Term]*smt.Term
	used  map[*smt.Term]bool // substitution keys actually applied, when non-nil
}

func newRewriter(c *smt.Context, subst map[*smt.Term]*smt.Term) *rewriter {
	return &rewriter{c: c, subst: subst, memo: map[*smt.Term]*smt.Term{}}
}

// resolve follows substitution chains (x -> y -> z) to their end,
// recording every hop in used when tracking is on. Chains always point
// from higher to lower variable id or from variable to constant, so they
// terminate.
func (r *rewriter) resolve(t *smt.Term) *smt.Term {
	for {
		next, ok := r.subst[t]
		if !ok {
			return t
		}
		if r.used != nil {
			r.used[t] = true
		}
		t = next
	}
}

func (r *rewriter) rewrite(t *smt.Term) *smt.Term {
	if out, ok := r.memo[t]; ok {
		return out
	}
	c := r.c
	var out *smt.Term
	switch t.Op() {
	case smt.OpTrue, smt.OpFalse, smt.OpBVConst:
		out = t
	case smt.OpBoolVar, smt.OpBVVar:
		out = r.resolve(t)
	default:
		kids := t.Kids()
		nk := make([]*smt.Term, len(kids))
		for i, k := range kids {
			nk[i] = r.rewrite(k)
		}
		switch t.Op() {
		case smt.OpNot:
			out = c.Not(nk[0])
		case smt.OpAnd:
			out = c.And(nk...)
		case smt.OpOr:
			out = c.Or(nk...)
		case smt.OpIte:
			out = c.Ite(nk[0], nk[1], nk[2])
		case smt.OpEq:
			out = c.Eq(nk[0], nk[1])
		case smt.OpBVAdd:
			out = c.Add(nk[0], nk[1])
		case smt.OpBVSub:
			out = c.Sub(nk[0], nk[1])
		case smt.OpBVAnd:
			out = c.BVAnd(nk[0], nk[1])
		case smt.OpBVUle:
			out = c.Ule(nk[0], nk[1])
		case smt.OpBVUlt:
			out = c.Ult(nk[0], nk[1])
		default:
			panic(fmt.Sprintf("passes: rewrite of unknown op %d", t.Op()))
		}
	}
	r.memo[t] = out
	return out
}

// foldPass rebuilds every assert and goal through the smart
// constructors, re-applying the Context's constant folding and
// algebraic simplifications over the whole DAG.
type foldPass struct{}

func (foldPass) Name() string { return Fold }

func (foldPass) Run(sys *System) Stats {
	return measure(Fold, sys, func() {
		r := newRewriter(sys.Ctx, nil)
		for i, a := range sys.Asserts {
			sys.Asserts[i] = r.rewrite(a)
		}
		for i, g := range sys.Goals {
			sys.Goals[i] = r.rewrite(g)
		}
	})
}

// csePass normalizes the assert list over the hash-consed DAG:
// top-level conjunctions are flattened into individual asserts,
// structurally identical asserts are deduplicated (pointer equality is
// structural equality under hash-consing), and trivially true asserts
// are dropped. A false assert collapses the system to a single false.
type csePass struct{}

func (csePass) Name() string { return CSE }

func (csePass) Run(sys *System) Stats {
	return measure(CSE, sys, func() {
		sys.Asserts, sys.Origins = normalizeAsserts(sys.Ctx, sys.Asserts, sys.Origins)
	})
}

// normalizeAsserts flattens conjunctions, dedupes and drops true. With
// origins non-nil (parallel to asserts) it returns the rewritten origin
// lists: flattened conjuncts inherit the conjunction's origin, and when
// two asserts dedupe to one term the survivor's origin is the union —
// blame must keep every stanza that emitted the constraint, not just the
// first.
func normalizeAsserts(c *smt.Context, asserts []*smt.Term, origins [][]int32) ([]*smt.Term, [][]int32) {
	out := make([]*smt.Term, 0, len(asserts))
	var outOrigins [][]int32
	if origins != nil {
		outOrigins = make([][]int32, 0, len(asserts))
	}
	seen := map[*smt.Term]int{}    // term -> index in out
	var cur []int32                // origin of the assert being added
	var add func(t *smt.Term) bool // false when the system became unsat
	add = func(t *smt.Term) bool {
		if t.Op() == smt.OpAnd {
			for _, k := range t.Kids() {
				if !add(k) {
					return false
				}
			}
			return true
		}
		if t == c.True() {
			return true
		}
		if idx, ok := seen[t]; ok {
			if origins != nil {
				outOrigins[idx] = mergeBases(outOrigins[idx], cur)
			}
			return true
		}
		if t == c.False() {
			return false
		}
		seen[t] = len(out)
		out = append(out, t)
		if origins != nil {
			outOrigins = append(outOrigins, cur)
		}
		return true
	}
	for i, a := range asserts {
		if origins != nil {
			cur = origins[i]
		}
		if !add(a) {
			if origins == nil {
				return []*smt.Term{c.False()}, nil
			}
			return []*smt.Term{c.False()}, [][]int32{cur}
		}
	}
	return out, outOrigins
}

// propagatePass performs unit and equality propagation at the term
// level. It collects facts from single-assert shapes — a bare boolean
// variable x (x is true), ¬x (x is false), x = const, and x = y
// (variables of equal sort, higher id mapped to lower) — substitutes
// them into every OTHER assert, and repeats until no new facts appear.
// The fact asserts themselves are kept verbatim so the blasted formula
// still constrains every variable and model decoding stays exact.
type propagatePass struct{}

func (propagatePass) Name() string { return Propagate }

func (propagatePass) Run(sys *System) Stats {
	return measure(Propagate, sys, func() {
		c := sys.Ctx
		subst := map[*smt.Term]*smt.Term{}
		resolve := func(t *smt.Term) *smt.Term {
			for {
				next, ok := subst[t]
				if !ok {
					return t
				}
				t = next
			}
		}
		isVar := func(t *smt.Term) bool {
			return t.Op() == smt.OpBoolVar || t.Op() == smt.OpBVVar
		}
		// factOrigin maps each substitution key to the origins of the
		// fact asserts that justify it, for provenance tracking.
		var factOrigin map[*smt.Term][]int32
		if sys.Origins != nil {
			factOrigin = map[*smt.Term][]int32{}
		}
		// addFact merges v = val into the substitution, resolving both
		// sides first so chains like {b = a, b = 5} become {b -> a,
		// a -> 5} rather than a spurious contradiction. It returns the
		// key inserted (nil for no-ops) and ok=false only on a genuine
		// conflict (two distinct constants equated).
		addFact := func(v, val *smt.Term) (*smt.Term, bool) {
			v, val = resolve(v), resolve(val)
			if v == val {
				return nil, true
			}
			switch {
			case isVar(v) && isVar(val):
				// Map the higher id onto the lower: chains terminate.
				if v.ID() < val.ID() {
					v, val = val, v
				}
				subst[v] = val
			case isVar(v):
				subst[v] = val
			case isVar(val):
				subst[val] = v
				v = val
			default:
				return nil, false // two distinct constants
			}
			return v, true
		}
		for round := 0; round < 32; round++ {
			// Phase 1: harvest facts; remember which asserts carry them.
			isFact := make([]bool, len(sys.Asserts))
			before := len(subst)
			unsat := false
			fact := func(i int, v, val *smt.Term) {
				isFact[i] = true
				key, ok := addFact(v, val)
				if !ok {
					unsat = true
				}
				if key != nil && factOrigin != nil {
					factOrigin[key] = mergeBases(factOrigin[key], sys.Origins[i])
				}
			}
			for i, a := range sys.Asserts {
				switch {
				case a.Op() == smt.OpBoolVar:
					fact(i, a, c.True())
				case a.Op() == smt.OpNot && a.Kids()[0].Op() == smt.OpBoolVar:
					fact(i, a.Kids()[0], c.False())
				case a.Op() == smt.OpEq:
					l, rr := a.Kids()[0], a.Kids()[1]
					// Eq is canonicalized with the lower id first, so a
					// var=var fact always maps the later variable onto
					// the earlier and substitution chains terminate.
					switch {
					case l.Op() == smt.OpBVVar && rr.Op() == smt.OpBVConst:
						fact(i, l, rr)
					case l.Op() == smt.OpBVConst && rr.Op() == smt.OpBVVar:
						fact(i, rr, l)
					case l.Op() == smt.OpBVVar && rr.Op() == smt.OpBVVar,
						l.Op() == smt.OpBoolVar && rr.Op() == smt.OpBoolVar:
						fact(i, rr, l)
					}
				}
			}
			if unsat {
				// The contradiction follows from the facts alone; blame
				// every fact-carrying assert.
				var fo []int32
				if sys.Origins != nil {
					for i := range sys.Asserts {
						if isFact[i] {
							fo = mergeBases(fo, sys.Origins[i])
						}
					}
					sys.Origins = [][]int32{fo}
				}
				sys.Asserts = []*smt.Term{c.False()}
				return
			}
			grew := len(subst) > before
			if len(subst) == 0 {
				return
			}
			// Phase 2: substitute into every non-fact assert and goal.
			// (Goals carry no origin slot; substituted goals stay sound
			// for blame because the fact asserts themselves are kept
			// verbatim in the system.)
			r := newRewriter(c, subst)
			if sys.Origins != nil {
				r.used = map[*smt.Term]bool{}
			}
			changed := false
			var changedIdx []int
			for i, a := range sys.Asserts {
				if isFact[i] {
					continue
				}
				if nu := r.rewrite(a); nu != a {
					sys.Asserts[i] = nu
					changed = true
					changedIdx = append(changedIdx, i)
				}
			}
			for i, g := range sys.Goals {
				if nu := r.rewrite(g); nu != g {
					sys.Goals[i] = nu
					changed = true
				}
			}
			if sys.Origins != nil && len(changedIdx) > 0 {
				// A rewritten assert is equivalent to its original only
				// given the facts substituted into it; union the used
				// facts' origins in so removing a blamed fact stanza is
				// reflected. The used set is tracked globally per round
				// (rewrites share a memo across asserts), which
				// over-approximates per-assert usage — blame may widen,
				// never drop a contributor.
				var usedOrigins []int32
				for key := range r.used {
					usedOrigins = mergeBases(usedOrigins, factOrigin[key])
				}
				for _, i := range changedIdx {
					sys.Origins[i] = mergeBases(sys.Origins[i], usedOrigins)
				}
			}
			sys.Asserts, sys.Origins = normalizeAsserts(c, sys.Asserts, sys.Origins)
			if len(sys.Asserts) == 1 && sys.Asserts[0] == c.False() {
				return
			}
			if !changed && !grew {
				return
			}
		}
	})
}

// coiPass prunes asserts outside the goals' cone of influence: the
// variable graph is partitioned by "appears in the same assert", and
// only asserts whose variables connect — transitively — to a goal
// variable are kept. Variable-free asserts are true or false after
// folding; false is kept, true dropped. With no goals, or goals with no
// variables, the pass keeps everything (there is no cone to slice to).
type coiPass struct{}

func (coiPass) Name() string { return COI }

func (coiPass) Run(sys *System) Stats {
	return measure(COI, sys, func() {
		goalVars := collectVars(sys.Goals)
		if len(goalVars) == 0 {
			return
		}
		// Union-find over variable names within one context (pointer
		// identity works: variables are hash-consed).
		uf := newUnionFind()
		assertVars := make([][]*smt.Term, len(sys.Asserts))
		for i, a := range sys.Asserts {
			vs := collectVars([]*smt.Term{a})
			assertVars[i] = vs
			for j := 1; j < len(vs); j++ {
				uf.union(vs[0], vs[j])
			}
		}
		// Expand to fixpoint implicitly: union-find already merges the
		// components, so one root lookup per goal variable suffices.
		inCone := map[*smt.Term]bool{}
		for _, v := range goalVars {
			inCone[uf.find(v)] = true
		}
		kept := sys.Asserts[:0]
		var keptO [][]int32
		if sys.Origins != nil {
			keptO = sys.Origins[:0]
		}
		keep := func(i int) {
			kept = append(kept, sys.Asserts[i])
			if sys.Origins != nil {
				keptO = append(keptO, sys.Origins[i])
			}
		}
		for i, a := range sys.Asserts {
			if len(assertVars[i]) == 0 {
				if a != sys.Ctx.True() {
					keep(i)
				}
				continue
			}
			if inCone[uf.find(assertVars[i][0])] {
				keep(i)
			}
		}
		sys.Asserts = kept
		if sys.Origins != nil {
			sys.Origins = keptO
		}
	})
}

// collectVars returns the distinct variable nodes reachable from the
// roots, in deterministic (id) order.
func collectVars(roots []*smt.Term) []*smt.Term {
	seen := map[*smt.Term]bool{}
	var vars []*smt.Term
	var walk func(t *smt.Term)
	walk = func(t *smt.Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		if op := t.Op(); op == smt.OpBoolVar || op == smt.OpBVVar {
			vars = append(vars, t)
		}
		for _, k := range t.Kids() {
			walk(k)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].ID() < vars[j].ID() })
	return vars
}

// unionFind is a plain disjoint-set over term pointers with path
// halving and union by size.
type unionFind struct {
	parent map[*smt.Term]*smt.Term
	size   map[*smt.Term]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[*smt.Term]*smt.Term{}, size: map[*smt.Term]int{}}
}

func (u *unionFind) find(t *smt.Term) *smt.Term {
	if _, ok := u.parent[t]; !ok {
		u.parent[t] = t
		u.size[t] = 1
		return t
	}
	root := t
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[t] != root {
		u.parent[t], t = root, u.parent[t]
	}
	return root
}

func (u *unionFind) union(a, b *smt.Term) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
