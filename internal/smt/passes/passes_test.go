package passes

import (
	"testing"

	"repro/internal/smt"
)

// newSys builds a System over a fresh context via the given builder.
func newSys(build func(c *smt.Context) ([]*smt.Term, []*smt.Term)) *System {
	c := smt.NewContext()
	asserts, goals := build(c)
	return &System{Ctx: c, Asserts: asserts, Goals: goals}
}

// solve reports the sat status string of the system's asserts conjoined
// with its goals.
func solve(sys *System) string {
	s := smt.NewSolver(sys.Ctx)
	for _, a := range sys.Asserts {
		s.Assert(a)
	}
	for _, g := range sys.Goals {
		s.Assert(g)
	}
	return s.Check().String()
}

// clone copies the mutable slices so the same logical system can be run
// through different pipelines.
func clone(sys *System) *System {
	return &System{
		Ctx:     sys.Ctx,
		Asserts: append([]*smt.Term(nil), sys.Asserts...),
		Goals:   append([]*smt.Term(nil), sys.Goals...),
	}
}

// buildMixed is a small system exercising every pass: a unit bool, a
// var=const unit, a conjunction to flatten, a duplicated assert, and a
// variable cluster disconnected from the goal.
func buildMixed(c *smt.Context) ([]*smt.Term, []*smt.Term) {
	x, y := c.BoolVar("x"), c.BoolVar("y")
	a := c.BVVar("a", 8)
	b := c.BVVar("b", 8)
	island := c.BoolVar("island")
	island2 := c.BoolVar("island2")
	asserts := []*smt.Term{
		x,
		c.Eq(a, c.BV(7, 8)),
		c.And(c.Or(x, y), c.Ule(a, b)),
		c.Or(x, y), // duplicate after flattening
		c.Or(island, island2),
	}
	goals := []*smt.Term{c.Ult(b, c.BV(100, 8))}
	return asserts, goals
}

func TestEachPassIsIdempotent(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sys := newSys(buildMixed)
			pass, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			first := pass.Run(sys)
			snapshot := append([]*smt.Term(nil), sys.Asserts...)
			second := pass.Run(sys)
			if second.AssertsBefore != second.AssertsAfter ||
				second.TermsBefore != second.TermsAfter {
				t.Fatalf("second run not a fixpoint: %+v (first %+v)", second, first)
			}
			if len(sys.Asserts) != len(snapshot) {
				t.Fatalf("second run changed assert count: %d -> %d", len(snapshot), len(sys.Asserts))
			}
			for i := range snapshot {
				if sys.Asserts[i] != snapshot[i] {
					t.Fatalf("second run changed assert %d: %v -> %v", i, snapshot[i], sys.Asserts[i])
				}
			}
		})
	}
}

func TestEachPassPreservesSatisfiability(t *testing.T) {
	builders := map[string]func(c *smt.Context) ([]*smt.Term, []*smt.Term){
		"mixed": buildMixed,
		"unsat": func(c *smt.Context) ([]*smt.Term, []*smt.Term) {
			x := c.BoolVar("x")
			a := c.BVVar("a", 4)
			return []*smt.Term{x, c.Not(x), c.Eq(a, c.BV(1, 4))}, nil
		},
		"eq-chain": func(c *smt.Context) ([]*smt.Term, []*smt.Term) {
			a, b, d := c.BVVar("a", 8), c.BVVar("b", 8), c.BVVar("d", 8)
			return []*smt.Term{c.Eq(a, b), c.Eq(b, c.BV(5, 8)), c.Ult(d, a)}, []*smt.Term{c.Ugt(d, c.BV(1, 8))}
		},
		"eq-conflict": func(c *smt.Context) ([]*smt.Term, []*smt.Term) {
			a, b := c.BVVar("a", 8), c.BVVar("b", 8)
			return []*smt.Term{c.Eq(a, b), c.Eq(b, c.BV(5, 8)), c.Eq(a, c.BV(6, 8))}, nil
		},
	}
	for bname, build := range builders {
		for _, pname := range Names() {
			bname, pname, build := bname, pname, build
			t.Run(bname+"/"+pname, func(t *testing.T) {
				base := newSys(build)
				want := solve(clone(base))
				pass, err := New(pname)
				if err != nil {
					t.Fatal(err)
				}
				pass.Run(base)
				if got := solve(base); got != want {
					t.Fatalf("pass %s changed status: %s -> %s", pname, want, got)
				}
			})
		}
	}
}

func TestPropagateKeepsUnitAsserts(t *testing.T) {
	sys := newSys(func(c *smt.Context) ([]*smt.Term, []*smt.Term) {
		x := c.BoolVar("x")
		a := c.BVVar("a", 8)
		return []*smt.Term{x, c.Eq(a, c.BV(7, 8)), c.Implies(x, c.Ule(a, c.BV(9, 8)))}, nil
	})
	pass, _ := New(Propagate)
	pass.Run(sys)
	c := sys.Ctx
	hasX, hasEq := false, false
	for _, a := range sys.Asserts {
		if a == c.BoolVar("x") {
			hasX = true
		}
		if a == c.Eq(c.BVVar("a", 8), c.BV(7, 8)) {
			hasEq = true
		}
	}
	if !hasX || !hasEq {
		t.Fatalf("unit facts were dropped: hasX=%v hasEq=%v asserts=%v", hasX, hasEq, sys.Asserts)
	}
	// The implication is discharged: x ∧ a=7 makes it a ≤ 9, i.e. true,
	// so only the two unit facts remain.
	if len(sys.Asserts) != 2 {
		t.Fatalf("expected 2 asserts after propagation, got %v", sys.Asserts)
	}
}

func TestCSEFlattensAndDedupes(t *testing.T) {
	sys := newSys(func(c *smt.Context) ([]*smt.Term, []*smt.Term) {
		x, y, z := c.BoolVar("x"), c.BoolVar("y"), c.BoolVar("z")
		dup := c.Or(x, y)
		return []*smt.Term{c.And(dup, z), dup, c.True()}, nil
	})
	pass, _ := New(CSE)
	st := pass.Run(sys)
	if st.AssertsAfter != 2 {
		t.Fatalf("want 2 asserts (or(x,y), z), got %d: %v", st.AssertsAfter, sys.Asserts)
	}
}

func TestCOIPrunesDisconnectedAsserts(t *testing.T) {
	sys := newSys(buildMixed)
	pass, _ := New(COI)
	st := pass.Run(sys)
	if st.AssertsAfter >= st.AssertsBefore {
		t.Fatalf("coi pruned nothing: %+v", st)
	}
	c := sys.Ctx
	for _, a := range sys.Asserts {
		if a == c.Or(c.BoolVar("island"), c.BoolVar("island2")) {
			t.Fatalf("island assert not pruned: %v", sys.Asserts)
		}
	}
	// The goal mentions b; a ≤ b connects a's cluster, so the units stay.
	found := false
	for _, a := range sys.Asserts {
		if a == c.Eq(c.BVVar("a", 8), c.BV(7, 8)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("goal-connected assert was pruned: %v", sys.Asserts)
	}
}

func TestCOIKeepsEverythingWithoutGoals(t *testing.T) {
	sys := newSys(func(c *smt.Context) ([]*smt.Term, []*smt.Term) {
		asserts, _ := buildMixed(c)
		return asserts, nil
	})
	pass, _ := New(COI)
	st := pass.Run(sys)
	if st.AssertsBefore != st.AssertsAfter {
		t.Fatalf("coi with no goals must keep everything: %+v", st)
	}
}

func TestPipelineParseAndRun(t *testing.T) {
	if _, err := NewPipeline("fold", "bogus"); err == nil {
		t.Fatal("expected error for unknown pass name")
	}
	p, err := NewPipeline(Names()...)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSys(buildMixed)
	want := solve(clone(sys))
	stats := p.Run(sys, nil)
	if len(stats) != len(Names()) {
		t.Fatalf("want %d stats rows, got %d", len(Names()), len(stats))
	}
	for i, st := range stats {
		if st.Pass != Names()[i] {
			t.Fatalf("stats out of order: %v", stats)
		}
	}
	if got := solve(sys); got != want {
		t.Fatalf("pipeline changed status: %s -> %s", want, got)
	}
}

func TestFoldRewritesAfterSubstitution(t *testing.T) {
	// fold alone on freshly constructed terms is an identity.
	sys := newSys(buildMixed)
	pass, _ := New(Fold)
	st := pass.Run(sys)
	if st.AssertsBefore != st.AssertsAfter || st.TermsBefore != st.TermsAfter {
		t.Fatalf("fold on fresh terms should be identity: %+v", st)
	}
}

// TestOriginsStayParallelThroughPasses pins the provenance contract:
// Origins stays parallel to Asserts through every pass and the full
// pipeline, surviving contributors keep their base ids, and merges
// (cse dedupe, propagate substitution) union rather than drop them.
func TestOriginsStayParallelThroughPasses(t *testing.T) {
	tag := func(sys *System) *System {
		sys.Origins = make([][]int32, len(sys.Asserts))
		for i := range sys.Asserts {
			sys.Origins[i] = []int32{int32(i + 1)}
		}
		return sys
	}
	pipelines := append([][]string{Names()}, [][]string{
		{Fold}, {CSE}, {Propagate}, {COI},
	}...)
	for _, names := range pipelines {
		sys := tag(newSys(buildMixed))
		p, err := NewPipeline(names...)
		if err != nil {
			t.Fatal(err)
		}
		p.Run(sys, nil)
		if len(sys.Origins) != len(sys.Asserts) {
			t.Fatalf("%v: %d origins for %d asserts", names, len(sys.Origins), len(sys.Asserts))
		}
		for i, os := range sys.Origins {
			if len(os) == 0 {
				t.Fatalf("%v: assert %d lost its origins", names, i)
			}
			for j, b := range os {
				if b < 1 || b > 5 {
					t.Fatalf("%v: assert %d carries invented base %d", names, i, b)
				}
				if j > 0 && os[j-1] >= b {
					t.Fatalf("%v: assert %d origins not sorted/deduped: %v", names, i, os)
				}
			}
		}
	}

	// CSE merges the duplicated assert (buildMixed asserts 3 and 4 are
	// equal after flattening): its survivor must carry both bases.
	sys := tag(newSys(buildMixed))
	p, _ := NewPipeline(Fold, CSE)
	p.Run(sys, nil)
	found := false
	for _, os := range sys.Origins {
		has3, has4 := false, false
		for _, b := range os {
			has3 = has3 || b == 3
			has4 = has4 || b == 4
		}
		if has3 && has4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cse dedupe dropped a contributor: %v", sys.Origins)
	}
}
