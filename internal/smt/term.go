// Package smt implements a small SMT solver for quantifier-free formulas
// over booleans and fixed-width bitvectors (QF_BV). It is the stand-in for
// Z3 in this Minesweeper reproduction: terms are built through a
// hash-consing Context, aggressively simplified on construction (playing
// the role of Z3's preprocessor), then bit-blasted and Tseitin-encoded
// into the CDCL solver in internal/sat.
package smt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op enumerates term constructors.
type Op uint8

// Term operators.
const (
	OpTrue Op = iota
	OpFalse
	OpBoolVar
	OpNot
	OpAnd
	OpOr
	OpIte // boolean or bitvector, by sort of branches
	OpEq  // boolean iff or bitvector equality

	OpBVVar
	OpBVConst
	OpBVAdd
	OpBVSub
	OpBVAnd // bitwise and
	OpBVUle // unsigned <=
	OpBVUlt // unsigned <
)

var opNames = map[Op]string{
	OpTrue: "true", OpFalse: "false", OpBoolVar: "boolvar", OpNot: "not",
	OpAnd: "and", OpOr: "or", OpIte: "ite", OpEq: "=",
	OpBVVar: "bvvar", OpBVConst: "bvconst", OpBVAdd: "bvadd",
	OpBVSub: "bvsub", OpBVAnd: "bvand", OpBVUle: "bvule", OpBVUlt: "bvult",
}

// Term is an immutable, hash-consed formula node. Terms are created
// through a Context and may be compared with == for structural equality.
type Term struct {
	id    int32
	op    Op
	width uint8 // 0 for boolean sort; 1..64 for bitvectors
	val   uint64
	name  string
	kids  []*Term
}

// Op returns the term's operator.
func (t *Term) Op() Op { return t.op }

// ID returns the term's hash-consing id, unique and stable within its
// Context. The pass pipeline uses it for dense maps and canonical
// ordering; ids are meaningless across contexts.
func (t *Term) ID() int32 { return t.id }

// IsBool reports whether the term has boolean sort.
func (t *Term) IsBool() bool { return t.width == 0 }

// Width returns the bitvector width, or 0 for booleans.
func (t *Term) Width() int { return int(t.width) }

// Name returns the variable name for OpBoolVar/OpBVVar terms.
func (t *Term) Name() string { return t.name }

// Const returns the constant value for OpBVConst terms.
func (t *Term) Const() uint64 { return t.val }

// Kids returns the term's children. The slice must not be modified.
func (t *Term) Kids() []*Term { return t.kids }

// String renders the term in an SMT-LIB-flavoured syntax.
func (t *Term) String() string {
	switch t.op {
	case OpTrue:
		return "true"
	case OpFalse:
		return "false"
	case OpBoolVar, OpBVVar:
		return t.name
	case OpBVConst:
		return fmt.Sprintf("#x%x[%d]", t.val, t.width)
	}
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(opNames[t.op])
	for _, k := range t.kids {
		b.WriteByte(' ')
		b.WriteString(k.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Context creates and hash-conses terms. All terms combined in one formula
// must come from the same Context. A Context is not safe for concurrent
// use.
type Context struct {
	table  map[string]*Term
	vars   map[string]*Term
	nextID int32

	tt *Term // the unique true term
	ff *Term // the unique false term
}

// NewContext returns an empty term context.
func NewContext() *Context {
	c := &Context{
		table: make(map[string]*Term),
		vars:  make(map[string]*Term),
	}
	c.tt = c.intern(&Term{op: OpTrue})
	c.ff = c.intern(&Term{op: OpFalse})
	return c
}

// NumTerms returns the number of distinct terms created, a proxy for
// formula size used by the optimization benchmarks.
func (c *Context) NumTerms() int { return int(c.nextID) }

// key builds the hash-consing key for a candidate node.
func key(t *Term) string {
	var b strings.Builder
	b.WriteByte(byte(t.op))
	b.WriteByte(t.width)
	if t.op == OpBVConst {
		b.WriteString(strconv.FormatUint(t.val, 16))
	}
	if t.op == OpBoolVar || t.op == OpBVVar {
		b.WriteString(t.name)
	}
	for _, k := range t.kids {
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(int64(k.id), 36))
	}
	return b.String()
}

func (c *Context) intern(t *Term) *Term {
	k := key(t)
	if old, ok := c.table[k]; ok {
		return old
	}
	t.id = c.nextID
	c.nextID++
	c.table[k] = t
	return t
}

// True returns the boolean constant true.
func (c *Context) True() *Term { return c.tt }

// False returns the boolean constant false.
func (c *Context) False() *Term { return c.ff }

// Bool returns the boolean constant for b.
func (c *Context) Bool(b bool) *Term {
	if b {
		return c.tt
	}
	return c.ff
}

// BoolVar returns the boolean variable with the given name, creating it on
// first use. Names are global within the context.
func (c *Context) BoolVar(name string) *Term {
	if v, ok := c.vars[name]; ok {
		if !v.IsBool() {
			panic(fmt.Sprintf("smt: variable %q redeclared at different sort", name))
		}
		return v
	}
	v := c.intern(&Term{op: OpBoolVar, name: name})
	c.vars[name] = v
	return v
}

// BVVar returns the bitvector variable with the given name and width,
// creating it on first use.
func (c *Context) BVVar(name string, width int) *Term {
	checkWidth(width)
	if v, ok := c.vars[name]; ok {
		if v.Width() != width {
			panic(fmt.Sprintf("smt: variable %q redeclared at width %d (was %d)", name, width, v.Width()))
		}
		return v
	}
	v := c.intern(&Term{op: OpBVVar, width: uint8(width), name: name})
	c.vars[name] = v
	return v
}

// Vars returns all declared variables, sorted by name.
func (c *Context) Vars() []*Term {
	out := make([]*Term, 0, len(c.vars))
	for _, v := range c.vars {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// BV returns the bitvector constant val of the given width. val is
// truncated to width bits.
func (c *Context) BV(val uint64, width int) *Term {
	checkWidth(width)
	val &= mask(width)
	return c.intern(&Term{op: OpBVConst, width: uint8(width), val: val})
}

func checkWidth(w int) {
	if w < 1 || w > 64 {
		panic(fmt.Sprintf("smt: bitvector width %d out of range [1,64]", w))
	}
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Not returns the negation of a boolean term, simplifying double negation
// and constants.
func (c *Context) Not(t *Term) *Term {
	mustBool("not", t)
	switch t.op {
	case OpTrue:
		return c.ff
	case OpFalse:
		return c.tt
	case OpNot:
		return t.kids[0]
	}
	return c.intern(&Term{op: OpNot, kids: []*Term{t}})
}

// And returns the n-ary conjunction, flattening nested conjunctions,
// removing duplicates and true, and short-circuiting on false or
// complementary literals.
func (c *Context) And(ts ...*Term) *Term { return c.nary(OpAnd, ts) }

// Or returns the n-ary disjunction with the dual simplifications of And.
func (c *Context) Or(ts ...*Term) *Term { return c.nary(OpOr, ts) }

func (c *Context) nary(op Op, ts []*Term) *Term {
	unit, zero := c.tt, c.ff
	if op == OpOr {
		unit, zero = c.ff, c.tt
	}
	flat := make([]*Term, 0, len(ts))
	var flatten func(t *Term)
	flatten = func(t *Term) {
		mustBool(opNames[op], t)
		if t.op == op {
			for _, k := range t.kids {
				flatten(k)
			}
			return
		}
		flat = append(flat, t)
	}
	for _, t := range ts {
		flatten(t)
	}
	// Sort children by id for canonical form, then dedupe and fold.
	sort.Slice(flat, func(i, j int) bool { return flat[i].id < flat[j].id })
	out := flat[:0]
	seen := map[int32]bool{}
	for _, t := range flat {
		if t == zero {
			return zero
		}
		if t == unit || seen[t.id] {
			continue
		}
		seen[t.id] = true
		out = append(out, t)
	}
	// Complementary pair check: x and ¬x together.
	for _, t := range out {
		if t.op == OpNot && seen[t.kids[0].id] {
			return zero
		}
	}
	switch len(out) {
	case 0:
		return unit
	case 1:
		return out[0]
	}
	return c.intern(&Term{op: op, kids: append([]*Term(nil), out...)})
}

// Implies returns a → b as ¬a ∨ b.
func (c *Context) Implies(a, b *Term) *Term { return c.Or(c.Not(a), b) }

// Iff returns a ↔ b (boolean equality).
func (c *Context) Iff(a, b *Term) *Term { return c.Eq(a, b) }

// Xor returns exclusive or of two booleans.
func (c *Context) Xor(a, b *Term) *Term { return c.Not(c.Eq(a, b)) }

// Eq returns equality between two terms of the same sort, folding
// constants and identical nodes.
func (c *Context) Eq(a, b *Term) *Term {
	if a.width != b.width {
		panic(fmt.Sprintf("smt: = applied to mismatched sorts (%d vs %d)", a.width, b.width))
	}
	if a == b {
		return c.tt
	}
	if a.IsBool() {
		// Constant folding and unit rules.
		switch {
		case a == c.tt:
			return b
		case b == c.tt:
			return a
		case a == c.ff:
			return c.Not(b)
		case b == c.ff:
			return c.Not(a)
		}
		// ¬x = ¬y ⇒ x = y
		if a.op == OpNot && b.op == OpNot {
			return c.Eq(a.kids[0], b.kids[0])
		}
		// x = ¬x is false
		if (a.op == OpNot && a.kids[0] == b) || (b.op == OpNot && b.kids[0] == a) {
			return c.ff
		}
	} else if a.op == OpBVConst && b.op == OpBVConst {
		return c.Bool(a.val == b.val)
	}
	// Canonical operand order.
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpEq, kids: []*Term{a, b}})
}

// Distinct returns ¬(a = b).
func (c *Context) Distinct(a, b *Term) *Term { return c.Not(c.Eq(a, b)) }

// Ite returns if-then-else. The branches may be boolean or bitvector but
// must agree in sort.
func (c *Context) Ite(cond, a, b *Term) *Term {
	mustBool("ite condition", cond)
	if a.width != b.width {
		panic("smt: ite branches have mismatched sorts")
	}
	switch cond {
	case c.tt:
		return a
	case c.ff:
		return b
	}
	if a == b {
		return a
	}
	if a.IsBool() {
		// Boolean ite simplifies to connectives, which the n-ary
		// simplifier handles better than an opaque mux.
		if a == c.tt && b == c.ff {
			return cond
		}
		if a == c.ff && b == c.tt {
			return c.Not(cond)
		}
		if a == c.tt {
			return c.Or(cond, b)
		}
		if a == c.ff {
			return c.And(c.Not(cond), b)
		}
		if b == c.tt {
			return c.Or(c.Not(cond), a)
		}
		if b == c.ff {
			return c.And(cond, a)
		}
	}
	if cond.op == OpNot {
		cond, a, b = cond.kids[0], b, a
	}
	return c.intern(&Term{op: OpIte, width: a.width, kids: []*Term{cond, a, b}})
}

// Add returns bitvector addition modulo 2^width, folding constants and
// the zero identity.
func (c *Context) Add(a, b *Term) *Term {
	mustSameBV("bvadd", a, b)
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.BV(a.val+b.val, a.Width())
	}
	if a.op == OpBVConst && a.val == 0 {
		return b
	}
	if b.op == OpBVConst && b.val == 0 {
		return a
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpBVAdd, width: a.width, kids: []*Term{a, b}})
}

// Sub returns bitvector subtraction modulo 2^width.
func (c *Context) Sub(a, b *Term) *Term {
	mustSameBV("bvsub", a, b)
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.BV(a.val-b.val, a.Width())
	}
	if b.op == OpBVConst && b.val == 0 {
		return a
	}
	if a == b {
		return c.BV(0, a.Width())
	}
	return c.intern(&Term{op: OpBVSub, width: a.width, kids: []*Term{a, b}})
}

// BVAnd returns the bitwise conjunction of two bitvectors.
func (c *Context) BVAnd(a, b *Term) *Term {
	mustSameBV("bvand", a, b)
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.BV(a.val&b.val, a.Width())
	}
	if a == b {
		return a
	}
	if a.op == OpBVConst {
		if a.val == 0 {
			return a
		}
		if a.val == mask(a.Width()) {
			return b
		}
	}
	if b.op == OpBVConst {
		if b.val == 0 {
			return b
		}
		if b.val == mask(b.Width()) {
			return a
		}
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpBVAnd, width: a.width, kids: []*Term{a, b}})
}

// Ule returns the unsigned a ≤ b comparison.
func (c *Context) Ule(a, b *Term) *Term {
	mustSameBV("bvule", a, b)
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.Bool(a.val <= b.val)
	}
	if a == b {
		return c.tt
	}
	if a.op == OpBVConst && a.val == 0 {
		return c.tt // 0 <= x
	}
	if b.op == OpBVConst && b.val == mask(b.Width()) {
		return c.tt // x <= max
	}
	return c.intern(&Term{op: OpBVUle, kids: []*Term{a, b}})
}

// Ult returns the unsigned a < b comparison.
func (c *Context) Ult(a, b *Term) *Term {
	mustSameBV("bvult", a, b)
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.Bool(a.val < b.val)
	}
	if a == b {
		return c.ff
	}
	if b.op == OpBVConst && b.val == 0 {
		return c.ff // x < 0
	}
	if a.op == OpBVConst && a.val == mask(a.Width()) {
		return c.ff // max < x
	}
	return c.intern(&Term{op: OpBVUlt, kids: []*Term{a, b}})
}

// Uge returns a ≥ b.
func (c *Context) Uge(a, b *Term) *Term { return c.Ule(b, a) }

// Ugt returns a > b.
func (c *Context) Ugt(a, b *Term) *Term { return c.Ult(b, a) }

// InRange returns lo ≤ t ≤ hi for constants lo, hi: the constraint shape
// produced by the paper's prefix-elimination hoisting (§6.1).
func (c *Context) InRange(t *Term, lo, hi uint64) *Term {
	w := t.Width()
	return c.And(c.Ule(c.BV(lo, w), t), c.Ule(t, c.BV(hi, w)))
}

func mustBool(what string, t *Term) {
	if !t.IsBool() {
		panic("smt: " + what + " applied to non-boolean term")
	}
}

func mustSameBV(what string, a, b *Term) {
	if a.IsBool() || b.IsBool() || a.width != b.width {
		panic("smt: " + what + " applied to mismatched bitvector sorts")
	}
}
