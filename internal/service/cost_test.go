package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/cost"
)

// TestJobCostLedger pins the job-level cost tree: the session-building
// job carries the one-time setup plus its goal ledger, a session-reusing
// job carries only its goal, and a cache hit carries nothing.
func TestJobCostLedger(t *testing.T) {
	e := newSATTestEngine(t, 1)
	req := &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	}
	v, err := e.Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cost == nil {
		t.Fatal("first job has no cost ledger")
	}
	if v.Cost.Name != "job" {
		t.Fatalf("ledger root %q, want \"job\"", v.Cost.Name)
	}
	if v.Cost.Find("session-setup") == nil {
		t.Fatalf("session-building job's ledger lacks session-setup:\n%+v", v.Cost)
	}
	if v.Cost.Find("goal", "solve") == nil {
		t.Fatal("job ledger lacks goal → solve")
	}
	if db := v.Cost.Total().ClauseDBBytes; db <= 0 {
		t.Fatalf("job ledger has no clause-db bytes (%d)", db)
	}
	if v.Cost.TotalWall() <= 0 {
		t.Fatal("job ledger recorded no wall time")
	}

	// Cache hit: no ledger, like origin profiles.
	v2, err := e.Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatal("repeat query not cached")
	}
	if v2.Cost != nil {
		t.Fatal("cached verdict carries a cost ledger")
	}

	// A second property on the same network reuses the session: its
	// ledger prices only its own check, no setup subtree.
	v3, err := e.Verify(context.Background(), &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "loops"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v3.Cost == nil {
		t.Fatal("second job has no cost ledger")
	}
	if v3.Cost.Find("session-setup") != nil {
		t.Fatal("session-reusing job repaid session setup")
	}

	// The engine counters saw the deterministic work.
	if u := e.Trace().Counter("service.work_units"); u <= 0 {
		t.Fatalf("service.work_units = %d, want > 0", u)
	}
	if b := e.Trace().Counter("service.clause_db_bytes"); b <= 0 {
		t.Fatalf("service.clause_db_bytes = %d, want > 0", b)
	}
}

// TestCostEndpoint serves the ledger over HTTP, both JSON (round-
// trippable into a cost.Node) and the text tree.
func TestCostEndpoint(t *testing.T) {
	e := newSATTestEngine(t, 1)
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	v, err := e.Verify(context.Background(), &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.JobID + "/cost")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET cost: %d", resp.StatusCode)
	}
	var n cost.Node
	if err := json.NewDecoder(resp.Body).Decode(&n); err != nil {
		t.Fatalf("decode cost tree: %v", err)
	}
	if n.Name != "job" || n.Total().Units() != v.Cost.Total().Units() {
		t.Fatalf("served tree mismatches verdict: %q / %d vs %d",
			n.Name, n.Total().Units(), v.Cost.Total().Units())
	}

	resp2, err := http.Get(srv.URL + "/v1/jobs/" + v.JobID + "/cost?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf := make([]byte, 4096)
	k, _ := resp2.Body.Read(buf)
	if text := string(buf[:k]); !strings.Contains(text, "units") || !strings.Contains(text, "job") {
		t.Fatalf("text tree missing expected columns:\n%s", text)
	}

	resp3, err := http.Get(srv.URL + "/v1/jobs/job-999999/cost")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d, want 404", resp3.StatusCode)
	}
}

// TestWorkBudgetExceeded: a 1-unit work budget trips at the first
// progress tick; the job finishes done (not failed) with a
// budget_exceeded verdict naming the costliest subtree, the verdict is
// not cached, and the session keeps answering.
func TestWorkBudgetExceeded(t *testing.T) {
	e := NewEngine(Options{
		Workers: 1, Timeout: 60 * time.Second, Tiers: "none",
		WorkBudget: 1, ProgressEvery: 1,
	})
	t.Cleanup(e.Close)
	req := &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	}
	v, err := e.Verify(context.Background(), req)
	if err != nil {
		t.Fatalf("budget breach must not fail the job: %v", err)
	}
	if v.Budget == nil {
		t.Fatal("no budget_exceeded block on the verdict")
	}
	if v.Budget.Exceeded != "work" {
		t.Fatalf("exceeded %q, want \"work\"", v.Budget.Exceeded)
	}
	if v.Budget.Observed <= v.Budget.Limit {
		t.Fatalf("observed %d <= limit %d", v.Budget.Observed, v.Budget.Limit)
	}
	if v.Verified {
		t.Fatal("budget-cancelled job reported verified")
	}
	if v.Budget.Costliest == "" {
		t.Fatal("budget block names no costliest subtree")
	}
	if v.Cost == nil || v.Cost.Find("goal", "solve") == nil {
		t.Fatalf("budget verdict lacks the partial ledger: %+v", v.Cost)
	}
	if got := e.Trace().Counter("service.budget_exceeded"); got != 1 {
		t.Fatalf("budget_exceeded counter = %d, want 1", got)
	}
	j, ok := e.Job(v.JobID)
	if !ok || j.Status() != StatusDone {
		t.Fatalf("budget-cancelled job status %v, want done", j.Status())
	}

	// Not cached: the identical query must trip again, proving both the
	// cache skip and that the session survived the interrupt.
	v2, err := e.Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Cached || v2.Budget == nil {
		t.Fatalf("repeat query: cached=%v budget=%v, want fresh budget trip",
			v2.Cached, v2.Budget)
	}
}

// TestMemBudgetExceeded: an absurdly small memory budget trips on the
// live-heap check, and the reserved-bytes gauge returns to zero once the
// engine is idle.
func TestMemBudgetExceeded(t *testing.T) {
	e := NewEngine(Options{
		Workers: 1, Timeout: 60 * time.Second, Tiers: "none",
		MemBudgetBytes: 1, ProgressEvery: 1,
	})
	t.Cleanup(e.Close)
	v, err := e.Verify(context.Background(), &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Budget == nil || v.Budget.Exceeded != "mem" {
		t.Fatalf("budget block %+v, want mem breach", v.Budget)
	}
	if g, ok := e.Trace().GaugeValue("service.reserved_bytes"); !ok || g != 0 {
		t.Fatalf("reserved_bytes gauge %v after idle, want 0", g)
	}
}
