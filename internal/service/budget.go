package service

import (
	"context"
	"sync"

	"repro/internal/obs/cost"
	"repro/internal/sat"
)

// budgetState enforces one job's resource budgets while its solver runs.
// The solver progress hook calls observe every ProgressEvery conflicts;
// the first breach records what was exceeded and cancels the check's
// context, so the solver unwinds through the ordinary interruption path
// instead of running the daemon out of memory or CPU. The engine then
// turns the recorded breach into a budget_exceeded verdict rather than a
// job failure.
//
// observe runs on whichever goroutine drives the search (the checking
// worker sequentially, a racer under parallel solve), so the breach
// record is mutex-protected.
type budgetState struct {
	cancel     context.CancelFunc
	workBudget int64 // solver work units (decisions+propagations+conflicts); 0 = unlimited
	memBudget  int64 // live-heap bytes; 0 = unlimited
	base       sat.Stats

	mu       sync.Mutex
	breached string // "" until breach; then "work" or "mem"
	observed int64
	limit    int64
	spent    cost.Work // per-check work delta at breach time
}

// newBudgetState baselines the budgets against the session solver's
// cumulative counters so only this check's spend counts against the
// limit.
func newBudgetState(cancel context.CancelFunc, work, mem int64, base sat.Stats) *budgetState {
	return &budgetState{cancel: cancel, workBudget: work, memBudget: mem, base: base}
}

// observe checks the budgets against one progress snapshot. p carries the
// solver's cumulative counters; the baseline captured at check start
// converts them into this check's spend.
func (b *budgetState) observe(p sat.Progress) {
	if b == nil {
		return
	}
	spent := cost.Work{
		Conflicts:    p.Conflicts - b.base.Conflicts,
		Decisions:    p.Decisions - b.base.Decisions,
		Propagations: p.Propagations - b.base.Propagations,
		Restarts:     p.Restarts - b.base.Restarts,
	}
	if b.workBudget > 0 {
		if units := spent.Units(); units > b.workBudget {
			b.trip("work", units, b.workBudget, spent)
			return
		}
	}
	if b.memBudget > 0 {
		if heap := int64(cost.HeapLiveBytes()); heap > b.memBudget {
			b.trip("mem", heap, b.memBudget, spent)
		}
	}
}

// trip records the first breach and cancels the check. Later calls (the
// hook may fire again before the solver notices the interrupt, and
// racers trip independently) keep the first record.
func (b *budgetState) trip(kind string, observed, limit int64, spent cost.Work) {
	b.mu.Lock()
	first := b.breached == ""
	if first {
		b.breached, b.observed, b.limit, b.spent = kind, observed, limit, spent
	}
	b.mu.Unlock()
	if first {
		b.cancel()
	}
}

// breach returns the recorded breach, or nil when the budgets held.
func (b *budgetState) breach() *BudgetInfo {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.breached == "" {
		return nil
	}
	return &BudgetInfo{
		Exceeded: b.breached,
		Observed: b.observed,
		Limit:    b.limit,
		spent:    b.spent,
	}
}

// BudgetInfo is the budget_exceeded block of a cancelled job's verdict:
// which budget tripped, by how much, and the costliest subtree of the
// job's (partial) cost ledger — the place to start trimming.
type BudgetInfo struct {
	// Exceeded names the budget that tripped: "work"
	// (Options.WorkBudget, solver work units) or "mem"
	// (Options.MemBudgetBytes, live-heap bytes).
	Exceeded string `json:"exceeded"`
	// Observed is the measurement that tripped the budget; Limit the
	// configured bound, in the same unit.
	Observed int64 `json:"observed"`
	Limit    int64 `json:"limit"`
	// Costliest names the most expensive subtree of the job's cost
	// ledger at cancellation time, with its work units.
	Costliest      string `json:"costliest,omitempty"`
	CostliestUnits int64  `json:"costliest_units,omitempty"`

	spent cost.Work
}
