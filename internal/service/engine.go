package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/modular"
	"repro/internal/obs"
	"repro/internal/obs/cost"
	"repro/internal/obs/stream"
	"repro/internal/protograph"
	"repro/internal/provenance"
	"repro/internal/psolve"
	"repro/internal/sat"
	"repro/internal/smt"
	"repro/internal/tiered"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states: Submit queues, a worker moves the job to running,
// and it finishes done (verdict available) or failed (error available).
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Options configures an Engine.
type Options struct {
	// Workers is the number of concurrent verification workers
	// (default 2). Jobs on the same network serialize on that
	// network's session regardless of worker count.
	Workers int
	// QueueDepth bounds the submit queue (default 64); Submit fails
	// when the queue is full rather than blocking the caller.
	QueueDepth int
	// Timeout is the per-job default deadline (default 120s),
	// overridable per request via TimeoutMs.
	Timeout time.Duration
	// Passes selects the optimization pipeline for every encoded
	// network (core.Options.Passes syntax); empty keeps the default
	// pipeline.
	Passes string
	// Tiers selects the verification tiers (tiered.ValidateTiers syntax):
	// by default ("" or "graph,sat") every job first tries the sound
	// graph fast path and only residue reaches the solver; "sat"/"none"
	// disables the fast path, reproducing the untiered engine exactly.
	Tiers string
	// Parallel selects the parallel solve strategy for every solver-bound
	// check (core.Options.Parallel syntax: off, portfolio, cubes, auto).
	// The engine arbitrates cores by handing the parallel engine its own
	// worker pool, so solver- and job-level parallelism share the same
	// budget instead of oversubscribing the machine.
	Parallel string
	// ParallelWorkers bounds solver-level parallelism per check (<=0
	// means one per CPU).
	ParallelWorkers int
	// Modular verifies multi-component networks with the assume/guarantee
	// pipeline (internal/modular) when the spec's goal is in its
	// vocabulary: cut at the eBGP interfaces, verify one representative
	// per isomorphism class of components — scheduled on this engine's
	// own worker pool — and compose the blamed verdicts. Residue of any
	// kind falls back to the monolithic session; the monolithic encode is
	// skipped entirely when the composed verdict stands.
	Modular bool
	// Certify records a DRAT proof trace for every network's solver
	// session and validates it with the in-process checker whenever a
	// job's verdict is "verified"; checked certificates are reported in
	// the verdict's proof fields, rejected ones fail the job.
	Certify bool
	// Blame extracts the UNSAT core of every verified job (implying
	// proof logging) and reports the configuration origins it depends on
	// in the verdict's blame field; falsified jobs blame the origins
	// fixing the counterexample's forwarding decisions.
	Blame bool
	// ProfileOrigins keeps per-origin solver counters and attaches a
	// hot-constraint profile to every job, served at
	// GET /v1/jobs/{id}/profile.
	ProfileOrigins bool
	// MaxJobs bounds the finished-job map (default 1024): once more
	// jobs than this are retained, the oldest finished jobs — and their
	// flight recorders — are evicted FIFO. Queued and running jobs are
	// never evicted.
	MaxJobs int
	// EventBuffer is the per-job flight-recorder capacity in events
	// (default stream.DefaultCapacity). The recorder keeps the last
	// EventBuffer events of a job after it finishes, times out or is
	// cancelled.
	EventBuffer int
	// ProgressEvery emits a solver.progress event on each job's flight
	// recorder every N conflicts while the CDCL search runs (default
	// 1000; <0 disables solver progress events).
	ProgressEvery int64
	// WorkBudget bounds one job's solver work units (decisions +
	// propagations + conflicts, the cost ledger's deterministic Units
	// scale); 0 is unlimited. An over-budget job is cancelled and
	// finishes with a budget_exceeded verdict naming the costliest
	// subtree of its cost ledger — it does not fail. Enforced from the
	// solver progress hook, so enforcement granularity is ProgressEvery
	// conflicts; modular component checks run outside the hook and are
	// not bounded.
	WorkBudget int64
	// MemBudgetBytes cancels a job, like WorkBudget, when the process's
	// live heap exceeds this many bytes while the job's solver runs —
	// the job degrades to a budget_exceeded verdict instead of the
	// daemon OOMing. The engine's reserved_bytes gauge reports
	// MemBudgetBytes times the number of in-flight jobs.
	MemBudgetBytes int64
	// Trace receives the engine's counters and gauges; nil creates a
	// private trace (exposed via Engine.Trace for /metrics).
	Trace *obs.Trace
	// Logger receives structured job lifecycle lines (submitted,
	// done, failed) carrying the job id; nil disables them.
	Logger *slog.Logger
}

// netEntry is the long-lived per-network state: the protocol graph, the
// encoded model and the incremental solver session. Its lock serializes
// property construction and checking, because building property terms
// interns into the model's unsynchronized term context.
//
// Entries are keyed by config hash, but the solver session is shared by
// CompiledNetwork hash: when two config sets compile to structurally
// identical constraint systems, the later entry records the earlier one
// as its alias and checks hop to the canonical entry's session.
type netEntry struct {
	mu    sync.Mutex
	built bool
	// modelBuilt is set once the monolithic model/session exists. With
	// Options.Modular the model is built lazily — only when a job actually
	// falls through to the monolithic pipeline — so networks answered
	// entirely by composition never pay the whole-network encode.
	modelBuilt bool
	err        error // permanent build failure, replayed to later jobs
	g          *protograph.Graph
	m          *core.Model
	cn         *core.CompiledNetwork
	sess       *core.Session
	alias      *netEntry // canonical entry owning the shared session, if any

	// cuts caches the modular partition (independent of any goal); built
	// on first modular attempt.
	cut *modular.Cut

	// tiered is the graph fast-path analysis, built from this entry's own
	// protocol graph (nil when the engine runs untiered). It survives
	// aliasing: compile-hash equality guarantees an identical constraint
	// system but not identical router names, so fast-path attempts always
	// use the entry's own analysis, before any alias hop.
	tiered *tiered.Analysis

	// curRec is the flight recorder of the job currently checking on
	// this entry's session, read by the solver progress hook. Both the
	// writes (in check) and the hook (which runs on the checking
	// worker's goroutine inside Session.CheckContext) happen with
	// ent.mu held, so a plain field suffices.
	curRec *stream.Recorder

	// curBudget is the budget enforcer of the job currently checking on
	// this entry's session, consulted by the same progress hook. Same
	// locking story as curRec; the state itself synchronizes internally
	// because parallel racers observe it concurrently.
	curBudget *budgetState
}

// Job is one queued verification request. Jobs are created by Submit and
// observed via Done/Verdict/Err or the JSON View.
type Job struct {
	// ID identifies the job for GET /v1/jobs/{id}.
	ID   string
	Spec Spec

	configs map[string]string
	netKey  string
	key     string
	timeout time.Duration

	done chan struct{}
	rec  *stream.Recorder

	mu       sync.Mutex
	status   Status
	verdict  *Verdict
	err      error
	profile  *provenance.Profile
	trace    *obs.Trace
	created  time.Time
	started  time.Time
	finished time.Time
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Verdict returns the job's verdict once done (nil before, and for
// failed jobs).
func (j *Job) Verdict() *Verdict {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.verdict
}

// Err returns the job's terminal error, if it failed.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Profile returns the job's hot-constraint profile, present once the job
// is done when the engine runs with Options.ProfileOrigins (cache hits
// carry no profile: the solver never ran for them).
func (j *Job) Profile() *provenance.Profile {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.profile
}

// Recorder returns the job's flight recorder: the bounded ring of typed
// telemetry events emitted over the job's life. It is live while the job
// runs and retained — closed — after the job finishes, fails, times out
// or is cancelled.
func (j *Job) Recorder() *stream.Recorder { return j.rec }

// Trace returns the job's span tree (the GET /v1/jobs/{id}/trace
// source), or nil before the job's check starts and for cache-hit jobs,
// which never touch the solver.
func (j *Job) Trace() *obs.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

func (j *Job) setTrace(tr *obs.Trace) {
	j.mu.Lock()
	j.trace = tr
	j.mu.Unlock()
}

// View is the JSON shape of a job for the HTTP API.
type View struct {
	ID       string   `json:"id"`
	Status   Status   `json:"status"`
	Spec     Spec     `json:"spec"`
	Verdict  *Verdict `json:"verdict,omitempty"`
	Error    string   `json:"error,omitempty"`
	QueuedMs float64  `json:"queued_ms"`
	RunMs    float64  `json:"run_ms,omitempty"`
}

// View snapshots the job for JSON rendering.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{ID: j.ID, Status: j.status, Spec: j.Spec, Verdict: j.verdict}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	switch {
	case j.started.IsZero():
		v.QueuedMs = durMs(time.Since(j.created))
	default:
		v.QueuedMs = durMs(j.started.Sub(j.created))
		if j.finished.IsZero() {
			v.RunMs = durMs(time.Since(j.started))
		} else {
			v.RunMs = durMs(j.finished.Sub(j.started))
		}
	}
	return v
}

// Engine is the batch verification service: a worker pool over
// (network, property) jobs with per-network solver sessions and a
// content-addressed verdict cache.
type Engine struct {
	tr            *obs.Trace
	timeout       time.Duration
	passes        string
	tiers         string
	parallel      string
	parallelWk    int
	modular       bool
	certify       bool
	blame         bool
	profOrig      bool
	maxJobs       int
	eventBuf      int
	progressEvery int64
	workBudget    int64
	memBudget     int64
	log           *slog.Logger

	jobCh chan *Job
	// helpCh hands component-check closures to idle workers: sends are
	// non-blocking (an idle worker must be receiving right now), so a
	// modular job fans its classes out across the pool when it can and
	// runs them inline when it cannot — never deadlocking, even with one
	// worker.
	helpCh  chan func()
	wg      sync.WaitGroup
	running atomic.Int64
	// reserved is the in-flight memory reservation: MemBudgetBytes per
	// running budgeted job, surfaced as the service.reserved_bytes gauge.
	reserved atomic.Int64

	mu         sync.Mutex
	closed     bool
	seq        int
	jobs       map[string]*Job
	finished   []string // finished job IDs, oldest first, for FIFO eviction
	nets       map[string]*netEntry
	byCompile  map[string]*netEntry
	cache      map[string]*Verdict
	blastsSeen map[string]int
}

// NewEngine starts the worker pool.
func NewEngine(o Options) *Engine {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	if o.Trace == nil {
		o.Trace = obs.New("service")
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = stream.DefaultCapacity
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 1000
	}
	e := &Engine{
		tr:            o.Trace,
		timeout:       o.Timeout,
		passes:        o.Passes,
		tiers:         o.Tiers,
		parallel:      o.Parallel,
		parallelWk:    o.ParallelWorkers,
		modular:       o.Modular,
		certify:       o.Certify,
		blame:         o.Blame,
		profOrig:      o.ProfileOrigins,
		maxJobs:       o.MaxJobs,
		eventBuf:      o.EventBuffer,
		progressEvery: o.ProgressEvery,
		workBudget:    o.WorkBudget,
		memBudget:     o.MemBudgetBytes,
		log:           o.Logger,
		jobCh:         make(chan *Job, o.QueueDepth),
		helpCh:        make(chan func()),
		jobs:          map[string]*Job{},
		nets:          map[string]*netEntry{},
		byCompile:     map[string]*netEntry{},
		cache:         map[string]*Verdict{},
	}
	e.wg.Add(o.Workers)
	for i := 0; i < o.Workers; i++ {
		go e.worker()
	}
	return e
}

// Trace returns the engine's metrics registry (the /metrics source).
func (e *Engine) Trace() *obs.Trace { return e.tr }

// Close stops accepting jobs, drains the queue and waits for the workers.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.jobCh)
	e.wg.Wait()
}

// Job looks up a submitted job by id.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns all job views, newest first.
func (e *Engine) Jobs() []View {
	e.mu.Lock()
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	e.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID > jobs[b].ID })
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	return views
}

// Submit validates and queues a job. It returns immediately; wait on
// Job.Done or poll Job.View. Submit fails when the spec is malformed,
// the engine is closed, or the queue is full.
func (e *Engine) Submit(req *Request) (*Job, error) {
	if len(req.Configs) == 0 {
		return nil, fmt.Errorf("service: configs are required")
	}
	spec := req.Spec.normalize()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	timeout := e.timeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	netKey := configHash(req.Configs)
	j := &Job{
		Spec:    spec,
		configs: req.Configs,
		netKey:  netKey,
		key:     cacheKey(netKey, spec),
		timeout: timeout,
		done:    make(chan struct{}),
		rec:     stream.NewRecorder(e.eventBuf),
		status:  StatusQueued,
		created: time.Now(),
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("service: engine is closed")
	}
	e.seq++
	j.ID = fmt.Sprintf("job-%06d", e.seq)
	e.jobs[j.ID] = j
	e.mu.Unlock()

	select {
	case e.jobCh <- j:
		e.tr.Add("service.jobs_queued", 1)
		e.tr.Gauge("service.queue_depth", float64(len(e.jobCh)))
		j.rec.Emit(stream.EventJobSubmitted, map[string]any{
			"job": j.ID, "check": spec.Check, "timeout_ms": timeout.Milliseconds(),
		})
		if e.log != nil {
			e.log.Info("job submitted", "job", j.ID, "check", spec.Check)
		}
		return j, nil
	default:
		e.mu.Lock()
		delete(e.jobs, j.ID)
		e.mu.Unlock()
		return nil, fmt.Errorf("service: queue full (%d jobs pending)", cap(e.jobCh))
	}
}

// Verify submits a job and waits for its verdict. When ctx expires first
// the job keeps running in the background (its verdict lands in the
// cache) and ctx's error is returned.
func (e *Engine) Verify(ctx context.Context, req *Request) (*Verdict, error) {
	j, err := e.Submit(req)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.Done():
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if err := j.Err(); err != nil {
		return nil, err
	}
	return j.Verdict(), nil
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case j, ok := <-e.jobCh:
			if !ok {
				return
			}
			e.tr.Gauge("service.queue_depth", float64(len(e.jobCh)))
			e.runJob(j)
		case t := <-e.helpCh:
			t()
		}
	}
}

// schedule runs component-check tasks through the worker pool: each task
// is offered to an idle worker with a non-blocking send and run inline
// on the scheduling job's own worker otherwise. The scheduling worker
// never blocks on a queue, so modular fan-out is deadlock-free at any
// worker count (with one worker everything simply runs inline).
func (e *Engine) schedule(tasks []func()) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		t := t
		wg.Add(1)
		wrapped := func() { defer wg.Done(); t() }
		select {
		case e.helpCh <- wrapped:
		default:
			wrapped()
		}
	}
	wg.Wait()
}

func (e *Engine) finishJob(j *Job, v *Verdict, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	queued := j.started.Sub(j.created)
	run := j.finished.Sub(j.started)
	if err != nil {
		j.status = StatusFailed
		j.err = err
	} else {
		j.status = StatusDone
		j.verdict = v
	}
	j.mu.Unlock()

	// The terminal flight-recorder event, then seal the recorder so
	// followers' live channels close; the ring itself is retained for
	// replay until the job is evicted.
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		j.rec.Emit(stream.EventJobCancelled, map[string]any{"reason": "timeout"})
	case errors.Is(err, context.Canceled):
		j.rec.Emit(stream.EventJobCancelled, map[string]any{"reason": "cancelled"})
	case err != nil:
		j.rec.Emit(stream.EventJobFailed, map[string]any{"error": err.Error()})
	default:
		j.rec.Emit(stream.EventJobDone, map[string]any{
			"verified": v.Verified, "cached": v.Cached, "elapsed_ms": v.ElapsedMs,
		})
	}
	j.rec.Close()

	close(j.done)
	e.tr.ObserveBounds("service.job_queued_ms", durMs(queued), obs.LatencyMsBounds)
	e.tr.ObserveBounds("service.job_run_ms", durMs(run), obs.LatencyMsBounds)
	if err != nil {
		e.tr.Add("service.jobs_failed", 1)
		if e.log != nil {
			e.log.Error("job failed", "job", j.ID, "check", j.Spec.Check, "err", err)
		}
	} else {
		e.tr.Add("service.jobs_done", 1)
		if e.log != nil {
			kv := []any{"job", j.ID, "check", j.Spec.Check,
				"verified", v.Verified, "cached", v.Cached, "ms", v.ElapsedMs,
				"encode_ms", v.EncodeMs, "simplify_ms", v.SimplifyMs,
				"solve_ms", v.SolveMs}
			if v.Cost != nil {
				// The cost summary: deterministic work plus the memory
				// account, same numbers GET /v1/jobs/{id}/cost breaks down.
				w, m := v.Cost.Total(), v.Cost.TotalMem()
				kv = append(kv, "units", w.Units(), "conflicts", w.Conflicts,
					"db_bytes", w.ClauseDBBytes, "heap_peak", m.HeapPeakBytes)
			}
			if v.Budget != nil {
				kv = append(kv, "budget_exceeded", v.Budget.Exceeded,
					"budget_costliest", v.Budget.Costliest)
			}
			e.log.Info("job done", kv...)
		}
	}
	e.tr.Gauge("service.jobs_running", float64(e.running.Add(-1)))
	if e.memBudget > 0 {
		e.tr.Gauge("service.reserved_bytes", float64(e.reserved.Add(-e.memBudget)))
	}

	e.mu.Lock()
	e.finished = append(e.finished, j.ID)
	e.evictLocked()
	e.mu.Unlock()
}

// evictLocked drops the oldest finished jobs while the job map exceeds
// MaxJobs. Only finished jobs are eligible, so a burst of queued work
// may transiently hold the map above the bound. Called with e.mu held.
func (e *Engine) evictLocked() {
	for len(e.jobs) > e.maxJobs && len(e.finished) > 0 {
		id := e.finished[0]
		e.finished = e.finished[1:]
		if _, ok := e.jobs[id]; ok {
			delete(e.jobs, id)
			e.tr.Add("service.jobs_evicted", 1)
		}
	}
}

func (e *Engine) runJob(j *Job) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
	e.tr.Gauge("service.jobs_running", float64(e.running.Add(1)))
	if e.memBudget > 0 {
		e.tr.Gauge("service.reserved_bytes", float64(e.reserved.Add(e.memBudget)))
	}
	j.rec.Emit(stream.EventJobStarted, nil)

	// Content-addressed fast path: an identical (network, property,
	// environment-bound) query was already answered.
	e.mu.Lock()
	hit := e.cache[j.key]
	e.mu.Unlock()
	if hit != nil {
		e.tr.Add("service.cache_hits", 1)
		j.rec.Emit(stream.EventCacheHit, map[string]any{"key": j.key})
		e.finishJob(j, hit.cachedCopy(j.ID), nil)
		return
	}
	e.tr.Add("service.cache_misses", 1)
	j.rec.Emit(stream.EventCacheMiss, map[string]any{"key": j.key})

	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	defer cancel()
	v, err := e.check(ctx, j)
	if err != nil {
		e.finishJob(j, nil, err)
		return
	}
	if v.Budget == nil {
		// Budget-exceeded verdicts are not answers: a retried job with a
		// bigger budget (or none) must reach the solver, not the cache.
		e.mu.Lock()
		e.cache[j.key] = v
		e.mu.Unlock()
	}
	e.finishJob(j, v, nil)
}

// netEntryFor returns the per-network state, creating the placeholder on
// first sight. The entry is built lazily under its own lock so two jobs
// on one new network encode it once, while jobs on other networks
// proceed in parallel.
func (e *Engine) netEntryFor(key string) *netEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.nets[key]
	if !ok {
		ent = &netEntry{}
		e.nets[key] = ent
		e.tr.Gauge("service.networks", float64(len(e.nets)))
	}
	return ent
}

// build parses and graphs a network, then — unless the engine runs
// modular, where the whole-network model may never be needed — encodes
// it and opens the solver session. Called with ent.mu held, once per
// network; failures are cached as permanent. sp parents the
// encode/compile/session spans, so the building job's trace carries the
// network's one-time setup cost.
func (e *Engine) build(ent *netEntry, configs map[string]string, sp *obs.Span) error {
	names := make([]string, 0, len(configs))
	for n := range configs {
		names = append(names, n)
	}
	sort.Strings(names)
	routers := make([]*config.Router, 0, len(names))
	for _, n := range names {
		r, err := config.Parse(configs[n])
		if err != nil {
			return fmt.Errorf("service: parse %s: %w", n, err)
		}
		routers = append(routers, r)
	}
	g, err := harness.BuildGraph(routers)
	if err != nil {
		return fmt.Errorf("service: graph: %w", err)
	}
	if tiered.Enabled(e.tiers) {
		ent.tiered = tiered.NewAnalysis(g)
	}
	ent.g = g
	if e.modular {
		return nil
	}
	return e.buildModel(ent, sp)
}

// coreOptions is the encoder/solver configuration shared by the
// monolithic model and every modular component compile.
func (e *Engine) coreOptions(sp *obs.Span) core.Options {
	opts := core.DefaultOptions()
	opts.Passes = e.passes
	opts.Certify = e.certify
	opts.Blame = e.blame
	opts.ProfileOrigins = e.profOrig
	opts.Parallel = e.parallel
	opts.ParallelWorkers = e.parallelWk
	opts.Span = sp
	return opts
}

// buildModel encodes the whole network and opens its solver session.
// Called with ent.mu held, at most once per network: the attempt is
// recorded up front so a failure is permanent and a success is never
// re-registered (re-compiling would alias the entry to itself).
func (e *Engine) buildModel(ent *netEntry, sp *obs.Span) error {
	ent.modelBuilt = true
	opts := e.coreOptions(sp)
	m, err := core.Encode(ent.g, opts)
	if err != nil {
		return fmt.Errorf("service: encode: %w", err)
	}
	cn := m.Compile()
	e.tr.Add("service.compiles", 1)
	ent.m, ent.cn = m, cn
	if canon := e.registerCompile(cn.Hash, ent); canon != nil {
		// Another config set compiled to an identical constraint system:
		// alias to it and share its session instead of blasting again. The
		// protocol graph stays: the modular pipeline and the fast path work
		// on the entry's own topology, never the alias's.
		ent.alias = canon
		ent.m = nil
		e.tr.Add("service.compile_reuse", 1)
		return nil
	}
	every := e.progressEvery
	if every <= 0 && (e.workBudget > 0 || e.memBudget > 0) {
		// Budgets ride the progress hook; keep it firing (without
		// progress events) even when the operator disabled streaming.
		every = 1000
	}
	if every > 0 {
		// The hook is installed once per session and routes through the
		// entry's current-recorder field, so every job checking on this
		// session streams its own solver.progress events — and through
		// the current-budget field, so the checking job's budgets are
		// enforced at the same cadence.
		m.ProgressEvery = every
		m.OnProgress = func(p sat.Progress) {
			if e.progressEvery > 0 {
				ent.curRec.Emit(stream.EventSolverProgress, map[string]any{
					"conflicts":    p.Conflicts,
					"decisions":    p.Decisions,
					"propagations": p.Propagations,
					"restarts":     p.Restarts,
					"learned":      p.Learned,
					"lbd_avg":      p.LBDAvg,
				})
			}
			ent.curBudget.observe(p)
		}
	}
	if psolve.Enabled(e.parallel) {
		// Parallel solves borrow idle verification workers for their racer
		// tasks (running inline when none is free), so the machine never
		// runs more solver goroutines than the pool size allows; the
		// strategy's verdict events land on the checking job's recorder.
		m.Schedule = e.schedule
		m.OnSolverEvent = func(kind string, fields map[string]any) {
			ent.curRec.Emit(kind, fields)
		}
	}
	ent.sess = m.NewSession()
	e.tr.Add("service.session_builds", 1)
	return nil
}

// registerCompile records ent as the canonical owner of a compiled-
// network hash, or returns the already-registered owner when another
// network compiled to the same system.
func (e *Engine) registerCompile(hash string, ent *netEntry) *netEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	if canon, ok := e.byCompile[hash]; ok {
		return canon
	}
	e.byCompile[hash] = ent
	return nil
}

// check answers one cache-miss job on its network's session. It records
// the job's flight-recorder events — coarse phases and solver progress
// live, the fine-grained span tree backfilled once the check returns —
// and keeps the per-job span tree reachable via Job.Trace.
func (e *Engine) check(ctx context.Context, j *Job) (*Verdict, error) {
	jtr := obs.New("job:" + j.ID)
	j.setTrace(jtr)
	defer jtr.Root().End()

	// setupCost is the session's one-time ledger, owned by the job that
	// actually built the session — later jobs reuse the session without
	// repaying (or re-reporting) its cost.
	var setupCost *cost.Node
	ent := e.netEntryFor(j.netKey)
	ent.mu.Lock()
	if !ent.built {
		ent.built = true
		j.rec.Emit(stream.EventPhaseStart, map[string]any{"phase": "build"})
		ent.err = e.build(ent, j.configs, jtr.Root())
		data := map[string]any{"phase": "build", "ok": ent.err == nil}
		if ent.sess != nil {
			setupCost = ent.sess.SetupCost()
			w := setupCost.Total()
			data["units"] = w.Units()
			data["db_bytes"] = w.ClauseDBBytes
		}
		j.rec.Emit(stream.EventPhaseEnd, data)
	} else if ent.err == nil {
		e.tr.Add("service.session_reuse", 1)
		j.rec.Emit(stream.EventSessionReuse, nil)
	}
	if err := ent.err; err != nil {
		ent.mu.Unlock()
		return nil, err
	}

	// A job whose deadline expired during the build must time out, not be
	// rescued by the fast path.
	if err := ctx.Err(); err != nil {
		ent.mu.Unlock()
		return nil, err
	}

	// Graph fast path: attempt the goal on this entry's own analysis
	// before any alias hop (aliased entries share a solver session, not a
	// topology). A definitive verdict never touches the model or session.
	var fastElapsed time.Duration
	var fastTried bool
	if ent.tiered != nil {
		if goal, ok := goalForSpec(j.Spec); ok {
			fastTried = true
			j.rec.Emit(stream.EventPhaseStart, map[string]any{"phase": "fastpath"})
			start := time.Now()
			out := ent.tiered.Decide(goal)
			fastElapsed = time.Since(start)
			j.rec.Emit(stream.EventPhaseEnd, map[string]any{
				"phase": "fastpath", "ok": true,
				"decided": out.Decided, "reason": out.Reason,
			})
			if out.Decided {
				ent.mu.Unlock()
				e.tr.Add("service.fastpath_hits", 1)
				res := tiered.Synthesize(out, fastElapsed, e.blame)
				v := newVerdict(j.ID, j.Spec, res, nil)
				v.Cost = jobLedger(setupCost, res.Cost)
				e.recordCostMetrics(v.Cost)
				e.emitCheckEvents(j, res, v)
				jtr.Root().End()
				emitSpans(j.rec, jtr)
				return v, nil
			}
			e.tr.Add("service.fastpath_residue", 1)
		}
	}

	// Modular assume/guarantee path: a multi-component network whose goal
	// is in the modular vocabulary is verified per component-class on this
	// engine's own worker pool. When the composed verdict stands the
	// monolithic model is never built; any residue falls through to the
	// unchanged session pipeline below.
	var modularResidue []string
	var violatedContract string
	if e.modular {
		v, residue, violated, err := e.tryModular(ctx, j, ent, jtr)
		if err != nil {
			ent.mu.Unlock()
			return nil, err
		}
		if v != nil {
			ent.mu.Unlock()
			return v, nil
		}
		modularResidue, violatedContract = residue, violated
	}

	// The monolithic model is built lazily under Options.Modular; make
	// sure it exists before the session check. Failures are permanent,
	// like graph-build failures.
	if !ent.modelBuilt {
		j.rec.Emit(stream.EventPhaseStart, map[string]any{"phase": "build-model"})
		ent.err = e.buildModel(ent, jtr.Root())
		j.rec.Emit(stream.EventPhaseEnd, map[string]any{
			"phase": "build-model", "ok": ent.err == nil,
		})
		if err := ent.err; err != nil {
			ent.mu.Unlock()
			return nil, err
		}
		if ent.sess != nil {
			setupCost = ent.sess.SetupCost()
		}
	}

	if canon := ent.alias; canon != nil {
		// This config set compiled to the same system as an earlier
		// network: hop to the canonical entry and use its session. The
		// canonical entry is fully built — registration happens during
		// its build, under its lock, which we take next.
		ent.mu.Unlock()
		ent = canon
		ent.mu.Lock()
		j.rec.Emit(stream.EventCompileReuse, nil)
	}
	defer ent.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Route this session's telemetry to the current job: the progress
	// hook reads curRec and CheckContext reads m.Obs at check time, and
	// both the swap and the check run with ent.mu held.
	ent.curRec = j.rec
	ent.m.Obs = jtr.Root()
	defer func() { ent.curRec = nil }()

	j.rec.Emit(stream.EventPhaseStart, map[string]any{"phase": "property"})
	p, err := buildProperty(ent.m, ent.g, j.Spec)
	j.rec.Emit(stream.EventPhaseEnd, map[string]any{
		"phase": "property", "ok": err == nil,
	})
	if err != nil {
		return nil, err
	}
	var assumptions []*smt.Term
	if j.Spec.MaxFailures > 0 {
		assumptions = append(assumptions, ent.m.AtMostFailures(j.Spec.MaxFailures))
	} else {
		assumptions = append(assumptions, ent.m.NoFailures())
	}
	// Budget enforcement rides the solver progress hook: baseline the
	// session's cumulative counters now, cancel the derived context on
	// breach, and recognize the breach below instead of failing the job.
	var budget *budgetState
	checkCtx := ctx
	if e.workBudget > 0 || e.memBudget > 0 {
		var cancelBudget context.CancelFunc
		checkCtx, cancelBudget = context.WithCancel(ctx)
		defer cancelBudget()
		budget = newBudgetState(cancelBudget, e.workBudget, e.memBudget, ent.sess.SolverStats())
		ent.curBudget = budget
		defer func() { ent.curBudget = nil }()
	}
	j.rec.Emit(stream.EventPhaseStart, map[string]any{"phase": "solve"})
	res, err := ent.sess.CheckContext(checkCtx, p, assumptions...)
	if bi := budget.breach(); bi != nil && ctx.Err() == nil {
		// The budget tripped, not the job's deadline: the job degrades to
		// a budget_exceeded verdict naming the costliest subtree of its
		// ledger, it does not fail. The cancellation is asynchronous, so
		// a fast solve may have finished anyway — the breach still rules,
		// but then the ledger is the complete one.
		var full *cost.Node
		if err == nil && res != nil {
			full = jobLedger(setupCost, res.Cost)
		}
		j.rec.Emit(stream.EventPhaseEnd, map[string]any{
			"phase": "solve", "ok": false, "budget_exceeded": bi.Exceeded,
		})
		e.tr.Add("service.budget_exceeded", 1)
		v := budgetVerdict(j, setupCost, bi, full)
		j.rec.Emit(stream.EventVerdict, map[string]any{
			"verified": false, "budget_exceeded": bi.Exceeded,
			"costliest": bi.Costliest, "units": bi.spent.Units(),
		})
		jtr.Root().End()
		emitSpans(j.rec, jtr)
		return v, nil
	}
	if err != nil {
		j.rec.Emit(stream.EventPhaseEnd, map[string]any{"phase": "solve", "ok": false})
		return nil, err
	}
	solveEnd := map[string]any{"phase": "solve", "ok": true}
	if res.Cost != nil {
		w := res.Cost.Total()
		solveEnd["units"] = w.Units()
		solveEnd["conflicts"] = w.Conflicts
		solveEnd["db_bytes"] = w.ClauseDBBytes
	}
	j.rec.Emit(stream.EventPhaseEnd, solveEnd)
	core.RecordSolverMetrics(e.tr, res)
	e.tr.Add("service.session_checks", 1)
	e.tr.Add("service.session_shared_blasts", int64(ent.sess.SharedBlasts())-e.sharedBlastsSeen(ent.cn.Hash, ent.sess.SharedBlasts()))
	if res.OriginProfile != nil {
		j.mu.Lock()
		j.profile = res.OriginProfile
		j.mu.Unlock()
	}
	if fastTried {
		res.Tier = tiered.TierSAT
		res.FastPathElapsed = fastElapsed
	}
	v := newVerdict(j.ID, j.Spec, res, ent.m)
	v.Cost = jobLedger(setupCost, res.Cost)
	e.recordCostMetrics(v.Cost)
	if e.modular {
		// Name how the whole-network pipeline ended up answering: a goal
		// outside the modular vocabulary or a single-component network is
		// plain monolithic; anything else is a fallback forced by residue.
		v.Mode = modular.ModeFallback
		v.ModularResidue = modularResidue
		v.ViolatedContract = violatedContract
		if len(modularResidue) == 1 &&
			(modularResidue[0] == "spec-check" || modularResidue[0] == "single-component") {
			v.Mode = modular.ModeMonolithic
			v.ModularResidue = nil
		}
	}
	e.emitCheckEvents(j, res, v)
	jtr.Root().End()
	emitSpans(j.rec, jtr)
	return v, nil
}

// tryModular attempts the assume/guarantee pipeline for a job. Called
// with ent.mu held. Returns a non-nil verdict when the composed result
// stands; otherwise the residue (and violated contract, if a discharge
// failed) explaining why the job falls through to the monolithic
// pipeline. A context error is returned as-is: a timed-out component
// check times the job out, it never degrades into a partial verdict.
func (e *Engine) tryModular(ctx context.Context, j *Job, ent *netEntry, jtr *obs.Trace) (*Verdict, []string, string, error) {
	goal, ok := goalForSpec(j.Spec)
	if !ok {
		return nil, []string{"spec-check"}, "", nil
	}
	if ent.cut == nil {
		ent.cut = modular.Partition(ent.g)
	}
	if !ent.cut.MultiComponent() {
		return nil, []string{"single-component"}, "", nil
	}
	e.tr.Add("service.modular_runs", 1)
	opts := modular.Options{
		// Component compiles run concurrently on the worker pool, and the
		// job's span tree is single-writer — so the core options carry no
		// span; the flight recorder (synchronized) gets the progress.
		Core:     e.coreOptions(nil),
		Schedule: e.schedule,
		OnEvent: func(ev string, fields map[string]any) {
			j.rec.Emit(ev, fields)
		},
	}
	plan := modular.NewPlan(ent.g, ent.cut, goal)
	sp := jtr.Root().Start("modular")
	rep, err := modular.Run(ctx, ent.g, plan, opts)
	sp.End()
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, "", err
		}
		// A component-level runtime error is residue, not a job failure:
		// the monolithic pipeline still owns the answer.
		e.tr.Add("service.modular_residue", 1)
		j.rec.Emit(stream.EventModularResidue, map[string]any{"error": err.Error()})
		return nil, []string{"error: " + err.Error()}, "", nil
	}
	e.tr.Add("service.component_checks", int64(rep.Checks))
	e.tr.Add("service.component_alias_hits", int64(rep.AliasHits))
	if len(rep.Residue) > 0 {
		e.tr.Add("service.modular_residue", 1)
		return nil, rep.Residue, rep.Violated, nil
	}
	e.tr.Add("service.modular_verdicts", 1)
	v := newVerdict(j.ID, j.Spec, rep.Result, nil)
	// The modular job's ledger is the per-class tree (job → modular →
	// class:N → phases), richer than the composed result's folded goal.
	v.Cost = jobLedger(nil, rep.Cost)
	e.recordCostMetrics(v.Cost)
	v.Mode = modular.ModeModular
	v.Components = rep.Components
	v.ComponentClasses = rep.Classes
	v.AliasHits = rep.AliasHits
	e.emitCheckEvents(j, rep.Result, v)
	jtr.Root().End()
	emitSpans(j.rec, jtr)
	return v, nil, "", nil
}

// emitCheckEvents backfills the post-solve milestones onto the flight
// recorder: per-pass simplification stats, proof certification, blame
// extraction and the verdict itself.
func (e *Engine) emitCheckEvents(j *Job, res *core.Result, v *Verdict) {
	for _, ps := range res.PassStats {
		j.rec.Emit(stream.EventPass, map[string]any{
			"pass":          ps.Pass,
			"asserts_after": ps.AssertsAfter,
			"terms_after":   ps.TermsAfter,
			"ms":            durMs(ps.Elapsed),
		})
	}
	if v.Proof != nil {
		j.rec.Emit(stream.EventCertify, map[string]any{
			"checked": v.Proof.Checked,
			"steps":   v.Proof.Steps,
			"lemmas":  v.Proof.Lemmas,
			"ms":      v.Proof.CheckMs,
		})
	}
	if len(v.Blame) > 0 {
		j.rec.Emit(stream.EventBlame, map[string]any{
			"origins": len(v.Blame),
		})
	}
	data := map[string]any{
		"verified":   v.Verified,
		"elapsed_ms": v.ElapsedMs,
		"solve_ms":   v.SolveMs,
	}
	if v.Tier != "" {
		data["tier"] = v.Tier
		data["fastpath_ms"] = v.FastPathMs
	}
	if v.Solver != nil {
		data["conflicts"] = v.Solver.Conflicts
		data["decisions"] = v.Solver.Decisions
	}
	if v.Cost != nil {
		w := v.Cost.Total()
		data["units"] = w.Units()
		data["db_bytes"] = w.ClauseDBBytes
	}
	j.rec.Emit(stream.EventVerdict, data)
}

// jobLedger roots a job's cost tree: the goal (or modular) ledger of its
// check plus, for the job that created the network's session, the
// one-time setup. Nil when the check produced no ledger at all.
func jobLedger(setup, goal *cost.Node) *cost.Node {
	if setup == nil && goal == nil {
		return nil
	}
	root := cost.New("job")
	root.AddChild(setup)
	root.AddChild(goal)
	return root
}

// Histogram bounds for the cost metrics: work units span request scales
// from trivial incremental checks to multi-minute monoliths; byte bounds
// cover clause databases from toy to saturated.
var (
	workUnitBounds = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	costByteBounds = []float64{1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 24, 1 << 27, 1 << 30}
)

// recordCostMetrics folds one job's cost totals into the engine trace:
// monotonic counters for Prometheus rate() arithmetic plus per-job
// histograms of the deterministic work.
func (e *Engine) recordCostMetrics(n *cost.Node) {
	if n == nil {
		return
	}
	w := n.Total()
	e.tr.Add("service.work_units", w.Units())
	e.tr.Add("service.clause_db_bytes", w.ClauseDBBytes)
	if w.ProofBytes > 0 {
		e.tr.Add("service.proof_bytes", w.ProofBytes)
	}
	e.tr.ObserveBounds("service.job_units", float64(w.Units()), workUnitBounds)
	e.tr.ObserveBounds("service.job_db_bytes", float64(w.ClauseDBBytes), costByteBounds)
}

// budgetVerdict renders a budget breach as a verdict: unverified, the
// budget block filled in, and a cost ledger whose costliest subtree the
// budget block names. full is the check's complete ledger when the solve
// outran the interrupt; otherwise a partial one is assembled from the
// session setup (if this job paid it) and the solve work spent before
// the trip.
func budgetVerdict(j *Job, setup *cost.Node, bi *BudgetInfo, full *cost.Node) *Verdict {
	ledger := full
	if ledger == nil {
		ledger = cost.New("job")
		ledger.AddChild(setup)
		ledger.Child("goal").Child("solve").Add(bi.spent)
	}
	bi.Costliest, bi.CostliestUnits = ledger.Costliest()
	return &Verdict{
		JobID:    j.ID,
		Check:    j.Spec.Check,
		Verified: false,
		Budget:   bi,
		Cost:     ledger,
	}
}

// emitSpans backfills the finished span tree as "span" events, oldest
// first, so post-hoc consumers of the event stream see the same phase
// breakdown the timeline and Chrome trace carry.
func emitSpans(rec *stream.Recorder, tr *obs.Trace) {
	if tr == nil {
		return
	}
	base := tr.Root().StartTime()
	tr.Root().Walk(func(sp *obs.Span, depth int) {
		data := map[string]any{
			"name":     sp.Name(),
			"depth":    depth,
			"start_ms": durMs(sp.StartTime().Sub(base)),
			"dur_ms":   durMs(sp.Duration()),
		}
		for _, a := range sp.Attrs() {
			data[a.Key] = a.Value()
		}
		rec.Emit(stream.EventSpan, data)
	})
}

// sharedBlastsSeen tracks the per-session shared-blast count already
// folded into the service.session_shared_blasts counter (keyed by the
// compiled-network hash, since aliased networks share one session), so
// the counter equals the total number of times any shared formula N was
// blasted (1 per distinct compiled system when sessions amortize
// perfectly).
func (e *Engine) sharedBlastsSeen(netKey string, now int) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.blastsSeen == nil {
		e.blastsSeen = map[string]int{}
	}
	prev := e.blastsSeen[netKey]
	e.blastsSeen[netKey] = now
	return int64(prev)
}
