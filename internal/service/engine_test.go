package service

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/modular"
	"repro/internal/obs/stream"
	"repro/internal/testnets"
	"repro/internal/topogen"
)

func chainConfigs(n int) map[string]string {
	texts := testnets.OSPFChainTexts(n)
	cfgs := make(map[string]string, len(texts))
	for i, t := range texts {
		cfgs[fmt.Sprintf("r%d.cfg", i+1)] = t
	}
	return cfgs
}

func figure2Configs() map[string]string {
	texts := testnets.Figure2Texts()
	cfgs := make(map[string]string, len(texts))
	for i, t := range texts {
		cfgs[fmt.Sprintf("r%d.cfg", i+1)] = t
	}
	return cfgs
}

func newTestEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	e := NewEngine(Options{Workers: workers, Timeout: 60 * time.Second})
	t.Cleanup(e.Close)
	return e
}

// newSATTestEngine disables the graph fast path, for tests that pin the
// solver pipeline's own behavior (session reuse, decoded counterexamples,
// proof plumbing).
func newSATTestEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	e := NewEngine(Options{Workers: workers, Timeout: 60 * time.Second, Tiers: "none"})
	t.Cleanup(e.Close)
	return e
}

func TestEngineVerifiesAndCaches(t *testing.T) {
	e := newTestEngine(t, 2)
	req := &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	}
	v, err := e.Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Verified || v.Cached {
		t.Fatalf("first query: verified=%v cached=%v, want true/false", v.Verified, v.Cached)
	}
	if sum := v.FastPathMs + v.EncodeMs + v.SimplifyMs + v.SolveMs + v.CertifyMs; v.ElapsedMs != sum {
		t.Fatalf("elapsed %v != phase sum %v", v.ElapsedMs, sum)
	}
	if v.Tier != "graph" {
		t.Fatalf("chain reachability should hit the graph fast path, got tier %q", v.Tier)
	}

	// The identical query must come from the cache without solving.
	checksBefore := e.Trace().Counter("service.session_checks")
	v2, err := e.Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached || !v2.Verified {
		t.Fatalf("repeat query: cached=%v verified=%v, want true/true", v2.Cached, v2.Verified)
	}
	if v2.JobID == v.JobID {
		t.Fatal("cached verdict must carry the new job id")
	}
	if got := e.Trace().Counter("service.session_checks"); got != checksBefore {
		t.Fatalf("cache hit ran the solver: checks %d → %d", checksBefore, got)
	}
	if hits := e.Trace().Counter("service.cache_hits"); hits != 1 {
		t.Fatalf("cache_hits=%d, want 1", hits)
	}
}

func TestEngineSessionReuseAcrossProperties(t *testing.T) {
	e := newSATTestEngine(t, 1)
	cfgs := chainConfigs(3)
	specs := []Spec{
		{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
		{Check: "reachability", Src: "R3", Subnet: "10.100.1.0/24"},
		{Check: "bounded-length", Src: "R1", Subnet: "10.100.3.0/24", Hops: 4},
		{Check: "loops"},
		{Check: "blackholes"},
	}
	for _, s := range specs {
		if _, err := e.Verify(context.Background(), &Request{Configs: cfgs, Spec: s}); err != nil {
			t.Fatalf("%s: %v", s.Check, err)
		}
	}
	tr := e.Trace()
	if builds := tr.Counter("service.session_builds"); builds != 1 {
		t.Fatalf("session_builds=%d, want 1 (one network)", builds)
	}
	if reuse := tr.Counter("service.session_reuse"); reuse != int64(len(specs)-1) {
		t.Fatalf("session_reuse=%d, want %d", reuse, len(specs)-1)
	}
	// The acceptance criterion: across all checks, the shared formula N
	// was blasted exactly once — zero re-blasts after the first check.
	if blasts := tr.Counter("service.session_shared_blasts"); blasts != 1 {
		t.Fatalf("session_shared_blasts=%d, want 1", blasts)
	}
	if checks := tr.Counter("service.session_checks"); checks != int64(len(specs)) {
		t.Fatalf("session_checks=%d, want %d", checks, len(specs))
	}
}

func TestEngineCompileAliasing(t *testing.T) {
	e := newSATTestEngine(t, 1)
	spec := Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"}
	cfgs := chainConfigs(3)
	v1, err := e.Verify(context.Background(), &Request{Configs: cfgs, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	// A comment-only edit changes the config hash but parses and compiles
	// to an identical constraint system: the engine must recognize the
	// compiled hash and reuse the first network's session.
	edited := make(map[string]string, len(cfgs))
	for n, text := range cfgs {
		edited[n] = "! cosmetic comment\n" + text
	}
	v2, err := e.Verify(context.Background(), &Request{Configs: edited, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Cached {
		t.Fatal("distinct config hash must miss the verdict cache")
	}
	if v1.Verified != v2.Verified {
		t.Fatalf("aliased session changed the verdict: %v vs %v", v1.Verified, v2.Verified)
	}
	tr := e.Trace()
	if compiles := tr.Counter("service.compiles"); compiles != 2 {
		t.Fatalf("service.compiles=%d, want 2 (each config set compiles once)", compiles)
	}
	if reuse := tr.Counter("service.compile_reuse"); reuse != 1 {
		t.Fatalf("service.compile_reuse=%d, want 1", reuse)
	}
	if builds := tr.Counter("service.session_builds"); builds != 1 {
		t.Fatalf("session_builds=%d, want 1 (aliased network shares the session)", builds)
	}
	if blasts := tr.Counter("service.session_shared_blasts"); blasts != 1 {
		t.Fatalf("session_shared_blasts=%d, want 1 across aliased networks", blasts)
	}
}

func TestEngineCounterexample(t *testing.T) {
	e := newSATTestEngine(t, 1)
	// One hop is not enough to cross a 3-router chain: expect a violated
	// property with a decoded counterexample.
	v, err := e.Verify(context.Background(), &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "bounded-length", Src: "R1", Subnet: "10.100.3.0/24", Hops: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Verified {
		t.Fatal("hop bound 1 across a 3-chain must be violated")
	}
	cex := v.Counterexample
	if cex == nil {
		t.Fatal("violated verdict without counterexample")
	}
	if !strings.HasPrefix(cex.Packet.DstIP, "10.100.3.") {
		t.Fatalf("counterexample packet %q should target the 10.100.3.0/24 subnet", cex.Packet.DstIP)
	}
	if len(cex.Forwarding) == 0 {
		t.Fatal("counterexample is missing the forwarding state")
	}
}

func TestEngineParallelNetworks(t *testing.T) {
	e := newTestEngine(t, 4)
	nets := []map[string]string{chainConfigs(3), chainConfigs(4), figure2Configs()}
	specs := []Spec{
		{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
		{Check: "reachability", Src: "R1", Subnet: "10.100.4.0/24"},
		{Check: "reachability", Src: "R1", Subnet: "10.3.3.0/24"},
	}
	jobs := make([]*Job, 0, len(nets))
	for i := range nets {
		j, err := e.Submit(&Request{Configs: nets[i], Spec: specs[i]})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for i, j := range jobs {
		<-j.Done()
		if err := j.Err(); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		v := j.Verdict()
		if v == nil {
			t.Fatalf("job %d: no verdict", i)
		}
		// The chains are verified; Figure2's reachability is hijackable
		// under a free environment, so only demand a decoded answer.
		if i < 2 && !v.Verified {
			t.Fatalf("job %d: %+v", i, v)
		}
		if !v.Verified && v.Counterexample == nil {
			t.Fatalf("job %d: violated without counterexample", i)
		}
	}
	if builds := e.Trace().Counter("service.session_builds"); builds != 3 {
		t.Fatalf("session_builds=%d, want 3 (three distinct networks)", builds)
	}
}

func TestEngineValidation(t *testing.T) {
	e := newTestEngine(t, 1)
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"no-configs", Request{Spec: Spec{Check: "loops"}}, "configs"},
		{"no-check", Request{Configs: chainConfigs(2)}, "check is required"},
		{"unknown-check", Request{Configs: chainConfigs(2), Spec: Spec{Check: "nope"}}, "unknown check"},
		{"missing-src", Request{Configs: chainConfigs(2), Spec: Spec{Check: "reachability", Subnet: "10.0.0.0/8"}}, "requires src"},
		{"bad-subnet", Request{Configs: chainConfigs(2), Spec: Spec{Check: "reachability", Src: "R1", Subnet: "not-a-cidr"}}, "subnet"},
		{"pair-model", Request{Configs: chainConfigs(2), Spec: Spec{Check: "equivalence", Pair: "R1,R2"}}, "not supported"},
	}
	for _, c := range cases {
		_, err := e.Submit(&c.req)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err=%v, want substring %q", c.name, err, c.want)
		}
	}
	// A src that is not in the network fails at run time, not submit time.
	v, err := e.Verify(context.Background(), &Request{
		Configs: chainConfigs(2),
		Spec:    Spec{Check: "reachability", Src: "R9", Subnet: "10.100.2.0/24"},
	})
	if err == nil || !strings.Contains(err.Error(), "not a router") {
		t.Fatalf("unknown src: verdict=%v err=%v", v, err)
	}
}

func TestEngineJobTimeout(t *testing.T) {
	e := newTestEngine(t, 1)
	// Warm the network, then submit a job with a 1ms budget: it should
	// fail with the deadline error (unless the machine is fast enough to
	// finish anyway), and later jobs on the same session must still work.
	_, err := e.Verify(context.Background(), &Request{
		Configs:   chainConfigs(3),
		Spec:      Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
		TimeoutMs: 0, // engine default
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := e.Submit(&Request{
		Configs:   chainConfigs(3),
		Spec:      Spec{Check: "reachability", Src: "R3", Subnet: "10.100.1.0/24"},
		TimeoutMs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if jerr := j.Err(); jerr != context.DeadlineExceeded {
		// Timing-dependent: on a fast machine the 1ms budget may
		// suffice for a session check. Accept success, reject other
		// errors.
		if jerr != nil {
			t.Fatalf("timeout job: %v", jerr)
		}
	}
	v, err := e.Verify(context.Background(), &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "loops"},
	})
	if err != nil || !v.Verified {
		t.Fatalf("session unusable after timeout: %v %v", v, err)
	}
}

func TestEngineCacheKeySensitivity(t *testing.T) {
	cfgs := chainConfigs(3)
	base := Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"}
	net := configHash(cfgs)
	if cacheKey(net, base) != cacheKey(net, base) {
		t.Fatal("cache key is not deterministic")
	}
	diff := base
	diff.MaxFailures = 1
	if cacheKey(net, base) == cacheKey(net, diff) {
		t.Fatal("environment bound must be part of the cache key")
	}
	other := chainConfigs(4)
	if configHash(cfgs) == configHash(other) {
		t.Fatal("different networks must hash differently")
	}
	// Defaults normalize: hops 0 and hops 4 are the same query.
	a := Spec{Check: "bounded-length", Src: "R1", Subnet: "10.100.3.0/24"}
	b := a
	b.Hops = DefaultHops
	if cacheKey(net, a) != cacheKey(net, b) {
		t.Fatal("default hops must normalize into the cache key")
	}
}

// fabricConfigs renders the k-pod all-eBGP fat-tree as a service config
// set; every router is its own AS, so the modular pipeline cuts it into
// singleton components.
func fabricConfigs(t *testing.T, k int) map[string]string {
	t.Helper()
	ft, err := topogen.Generate(k)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make(map[string]string, len(ft.Routers))
	for _, r := range ft.Routers {
		cfgs[r.Name+".cfg"] = config.Print(r)
	}
	return cfgs
}

func newModularTestEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	e := NewEngine(Options{
		Workers: workers, Timeout: 60 * time.Second,
		Modular: true, Tiers: "none", Blame: true,
	})
	t.Cleanup(e.Close)
	return e
}

// TestEngineModularVerdict pins the full fan-out path: a multi-component
// fabric verified by assume/guarantee composition on the engine's own
// worker pool, with isomorphic pods answered by the alias cache rather
// than fresh solver runs.
func TestEngineModularVerdict(t *testing.T) {
	e := newModularTestEngine(t, 4)
	req := &Request{
		Configs: fabricConfigs(t, 4),
		Spec:    Spec{Check: "reachability", Src: "tor-1-0", Subnet: "10.0.0.0/24"},
	}
	v, err := e.Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Verified {
		t.Fatalf("fabric reachability should verify, got %+v", v)
	}
	if v.Mode != modular.ModeModular {
		t.Fatalf("mode = %q, want %q (residue %v)", v.Mode, modular.ModeModular, v.ModularResidue)
	}
	if v.Components != 20 {
		t.Fatalf("components = %d, want 20 (k=4 fat-tree)", v.Components)
	}
	if v.ComponentClasses == 0 || v.ComponentClasses >= v.Components {
		t.Fatalf("component classes = %d, want isomorphism collapse below %d", v.ComponentClasses, v.Components)
	}
	if v.AliasHits != v.Components-v.ComponentClasses {
		t.Fatalf("alias hits = %d, want components-classes = %d", v.AliasHits, v.Components-v.ComponentClasses)
	}
	if len(v.Blame) == 0 {
		t.Fatal("composed verdict must carry stanza-level blame")
	}
	if got := e.Trace().Counter("service.modular_verdicts"); got != 1 {
		t.Fatalf("modular_verdicts = %d, want 1", got)
	}
	if got := e.Trace().Counter("service.component_alias_hits"); got != int64(v.AliasHits) {
		t.Fatalf("component_alias_hits counter = %d, want %d", got, v.AliasHits)
	}
	if got := e.Trace().Counter("service.component_checks"); got == 0 {
		t.Fatal("component_checks counter not incremented")
	}

	// The composed verdict is cached like any other: the repeat query
	// must not re-run any component check.
	checks := e.Trace().Counter("service.component_checks")
	v2, err := e.Verify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached || v2.Mode != modular.ModeModular {
		t.Fatalf("repeat query: cached=%v mode=%q", v2.Cached, v2.Mode)
	}
	if got := e.Trace().Counter("service.component_checks"); got != checks {
		t.Fatalf("cache hit re-ran component checks: %d → %d", checks, got)
	}
}

// TestEngineModularTimeout pins that a budget expiring mid-composition
// times the job out — it never degrades into a partial or wrong verdict
// — and that the worker pool stays healthy afterwards.
func TestEngineModularTimeout(t *testing.T) {
	e := newModularTestEngine(t, 2)
	j, err := e.Submit(&Request{
		Configs:   fabricConfigs(t, 4),
		Spec:      Spec{Check: "blackholes", Subnet: "10.0.0.0/24"},
		TimeoutMs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if jerr := j.Err(); jerr != nil {
		if jerr != context.DeadlineExceeded {
			t.Fatalf("timed-out modular job: %v, want DeadlineExceeded", jerr)
		}
		if j.Verdict() != nil {
			t.Fatalf("timed-out job must carry no verdict, got %+v", j.Verdict())
		}
		// The flight recorder names the cancellation, and no verdict event
		// was ever emitted for the job.
		var cancelled bool
		for _, ev := range j.Recorder().Events() {
			switch ev.Type {
			case stream.EventJobCancelled:
				cancelled = true
			case stream.EventJobDone:
				t.Fatal("cancelled job emitted a done event")
			}
		}
		if !cancelled {
			t.Fatal("timed-out job never emitted job.cancelled")
		}
	} else if v := j.Verdict(); v == nil || !v.Verified {
		// Timing-dependent: a fast machine may finish inside 1ms, but
		// then the verdict must be the correct one.
		t.Fatalf("fast finish must still be the true verdict, got %+v", v)
	}

	// The pool and the cached partition survive the timeout.
	v, err := e.Verify(context.Background(), &Request{
		Configs: fabricConfigs(t, 4),
		Spec:    Spec{Check: "blackholes", Subnet: "10.0.0.0/24"},
	})
	if err != nil {
		t.Fatalf("engine unusable after modular timeout: %v", err)
	}
	if !v.Verified || v.Mode != modular.ModeModular {
		t.Fatalf("post-timeout verdict: verified=%v mode=%q (residue %v)", v.Verified, v.Mode, v.ModularResidue)
	}
}

// TestEngineModularFallback pins the two ways the monolithic pipeline
// answers under Options.Modular: a single-component network is plain
// monolithic (no residue recorded), and an in-vocabulary goal the plan
// cannot compose falls back with the residue named on the verdict.
func TestEngineModularFallback(t *testing.T) {
	e := newModularTestEngine(t, 2)

	// The OSPF chain is one IGP component: no cut, no residue, plain
	// monolithic verdict.
	v, err := e.Verify(context.Background(), &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Verified || v.Mode != modular.ModeMonolithic {
		t.Fatalf("chain: verified=%v mode=%q residue=%v, want monolithic with no residue",
			v.Verified, v.Mode, v.ModularResidue)
	}
	if len(v.ModularResidue) != 0 {
		t.Fatalf("single-component residue must not surface, got %v", v.ModularResidue)
	}

	// Failure bounds are outside the compositional fragment: the fabric
	// falls back to the monolithic pipeline and the verdict names why.
	v, err = e.Verify(context.Background(), &Request{
		Configs: fabricConfigs(t, 2),
		Spec:    Spec{Check: "reachability", Src: "tor-1-0", Subnet: "10.0.0.0/24", MaxFailures: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Mode != modular.ModeFallback {
		t.Fatalf("maxfail fabric: mode=%q, want %q", v.Mode, modular.ModeFallback)
	}
	found := false
	for _, r := range v.ModularResidue {
		if r == "goal-max-failures" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallback residue = %v, want goal-max-failures", v.ModularResidue)
	}
	if got := e.Trace().Counter("service.modular_residue"); got == 0 {
		t.Fatal("modular_residue counter not incremented")
	}
}
