package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/stream"
)

// sseMsg is one parsed Server-Sent Events message.
type sseMsg struct {
	ID    uint64
	Event string
	Data  stream.Event
}

// readSSE parses SSE messages off r and delivers them on the returned
// channel, closing it on stream end or read error.
func readSSE(t *testing.T, r *bufio.Reader) <-chan sseMsg {
	t.Helper()
	ch := make(chan sseMsg, 64)
	go func() {
		defer close(ch)
		var msg sseMsg
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case line == "":
				if msg.Event != "" {
					ch <- msg
				}
				msg = sseMsg{}
			case strings.HasPrefix(line, "id: "):
				msg.ID, _ = strconv.ParseUint(line[4:], 10, 64)
			case strings.HasPrefix(line, "event: "):
				msg.Event = line[7:]
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(line[6:]), &msg.Data); err != nil {
					t.Errorf("bad SSE data %q: %v", line, err)
				}
			}
		}
	}()
	return ch
}

// collectSSE drains the channel until it closes or the deadline hits.
func collectSSE(ch <-chan sseMsg, d time.Duration) []sseMsg {
	var out []sseMsg
	deadline := time.After(d)
	for {
		select {
		case m, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, m)
		case <-deadline:
			return out
		}
	}
}

// insertJob plants a running job with the given recorder directly into
// the engine, so SSE live-follow semantics can be tested without racing
// a real solver.
func insertJob(e *Engine, id string, rec *stream.Recorder) *Job {
	j := &Job{
		ID:      id,
		done:    make(chan struct{}),
		rec:     rec,
		status:  StatusRunning,
		created: time.Now(),
		started: time.Now(),
	}
	e.mu.Lock()
	e.jobs[id] = j
	e.mu.Unlock()
	return j
}

// TestSSEEndToEnd follows a real job's flight recorder over HTTP after
// it finishes: the replayed stream starts at submission, carries the
// phase and solver milestones in order, ends with the terminal event,
// and the connection closes by itself (the recorder is sealed).
func TestSSEEndToEnd(t *testing.T) {
	e := NewEngine(Options{Workers: 1, Timeout: 60 * time.Second, ProgressEvery: 1})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	_, v := postVerify(t, srv, &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	})
	if v == nil || !v.Verified {
		t.Fatalf("setup query did not verify: %+v", v)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	msgs := collectSSE(readSSE(t, bufio.NewReader(resp.Body)), 10*time.Second)
	if len(msgs) < 4 {
		t.Fatalf("got %d SSE messages, want a full timeline", len(msgs))
	}
	if msgs[0].Event != stream.EventJobSubmitted {
		t.Fatalf("first event %q, want %q", msgs[0].Event, stream.EventJobSubmitted)
	}
	if last := msgs[len(msgs)-1].Event; last != stream.EventJobDone {
		t.Fatalf("last event %q, want %q", last, stream.EventJobDone)
	}
	var lastSeq uint64
	verdictAt, progressAt := -1, -1
	for i, m := range msgs {
		if m.ID <= lastSeq {
			t.Fatalf("event ids not increasing: %d after %d", m.ID, lastSeq)
		}
		lastSeq = m.ID
		switch m.Event {
		case stream.EventVerdict:
			verdictAt = i
		case stream.EventSolverProgress:
			if progressAt == -1 {
				progressAt = i
			}
		}
	}
	if verdictAt == -1 {
		t.Fatal("no verdict event in the stream")
	}
	// A verified (UNSAT) answer needs conflicts, and ProgressEvery=1
	// reports each one — before the verdict, by construction.
	if v.Solver != nil && v.Solver.Conflicts > 0 {
		if progressAt == -1 {
			t.Fatal("no solver.progress events despite conflicts")
		}
		if progressAt > verdictAt {
			t.Fatalf("solver.progress at %d after verdict at %d", progressAt, verdictAt)
		}
	}
}

// TestSSELiveFollowAndResume exercises the live path deterministically
// on a planted job: a follower receives events emitted after it
// connected, a reconnect with Last-Event-ID resumes without duplicates,
// and closing the recorder ends both streams.
func TestSSELiveFollowAndResume(t *testing.T) {
	e := newTestEngine(t, 1)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	rec := stream.NewRecorder(64)
	insertJob(e, "job-live01", rec)
	rec.Emit("phase.start", map[string]any{"phase": "warmup"})

	resp, err := http.Get(srv.URL + "/v1/jobs/job-live01/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ch := readSSE(t, bufio.NewReader(resp.Body))

	// The buffered event replays first.
	first := <-ch
	if first.Event != "phase.start" || first.ID != 1 {
		t.Fatalf("replay event %+v", first)
	}
	// Live events arrive as they are emitted.
	for i := 0; i < 3; i++ {
		rec.Emit("solver.progress", map[string]any{"conflicts": i})
		m, ok := <-ch
		if !ok {
			t.Fatal("live stream ended early")
		}
		if m.Event != "solver.progress" || m.ID != uint64(2+i) {
			t.Fatalf("live event %d: %+v", i, m)
		}
	}

	// Reconnect resuming after seq 2: only 3..4 replay.
	r2, err := http.Get(srv.URL + "/v1/jobs/job-live01/events?after=2")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	ch2 := readSSE(t, bufio.NewReader(r2.Body))
	if m := <-ch2; m.ID != 3 {
		t.Fatalf("resume replayed seq %d, want 3", m.ID)
	}
	if m := <-ch2; m.ID != 4 {
		t.Fatalf("resume replayed seq %d, want 4", m.ID)
	}

	rec.Close()
	for range ch {
	}
	for range ch2 {
	}
	if n := rec.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers after close", n)
	}
}

// TestSSEMidStreamDisconnect: a client that drops mid-stream must
// unsubscribe promptly (no handler goroutine keeps following a gone
// client), and emitting afterwards must not block or panic.
func TestSSEMidStreamDisconnect(t *testing.T) {
	e := newTestEngine(t, 1)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	rec := stream.NewRecorder(64)
	insertJob(e, "job-drop01", rec)

	resp, err := http.Get(srv.URL + "/v1/jobs/job-drop01/events")
	if err != nil {
		t.Fatal(err)
	}
	ch := readSSE(t, bufio.NewReader(resp.Body))
	rec.Emit("tick", nil)
	if m, ok := <-ch; !ok || m.Event != "tick" {
		t.Fatalf("live event before disconnect: %+v ok=%v", m, ok)
	}

	resp.Body.Close() // client walks away mid-stream
	deadline := time.Now().Add(5 * time.Second)
	for rec.Subscribers() != 0 && time.Now().Before(deadline) {
		rec.Emit("tick", nil) // emits keep flowing; handler notices the dead client
		time.Sleep(10 * time.Millisecond)
	}
	if n := rec.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers still registered after disconnect", n)
	}
	rec.Close()
}

// TestSSEConcurrentSubscribers follows one job from several clients at
// once (run under -race in CI): every client sees strictly increasing
// sequence numbers and all streams end on Close.
func TestSSEConcurrentSubscribers(t *testing.T) {
	e := newTestEngine(t, 1)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	rec := stream.NewRecorder(256)
	insertJob(e, "job-fan01", rec)

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/jobs/job-fan01/events")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var last uint64
			for m := range readSSE(t, bufio.NewReader(resp.Body)) {
				if m.ID <= last {
					errs <- fmt.Errorf("client %d: seq %d after %d", c, m.ID, last)
					return
				}
				last = m.ID
			}
			if last == 0 {
				errs <- fmt.Errorf("client %d saw no events", c)
			}
		}(c)
	}
	// Give the clients a moment to connect, then stream and close.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 100; i++ {
		rec.Emit("tick", map[string]any{"i": i})
	}
	rec.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := rec.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers after close", n)
	}
}

// TestTimelineOfTimedOutJob pins the flight-recorder acceptance case: a
// job killed by its deadline still serves a non-empty timeline whose
// final event is the cancellation, and the timeline is marked closed.
func TestTimelineOfTimedOutJob(t *testing.T) {
	// The graph fast path can answer a short chain in under a
	// millisecond on a warm machine, beating the deadline; pin the
	// solver pipeline and use a chain long enough that encoding alone
	// dwarfs the deadline, so the cancellation always fires mid-job.
	srv, e := newTestServerTiers(t, "none")
	j, err := e.Submit(&Request{
		Configs:   chainConfigs(64),
		Spec:      Spec{Check: "reachability", Src: "R1", Subnet: "10.100.64.0/24"},
		TimeoutMs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish")
	}
	if j.Err() == nil {
		t.Fatal("job beat a 1ms deadline; want a timeout")
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + j.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tl Timeline
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) == 0 {
		t.Fatal("timed-out job has an empty timeline")
	}
	if !tl.Closed {
		t.Fatal("terminal job's timeline is not closed")
	}
	last := tl.Events[len(tl.Events)-1]
	if last.Type != stream.EventJobCancelled {
		t.Fatalf("timeline ends with %q, want %q", last.Type, stream.EventJobCancelled)
	}
	if last.Data["reason"] != "timeout" {
		t.Fatalf("cancellation reason %v, want timeout", last.Data["reason"])
	}
}

// TestJobTraceEndpoint: a solved job serves its span tree as Chrome
// trace_event JSON; a cache-hit job, which never ran, has none.
func TestJobTraceEndpoint(t *testing.T) {
	srv, _ := newTestServerTiers(t, "none")
	req := &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	}
	_, v := postVerify(t, srv, req)
	if v == nil {
		t.Fatal("verify failed")
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"job:" + v.JobID, "session-check"} {
		if !names[want] {
			t.Fatalf("chrome trace lacks %q slice (have %v)", want, names)
		}
	}

	// The cache-hit repeat never touched the solver: no trace.
	_, v2 := postVerify(t, srv, req)
	if !v2.Cached {
		t.Fatal("repeat was not a cache hit")
	}
	r2, err := http.Get(srv.URL + "/v1/jobs/" + v2.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("cache-hit trace status %d, want 404", r2.StatusCode)
	}
}

// TestEngineJobEviction bounds the finished-job map: with MaxJobs 2 the
// oldest finished jobs (and their recorders) are dropped FIFO, counted
// by service.jobs_evicted, while the newest stay addressable.
func TestEngineJobEviction(t *testing.T) {
	e := NewEngine(Options{Workers: 1, Timeout: 60 * time.Second, MaxJobs: 2})
	t.Cleanup(e.Close)
	req := &Request{
		Configs: chainConfigs(2),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.2.0/24"},
	}
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := e.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		if err := j.Err(); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if got := len(e.Jobs()); got > 2 {
		t.Fatalf("%d jobs retained, MaxJobs is 2", got)
	}
	if _, ok := e.Job(ids[0]); ok {
		t.Fatal("oldest job survived eviction")
	}
	if _, ok := e.Job(ids[len(ids)-1]); !ok {
		t.Fatal("newest job was evicted")
	}
	if n := e.Trace().Counter("service.jobs_evicted"); n != 3 {
		t.Fatalf("jobs_evicted = %d, want 3", n)
	}
}

// TestServiceMetricsQuantiles: the daemon's /metrics carries the
// latency histograms and their precomputed quantile gauges.
func TestServiceMetricsQuantiles(t *testing.T) {
	srv, _ := newTestServerTiers(t, "none")
	_, v := postVerify(t, srv, &Request{
		Configs: chainConfigs(3),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.3.0/24"},
	})
	if v == nil {
		t.Fatal("verify failed")
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"minesweeper_service_job_run_ms_bucket",
		`minesweeper_service_job_run_ms_quantile{quantile="0.99"}`,
		"minesweeper_latency_solve_ms_bucket",
		`minesweeper_latency_solve_ms_quantile{quantile="0.5"}`,
		"minesweeper_service_queue_depth",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}

// TestSSEResumeAfterEviction: a client that reconnects with
// Last-Event-ID after its job was evicted by the MaxJobs FIFO must get
// a prompt 404 — not a hang waiting for events that will never come,
// and not a silent empty stream.
func TestSSEResumeAfterEviction(t *testing.T) {
	e := NewEngine(Options{Workers: 1, Timeout: 60 * time.Second, MaxJobs: 1})
	t.Cleanup(e.Close)
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	req := &Request{
		Configs: chainConfigs(2),
		Spec:    Spec{Check: "reachability", Src: "R1", Subnet: "10.100.2.0/24"},
	}
	first, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-first.Done()
	// A second finished job pushes the map over MaxJobs and evicts the
	// first, recorder and all.
	second, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-second.Done()
	if _, ok := e.Job(first.ID); ok {
		t.Fatal("first job survived eviction")
	}

	hreq, err := http.NewRequest("GET", srv.URL+"/v1/jobs/"+first.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Last-Event-ID", "3")
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Do(hreq)
	if err != nil {
		t.Fatalf("resume after eviction did not return cleanly: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("resume after eviction: status %d, want 404", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "no such job") {
		t.Fatalf("unexpected body: %s", body)
	}

	// The surviving job still replays fine from the same resume point.
	hreq2, err := http.NewRequest("GET", srv.URL+"/v1/jobs/"+second.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	hreq2.Header.Set("Last-Event-ID", "1")
	resp2, err := client.Do(hreq2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("surviving job resume: status %d, want 200", resp2.StatusCode)
	}
	msgs := collectSSE(readSSE(t, bufio.NewReader(resp2.Body)), 2*time.Second)
	if len(msgs) == 0 {
		t.Fatal("surviving job replayed no events")
	}
	for _, m := range msgs {
		if m.ID <= 1 {
			t.Fatalf("replay included event %d despite Last-Event-ID 1", m.ID)
		}
	}
}
