// Package service runs verification queries as jobs: a bounded worker
// pool parses configurations, encodes each distinct network once, keeps a
// long-lived incremental solver session per network, and answers
// (network, property) jobs from a content-addressed verdict cache. The
// HTTP daemon (cmd/minesweeperd) is a thin layer over this package.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/properties"
	"repro/internal/protograph"
	"repro/internal/smt"
	"repro/internal/tiered"
)

// Default parameter values, shared with the minesweeper CLI flags.
const (
	DefaultHops   = 4
	DefaultMaxLen = 24
)

// Spec names one property query, mirroring the minesweeper CLI flags.
// The zero values of Hops and MaxLen mean "use the default".
type Spec struct {
	// Check selects the property: reachability, isolation,
	// mgmt-reachability, blackholes, multipath-consistency, loops,
	// bounded-length, waypoint or no-leak.
	Check string `json:"check"`
	// Src is the source router for per-source properties.
	Src string `json:"src,omitempty"`
	// Via is the waypoint router for the waypoint property.
	Via string `json:"via,omitempty"`
	// Subnet is the destination subnet in CIDR form.
	Subnet string `json:"subnet,omitempty"`
	// Pair is reserved for the pair-model checks (equivalence,
	// fault-invariance), which the service does not support yet.
	Pair string `json:"pair,omitempty"`
	// Hops bounds path length for bounded-length (default 4).
	Hops int `json:"hops,omitempty"`
	// MaxLen is the maximum exported prefix length for no-leak
	// (default 24).
	MaxLen int `json:"maxlen,omitempty"`
	// MaxFailures lets environments fail up to this many links;
	// 0 means no failures. Part of the cache key: the same property
	// under different failure bounds is a different query.
	MaxFailures int `json:"max_failures,omitempty"`
}

// normalize fills parameter defaults so equivalent specs hash equally
// (hops 0 and hops 4 are the same bounded-length query).
func (s Spec) normalize() Spec {
	if s.Check == "bounded-length" && s.Hops == 0 {
		s.Hops = DefaultHops
	}
	if s.Check == "no-leak" && s.MaxLen == 0 {
		s.MaxLen = DefaultMaxLen
	}
	return s
}

// validate rejects malformed specs before a job is queued. Checks that
// need the parsed network (e.g. that Src names a router) happen later, in
// the worker.
func (s Spec) validate() error {
	needSrc := func() error {
		if s.Src == "" {
			return fmt.Errorf("service: check %q requires src", s.Check)
		}
		return nil
	}
	needSubnet := func() error {
		if s.Subnet == "" {
			return fmt.Errorf("service: check %q requires subnet", s.Check)
		}
		if _, err := network.ParsePrefix(s.Subnet); err != nil {
			return fmt.Errorf("service: subnet: %w", err)
		}
		return nil
	}
	switch s.Check {
	case "reachability", "isolation", "bounded-length":
		if err := needSrc(); err != nil {
			return err
		}
		return needSubnet()
	case "waypoint":
		if err := needSrc(); err != nil {
			return err
		}
		if s.Via == "" {
			return fmt.Errorf("service: check waypoint requires via")
		}
		return needSubnet()
	case "mgmt-reachability", "blackholes", "multipath-consistency", "loops", "no-leak":
		return nil
	case "equivalence", "fault-invariance":
		return fmt.Errorf("service: check %q needs the pair model and is not supported by the service yet; use the minesweeper CLI", s.Check)
	case "":
		return fmt.Errorf("service: check is required")
	default:
		return fmt.Errorf("service: unknown check %q", s.Check)
	}
}

// buildProperty constructs the property term on the network's model. It
// must run while holding the network entry's lock: building terms interns
// into the model's (unsynchronized) term context and may append
// instrumentation constraints to the model.
func buildProperty(m *core.Model, g *protograph.Graph, s Spec) (*smt.Term, error) {
	var sub network.Prefix
	if s.Subnet != "" {
		var err error
		sub, err = network.ParsePrefix(s.Subnet)
		if err != nil {
			return nil, err
		}
	}
	checkNode := func(name, role string) error {
		if g.Topo.Node(name) == nil {
			return fmt.Errorf("service: %s %q is not a router in this network", role, name)
		}
		return nil
	}
	switch s.Check {
	case "reachability":
		if err := checkNode(s.Src, "src"); err != nil {
			return nil, err
		}
		return properties.Reachable(m, s.Src, sub), nil
	case "isolation":
		if err := checkNode(s.Src, "src"); err != nil {
			return nil, err
		}
		return properties.Isolated(m, s.Src, sub), nil
	case "mgmt-reachability":
		return properties.ManagementReachable(m), nil
	case "blackholes":
		return properties.NoBlackholes(m), nil
	case "multipath-consistency":
		return properties.MultipathConsistent(m), nil
	case "loops":
		return properties.NoForwardingLoops(m, nil), nil
	case "bounded-length":
		if err := checkNode(s.Src, "src"); err != nil {
			return nil, err
		}
		return properties.BoundedLength(m, s.Src, sub, s.Hops), nil
	case "waypoint":
		if err := checkNode(s.Src, "src"); err != nil {
			return nil, err
		}
		if err := checkNode(s.Via, "via"); err != nil {
			return nil, err
		}
		return properties.Waypointed(m, s.Src, s.Via, sub), nil
	case "no-leak":
		return properties.NoLeak(m, nil, s.MaxLen), nil
	}
	return nil, fmt.Errorf("service: unknown check %q", s.Check)
}

// goalForSpec translates a normalized spec into the graph tier's goal
// vocabulary. The service's check names are already the tier's; ok=false
// means the spec has no tier translation and goes straight to SAT.
func goalForSpec(s Spec) (tiered.Goal, bool) {
	switch s.Check {
	case "reachability", "isolation", "mgmt-reachability", "blackholes",
		"multipath-consistency", "loops", "bounded-length", "waypoint", "no-leak":
	default:
		return tiered.Goal{}, false
	}
	g := tiered.Goal{
		Check:       s.Check,
		Src:         s.Src,
		Via:         s.Via,
		Hops:        s.Hops,
		MaxLen:      s.MaxLen,
		MaxFailures: s.MaxFailures,
	}
	if s.Subnet != "" {
		sub, err := network.ParsePrefix(s.Subnet)
		if err != nil {
			return tiered.Goal{}, false
		}
		g.Subnet = sub
		g.HasSubnet = true
	}
	return g, true
}

// Request is one verification job: the network's configurations plus the
// property spec (spec fields are inlined, so a request reads
// {"configs": {...}, "check": "reachability", "src": "R1", ...}).
type Request struct {
	// Configs maps a router file name to its configuration text.
	Configs map[string]string `json:"configs"`
	Spec
	// TimeoutMs overrides the engine's per-job timeout when positive.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// configHash is the content address of a network: a digest over the
// sorted (name, text) configuration pairs. Jobs with equal hashes share
// one encoded model and one solver session.
func configHash(configs map[string]string) string {
	names := make([]string, 0, len(configs))
	for n := range configs {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		// Length-prefix both fields so (name, text) pairs cannot
		// alias across boundaries.
		fmt.Fprintf(h, "%d:%s%d:", len(n), n, len(configs[n]))
		h.Write([]byte(configs[n]))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheKey addresses one verdict: the network's config hash plus the
// normalized spec (which includes the environment bound MaxFailures).
func cacheKey(netKey string, s Spec) string {
	b, _ := json.Marshal(s.normalize())
	h := sha256.New()
	fmt.Fprintf(h, "%s|", netKey)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}
