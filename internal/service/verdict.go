package service

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs/cost"
	"repro/internal/provenance"
	"repro/internal/tiered"
)

// Verdict is the JSON answer to one verification job. It mirrors the
// minesweeper CLI's -json report: verdict, phase timings, formula sizes,
// solver work and the decoded counterexample.
type Verdict struct {
	JobID    string `json:"job_id"`
	Check    string `json:"check"`
	Verified bool   `json:"verified"`
	// Cached is true when the verdict was answered from the result
	// cache without touching the solver.
	Cached bool `json:"cached"`
	// Tier names the verification tier that produced the verdict when
	// the engine runs tiered: "graph" for the fast path, "sat" for
	// solver fall-through; absent when tiering is disabled.
	Tier string `json:"tier,omitempty"`
	// FastPathMs is the graph tier's classification time (the whole
	// verdict cost on a fast-path hit, pure overhead on fall-through).
	FastPathMs float64 `json:"fastpath_ms,omitempty"`
	ElapsedMs  float64 `json:"elapsed_ms"`
	EncodeMs   float64 `json:"encode_ms"`
	SimplifyMs float64 `json:"simplify_ms"`
	SolveMs    float64 `json:"solve_ms"`
	CertifyMs  float64 `json:"certify_ms,omitempty"`
	SATVars    int     `json:"sat_vars,omitempty"`
	SATClauses int     `json:"sat_clauses,omitempty"`

	// Modular composition detail (engine Options.Modular). Mode is
	// "modular" when the composed component verdict stands, "monolithic"
	// when the goal or network is outside the modular vocabulary, and
	// "fallback" when residue forced the whole-network pipeline (the
	// residue names why; ViolatedContract names the interface contract a
	// failed discharge blamed, when there is one).
	Mode             string   `json:"mode,omitempty"`
	Components       int      `json:"components,omitempty"`
	ComponentClasses int      `json:"component_classes,omitempty"`
	AliasHits        int      `json:"alias_hits,omitempty"`
	ModularResidue   []string `json:"modular_residue,omitempty"`
	ViolatedContract string   `json:"violated_contract,omitempty"`

	// Blame is the configuration origins the verdict depends on, as
	// "router/proto/kind name" strings (engine Options.Blame): for a
	// verified job the origins in the UNSAT core, for a falsified job the
	// origins fixing the counterexample's forwarding decisions.
	Blame []string `json:"blame,omitempty"`

	Solver         *SolverStats    `json:"solver,omitempty"`
	Proof          *ProofInfo      `json:"proof,omitempty"`
	Counterexample *Counterexample `json:"counterexample,omitempty"`

	// Cost is the job's hierarchical resource ledger (job → goal → phase
	// / racer / class), served standalone at GET /v1/jobs/{id}/cost.
	// Cached verdicts carry no ledger: the work was paid by the original
	// job, a cache hit costs nothing worth gating on.
	Cost *cost.Node `json:"cost,omitempty"`

	// Budget is present exactly when the job was cancelled for exceeding
	// a service budget (Options.WorkBudget / Options.MemBudgetBytes); the
	// verdict is then neither verified nor falsified — the search was cut
	// short — and Verified is false.
	Budget *BudgetInfo `json:"budget_exceeded,omitempty"`
}

// ProofInfo summarizes the checked DRAT certificate of a verified
// verdict (present only when the engine runs with Options.Certify).
type ProofInfo struct {
	Checked bool    `json:"checked"`
	Steps   int     `json:"steps"`
	Lemmas  int     `json:"lemmas"`
	CheckMs float64 `json:"check_ms"`
}

// SolverStats is the per-check CDCL work (deltas for session checks, not
// the session's cumulative counters).
type SolverStats struct {
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Learned      int64 `json:"learned"`
	Restarts     int64 `json:"restarts"`
}

// Packet is the violating packet of a counterexample.
type Packet struct {
	DstIP    string `json:"dst_ip"`
	SrcIP    string `json:"src_ip"`
	Protocol int    `json:"protocol"`
	SrcPort  int    `json:"src_port"`
	DstPort  int    `json:"dst_port"`
}

// Announcement is one external BGP announcement of the environment.
type Announcement struct {
	Peer        string   `json:"peer"`
	Prefix      string   `json:"prefix"`
	PathLen     int      `json:"path_len"`
	MED         int      `json:"med"`
	Communities []string `json:"communities,omitempty"`
}

// Counterexample is a concrete stable state violating the property.
type Counterexample struct {
	Packet        Packet         `json:"packet"`
	Announcements []Announcement `json:"announcements"`
	FailedLinks   []string       `json:"failed_links"`
	Forwarding    []string       `json:"forwarding,omitempty"`
}

func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// newVerdict renders a core result as the service's JSON verdict. The
// caller must hold the network entry's lock: decoding forwarding state
// reads the model.
func newVerdict(jobID string, spec Spec, res *core.Result, m *core.Model) *Verdict {
	v := &Verdict{
		JobID:      jobID,
		Check:      spec.Check,
		Verified:   res.Verified,
		EncodeMs:   durMs(res.EncodeElapsed),
		SimplifyMs: durMs(res.SimplifyElapsed),
		SolveMs:    durMs(res.SolveElapsed),
		CertifyMs:  durMs(res.CertifyElapsed),
		SATVars:    res.SATVars,
		SATClauses: res.SATClauses,
		Solver: &SolverStats{
			Conflicts:    res.Stats.Conflicts,
			Decisions:    res.Stats.Decisions,
			Propagations: res.Stats.Propagations,
			Learned:      res.Stats.Learned,
			Restarts:     res.Stats.Restarts,
		},
	}
	v.Tier = res.Tier
	v.FastPathMs = durMs(res.FastPathElapsed)
	if res.Tier == tiered.TierGraph {
		// The solver never ran: drop the all-zero CDCL stats block.
		v.Solver = nil
	}
	// Summed after per-phase rounding so the JSON fields keep the exact
	// identity elapsed = fastpath + encode + simplify + solve + certify
	// (fastpath is zero unless the engine runs tiered).
	v.ElapsedMs = v.FastPathMs + v.EncodeMs + v.SimplifyMs + v.SolveMs + v.CertifyMs
	v.Blame = provenance.Strings(res.Blame)
	if len(v.Blame) == 0 {
		v.Blame = nil
	}
	if cert := res.Certificate; cert != nil {
		v.Proof = &ProofInfo{
			Checked: cert.Checked,
			Steps:   cert.Steps,
			Lemmas:  cert.Lemmas,
			CheckMs: durMs(cert.CheckElapsed),
		}
	}
	cex := res.Counterexample
	if cex == nil {
		return v
	}
	jc := &Counterexample{
		Packet: Packet{
			DstIP:    cex.Packet.DstIP.String(),
			SrcIP:    cex.Packet.SrcIP.String(),
			Protocol: cex.Packet.Protocol,
			SrcPort:  cex.Packet.SrcPort,
			DstPort:  cex.Packet.DstPort,
		},
		Announcements: []Announcement{},
		FailedLinks:   []string{},
	}
	peers := make([]string, 0, len(cex.Env.Anns))
	for p := range cex.Env.Anns {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		a := cex.Env.Anns[p]
		jc.Announcements = append(jc.Announcements, Announcement{
			Peer: p, Prefix: a.Prefix.String(),
			PathLen: a.PathLen, MED: a.MED, Communities: a.Communities,
		})
	}
	for id := range cex.Env.FailedLinks {
		jc.FailedLinks = append(jc.FailedLinks, id)
	}
	sort.Strings(jc.FailedLinks)
	// Graph-tier counterexamples carry no SAT assignment (and no model may
	// be in scope); forwarding decoding is solver-only detail.
	if m != nil && cex.Assignment != nil {
		jc.Forwarding = m.DecodeForwarding(m.Main, cex.Assignment)
	}
	v.Counterexample = jc
	return v
}

// cachedCopy stamps a cached verdict for a new job: same answer, new job
// id, Cached set.
func (v *Verdict) cachedCopy(jobID string) *Verdict {
	out := *v
	out.JobID = jobID
	out.Cached = true
	// Like origin profiles, the cost ledger stays with the job that paid
	// it; a cache hit never touched the solver.
	out.Cost = nil
	return &out
}
