package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// NewHandler exposes the engine over HTTP:
//
//	POST /v1/verify             JSON Request → Verdict (synchronous)
//	GET  /v1/jobs               all job views, newest first
//	GET  /v1/jobs/{id}          one job view
//	GET  /v1/jobs/{id}/profile  the job's hot-constraint origin profile
//	                            (JSON rows; ?format=collapsed for the
//	                            flamegraph collapsed-stack text)
//	GET  /v1/jobs/{id}/cost     the job's hierarchical cost ledger
//	                            (JSON tree; ?format=text for the
//	                            indented table)
//	GET  /v1/jobs/{id}/events   the job's flight recorder as SSE: buffered
//	                            replay then live follow; resumes from
//	                            Last-Event-ID or ?after=N
//	GET  /v1/jobs/{id}/timeline the buffered flight-recorder events as JSON
//	GET  /v1/jobs/{id}/trace    the job's span tree as Chrome trace_event
//	                            JSON (Perfetto / chrome://tracing)
//	GET  /metrics               Prometheus text exposition of the engine trace
//	GET  /healthz               liveness + job counters
//
// The mux uses Go 1.22 method/wildcard patterns, so the same handler
// serves the daemon and httptest.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		v, err := e.Verify(r.Context(), &req)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		AddLogExtra(r.Context(), "job", v.JobID, "check", v.Check,
			"verified", v.Verified, "cached", v.Cached,
			"encode_ms", v.EncodeMs, "simplify_ms", v.SimplifyMs,
			"solve_ms", v.SolveMs)
		if v.Cost != nil {
			AddLogExtra(r.Context(), "units", v.Cost.Total().Units())
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, j.View())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/profile", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		p := j.Profile()
		if p == nil {
			writeError(w, http.StatusNotFound,
				"no origin profile for this job (engine runs without profiling, the job is not done, or it was a cache hit)")
			return
		}
		if r.URL.Query().Get("format") == "collapsed" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			p.WriteCollapsed(w)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/cost", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		v := j.Verdict()
		if v == nil || v.Cost == nil {
			writeError(w, http.StatusNotFound,
				"no cost ledger for this job (not done, failed, or a cache hit)")
			return
		}
		AddLogExtra(r.Context(), "job", j.ID, "units", v.Cost.Total().Units())
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			v.Cost.WriteTree(w)
			return
		}
		writeJSON(w, http.StatusOK, v.Cost)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", handleJobEvents(e))
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", handleJobTimeline(e))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", handleJobTrace(e))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		e.Trace().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"jobs_done": e.Trace().Counter("service.jobs_done"),
		})
	})
	return mux
}

// statusFor maps engine errors onto HTTP statuses: user mistakes are
// 400s, deadline and cancellation are 504/499-style, the rest is a 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case strings.Contains(err.Error(), "queue full"):
		return http.StatusTooManyRequests
	case strings.HasPrefix(err.Error(), "service:"):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
